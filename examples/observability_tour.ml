(* Observability tour: run one seeded consensus, print its metrics
   table, export the structured trace as JSONL, and feed that trace to
   the offline analyzer.

       dune exec examples/observability_tour.exe

   The same three steps are available from the CLI:

       turquois-lab run --protocol turquois -n 8 --metrics \
                        --trace-json /tmp/run.jsonl
       turquois-lab analyze /tmp/run.jsonl *)

let () =
  let n = 8 in
  let seed = 42L in

  (* 1. run one fail-stop divergent consensus with the trace sink on.
     Runner.run resets the metrics registry and clears the trace at the
     start of the repetition (Obs.Scope.with_run), so everything below
     belongs to exactly this run. *)
  Net.Trace.start ();
  let result =
    Harness.Runner.run ~protocol:Harness.Runner.Turquois ~n
      ~dist:Harness.Runner.Divergent ~load:Net.Fault.Fail_stop ~seed ()
  in
  Net.Trace.stop ();

  Printf.printf "Turquois n=%d divergent fail-stop (seed %Ld): %d/%d decided in %.1f ms\n\n"
    n seed
    (List.length result.latencies)
    (List.length result.correct)
    (result.duration *. 1000.0);

  (* 2. the per-run metrics snapshot travels with the result *)
  print_endline "--- metrics ---";
  print_string (Obs.Metrics.render_table result.metrics);
  Printf.printf "\nprogrammatic access: %d frames on the air, %d accepted messages\n\n"
    (Obs.Metrics.sum_counters result.metrics "radio.tx")
    (Obs.Metrics.counter_value result.metrics "validation.accepted");

  (* 3. dump the structured trace as JSONL and analyze it offline *)
  let file = Filename.temp_file "observability_tour" ".jsonl" in
  let written = Obs.Trace2.export_file file in
  Printf.printf "--- trace: %d JSONL events in %s ---\n" written file;
  (match Obs.Trace2.events () with
  | e :: _ -> Printf.printf "first line: %s\n\n" (Obs.Trace2.to_jsonl_line e)
  | [] -> ());

  match Obs.Trace2.load_file file with
  | Error msg -> Printf.eprintf "reload failed: %s\n" msg
  | Ok (events, _skipped) ->
      print_string (Obs.Analyze.analyze events);
      Sys.remove file
