(* Jamming recovery: the motivating scenario of the paper's introduction —
   under a jamming attack every broadcast can be lost, yet Turquois must
   never violate safety, and must resume progress the moment the channel
   clears (the communication failure model allows whole rounds with all
   messages lost).

       dune exec examples/jamming_recovery.exe

   Seven emergency-response nodes run consensus; a jammer destroys every
   frame between t = 5 ms and t = 250 ms. The example shows that no
   process decides while the channel is jammed with conflicting
   proposals, that ticks keep retransmitting, and that all processes
   decide shortly after the jamming stops. *)

let () =
  let n = 7 in
  let jam_start = 0.005 and jam_end = 0.250 in
  let engine = Net.Engine.create () in
  let rng = Util.Rng.create ~seed:99L in
  let radio = Net.Radio.create engine (Util.Rng.split rng) ~n in
  Net.Radio.set_loss_prob radio 0.01;
  Net.Radio.jam radio ~from:jam_start ~until:jam_end;

  let cfg = Core.Proto.default_config ~n in
  let keyrings = Core.Keyring.setup (Util.Rng.split rng) ~n ~phases:cfg.max_phases () in
  let instances =
    Array.init n (fun i ->
        let node = Net.Node.create engine radio ~id:i ~rng:(Util.Rng.split rng) in
        (* divergent proposals: the hard case for safety under jamming *)
        Core.Turquois.create node cfg ~keyring:keyrings.(i) ~proposal:(i mod 2) ())
  in

  let decisions_during_jam = ref 0 in
  let remaining = ref n in
  Array.iter
    (fun instance ->
      Core.Turquois.on_decide instance (fun ~value ~phase ->
          let now = Net.Engine.now engine in
          if now >= jam_start && now <= jam_end then incr decisions_during_jam;
          Printf.printf "t = %7.2f ms  process %d decided %d (phase %d)%s\n"
            (now *. 1000.0) (Core.Turquois.id instance) value phase
            (if now > jam_end then "  [channel clear]" else "");
          decr remaining))
    instances;

  Array.iter Core.Turquois.start instances;
  Printf.printf "jamming the channel from %.0f ms to %.0f ms...\n\n"
    (jam_start *. 1000.0) (jam_end *. 1000.0);
  Net.Engine.run_while engine (fun () -> !remaining > 0 && Net.Engine.now engine < 30.0);

  let stats = Net.Radio.stats radio in
  Printf.printf "\nframes destroyed by jamming: %d (of %d sent)\n" stats.jammed
    stats.frames_sent;
  Printf.printf "processes decided: %d/%d, all after the jam cleared: %b\n"
    (n - !remaining) n
    (!decisions_during_jam = 0);
  let decided =
    Array.to_list instances |> List.filter_map Core.Turquois.decision
  in
  match decided with
  | v :: rest when List.for_all (( = ) v) rest ->
      Printf.printf "agreement on %d despite losing every frame for %.0f ms.\n" v
        ((jam_end -. jam_start) *. 1000.0)
  | [] -> failwith "nobody decided"
  | _ -> failwith "disagreement — this must never happen"
