(* Ordered command log: total order over an unreliable broadcast medium.

       dune exec examples/ordered_commands.exe

   Five responder nodes issue commands concurrently ("deploy team A",
   "close sector 3", ...). Without coordination each node would apply
   them in its own arrival order; here every command goes through the
   consensus-backed ordered log, so all nodes apply the identical
   sequence — the "order messages" coordination task from the paper's
   introduction, running over a 5%-lossy channel. *)

let () =
  let n = 5 in
  let capacity = 10 in
  let engine = Net.Engine.create () in
  let rng = Util.Rng.create ~seed:777L in
  let radio = Net.Radio.create engine (Util.Rng.split rng) ~n in
  Net.Radio.set_loss_prob radio 0.05;

  let cfg = { (Core.Proto.default_config ~n) with max_phases = 45 } in
  let keyrings =
    Core.Keyring.setup (Util.Rng.split rng) ~n ~phases:(capacity * cfg.max_phases) ()
  in
  let logs =
    Array.init n (fun i ->
        let node = Net.Node.create engine radio ~id:i ~rng:(Util.Rng.split rng) in
        Core.Ordered_log.create node cfg ~keyring:keyrings.(i) ~capacity ())
  in

  (* node 0 watches its log; all nodes will have the identical one. A
     delivered payload is a length-prefixed batch of commands, possibly
     several when submissions queued up behind one proposer slot. *)
  let render_batch batch =
    match Core.Ordered_log.decode_batch batch with
    | [] -> "(empty batch)"
    | commands -> String.concat " + " (List.map Bytes.to_string commands)
  in
  Core.Ordered_log.on_deliver logs.(0) (fun ~slot ~payload ->
      Printf.printf "t = %7.2f ms  slot %d: %s\n"
        (Net.Engine.now engine *. 1000.0)
        slot
        (match payload with Some p -> render_batch p | None -> "(no command)"));

  Core.Ordered_log.submit logs.(0) (Bytes.of_string "deploy team A to north ridge");
  Core.Ordered_log.submit logs.(2) (Bytes.of_string "close sector 3");
  Core.Ordered_log.submit logs.(2) (Bytes.of_string "reopen sector 3");
  Core.Ordered_log.submit logs.(4) (Bytes.of_string "request medevac at grid 41");

  Array.iter Core.Ordered_log.start logs;
  Net.Engine.run_while engine (fun () ->
      Net.Engine.now engine < 30.0
      && Array.exists
           (fun log -> List.length (Core.Ordered_log.delivered log) < capacity)
           logs);

  (* verify all five nodes hold the same log *)
  let render log =
    String.concat "|"
      (List.map
         (fun (_, p) -> match p with Some b -> render_batch b | None -> "-")
         (Core.Ordered_log.delivered log))
  in
  let reference = render logs.(0) in
  Array.iteri
    (fun i log ->
      if render log <> reference then
        failwith (Printf.sprintf "node %d diverged — must never happen" i))
    logs;
  Printf.printf "\nall %d nodes applied the identical %d-slot command sequence.\n" n capacity
