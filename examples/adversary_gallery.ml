(* Adversary gallery: every built-in Byzantine strategy against a
   correct majority at n = 7, compared with the failure-free baseline.

       dune exec examples/adversary_gallery.exe

   Each row runs f = ⌊(n−1)/3⌋ = 2 compromised processes with one
   strategy from the library (equivocation via per-receiver unicasts,
   stale-phase replay, forged signatures, selective silence, ...) over a
   handful of seeds, and reports the mean decision latency of the
   correct processes next to the baseline's. Safety must hold on every
   run — a strategy that broke agreement or validity would abort the
   example. *)

let n = 7
let seeds = [ 101L; 102L; 103L; 104L; 105L ]

(* mean decision latency (ms) of the correct processes across the runs;
   also asserts safety on each run *)
let measure ?strategy ~load ~label () =
  let latencies =
    List.concat_map
      (fun seed ->
        let r =
          Harness.Runner.run ~protocol:Harness.Runner.Turquois ~n
            ~dist:Harness.Runner.Divergent ~load ?strategy ~seed ()
        in
        if not r.agreement then
          failwith (label ^ ": agreement violated — this must never happen");
        if not r.validity then
          failwith (label ^ ": validity violated — this must never happen");
        List.map (fun (_, l) -> 1000.0 *. l) r.latencies)
      seeds
  in
  ( Util.Stats.mean latencies,
    List.length latencies,
    List.length seeds * (n - Net.Fault.max_f n) )

let () =
  Printf.printf
    "Adversary gallery: n=%d, f=%d Byzantine, divergent proposals, %d seeds per row\n\n"
    n (Net.Fault.max_f n) (List.length seeds);

  let baseline, _, _ =
    measure ~load:Net.Fault.Failure_free ~label:"baseline" ()
  in
  Printf.printf "failure-free baseline: %.1f ms mean decision latency\n\n" baseline;

  let rows =
    List.map
      (fun strategy ->
        let name = Core.Strategy.name strategy in
        let mean, decided, expected =
          measure ~strategy ~load:Net.Fault.Byzantine ~label:name ()
        in
        [
          name;
          Core.Strategy.describe strategy;
          Printf.sprintf "%.1f ms" mean;
          Printf.sprintf "%+.0f%%" (100.0 *. ((mean /. baseline) -. 1.0));
          Printf.sprintf "%d/%d" decided expected;
        ])
      Core.Strategy.all
  in
  print_string
    (Util.Tablefmt.render
       ~header:[ "strategy"; "attack"; "latency"; "vs baseline"; "decided" ]
       ~rows ());

  Printf.printf
    "\nsafety held on every run: no strategy broke agreement or validity;\n\
     the latency column is the price the correct majority pays to get there.\n"
