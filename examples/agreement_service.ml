(* Agreement service: a sequence of decisions over one key exchange.

       dune exec examples/agreement_service.exe

   Seven sensor nodes receive a stream of alarm reports; for each alarm
   every node votes whether its own reading confirms it (a noisy local
   observation), and the group runs one Turquois instance per alarm to
   agree on which alarms are real. All instances share a single
   pre-distributed one-time key array — the Section 6.1 optimization —
   and run concurrently on the same radio. *)

let () =
  let n = 7 in
  let alarms = 6 in
  let engine = Net.Engine.create () in
  let rng = Util.Rng.create ~seed:31337L in
  let radio = Net.Radio.create engine (Util.Rng.split rng) ~n in
  Net.Radio.set_loss_prob radio 0.02;

  (* per-instance phase budget 45; one key exchange covers all alarms *)
  let cfg = { (Core.Proto.default_config ~n) with max_phases = 45 } in
  let keyrings =
    Core.Keyring.setup (Util.Rng.split rng) ~n ~phases:(alarms * cfg.max_phases) ()
  in
  let services =
    Array.init n (fun i ->
        let node = Net.Node.create engine radio ~id:i ~rng:(Util.Rng.split rng) in
        Core.Service.create node cfg ~keyring:keyrings.(i) ~instances:alarms
          ~tick_policy:Core.Turquois.default_adaptive ())
  in

  (* ground truth: alarms 0, 2, 3 are real; each node observes the truth
     with 80% accuracy *)
  let truth = [| 1; 0; 1; 1; 0; 0 |] in
  let obs_rng = Util.Rng.split rng in
  let observations =
    Array.init n (fun _ ->
        Array.init alarms (fun a ->
            if Util.Rng.bernoulli obs_rng 0.8 then truth.(a) else 1 - truth.(a)))
  in

  let decided = ref 0 in
  Array.iteri
    (fun i service ->
      Core.Service.on_decide service (fun ~instance ~value ->
          incr decided;
          if i = 0 then
            Printf.printf "t = %6.2f ms  alarm %d agreed %s (truth was %s)\n"
              (Net.Engine.now engine *. 1000.0)
              instance
              (if value = 1 then "REAL " else "false")
              (if truth.(instance) = 1 then "real" else "false")))
    services;

  (* alarms arrive 150 ms apart (the 2 Mb/s-era medium cannot carry many
     concurrent instances at 10 ms ticks); every node proposes its own
     observation *)
  for a = 0 to alarms - 1 do
    ignore
      (Net.Engine.schedule engine ~delay:(float_of_int a *. 0.150) (fun () ->
           Array.iteri
             (fun i service ->
               Core.Service.propose service ~instance:a observations.(i).(a))
             services))
  done;

  Net.Engine.run_while engine (fun () ->
      !decided < n * alarms && Net.Engine.now engine < 30.0);

  (* verify agreement across nodes per alarm *)
  let all_agree = ref true in
  for a = 0 to alarms - 1 do
    let values =
      Array.to_list services
      |> List.filter_map (fun s -> Core.Service.decision s ~instance:a)
    in
    match values with
    | v :: rest when List.for_all (( = ) v) rest && List.length values = n -> ()
    | _ -> all_agree := false
  done;
  Printf.printf "\n%d/%d instance decisions recorded, per-alarm agreement: %b\n" !decided
    (n * alarms) !all_agree;
  if not !all_agree then failwith "agreement violated"
