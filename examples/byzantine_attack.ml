(* Byzantine attack: f = ⌊(n−1)/3⌋ compromised nodes run the adversarial
   strategy of the paper's §7.2 — flipped proposal values in CONVERGE and
   LOCK phases, ⊥ in DECIDE phases — while the correct majority must
   still agree on the value they all proposed (the validity property).

       dune exec examples/byzantine_attack.exe

   The example also prints each correct process's validation counters,
   showing the authenticity/semantic machinery filtering the attacker
   traffic. *)

let () =
  let n = 10 in
  let f = Net.Fault.max_f n in
  let byzantine = List.init f (fun i -> n - 1 - i) in
  Printf.printf "n=%d, Byzantine processes: %s\n\n" n
    (String.concat ", " (List.map string_of_int byzantine));

  let engine = Net.Engine.create () in
  let rng = Util.Rng.create ~seed:4242L in
  let radio = Net.Radio.create engine (Util.Rng.split rng) ~n in
  Net.Radio.set_loss_prob radio 0.01;

  let cfg = Core.Proto.default_config ~n in
  let keyrings = Core.Keyring.setup (Util.Rng.split rng) ~n ~phases:cfg.max_phases () in
  let instances =
    Array.init n (fun i ->
        let node = Net.Node.create engine radio ~id:i ~rng:(Util.Rng.split rng) in
        let behavior =
          if List.mem i byzantine then Core.Turquois.Attacker else Core.Turquois.Correct
        in
        (* every correct process proposes 1: validity requires the
           decision to be 1 no matter what the attackers do *)
        Core.Turquois.create node cfg ~keyring:keyrings.(i) ~behavior ~proposal:1 ())
  in

  let remaining = ref (n - f) in
  Array.iteri
    (fun i instance ->
      if not (List.mem i byzantine) then
        Core.Turquois.on_decide instance (fun ~value ~phase ->
            Printf.printf "t = %6.2f ms  process %d decided %d (phase %d)\n"
              (Net.Engine.now engine *. 1000.0) i value phase;
            decr remaining))
    instances;

  Array.iter Core.Turquois.start instances;
  Net.Engine.run_while engine (fun () -> !remaining > 0 && Net.Engine.now engine < 30.0);

  print_newline ();
  Array.iteri
    (fun i instance ->
      if not (List.mem i byzantine) then begin
        let s = Core.Turquois.stats instance in
        Printf.printf
          "process %d: %d messages admitted to V, %d failed authenticity, attacker \
           traffic quarantined by semantic validation (pending peak %d)\n"
          i s.accepted s.rejected_auth s.pending_peak
      end)
    instances;

  let decisions =
    List.filter_map
      (fun i ->
        if List.mem i byzantine then None
        else Core.Turquois.decision instances.(i))
      (List.init n (fun i -> i))
  in
  if List.length decisions = n - f && List.for_all (( = ) 1) decisions then
    Printf.printf
      "\nvalidity holds: all %d correct processes decided their common proposal (1).\n"
      (n - f)
  else failwith "validity violated — this must never happen"
