(* Protocol comparison: one row of the paper's Table 1, live.

       dune exec examples/protocol_comparison.exe

   Runs Turquois, ABBA and Bracha on identical conditions (n = 7,
   failure-free, both proposal distributions, a handful of repetitions)
   through the same harness the benchmark uses, and prints the latency
   summary next to the paper's published cell. The point of the paper in
   one screen: the UDP-broadcast, hash-authenticated protocol is an
   order of magnitude faster than the reliable-link designs. *)

let () =
  let n = 7 in
  let reps = 10 in
  Printf.printf "n = %d, failure-free, %d repetitions per cell\n\n" n reps;
  Printf.printf "%-10s %-10s %15s %18s\n" "protocol" "proposals" "measured (ms)" "paper (ms)";
  List.iter
    (fun protocol ->
      List.iter
        (fun dist ->
          let latencies = ref [] in
          for rep = 0 to reps - 1 do
            let result =
              Harness.Runner.run ~protocol ~n ~dist ~load:Net.Fault.Failure_free
                ~seed:(Int64.of_int (100 + rep)) ()
            in
            List.iter
              (fun (_, l) -> latencies := (l *. 1000.0) :: !latencies)
              result.latencies
          done;
          let summary = Util.Stats.summarize !latencies in
          let paper =
            match
              Harness.Paper.value ~load:Net.Fault.Failure_free ~protocol ~n ~dist
            with
            | Some (mean, ci) -> Printf.sprintf "%.2f ± %.2f" mean ci
            | None -> "-"
          in
          Printf.printf "%-10s %-10s %8.2f ± %-6.2f %18s\n"
            (Harness.Runner.protocol_to_string protocol)
            (Harness.Runner.dist_to_string dist)
            summary.mean summary.ci95 paper)
        [ Harness.Runner.Unanimous; Harness.Runner.Divergent ])
    [ Harness.Runner.Turquois; Harness.Runner.Abba; Harness.Runner.Bracha ];
  print_newline ();
  print_endline
    "As in the paper, the exact milliseconds differ between testbeds; the ordering";
  print_endline
    "(Turquois << ABBA < Bracha) and the unanimous/divergent gap are the result."
