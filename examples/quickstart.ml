(* Quickstart: four nodes on a simulated 802.11b ad hoc network agree on
   a binary value with Turquois.

       dune exec examples/quickstart.exe

   This is the smallest complete use of the public API: build an engine,
   a radio, one node per process, distribute keys, start the protocol
   instances, and run the simulation until everyone has decided. *)

let () =
  let n = 4 in
  let engine = Net.Engine.create () in
  let rng = Util.Rng.create ~seed:2026L in

  (* the shared wireless medium, with 1% residual frame loss *)
  let radio = Net.Radio.create engine (Util.Rng.split rng) ~n in
  Net.Radio.set_loss_prob radio 0.01;

  (* protocol configuration: f = 1 Byzantine tolerated, k = 3 must decide *)
  let cfg = Core.Proto.default_config ~n in
  Printf.printf "n=%d f=%d k=%d (tick every %.0f ms)\n\n" cfg.n cfg.f cfg.k
    (cfg.tick_interval *. 1000.0);

  (* the key exchange of Section 6.1, run before the protocol starts *)
  let keyrings = Core.Keyring.setup (Util.Rng.split rng) ~n ~phases:cfg.max_phases () in

  (* one node and one protocol instance per process; processes 0 and 3
     propose 1, the others 0 *)
  let proposals = [| 1; 0; 0; 1 |] in
  let instances =
    Array.init n (fun i ->
        let node = Net.Node.create engine radio ~id:i ~rng:(Util.Rng.split rng) in
        Core.Turquois.create node cfg ~keyring:keyrings.(i) ~proposal:proposals.(i) ())
  in

  let remaining = ref n in
  Array.iter
    (fun instance ->
      Core.Turquois.on_decide instance (fun ~value ~phase ->
          Printf.printf "process %d decided %d at phase %d (t = %.2f ms)\n"
            (Core.Turquois.id instance) value phase
            (Net.Engine.now engine *. 1000.0);
          decr remaining))
    instances;

  Array.iter Core.Turquois.start instances;
  Net.Engine.run_while engine (fun () -> !remaining > 0 && Net.Engine.now engine < 10.0);

  let decisions =
    Array.to_list instances |> List.filter_map Core.Turquois.decision
  in
  match decisions with
  | v :: rest when List.for_all (( = ) v) rest ->
      Printf.printf "\nagreement reached on %d by all %d processes.\n" v
        (List.length decisions)
  | _ -> failwith "disagreement — this must never happen"
