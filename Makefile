.PHONY: all build test fmt check bench bench-json bench-baseline bench-compare causal-smoke pool-smoke memo-smoke compact-smoke modelcheck-smoke workload-smoke scale-smoke chaos clean

all: build

build:
	dune build

test:
	dune runtest

# dune-file formatting only: ocamlformat is not part of the toolchain
# (see dune-project), so @fmt checks the build metadata
fmt:
	dune build @fmt

# chaos smoke: a short randomized fault-injection sweep (fixed seed, so
# it is deterministic) plus the harness self-test against a planted bug
chaos:
	dune exec bin/turquois_lab.exe -- chaos --runs 25 --seed 42 --quiet
	dune exec bin/turquois_lab.exe -- chaos --runs 3 --seed 7 --broken-machine --quiet > /dev/null 2>&1; \
	  test $$? -eq 1 || { echo "chaos self-test failed: planted bug not detected"; exit 1; }

# pool smoke: a tiny sweep at -j 2 — catches domain-unsafe global state
# that the (mostly -j 1) unit tests would miss
pool-smoke:
	dune exec bin/turquois_lab.exe -- sigma --size 4 --runs 2 --rounds 40 -j 2 > /dev/null

# memo smoke: the hot-path contract — every result must be bit-identical
# with the single-run memoization off and on (exits non-zero otherwise)
memo-smoke:
	dune exec bin/turquois_lab.exe -- memocheck --quiet

# compact smoke: the wire-compression contract — every scenario must
# reach the same decisions with delta-compressed justification bundles
# off and on (exits non-zero otherwise), and a small sweep that includes
# the compact Turquois hot path must stay bit-identical at -j 1 / -j 2
compact-smoke:
	dune exec bin/turquois_lab.exe -- compactcheck --quiet
	dune exec bin/turquois_lab.exe -- scaling --sizes 16 --turquois-cap 16 \
	  --radio-cap 16 -j 1 > /tmp/turquois_compact_j1.txt
	dune exec bin/turquois_lab.exe -- scaling --sizes 16 --turquois-cap 16 \
	  --radio-cap 16 -j 2 > /tmp/turquois_compact_j2.txt
	cmp /tmp/turquois_compact_j1.txt /tmp/turquois_compact_j2.txt \
	  || { echo "compact smoke failed: -j 1 and -j 2 sweeps diverged"; exit 1; }
	rm -f /tmp/turquois_compact_j1.txt /tmp/turquois_compact_j2.txt

# causal smoke: export a traced sigma-edge run and make sure the causal
# analyzer reconstructs tagged sends from it end to end
# (--require-causal exits 1 when the trace has no tagged sends, so the
# gate reads the exit code instead of grepping the report text)
causal-smoke:
	dune exec bin/turquois_lab.exe -- run -n 8 --divergent --sigma-edge \
	  --trace-json /tmp/turquois_causal_smoke.jsonl > /dev/null
	dune exec bin/turquois_lab.exe -- analyze /tmp/turquois_causal_smoke.jsonl \
	  --causal --timeline --require-causal > /dev/null \
	  || { echo "causal smoke failed: no tagged sends in the trace"; exit 1; }
	rm -f /tmp/turquois_causal_smoke.jsonl

# model-checker smoke: the exhaustive n=4 walk over two rounds must be
# bit-identical at -j 1 and -j 2 (stats included — the printout carries
# no timing), and its extracted worst-case schedule must replay (run
# --replay exits 0 iff the artifact reproduces its recorded outcome)
modelcheck-smoke:
	dune exec bin/turquois_lab.exe -- modelcheck -n 4 --rounds 2 --quiet -j 1 \
	  --out /tmp/turquois_mc_smoke.json > /tmp/turquois_mc_j1.txt
	dune exec bin/turquois_lab.exe -- modelcheck -n 4 --rounds 2 --quiet -j 2 \
	  --out /tmp/turquois_mc_smoke.json > /tmp/turquois_mc_j2.txt
	cmp /tmp/turquois_mc_j1.txt /tmp/turquois_mc_j2.txt \
	  || { echo "modelcheck smoke failed: -j 1 and -j 2 walks diverged"; exit 1; }
	dune exec bin/turquois_lab.exe -- run --replay /tmp/turquois_mc_smoke.json \
	  > /dev/null \
	  || { echo "modelcheck smoke failed: worst-case schedule did not replay"; exit 1; }
	rm -f /tmp/turquois_mc_smoke.json /tmp/turquois_mc_j1.txt /tmp/turquois_mc_j2.txt

# workload smoke: a small consensus-service sweep must be bit-identical
# at -j 1 and -j 2 (open-loop arrivals, batching and straggler catch-up
# all run through the deterministic engine, so any divergence is a
# determinism bug in the new code paths)
workload-smoke:
	dune exec bin/turquois_lab.exe -- workload --load 20,60 -r 2 -j 1 \
	  > /tmp/turquois_wl_j1.txt
	dune exec bin/turquois_lab.exe -- workload --load 20,60 -r 2 -j 2 \
	  > /tmp/turquois_wl_j2.txt
	cmp /tmp/turquois_wl_j1.txt /tmp/turquois_wl_j2.txt \
	  || { echo "workload smoke failed: -j 1 and -j 2 sweeps diverged"; exit 1; }
	rm -f /tmp/turquois_wl_j1.txt /tmp/turquois_wl_j2.txt

# scale smoke: the n=64 sampled-consensus scaling point must be
# bit-identical at -j 1 and -j 2 (the rendered table excludes the one
# host-dependent field, so cmp is exact)
scale-smoke:
	dune exec bin/turquois_lab.exe -- scaling --sizes 64 --turquois-cap 0 -j 1 \
	  > /tmp/turquois_scale_j1.txt
	dune exec bin/turquois_lab.exe -- scaling --sizes 64 --turquois-cap 0 -j 2 \
	  > /tmp/turquois_scale_j2.txt
	cmp /tmp/turquois_scale_j1.txt /tmp/turquois_scale_j2.txt \
	  || { echo "scale smoke failed: -j 1 and -j 2 sweeps diverged"; exit 1; }
	rm -f /tmp/turquois_scale_j1.txt /tmp/turquois_scale_j2.txt

# the gate a PR must pass: formatting, a warning-clean build, all tests,
# the chaos smoke sweep, the parallel-pool smoke, the memo smoke, the
# compact-wire smoke, the causal-trace smoke, the model-checker smoke,
# the workload smoke, the scaling smoke and the perf regression gate
check: fmt build test chaos pool-smoke memo-smoke compact-smoke causal-smoke modelcheck-smoke workload-smoke scale-smoke bench-compare

bench:
	dune exec bench/main.exe -- --quick

# regenerate the committed hot-path wall-clock baseline; the bench
# itself fails if memoized and unmemoized results diverge, so this
# doubles as the perf regression gate
bench-json:
	dune exec bench/main.exe -- --hotpath-baseline BENCH_pr5.json

# regenerate the committed regression-gate baseline (run on the machine
# that will run bench-compare; wall-clock sections are host-dependent)
bench-baseline:
	dune exec bench/main.exe -- --baseline-out BENCH_baseline.json

# perf regression gate: re-run the gate grid and diff it against the
# committed baseline. The threshold is deliberately generous (+300%) —
# wall clock on shared CI boxes is noisy; the deterministic airtime
# section still catches any behavioral drift exactly
bench-compare:
	dune exec bench/main.exe -- --compare BENCH_baseline.json --threshold 3.0

clean:
	dune clean
