.PHONY: all build test fmt check bench chaos clean

all: build

build:
	dune build

test:
	dune runtest

# dune-file formatting only: ocamlformat is not part of the toolchain
# (see dune-project), so @fmt checks the build metadata
fmt:
	dune build @fmt

# chaos smoke: a short randomized fault-injection sweep (fixed seed, so
# it is deterministic) plus the harness self-test against a planted bug
chaos:
	dune exec bin/turquois_lab.exe -- chaos --runs 25 --seed 42 --quiet
	dune exec bin/turquois_lab.exe -- chaos --runs 3 --seed 7 --broken-machine --quiet > /dev/null 2>&1; \
	  test $$? -eq 1 || { echo "chaos self-test failed: planted bug not detected"; exit 1; }

# the gate a PR must pass: formatting, a warning-clean build, all tests,
# and the chaos smoke sweep
check: fmt build test chaos

bench:
	dune exec bench/main.exe -- --quick

clean:
	dune clean
