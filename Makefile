.PHONY: all build test fmt check bench bench-json pool-smoke memo-smoke chaos clean

all: build

build:
	dune build

test:
	dune runtest

# dune-file formatting only: ocamlformat is not part of the toolchain
# (see dune-project), so @fmt checks the build metadata
fmt:
	dune build @fmt

# chaos smoke: a short randomized fault-injection sweep (fixed seed, so
# it is deterministic) plus the harness self-test against a planted bug
chaos:
	dune exec bin/turquois_lab.exe -- chaos --runs 25 --seed 42 --quiet
	dune exec bin/turquois_lab.exe -- chaos --runs 3 --seed 7 --broken-machine --quiet > /dev/null 2>&1; \
	  test $$? -eq 1 || { echo "chaos self-test failed: planted bug not detected"; exit 1; }

# pool smoke: a tiny sweep at -j 2 — catches domain-unsafe global state
# that the (mostly -j 1) unit tests would miss
pool-smoke:
	dune exec bin/turquois_lab.exe -- sigma --size 4 --runs 2 --rounds 40 -j 2 > /dev/null

# memo smoke: the hot-path contract — every result must be bit-identical
# with the single-run memoization off and on (exits non-zero otherwise)
memo-smoke:
	dune exec bin/turquois_lab.exe -- memocheck --quiet

# the gate a PR must pass: formatting, a warning-clean build, all tests,
# the chaos smoke sweep, the parallel-pool smoke and the memo smoke
check: fmt build test chaos pool-smoke memo-smoke

bench:
	dune exec bench/main.exe -- --quick

# regenerate the committed hot-path wall-clock baseline; the bench
# itself fails if memoized and unmemoized results diverge, so this
# doubles as the perf regression gate
bench-json:
	dune exec bench/main.exe -- --hotpath-baseline BENCH_pr5.json

clean:
	dune clean
