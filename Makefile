.PHONY: all build test fmt check bench bench-json pool-smoke chaos clean

all: build

build:
	dune build

test:
	dune runtest

# dune-file formatting only: ocamlformat is not part of the toolchain
# (see dune-project), so @fmt checks the build metadata
fmt:
	dune build @fmt

# chaos smoke: a short randomized fault-injection sweep (fixed seed, so
# it is deterministic) plus the harness self-test against a planted bug
chaos:
	dune exec bin/turquois_lab.exe -- chaos --runs 25 --seed 42 --quiet
	dune exec bin/turquois_lab.exe -- chaos --runs 3 --seed 7 --broken-machine --quiet > /dev/null 2>&1; \
	  test $$? -eq 1 || { echo "chaos self-test failed: planted bug not detected"; exit 1; }

# pool smoke: a tiny sweep at -j 2 — catches domain-unsafe global state
# that the (mostly -j 1) unit tests would miss
pool-smoke:
	dune exec bin/turquois_lab.exe -- sigma --size 4 --runs 2 --rounds 40 -j 2 > /dev/null

# the gate a PR must pass: formatting, a warning-clean build, all tests,
# the chaos smoke sweep and the parallel-pool smoke
check: fmt build test chaos pool-smoke

bench:
	dune exec bench/main.exe -- --quick

# regenerate the committed pool wall-clock baseline
bench-json:
	dune exec bench/main.exe -- --pool-baseline BENCH_pr3.json

clean:
	dune clean
