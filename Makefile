.PHONY: all build test fmt check bench clean

all: build

build:
	dune build

test:
	dune runtest

# dune-file formatting only: ocamlformat is not part of the toolchain
# (see dune-project), so @fmt checks the build metadata
fmt:
	dune build @fmt

# the gate a PR must pass: formatting, a warning-clean build, all tests
check: fmt build test

bench:
	dune exec bench/main.exe -- --quick

clean:
	dune clean
