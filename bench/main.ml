(* Benchmark harness: regenerates every table of the paper's evaluation
   and runs Bechamel micro-benchmarks of the building blocks.

       dune exec bench/main.exe                 # everything
       dune exec bench/main.exe -- --reps 50    # paper's repetition count
       dune exec bench/main.exe -- --quick      # small sizes, few reps
       dune exec bench/main.exe -- --micro-only # just the Bechamel part

   Sections:
     1. Tables 1-3  — average latency ± 95% CI per (protocol, n,
        proposal distribution, fault load), next to the published
        numbers.
     2. σ sweep     — the Section 5 liveness bound, exercised in the
        abstract round model.
     3. Phases      — decision-phase distributions (§7.3).
     4. Bechamel    — one Test.make per paper table (host-CPU cost of a
        representative simulated cell) plus the cryptographic
        primitives. *)

let reps = ref 15
let sizes = ref Harness.Paper.group_sizes
let tables = ref true
let sigma = ref true
let adversary = ref true
let phases = ref true
let workload = ref true
let micro = ref true
let seed = ref 1000L
let json_out = ref None
let jobs = ref (Harness.Pool.default_jobs ())
let pool_baseline = ref None
let hotpath_baseline = ref None
let baseline_out = ref None
let compare_against = ref None
let threshold = ref 0.5
let scaling_out = ref None
let scaling_sizes = ref Harness.Scaling.default_ns
let scaling_cap = ref 128
let scaling_radio_cap = ref 256
let scaling_timeout = ref 30.0

(* version of the JSON layouts this binary writes (summary,
   regression-gate baseline and scaling document); --compare rejects a
   baseline written by a different generation instead of mis-reading
   it. v3 added the scaling sweep document and the engine high-water
   metrics; v4 added the Sampled-radio task ([radio_cap]) and the
   minor/major allocation-word split. *)
let bench_schema_version = 4

let speclist =
  [
    ("--reps", Arg.Set_int reps, "N repetitions per table cell (default 15; paper used 50)");
    ( "--sizes",
      Arg.String
        (fun s -> sizes := List.map int_of_string (String.split_on_char ',' s)),
      "N,N,... group sizes (default 4,7,10,13,16)" );
    ( "--quick",
      Arg.Unit
        (fun () ->
          reps := 5;
          sizes := [ 4; 7 ]),
      " small sizes and few repetitions" );
    ("--seed", Arg.Int (fun s -> seed := Int64.of_int s), "S base seed (default 1000)");
    ( "--tables-only",
      Arg.Unit
        (fun () ->
          sigma := false;
          adversary := false;
          phases := false;
          workload := false;
          micro := false),
      " only regenerate Tables 1-3" );
    ( "--micro-only",
      Arg.Unit
        (fun () ->
          tables := false;
          sigma := false;
          adversary := false;
          phases := false;
          workload := false),
      " only the Bechamel micro-benchmarks" );
    ( "--adversary-only",
      Arg.Unit
        (fun () ->
          tables := false;
          sigma := false;
          phases := false;
          workload := false;
          micro := false),
      " only the sigma-edge vs static-loss comparison" );
    ( "--workload-only",
      Arg.Unit
        (fun () ->
          tables := false;
          sigma := false;
          adversary := false;
          phases := false;
          micro := false),
      " only the consensus-service workload sweep" );
    ( "--json",
      Arg.String (fun f -> json_out := Some f),
      "FILE write a machine-readable summary (table cells + per-load metrics) to FILE" );
    ( "-j",
      Arg.Set_int jobs,
      "N worker domains for independent runs (default: cores minus one); results \
       are bit-identical for every N" );
    ( "--jobs",
      Arg.Set_int jobs,
      "N same as -j" );
    ( "--pool-baseline",
      Arg.String (fun f -> pool_baseline := Some f),
      "FILE time a fixed grid sequentially and at -j N, write the comparison to \
       FILE, and run nothing else" );
    ( "--hotpath-baseline",
      Arg.String (fun f -> hotpath_baseline := Some f),
      "FILE time a fixed grid with the hot-path memoization off and on, assert \
       bit-identical results, write the comparison to FILE, and run nothing else" );
    ( "--baseline-out",
      Arg.String (fun f -> baseline_out := Some f),
      "FILE run the regression-gate grid (memoized, -j 1), write wall-clock and \
       airtime baselines to FILE, and run nothing else" );
    ( "--compare",
      Arg.String (fun f -> compare_against := Some f),
      "FILE re-run the regression-gate grid and diff it against the baseline in \
       FILE; exit non-zero when a metric regresses beyond --threshold" );
    ( "--threshold",
      Arg.Set_float threshold,
      "X allowed relative regression for --compare (default 0.5 = +50%)" );
    ( "--scaling-out",
      Arg.String (fun f -> scaling_out := Some f),
      "FILE run the scaling sweep (Turquois vs sample-based consensus at \
       16/64/256/1024), write the document to FILE, and run nothing else; \
       --compare accepts the document as a baseline" );
    ( "--scaling-sizes",
      Arg.String
        (fun s ->
          scaling_sizes := List.map int_of_string (String.split_on_char ',' s)),
      "N,N,... group sizes for --scaling-out (default 16,64,128,256,1024)" );
    ( "--scaling-cap",
      Arg.Set_int scaling_cap,
      "N largest n Turquois runs at in the scaling sweep (default 128)" );
    ( "--scaling-radio-cap",
      Arg.Set_int scaling_radio_cap,
      "N largest n the sampled protocol runs over the contended radio at \
       (default 256)" );
  ]

let banner title =
  let line = String.make 72 '=' in
  Printf.printf "%s\n%s\n%s\n" line title line

(* --- section 1: the paper's tables ---------------------------------------- *)

let run_tables () =
  let options =
    {
      Harness.Experiment.default_options with
      reps = !reps;
      group_sizes = !sizes;
      base_seed = !seed;
      progress = Some (fun line -> Printf.eprintf "  [%s]\n%!" line);
      jobs = Some !jobs;
    }
  in
  List.map
    (fun load ->
      banner
        (Printf.sprintf "Table %d: %s fault load (%d reps/cell)"
           (Harness.Experiment.table_number load)
           (Net.Fault.load_to_string load)
           !reps);
      let results = Harness.Experiment.run_table ~options load in
      print_string (Harness.Experiment.render_table load results);
      print_newline ();
      print_string (Harness.Experiment.render_comparison load results);
      print_newline ();
      (load, results))
    [ Net.Fault.Failure_free; Net.Fault.Fail_stop; Net.Fault.Byzantine ]

(* --- section 1b: sigma-edge adversary vs matched static loss --------------- *)

type adversary_point = {
  adv_n : int;
  adv_k : int;
  adv_sigma : int;
  adv_rate : float;  (** per-receiver omission rate the adversary achieved *)
  adv_drops : int;
  adv_edge : Util.Stats.summary;  (** completion latency, ms, censored *)
  adv_static : Util.Stats.summary;
  adv_edge_timeouts : int;
  adv_static_timeouts : int;
}

let silent_conditions = { Net.Fault.loss_prob = 0.0; jam_windows = [] }

(* Every correct process contributes its decision latency, censored at the
   timeout when it never decides: the sigma-edge adversary sits exactly at
   the Section 5 liveness bound, so starving a victim forever is expected
   behaviour, and dropping those processes from the mean would hide
   precisely the delay the adversary buys. *)
let censored_latencies ~timeout (r : Harness.Runner.result) =
  List.map
    (fun i ->
      match List.assoc_opt i r.latencies with
      | Some l -> 1000.0 *. l
      | None -> 1000.0 *. timeout)
    r.correct

let run_adversary () =
  banner
    "Adaptive adversary: sigma-edge omissions vs iid loss at the same rate";
  let timeout = 10.0 in
  let reps = max 3 (min !reps 10) in
  let points =
    List.map
      (fun n ->
        let k = n - Net.Fault.max_f n in
        let s = Net.Fault.sigma ~n ~k ~t:0 in
        (* pass 1: the adaptive adversary, counting the drops it spends *)
        let edge_runs =
          List.init reps (fun i ->
              let handle = ref None in
              let r =
                Harness.Runner.run ~protocol:Harness.Runner.Turquois ~n
                  ~dist:Harness.Runner.Divergent ~load:Net.Fault.Failure_free
                  ~conditions:silent_conditions
                  ~attach:(fun radio ->
                    handle := Some (Net.Fault.sigma_edge radio ~n ~k ~t:0 ()))
                  ~timeout
                  ~seed:(Int64.add !seed (Int64.of_int (7000 + i)))
                  ()
              in
              let drops =
                match !handle with
                | Some h -> Net.Fault.sigma_edge_drops h
                | None -> 0
              in
              (r, drops))
        in
        let drops = List.fold_left (fun a (_, d) -> a + d) 0 edge_runs in
        let opportunities =
          List.fold_left
            (fun a ((r : Harness.Runner.result), _) ->
              a + (r.frames_sent * (n - 1)))
            0 edge_runs
        in
        let rate =
          if opportunities = 0 then 0.0
          else float_of_int drops /. float_of_int opportunities
        in
        (* pass 2: iid loss at the rate the adversary actually achieved *)
        let static_runs =
          List.init reps (fun i ->
              Harness.Runner.run ~protocol:Harness.Runner.Turquois ~n
                ~dist:Harness.Runner.Divergent ~load:Net.Fault.Failure_free
                ~conditions:{ Net.Fault.loss_prob = rate; jam_windows = [] }
                ~timeout
                ~seed:(Int64.add !seed (Int64.of_int (7000 + i)))
                ())
        in
        {
          adv_n = n;
          adv_k = k;
          adv_sigma = s;
          adv_rate = rate;
          adv_drops = drops;
          adv_edge =
            Util.Stats.summarize
              (List.concat_map
                 (fun (r, _) -> censored_latencies ~timeout r)
                 edge_runs);
          adv_static =
            Util.Stats.summarize
              (List.concat_map (censored_latencies ~timeout) static_runs);
          adv_edge_timeouts =
            List.length
              (List.filter
                 (fun ((r : Harness.Runner.result), _) -> r.timed_out)
                 edge_runs);
          adv_static_timeouts =
            List.length
              (List.filter
                 (fun (r : Harness.Runner.result) -> r.timed_out)
                 static_runs);
        })
      [ 4; 7 ]
  in
  let row p =
    [
      string_of_int p.adv_n;
      string_of_int p.adv_sigma;
      Printf.sprintf "%.1f%%" (100.0 *. p.adv_rate);
      Printf.sprintf "%.1f ms" p.adv_edge.Util.Stats.mean;
      Printf.sprintf "%d/%d" p.adv_edge_timeouts reps;
      Printf.sprintf "%.1f ms" p.adv_static.Util.Stats.mean;
      Printf.sprintf "%d/%d" p.adv_static_timeouts reps;
    ]
  in
  print_string
    (Util.Tablefmt.render
       ~header:
         [
           "n";
           "sigma";
           "omission rate";
           "sigma-edge";
           "stalls";
           "static loss";
           "stalls";
         ]
       ~rows:(List.map row points) ());
  print_newline ();
  points

let adversary_to_json p =
  let slowdown =
    if p.adv_static.Util.Stats.mean > 0.0 then
      p.adv_edge.Util.Stats.mean /. p.adv_static.Util.Stats.mean
    else 0.0
  in
  Obs.Json.Obj
    [
      ("n", Obs.Json.Int p.adv_n);
      ("k", Obs.Json.Int p.adv_k);
      ("sigma", Obs.Json.Int p.adv_sigma);
      ("matched_loss_rate", Obs.Json.Float p.adv_rate);
      ("drops", Obs.Json.Int p.adv_drops);
      ("sigma_edge_mean_ms", Obs.Json.Float p.adv_edge.Util.Stats.mean);
      ("sigma_edge_ci95_ms", Obs.Json.Float p.adv_edge.Util.Stats.ci95);
      ("sigma_edge_timeouts", Obs.Json.Int p.adv_edge_timeouts);
      ("static_loss_mean_ms", Obs.Json.Float p.adv_static.Util.Stats.mean);
      ("static_loss_ci95_ms", Obs.Json.Float p.adv_static.Util.Stats.ci95);
      ("static_loss_timeouts", Obs.Json.Int p.adv_static_timeouts);
      ("slowdown", Obs.Json.Float slowdown);
    ]

(* --- section 1c: consensus-service workload --------------------------------- *)

let workload_loads = [ 10.0; 30.0; 120.0 ]

let workload_base () =
  {
    (Harness.Workload.default ~n:4) with
    (* a longer run than the default config: 60 commands at the lowest
       load span only ~3 s, so the fixed decide-and-deliver tail lag
       dominates the sustained-throughput ratio and hides the knee *)
    Harness.Workload.capacity = 72;
    commands = 120;
    seed = Util.Rng.derive ~base:!seed [ 71 ];
  }

let run_workload () =
  banner
    "Consensus-service workload: offered load vs sustained decisions and latency";
  let reps = max 2 (min !reps 4) in
  let points =
    Harness.Workload.sweep ~jobs:!jobs ~base:(workload_base ()) ~loads:workload_loads
      ~reps ()
  in
  print_string (Harness.Workload.render_points points);
  print_newline ();
  points

let workload_point_to_json (p : Harness.Workload.point) =
  Obs.Json.Obj
    [
      ("offered_load_cmd_s", Obs.Json.Float p.Harness.Workload.load_point);
      ("throughput_cmd_s", Obs.Json.Float p.Harness.Workload.mean_throughput);
      ("decisions_per_s", Obs.Json.Float p.Harness.Workload.mean_decisions_per_sec);
      ("latency_p50_s", Obs.Json.Float p.Harness.Workload.mean_p50);
      ("latency_p99_s", Obs.Json.Float p.Harness.Workload.mean_p99);
      ("delivered_commands", Obs.Json.Float p.Harness.Workload.mean_delivered);
      ("reps", Obs.Json.Int p.Harness.Workload.reps);
    ]

let workload_to_json points =
  Obs.Json.Obj
    [
      ("loads", Obs.Json.List (List.map (fun l -> Obs.Json.Float l) workload_loads));
      ("points", Obs.Json.List (List.map workload_point_to_json points));
      ( "saturation_knee_cmd_s",
        match Harness.Workload.knee points with
        | Some k -> Obs.Json.Float k
        | None -> Obs.Json.Null );
    ]

(* --- machine-readable summary ---------------------------------------------- *)

let cell_to_json (cr : Harness.Experiment.cell_result) =
  Obs.Json.Obj
    [
      ("protocol", Obs.Json.String (Harness.Runner.protocol_to_string cr.cell.protocol));
      ("n", Obs.Json.Int cr.cell.n);
      ("dist", Obs.Json.String (Harness.Runner.dist_to_string cr.cell.dist));
      ("mean_ms", Obs.Json.Float cr.summary.mean);
      ("ci95_ms", Obs.Json.Float cr.summary.ci95);
      ("decided_fraction", Obs.Json.Float cr.decided_fraction);
      ("agreement_violations", Obs.Json.Int cr.agreement_violations);
      ("validity_violations", Obs.Json.Int cr.validity_violations);
      ("timeouts", Obs.Json.Int cr.timeouts);
    ]

(* one representative run per fault load so the JSON carries a full
   metrics snapshot alongside the latency aggregates *)
let metrics_json () =
  Obs.Json.Obj
    (List.map
       (fun load ->
         let r =
           Harness.Runner.run ~protocol:Harness.Runner.Turquois ~n:4
             ~dist:Harness.Runner.Unanimous ~load ~seed:!seed ()
         in
         (Net.Fault.load_to_string load, Obs.Metrics.to_json r.metrics))
       [ Net.Fault.Failure_free; Net.Fault.Fail_stop; Net.Fault.Byzantine ])

let write_json file table_results adversary_results workload_results =
  let doc =
    Obs.Json.Obj
      [
        ("schema_version", Obs.Json.Int bench_schema_version);
        ("reps", Obs.Json.Int !reps);
        ("sizes", Obs.Json.List (List.map (fun n -> Obs.Json.Int n) !sizes));
        ("seed", Obs.Json.String (Int64.to_string !seed));
        ( "tables",
          Obs.Json.List
            (List.map
               (fun (load, results) ->
                 Obs.Json.Obj
                   [
                     ("table", Obs.Json.Int (Harness.Experiment.table_number load));
                     ("load", Obs.Json.String (Net.Fault.load_to_string load));
                     ("cells", Obs.Json.List (List.map cell_to_json results));
                   ])
               table_results) );
        ( "adversary",
          Obs.Json.List (List.map adversary_to_json adversary_results) );
        ("workload", workload_to_json workload_results);
        ("metrics", metrics_json ());
      ]
  in
  let oc = open_out file in
  output_string oc (Obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.eprintf "wrote JSON summary to %s\n%!" file

(* --- section 2: sigma sweep ------------------------------------------------ *)

let run_sigma () =
  banner "Section 5 liveness bound: omissions per round vs progress";
  List.iter
    (fun (n, byz) ->
      let t = List.length byz in
      let k = n - Net.Fault.max_f n in
      let rows =
        Harness.Sweeps.sigma_sweep ~n ~k ~byzantine:byz ~runs_per_point:8 ~rounds:90
          ~beyond:3 ~base_seed:!seed ~jobs:!jobs ()
      in
      print_string (Harness.Sweeps.render_sigma ~n ~k ~t rows);
      print_newline ())
    [ (4, []); (8, []); (8, [ 7 ]) ]

(* --- section 3: decision phases ------------------------------------------- *)

let run_phases () =
  banner "Decision phases (paper 7.3): unanimous vs divergent";
  let rows =
    Harness.Sweeps.phase_distribution ~n:10 ~reps:20 ~base_seed:!seed ~jobs:!jobs
      ~loads:[ Net.Fault.Failure_free; Net.Fault.Byzantine ] ()
  in
  print_string (Harness.Sweeps.render_phases ~n:10 rows);
  print_newline ()

(* --- section 3b: ablations -------------------------------------------------- *)

let run_ablations () =
  banner "Ablations: the design choices DESIGN.md calls out";
  let rows = Harness.Sweeps.ablations ~n:10 ~reps:10 ~base_seed:!seed ~jobs:!jobs () in
  print_string (Harness.Sweeps.render_ablations ~n:10 rows);
  print_newline ()

(* --- pool baseline ---------------------------------------------------------- *)

(* Wall-clock of one fixed grid, sequential vs -j N, as a committed
   baseline for the run pool. The grid is the σ sweep at n=8 plus one
   Table-1 cell — enough independent tasks (pool task = grid point /
   repetition) for domains to matter on multi-core hosts. The row lists
   and merged metrics are asserted identical across the two runs, so
   the baseline doubles as an end-to-end determinism check. *)
let run_pool_baseline file =
  banner (Printf.sprintf "Pool baseline: sequential vs -j %d wall clock" !jobs);
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let n = 8 in
  let k = n - Net.Fault.max_f n in
  let sweep j () =
    Harness.Sweeps.sigma_sweep_merged ~n ~k ~runs_per_point:8 ~rounds:90 ~beyond:3
      ~base_seed:!seed ~jobs:j ()
  in
  let cell j () =
    Harness.Experiment.run_cell ~reps:12 ~base_seed:!seed ~jobs:j
      {
        Harness.Experiment.protocol = Harness.Runner.Turquois;
        n = 7;
        dist = Harness.Runner.Divergent;
        load = Net.Fault.Failure_free;
      }
  in
  (* warm the per-domain signature key caches so the first timed run
     does not pay one-time key generation *)
  ignore (cell 1 ());
  let (rows_seq, metrics_seq), sweep_seq_s = time (sweep 1) in
  let (rows_par, metrics_par), sweep_par_s = time (sweep !jobs) in
  let cell_seq, cell_seq_s = time (cell 1) in
  let cell_par, cell_par_s = time (cell !jobs) in
  let identical =
    rows_seq = rows_par && metrics_seq = metrics_par
    && cell_seq.Harness.Experiment.summary = cell_par.Harness.Experiment.summary
  in
  if not identical then failwith "pool baseline: -j 1 and -j N results differ";
  let section name seq par =
    Obs.Json.Obj
      [
        ("grid", Obs.Json.String name);
        ("sequential_s", Obs.Json.Float seq);
        ("parallel_s", Obs.Json.Float par);
        ("speedup", Obs.Json.Float (if par > 0.0 then seq /. par else 0.0));
      ]
  in
  let doc =
    Obs.Json.Obj
      [
        ("bench", Obs.Json.String "pool-baseline");
        ("jobs", Obs.Json.Int !jobs);
        ( "recommended_domains",
          Obs.Json.Int (Domain.recommended_domain_count ()) );
        ("seed", Obs.Json.String (Int64.to_string !seed));
        ("identical_results", Obs.Json.Bool identical);
        ( "sections",
          Obs.Json.List
            [
              section
                (Printf.sprintf "sigma-sweep n=%d 8 runs/point 90 rounds" n)
                sweep_seq_s sweep_par_s;
              section "table1 turquois n=7 divergent 12 reps" cell_seq_s cell_par_s;
            ] );
      ]
  in
  let oc = open_out file in
  output_string oc (Obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "sigma sweep: %.2f s sequential, %.2f s at -j %d\n\
     table cell:  %.2f s sequential, %.2f s at -j %d\n\
     results identical across jobs: %b\nwrote %s\n"
    sweep_seq_s sweep_par_s !jobs cell_seq_s cell_par_s !jobs identical file

(* --- hot-path baseline ------------------------------------------------------ *)

(* Wall-clock of a fixed grid with the single-run fast path disabled vs
   enabled. Everything runs at -j 1 so the comparison isolates the memo
   layers (frame interning, proof-digest cache, shared key material)
   from pool parallelism. The grid's rows, cell aggregates, chaos
   report and merged metrics — minus the memo instrumentation counters
   themselves — are asserted equal across the two passes, which is the
   hot-path contract: the fast path may only change wall-clock time,
   never a simulated result. The key caches are dropped before each
   pass so both sides pay their own key generation. *)
let run_hotpath_baseline file =
  banner "Hot-path baseline: memoization off vs on wall clock (-j 1)";
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let n = 8 in
  let k = n - Net.Fault.max_f n in
  let sweep () =
    Harness.Sweeps.sigma_sweep_merged ~n ~k ~runs_per_point:8 ~rounds:90 ~beyond:3
      ~base_seed:!seed ~jobs:1 ()
  in
  let cell () =
    Harness.Experiment.run_cell ~reps:12 ~base_seed:!seed ~jobs:1
      {
        Harness.Experiment.protocol = Harness.Runner.Turquois;
        n = 7;
        dist = Harness.Runner.Divergent;
        load = Net.Fault.Failure_free;
      }
  in
  let chaos () =
    Harness.Chaos.run_chaos ~n:4 ~runs:20 ~jobs:1 ~seed:!seed ()
  in
  let pass memo f () =
    Core.Intern.with_memo memo (fun () ->
        Harness.Runner.clear_key_cache ();
        time f)
  in
  Printf.printf "sigma sweep (unmemoized pass may take minutes)...\n%!";
  let (rows_off, metrics_off), sweep_off_s = pass false sweep () in
  let (rows_on, metrics_on), sweep_on_s = pass true sweep () in
  let cell_off, cell_off_s = pass false cell () in
  let cell_on, cell_on_s = pass true cell () in
  let chaos_off, chaos_off_s = pass false chaos () in
  let chaos_on, chaos_on_s = pass true chaos () in
  let identical =
    rows_off = rows_on
    && Core.Intern.strip_metrics metrics_off = Core.Intern.strip_metrics metrics_on
    && cell_off = cell_on
    && chaos_off = chaos_on
  in
  if not identical then
    failwith "hotpath baseline: memoized and unmemoized results differ";
  let section name off on =
    Obs.Json.Obj
      [
        ("grid", Obs.Json.String name);
        ("unmemoized_s", Obs.Json.Float off);
        ("memoized_s", Obs.Json.Float on);
        ("speedup", Obs.Json.Float (if on > 0.0 then off /. on else 0.0));
      ]
  in
  let doc =
    Obs.Json.Obj
      [
        ("bench", Obs.Json.String "hotpath");
        ("seed", Obs.Json.String (Int64.to_string !seed));
        ("identical_results", Obs.Json.Bool identical);
        ( "sections",
          Obs.Json.List
            [
              section
                (Printf.sprintf "sigma-sweep n=%d 8 runs/point 90 rounds" n)
                sweep_off_s sweep_on_s;
              section "table1 turquois n=7 divergent 12 reps" cell_off_s cell_on_s;
              section "chaos n=4 20 runs" chaos_off_s chaos_on_s;
            ] );
      ]
  in
  let oc = open_out file in
  output_string oc (Obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "sigma sweep: %.2f s unmemoized, %.2f s memoized (%.1fx)\n\
     table cell:  %.2f s unmemoized, %.2f s memoized (%.1fx)\n\
     chaos:       %.2f s unmemoized, %.2f s memoized (%.1fx)\n\
     results identical with memoization on and off: %b\nwrote %s\n"
    sweep_off_s sweep_on_s
    (if sweep_on_s > 0.0 then sweep_off_s /. sweep_on_s else 0.0)
    cell_off_s cell_on_s
    (if cell_on_s > 0.0 then cell_off_s /. cell_on_s else 0.0)
    chaos_off_s chaos_on_s
    (if chaos_on_s > 0.0 then chaos_off_s /. chaos_on_s else 0.0)
    identical file

(* --- section 3c: regression gate ------------------------------------------ *)

(* The regression-gate grid: a fast, fully deterministic slice of the
   benchmark surface (memoized, -j 1). Wall-clock sections catch
   performance regressions; the frame/byte/airtime counts of a
   representative run are bit-deterministic for a fixed seed, so any
   drift there signals a protocol behavior change — rebaseline
   deliberately with --baseline-out when that change is intentional. *)
let gate_grid () =
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    ignore v;
    Unix.gettimeofday () -. t0
  in
  let n = 8 in
  let k = n - Net.Fault.max_f n in
  Core.Intern.with_memo true (fun () ->
      Harness.Runner.clear_key_cache ();
      let sweep_s =
        time (fun () ->
            Harness.Sweeps.sigma_sweep_merged ~n ~k ~runs_per_point:8 ~rounds:90
              ~beyond:3 ~base_seed:!seed ~jobs:1 ())
      in
      let cell_s =
        time (fun () ->
            Harness.Experiment.run_cell ~reps:12 ~base_seed:!seed ~jobs:1
              {
                Harness.Experiment.protocol = Harness.Runner.Turquois;
                n = 7;
                dist = Harness.Runner.Divergent;
                load = Net.Fault.Failure_free;
              })
      in
      let chaos_s =
        time (fun () -> Harness.Chaos.run_chaos ~n:4 ~runs:20 ~jobs:1 ~seed:!seed ())
      in
      let wl = ref None in
      let workload_s =
        time (fun () -> wl := Some (Harness.Workload.run (workload_base ())))
      in
      let wl = Option.get !wl in
      let rep =
        Harness.Runner.run ~protocol:Harness.Runner.Turquois ~n:7
          ~dist:Harness.Runner.Divergent ~load:Net.Fault.Failure_free ~seed:!seed ()
      in
      let airtime =
        List.fold_left
          (fun acc (s : Obs.Metrics.sample) ->
            if s.name = "radio.airtime_s" then
              match s.value with
              | Obs.Metrics.Gauge g -> acc +. g
              | Obs.Metrics.Counter c -> acc +. float_of_int c
              | Obs.Metrics.Histogram _ -> acc
            else acc)
          0.0 rep.Harness.Runner.metrics
      in
      let wall =
        [
          ("sigma_sweep_s", sweep_s);
          ("table_cell_s", cell_s);
          ("chaos_s", chaos_s);
          ("workload_s", workload_s);
        ]
      in
      let deterministic =
        [
          ("frames_sent", float_of_int rep.Harness.Runner.frames_sent);
          ("bytes_sent", float_of_int rep.Harness.Runner.bytes_sent);
          ("airtime_s", airtime);
          ("sim_duration_s", rep.Harness.Runner.duration);
          ( "workload_delivered",
            float_of_int wl.Harness.Workload.delivered_commands );
          ( "workload_slots",
            float_of_int
              (wl.Harness.Workload.committed_slots
             + wl.Harness.Workload.skipped_slots) );
          ("workload_sim_s", wl.Harness.Workload.duration);
        ]
      in
      (wall, deterministic))

let gate_to_json (wall, deterministic) =
  let fields l = List.map (fun (k, v) -> (k, Obs.Json.Float v)) l in
  Obs.Json.Obj
    [
      ("bench", Obs.Json.String "regression-gate");
      ("schema_version", Obs.Json.Int bench_schema_version);
      ("seed", Obs.Json.String (Int64.to_string !seed));
      ("wall", Obs.Json.Obj (fields wall));
      ("airtime", Obs.Json.Obj (fields deterministic));
    ]

let run_baseline_out file =
  banner "Regression-gate baseline (memoized, -j 1)";
  let ((wall, deterministic) as gate) = gate_grid () in
  List.iter
    (fun (k, v) -> Printf.printf "  %-16s %12.4f\n" k v)
    (wall @ deterministic);
  let oc = open_out file in
  output_string oc (Obs.Json.to_string (gate_to_json gate));
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" file

(* --- section 3d: scaling sweep --------------------------------------------- *)

let run_scaling_out file =
  banner "Scaling sweep: Turquois vs sample-based consensus past n=16";
  let points =
    Harness.Scaling.sweep ~jobs:!jobs ~ns:!scaling_sizes ~turquois_cap:!scaling_cap
      ~radio_cap:!scaling_radio_cap ~timeout:!scaling_timeout ~seed:!seed ()
  in
  print_string (Harness.Scaling.render points);
  let doc =
    Harness.Scaling.to_json ~schema_version:bench_schema_version ~ns:!scaling_sizes
      ~turquois_cap:!scaling_cap ~radio_cap:!scaling_radio_cap
      ~timeout:!scaling_timeout ~seed:!seed points
  in
  let oc = open_out file in
  output_string oc (Obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" file

(* Re-run the sweep with the baseline's own parameters and diff every
   point. All fields but [mem_words] are bit-deterministic for the
   recorded seed: coverage and timeouts must match exactly, the
   numeric fields fail on drift beyond --threshold in either direction
   (an intentional protocol change is a deliberate rebaseline), and
   the allocation-word fields ([mem_words] and its minor/major split) —
   per-domain allocation deltas, exact up to a small cache-warmup
   constant — only fail on growth. *)
let run_compare_scaling file (base : Harness.Scaling.doc) =
  banner
    (Printf.sprintf "Scaling gate: re-run sweep vs %s (threshold %.0f%%)" file
       (100.0 *. !threshold));
  let points =
    Harness.Scaling.sweep ~jobs:!jobs ~ns:base.ns ~turquois_cap:base.turquois_cap
      ~radio_cap:base.radio_cap ~timeout:base.timeout ~seed:base.seed ()
  in
  let failures = ref 0 in
  let fail fmt = incr failures; Printf.printf fmt in
  (match
     List.combine base.points points
   with
  | pairs ->
      List.iter
        (fun ((b : Harness.Scaling.point), (p : Harness.Scaling.point)) ->
          let tag = Printf.sprintf "%s n=%d" p.protocol p.n in
          if b.protocol <> p.protocol || b.n <> p.n then
            fail "  %s: grid mismatch vs baseline %s n=%d — FAIL\n" tag b.protocol
              b.n
          else begin
            if p.decided <> b.decided || p.timed_out <> b.timed_out then
              fail "  %s: coverage %d/%d t/o=%b vs baseline %d/%d t/o=%b — FAIL\n"
                tag p.decided p.honest p.timed_out b.decided b.honest b.timed_out;
            let drift name bv pv =
              let rel =
                if bv = 0.0 then if pv = 0.0 then 0.0 else infinity
                else (pv -. bv) /. bv
              in
              if Float.abs rel > !threshold then
                fail "  %s/%-12s %12.4f -> %12.4f  %+8.1f%% — FAIL\n" tag name bv
                  pv (100.0 *. rel)
            in
            drift "mean_ms" (1e3 *. b.mean_latency) (1e3 *. p.mean_latency);
            drift "msgs" (float_of_int b.msgs) (float_of_int p.msgs);
            drift "bytes" (float_of_int b.bytes) (float_of_int p.bytes);
            drift "airtime_s" b.airtime p.airtime;
            drift "live_peak" (float_of_int b.live_peak) (float_of_int p.live_peak);
            drift "arena_hw" (float_of_int b.arena_hw) (float_of_int p.arena_hw);
            let grow name bv pv =
              let rel =
                if bv = 0 then 0.0
                else float_of_int (pv - bv) /. float_of_int bv
              in
              if rel > !threshold then
                fail "  %s/%-12s %d -> %d  %+.1f%% — FAIL\n" tag name bv pv
                  (100.0 *. rel)
            in
            grow "mem_words" b.mem_words p.mem_words;
            grow "minor_words" b.minor_words p.minor_words;
            grow "major_words" b.major_words p.major_words
          end)
        pairs
  | exception Invalid_argument _ ->
      fail "  point count %d vs baseline %d — FAIL\n" (List.length points)
        (List.length base.points));
  if !failures > 0 then begin
    Printf.printf "scaling gate: %d mismatch(es) vs %s — FAIL\n" !failures file;
    exit 1
  end
  else Printf.printf "scaling gate: all points within %.0f%% of %s\n"
      (100.0 *. !threshold) file

let rec run_compare file =
  let read_file f =
    let ic = open_in f in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let base =
    match Obs.Json.parse (read_file file) with
    | Ok j -> j
    | Error e -> failwith (Printf.sprintf "%s: %s" file e)
  in
  (* dispatch on the document's self-description: a scaling document
     compares against a re-run of its own sweep, anything else is the
     regression-gate grid *)
  match Option.bind (Obs.Json.member "bench" base) Obs.Json.to_str with
  | Some "scaling" -> begin
      (match
         Option.bind (Obs.Json.member "bench_schema_version" base) Obs.Json.to_int
       with
      | Some v when v = bench_schema_version -> ()
      | Some v ->
          failwith
            (Printf.sprintf
               "%s: scaling schema version %d; this build writes version %d — \
                regenerate it with --scaling-out"
               file v bench_schema_version)
      | None -> failwith (Printf.sprintf "%s: no bench_schema_version" file));
      match Harness.Scaling.of_json base with
      | Ok doc -> run_compare_scaling file doc
      | Error e -> failwith (Printf.sprintf "%s: %s" file e)
    end
  | Some _ | None -> run_compare_gate file base

and run_compare_gate file base =
  banner
    (Printf.sprintf "Regression gate: re-run grid vs %s (threshold +%.0f%%)" file
       (100.0 *. !threshold));
  (match Option.bind (Obs.Json.member "schema_version" base) Obs.Json.to_int with
  | Some v when v = bench_schema_version -> ()
  | Some v ->
      failwith
        (Printf.sprintf
           "%s: baseline schema version %d; this build writes version %d — \
            regenerate it with --baseline-out"
           file v bench_schema_version)
  | None ->
      failwith
        (Printf.sprintf "%s: not a regression-gate baseline (no schema_version)"
           file));
  let section name =
    match Obs.Json.member name base with Some (Obs.Json.Obj kvs) -> kvs | _ -> []
  in
  let base_wall = section "wall" in
  let base_det = section "airtime" in
  let wall, deterministic = gate_grid () in
  let failures = ref 0 in
  (* wall clock only fails on increases (machines get faster for free);
     deterministic airtime metrics fail on drift in either direction *)
  let check ~two_sided sect_name baseline (k, v) =
    match Option.bind (List.assoc_opt k baseline) Obs.Json.to_float with
    | None -> Printf.printf "  %s/%-16s %12.4f  (no baseline value — skipped)\n" sect_name k v
    | Some b ->
        let rel =
          if b = 0.0 then if v = 0.0 then 0.0 else infinity else (v -. b) /. b
        in
        let regressed =
          if two_sided then Float.abs rel > !threshold else rel > !threshold
        in
        if regressed then incr failures;
        Printf.printf "  %s/%-16s %12.4f -> %12.4f  %+8.1f%%  %s\n" sect_name k b v
          (100.0 *. rel)
          (if regressed then "FAIL" else "ok")
  in
  List.iter (check ~two_sided:false "wall" base_wall) wall;
  List.iter (check ~two_sided:true "airtime" base_det) deterministic;
  if !failures > 0 then (
    Printf.printf "regression gate: %d metric(s) beyond %.0f%% of %s — FAIL\n"
      !failures
      (100.0 *. !threshold)
      file;
    exit 1)
  else
    Printf.printf "regression gate: all metrics within %.0f%% of %s\n"
      (100.0 *. !threshold)
      file

(* --- section 4: bechamel --------------------------------------------------- *)

open Bechamel
open Toolkit

(* one representative simulated cell per paper table, measured in host
   CPU time: n = 4, one run of each protocol under the table's fault
   load *)
let table_cell_test ~name ~load ~table_seed =
  Test.make ~name
    (Staged.stage (fun () ->
         List.iter
           (fun protocol ->
             ignore
               (Harness.Runner.run ~protocol ~n:4 ~dist:Harness.Runner.Unanimous ~load
                  ~seed:table_seed ()))
           [ Harness.Runner.Turquois; Harness.Runner.Abba; Harness.Runner.Bracha ]))

let crypto_tests () =
  let rng = Util.Rng.create ~seed:77L in
  let buf = Util.Rng.bytes rng 256 in
  let rsa = Crypto.Rsa.generate rng ~bits:512 in
  let signature = Crypto.Rsa.sign rsa.sec buf in
  let sk, vk = Crypto.Onetime_sig.generate rng ~owner:0 ~phases:8 in
  ignore sk;
  let proof = Crypto.Onetime_sig.reveal sk ~phase:3 Crypto.Onetime_sig.S_one in
  let params, key_shares = Crypto.Coin.setup rng ~n:4 ~threshold:2 ~pbits:512 ~qbits:160 () in
  let share = Crypto.Coin.create_share params key_shares.(0) ~name:"bench" in
  Test.make_grouped ~name:"crypto"
    [
      Test.make ~name:"sha256-256B" (Staged.stage (fun () -> Crypto.Sha256.digest buf));
      Test.make ~name:"hmac-256B"
        (Staged.stage (fun () -> Crypto.Hmac.mac ~key:proof buf));
      Test.make ~name:"onetime-check"
        (Staged.stage (fun () ->
             Crypto.Onetime_sig.check vk ~phase:3 Crypto.Onetime_sig.S_one ~proof));
      Test.make ~name:"rsa512-verify"
        (Staged.stage (fun () -> Crypto.Rsa.verify rsa.pub buf ~signature));
      Test.make ~name:"rsa512-sign" (Staged.stage (fun () -> Crypto.Rsa.sign rsa.sec buf));
      Test.make ~name:"coin-share-verify"
        (Staged.stage (fun () -> Crypto.Coin.verify_share params ~name:"bench" share));
    ]

let run_micro () =
  banner "Bechamel micro-benchmarks (host CPU time per operation)";
  let tests =
    Test.make_grouped ~name:"bench"
      [
        Test.make_grouped ~name:"tables"
          [
            table_cell_test ~name:"table1-cell-n4" ~load:Net.Fault.Failure_free
              ~table_seed:11L;
            table_cell_test ~name:"table2-cell-n4" ~load:Net.Fault.Fail_stop
              ~table_seed:12L;
            table_cell_test ~name:"table3-cell-n4" ~load:Net.Fault.Byzantine
              ~table_seed:13L;
          ];
        crypto_tests ();
      ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 2.0) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let estimate =
          match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> Float.nan
        in
        let r2 =
          match Analyze.OLS.r_square ols with Some r -> r | None -> Float.nan
        in
        (name, estimate, r2) :: acc)
      results []
    |> List.sort (fun (_, a, _) (_, b, _) -> compare a b)
  in
  let render (name, ns, r2) =
    let time =
      if ns >= 1.0e6 then Printf.sprintf "%10.3f ms" (ns /. 1.0e6)
      else if ns >= 1.0e3 then Printf.sprintf "%10.3f us" (ns /. 1.0e3)
      else Printf.sprintf "%10.1f ns" ns
    in
    [ name; time; Printf.sprintf "%.4f" r2 ]
  in
  print_string
    (Util.Tablefmt.render
       ~header:[ "benchmark"; "time/run"; "r^2" ]
       ~rows:(List.map render rows) ());
  print_newline ()

let () =
  Arg.parse speclist
    (fun anon -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" anon)))
    "bench/main.exe [options]";
  match
    (!pool_baseline, !hotpath_baseline, !baseline_out, !compare_against, !scaling_out)
  with
  | Some file, _, _, _, _ ->
      run_pool_baseline file;
      print_endline "benchmark complete."
  | None, Some file, _, _, _ ->
      run_hotpath_baseline file;
      print_endline "benchmark complete."
  | None, None, Some file, _, _ ->
      run_baseline_out file;
      print_endline "benchmark complete."
  | None, None, None, Some file, _ ->
      run_compare file;
      print_endline "benchmark complete."
  | None, None, None, None, Some file ->
      run_scaling_out file;
      print_endline "benchmark complete."
  | None, None, None, None, None ->
  let table_results = if !tables then run_tables () else [] in
  if !sigma then run_sigma ();
  let adversary_results = if !adversary then run_adversary () else [] in
  if !phases then run_phases ();
  if !phases then run_ablations ();
  let workload_results = if !workload then run_workload () else [] in
  if !micro then run_micro ();
  (match !json_out with
  | None -> ()
  | Some file -> write_json file table_results adversary_results workload_results);
  print_endline "benchmark complete."
