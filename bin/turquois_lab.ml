(* turquois-lab: command-line front end for the reproduction experiments.

   Subcommands:
     tables     — regenerate the paper's Tables 1-3 (latency per fault load)
     sigma      — sweep the omission budget around the liveness bound
     phases     — decision-phase distributions (paper 7.3)
     run        — one verbose consensus execution (or replay a saved reproducer)
     modelcheck — exhaustively check all adversary schedules of a small group *)

open Cmdliner

let progress line = Printf.eprintf "  %s\n%!" line

(* --- tables -------------------------------------------------------------- *)

let load_of_table = function
  | 1 -> Net.Fault.Failure_free
  | 2 -> Net.Fault.Fail_stop
  | 3 -> Net.Fault.Byzantine
  | t -> invalid_arg (Printf.sprintf "no table %d (1, 2 or 3)" t)

(* Every experiment command takes the two wire/hot-path escape hatches
   as one bundled term, so adding a flag here reaches all of them. *)
let flags_arg =
  let memo_doc =
    "Disable the single-run hot-path memoization (frame interning, proof-digest \
     cache, shared pre-distributed key material). Results are bit-identical \
     either way; this escape hatch only trades speed for simplicity when \
     timing or debugging the receive path."
  in
  let compact_doc =
    "Disable delta-compressed justification bundles: every frame carries its \
     justification messages in full instead of 8-byte back-references to \
     messages already shipped this phase. Decisions are unaffected (see \
     $(b,compactcheck)); frames get larger, so contended-radio timings shift."
  in
  let memo = Arg.(value & flag & info [ "no-memo" ] ~doc:memo_doc) in
  let compact = Arg.(value & flag & info [ "no-compact" ] ~doc:compact_doc) in
  Term.(const (fun no_memo no_compact -> (no_memo, no_compact)) $ memo $ compact)

let apply_flags (no_memo, no_compact) =
  Core.Intern.set_enabled (not no_memo);
  Core.Intern.set_compact (not no_compact)

let run_tables tables reps sizes seed timeout compare quiet jobs flags =
  apply_flags flags;
  let options =
    {
      Harness.Experiment.default_options with
      reps;
      group_sizes = sizes;
      base_seed = seed;
      timeout;
      progress = (if quiet then None else Some progress);
      jobs = Some jobs;
    }
  in
  List.iter
    (fun table ->
      let load = load_of_table table in
      let results = Harness.Experiment.run_table ~options load in
      print_string (Harness.Experiment.render_table load results);
      print_newline ();
      if compare then begin
        print_string (Harness.Experiment.render_comparison load results);
        print_newline ()
      end)
    tables;
  0

let tables_arg =
  let doc = "Which tables to regenerate (repeatable; default all three)." in
  Arg.(value & opt_all int [] & info [ "table"; "t" ] ~docv:"N" ~doc)

let reps_arg default =
  let doc = "Repetitions per cell (the paper uses 50)." in
  Arg.(value & opt int default & info [ "reps"; "r" ] ~docv:"REPS" ~doc)

let sizes_arg =
  let doc = "Group sizes to measure." in
  Arg.(value & opt (list int) Harness.Paper.group_sizes & info [ "sizes" ] ~docv:"N,..." ~doc)

let seed_arg =
  let doc = "Base seed; repetition i uses seed+i." in
  Arg.(value & opt int64 1000L & info [ "seed" ] ~docv:"SEED" ~doc)

let timeout_arg =
  let doc = "Per-run simulated-time limit in seconds." in
  Arg.(value & opt float 120.0 & info [ "timeout" ] ~docv:"SECONDS" ~doc)

let compare_arg =
  let doc = "Also print measured-vs-paper comparison tables." in
  Arg.(value & flag & info [ "compare"; "c" ] ~doc)

let quiet_arg =
  let doc = "Suppress per-cell progress on stderr." in
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for independent runs (default: available cores minus one). \
     Results are bit-identical for every value."
  in
  Arg.(value & opt int (Harness.Pool.default_jobs ()) & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let tables_cmd =
  let make tables reps sizes seed timeout compare quiet jobs flags =
    let tables = match tables with [] -> [ 1; 2; 3 ] | l -> l in
    run_tables tables reps sizes seed timeout compare quiet jobs flags
  in
  Cmd.v
    (Cmd.info "tables" ~doc:"Regenerate the paper's latency tables (Tables 1-3)")
    Term.(
      const make $ tables_arg $ reps_arg 50 $ sizes_arg $ seed_arg $ timeout_arg
      $ compare_arg $ quiet_arg $ jobs_arg $ flags_arg)

(* --- sigma ---------------------------------------------------------------- *)

let run_sigma n k byz runs rounds beyond seed jobs flags =
  apply_flags flags;
  let k = match k with Some k -> k | None -> n - Net.Fault.max_f n in
  let byzantine = List.init byz (fun i -> n - 1 - i) in
  let rows =
    Harness.Sweeps.sigma_sweep ~n ~k ~byzantine ~runs_per_point:runs ~rounds ~beyond
      ~base_seed:seed ~jobs ()
  in
  print_string (Harness.Sweeps.render_sigma ~n ~k ~t:(List.length byzantine) rows);
  0

let sigma_cmd =
  let n_arg =
    Arg.(value & opt int 8 & info [ "n"; "size" ] ~docv:"N" ~doc:"Group size.")
  in
  let k_arg =
    Arg.(value & opt (some int) None & info [ "k" ] ~docv:"K" ~doc:"Processes required to decide (default n-f).")
  in
  let byz_arg =
    Arg.(value & opt int 0 & info [ "byzantine" ] ~docv:"T" ~doc:"Number of Byzantine processes.")
  in
  let runs_arg =
    Arg.(value & opt int 10 & info [ "runs" ] ~docv:"RUNS" ~doc:"Runs per sweep point.")
  in
  let rounds_arg =
    Arg.(value & opt int 120 & info [ "rounds" ] ~docv:"R" ~doc:"Round horizon per run.")
  in
  let beyond_arg =
    Arg.(value & opt int 4 & info [ "beyond" ] ~docv:"B" ~doc:"Sweep this far past sigma.")
  in
  Cmd.v
    (Cmd.info "sigma" ~doc:"Sweep omissions per round around the sigma liveness bound")
    Term.(
      const run_sigma $ n_arg $ k_arg $ byz_arg $ runs_arg $ rounds_arg $ beyond_arg
      $ seed_arg $ jobs_arg $ flags_arg)

(* --- phases ---------------------------------------------------------------- *)

let run_phases n reps seed jobs flags =
  apply_flags flags;
  let rows =
    Harness.Sweeps.phase_distribution ~n ~reps ~base_seed:seed ~jobs
      ~loads:[ Net.Fault.Failure_free; Net.Fault.Byzantine ] ()
  in
  print_string (Harness.Sweeps.render_phases ~n rows);
  0

let phases_cmd =
  let n_arg = Arg.(value & opt int 10 & info [ "n"; "size" ] ~docv:"N" ~doc:"Group size.") in
  Cmd.v
    (Cmd.info "phases" ~doc:"Turquois decision-phase distributions (paper 7.3)")
    Term.(const run_phases $ n_arg $ reps_arg 30 $ seed_arg $ jobs_arg $ flags_arg)

(* --- messages ---------------------------------------------------------------- *)

let run_messages sizes reps seed =
  (* radio frames and bytes per consensus execution: the O(n^2) / O(n^3)
     message-complexity separation of Section 7 *)
  let header = [ "Group" ] @ List.concat_map (fun p -> [ p ^ " frames"; p ^ " kB" ])
      [ "Turquois"; "ABBA"; "Bracha" ] in
  let rows =
    List.map
      (fun n ->
        Printf.sprintf "n = %d" n
        :: List.concat_map
             (fun protocol ->
               let frames = ref [] and bytes = ref [] in
               for rep = 0 to reps - 1 do
                 let r =
                   Harness.Runner.run ~protocol ~n ~dist:Harness.Runner.Unanimous
                     ~load:Net.Fault.Failure_free
                     ~seed:(Int64.add seed (Int64.of_int rep)) ()
                 in
                 frames := float_of_int r.frames_sent :: !frames;
                 bytes := float_of_int r.bytes_sent :: !bytes
               done;
               [
                 Printf.sprintf "%.0f" (Util.Stats.mean !frames);
                 Printf.sprintf "%.1f" (Util.Stats.mean !bytes /. 1024.0);
               ])
             [ Harness.Runner.Turquois; Harness.Runner.Abba; Harness.Runner.Bracha ])
      sizes
  in
  print_string "Radio frames and kilobytes per failure-free unanimous consensus
";
  print_string (Util.Tablefmt.render ~header ~rows ());
  0

let messages_cmd =
  Cmd.v
    (Cmd.info "messages"
       ~doc:"Frames/bytes per consensus: the message-complexity separation")
    Term.(const run_messages $ sizes_arg $ reps_arg 5 $ seed_arg)

(* --- run ------------------------------------------------------------------- *)

let protocol_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "turquois" -> Ok Harness.Runner.Turquois
    | "bracha" -> Ok Harness.Runner.Bracha
    | "abba" -> Ok Harness.Runner.Abba
    | "sampled" -> Ok Harness.Runner.Sampled
    | other -> Error (`Msg (Printf.sprintf "unknown protocol %S" other))
  in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Harness.Runner.protocol_to_string p))

let load_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "failure-free" | "none" -> Ok Net.Fault.Failure_free
    | "fail-stop" | "crash" -> Ok Net.Fault.Fail_stop
    | "byzantine" | "byz" -> Ok Net.Fault.Byzantine
    | other -> Error (`Msg (Printf.sprintf "unknown fault load %S" other))
  in
  Arg.conv (parse, fun fmt l -> Format.pp_print_string fmt (Net.Fault.load_to_string l))

let run_replay file =
  match Model.Codec.load file with
  | Error msg ->
      Printf.eprintf "replay: %s\n" msg;
      1
  | Ok artifact ->
      Printf.printf "replay %s\n  %s\n" file (Model.Codec.describe artifact);
      let v = Model.Replay.run artifact in
      Printf.printf "  %s\n" v.detail;
      List.iter (fun s -> Printf.printf "    %s\n" s) v.violations;
      if v.ok then begin
        Printf.printf "  reproduced: outcome matches the artifact\n";
        0
      end
      else begin
        Printf.printf "  REPLAY MISMATCH: behavior changed since this artifact was extracted\n";
        1
      end

let run_single replay protocol n divergent load seed loss trace metrics trace_json profile
    sigma_edge jobs flags =
  apply_flags flags;
  match replay with
  | Some file -> run_replay file
  | None ->
  let dist = if divergent then Harness.Runner.Divergent else Harness.Runner.Unanimous in
  let conditions = { Net.Fault.benign_conditions with loss_prob = loss } in
  (* trace buffers are domain-local, so a meaningful event order only
     exists on one domain: tracing forces -j 1 *)
  if (trace || trace_json <> None) && jobs <> 1 then
    Printf.eprintf "  tracing active: forcing -j 1 (trace buffers are domain-local)\n%!";
  if trace || trace_json <> None then Net.Trace.start ();
  if profile then Obs.Prof.enable ();
  let attach =
    if not sigma_edge then None
    else
      Some
        (fun radio ->
          let k = n - Net.Fault.max_f n in
          ignore (Net.Fault.sigma_edge radio ~n ~k ~t:0 ()))
  in
  let result =
    Harness.Runner.run ~protocol ~n ~dist ~load ~conditions ~seed ?attach ()
  in
  Printf.printf "%s n=%d %s %s (seed %Ld)\n" (Harness.Runner.protocol_to_string protocol) n
    (Harness.Runner.dist_to_string dist)
    (Net.Fault.load_to_string load)
    seed;
  Printf.printf "  decided: %d/%d correct processes, agreement=%b validity=%b%s\n"
    (List.length result.latencies) (List.length result.correct) result.agreement
    result.validity
    (if result.timed_out then " TIMED-OUT" else "");
  List.iter
    (fun (i, latency) ->
      let value = List.assoc i result.decisions in
      let phase = List.assoc i result.decision_phases in
      Printf.printf "  p%-2d -> %d  at phase/round %-3d latency %8.2f ms\n" i value phase
        (latency *. 1000.0))
    result.latencies;
  Printf.printf "  radio: %d frames, %d bytes, %.3f s simulated\n" result.frames_sent
    result.bytes_sent result.duration;
  if metrics then begin
    print_endline "\n--- metrics ---";
    print_string (Obs.Metrics.render_table result.metrics)
  end;
  if profile then begin
    print_endline "\n--- hot-path profile (host wall clock; simulated results unaffected) ---";
    print_string (Obs.Prof.render_table (Obs.Prof.snapshot ()));
    Obs.Prof.disable ()
  end;
  (match trace_json with
  | None -> ()
  | Some file ->
      let written = Obs.Trace2.export_file file in
      Printf.printf "\nwrote %d trace events to %s\n" written file);
  if trace then begin
    Net.Trace.stop ();
    print_endline "\n--- protocol-level trace (radio tx suppressed; use the Trace API for all) ---";
    print_string
      (Net.Trace.render ~filter:(fun e -> e.Net.Trace.layer <> "radio") ~max_events:400 ())
  end
  else if trace_json <> None then Net.Trace.stop ();
  0

let run_cmd =
  let protocol_arg =
    Arg.(value & opt protocol_conv Harness.Runner.Turquois
         & info [ "protocol"; "p" ] ~docv:"PROTO" ~doc:"turquois, abba or bracha.")
  in
  let n_arg = Arg.(value & opt int 7 & info [ "n"; "size" ] ~docv:"N" ~doc:"Group size.") in
  let divergent_arg =
    Arg.(value & flag & info [ "divergent" ] ~doc:"Divergent proposals (default unanimous).")
  in
  let load_arg =
    Arg.(value & opt load_conv Net.Fault.Failure_free
         & info [ "load" ] ~docv:"LOAD" ~doc:"failure-free, fail-stop or byzantine.")
  in
  let loss_arg =
    Arg.(value & opt float Net.Fault.benign_conditions.loss_prob
         & info [ "loss" ] ~docv:"P" ~doc:"Per-receiver omission probability.")
  in
  let trace_arg =
    Arg.(value & flag & info [ "trace" ] ~doc:"Dump the protocol event trace afterwards.")
  in
  let metrics_arg =
    Arg.(value & flag & info [ "metrics" ] ~doc:"Print the per-run metrics table.")
  in
  let trace_json_arg =
    Arg.(value & opt (some string) None
         & info [ "trace-json" ] ~docv:"FILE"
             ~doc:"Export the structured trace as JSONL to $(docv) (readable by the analyze subcommand).")
  in
  let profile_arg =
    Arg.(value & flag
         & info [ "profile" ]
             ~doc:"Print a hot-path span profile (decode, verify, MAC contention, engine \
                   pop, Vset tally) after the run. Host wall clock only; simulated \
                   results are bit-identical with or without it.")
  in
  let sigma_edge_arg =
    Arg.(value & flag
         & info [ "sigma-edge" ]
             ~doc:"Attach the sigma-edge omission adversary (worst-case Section 5 drop \
                   schedule at exactly the liveness bound).")
  in
  let replay_arg =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"FILE"
             ~doc:"Replay a saved reproducer artifact (from modelcheck --out or chaos \
                   --repro-out) instead of a fresh run, verify it reproduces its recorded \
                   outcome, and exit non-zero on any mismatch. All other run options are \
                   ignored: the artifact pins the full configuration.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"One verbose consensus execution")
    Term.(
      const run_single $ replay_arg $ protocol_arg $ n_arg $ divergent_arg $ load_arg
      $ seed_arg $ loss_arg $ trace_arg $ metrics_arg $ trace_json_arg $ profile_arg
      $ sigma_edge_arg $ jobs_arg $ flags_arg)

(* --- chaos ------------------------------------------------------------------ *)

let strategy_conv =
  let parse s =
    match Core.Strategy.of_string s with
    | Some strategy -> Ok strategy
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown strategy %S (known: %s)" s
               (String.concat ", " (List.map Core.Strategy.name Core.Strategy.all))))
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Core.Strategy.name s))

let rec mkdirs dir =
  if dir <> "" && not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdirs parent;
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

(* One replayable artifact per failure, under the model-checker codec so
   [run --replay] consumes chaos reproducers and modelcheck schedules
   alike. The expectation is re-measured on the minimal schedule (the
   recorded violations belong to the pre-shrink one); if shrinking ever
   overfit, the full schedule is written instead. *)
let write_repro dir ~n ~bug (f : Harness.Chaos.failure) =
  mkdirs dir;
  let strategy =
    Option.map (fun s -> Option.get (Core.Strategy.of_string s)) f.strategy
  in
  let check schedule =
    Harness.Chaos.check_schedule ~protocol:f.protocol ~n ~bug ~dist:f.dist ?strategy ~schedule
      ~seed:f.seed ()
  in
  let schedule, violations =
    match check f.shrunk with
    | [] -> (f.schedule, check f.schedule)
    | vs -> (f.shrunk, vs)
  in
  let artifact =
    Model.Codec.Radio
      {
        c_protocol = f.protocol;
        c_n = n;
        c_dist = f.dist;
        c_strategy = f.strategy;
        c_seed = f.seed;
        c_bug = bug <> Harness.Chaos.No_bug;
        c_schedule = schedule;
        c_expect = violations;
        c_note = Printf.sprintf "chaos run %d minimal reproducer" f.index;
      }
  in
  let path =
    Filename.concat dir
      (Printf.sprintf "chaos-%s-run%d.json"
         (String.lowercase_ascii (Harness.Runner.protocol_to_string f.protocol))
         f.index)
  in
  Model.Codec.save path artifact;
  Printf.printf "  wrote reproducer %s (replay: turquois_lab run --replay %s)\n" path path

let run_chaos runs seed n strategy broken with_sampled repro_out quiet jobs flags =
  apply_flags flags;
  let log = if quiet then fun _ -> () else progress in
  let bug = if broken then Harness.Chaos.Flip_reported_decision else Harness.Chaos.No_bug in
  let protocols =
    Harness.Chaos.default_protocols
    @ (if with_sampled then [ Harness.Runner.Sampled ] else [])
  in
  let report = Harness.Chaos.run_chaos ~n ~bug ?strategy ~protocols ~log ~jobs ~runs ~seed () in
  Printf.printf
    "chaos: %d run(s) x {%s}, seed %Ld, n=%d\n\
    \  liveness checkable on %d schedule(s); %d violation(s)\n"
    report.runs
    (String.concat ", " (List.map Harness.Runner.protocol_to_string protocols))
    seed n report.liveness_checked
    (List.length report.failures);
  List.iter
    (fun (f : Harness.Chaos.failure) ->
      Printf.printf
        "  VIOLATION run %d, %s, seed %Ld%s:\n    %s\n    minimal schedule: %s\n\
        \    replay: turquois_lab chaos --runs %d --seed %Ld%s\n"
        f.index
        (Harness.Runner.protocol_to_string f.protocol)
        f.seed
        (match f.strategy with Some s -> ", strategy " ^ s | None -> "")
        (String.concat "; " f.violations)
        (Net.Schedule.to_string f.shrunk) (f.index + 1) seed
        (match f.strategy with Some s -> " --strategy " ^ s | None -> ""))
    report.failures;
  (match repro_out with
  | Some dir -> List.iter (write_repro dir ~n ~bug) report.failures
  | None -> ());
  if report.failures = [] then 0 else 1

let chaos_cmd =
  let runs_arg =
    Arg.(value & opt int 50 & info [ "runs" ] ~docv:"RUNS" ~doc:"Randomized runs to execute.")
  in
  let n_arg =
    Arg.(value & opt int 4 & info [ "n"; "size" ] ~docv:"N" ~doc:"Group size per run.")
  in
  let strategy_arg =
    Arg.(value & opt (some strategy_conv) None
         & info [ "strategy" ] ~docv:"NAME"
             ~doc:"Pin every Byzantine run to one strategy (default: rotate through all).")
  in
  let broken_arg =
    Arg.(value & flag
         & info [ "broken-machine" ]
             ~doc:"Inject a deliberately broken machine (flipped reported decision); the \
                   harness must detect it and exit non-zero.")
  in
  let repro_out_arg =
    Arg.(value & opt (some string) None
         & info [ "repro-out" ] ~docv:"DIR"
             ~doc:"Write each failure's minimal schedule to $(docv) as a replayable \
                   artifact (one JSON file per failure) for run --replay.")
  in
  let with_sampled_arg =
    Arg.(value & flag
         & info [ "with-sampled" ]
             ~doc:"Also subject the sample-based probabilistic consensus to every \
                   schedule. Opt-in: its guarantees are probabilistic, so it rides \
                   along rather than gating the default rotation.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Randomized fault-injection runs with safety/liveness invariant checking")
    Term.(
      const run_chaos $ runs_arg $ seed_arg $ n_arg $ strategy_arg $ broken_arg
      $ with_sampled_arg $ repro_out_arg $ quiet_arg $ jobs_arg $ flags_arg)

(* --- memocheck --------------------------------------------------------------- *)

(* Fast equivalence smoke for the hot-path contract: a run per Byzantine
   strategy, a small sigma sweep and a small chaos plan, each executed
   with memoization off and then on. Any difference between the two
   passes is a fast-path bug; the memo instrumentation counters are the
   only series excluded from the comparison, since only the memoized
   pass emits them. *)
let run_memocheck seed quiet =
  let diverged = ref [] in
  let check name equal =
    if equal then begin
      if not quiet then Printf.printf "  ok: %s\n%!" name
    end
    else begin
      diverged := name :: !diverged;
      Printf.printf "  DIVERGED: %s\n%!" name
    end
  in
  let both f =
    let pass memo =
      Core.Intern.with_memo memo (fun () ->
          Harness.Runner.clear_key_cache ();
          f ())
    in
    (pass false, pass true)
  in
  let strip (r : Harness.Runner.result) =
    { r with metrics = Core.Intern.strip_metrics r.metrics }
  in
  List.iter
    (fun strategy ->
      let off, on =
        both (fun () ->
            Harness.Runner.run ~protocol:Harness.Runner.Turquois ~n:4
              ~dist:Harness.Runner.Divergent ~load:Net.Fault.Byzantine ~strategy ~seed ())
      in
      check
        (Printf.sprintf "byzantine strategy %s" (Core.Strategy.name strategy))
        (strip off = strip on))
    Core.Strategy.all;
  let k = 4 - Net.Fault.max_f 4 in
  let (rows_off, m_off), (rows_on, m_on) =
    both (fun () ->
        Harness.Sweeps.sigma_sweep_merged ~n:4 ~k ~runs_per_point:2 ~rounds:30
          ~beyond:1 ~base_seed:seed ~jobs:1 ())
  in
  check "sigma sweep rows" (rows_off = rows_on);
  check "sigma sweep merged metrics"
    (Core.Intern.strip_metrics m_off = Core.Intern.strip_metrics m_on);
  let chaos_off, chaos_on =
    both (fun () -> Harness.Chaos.run_chaos ~n:4 ~runs:6 ~jobs:1 ~seed ())
  in
  check "chaos plan" (chaos_off = chaos_on);
  let wl_off, wl_on =
    both (fun () ->
        Harness.Workload.run
          { (Harness.Workload.default ~n:4) with Harness.Workload.seed })
  in
  check "consensus-service workload" (wl_off = wl_on);
  if !diverged = [] then begin
    Printf.printf "memocheck: results identical with memoization off and on\n";
    0
  end
  else begin
    Printf.printf "memocheck: %d divergence(s): %s\n" (List.length !diverged)
      (String.concat ", " (List.rev !diverged));
    1
  end

let memocheck_cmd =
  Cmd.v
    (Cmd.info "memocheck"
       ~doc:
         "Verify the hot-path contract: every result is bit-identical with \
          memoization off and on")
    Term.(const run_memocheck $ seed_arg $ quiet_arg)

(* --- compactcheck ------------------------------------------------------------ *)

(* Equivalence gate for the delta-compressed wire format: the same
   scenarios executed with compact bundles off and on must reach the
   same decisions. Compact frames are shorter, so medium occupancy —
   and with it latencies, phase counts and traffic totals — shifts;
   what must NOT change is the consensus outcome itself: which correct
   processes decide, what they decide, and that agreement and validity
   hold. A divergence here means a justification back-reference
   resolved to the wrong message (or silently dropped a vote that
   mattered), which is exactly the §5e-style safety regression the
   compression must never introduce. *)
let run_compactcheck seed quiet =
  let diverged = ref [] in
  let check name equal =
    if equal then begin
      if not quiet then Printf.printf "  ok: %s\n%!" name
    end
    else begin
      diverged := name :: !diverged;
      Printf.printf "  DIVERGED: %s\n%!" name
    end
  in
  let both f =
    let pass compact =
      Core.Intern.with_compact compact (fun () ->
          Harness.Runner.clear_key_cache ();
          f ())
    in
    (pass false, pass true)
  in
  let outcome (r : Harness.Runner.result) =
    (List.sort compare r.decisions, List.sort compare r.correct,
     r.agreement, r.validity, r.timed_out)
  in
  let run ~n ~load ?strategy ~seed () =
    Harness.Runner.run ~protocol:Harness.Runner.Turquois ~n
      ~dist:Harness.Runner.Divergent ~load ?strategy ~seed ()
  in
  List.iter
    (fun strategy ->
      let off, on =
        both (fun () ->
            run ~n:4 ~load:Net.Fault.Byzantine ~strategy ~seed ())
      in
      check
        (Printf.sprintf "byzantine strategy %s" (Core.Strategy.name strategy))
        (outcome off = outcome on))
    Core.Strategy.all;
  List.iter
    (fun (name, n, load) ->
      let off, on = both (fun () -> run ~n ~load ~seed ()) in
      check (Printf.sprintf "%s n=%d" name n) (outcome off = outcome on))
    [
      ("failure-free", 4, Net.Fault.Failure_free);
      ("failure-free", 7, Net.Fault.Failure_free);
      ("fail-stop", 7, Net.Fault.Fail_stop);
      ("byzantine", 10, Net.Fault.Byzantine);
    ];
  let chaos_off, chaos_on =
    both (fun () -> Harness.Chaos.run_chaos ~n:4 ~runs:6 ~jobs:1 ~seed ())
  in
  check "chaos plan invariants" (chaos_off = chaos_on);
  if !diverged = [] then begin
    Printf.printf
      "compactcheck: decisions identical with compact bundles off and on\n";
    0
  end
  else begin
    Printf.printf "compactcheck: %d divergence(s): %s\n" (List.length !diverged)
      (String.concat ", " (List.rev !diverged));
    1
  end

let compactcheck_cmd =
  Cmd.v
    (Cmd.info "compactcheck"
       ~doc:
         "Verify the wire-compression contract: every scenario reaches the \
          same decisions with delta-compressed justification bundles off and \
          on")
    Term.(const run_compactcheck $ seed_arg $ quiet_arg)

(* --- workload ---------------------------------------------------------------- *)

let arrival_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "poisson" -> Ok Harness.Workload.Poisson
    | s -> (
        match String.index_opt s ':' with
        | Some i when String.sub s 0 i = "burst" -> (
            match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
            | Some b when b > 0 -> Ok (Harness.Workload.Bursty b)
            | _ -> Error (`Msg "burst size must be a positive integer"))
        | _ -> Error (`Msg (Printf.sprintf "unknown arrival %S (poisson or burst:N)" s)))
  in
  let print fmt = function
    | Harness.Workload.Poisson -> Format.pp_print_string fmt "poisson"
    | Harness.Workload.Bursty b -> Format.fprintf fmt "burst:%d" b
  in
  Arg.conv (parse, print)

let run_workload n capacity window max_batch loads arrival commands cmd_bytes loss reps seed
    timeout jobs flags =
  apply_flags flags;
  match
    let base =
    {
      (Harness.Workload.default ~n) with
      capacity;
      window;
      max_batch;
      arrival;
      commands;
      cmd_bytes;
      loss;
      timeout;
      seed;
    }
  in
  (match loads with
  | [ load ] when reps = 1 ->
      (* Single point, single rep: the verbose per-run view. *)
      let r = Harness.Workload.run { base with load } in
      Printf.printf
        "workload n=%d capacity=%d window=%d batch<=%d %s load=%.1f cmd/s (seed %Ld)\n" n
        capacity window max_batch
        (match arrival with
        | Harness.Workload.Poisson -> "poisson"
        | Harness.Workload.Bursty b -> Printf.sprintf "burst:%d" b)
        load seed;
      Printf.printf "  delivered %d/%d commands over %.2f s simulated\n" r.delivered_commands
        r.commands r.duration;
      Printf.printf "  slots: %d committed, %d skipped (no-ops)\n" r.committed_slots
        r.skipped_slots;
      Printf.printf "  throughput %.1f cmd/s   decisions %.1f slots/s\n" r.throughput
        r.decisions_per_sec;
      Printf.printf "  latency p50 %.1f ms   p99 %.1f ms\n" (r.latency_p50 *. 1000.0)
        (r.latency_p99 *. 1000.0)
  | _ ->
      let points = Harness.Workload.sweep ~jobs ~base ~loads ~reps () in
      print_string (Harness.Workload.render_points points))
  with
  | () -> 0
  | exception Invalid_argument msg ->
      Printf.eprintf "turquois-lab: %s\n" msg;
      2

let workload_cmd =
  let n_arg = Arg.(value & opt int 4 & info [ "n"; "size" ] ~docv:"N" ~doc:"Group size.") in
  let capacity_arg =
    Arg.(value & opt int 24 & info [ "capacity" ] ~docv:"SLOTS" ~doc:"Total log slots.")
  in
  let window_arg =
    Arg.(
      value & opt int 1
      & info [ "window" ] ~docv:"W"
          ~doc:
            "Pipeline depth. On the contention-modeled medium, wider windows \
             trade airtime congestion for little throughput; 1-2 is usually \
             best.")
  in
  let max_batch_arg =
    Arg.(value & opt int 8 & info [ "max-batch" ] ~docv:"B" ~doc:"Commands per slot.")
  in
  let loads_arg =
    Arg.(value & opt (list float) [ 50.0 ]
         & info [ "load" ] ~docv:"CMD/S,..."
             ~doc:"Offered load point(s). One load with one rep prints a verbose \
                   single-run view; otherwise a sweep table with the saturation knee.")
  in
  let arrival_arg =
    Arg.(value & opt arrival_conv Harness.Workload.Poisson
         & info [ "arrival" ] ~docv:"KIND" ~doc:"poisson or burst:N.")
  in
  let commands_arg =
    Arg.(value & opt int 60 & info [ "commands" ] ~docv:"C" ~doc:"Commands injected per run.")
  in
  let cmd_bytes_arg =
    Arg.(value & opt int 16 & info [ "cmd-bytes" ] ~docv:"BYTES" ~doc:"Filler bytes per command.")
  in
  let loss_arg =
    Arg.(value & opt float 0.01
         & info [ "loss" ] ~docv:"P" ~doc:"Per-receiver omission probability.")
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:
         "Drive the pipelined consensus service with an open-loop client workload and \
          report sustained decisions, throughput versus offered load and command latency")
    Term.(
      const run_workload $ n_arg $ capacity_arg $ window_arg $ max_batch_arg $ loads_arg
      $ arrival_arg $ commands_arg $ cmd_bytes_arg $ loss_arg $ reps_arg 3 $ seed_arg
      $ timeout_arg $ jobs_arg $ flags_arg)

(* --- scaling ------------------------------------------------------------------ *)

let run_scaling sizes turquois_cap radio_cap timeout seed jobs flags =
  apply_flags flags;
  match
    Harness.Scaling.sweep ~jobs ~ns:sizes ~turquois_cap ~radio_cap ~timeout ~seed ()
  with
  | points ->
      (* stdout is a deterministic function of the arguments (memory is
         JSON-only), so -j 1 and -j N outputs are byte-comparable *)
      print_string (Harness.Scaling.render points);
      0
  | exception Invalid_argument msg ->
      Printf.eprintf "turquois-lab: %s\n" msg;
      2

let scaling_cmd =
  let sizes_arg =
    Arg.(value & opt (list int) Harness.Scaling.default_ns
         & info [ "sizes" ] ~docv:"N,..." ~doc:"Group sizes to sweep.")
  in
  let turquois_cap_arg =
    Arg.(value & opt int 128
         & info [ "turquois-cap" ] ~docv:"N"
             ~doc:"Largest n at which the all-to-all Turquois baseline still runs \
                   (0 disables it).")
  in
  let radio_cap_arg =
    Arg.(value & opt int 256
         & info [ "radio-cap" ] ~docv:"N"
             ~doc:"Largest n at which the sampled protocol also runs over the \
                   contended 802.11b stack (0 disables that task).")
  in
  let timeout_arg =
    Arg.(value & opt float 30.0
         & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Per-point simulated-time limit.")
  in
  Cmd.v
    (Cmd.info "scaling"
       ~doc:
         "Scaling sweep past the paper's testbed: Turquois vs the sample-based \
          consensus at n = 16..1024, with latency, traffic, airtime and engine \
          high-water marks per point")
    Term.(
      const run_scaling $ sizes_arg $ turquois_cap_arg $ radio_cap_arg
      $ timeout_arg $ seed_arg $ jobs_arg $ flags_arg)

(* --- modelcheck -------------------------------------------------------------- *)

let run_modelcheck n k byz budget exact rounds strategies divergent seed jobs max_states out
    quiet flags =
  apply_flags flags;
  let log = if quiet then fun _ -> () else progress in
  let byzantine = Option.map (fun t -> List.init t (fun i -> n - 1 - i)) byz in
  let dist = if divergent then Some Harness.Runner.Divergent else None in
  let cfg =
    Model.Checker.config ~n ?k ?byzantine ?dist ?budget ~exact_budget:exact
      ?alphabet:strategies ~rounds ~seed ~jobs ~max_states ()
  in
  let t = List.length cfg.byzantine in
  let sigma = Harness.Abstract_rounds.sigma ~n ~k:cfg.k ~t in
  let result = Model.Checker.check ~log cfg in
  let s = result.stats in
  Printf.printf "modelcheck n=%d k=%d t=%d %s budget=%d%s rounds=%d (sigma=%d)\n" n cfg.k t
    (Harness.Runner.dist_to_string cfg.dist)
    cfg.budget
    (if cfg.exact_budget then " exact" else "")
    cfg.rounds sigma;
  Printf.printf
    "  explored %d states over %d transitions (%d choices/round, %d duplicates pruned, \
     frontier peak %d)\n"
    s.states s.transitions s.choices_per_round s.dedup_hits s.frontier_peak;
  if s.pruned > 0 then
    Printf.printf "  state cap %d exceeded: %d states kept without dedup (lossy)\n"
      cfg.max_states s.pruned;
  let save artifact =
    match out with
    | None -> ()
    | Some path ->
        Model.Codec.save path (Model.Codec.Rounds artifact);
        Printf.printf "  wrote %s (replay: turquois_lab run --replay %s)\n" path path
  in
  match result.outcome with
  | Violation artifact ->
      Printf.printf "  VIOLATION after %d round(s): %s\n"
        (List.length artifact.r_rounds)
        (match artifact.r_expect with
        | Model.Codec.Violations vs -> String.concat "; " vs
        | _ -> "");
      save artifact;
      1
  | Safe { worst; min_deciders; min_advanced } ->
      Printf.printf
        "  safety: agreement, validity and integrity hold on every reachable state\n";
      Printf.printf "  worst horizon state: deciders=%d advanced=%d (k=%d, min deciders %d, \
                     min advanced %d)\n"
        (match worst.r_expect with
        | Model.Codec.Stall { deciders; _ } -> deciders
        | _ -> 0)
        (match worst.r_expect with
        | Model.Codec.Stall { advanced; _ } -> advanced
        | _ -> 0)
        cfg.k min_deciders min_advanced;
      let correct = n - t in
      Printf.printf "  worst-case deliveries per round: [%s] of %d correct-pair transmissions\n"
        (String.concat "; "
           (List.map string_of_int (Model.Codec.delivered_per_round worst)))
        (correct * (correct - 1));
      save worst;
      0

let modelcheck_cmd =
  let n_arg =
    Arg.(value & opt int 4 & info [ "n"; "size" ] ~docv:"N" ~doc:"Group size.")
  in
  let k_arg =
    Arg.(value & opt (some int) None
         & info [ "k" ] ~docv:"K" ~doc:"Processes required to decide (default n-f).")
  in
  let byz_arg =
    Arg.(value & opt (some int) None
         & info [ "byzantine" ] ~docv:"T"
             ~doc:"Number of Byzantine processes (default f = (n-1)/3; the highest ids).")
  in
  let budget_arg =
    Arg.(value & opt (some int) None
         & info [ "budget" ] ~docv:"B"
             ~doc:"Per-round omission budget among correct pairs (default sigma).")
  in
  let exact_arg =
    Arg.(value & flag
         & info [ "exact-budget" ]
             ~doc:"Enumerate only omission patterns of exactly the budget size (sound for \
                   stall-witness search, much cheaper).")
  in
  let rounds_arg =
    Arg.(value & opt int 2 & info [ "rounds" ] ~docv:"R" ~doc:"Round horizon.")
  in
  let strategies_arg =
    Arg.(value & opt (some (list strategy_conv)) None
         & info [ "strategies" ] ~docv:"NAME,..."
             ~doc:"Byzantine per-round choice alphabet (default: every deterministic \
                   strategy). Per-round silence subsumes crash points.")
  in
  let divergent_arg =
    Arg.(value & flag & info [ "divergent" ] ~doc:"Divergent proposals (default unanimous).")
  in
  let max_states_arg =
    Arg.(value & opt int 2_000_000
         & info [ "max-states" ] ~docv:"S"
             ~doc:"Per-level dedup-table cap; past it dedup degrades to lossy (results \
                   stay exact, duplicates may re-expand).")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the extracted schedule (the violation, or the worst-case \
                   liveness schedule) as a replayable artifact for run --replay.")
  in
  Cmd.v
    (Cmd.info "modelcheck"
       ~doc:
         "Exhaustively check every adversary schedule of a small group up to a round \
          horizon: prove safety or emit a violating schedule, and extract the worst-case \
          liveness schedule as a replayable artifact")
    Term.(
      const run_modelcheck $ n_arg $ k_arg $ byz_arg $ budget_arg $ exact_arg $ rounds_arg
      $ strategies_arg $ divergent_arg $ seed_arg $ jobs_arg $ max_states_arg $ out_arg
      $ quiet_arg $ flags_arg)

(* --- analyze ---------------------------------------------------------------- *)

let run_analyze file n k t causal timeline require_causal =
  match Obs.Trace2.load_file file with
  | Error msg ->
      Printf.eprintf "analyze: %s\n" msg;
      1
  | Ok (events, skipped) ->
      if skipped > 0 then
        Printf.eprintf "analyze: skipped %d malformed line(s) in %s\n" skipped file;
      if events = [] then begin
        Printf.eprintf "analyze: no trace events in %s\n" file;
        1
      end
      else begin
        print_string (Obs.Analyze.analyze ?n ?k ?t events);
        if timeline then begin
          print_newline ();
          print_string (Obs.Timeline.render ?n events)
        end;
        if causal || require_causal then begin
          print_newline ();
          print_string (Obs.Analyze.causal ?n ?k ?t events)
        end;
        if require_causal
           && Hashtbl.length (Obs.Causal.build events).Obs.Causal.sends = 0
        then begin
          Printf.eprintf "analyze: no causal message ids in %s (--require-causal)\n" file;
          1
        end
        else 0
      end

let analyze_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"JSONL trace produced by run --trace-json.")
  in
  let n_arg =
    Arg.(value & opt (some int) None
         & info [ "n" ] ~docv:"N" ~doc:"Override the group size recorded in the trace.")
  in
  let k_arg =
    Arg.(value & opt (some int) None
         & info [ "k" ] ~docv:"K" ~doc:"Override the decision threshold k.")
  in
  let t_arg =
    Arg.(value & opt (some int) None
         & info [ "t" ] ~docv:"T" ~doc:"Override the Byzantine count t.")
  in
  let causal_arg =
    Arg.(value & flag
         & info [ "causal" ]
             ~doc:"Also reconstruct the happens-before DAG: decision justification \
                   chains, and each stall window attributed to the dropped/jammed \
                   message ids the lagging receivers were missing.")
  in
  let timeline_arg =
    Arg.(value & flag
         & info [ "timeline" ]
             ~doc:"Also render a per-node ASCII Gantt (phase / decided / crashed \
                   intervals).")
  in
  let require_causal_arg =
    Arg.(value & flag
         & info [ "require-causal" ]
             ~doc:"Run the causal analysis and exit non-zero unless the trace carries \
                   causal message ids (tagged sends) — an exit-code gate for CI instead \
                   of grepping the report.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Reconstruct airtime, per-round timelines and a sigma stall report from a JSONL trace")
    Term.(
      const run_analyze $ file_arg $ n_arg $ k_arg $ t_arg $ causal_arg $ timeline_arg
      $ require_causal_arg)

let main_cmd =
  let doc = "Turquois (DSN 2010) reproduction laboratory" in
  Cmd.group (Cmd.info "turquois-lab" ~doc)
    [
      tables_cmd;
      sigma_cmd;
      phases_cmd;
      messages_cmd;
      run_cmd;
      workload_cmd;
      scaling_cmd;
      chaos_cmd;
      memocheck_cmd;
      compactcheck_cmd;
      modelcheck_cmd;
      analyze_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
