(* The hot-path contract (frame interning, proof-digest memoization,
   shared key material, encode-once, SHA-256 fast path, Vset tallies):
   the fast path may change wall-clock time only, never a simulated
   result. Every test here compares the memoized world against the
   plain one, or an incremental structure against its naive
   recomputation. *)

module P = Core.Proto
module I = Core.Intern

let mk ?(sender = 0) ~phase ?(value = P.V1) ?(origin = P.Deterministic)
    ?(status = P.Undecided) ?(proof = Bytes.empty) () =
  { Core.Message.sender; phase; value; origin; status; proof }

(* a run result with the memo instrumentation counters projected out —
   the only series allowed to differ between the two worlds *)
let strip (r : Harness.Runner.result) =
  { r with metrics = I.strip_metrics r.metrics }

let both f =
  let pass memo =
    I.with_memo memo (fun () ->
        Harness.Runner.clear_key_cache ();
        f ())
  in
  (pass false, pass true)

(* --- memo on/off equivalence ------------------------------------------------ *)

let test_strategies_equivalent () =
  List.iter
    (fun strategy ->
      let off, on =
        both (fun () ->
            Harness.Runner.run ~protocol:Harness.Runner.Turquois ~n:4
              ~dist:Harness.Runner.Divergent ~load:Net.Fault.Byzantine ~strategy
              ~seed:99L ())
      in
      Alcotest.(check bool)
        (Core.Strategy.name strategy)
        true
        (strip off = strip on))
    Core.Strategy.all

let test_chaos_plan_equivalent () =
  (* the full adversarial mix — rotating strategies, random schedules,
     all three protocols — must be invisible to the memo switch *)
  let off, on = both (fun () -> Harness.Chaos.run_chaos ~n:4 ~runs:4 ~jobs:1 ~seed:31L ()) in
  Alcotest.(check bool) "reports equal" true (off = on)

let test_sweep_equivalent_and_parallel () =
  let k = 4 - Net.Fault.max_f 4 in
  let sweep jobs () =
    Harness.Sweeps.sigma_sweep_merged ~n:4 ~k ~runs_per_point:2 ~rounds:25 ~beyond:1
      ~base_seed:77L ~jobs ()
  in
  let (rows_off, m_off), (rows_on, m_on) = both (sweep 1) in
  Alcotest.(check bool) "rows equal" true (rows_off = rows_on);
  Alcotest.(check bool) "metrics equal" true
    (I.strip_metrics m_off = I.strip_metrics m_on);
  (* per-run clearing keeps each task's hit/miss pattern deterministic,
     so with the memo on even the instrumentation counters must be
     bit-identical across worker counts *)
  let on_j2 = I.with_memo true (sweep 2) in
  Alcotest.(check bool) "-j 1 = -j 2 with memo on" true ((rows_on, m_on) = on_j2)

(* --- instrumentation -------------------------------------------------------- *)

let run_failure_free () =
  Harness.Runner.run ~protocol:Harness.Runner.Turquois ~n:4
    ~dist:Harness.Runner.Unanimous ~load:Net.Fault.Failure_free ~seed:3L ()

let test_memo_off_emits_no_counters () =
  let r = I.with_memo false run_failure_free in
  List.iter
    (fun name ->
      Alcotest.(check int) name 0 (Obs.Metrics.counter_value r.metrics name))
    I.memo_series

let test_memo_on_hits () =
  (* a broadcast reaches n-1 receivers: all but the first decode of a
     payload and all but the first hash of a proof must hit *)
  let r = I.with_memo true run_failure_free in
  Alcotest.(check bool) "decode hits" true
    (Obs.Metrics.counter_value r.metrics "codec.decode.memo_hit" > 0);
  Alcotest.(check bool) "digest hits" true
    (Obs.Metrics.counter_value r.metrics "crypto.verify.cache_hit" > 0)

let test_with_memo_restores () =
  let before = I.enabled () in
  I.with_memo false (fun () ->
      Alcotest.(check bool) "off inside" false (I.enabled ()));
  Alcotest.(check bool) "restored" before (I.enabled ());
  (try I.with_memo false (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "restored after raise" before (I.enabled ())

(* --- profiler / causal tracing invisibility ---------------------------------- *)

let small_sweep jobs () =
  let k = 4 - Net.Fault.max_f 4 in
  Harness.Sweeps.sigma_sweep_merged ~n:4 ~k ~runs_per_point:2 ~rounds:25 ~beyond:1
    ~base_seed:77L ~jobs ()

let test_profiler_invisible_to_results () =
  (* the span profiler reads the host clock only; with it on, simulated
     results must stay bit-identical to a plain run at -j 1 and -j 2 *)
  let plain = small_sweep 1 () in
  Obs.Prof.with_profiling true (fun () ->
      Alcotest.(check bool) "profiled -j1 = plain" true (small_sweep 1 () = plain);
      Alcotest.(check bool) "profiled samples collected" true
        (List.exists (fun (s : Obs.Prof.stat) -> s.count > 0) (Obs.Prof.snapshot ()));
      Alcotest.(check bool) "profiled -j2 = plain" true (small_sweep 2 () = plain));
  Alcotest.(check bool) "profiling restored off" false (Obs.Prof.on ())

let test_causal_tracing_invisible_to_results () =
  (* tracing turns on mid minting and byte aliasing across every layer;
     none of it may touch the simulation clock, RNG or metrics *)
  let plain = small_sweep 1 () in
  Net.Trace.start ();
  Fun.protect
    ~finally:(fun () ->
      Net.Trace.stop ();
      Net.Trace.clear ())
    (fun () ->
      Alcotest.(check bool) "traced -j1 = plain" true (small_sweep 1 () = plain);
      Alcotest.(check bool) "traced -j2 = plain" true (small_sweep 2 () = plain))

let test_profiler_span_mechanics () =
  Obs.Prof.with_profiling true (fun () ->
      Obs.Prof.reset ();
      let t0 = Obs.Prof.start () in
      Alcotest.(check bool) "start yields a real timestamp" true (t0 >= 0.0);
      Obs.Prof.stop Obs.Prof.decode t0;
      let stat =
        List.find
          (fun (s : Obs.Prof.stat) -> s.name = Obs.Prof.span_name Obs.Prof.decode)
          (Obs.Prof.snapshot ())
      in
      Alcotest.(check int) "one sample" 1 stat.count;
      Alcotest.(check bool) "quantile within bucket bounds" true
        (Obs.Prof.bucket_quantile stat 0.5 >= stat.max_ns));
  (* off: the sentinel makes stop a no-op *)
  Obs.Prof.reset ();
  let t0 = Obs.Prof.start () in
  Alcotest.(check bool) "sentinel when off" true (t0 < 0.0);
  Obs.Prof.stop Obs.Prof.decode t0;
  Alcotest.(check bool) "no sample recorded when off" true
    (List.for_all (fun (s : Obs.Prof.stat) -> s.count = 0) (Obs.Prof.snapshot ()))

(* --- cache poisoning -------------------------------------------------------- *)

let keyrings = lazy (Core.Keyring.setup (Util.Rng.create ~seed:5L) ~n:2 ~phases:4 ())

let signed_envelope () =
  let keyrings = Lazy.force keyrings in
  let proof =
    Core.Keyring.sign keyrings.(0) ~phase:1 ~value:P.V1 ~origin:P.Deterministic
  in
  { Core.Message.msg = mk ~sender:0 ~phase:1 ~proof (); justification = [] }

(* flip one payload byte, scanning from the tail (the proof bytes), so
   the forgery shares a long prefix with the valid frame but still
   decodes to a different envelope *)
let forge payload =
  let reference = Core.Message.decode payload in
  let rec go i =
    if i < 0 then Alcotest.fail "no forgeable byte found"
    else begin
      let b = Bytes.copy payload in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
      match Core.Message.decode b with
      | e when e <> reference -> b
      | _ -> go (i - 1)
      | exception (Util.Codec.Malformed _ | Util.Codec.Truncated) -> go (i - 1)
    end
  in
  go (Bytes.length payload - 1)

let test_decode_cache_rejects_forged_prefix () =
  let envelope = signed_envelope () in
  let payload = Core.Message.encode envelope in
  let forged = forge payload in
  let (), snap =
    Obs.Scope.with_run (fun () ->
        I.with_memo true (fun () ->
            let e1 = I.decode_wire payload in
            let e2 = I.decode_wire (Bytes.copy payload) in
            Alcotest.(check bool) "same payload same wire frame" true (e1 = e2);
            let e3 = I.decode_wire forged in
            Alcotest.(check bool) "forged payload never hits the valid entry" true
              (e3 <> e1);
            Alcotest.(check bool) "forged decode matches plain decode" true
              (e3 = Core.Message.decode_wire forged)))
  in
  (* hits only on exact byte equality: the content-equal copy hit, the
     prefix-sharing forgery missed *)
  Alcotest.(check int) "one hit" 1
    (Obs.Metrics.counter_value snap "codec.decode.memo_hit");
  Alcotest.(check int) "two misses" 2
    (Obs.Metrics.counter_value snap "codec.decode.memo_miss")

let test_digest_memo_rejects_forged_proof () =
  let keyrings = Lazy.force keyrings in
  let envelope = signed_envelope () in
  let valid = envelope.Core.Message.msg in
  let forged_proof = Bytes.copy valid.Core.Message.proof in
  Bytes.set forged_proof
    (Bytes.length forged_proof - 1)
    (Char.chr (Char.code (Bytes.get forged_proof (Bytes.length forged_proof - 1)) lxor 1));
  let forged = { valid with Core.Message.proof = forged_proof } in
  let (), snap =
    Obs.Scope.with_run (fun () ->
        I.with_memo true (fun () ->
            Alcotest.(check bool) "valid accepted (miss)" true
              (I.check_message keyrings.(1) valid);
            Alcotest.(check bool) "valid accepted (hit)" true
              (I.check_message keyrings.(1) valid);
            Alcotest.(check bool) "forged rejected through the memo" false
              (I.check_message keyrings.(1) forged);
            Alcotest.(check bool) "memo verdicts match plain verdicts" true
              (Core.Keyring.check_message keyrings.(1) valid
              && not (Core.Keyring.check_message keyrings.(1) forged))))
  in
  Alcotest.(check int) "one hit" 1
    (Obs.Metrics.counter_value snap "crypto.verify.cache_hit");
  Alcotest.(check int) "two misses" 2
    (Obs.Metrics.counter_value snap "crypto.verify.cache_miss")

(* --- sha256 fast path ------------------------------------------------------- *)

let test_sha256_fast_path_matches_streaming () =
  (* the one-block path covers len <= 55; cross the boundary and the
     two-block region to make sure both worlds agree *)
  let rng = Util.Rng.create ~seed:11L in
  for len = 0 to 70 do
    let data = Util.Rng.bytes rng len in
    let streamed =
      let ctx = Crypto.Sha256.init () in
      Crypto.Sha256.update ctx data;
      Crypto.Sha256.finalize ctx
    in
    Alcotest.(check bool)
      (Printf.sprintf "len %d" len)
      true
      (Bytes.equal (Crypto.Sha256.digest data) streamed)
  done

let test_sha256_digest_not_aliased () =
  (* the fast path reuses domain-local scratch; the returned digest must
     still be a fresh buffer every call *)
  let a = Bytes.of_string "proof-a" in
  let b = Bytes.of_string "proof-b" in
  let da = Crypto.Sha256.digest a in
  let copy = Bytes.copy da in
  let db = Crypto.Sha256.digest b in
  Alcotest.(check bool) "first digest unchanged" true (Bytes.equal da copy);
  Alcotest.(check bool) "digests differ" false (Bytes.equal da db)

(* --- encode scratch --------------------------------------------------------- *)

let test_encode_scratch_returns_fresh_bytes () =
  let e1 = { Core.Message.msg = mk ~phase:1 ~value:P.V1 (); justification = [] } in
  let e2 =
    {
      Core.Message.msg = mk ~sender:1 ~phase:2 ~value:P.V0 ();
      justification = [ mk ~phase:1 () ];
    }
  in
  let b1 = Core.Message.encode e1 in
  let copy = Bytes.copy b1 in
  let b2 = Core.Message.encode e2 in
  Alcotest.(check bool) "first encoding unchanged by the second" true
    (Bytes.equal b1 copy);
  Alcotest.(check bool) "encodings differ" false (Bytes.equal b1 b2);
  Alcotest.(check bool) "roundtrip" true (Core.Message.decode b1 = e1)

(* --- vset incremental tallies ----------------------------------------------- *)

let test_vset_tallies_match_naive_recount () =
  let rng = Util.Rng.create ~seed:21L in
  for _trial = 1 to 50 do
    let v = Core.Vset.create ~n:4 in
    for _ = 1 to 30 do
      let sender = Util.Rng.int rng 4 in
      let phase = 1 + Util.Rng.int rng 6 in
      let value =
        match Util.Rng.int rng 3 with 0 -> P.V0 | 1 -> P.V1 | _ -> P.Vbot
      in
      ignore (Core.Vset.add v (mk ~sender ~phase ~value ()))
    done;
    for phase = 1 to 6 do
      let msgs = Core.Vset.messages_at v ~phase in
      let senders =
        List.sort_uniq compare
          (List.map (fun (m : Core.Message.t) -> m.sender) msgs)
      in
      Alcotest.(check int) "count_phase" (List.length senders)
        (Core.Vset.count_phase v ~phase);
      List.iter
        (fun value ->
          let expected =
            List.length
              (List.filter
                 (fun s ->
                   List.exists
                     (fun (m : Core.Message.t) -> m.sender = s && m.value = value)
                     msgs)
                 senders)
          in
          Alcotest.(check int) "count_value" expected
            (Core.Vset.count_value v ~phase ~value))
        [ P.V0; P.V1; P.Vbot ]
    done
  done

(* --- key material cache ----------------------------------------------------- *)

let test_key_cache_shares_and_separates () =
  Harness.Runner.clear_key_cache ();
  let a = Harness.Runner.keyrings_for ~seed:123L ~n:2 ~phases:4 in
  let b = Harness.Runner.keyrings_for ~seed:123L ~n:2 ~phases:4 in
  Alcotest.(check bool) "same coordinates share one array" true (a == b);
  let c = Harness.Runner.keyrings_for ~seed:124L ~n:2 ~phases:4 in
  Alcotest.(check bool) "different seed, different material" true (c != a);
  Harness.Runner.clear_key_cache ()

let suite =
  ( "hotpath",
    [
      Alcotest.test_case "strategies memo-equivalent" `Quick test_strategies_equivalent;
      Alcotest.test_case "chaos plan memo-equivalent" `Quick test_chaos_plan_equivalent;
      Alcotest.test_case "sweep memo-equivalent and parallel" `Quick
        test_sweep_equivalent_and_parallel;
      Alcotest.test_case "memo off emits no counters" `Quick
        test_memo_off_emits_no_counters;
      Alcotest.test_case "memo on hits" `Quick test_memo_on_hits;
      Alcotest.test_case "with_memo restores" `Quick test_with_memo_restores;
      Alcotest.test_case "profiler invisible to results" `Quick
        test_profiler_invisible_to_results;
      Alcotest.test_case "causal tracing invisible to results" `Quick
        test_causal_tracing_invisible_to_results;
      Alcotest.test_case "profiler span mechanics" `Quick test_profiler_span_mechanics;
      Alcotest.test_case "decode cache rejects forged prefix" `Quick
        test_decode_cache_rejects_forged_prefix;
      Alcotest.test_case "digest memo rejects forged proof" `Quick
        test_digest_memo_rejects_forged_proof;
      Alcotest.test_case "sha256 fast path" `Quick test_sha256_fast_path_matches_streaming;
      Alcotest.test_case "sha256 digest not aliased" `Quick test_sha256_digest_not_aliased;
      Alcotest.test_case "encode scratch fresh" `Quick test_encode_scratch_returns_fresh_bytes;
      Alcotest.test_case "vset tallies" `Quick test_vset_tallies_match_naive_recount;
      Alcotest.test_case "key cache" `Quick test_key_cache_shares_and_separates;
    ] )
