(* Tests for keyring slicing, the multi-instance agreement service, and
   the adaptive tick policy. *)

module P = Core.Proto

let test_slice_signs_with_offset () =
  let rng = Util.Rng.create ~seed:400L in
  let keyrings = Core.Keyring.setup (Util.Rng.split rng) ~n:4 ~phases:20 () in
  let base = keyrings.(1) in
  let sliced = Core.Keyring.slice base ~offset:10 ~phases:5 in
  Alcotest.(check int) "slice phases" 5 (Core.Keyring.phases sliced);
  let proof = Core.Keyring.sign sliced ~phase:2 ~value:P.V1 ~origin:P.Deterministic in
  (* the slice's phase 2 is the base's phase 12 *)
  let receiver_slice = Core.Keyring.slice keyrings.(0) ~offset:10 ~phases:5 in
  Alcotest.(check bool) "slice accepts" true
    (Core.Keyring.check receiver_slice ~signer:1 ~phase:2 ~value:P.V1
       ~origin:P.Deterministic ~proof);
  Alcotest.(check bool) "base sees it at phase 12" true
    (Core.Keyring.check keyrings.(0) ~signer:1 ~phase:12 ~value:P.V1
       ~origin:P.Deterministic ~proof);
  Alcotest.(check bool) "base rejects at phase 2" false
    (Core.Keyring.check keyrings.(0) ~signer:1 ~phase:2 ~value:P.V1
       ~origin:P.Deterministic ~proof)

let test_slice_window_bounds () =
  let rng = Util.Rng.create ~seed:401L in
  let keyrings = Core.Keyring.setup (Util.Rng.split rng) ~n:2 ~phases:10 () in
  Alcotest.check_raises "beyond horizon"
    (Invalid_argument "Keyring.slice: window exceeds the key horizon") (fun () ->
      ignore (Core.Keyring.slice keyrings.(0) ~offset:6 ~phases:5));
  let s = Core.Keyring.slice keyrings.(0) ~offset:5 ~phases:5 in
  (* slices of slices compose *)
  let s2 = Core.Keyring.slice s ~offset:2 ~phases:3 in
  Alcotest.(check int) "nested slice phases" 3 (Core.Keyring.phases s2);
  (* checks outside the slice window are rejected *)
  let proof = Core.Keyring.sign keyrings.(1) ~phase:1 ~value:P.V0 ~origin:P.Deterministic in
  Alcotest.(check bool) "outside window" false
    (Core.Keyring.check s ~signer:1 ~phase:6 ~value:P.V0 ~origin:P.Deterministic ~proof)

let make_services ?(n = 4) ?(instances = 3) ?(per_instance = 30) ?(seed = 402L)
    ?(tick_policy = Core.Turquois.Fixed_tick) () =
  let engine = Net.Engine.create () in
  let rng = Util.Rng.create ~seed in
  let radio = Net.Radio.create engine (Util.Rng.split rng) ~n in
  Net.Radio.set_loss_prob radio 0.01;
  let cfg = { (P.default_config ~n) with max_phases = per_instance } in
  let keyrings =
    Core.Keyring.setup (Util.Rng.split rng) ~n ~phases:(instances * per_instance) ()
  in
  let services =
    Array.init n (fun i ->
        let node = Net.Node.create engine radio ~id:i ~rng:(Util.Rng.split rng) in
        Core.Service.create node cfg ~keyring:keyrings.(i) ~instances ~tick_policy ())
  in
  (engine, services)

let test_service_sequential_instances () =
  let engine, services = make_services () in
  (* instance 0: all propose 1; instance 1: all propose 0; instance 2: mixed *)
  let proposals = [| [| 1; 1; 1; 1 |]; [| 0; 0; 0; 0 |]; [| 1; 0; 1; 0 |] |] in
  for a = 0 to 2 do
    ignore
      (Net.Engine.schedule engine ~delay:(float_of_int a *. 0.2) (fun () ->
           Array.iteri
             (fun i s -> Core.Service.propose s ~instance:a proposals.(a).(i))
             services))
  done;
  Net.Engine.run_while engine (fun () ->
      Net.Engine.now engine < 20.0
      && Array.exists (fun s -> Core.Service.decided_count s < 3) services);
  Array.iter
    (fun s -> Alcotest.(check int) "all instances decided" 3 (Core.Service.decided_count s))
    services;
  Alcotest.(check (option int)) "instance 0 -> 1" (Some 1)
    (Core.Service.decision services.(0) ~instance:0);
  Alcotest.(check (option int)) "instance 1 -> 0" (Some 0)
    (Core.Service.decision services.(0) ~instance:1);
  (* mixed instance: agreement across all nodes *)
  let v2 = Core.Service.decision services.(0) ~instance:2 in
  Array.iter
    (fun s -> Alcotest.(check (option int)) "instance 2 agreement" v2
        (Core.Service.decision s ~instance:2))
    services

let test_service_rejects_double_propose () =
  let engine, services = make_services () in
  Array.iter (fun s -> Core.Service.propose s ~instance:0 1) services;
  Alcotest.check_raises "double" (Invalid_argument "Service: instance 0 already proposed")
    (fun () -> Core.Service.propose services.(0) ~instance:0 1);
  Alcotest.check_raises "range" (Invalid_argument "Service: instance 9 out of range")
    (fun () -> Core.Service.propose services.(0) ~instance:9 1);
  Net.Engine.run engine ~until:1.0

let test_service_rejects_short_keyring () =
  let engine = Net.Engine.create () in
  let rng = Util.Rng.create ~seed:403L in
  let radio = Net.Radio.create engine (Util.Rng.split rng) ~n:4 in
  let cfg = { (P.default_config ~n:4) with max_phases = 30 } in
  let keyrings = Core.Keyring.setup (Util.Rng.split rng) ~n:4 ~phases:50 () in
  let node = Net.Node.create engine radio ~id:0 ~rng:(Util.Rng.split rng) in
  Alcotest.check_raises "short keyring"
    (Invalid_argument "Service.create: keyring does not cover all instances") (fun () ->
      ignore (Core.Service.create node cfg ~keyring:keyrings.(0) ~instances:2 ()))

let test_service_retire_preserves_decision () =
  let engine, services = make_services () in
  Array.iter (fun s -> Core.Service.propose s ~instance:0 1) services;
  Net.Engine.run_while engine (fun () ->
      Net.Engine.now engine < 20.0
      && Array.exists (fun s -> Core.Service.decided_count s < 1) services);
  let decision = Core.Service.decision services.(0) ~instance:0 in
  Alcotest.(check (option int)) "decided before retire" (Some 1) decision;
  Core.Service.retire services.(0) ~instance:0;
  Alcotest.(check (option int)) "decision survives retire" (Some 1)
    (Core.Service.decision services.(0) ~instance:0);
  (* idempotent, and legal on idle instances too *)
  Core.Service.retire services.(0) ~instance:0;
  Core.Service.retire services.(0) ~instance:1;
  Alcotest.(check (option int)) "idle instance stays undecided" None
    (Core.Service.decision services.(0) ~instance:1);
  (* a retired instance can no longer be proposed *)
  Alcotest.check_raises "retired rejects propose"
    (Invalid_argument "Service: instance 0 already proposed") (fun () ->
      Core.Service.propose services.(0) ~instance:0 1)

let test_service_with_adaptive_ticks () =
  let engine, services =
    make_services ~seed:405L ~tick_policy:Core.Turquois.default_adaptive ()
  in
  Array.iteri (fun i s -> Core.Service.propose s ~instance:0 (i mod 2)) services;
  Net.Engine.run_while engine (fun () ->
      Net.Engine.now engine < 20.0
      && Array.exists (fun s -> Core.Service.decided_count s < 1) services);
  Array.iter
    (fun s ->
      Alcotest.(check bool) "decided" true (Core.Service.decision s ~instance:0 <> None))
    services

(* --- adaptive tick on plain Turquois ------------------------------------------ *)

let run_turquois_with ~tick_policy ~loss ~seed =
  let n = 4 in
  let engine = Net.Engine.create () in
  let rng = Util.Rng.create ~seed in
  let radio = Net.Radio.create engine (Util.Rng.split rng) ~n in
  Net.Radio.set_loss_prob radio loss;
  (* fail-stop-like stress: only a bare quorum of processes *)
  Net.Radio.set_down radio 3 true;
  let cfg = P.default_config ~n in
  let keyrings = Core.Keyring.setup (Util.Rng.split rng) ~n ~phases:cfg.max_phases () in
  let decided = ref 0 in
  let instances =
    Array.init n (fun i ->
        let node = Net.Node.create engine radio ~id:i ~rng:(Util.Rng.split rng) in
        Core.Turquois.create node cfg ~keyring:keyrings.(i) ~tick_policy ~proposal:1 ())
  in
  Array.iteri
    (fun i p ->
      if i < 3 then begin
        Core.Turquois.on_decide p (fun ~value:_ ~phase:_ -> incr decided);
        Core.Turquois.start p
      end)
    instances;
  Net.Engine.run_while engine (fun () -> Net.Engine.now engine < 60.0 && !decided < 3);
  (!decided, Net.Engine.now engine)

let test_adaptive_tick_terminates () =
  (* with a bare quorum and heavy loss both pacing policies must reach a
     decision; which is faster is an empirical question the ablation
     benchmark answers, not an invariant *)
  for seed = 0 to 4 do
    let d_fixed, _ =
      run_turquois_with ~tick_policy:Core.Turquois.Fixed_tick ~loss:0.15
        ~seed:(Int64.of_int (500 + seed))
    in
    let d_adaptive, _ =
      run_turquois_with ~tick_policy:Core.Turquois.default_adaptive ~loss:0.15
        ~seed:(Int64.of_int (500 + seed))
    in
    Alcotest.(check int) "fixed decides" 3 d_fixed;
    Alcotest.(check int) "adaptive decides" 3 d_adaptive
  done

let test_adaptive_rejects_bad_params () =
  let engine = Net.Engine.create () in
  let rng = Util.Rng.create ~seed:406L in
  let radio = Net.Radio.create engine (Util.Rng.split rng) ~n:4 in
  let cfg = P.default_config ~n:4 in
  let keyrings = Core.Keyring.setup (Util.Rng.split rng) ~n:4 ~phases:cfg.max_phases () in
  let node = Net.Node.create engine radio ~id:0 ~rng:(Util.Rng.split rng) in
  Alcotest.check_raises "bad factor"
    (Invalid_argument "Turquois.create: bad adaptive tick parameters") (fun () ->
      ignore
        (Core.Turquois.create node cfg ~keyring:keyrings.(0)
           ~tick_policy:(Core.Turquois.Adaptive_tick { floor = 1e-3; factor = 1.5 })
           ~proposal:1 ()))

let suite =
  ( "service",
    [
      Alcotest.test_case "slice offset" `Quick test_slice_signs_with_offset;
      Alcotest.test_case "slice bounds" `Quick test_slice_window_bounds;
      Alcotest.test_case "sequential instances" `Quick test_service_sequential_instances;
      Alcotest.test_case "double propose" `Quick test_service_rejects_double_propose;
      Alcotest.test_case "short keyring" `Quick test_service_rejects_short_keyring;
      Alcotest.test_case "retire preserves decision" `Quick
        test_service_retire_preserves_decision;
      Alcotest.test_case "adaptive service" `Quick test_service_with_adaptive_ticks;
      Alcotest.test_case "adaptive terminates" `Slow test_adaptive_tick_terminates;
      Alcotest.test_case "adaptive params" `Quick test_adaptive_rejects_bad_params;
    ] )
