(* Unit and property tests for Util.Codec. *)

module W = Util.Codec.W
module R = Util.Codec.R

let test_scalar_roundtrip () =
  let w = W.create () in
  W.u8 w 0xAB;
  W.u16 w 0xCDEF;
  W.u32 w 0x12345678;
  W.u64 w 0x1122334455667788L;
  let r = R.of_bytes (W.contents w) in
  Alcotest.(check int) "u8" 0xAB (R.u8 r);
  Alcotest.(check int) "u16" 0xCDEF (R.u16 r);
  Alcotest.(check int) "u32" 0x12345678 (R.u32 r);
  Alcotest.(check int64) "u64" 0x1122334455667788L (R.u64 r);
  R.expect_end r

let test_range_checks () =
  let w = W.create () in
  Alcotest.check_raises "u8 too big" (Util.Codec.Malformed "u8 out of range") (fun () ->
      W.u8 w 256);
  Alcotest.check_raises "u16 negative" (Util.Codec.Malformed "u16 out of range") (fun () ->
      W.u16 w (-1));
  Alcotest.check_raises "u32 too big" (Util.Codec.Malformed "u32 out of range") (fun () ->
      W.u32 w 0x1_0000_0000)

let test_varint_edges () =
  List.iter
    (fun v ->
      let w = W.create () in
      W.varint w v;
      let r = R.of_bytes (W.contents w) in
      Alcotest.(check int) (Printf.sprintf "varint %d" v) v (R.varint r);
      R.expect_end r)
    [ 0; 1; 127; 128; 129; 16383; 16384; 1_000_000; max_int lsr 8 ]

let test_varint_compactness () =
  let w = W.create () in
  W.varint w 127;
  Alcotest.(check int) "single byte" 1 (W.length w);
  let w = W.create () in
  W.varint w 128;
  Alcotest.(check int) "two bytes" 2 (W.length w)

let test_bytes_lp_roundtrip () =
  let payload = Bytes.of_string "hello" in
  let w = W.create () in
  W.bytes_lp w payload;
  let r = R.of_bytes (W.contents w) in
  Alcotest.(check bytes) "payload" payload (R.bytes_lp r);
  R.expect_end r

let test_truncated () =
  let r = R.of_bytes (Bytes.of_string "\x01") in
  Alcotest.check_raises "u16 truncated" Util.Codec.Truncated (fun () -> ignore (R.u16 r))

let test_trailing_bytes () =
  let r = R.of_bytes (Bytes.of_string "\x01\x02") in
  ignore (R.u8 r);
  Alcotest.check_raises "trailing" (Util.Codec.Malformed "trailing bytes") (fun () ->
      R.expect_end r)

let test_length_prefix_truncated () =
  (* declares 100 bytes but provides 2 *)
  let w = W.create () in
  W.u32 w 100;
  W.bytes w (Bytes.of_string "ab");
  let r = R.of_bytes (W.contents w) in
  Alcotest.check_raises "lp truncated" Util.Codec.Truncated (fun () ->
      ignore (R.bytes_lp r))

let test_hex_roundtrip () =
  let b = Bytes.of_string "\x00\x01\xfe\xff" in
  Alcotest.(check string) "hex" "0001feff" (Util.Codec.hex b);
  Alcotest.(check bytes) "of_hex" b (Util.Codec.of_hex "0001feff");
  Alcotest.(check bytes) "of_hex upper" b (Util.Codec.of_hex "0001FEFF")

let test_hex_rejects () =
  Alcotest.check_raises "odd length" (Util.Codec.Malformed "odd hex length") (fun () ->
      ignore (Util.Codec.of_hex "abc"));
  Alcotest.check_raises "bad char" (Util.Codec.Malformed "non-hex character") (fun () ->
      ignore (Util.Codec.of_hex "zz"))

let qcheck_bytes_roundtrip =
  QCheck.Test.make ~name:"bytes_lp roundtrip" ~count:300 QCheck.string (fun s ->
      let w = W.create () in
      W.string_lp w s;
      let r = R.of_bytes (W.contents w) in
      let back = R.string_lp r in
      R.at_end r && back = s)

let qcheck_varint_roundtrip =
  QCheck.Test.make ~name:"varint roundtrip" ~count:300
    QCheck.(int_range 0 max_int)
    (fun v ->
      let w = W.create () in
      W.varint w v;
      let r = R.of_bytes (W.contents w) in
      R.varint r = v)

let qcheck_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:300 QCheck.string (fun s ->
      let b = Bytes.of_string s in
      Bytes.equal (Util.Codec.of_hex (Util.Codec.hex b)) b)

let suite =
  ( "codec",
    [
      Alcotest.test_case "scalar roundtrip" `Quick test_scalar_roundtrip;
      Alcotest.test_case "range checks" `Quick test_range_checks;
      Alcotest.test_case "varint edges" `Quick test_varint_edges;
      Alcotest.test_case "varint compactness" `Quick test_varint_compactness;
      Alcotest.test_case "bytes_lp roundtrip" `Quick test_bytes_lp_roundtrip;
      Alcotest.test_case "truncated" `Quick test_truncated;
      Alcotest.test_case "trailing bytes" `Quick test_trailing_bytes;
      Alcotest.test_case "lp truncated" `Quick test_length_prefix_truncated;
      Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
      Alcotest.test_case "hex rejects" `Quick test_hex_rejects;
      QCheck_alcotest.to_alcotest qcheck_bytes_roundtrip;
      QCheck_alcotest.to_alcotest qcheck_varint_roundtrip;
      QCheck_alcotest.to_alcotest qcheck_hex_roundtrip;
    ] )
