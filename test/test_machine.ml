(* Tests of the pure protocol machine: scripted transitions and
   randomized safety properties in the abstract (transport-free) model. *)

module P = Core.Proto
module M = Core.Machine

let make_group ?(n = 4) ?(seed = 300L) ?(proposals = [| 1; 1; 1; 1 |]) ?(byzantine = []) () =
  let rng = Util.Rng.create ~seed in
  let cfg = { (P.default_config ~n) with max_phases = 60 } in
  let keyrings = Core.Keyring.setup (Util.Rng.split rng) ~n ~phases:60 () in
  let machines =
    Array.init n (fun i ->
        let behavior = if List.mem i byzantine then M.Attacker else M.Correct in
        M.create cfg ~keyring:keyrings.(i) ~rng:(Util.Rng.split rng) ~behavior
          ~proposal:proposals.(i) ())
  in
  (cfg, machines)

(* one lossless synchronous round: everyone broadcasts with justification,
   everyone receives everything *)
let round machines =
  let envelopes = Array.map (fun m -> M.prepare m ~justify:true) machines in
  Array.iteri
    (fun s env ->
      match env with
      | None -> ()
      | Some env ->
          Array.iteri (fun r m -> if r <> s then ignore (M.handle m env)) machines)
    envelopes

let test_initial_state () =
  let _, machines = make_group () in
  Array.iteri
    (fun i m ->
      Alcotest.(check int) "id" i (M.id m);
      Alcotest.(check int) "phase 1" 1 (M.phase m);
      Alcotest.(check bool) "undecided" true (M.current_status m = P.Undecided);
      Alcotest.(check (option int)) "no decision" None (M.decision m))
    machines

let test_rejects_bad_proposal () =
  let rng = Util.Rng.create ~seed:1L in
  let keyrings = Core.Keyring.setup (Util.Rng.split rng) ~n:4 ~phases:12 () in
  Alcotest.check_raises "proposal 2" (Invalid_argument "Proto.value_of_bit: 2") (fun () ->
      ignore
        (M.create
           { (P.default_config ~n:4) with max_phases = 12 }
           ~keyring:keyrings.(0) ~rng ~proposal:2 ()))

let test_unanimous_decides_phase_3 () =
  let _, machines = make_group () in
  (* three lossless rounds: CONVERGE, LOCK, DECIDE *)
  round machines;
  round machines;
  round machines;
  Array.iter
    (fun m ->
      Alcotest.(check (option int)) "decided 1" (Some 1) (M.decision m);
      Alcotest.(check (option int)) "at phase 3" (Some 3) (M.decision_phase m))
    machines

let test_unanimous_zero () =
  let _, machines = make_group ~proposals:[| 0; 0; 0; 0 |] () in
  for _ = 1 to 3 do round machines done;
  Array.iter (fun m -> Alcotest.(check (option int)) "decided 0" (Some 0) (M.decision m)) machines

let test_divergent_agreement () =
  let _, machines = make_group ~seed:301L ~proposals:[| 1; 0; 1; 0 |] () in
  let rounds = ref 0 in
  while Array.exists (fun m -> M.decision m = None) machines && !rounds < 40 do
    round machines;
    incr rounds
  done;
  let decisions = Array.to_list machines |> List.filter_map M.decision in
  Alcotest.(check int) "all decided" 4 (List.length decisions);
  (match decisions with
  | v :: rest -> List.iter (fun d -> Alcotest.(check int) "agreement" v d) rest
  | [] -> ());
  Alcotest.(check bool) "within a few cycles" true (!rounds <= 12)

let test_validity_under_attack () =
  (* all correct propose 1; the attacker must not change the outcome *)
  let _, machines = make_group ~n:4 ~seed:302L ~byzantine:[ 3 ] () in
  let correct = [ 0; 1; 2 ] in
  let rounds = ref 0 in
  while List.exists (fun i -> M.decision machines.(i) = None) correct && !rounds < 40 do
    round machines;
    incr rounds
  done;
  List.iter
    (fun i -> Alcotest.(check (option int)) "validity" (Some 1) (M.decision machines.(i)))
    correct

let test_adoption_catches_up () =
  (* process 3 misses every message for 3 rounds, then receives one
     justified envelope from a decided process and adopts *)
  let _, machines = make_group ~seed:303L () in
  let laggard = machines.(3) in
  let rest = [ machines.(0); machines.(1); machines.(2) ] in
  for _ = 1 to 3 do
    let envelopes = List.map (fun m -> (M.id m, M.prepare m ~justify:true)) rest in
    List.iter
      (fun (s, env) ->
        match env with
        | None -> ()
        | Some env ->
            List.iter (fun m -> if M.id m <> s then ignore (M.handle m env)) rest)
      envelopes
  done;
  Alcotest.(check (option int)) "others decided" (Some 1) (M.decision machines.(0));
  Alcotest.(check int) "laggard still at 1" 1 (M.phase laggard);
  (* one justified message is enough to adopt the decided state *)
  (match M.prepare machines.(0) ~justify:true with
  | Some env ->
      let events, _ = M.handle laggard env in
      Alcotest.(check bool) "decided event" true
        (List.exists (function M.Decided _ -> true | M.Phase_changed _ -> false) events)
  | None -> Alcotest.fail "prepare failed");
  Alcotest.(check (option int)) "laggard decided" (Some 1) (M.decision laggard)

let test_key_horizon_exhaustion () =
  let rng = Util.Rng.create ~seed:304L in
  let keyrings = Core.Keyring.setup (Util.Rng.split rng) ~n:4 ~phases:4 () in
  let cfg = { (P.default_config ~n:4) with max_phases = 4 } in
  let m = M.create cfg ~keyring:keyrings.(0) ~rng ~proposal:1 () in
  Alcotest.(check bool) "phase 1 ok" true (M.prepare m ~justify:false <> None)

let test_attacker_message_content () =
  let _, machines = make_group ~byzantine:[ 0 ] () in
  match M.prepare machines.(0) ~justify:false with
  | Some env ->
      (* attacker in a CONVERGE phase flips its value (all propose 1) *)
      Alcotest.(check bool) "flipped" true (P.value_equal env.msg.value P.V0)
  | None -> Alcotest.fail "prepare failed"

let test_stats_accumulate () =
  let _, machines = make_group () in
  round machines;
  let s = M.stats machines.(0) in
  Alcotest.(check bool) "accepted some" true (s.accepted > 0);
  Alcotest.(check int) "no auth failures" 0 s.rejected_auth

let test_same_state_detection () =
  let _, machines = make_group () in
  Alcotest.(check bool) "before any broadcast" false
    (M.same_state_as_last_broadcast machines.(0));
  ignore (M.prepare machines.(0) ~justify:false);
  Alcotest.(check bool) "unchanged state" true (M.same_state_as_last_broadcast machines.(0))

(* --- randomized safety: agreement and validity hold under arbitrary
       omission patterns and Byzantine attackers ----------------------------- *)

let run_random_schedule ~n ~byzantine ~proposals ~drop_prob ~rounds ~seed =
  let rng = Util.Rng.create ~seed in
  let cfg = { (P.default_config ~n) with max_phases = 3 * rounds + 9 } in
  let keyrings = Core.Keyring.setup (Util.Rng.split rng) ~n ~phases:cfg.max_phases () in
  let machines =
    Array.init n (fun i ->
        let behavior = if List.mem i byzantine then M.Attacker else M.Correct in
        M.create cfg ~keyring:keyrings.(i) ~rng:(Util.Rng.split rng) ~behavior
          ~proposal:proposals.(i) ())
  in
  for _ = 1 to rounds do
    let envelopes = Array.map (fun m -> M.prepare m ~justify:(Util.Rng.bool rng)) machines in
    (* deliver in random order with random omissions *)
    let deliveries = ref [] in
    Array.iteri
      (fun s env ->
        match env with
        | None -> ()
        | Some env ->
            Array.iteri
              (fun r _ ->
                if r <> s && not (Util.Rng.bernoulli rng drop_prob) then
                  deliveries := (r, env) :: !deliveries)
              machines)
      envelopes;
    let order = Array.of_list !deliveries in
    Util.Rng.shuffle rng order;
    Array.iter (fun (r, env) -> ignore (M.handle machines.(r) env)) order
  done;
  machines

let qcheck_safety_random_schedules =
  QCheck.Test.make ~name:"agreement+validity under random omissions" ~count:40
    QCheck.(
      triple (int_range 0 1000000)
        (int_range 0 60) (* drop percentage *)
        (oneofl [ (4, [ 3 ]); (4, []); (7, [ 5; 6 ]); (7, []) ]))
    (fun (seed, drop_pct, (n, byzantine)) ->
      let rng = Util.Rng.create ~seed:(Int64.of_int seed) in
      let proposals = Array.init n (fun _ -> Util.Rng.coin rng) in
      let machines =
        run_random_schedule ~n ~byzantine ~proposals
          ~drop_prob:(float_of_int drop_pct /. 100.0)
          ~rounds:25
          ~seed:(Int64.of_int (seed + 1))
      in
      let correct = List.filter (fun i -> not (List.mem i byzantine)) (List.init n Fun.id) in
      let decisions = List.filter_map (fun i -> M.decision machines.(i)) correct in
      let agreement =
        match decisions with [] -> true | v :: rest -> List.for_all (( = ) v) rest
      in
      let validity =
        let proposed = List.map (fun i -> proposals.(i)) correct in
        match List.sort_uniq compare proposed with
        | [ v ] -> List.for_all (( = ) v) decisions
        | _ -> true
      in
      agreement && validity)

let qcheck_liveness_lossless =
  QCheck.Test.make ~name:"lossless schedules decide quickly" ~count:25
    QCheck.(pair (int_range 0 100000) (oneofl [ 4; 5; 7 ]))
    (fun (seed, n) ->
      let rng = Util.Rng.create ~seed:(Int64.of_int seed) in
      let proposals = Array.init n (fun _ -> Util.Rng.coin rng) in
      let machines =
        run_random_schedule ~n ~byzantine:[] ~proposals ~drop_prob:0.0 ~rounds:30
          ~seed:(Int64.of_int (seed + 7))
      in
      Array.for_all (fun m -> M.decision m <> None) machines)

(* --- compact wire path ------------------------------------------------------ *)

(* The delta-compressed wire path must be observation-equivalent to the
   plain one: the same scripted network executed through
   encode_envelope/handle_wire with compression off and on has to
   produce bit-identical machine states round for round. Each sender
   transmits every frame twice — a stuck re-broadcast within the same
   phase — so the second copy actually exercises the Ref entries. *)
let test_compact_wire_equivalence () =
  let universe compact =
    Core.Intern.with_compact compact (fun () ->
        let _, machines = make_group ~seed:905L ~proposals:[| 1; 0; 1; 0 |] () in
        let trace = ref [] in
        let rounds = ref 0 in
        while Array.exists (fun m -> M.decision m = None) machines && !rounds < 40 do
          let envelopes = Array.map (fun m -> M.prepare m ~justify:true) machines in
          Array.iteri
            (fun s env ->
              match env with
              | None -> ()
              | Some env ->
                  let frames =
                    [ M.encode_envelope machines.(s) env;
                      M.encode_envelope machines.(s) env ]
                  in
                  Array.iteri
                    (fun r m ->
                      if r <> s then
                        List.iter
                          (fun b ->
                            ignore (M.handle_wire m (Core.Intern.decode_wire b)))
                          frames)
                    machines)
            envelopes;
          incr rounds;
          trace := List.map M.fingerprint (Array.to_list machines) :: !trace
        done;
        (List.rev !trace, List.map M.decision (Array.to_list machines)))
  in
  let trace_plain, dec_plain = universe false in
  let trace_compact, dec_compact = universe true in
  Alcotest.(check bool) "round-for-round fingerprints" true (trace_plain = trace_compact);
  Alcotest.(check (list (option int))) "decisions" dec_plain dec_compact;
  Alcotest.(check bool) "all decided" true (List.for_all Option.is_some dec_plain)

(* Sender-side framing: first justified frame of a phase is a keyframe
   (all entries full), repeats ship 8-byte references and reuse the
   cached wire bytes, and every keyframe_every-th encode re-ships the
   bundle in full so a receiver that missed the keyframe recovers. A
   receiver that cannot resolve a reference drops just that entry and
   counts it. *)
let test_compact_framing_and_unresolved_refs () =
  Core.Intern.with_compact true (fun () ->
      let _, machines = make_group ~seed:906L ~proposals:[| 1; 0; 1; 0 |] () in
      round machines;
      (* everyone is now past phase 1, so justified envelopes are nonempty *)
      let sender = machines.(0) in
      let env =
        match M.prepare sender ~justify:true with
        | Some env -> env
        | None -> Alcotest.fail "expected a broadcast"
      in
      Alcotest.(check bool) "justification nonempty" true
        (env.Core.Message.justification <> []);
      let f = Array.init 5 (fun _ -> M.encode_envelope sender env) in
      let entries b = (Core.Intern.decode_wire b).Core.Message.wjust in
      let is_ref = function Core.Message.Ref _ -> true | Core.Message.Full _ -> false in
      Alcotest.(check bool) "frame 1 is a keyframe" true
        (List.for_all (fun e -> not (is_ref e)) (entries f.(0)));
      Alcotest.(check bool) "frame 2 is all references" true
        (List.for_all is_ref (entries f.(1)));
      Alcotest.(check bool) "frame 2 is smaller" true
        (Bytes.length f.(1) < Bytes.length f.(0));
      Alcotest.(check bool) "frames 3-4 reuse the cached bytes" true
        (Bytes.equal f.(1) f.(2) && Bytes.equal f.(1) f.(3));
      Alcotest.(check bool) "frame 5 is the next keyframe" true
        (List.for_all (fun e -> not (is_ref e)) (entries f.(4)));
      (* machine 1 never saw frame 1 over the wire, so its resolution
         cache is empty: the all-reference frame must drop the bundle *)
      let unresolved () =
        Obs.Metrics.counter_value (Obs.Metrics.snapshot ()) "compact.unresolved"
      in
      let receiver = machines.(1) in
      let before = unresolved () in
      ignore (M.handle_wire receiver (Core.Intern.decode_wire f.(1)));
      Alcotest.(check int) "every reference dropped and counted"
        (before + List.length (entries f.(1)))
        (unresolved ());
      (* the keyframe repopulates the cache; replaying the reference
         frame afterwards resolves every entry *)
      ignore (M.handle_wire receiver (Core.Intern.decode_wire f.(4)));
      let after_keyframe = unresolved () in
      ignore (M.handle_wire receiver (Core.Intern.decode_wire f.(1)));
      Alcotest.(check int) "references resolve after the keyframe" after_keyframe
        (unresolved ()))

let suite =
  ( "machine",
    [
      Alcotest.test_case "initial state" `Quick test_initial_state;
      Alcotest.test_case "bad proposal" `Quick test_rejects_bad_proposal;
      Alcotest.test_case "unanimous phase 3" `Quick test_unanimous_decides_phase_3;
      Alcotest.test_case "unanimous zero" `Quick test_unanimous_zero;
      Alcotest.test_case "divergent agreement" `Quick test_divergent_agreement;
      Alcotest.test_case "validity under attack" `Quick test_validity_under_attack;
      Alcotest.test_case "adoption catch-up" `Quick test_adoption_catches_up;
      Alcotest.test_case "key horizon" `Quick test_key_horizon_exhaustion;
      Alcotest.test_case "attacker content" `Quick test_attacker_message_content;
      Alcotest.test_case "stats" `Quick test_stats_accumulate;
      Alcotest.test_case "same state detection" `Quick test_same_state_detection;
      Alcotest.test_case "compact wire equivalence" `Quick test_compact_wire_equivalence;
      Alcotest.test_case "compact framing/unresolved" `Quick
        test_compact_framing_and_unresolved_refs;
      QCheck_alcotest.to_alcotest qcheck_safety_random_schedules;
      QCheck_alcotest.to_alcotest qcheck_liveness_lossless;
    ] )
