(* Tests for the wireless substrate: radio, MAC, datagram, reliable link,
   fault loads. *)

let make_radio ?(n = 4) ?(seed = 1L) () =
  let engine = Net.Engine.create () in
  let rng = Util.Rng.create ~seed in
  let radio = Net.Radio.create engine (Util.Rng.split rng) ~n in
  (engine, rng, radio)

(* --- radio ------------------------------------------------------------------ *)

let test_radio_delivers_to_all_but_sender () =
  let engine, _, radio = make_radio () in
  let received = ref [] in
  Net.Radio.on_receive radio (fun receiver ~sender frame ->
      Alcotest.(check int) "sender" 0 sender;
      Alcotest.(check string) "frame" "ping" (Bytes.to_string frame);
      received := receiver :: !received);
  Net.Radio.transmit radio ~sender:0 ~duration:0.001 (Bytes.of_string "ping");
  Net.Engine.run engine;
  Alcotest.(check (list int)) "receivers" [ 1; 2; 3 ] (List.sort compare !received)

let test_radio_collision_corrupts_both () =
  let engine, _, radio = make_radio () in
  let received = ref 0 in
  Net.Radio.on_receive radio (fun _ ~sender:_ _ -> incr received);
  Net.Radio.transmit radio ~sender:0 ~duration:0.001 (Bytes.of_string "a");
  Net.Radio.transmit radio ~sender:1 ~duration:0.001 (Bytes.of_string "b");
  Net.Engine.run engine;
  Alcotest.(check int) "nothing delivered" 0 !received;
  Alcotest.(check bool) "collisions counted" true ((Net.Radio.stats radio).collisions >= 2)

let test_radio_sequential_no_collision () =
  let engine, _, radio = make_radio () in
  let received = ref 0 in
  Net.Radio.on_receive radio (fun _ ~sender:_ _ -> incr received);
  Net.Radio.transmit radio ~sender:0 ~duration:0.001 (Bytes.of_string "a");
  ignore
    (Net.Engine.schedule engine ~delay:0.002 (fun () ->
         Net.Radio.transmit radio ~sender:1 ~duration:0.001 (Bytes.of_string "b")));
  Net.Engine.run engine;
  Alcotest.(check int) "both delivered to 3 receivers each" 6 !received

let test_radio_loss_probability () =
  let engine, _, radio = make_radio ~n:2 ~seed:3L () in
  Net.Radio.set_loss_prob radio 0.5;
  let received = ref 0 in
  Net.Radio.on_receive radio (fun _ ~sender:_ _ -> incr received);
  for i = 0 to 999 do
    ignore
      (Net.Engine.schedule engine ~delay:(float_of_int i *. 0.01) (fun () ->
           Net.Radio.transmit radio ~sender:0 ~duration:0.001 (Bytes.of_string "x")))
  done;
  Net.Engine.run engine;
  Alcotest.(check bool) "about half lost" true (!received > 400 && !received < 600)

let test_radio_down_node () =
  let engine, _, radio = make_radio () in
  Net.Radio.set_down radio 2 true;
  Alcotest.(check bool) "is_down" true (Net.Radio.is_down radio 2);
  let received = ref [] in
  Net.Radio.on_receive radio (fun receiver ~sender:_ _ -> received := receiver :: !received);
  Net.Radio.transmit radio ~sender:0 ~duration:0.001 (Bytes.of_string "x");
  (* down sender transmits nothing *)
  Net.Radio.transmit radio ~sender:2 ~duration:0.001 (Bytes.of_string "y");
  Net.Engine.run engine;
  Alcotest.(check (list int)) "down node neither receives nor sends" [ 1; 3 ]
    (List.sort compare !received)

let test_radio_jamming () =
  let engine, _, radio = make_radio () in
  Net.Radio.jam radio ~from:0.0 ~until:0.010;
  let received = ref 0 in
  Net.Radio.on_receive radio (fun _ ~sender:_ _ -> incr received);
  Net.Radio.transmit radio ~sender:0 ~duration:0.001 (Bytes.of_string "x");
  ignore
    (Net.Engine.schedule engine ~delay:0.020 (fun () ->
         Net.Radio.transmit radio ~sender:0 ~duration:0.001 (Bytes.of_string "y")));
  Net.Engine.run engine;
  Alcotest.(check int) "only post-jam frame arrives" 3 !received;
  Alcotest.(check int) "jam stat" 1 (Net.Radio.stats radio).jammed

let test_radio_carrier_sense () =
  let engine, _, radio = make_radio () in
  Alcotest.(check bool) "idle initially" false (Net.Radio.busy radio);
  Net.Radio.transmit radio ~sender:0 ~duration:0.005 (Bytes.of_string "x");
  Alcotest.(check bool) "busy during" true (Net.Radio.busy radio);
  let checked = ref false in
  ignore
    (Net.Engine.schedule engine ~delay:0.006 (fun () ->
         checked := true;
         Alcotest.(check bool) "idle after" false (Net.Radio.busy radio)));
  Net.Engine.run engine;
  Alcotest.(check bool) "ran" true !checked

let test_radio_idle_subscription () =
  let engine, _, radio = make_radio () in
  Net.Radio.transmit radio ~sender:0 ~duration:0.004 (Bytes.of_string "x");
  let notified_at = ref (-1.0) in
  Net.Radio.subscribe_idle radio (fun () -> notified_at := Net.Engine.now engine);
  Net.Engine.run engine;
  Alcotest.(check (float 1e-9)) "at end of tx" 0.004 !notified_at

(* --- MAC ---------------------------------------------------------------------- *)

let test_mac_airtime_math () =
  (* broadcast: long preamble + (payload+36)*8 bits at 11 Mb/s *)
  let expected = 192.0e-6 +. (float_of_int ((100 + 36) * 8) /. 11.0e6) in
  Alcotest.(check (float 1e-12)) "broadcast" expected
    (Net.Mac.airtime_broadcast ~payload_bytes:100);
  let expected_u = 96.0e-6 +. (float_of_int ((100 + 36) * 8) /. 11.0e6) in
  Alcotest.(check (float 1e-12)) "unicast" expected_u
    (Net.Mac.airtime_unicast ~payload_bytes:100)

let make_macs ?(n = 3) ?(seed = 9L) () =
  let engine = Net.Engine.create () in
  let rng = Util.Rng.create ~seed in
  let radio = Net.Radio.create engine (Util.Rng.split rng) ~n in
  let macs =
    Array.init n (fun id -> Net.Mac.create engine radio ~id ~rng:(Util.Rng.split rng))
  in
  (engine, radio, macs)

let test_mac_broadcast_delivery () =
  let engine, _, macs = make_macs () in
  let got = ref [] in
  Array.iter
    (fun mac ->
      Net.Mac.on_deliver mac (fun ~src payload ->
          got := (Net.Mac.id mac, src, Bytes.to_string payload) :: !got))
    macs;
  Net.Mac.send_broadcast macs.(0) (Bytes.of_string "hello");
  Net.Engine.run engine;
  Alcotest.(check (list (triple int int string)))
    "both others" [ (1, 0, "hello"); (2, 0, "hello") ] (List.sort compare !got)

let test_mac_unicast_acked () =
  let engine, radio, macs = make_macs () in
  let got = ref [] in
  Net.Mac.on_deliver macs.(1) (fun ~src payload ->
      got := (src, Bytes.to_string payload) :: !got);
  Net.Mac.send_unicast macs.(0) ~dst:1 (Bytes.of_string "direct");
  Net.Engine.run engine;
  Alcotest.(check (list (pair int string))) "delivered once" [ (0, "direct") ] !got;
  (* data frame + ACK frame *)
  Alcotest.(check int) "two frames" 2 (Net.Radio.stats radio).frames_sent

let test_mac_unicast_retransmits_under_loss () =
  let engine, radio, macs = make_macs ~seed:17L () in
  Net.Radio.set_loss_prob radio 0.4;
  let delivered = ref 0 in
  Net.Mac.on_deliver macs.(1) (fun ~src:_ _ -> incr delivered);
  for _ = 1 to 20 do
    Net.Mac.send_unicast macs.(0) ~dst:1 (Bytes.of_string "retry me")
  done;
  Net.Engine.run engine;
  (* 40% loss with 7 retries: all should arrive, exactly once each *)
  Alcotest.(check int) "all delivered despite loss" 20 !delivered;
  Alcotest.(check bool) "more frames than messages" true
    ((Net.Radio.stats radio).frames_sent > 40)

let test_mac_unicast_drop_after_retry_limit () =
  let engine, radio, macs = make_macs () in
  Net.Radio.set_loss_prob radio 1.0;
  let dropped = ref [] in
  Net.Mac.on_drop macs.(0) (fun ~dst payload ->
      dropped := (dst, Bytes.to_string payload) :: !dropped);
  Net.Mac.send_unicast macs.(0) ~dst:1 (Bytes.of_string "doomed");
  Net.Engine.run engine ~until:10.0;
  Alcotest.(check (list (pair int string))) "reported" [ (1, "doomed") ] !dropped

let test_mac_queue_drains_in_order () =
  let engine, _, macs = make_macs () in
  let got = ref [] in
  Net.Mac.on_deliver macs.(1) (fun ~src:_ payload -> got := Bytes.to_string payload :: !got);
  for i = 0 to 9 do
    Net.Mac.send_unicast macs.(0) ~dst:1 (Bytes.of_string (string_of_int i))
  done;
  Alcotest.(check bool) "queued" true (Net.Mac.queue_length macs.(0) > 0);
  Net.Engine.run engine;
  Alcotest.(check (list string)) "in order"
    [ "0"; "1"; "2"; "3"; "4"; "5"; "6"; "7"; "8"; "9" ]
    (List.rev !got)

let test_mac_contention_eventually_delivers () =
  (* all three stations transmit simultaneously: backoff must resolve it *)
  let engine, _, macs = make_macs ~seed:23L () in
  let delivered = ref 0 in
  Array.iter (fun mac -> Net.Mac.on_deliver mac (fun ~src:_ _ -> incr delivered)) macs;
  Array.iter (fun mac -> Net.Mac.send_broadcast mac (Bytes.of_string "storm")) macs;
  Net.Engine.run engine;
  (* each broadcast reaches the other two unless a rare collision occurs;
     with three stations and CW 31 most must get through *)
  Alcotest.(check bool) "most delivered" true (!delivered >= 4)

(* --- datagram ------------------------------------------------------------------- *)

let make_nodes ?(n = 3) ?(seed = 31L) () =
  let engine = Net.Engine.create () in
  let rng = Util.Rng.create ~seed in
  let radio = Net.Radio.create engine (Util.Rng.split rng) ~n in
  let nodes =
    Array.init n (fun id -> Net.Node.create engine radio ~id ~rng:(Util.Rng.split rng))
  in
  (engine, radio, nodes)

let test_datagram_port_dispatch () =
  let engine, _, nodes = make_nodes () in
  let port7 = ref [] and port9 = ref [] in
  Net.Node.listen nodes.(1) ~port:7 (fun ~src:_ p -> port7 := Bytes.to_string p :: !port7);
  Net.Node.listen nodes.(1) ~port:9 (fun ~src:_ p -> port9 := Bytes.to_string p :: !port9);
  Net.Node.unicast nodes.(0) ~dst:1 ~port:7 (Bytes.of_string "seven");
  Net.Node.unicast nodes.(0) ~dst:1 ~port:9 (Bytes.of_string "nine");
  Net.Node.unicast nodes.(0) ~dst:1 ~port:11 (Bytes.of_string "dropped");
  Net.Engine.run engine;
  Alcotest.(check (list string)) "port 7" [ "seven" ] !port7;
  Alcotest.(check (list string)) "port 9" [ "nine" ] !port9

let test_datagram_broadcast_loopback () =
  let engine, _, nodes = make_nodes () in
  let got = ref [] in
  Array.iter
    (fun node ->
      Net.Node.listen node ~port:5 (fun ~src p ->
          got := (Net.Node.id node, src, Bytes.to_string p) :: !got))
    nodes;
  Net.Node.broadcast nodes.(2) ~port:5 (Bytes.of_string "all");
  Net.Engine.run engine;
  Alcotest.(check (list (triple int int string)))
    "everyone including the sender"
    [ (0, 2, "all"); (1, 2, "all"); (2, 2, "all") ]
    (List.sort compare !got)

let test_node_timers () =
  let engine, _, nodes = make_nodes () in
  let fired = ref [] in
  ignore
    (Net.Node.set_timer nodes.(0) ~delay:0.5 (fun () ->
         fired := Net.Engine.now engine :: !fired));
  let cancelled = Net.Node.set_timer nodes.(0) ~delay:0.7 (fun () -> fired := 99.0 :: !fired) in
  Net.Node.cancel_timer nodes.(0) cancelled;
  Net.Engine.run engine;
  Alcotest.(check (list (float 1e-9))) "only the live timer" [ 0.5 ] !fired

let test_node_every () =
  let engine, _, nodes = make_nodes () in
  let count = ref 0 in
  Net.Node.every nodes.(0) ~period:0.1 (fun () -> incr count);
  Net.Engine.run engine ~until:0.55;
  Alcotest.(check int) "five periods" 5 !count

(* --- reliable link ------------------------------------------------------------------ *)

let make_rlinks ?(loss = 0.0) ?(auth = false) ?(seed = 37L) () =
  let engine, radio, nodes = make_nodes ~n:2 ~seed () in
  Net.Radio.set_loss_prob radio loss;
  let mk node =
    Net.Rlink.create engine (Net.Node.datagram node) (Net.Node.cpu node) ~auth ~port:20 ()
  in
  (engine, mk nodes.(0), mk nodes.(1))

let test_rlink_ordered_delivery () =
  let engine, a, b = make_rlinks () in
  let got = ref [] in
  Net.Rlink.on_receive b (fun ~src payload ->
      Alcotest.(check int) "src" 0 src;
      got := Bytes.to_string payload :: !got);
  for i = 0 to 29 do
    Net.Rlink.send a ~dst:1 (Bytes.of_string (Printf.sprintf "m%02d" i))
  done;
  Net.Engine.run engine;
  Alcotest.(check (list string)) "in order"
    (List.init 30 (Printf.sprintf "m%02d"))
    (List.rev !got)

let test_rlink_reliable_under_heavy_loss () =
  let engine, a, b = make_rlinks ~loss:0.45 ~seed:41L () in
  let got = ref [] in
  Net.Rlink.on_receive b (fun ~src:_ payload -> got := Bytes.to_string payload :: !got);
  for i = 0 to 49 do
    Net.Rlink.send a ~dst:1 (Bytes.of_string (Printf.sprintf "x%02d" i))
  done;
  Net.Engine.run engine ~until:120.0;
  Alcotest.(check (list string)) "all arrive in order"
    (List.init 50 (Printf.sprintf "x%02d"))
    (List.rev !got)

let test_rlink_bidirectional () =
  let engine, a, b = make_rlinks () in
  let at_a = ref [] and at_b = ref [] in
  Net.Rlink.on_receive a (fun ~src:_ p -> at_a := Bytes.to_string p :: !at_a);
  Net.Rlink.on_receive b (fun ~src:_ p -> at_b := Bytes.to_string p :: !at_b);
  Net.Rlink.send a ~dst:1 (Bytes.of_string "to-b");
  Net.Rlink.send b ~dst:0 (Bytes.of_string "to-a");
  Net.Engine.run engine;
  Alcotest.(check (list string)) "a got" [ "to-a" ] !at_a;
  Alcotest.(check (list string)) "b got" [ "to-b" ] !at_b

let test_rlink_authenticated () =
  let engine, a, b = make_rlinks ~auth:true () in
  let got = ref 0 in
  Net.Rlink.on_receive b (fun ~src:_ _ -> incr got);
  for _ = 1 to 5 do
    Net.Rlink.send a ~dst:1 (Bytes.of_string "authenticated")
  done;
  Net.Engine.run engine;
  Alcotest.(check int) "all delivered" 5 !got

let test_rlink_large_messages () =
  let engine, a, b = make_rlinks () in
  let big = Bytes.init 5000 (fun i -> Char.chr (i mod 256)) in
  let got = ref None in
  Net.Rlink.on_receive b (fun ~src:_ p -> got := Some p);
  Net.Rlink.send a ~dst:1 big;
  Net.Engine.run engine;
  match !got with
  | Some p -> Alcotest.(check bool) "intact" true (Bytes.equal p big)
  | None -> Alcotest.fail "not delivered"

let qcheck_rlink_random_loss =
  QCheck.Test.make ~name:"rlink delivers in order under random loss" ~count:15
    QCheck.(pair (int_range 1 30) (int_range 0 35))
    (fun (msgs, loss_pct) ->
      let engine, a, b =
        make_rlinks ~loss:(float_of_int loss_pct /. 100.0)
          ~seed:(Int64.of_int ((msgs * 131) + loss_pct))
          ()
      in
      let got = ref [] in
      Net.Rlink.on_receive b (fun ~src:_ p -> got := Bytes.to_string p :: !got);
      for i = 0 to msgs - 1 do
        Net.Rlink.send a ~dst:1 (Bytes.of_string (string_of_int i))
      done;
      Net.Engine.run engine ~until:300.0;
      List.rev !got = List.init msgs string_of_int)

(* --- fault loads ----------------------------------------------------------------------- *)

let test_fault_max_f () =
  List.iter
    (fun (n, expected) -> Alcotest.(check int) (Printf.sprintf "n=%d" n) expected (Net.Fault.max_f n))
    [ (4, 1); (7, 2); (10, 3); (13, 4); (16, 5) ]

let test_fault_sets () =
  Alcotest.(check (list int)) "failure-free empty" []
    (Net.Fault.faulty_set ~n:7 Net.Fault.Failure_free);
  Alcotest.(check (list int)) "fail-stop top ids" [ 6; 5 ]
    (Net.Fault.faulty_set ~n:7 Net.Fault.Fail_stop);
  Alcotest.(check bool) "is_faulty" true (Net.Fault.is_faulty ~n:7 Net.Fault.Byzantine 6);
  Alcotest.(check bool) "not faulty" false (Net.Fault.is_faulty ~n:7 Net.Fault.Byzantine 0)

let test_fault_apply_crashes () =
  let engine = Net.Engine.create () in
  let radio = Net.Radio.create engine (Util.Rng.create ~seed:1L) ~n:7 in
  Net.Fault.apply_crashes radio ~n:7 Net.Fault.Fail_stop;
  Alcotest.(check bool) "crashed" true (Net.Radio.is_down radio 6);
  Alcotest.(check bool) "alive" false (Net.Radio.is_down radio 0);
  (* Byzantine processes stay up *)
  let radio2 = Net.Radio.create engine (Util.Rng.create ~seed:2L) ~n:7 in
  Net.Fault.apply_crashes radio2 ~n:7 Net.Fault.Byzantine;
  Alcotest.(check bool) "byzantine not down" false (Net.Radio.is_down radio2 6)

let suite =
  ( "net",
    [
      Alcotest.test_case "radio delivery" `Quick test_radio_delivers_to_all_but_sender;
      Alcotest.test_case "radio collision" `Quick test_radio_collision_corrupts_both;
      Alcotest.test_case "radio sequential" `Quick test_radio_sequential_no_collision;
      Alcotest.test_case "radio loss" `Quick test_radio_loss_probability;
      Alcotest.test_case "radio down node" `Quick test_radio_down_node;
      Alcotest.test_case "radio jamming" `Quick test_radio_jamming;
      Alcotest.test_case "radio carrier sense" `Quick test_radio_carrier_sense;
      Alcotest.test_case "radio idle subscription" `Quick test_radio_idle_subscription;
      Alcotest.test_case "mac airtime" `Quick test_mac_airtime_math;
      Alcotest.test_case "mac broadcast" `Quick test_mac_broadcast_delivery;
      Alcotest.test_case "mac unicast ack" `Quick test_mac_unicast_acked;
      Alcotest.test_case "mac retransmit" `Quick test_mac_unicast_retransmits_under_loss;
      Alcotest.test_case "mac retry limit" `Quick test_mac_unicast_drop_after_retry_limit;
      Alcotest.test_case "mac fifo queue" `Quick test_mac_queue_drains_in_order;
      Alcotest.test_case "mac contention" `Quick test_mac_contention_eventually_delivers;
      Alcotest.test_case "datagram ports" `Quick test_datagram_port_dispatch;
      Alcotest.test_case "datagram loopback" `Quick test_datagram_broadcast_loopback;
      Alcotest.test_case "node timers" `Quick test_node_timers;
      Alcotest.test_case "node every" `Quick test_node_every;
      Alcotest.test_case "rlink ordered" `Quick test_rlink_ordered_delivery;
      Alcotest.test_case "rlink heavy loss" `Quick test_rlink_reliable_under_heavy_loss;
      Alcotest.test_case "rlink bidirectional" `Quick test_rlink_bidirectional;
      Alcotest.test_case "rlink authenticated" `Quick test_rlink_authenticated;
      Alcotest.test_case "rlink large messages" `Quick test_rlink_large_messages;
      QCheck_alcotest.to_alcotest qcheck_rlink_random_loss;
      Alcotest.test_case "fault max_f" `Quick test_fault_max_f;
      Alcotest.test_case "fault sets" `Quick test_fault_sets;
      Alcotest.test_case "fault crashes" `Quick test_fault_apply_crashes;
    ] )

(* --- randomized MAC invariants ------------------------------------------------ *)

(* under arbitrary loss: no payload is delivered twice, none vanishes
   (each is delivered or reported dropped — possibly both, when the
   data frame succeeded but its final ACK was lost, exactly as in real
   802.11), and deliveries preserve send order *)
let qcheck_mac_exactly_once =
  QCheck.Test.make ~name:"mac unicast at-most-once, no loss, in-order" ~count:20
    QCheck.(triple (int_range 1 25) (int_range 0 60) int64)
    (fun (messages, loss_pct, seed) ->
      let engine = Net.Engine.create () in
      let rng = Util.Rng.create ~seed in
      let radio = Net.Radio.create engine (Util.Rng.split rng) ~n:2 in
      Net.Radio.set_loss_prob radio (float_of_int loss_pct /. 100.0);
      let a = Net.Mac.create engine radio ~id:0 ~rng:(Util.Rng.split rng) in
      let b = Net.Mac.create engine radio ~id:1 ~rng:(Util.Rng.split rng) in
      let delivered = ref [] in
      let dropped = ref [] in
      Net.Mac.on_deliver b (fun ~src:_ payload -> delivered := Bytes.to_string payload :: !delivered);
      Net.Mac.on_drop a (fun ~dst:_ payload -> dropped := Bytes.to_string payload :: !dropped);
      for i = 0 to messages - 1 do
        Net.Mac.send_unicast a ~dst:1 (Bytes.of_string (string_of_int i))
      done;
      Net.Engine.run engine ~until:600.0;
      let delivered = List.rev !delivered in
      let dropped = List.rev !dropped in
      let expected = List.init messages string_of_int in
      let covered m = List.mem m delivered || List.mem m dropped in
      let no_duplicates l = List.length (List.sort_uniq compare l) = List.length l in
      let in_order l =
        let rec go last = function
          | [] -> true
          | x :: rest -> int_of_string x > last && go (int_of_string x) rest
        in
        go (-1) l
      in
      List.for_all covered expected && no_duplicates delivered && in_order delivered)

(* radio conservation: sent = delivered + losses + (collided and jammed
   frames accounted separately); no phantom deliveries *)
let qcheck_radio_conservation =
  QCheck.Test.make ~name:"radio delivery conservation" ~count:30
    QCheck.(pair (int_range 1 40) int64)
    (fun (frames, seed) ->
      let engine = Net.Engine.create () in
      let rng = Util.Rng.create ~seed in
      let radio = Net.Radio.create engine (Util.Rng.split rng) ~n:3 in
      Net.Radio.set_loss_prob radio 0.3;
      let received = ref 0 in
      Net.Radio.on_receive radio (fun _ ~sender:_ _ -> incr received);
      (* spaced transmissions: no collisions by construction *)
      for i = 0 to frames - 1 do
        ignore
          (Net.Engine.schedule engine ~delay:(float_of_int i *. 0.01) (fun () ->
               Net.Radio.transmit radio ~sender:(i mod 3) ~duration:0.001
                 (Bytes.of_string "x")))
      done;
      Net.Engine.run engine;
      let stats = Net.Radio.stats radio in
      stats.frames_sent = frames
      && !received = stats.frames_delivered
      && stats.frames_delivered + stats.losses = 2 * frames
      && stats.collisions = 0)

let suite =
  ( fst suite,
    snd suite
    @ [
        QCheck_alcotest.to_alcotest qcheck_mac_exactly_once;
        QCheck_alcotest.to_alcotest qcheck_radio_conservation;
      ] )
