(* Tests for the open-loop workload generator: sanity of a single run,
   and the determinism contracts (same seed, -j N, memo on/off). *)

module W = Harness.Workload

let small_base =
  {
    (W.default ~n:4) with
    W.capacity = 8;
    window = 2;
    max_batch = 4;
    commands = 16;
    load = 40.0;
    seed = 7300L;
  }

let test_single_run_sanity () =
  let r = W.run small_base in
  Alcotest.(check int) "commands offered" 16 r.W.commands;
  Alcotest.(check bool) "some commands delivered" true (r.W.delivered_commands > 0);
  Alcotest.(check int) "every slot delivered" 8 (r.W.committed_slots + r.W.skipped_slots);
  Alcotest.(check bool) "finished before timeout" true (r.W.duration < small_base.W.timeout);
  Alcotest.(check bool) "positive latency" true (r.W.latency_p50 > 0.0);
  Alcotest.(check bool) "p99 at least p50" true (r.W.latency_p99 >= r.W.latency_p50)

let test_same_seed_same_result () =
  let a = W.run small_base in
  let b = W.run small_base in
  Alcotest.(check bool) "bit-identical rerun" true (a = b)

let test_bursty_matches_rate () =
  let r = W.run { small_base with W.arrival = W.Bursty 4 } in
  Alcotest.(check bool) "bursty delivers too" true (r.W.delivered_commands > 0)

let sweep_with ~jobs =
  W.sweep ~jobs ~base:small_base ~loads:[ 20.0; 60.0 ] ~reps:2 ()

let test_sweep_parallel_determinism () =
  let sequential = sweep_with ~jobs:1 in
  let parallel = sweep_with ~jobs:2 in
  Alcotest.(check bool) "-j1 = -j2" true (sequential = parallel)

let test_sweep_memo_determinism () =
  let pass memo =
    Core.Intern.with_memo memo (fun () ->
        Harness.Runner.clear_key_cache ();
        sweep_with ~jobs:1)
  in
  let without = pass false in
  let with_memo = pass true in
  Alcotest.(check bool) "memo off = memo on" true (without = with_memo)

let test_knee_detection () =
  let point load_point mean_throughput =
    {
      W.load_point;
      mean_throughput;
      mean_decisions_per_sec = 0.0;
      mean_p50 = 0.0;
      mean_p99 = 0.0;
      mean_delivered = 0.0;
      reps = 1;
    }
  in
  (* served at rate up to 40, saturated at 80 *)
  let points = [ point 20.0 19.8; point 40.0 38.0; point 80.0 41.0 ] in
  Alcotest.(check (option (float 1e-9))) "knee at 40" (Some 40.0) (W.knee points);
  Alcotest.(check (option (float 1e-9))) "all saturated" None
    (W.knee [ point 20.0 2.0 ]);
  Alcotest.(check bool) "render mentions knee" true
    (String.length (W.render_points points) > 0)

let test_rejects_bad_config () =
  Alcotest.check_raises "bad load" (Invalid_argument "Workload: load must be positive")
    (fun () -> ignore (W.run { small_base with W.load = 0.0 }));
  Alcotest.check_raises "bad n" (Invalid_argument "Workload: need n >= 4") (fun () ->
      ignore (W.run { small_base with W.n = 3 }))

let suite =
  ( "workload",
    [
      Alcotest.test_case "single run sanity" `Quick test_single_run_sanity;
      Alcotest.test_case "same seed same result" `Quick test_same_seed_same_result;
      Alcotest.test_case "bursty arrivals" `Quick test_bursty_matches_rate;
      Alcotest.test_case "sweep -j determinism" `Slow test_sweep_parallel_determinism;
      Alcotest.test_case "sweep memo determinism" `Slow test_sweep_memo_determinism;
      Alcotest.test_case "knee detection" `Quick test_knee_detection;
      Alcotest.test_case "bad config" `Quick test_rejects_bad_config;
    ] )
