(* Remaining unit surfaces: table formatting, the CPU cost model, the
   datagram header, and the decision-certificate recovery path. *)

(* --- Tablefmt ----------------------------------------------------------- *)

let test_table_render () =
  let s =
    Util.Tablefmt.render ~header:[ "a"; "b" ]
      ~rows:[ [ "x"; "1" ]; [ "longer"; "22" ] ]
      ()
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "has border" true (List.exists (fun l -> l <> "" && l.[0] = '+') lines);
  (* all non-empty lines are equally wide *)
  let widths = List.filter_map (fun l -> if l = "" then None else Some (String.length l)) lines in
  Alcotest.(check bool) "rectangular" true
    (List.for_all (( = ) (List.hd widths)) widths)

let test_table_pads_short_rows () =
  let s = Util.Tablefmt.render ~header:[ "a"; "b"; "c" ] ~rows:[ [ "only-one" ] ] () in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_latency_cell () =
  Alcotest.(check string) "format" "12.35 ± 1.20" (Util.Tablefmt.latency_cell ~mean:12.345 ~ci:1.2)

(* --- Cost model ----------------------------------------------------------- *)

let test_cost_monotone_in_size () =
  Alcotest.(check bool) "sha grows" true
    (Net.Cost.sha256 ~bytes_len:10_000 > Net.Cost.sha256 ~bytes_len:10);
  Alcotest.(check bool) "hmac > 2 sha" true
    (Net.Cost.hmac ~bytes_len:100 > 2.0 *. Net.Cost.sha256 ~bytes_len:100)

let test_cost_hierarchy () =
  (* the relationships the paper's design exploits *)
  Alcotest.(check bool) "onetime check is micro-scale" true (Net.Cost.onetime_check < 10.0e-6);
  Alcotest.(check bool) "rsa sign >> rsa verify" true
    (Net.Cost.rsa_sign > 10.0 *. Net.Cost.rsa_verify);
  Alcotest.(check bool) "rsa verify >> hash" true
    (Net.Cost.rsa_verify > 100.0 *. Net.Cost.onetime_check);
  Alcotest.(check bool) "coin share verify > create unit" true
    (Net.Cost.coin_share_verify > Net.Cost.modexp);
  Alcotest.(check (float 1e-12)) "combine linear" (3.0 *. Net.Cost.modexp)
    (Net.Cost.coin_combine ~shares:3)

(* --- datagram framing -------------------------------------------------------- *)

let test_datagram_header_constant () =
  Alcotest.(check int) "IP+UDP" 28 Net.Datagram.header_bytes

let test_mac_constants () =
  Alcotest.(check (float 1e-12)) "slot" 20.0e-6 Net.Mac.Const.slot;
  Alcotest.(check (float 1e-12)) "sifs" 10.0e-6 Net.Mac.Const.sifs;
  Alcotest.(check (float 1e-12)) "difs" 50.0e-6 Net.Mac.Const.difs;
  Alcotest.(check bool) "difs = sifs + 2 slots" true
    (Float.abs (Net.Mac.Const.difs -. (Net.Mac.Const.sifs +. (2.0 *. Net.Mac.Const.slot)))
    < 1e-12);
  Alcotest.(check int) "cw doubles to max" 1023 Net.Mac.Const.cw_max

(* --- decision certificate ------------------------------------------------------ *)

let test_certificate_rescues_deep_laggard () =
  (* three processes decide and advance far beyond the laggard's reach;
     the laggard cannot replay the validation chain but must still decide
     from a quorum of authentic decided claims *)
  let n = 4 in
  let rng = Util.Rng.create ~seed:700L in
  let cfg = { (Core.Proto.default_config ~n) with max_phases = 60 } in
  let keyrings = Core.Keyring.setup (Util.Rng.split rng) ~n ~phases:60 () in
  let machines =
    Array.init n (fun i ->
        Core.Machine.create cfg ~keyring:keyrings.(i) ~rng:(Util.Rng.split rng) ~proposal:1 ())
  in
  let fast = [ machines.(0); machines.(1); machines.(2) ] in
  (* ten lossless rounds among the fast three: they decide at phase 3 and
     keep advancing to ~phase 13 *)
  for _ = 1 to 10 do
    let envelopes = List.map (fun m -> (Core.Machine.id m, Core.Machine.prepare m ~justify:true)) fast in
    List.iter
      (fun (s, env) ->
        match env with
        | None -> ()
        | Some env ->
            List.iter (fun m -> if Core.Machine.id m <> s then ignore (Core.Machine.handle m env)) fast)
      envelopes
  done;
  List.iter
    (fun m -> Alcotest.(check (option int)) "fast decided" (Some 1) (Core.Machine.decision m))
    fast;
  Alcotest.(check bool) "fast ran ahead" true (Core.Machine.phase machines.(0) > 8);
  let laggard = machines.(3) in
  Alcotest.(check int) "laggard at phase 1" 1 (Core.Machine.phase laggard);
  (* deliver one CURRENT envelope from each fast process, without the
     full history: with bundles reaching only three phases back the
     chain is not replayable, but three decided claims form a quorum *)
  List.iter
    (fun m ->
      match Core.Machine.prepare m ~justify:true with
      | Some env -> ignore (Core.Machine.handle laggard env)
      | None -> Alcotest.fail "prepare failed")
    fast;
  Alcotest.(check (option int)) "laggard decided by certificate" (Some 1)
    (Core.Machine.decision laggard)

let test_certificate_needs_quorum () =
  (* f decided claims alone (possible forgeries) must not trigger it *)
  let n = 4 in
  let rng = Util.Rng.create ~seed:701L in
  let cfg = { (Core.Proto.default_config ~n) with max_phases = 60 } in
  let keyrings = Core.Keyring.setup (Util.Rng.split rng) ~n ~phases:60 () in
  let machines =
    Array.init n (fun i ->
        Core.Machine.create cfg ~keyring:keyrings.(i) ~rng:(Util.Rng.split rng) ~proposal:1 ())
  in
  let fast = [ machines.(0); machines.(1); machines.(2) ] in
  for _ = 1 to 10 do
    let envelopes = List.map (fun m -> (Core.Machine.id m, Core.Machine.prepare m ~justify:true)) fast in
    List.iter
      (fun (s, env) ->
        match env with
        | None -> ()
        | Some env ->
            List.iter (fun m -> if Core.Machine.id m <> s then ignore (Core.Machine.handle m env)) fast)
      envelopes
  done;
  let laggard = machines.(3) in
  (* a single decided claim: below the quorum of 3 *)
  (match Core.Machine.prepare machines.(0) ~justify:false with
  | Some env -> ignore (Core.Machine.handle laggard env)
  | None -> Alcotest.fail "prepare failed");
  Alcotest.(check (option int)) "one claim is not enough" None (Core.Machine.decision laggard)

let suite =
  ( "misc-units",
    [
      Alcotest.test_case "table render" `Quick test_table_render;
      Alcotest.test_case "table short rows" `Quick test_table_pads_short_rows;
      Alcotest.test_case "latency cell" `Quick test_latency_cell;
      Alcotest.test_case "cost monotone" `Quick test_cost_monotone_in_size;
      Alcotest.test_case "cost hierarchy" `Quick test_cost_hierarchy;
      Alcotest.test_case "datagram header" `Quick test_datagram_header_constant;
      Alcotest.test_case "mac constants" `Quick test_mac_constants;
      Alcotest.test_case "certificate rescue" `Quick test_certificate_rescues_deep_laggard;
      Alcotest.test_case "certificate quorum" `Quick test_certificate_needs_quorum;
    ] )

(* --- robustness and determinism ----------------------------------------------- *)

let test_malformed_frames_ignored () =
  (* raw garbage on the radio must not crash any layer or produce
     phantom deliveries *)
  let engine = Net.Engine.create () in
  let rng = Util.Rng.create ~seed:720L in
  let radio = Net.Radio.create engine (Util.Rng.split rng) ~n:2 in
  let node = Net.Node.create engine radio ~id:1 ~rng:(Util.Rng.split rng) in
  let got = ref 0 in
  Net.Node.listen node ~port:3 (fun ~src:_ _ -> incr got);
  let rl = Net.Rlink.create engine (Net.Node.datagram node) (Net.Node.cpu node) ~port:4 () in
  Net.Rlink.on_receive rl (fun ~src:_ _ -> incr got);
  (* garbage of various shapes, transmitted directly on the medium *)
  List.iteri
    (fun i garbage ->
      ignore
        (Net.Engine.schedule engine ~delay:(float_of_int i *. 0.01) (fun () ->
             Net.Radio.transmit radio ~sender:0 ~duration:0.0005 garbage)))
    [
      Bytes.empty;
      Bytes.make 1 '\xff';
      Bytes.make 200 '\x00';
      Bytes.of_string "not a frame at all";
      Util.Rng.bytes rng 64;
    ];
  Net.Engine.run engine;
  Alcotest.(check int) "nothing delivered" 0 !got

let test_turquois_ignores_garbage_datagrams () =
  (* well-formed MAC/UDP framing around a garbage consensus payload *)
  let engine = Net.Engine.create () in
  let rng = Util.Rng.create ~seed:721L in
  let n = 4 in
  let radio = Net.Radio.create engine (Util.Rng.split rng) ~n in
  let cfg = Core.Proto.default_config ~n in
  let keyrings = Core.Keyring.setup (Util.Rng.split rng) ~n ~phases:cfg.max_phases () in
  let nodes = Array.init n (fun id -> Net.Node.create engine radio ~id ~rng:(Util.Rng.split rng)) in
  let decided = ref 0 in
  let procs =
    Array.init n (fun i ->
        Core.Turquois.create nodes.(i) cfg ~keyring:keyrings.(i) ~proposal:1 ())
  in
  Array.iter (fun p -> Core.Turquois.on_decide p (fun ~value:_ ~phase:_ -> incr decided)) procs;
  Array.iter Core.Turquois.start procs;
  (* node 3 also spews garbage onto the consensus port every 2 ms *)
  for i = 1 to 10 do
    ignore
      (Net.Engine.schedule engine ~delay:(float_of_int i *. 0.002) (fun () ->
           Net.Node.broadcast nodes.(3) ~port:443 (Util.Rng.bytes rng 40)))
  done;
  Net.Engine.run_while engine (fun () -> Net.Engine.now engine < 10.0 && !decided < n);
  Alcotest.(check int) "all decide despite garbage" n !decided

let test_rlink_recovers_after_blackout () =
  (* total loss long enough to exhaust MAC retries; the transport's RTO
     must recover once the channel returns *)
  let engine = Net.Engine.create () in
  let rng = Util.Rng.create ~seed:722L in
  let radio = Net.Radio.create engine (Util.Rng.split rng) ~n:2 in
  let a = Net.Node.create engine radio ~id:0 ~rng:(Util.Rng.split rng) in
  let b = Net.Node.create engine radio ~id:1 ~rng:(Util.Rng.split rng) in
  let rla = Net.Rlink.create engine (Net.Node.datagram a) (Net.Node.cpu a) ~port:9 () in
  let rlb = Net.Rlink.create engine (Net.Node.datagram b) (Net.Node.cpu b) ~port:9 () in
  let got = ref [] in
  Net.Rlink.on_receive rlb (fun ~src:_ p -> got := Bytes.to_string p :: !got);
  Net.Radio.set_loss_prob radio 1.0;
  Net.Rlink.send rla ~dst:1 (Bytes.of_string "through the storm");
  ignore
    (Net.Engine.schedule engine ~delay:3.0 (fun () -> Net.Radio.set_loss_prob radio 0.0));
  Net.Engine.run engine ~until:60.0;
  Alcotest.(check (list string)) "recovered" [ "through the storm" ] !got;
  Alcotest.(check bool) "rto retransmissions happened" true
    (Net.Rlink.stats_retransmissions rla > 0)

let test_baseline_determinism () =
  let run protocol =
    let r =
      Harness.Runner.run ~protocol ~n:4 ~dist:Harness.Runner.Divergent
        ~load:Net.Fault.Failure_free ~seed:723L ()
    in
    (r.latencies, r.decisions)
  in
  List.iter
    (fun protocol ->
      Alcotest.(check bool) "same run twice" true (run protocol = run protocol))
    [ Harness.Runner.Bracha; Harness.Runner.Abba ]

let qcheck_vset_count_consistency =
  QCheck.Test.make ~name:"vset counts are consistent" ~count:150
    QCheck.(
      list_of_size (QCheck.Gen.int_range 0 30)
        (triple (int_range 0 4) (int_range 1 9) (int_range 0 2)))
    (fun entries ->
      let v = Core.Vset.create ~n:5 in
      List.iter
        (fun (sender, phase, value) ->
          ignore
            (Core.Vset.add v
               {
                 Core.Message.sender;
                 phase;
                 value = Core.Proto.value_of_int value;
                 origin = Core.Proto.Deterministic;
                 status = Core.Proto.Undecided;
                 proof = Bytes.empty;
               }))
        entries;
      (* reference model: per (sender, phase), the set of distinct values
         stored (Vset keeps one copy per value — equivocated extras) *)
      let model : (int * int, Core.Proto.value list) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (sender, phase, value) ->
          let value = Core.Proto.value_of_int value in
          let seen = Option.value ~default:[] (Hashtbl.find_opt model (sender, phase)) in
          if not (List.exists (Core.Proto.value_equal value) seen) then
            Hashtbl.replace model (sender, phase) (value :: seen))
        entries;
      let senders_at phase =
        List.filter (fun s -> Hashtbl.mem model (s, phase)) (List.init 5 (fun s -> s))
      in
      let copies_at phase =
        List.fold_left
          (fun acc s ->
            acc + List.length (Option.value ~default:[] (Hashtbl.find_opt model (s, phase))))
          0 (senders_at phase)
      in
      List.for_all
        (fun phase ->
          (* count_phase counts distinct senders; count_value counts
             senders with any copy of that value; messages_at returns
             every stored copy *)
          Core.Vset.count_phase v ~phase = List.length (senders_at phase)
          && List.length (Core.Vset.messages_at v ~phase) = copies_at phase
          && List.for_all
               (fun value ->
                 Core.Vset.count_value v ~phase ~value
                 = List.length
                     (List.filter
                        (fun s ->
                          List.exists (Core.Proto.value_equal value)
                            (Option.value ~default:[] (Hashtbl.find_opt model (s, phase))))
                        (senders_at phase)))
               [ Core.Proto.V0; Core.Proto.V1; Core.Proto.Vbot ])
        (List.init 9 (fun i -> i + 1))
      && Core.Vset.size v
         = List.fold_left
             (fun acc phase -> acc + copies_at phase)
             0
             (List.init 9 (fun i -> i + 1)))

let suite =
  ( fst suite,
    snd suite
    @ [
        Alcotest.test_case "malformed frames" `Quick test_malformed_frames_ignored;
        Alcotest.test_case "garbage datagrams" `Quick test_turquois_ignores_garbage_datagrams;
        Alcotest.test_case "rlink blackout recovery" `Quick test_rlink_recovers_after_blackout;
        Alcotest.test_case "baseline determinism" `Slow test_baseline_determinism;
        QCheck_alcotest.to_alcotest qcheck_vset_count_consistency;
      ] )
