(* Tests for the extension modules: RIPEMD-160, Merkle trees, tracing,
   and leader election. *)

(* --- RIPEMD-160 (official test vectors) ------------------------------------ *)

let test_ripemd_vectors () =
  List.iter
    (fun (input, expected) ->
      Alcotest.(check string) input expected (Crypto.Ripemd160.hex_digest_string input))
    [
      ("", "9c1185a5c5e9fc54612808977ee8f548b2258d31");
      ("a", "0bdc9d2d256b3ee9daae347be6f4dc835a467ffe");
      ("abc", "8eb208f7e05d987a9b044a8e98c6b087f15a0bfc");
      ("message digest", "5d0689ef49d2fae572b881b123a85ffa21595f36");
      ("abcdefghijklmnopqrstuvwxyz", "f71c27109c692c1b56bbdceb5b9d2865b3708dbc");
      ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "12a053384a9c0c88e405a06c27dcf49ada62eb2b" );
      ( "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
        "b0e20b6e3116640286ed3a87a5713079b21f5189" );
      ( "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
        "9b752e45573d4b39f4dbd3323cab82bf63326bfb" );
    ]

let test_ripemd_million_a () =
  Alcotest.(check string) "million a" "52783243c1697bdbe16d37f97f68f08325dc1528"
    (Crypto.Ripemd160.hex_digest_string (String.make 1_000_000 'a'))

let test_ripemd_size () =
  Alcotest.(check int) "20 bytes" Crypto.Ripemd160.digest_size
    (Bytes.length (Crypto.Ripemd160.digest_string "x"))

(* --- Merkle ------------------------------------------------------------------ *)

let leaves n = List.init n (fun i -> Bytes.of_string (Printf.sprintf "leaf-%d" i))

let test_merkle_verify_all_leaves () =
  List.iter
    (fun n ->
      let ls = leaves n in
      let tree = Crypto.Merkle.build ls in
      Alcotest.(check int) "leaf count" n (Crypto.Merkle.leaf_count tree);
      List.iteri
        (fun i leaf ->
          let path = Crypto.Merkle.prove tree ~index:i in
          Alcotest.(check bool)
            (Printf.sprintf "n=%d leaf %d" n i)
            true
            (Crypto.Merkle.verify ~root:(Crypto.Merkle.root tree) ~index:i ~leaf path))
        ls)
    [ 1; 2; 3; 4; 5; 7; 8; 16; 33 ]

let test_merkle_rejects_wrong_leaf () =
  let tree = Crypto.Merkle.build (leaves 8) in
  let path = Crypto.Merkle.prove tree ~index:3 in
  Alcotest.(check bool) "wrong leaf" false
    (Crypto.Merkle.verify ~root:(Crypto.Merkle.root tree) ~index:3
       ~leaf:(Bytes.of_string "forged") path);
  Alcotest.(check bool) "wrong index" false
    (Crypto.Merkle.verify ~root:(Crypto.Merkle.root tree) ~index:4
       ~leaf:(Bytes.of_string "leaf-3") path)

let test_merkle_root_depends_on_order () =
  let a = Crypto.Merkle.build (leaves 4) in
  let b = Crypto.Merkle.build (List.rev (leaves 4)) in
  Alcotest.(check bool) "different roots" false
    (Bytes.equal (Crypto.Merkle.root a) (Crypto.Merkle.root b))

let test_merkle_path_serialization () =
  let tree = Crypto.Merkle.build (leaves 5) in
  let path = Crypto.Merkle.prove tree ~index:4 in
  let back = Crypto.Merkle.path_of_bytes (Crypto.Merkle.path_to_bytes path) in
  Alcotest.(check int) "length" (Crypto.Merkle.path_length path) (Crypto.Merkle.path_length back);
  Alcotest.(check bool) "still verifies" true
    (Crypto.Merkle.verify ~root:(Crypto.Merkle.root tree) ~index:4
       ~leaf:(Bytes.of_string "leaf-4") back)

let test_merkle_size_tradeoff () =
  (* the Section 6.1 optimization: for a 300-phase key array (1500
     leaves), one path is far smaller than the whole VK array *)
  let leaves = 1500 in
  Alcotest.(check bool) "path much smaller" true
    (Crypto.Merkle.path_size ~leaves * 20 < Crypto.Merkle.array_size ~leaves);
  Alcotest.(check int) "array size" (1500 * 32) (Crypto.Merkle.array_size ~leaves)

let test_merkle_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Merkle.build: no leaves") (fun () ->
      ignore (Crypto.Merkle.build []))

let qcheck_merkle_random =
  QCheck.Test.make ~name:"merkle verify on random trees" ~count:60
    QCheck.(pair (int_range 1 40) (int_range 0 1000))
    (fun (n, pick) ->
      let ls = List.init n (fun i -> Bytes.of_string (Printf.sprintf "%d-%d" i (i * 7))) in
      let tree = Crypto.Merkle.build ls in
      let index = pick mod n in
      let path = Crypto.Merkle.prove tree ~index in
      Crypto.Merkle.verify ~root:(Crypto.Merkle.root tree) ~index
        ~leaf:(List.nth ls index) path)

(* --- tracing ------------------------------------------------------------------ *)

let test_trace_off_by_default () =
  Net.Trace.clear ();
  Net.Trace.stop ();
  Net.Trace.emit ~time:1.0 ~node:0 ~layer:"x" ~label:"y" "z";
  Alcotest.(check int) "nothing collected" 0 (List.length (Net.Trace.events ()))

let test_trace_collects_and_limits () =
  Net.Trace.start ~limit:5 ();
  for i = 0 to 9 do
    Net.Trace.emit ~time:(float_of_int i) ~node:i ~layer:"l" ~label:"e" "d"
  done;
  Net.Trace.stop ();
  Alcotest.(check int) "kept" 5 (List.length (Net.Trace.events ()));
  Alcotest.(check int) "dropped" 5 (Net.Trace.dropped ());
  let rendered = Net.Trace.render () in
  Alcotest.(check bool) "mentions drop" true
    (String.length rendered > 0);
  Net.Trace.clear ()

let test_trace_captures_protocol_run () =
  Net.Trace.start ();
  let r =
    Harness.Runner.run ~protocol:Harness.Runner.Turquois ~n:4 ~dist:Harness.Runner.Unanimous
      ~load:Net.Fault.Failure_free ~seed:77L ()
  in
  Net.Trace.stop ();
  Alcotest.(check bool) "run decided" true (List.length r.latencies = 4);
  let events = Net.Trace.events () in
  let decides =
    List.filter (fun e -> e.Net.Trace.layer = "turquois" && e.label = "decide") events
  in
  Alcotest.(check int) "four decide events" 4 (List.length decides);
  Alcotest.(check bool) "radio traffic traced" true
    (List.exists (fun e -> e.Net.Trace.layer = "radio") events);
  (* timestamps are nondecreasing *)
  let rec monotone = function
    | a :: (b :: _ as rest) -> a.Net.Trace.time <= b.Net.Trace.time && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (monotone events);
  Net.Trace.clear ()

(* --- election ------------------------------------------------------------------ *)

let run_election ~n ~alive_matrix ~seed =
  let engine = Net.Engine.create () in
  let rng = Util.Rng.create ~seed in
  let radio = Net.Radio.create engine (Util.Rng.split rng) ~n in
  Net.Radio.set_loss_prob radio 0.01;
  let cfg = { (Core.Proto.default_config ~n) with max_phases = 45 } in
  let keyrings =
    Core.Keyring.setup (Util.Rng.split rng) ~n ~phases:(n * cfg.max_phases) ()
  in
  let elections =
    Array.init n (fun i ->
        let node = Net.Node.create engine radio ~id:i ~rng:(Util.Rng.split rng) in
        Core.Election.create node cfg ~keyring:keyrings.(i)
          ~alive:(fun c -> alive_matrix i c) ())
  in
  let settled = ref 0 in
  Array.iter
    (fun e -> Core.Election.on_elect e (fun ~leader:_ -> incr settled))
    elections;
  Array.iter Core.Election.start elections;
  Net.Engine.run_while engine (fun () -> Net.Engine.now engine < 30.0 && !settled < n);
  Array.map Core.Election.leader elections

let test_election_unanimous_first () =
  (* everyone believes everyone is alive: candidate 0 wins *)
  let leaders = run_election ~n:4 ~alive_matrix:(fun _ _ -> true) ~seed:90L in
  Array.iter (fun l -> Alcotest.(check (option int)) "leader 0" (Some 0) l) leaders

let test_election_skips_dead_candidates () =
  (* nobody trusts candidates 0 and 1 *)
  let leaders = run_election ~n:4 ~alive_matrix:(fun _ c -> c >= 2) ~seed:91L in
  Array.iter (fun l -> Alcotest.(check (option int)) "leader 2" (Some 2) l) leaders

let test_election_exhausted () =
  let leaders = run_election ~n:4 ~alive_matrix:(fun _ _ -> false) ~seed:92L in
  Array.iter (fun l -> Alcotest.(check (option int)) "no leader" (Some (-1)) l) leaders

let test_election_agreement_under_mixed_views () =
  (* views disagree about candidate 0; whatever the outcome, it is the
     same at every process *)
  let leaders =
    run_election ~n:4 ~alive_matrix:(fun i c -> if c = 0 then i mod 2 = 0 else true) ~seed:93L
  in
  let first = leaders.(0) in
  Alcotest.(check bool) "settled" true (first <> None);
  Array.iter (fun l -> Alcotest.(check (option int)) "same leader" first l) leaders

let suite =
  ( "extensions",
    [
      Alcotest.test_case "ripemd vectors" `Quick test_ripemd_vectors;
      Alcotest.test_case "ripemd million a" `Slow test_ripemd_million_a;
      Alcotest.test_case "ripemd size" `Quick test_ripemd_size;
      Alcotest.test_case "merkle all leaves" `Quick test_merkle_verify_all_leaves;
      Alcotest.test_case "merkle wrong leaf" `Quick test_merkle_rejects_wrong_leaf;
      Alcotest.test_case "merkle order" `Quick test_merkle_root_depends_on_order;
      Alcotest.test_case "merkle path serialization" `Quick test_merkle_path_serialization;
      Alcotest.test_case "merkle size tradeoff" `Quick test_merkle_size_tradeoff;
      Alcotest.test_case "merkle empty" `Quick test_merkle_empty_rejected;
      QCheck_alcotest.to_alcotest qcheck_merkle_random;
      Alcotest.test_case "trace off" `Quick test_trace_off_by_default;
      Alcotest.test_case "trace limit" `Quick test_trace_collects_and_limits;
      Alcotest.test_case "trace protocol run" `Quick test_trace_captures_protocol_run;
      Alcotest.test_case "election first" `Quick test_election_unanimous_first;
      Alcotest.test_case "election skips dead" `Quick test_election_skips_dead_candidates;
      Alcotest.test_case "election exhausted" `Quick test_election_exhausted;
      Alcotest.test_case "election mixed views" `Quick test_election_agreement_under_mixed_views;
    ] )
