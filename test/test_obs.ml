(* Tests for the observability subsystem: the labeled metrics registry,
   the structured Trace2 sink with JSONL round-trips, per-run scoping,
   the offline analyzer, and snapshot determinism across seeded runs. *)

(* every test owns the process-global sinks *)
let fresh () =
  Obs.Metrics.reset ();
  Obs.Trace2.stop ();
  Obs.Trace2.clear ()

(* --- metrics registry ------------------------------------------------------- *)

let test_counter_basics () =
  fresh ();
  Obs.Metrics.incr "a";
  Obs.Metrics.incr "a" ~by:4;
  let snap = Obs.Metrics.snapshot () in
  Alcotest.(check int) "accumulated" 5 (Obs.Metrics.counter_value snap "a");
  Alcotest.(check int) "absent is 0" 0 (Obs.Metrics.counter_value snap "nope")

let test_label_order_irrelevant () =
  fresh ();
  Obs.Metrics.incr "m" ~labels:[ ("x", "1"); ("y", "2") ];
  Obs.Metrics.incr "m" ~labels:[ ("y", "2"); ("x", "1") ];
  let snap = Obs.Metrics.snapshot () in
  Alcotest.(check int) "one series" 1 (List.length snap);
  Alcotest.(check int) "both updates landed" 2
    (Obs.Metrics.counter_value snap "m" ~labels:[ ("y", "2"); ("x", "1") ])

let test_distinct_labels_distinct_series () =
  fresh ();
  Obs.Metrics.incr "tx" ~labels:[ ("class", "bcast") ];
  Obs.Metrics.incr "tx" ~labels:[ ("class", "ack") ] ~by:2;
  let snap = Obs.Metrics.snapshot () in
  Alcotest.(check int) "two series" 2 (List.length snap);
  Alcotest.(check int) "bcast" 1
    (Obs.Metrics.counter_value snap "tx" ~labels:[ ("class", "bcast") ]);
  Alcotest.(check int) "sum across labels" 3 (Obs.Metrics.sum_counters snap "tx")

let test_type_clash_rejected () =
  fresh ();
  Obs.Metrics.incr "series";
  Alcotest.check_raises "gauge on counter"
    (Invalid_argument "Metrics: series is a counter, not a gauge") (fun () ->
      Obs.Metrics.set "series" 1.0)

let test_gauge_add () =
  fresh ();
  Obs.Metrics.add "airtime" 0.25;
  Obs.Metrics.add "airtime" 0.5;
  let snap = Obs.Metrics.snapshot () in
  match Obs.Metrics.find snap "airtime" with
  | Some { value = Obs.Metrics.Gauge g; _ } ->
      Alcotest.(check (float 1e-9)) "accumulated" 0.75 g
  | _ -> Alcotest.fail "expected a gauge"

let test_histogram_binning () =
  fresh ();
  List.iter
    (fun v -> Obs.Metrics.observe "h" ~lo:0.0 ~hi:10.0 ~bins:10 v)
    [ 0.5; 1.5; 1.9; 9.9; -3.0; 42.0 ];
  let snap = Obs.Metrics.snapshot () in
  match Obs.Metrics.find snap "h" with
  | Some { value = Obs.Metrics.Histogram h; _ } ->
      Alcotest.(check int) "total counts all" 6 h.total;
      Alcotest.(check int) "bin 0" 2 h.counts.(0);
      (* -3.0 clamps into bin 0 *)
      Alcotest.(check int) "bin 1" 2 h.counts.(1);
      Alcotest.(check int) "last bin" 2 h.counts.(9)
      (* 42.0 clamps into the last bin *)
  | _ -> Alcotest.fail "expected a histogram"

let test_snapshot_isolation () =
  fresh ();
  Obs.Metrics.incr "a";
  let before = Obs.Metrics.snapshot () in
  Obs.Metrics.incr "a" ~by:10;
  Alcotest.(check int) "snapshot is immutable" 1 (Obs.Metrics.counter_value before "a");
  Obs.Metrics.reset ();
  Alcotest.(check int) "reset drops everything" 0
    (List.length (Obs.Metrics.snapshot ()));
  Alcotest.(check int) "old snapshot survives reset" 1
    (Obs.Metrics.counter_value before "a")

let test_with_run_scoping () =
  fresh ();
  Obs.Metrics.incr "leak" ~by:99;
  let result, snap =
    Obs.Scope.with_run (fun () ->
        Obs.Metrics.incr "inside";
        "done")
  in
  Alcotest.(check string) "result passes through" "done" result;
  Alcotest.(check int) "pre-run counter wiped" 0 (Obs.Metrics.counter_value snap "leak");
  Alcotest.(check int) "in-run counter kept" 1 (Obs.Metrics.counter_value snap "inside")

(* --- JSON codec ------------------------------------------------------------- *)

let test_json_roundtrip () =
  let doc =
    Obs.Json.Obj
      [
        ("i", Obs.Json.Int 42);
        ("f", Obs.Json.Float 2.0);
        ("s", Obs.Json.String "quote\" slash\\ tab\t");
        ("b", Obs.Json.Bool true);
        ("n", Obs.Json.Null);
        ("l", Obs.Json.List [ Obs.Json.Int (-1); Obs.Json.Float 0.125 ]);
      ]
  in
  match Obs.Json.parse (Obs.Json.to_string doc) with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
      Alcotest.(check bool) "structurally equal" true (parsed = doc);
      (* the int/float distinction survives the round-trip *)
      Alcotest.(check bool) "2.0 stays a float" true
        (Obs.Json.member "f" parsed = Some (Obs.Json.Float 2.0))

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed %S" s))
    [ ""; "{"; "[1,]"; "{\"a\" 1}"; "nul"; "\"unterminated" ]

(* --- Trace2 + JSONL --------------------------------------------------------- *)

let test_trace2_event_roundtrip () =
  let e =
    {
      Obs.Trace2.time = 0.012;
      node = 3;
      layer = "radio";
      label = "tx";
      fields =
        [
          ("class", Obs.Trace2.S "bcast");
          ("bytes", Obs.Trace2.I 93);
          ("us", Obs.Trace2.F 676.4);
          ("collision", Obs.Trace2.B false);
        ];
    }
  in
  match Obs.Trace2.parse_line (Obs.Trace2.to_jsonl_line e) with
  | Error msg -> Alcotest.fail msg
  | Ok back -> Alcotest.(check bool) "event round-trips" true (back = e)

let test_trace2_limit_and_dropped () =
  fresh ();
  Obs.Trace2.start ~limit:3 ();
  for i = 1 to 5 do
    Obs.Trace2.emit ~time:(float_of_int i) ~node:0 ~layer:"l" ~label:"e"
      [ ("i", Obs.Trace2.I i) ]
  done;
  Alcotest.(check int) "kept" 3 (List.length (Obs.Trace2.events ()));
  Alcotest.(check int) "dropped" 2 (Obs.Trace2.dropped ());
  Obs.Trace2.stop ();
  Obs.Trace2.clear ()

let test_trace2_file_roundtrip () =
  fresh ();
  Obs.Trace2.start ();
  Obs.Trace2.emit ~time:0.5 ~node:(-1) ~layer:"run" ~label:"meta"
    [ ("n", Obs.Trace2.I 8); ("load", Obs.Trace2.S "fail-stop") ];
  Obs.Trace2.emit ~time:1.0 ~node:2 ~layer:"mac" ~label:"retry"
    [ ("attempt", Obs.Trace2.I 2) ];
  let file = Filename.temp_file "test_obs" ".jsonl" in
  let written = Obs.Trace2.export_file file in
  let original = Obs.Trace2.events () in
  Obs.Trace2.stop ();
  Obs.Trace2.clear ();
  (match Obs.Trace2.load_file file with
  | Error msg -> Alcotest.fail msg
  | Ok (events, skipped) ->
      Alcotest.(check int) "written count" 2 written;
      Alcotest.(check int) "no skipped lines" 0 skipped;
      Alcotest.(check bool) "events round-trip" true (events = original));
  Sys.remove file

let test_render_trailer () =
  fresh ();
  Net.Trace.start ~limit:4 ();
  for i = 1 to 6 do
    Net.Trace.emit ~time:(float_of_int i) ~node:i ~layer:"test" ~label:"ev" "x"
  done;
  let out = Net.Trace.render ~max_events:2 () in
  Alcotest.(check bool) "trailer shows hidden and dropped" true
    (let lines = String.split_on_char '\n' out in
     List.exists (fun l -> l = "(+2 more, 2 dropped)") lines);
  Net.Trace.stop ();
  Net.Trace.clear ()

(* --- end-to-end: instrumented run ------------------------------------------ *)

let run_once seed =
  Harness.Runner.run ~protocol:Harness.Runner.Turquois ~n:4
    ~dist:Harness.Runner.Divergent ~load:Net.Fault.Failure_free ~seed ()

let test_run_metrics_populated () =
  let r = run_once 7L in
  List.iter
    (fun metric ->
      Alcotest.(check bool) (metric ^ " > 0") true
        (Obs.Metrics.sum_counters r.metrics metric > 0))
    [ "radio.tx"; "mac.tx"; "validation.accepted"; "proto.broadcasts" ]

let test_run_metrics_deterministic () =
  let a = run_once 11L and b = run_once 11L and c = run_once 12L in
  Alcotest.(check bool) "same seed, same snapshot" true (a.metrics = b.metrics);
  Alcotest.(check bool) "different seed differs somewhere" true (c.metrics <> a.metrics)

let test_runs_do_not_leak () =
  fresh ();
  Obs.Metrics.incr "radio.tx" ~by:1_000_000 ~labels:[ ("class", "bcast") ];
  let r = run_once 3L in
  Alcotest.(check bool) "pre-existing counter was reset" true
    (Obs.Metrics.sum_counters r.metrics "radio.tx" < 1_000_000)

let test_analyze_reports_sigma () =
  fresh ();
  Net.Trace.start ();
  let r =
    Harness.Runner.run ~protocol:Harness.Runner.Turquois ~n:8
      ~dist:Harness.Runner.Divergent ~load:Net.Fault.Fail_stop ~seed:42L ()
  in
  let events = Obs.Trace2.events () in
  Net.Trace.stop ();
  Net.Trace.clear ();
  Alcotest.(check bool) "run decided" false r.timed_out;
  let report = Obs.Analyze.analyze events in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions sigma" true (contains "sigma" report);
  Alcotest.(check bool) "found the meta event" true (contains "fail-stop" report);
  Alcotest.(check bool) "per-phase timeline present" true (contains "timeline" report)

let test_analyze_sigma_formula () =
  (* n=8 k=6 t=0: ceil(8/2)*(8-6) + 6 - 2 = 12, and it must match Proto *)
  Alcotest.(check int) "analyzer sigma" 12 (Obs.Analyze.sigma ~n:8 ~k:6 ~t:0);
  let cfg = Core.Proto.default_config ~n:8 in
  Alcotest.(check int) "matches Proto.sigma" (Core.Proto.sigma cfg ~t:0)
    (Obs.Analyze.sigma ~n:8 ~k:cfg.Core.Proto.k ~t:0)

let suite =
  ( "obs",
    [
      Alcotest.test_case "counter basics" `Quick test_counter_basics;
      Alcotest.test_case "label order irrelevant" `Quick test_label_order_irrelevant;
      Alcotest.test_case "distinct labels distinct series" `Quick
        test_distinct_labels_distinct_series;
      Alcotest.test_case "type clash rejected" `Quick test_type_clash_rejected;
      Alcotest.test_case "gauge add" `Quick test_gauge_add;
      Alcotest.test_case "histogram binning" `Quick test_histogram_binning;
      Alcotest.test_case "snapshot isolation" `Quick test_snapshot_isolation;
      Alcotest.test_case "with_run scoping" `Quick test_with_run_scoping;
      Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
      Alcotest.test_case "json parse errors" `Quick test_json_parse_errors;
      Alcotest.test_case "trace2 event roundtrip" `Quick test_trace2_event_roundtrip;
      Alcotest.test_case "trace2 limit and dropped" `Quick test_trace2_limit_and_dropped;
      Alcotest.test_case "trace2 file roundtrip" `Quick test_trace2_file_roundtrip;
      Alcotest.test_case "render trailer" `Quick test_render_trailer;
      Alcotest.test_case "run metrics populated" `Quick test_run_metrics_populated;
      Alcotest.test_case "run metrics deterministic" `Quick test_run_metrics_deterministic;
      Alcotest.test_case "runs do not leak" `Quick test_runs_do_not_leak;
      Alcotest.test_case "analyze reports sigma" `Quick test_analyze_reports_sigma;
      Alcotest.test_case "analyze sigma formula" `Quick test_analyze_sigma_formula;
    ] )
