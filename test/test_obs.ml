(* Tests for the observability subsystem: the labeled metrics registry,
   the structured Trace2 sink with JSONL round-trips, per-run scoping,
   the offline analyzer, and snapshot determinism across seeded runs. *)

(* every test owns the process-global sinks *)
let fresh () =
  Obs.Metrics.reset ();
  Obs.Trace2.stop ();
  Obs.Trace2.clear ()

(* --- metrics registry ------------------------------------------------------- *)

let test_counter_basics () =
  fresh ();
  Obs.Metrics.incr "a";
  Obs.Metrics.incr "a" ~by:4;
  let snap = Obs.Metrics.snapshot () in
  Alcotest.(check int) "accumulated" 5 (Obs.Metrics.counter_value snap "a");
  Alcotest.(check int) "absent is 0" 0 (Obs.Metrics.counter_value snap "nope")

let test_label_order_irrelevant () =
  fresh ();
  Obs.Metrics.incr "m" ~labels:[ ("x", "1"); ("y", "2") ];
  Obs.Metrics.incr "m" ~labels:[ ("y", "2"); ("x", "1") ];
  let snap = Obs.Metrics.snapshot () in
  Alcotest.(check int) "one series" 1 (List.length snap);
  Alcotest.(check int) "both updates landed" 2
    (Obs.Metrics.counter_value snap "m" ~labels:[ ("y", "2"); ("x", "1") ])

let test_distinct_labels_distinct_series () =
  fresh ();
  Obs.Metrics.incr "tx" ~labels:[ ("class", "bcast") ];
  Obs.Metrics.incr "tx" ~labels:[ ("class", "ack") ] ~by:2;
  let snap = Obs.Metrics.snapshot () in
  Alcotest.(check int) "two series" 2 (List.length snap);
  Alcotest.(check int) "bcast" 1
    (Obs.Metrics.counter_value snap "tx" ~labels:[ ("class", "bcast") ]);
  Alcotest.(check int) "sum across labels" 3 (Obs.Metrics.sum_counters snap "tx")

let test_type_clash_rejected () =
  fresh ();
  Obs.Metrics.incr "series";
  Alcotest.check_raises "gauge on counter"
    (Invalid_argument "Metrics: series is a counter, not a gauge") (fun () ->
      Obs.Metrics.set "series" 1.0)

let test_gauge_add () =
  fresh ();
  Obs.Metrics.add "airtime" 0.25;
  Obs.Metrics.add "airtime" 0.5;
  let snap = Obs.Metrics.snapshot () in
  match Obs.Metrics.find snap "airtime" with
  | Some { value = Obs.Metrics.Gauge g; _ } ->
      Alcotest.(check (float 1e-9)) "accumulated" 0.75 g
  | _ -> Alcotest.fail "expected a gauge"

let test_histogram_binning () =
  fresh ();
  List.iter
    (fun v -> Obs.Metrics.observe "h" ~lo:0.0 ~hi:10.0 ~bins:10 v)
    [ 0.5; 1.5; 1.9; 9.9; -3.0; 42.0 ];
  let snap = Obs.Metrics.snapshot () in
  match Obs.Metrics.find snap "h" with
  | Some { value = Obs.Metrics.Histogram h; _ } ->
      Alcotest.(check int) "total counts all" 6 h.total;
      Alcotest.(check int) "bin 0" 2 h.counts.(0);
      (* -3.0 clamps into bin 0 *)
      Alcotest.(check int) "bin 1" 2 h.counts.(1);
      Alcotest.(check int) "last bin" 2 h.counts.(9)
      (* 42.0 clamps into the last bin *)
  | _ -> Alcotest.fail "expected a histogram"

let test_snapshot_isolation () =
  fresh ();
  Obs.Metrics.incr "a";
  let before = Obs.Metrics.snapshot () in
  Obs.Metrics.incr "a" ~by:10;
  Alcotest.(check int) "snapshot is immutable" 1 (Obs.Metrics.counter_value before "a");
  Obs.Metrics.reset ();
  Alcotest.(check int) "reset drops everything" 0
    (List.length (Obs.Metrics.snapshot ()));
  Alcotest.(check int) "old snapshot survives reset" 1
    (Obs.Metrics.counter_value before "a")

let test_with_run_scoping () =
  fresh ();
  Obs.Metrics.incr "leak" ~by:99;
  let result, snap =
    Obs.Scope.with_run (fun () ->
        Obs.Metrics.incr "inside";
        "done")
  in
  Alcotest.(check string) "result passes through" "done" result;
  Alcotest.(check int) "pre-run counter wiped" 0 (Obs.Metrics.counter_value snap "leak");
  Alcotest.(check int) "in-run counter kept" 1 (Obs.Metrics.counter_value snap "inside")

(* --- JSON codec ------------------------------------------------------------- *)

let test_json_roundtrip () =
  let doc =
    Obs.Json.Obj
      [
        ("i", Obs.Json.Int 42);
        ("f", Obs.Json.Float 2.0);
        ("s", Obs.Json.String "quote\" slash\\ tab\t");
        ("b", Obs.Json.Bool true);
        ("n", Obs.Json.Null);
        ("l", Obs.Json.List [ Obs.Json.Int (-1); Obs.Json.Float 0.125 ]);
      ]
  in
  match Obs.Json.parse (Obs.Json.to_string doc) with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
      Alcotest.(check bool) "structurally equal" true (parsed = doc);
      (* the int/float distinction survives the round-trip *)
      Alcotest.(check bool) "2.0 stays a float" true
        (Obs.Json.member "f" parsed = Some (Obs.Json.Float 2.0))

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed %S" s))
    [ ""; "{"; "[1,]"; "{\"a\" 1}"; "nul"; "\"unterminated" ]

(* --- Trace2 + JSONL --------------------------------------------------------- *)

let test_trace2_event_roundtrip () =
  let e =
    {
      Obs.Trace2.time = 0.012;
      node = 3;
      layer = "radio";
      label = "tx";
      fields =
        [
          ("class", Obs.Trace2.S "bcast");
          ("bytes", Obs.Trace2.I 93);
          ("us", Obs.Trace2.F 676.4);
          ("collision", Obs.Trace2.B false);
        ];
    }
  in
  match Obs.Trace2.parse_line (Obs.Trace2.to_jsonl_line e) with
  | Error msg -> Alcotest.fail msg
  | Ok back -> Alcotest.(check bool) "event round-trips" true (back = e)

let test_trace2_limit_and_dropped () =
  fresh ();
  Obs.Trace2.start ~limit:3 ();
  for i = 1 to 5 do
    Obs.Trace2.emit ~time:(float_of_int i) ~node:0 ~layer:"l" ~label:"e"
      [ ("i", Obs.Trace2.I i) ]
  done;
  Alcotest.(check int) "kept" 3 (List.length (Obs.Trace2.events ()));
  Alcotest.(check int) "dropped" 2 (Obs.Trace2.dropped ());
  Obs.Trace2.stop ();
  Obs.Trace2.clear ()

let test_trace2_file_roundtrip () =
  fresh ();
  Obs.Trace2.start ();
  Obs.Trace2.emit ~time:0.5 ~node:(-1) ~layer:"run" ~label:"meta"
    [ ("n", Obs.Trace2.I 8); ("load", Obs.Trace2.S "fail-stop") ];
  Obs.Trace2.emit ~time:1.0 ~node:2 ~layer:"mac" ~label:"retry"
    [ ("attempt", Obs.Trace2.I 2) ];
  let file = Filename.temp_file "test_obs" ".jsonl" in
  let written = Obs.Trace2.export_file file in
  let original = Obs.Trace2.events () in
  Obs.Trace2.stop ();
  Obs.Trace2.clear ();
  (match Obs.Trace2.load_file file with
  | Error msg -> Alcotest.fail msg
  | Ok (events, skipped) ->
      Alcotest.(check int) "written count" 2 written;
      Alcotest.(check int) "no skipped lines" 0 skipped;
      Alcotest.(check bool) "events round-trip" true (events = original));
  Sys.remove file

let test_render_trailer () =
  fresh ();
  Net.Trace.start ~limit:4 ();
  for i = 1 to 6 do
    Net.Trace.emit ~time:(float_of_int i) ~node:i ~layer:"test" ~label:"ev" "x"
  done;
  let out = Net.Trace.render ~max_events:2 () in
  Alcotest.(check bool) "trailer shows hidden and dropped" true
    (let lines = String.split_on_char '\n' out in
     List.exists (fun l -> l = "(+2 more, 2 dropped)") lines);
  Net.Trace.stop ();
  Net.Trace.clear ()

(* --- end-to-end: instrumented run ------------------------------------------ *)

let run_once seed =
  Harness.Runner.run ~protocol:Harness.Runner.Turquois ~n:4
    ~dist:Harness.Runner.Divergent ~load:Net.Fault.Failure_free ~seed ()

let test_run_metrics_populated () =
  let r = run_once 7L in
  List.iter
    (fun metric ->
      Alcotest.(check bool) (metric ^ " > 0") true
        (Obs.Metrics.sum_counters r.metrics metric > 0))
    [ "radio.tx"; "mac.tx"; "validation.accepted"; "proto.broadcasts" ]

let test_run_metrics_deterministic () =
  let a = run_once 11L and b = run_once 11L and c = run_once 12L in
  Alcotest.(check bool) "same seed, same snapshot" true (a.metrics = b.metrics);
  Alcotest.(check bool) "different seed differs somewhere" true (c.metrics <> a.metrics)

let test_runs_do_not_leak () =
  fresh ();
  Obs.Metrics.incr "radio.tx" ~by:1_000_000 ~labels:[ ("class", "bcast") ];
  let r = run_once 3L in
  Alcotest.(check bool) "pre-existing counter was reset" true
    (Obs.Metrics.sum_counters r.metrics "radio.tx" < 1_000_000)

let test_analyze_reports_sigma () =
  fresh ();
  Net.Trace.start ();
  let r =
    Harness.Runner.run ~protocol:Harness.Runner.Turquois ~n:8
      ~dist:Harness.Runner.Divergent ~load:Net.Fault.Fail_stop ~seed:42L ()
  in
  let events = Obs.Trace2.events () in
  Net.Trace.stop ();
  Net.Trace.clear ();
  Alcotest.(check bool) "run decided" false r.timed_out;
  let report = Obs.Analyze.analyze events in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions sigma" true (contains "sigma" report);
  Alcotest.(check bool) "found the meta event" true (contains "fail-stop" report);
  Alcotest.(check bool) "per-phase timeline present" true (contains "timeline" report)

(* --- unlabeled metrics fast path -------------------------------------------- *)

let test_unlabeled_fast_path () =
  fresh ();
  Obs.Metrics.incr "fast";
  Obs.Metrics.incr "fast" ~by:2;
  Obs.Metrics.incr "fast" ~labels:[ ("class", "x") ];
  let snap = Obs.Metrics.snapshot () in
  Alcotest.(check int) "unlabeled series" 3 (Obs.Metrics.counter_value snap "fast");
  Alcotest.(check int) "labeled series stays separate" 1
    (Obs.Metrics.counter_value snap "fast" ~labels:[ ("class", "x") ]);
  Alcotest.(check int) "sum sees both" 4 (Obs.Metrics.sum_counters snap "fast");
  Obs.Metrics.reset ();
  Alcotest.(check int) "reset clears the unlabeled table too" 0
    (List.length (Obs.Metrics.snapshot ()))

(* --- schema versioning ------------------------------------------------------- *)

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_schema_header_roundtrip () =
  fresh ();
  Obs.Trace2.start ();
  Obs.Trace2.emit ~time:1.0 ~node:0 ~layer:"mac" ~label:"retry" [];
  let file = Filename.temp_file "test_obs_schema" ".jsonl" in
  ignore (Obs.Trace2.export_file file);
  Obs.Trace2.stop ();
  Obs.Trace2.clear ();
  (* the header is on disk... *)
  let ic = open_in file in
  let first = input_line ic in
  close_in ic;
  Alcotest.(check bool) "header is the first line" true
    (contains "\"schema\"" first && contains "\"version\":2" first);
  (* ...but filtered from the loaded events *)
  (match Obs.Trace2.load_file file with
  | Error e -> Alcotest.fail e
  | Ok (events, _) ->
      Alcotest.(check int) "header filtered out" 1 (List.length events));
  Sys.remove file

let test_schema_version_mismatch_rejected () =
  let header =
    Obs.Trace2.to_jsonl_line
      {
        Obs.Trace2.time = 0.0;
        node = -1;
        layer = "trace";
        label = "schema";
        fields = [ ("version", Obs.Trace2.I 999) ];
      }
  in
  let file = Filename.temp_file "test_obs_badschema" ".jsonl" in
  let oc = open_out file in
  output_string oc (header ^ "\n");
  output_string oc
    "{\"t\":1.0,\"node\":0,\"layer\":\"mac\",\"label\":\"retry\",\"f\":{}}\n";
  close_out oc;
  (match Obs.Trace2.load_file file with
  | Ok _ -> Alcotest.fail "accepted a trace with a mismatched schema version"
  | Error msg ->
      Alcotest.(check bool) "error names both versions" true
        (contains "999" msg && contains "version 2" msg));
  Sys.remove file

(* --- causal DAG -------------------------------------------------------------- *)

let ev time node layer label fields =
  { Obs.Trace2.time; node; layer; label; fields }

let mid m = ("mid", Obs.Trace2.S m)

let test_causal_dag_and_chain () =
  (* p0 broadcasts m0.1.0; p1 hears it and broadcasts m1.2.0; p2 hears
     that and decides. p3 never receives m0.1.0 (omission). The decision
     chain of p2 must contain both messages; the one of p0 is empty. *)
  let events =
    [
      ev 0.010 0 "turquois" "broadcast" [ ("phase", Obs.Trace2.I 1); mid "m0.1.0" ];
      ev 0.012 0 "radio" "deliver" [ ("rx", Obs.Trace2.I 1); mid "m0.1.0" ];
      ev 0.013 0 "radio" "omission" [ ("rx", Obs.Trace2.I 3); mid "m0.1.0" ];
      ev 0.020 1 "turquois" "broadcast" [ ("phase", Obs.Trace2.I 2); mid "m1.2.0" ];
      ev 0.022 1 "radio" "deliver" [ ("rx", Obs.Trace2.I 2); mid "m1.2.0" ];
      ev 0.030 2 "turquois" "decide" [ ("value", Obs.Trace2.I 1) ];
    ]
  in
  let dag = Obs.Causal.build events in
  Alcotest.(check int) "two sends" 2 (Hashtbl.length dag.Obs.Causal.sends);
  Alcotest.(check int) "one drop" 1 (List.length dag.Obs.Causal.drops);
  let chain = Obs.Causal.decision_chain dag ~node:2 ~time:0.030 in
  Alcotest.(check (list string))
    "chain walks justifications transitively, send order"
    [ "m0.1.0"; "m1.2.0" ] chain;
  Alcotest.(check (list string)) "sender with no inputs has an empty chain" []
    (Obs.Causal.decision_chain dag ~node:0 ~time:0.030);
  Alcotest.(check bool) "describe_send names sender and phase" true
    (contains "(p0, phase 1," (Obs.Causal.describe_send dag "m0.1.0"))

let test_causal_attribution_cover () =
  (* lagging = {1;3}: a jammed send covers both at once and must win
     over the single-receiver omission; an out-of-window drop and a
     non-lagging receiver's drop must not appear *)
  let events =
    [
      ev 0.010 0 "turquois" "broadcast" [ ("phase", Obs.Trace2.I 3); mid "m0.3.0" ];
      ev 0.011 2 "turquois" "broadcast" [ ("phase", Obs.Trace2.I 3); mid "m2.3.0" ];
      ev 0.012 0 "radio" "jammed" [ mid "m0.3.0" ];
      ev 0.013 2 "radio" "omission" [ ("rx", Obs.Trace2.I 1); mid "m2.3.0" ];
      ev 0.014 2 "radio" "omission" [ ("rx", Obs.Trace2.I 2); mid "m2.3.0" ];
      ev 0.050 0 "radio" "omission" [ ("rx", Obs.Trace2.I 3); mid "m0.3.0" ];
    ]
  in
  let dag = Obs.Causal.build events in
  let chosen, uncovered =
    Obs.Causal.attribute dag ~lagging:[ 3; 1 ] ~from:0.0 ~until:0.020
  in
  Alcotest.(check (list int)) "every lagging receiver explained" [] uncovered;
  (match chosen with
  | (m, kind, covered) :: _ ->
      Alcotest.(check string) "widest cover first" "m0.3.0" m;
      Alcotest.(check string) "as a jam" "jammed" kind;
      Alcotest.(check (list int)) "covering both" [ 1; 3 ] covered
  | [] -> Alcotest.fail "expected a cover");
  let none, still =
    Obs.Causal.attribute dag ~lagging:[ 1; 3 ] ~from:0.030 ~until:0.040
  in
  Alcotest.(check bool) "empty window explains nothing" true
    (none = [] && still = [ 1; 3 ])

(* --- analyzer edge cases ----------------------------------------------------- *)

let well_formed name events =
  List.iter
    (fun (view, report) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s is well-formed" name view)
        true
        (String.length report > 0))
    [
      ("analyze", Obs.Analyze.analyze events);
      ("causal", Obs.Analyze.causal events);
      ("timeline", Obs.Timeline.render events);
    ]

let test_analyze_edge_cases () =
  (* empty trace *)
  well_formed "empty" [];
  (* fault-only trace: crashes, no protocol progress at all *)
  well_formed "fault-only"
    [
      ev 0.001 1 "fault" "crash" [];
      ev 0.050 1 "fault" "recover" [];
      ev 0.060 2 "fault" "crash" [];
    ];
  (* phases but zero decisions *)
  well_formed "no decisions"
    [
      ev 0.0 (-1) "run" "meta"
        [ ("n", Obs.Trace2.I 4); ("load", Obs.Trace2.S "fail-stop") ];
      ev 0.010 0 "turquois" "phase" [ ("phase", Obs.Trace2.I 1) ];
      ev 0.020 1 "turquois" "phase" [ ("phase", Obs.Trace2.I 1) ];
      ev 0.040 0 "turquois" "phase" [ ("phase", Obs.Trace2.I 2) ];
    ]

let test_timeline_render_states () =
  let out =
    Obs.Timeline.render
      [
        ev 0.000 0 "turquois" "phase" [ ("phase", Obs.Trace2.I 1) ];
        ev 0.050 0 "turquois" "phase" [ ("phase", Obs.Trace2.I 2) ];
        ev 0.090 0 "turquois" "decide" [ ("value", Obs.Trace2.I 1) ];
        ev 0.001 1 "fault" "crash" [];
        ev 0.100 1 "fault" "recover" [];
      ]
  in
  Alcotest.(check bool) "row per node" true
    (contains "p0" out && contains "p1" out);
  Alcotest.(check bool) "phase digits and decide marker" true
    (contains "1" out && contains "2" out && contains "D" out);
  Alcotest.(check bool) "crash marker" true (contains "X" out);
  Alcotest.(check bool) "empty trace renders a notice" true
    (contains "no events" (Obs.Timeline.render []))

(* --- end-to-end: sigma-edge stall attribution -------------------------------- *)

let test_causal_end_to_end_sigma_edge () =
  fresh ();
  Net.Trace.start ();
  let n = 8 in
  let attach radio =
    let k = n - Net.Fault.max_f n in
    ignore (Net.Fault.sigma_edge radio ~n ~k ~t:0 ())
  in
  let r =
    Harness.Runner.run ~protocol:Harness.Runner.Turquois ~n
      ~dist:Harness.Runner.Divergent ~load:Net.Fault.Failure_free ~attach
      ~seed:42L ()
  in
  let events = Obs.Trace2.events () in
  Net.Trace.stop ();
  Net.Trace.clear ();
  Alcotest.(check bool) "run decided" false r.timed_out;
  let report = Obs.Analyze.causal events in
  Alcotest.(check bool) "sends were tagged" false
    (contains "Causal analysis: 0 tagged sends" report);
  Alcotest.(check bool) "justification chains present" true
    (contains "Decision justification" report);
  (* the sigma-edge adversary drops concrete messages; the stall report
     must name at least one lost mid on a causal path *)
  Alcotest.(check bool) "a dropped message id is named" true
    (contains "lost it to" report || contains "lost in window" report)

let test_analyze_sigma_formula () =
  (* n=8 k=6 t=0: ceil(8/2)*(8-6) + 6 - 2 = 12, and it must match Proto *)
  Alcotest.(check int) "analyzer sigma" 12 (Obs.Analyze.sigma ~n:8 ~k:6 ~t:0);
  let cfg = Core.Proto.default_config ~n:8 in
  Alcotest.(check int) "matches Proto.sigma" (Core.Proto.sigma cfg ~t:0)
    (Obs.Analyze.sigma ~n:8 ~k:cfg.Core.Proto.k ~t:0)

let suite =
  ( "obs",
    [
      Alcotest.test_case "counter basics" `Quick test_counter_basics;
      Alcotest.test_case "label order irrelevant" `Quick test_label_order_irrelevant;
      Alcotest.test_case "distinct labels distinct series" `Quick
        test_distinct_labels_distinct_series;
      Alcotest.test_case "type clash rejected" `Quick test_type_clash_rejected;
      Alcotest.test_case "gauge add" `Quick test_gauge_add;
      Alcotest.test_case "histogram binning" `Quick test_histogram_binning;
      Alcotest.test_case "snapshot isolation" `Quick test_snapshot_isolation;
      Alcotest.test_case "with_run scoping" `Quick test_with_run_scoping;
      Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
      Alcotest.test_case "json parse errors" `Quick test_json_parse_errors;
      Alcotest.test_case "trace2 event roundtrip" `Quick test_trace2_event_roundtrip;
      Alcotest.test_case "trace2 limit and dropped" `Quick test_trace2_limit_and_dropped;
      Alcotest.test_case "trace2 file roundtrip" `Quick test_trace2_file_roundtrip;
      Alcotest.test_case "render trailer" `Quick test_render_trailer;
      Alcotest.test_case "run metrics populated" `Quick test_run_metrics_populated;
      Alcotest.test_case "run metrics deterministic" `Quick test_run_metrics_deterministic;
      Alcotest.test_case "runs do not leak" `Quick test_runs_do_not_leak;
      Alcotest.test_case "analyze reports sigma" `Quick test_analyze_reports_sigma;
      Alcotest.test_case "analyze sigma formula" `Quick test_analyze_sigma_formula;
      Alcotest.test_case "unlabeled metrics fast path" `Quick test_unlabeled_fast_path;
      Alcotest.test_case "schema header roundtrip" `Quick test_schema_header_roundtrip;
      Alcotest.test_case "schema version mismatch rejected" `Quick
        test_schema_version_mismatch_rejected;
      Alcotest.test_case "causal dag and chain" `Quick test_causal_dag_and_chain;
      Alcotest.test_case "causal attribution cover" `Quick test_causal_attribution_cover;
      Alcotest.test_case "analyze edge cases" `Quick test_analyze_edge_cases;
      Alcotest.test_case "timeline render states" `Quick test_timeline_render_states;
      Alcotest.test_case "causal end-to-end under sigma-edge" `Quick
        test_causal_end_to_end_sigma_edge;
    ] )
