(* Tests for the crypto layer: SHA-256 (FIPS vectors), HMAC (RFC 4231),
   RSA, one-time signatures, Shamir, the threshold coin, multisig. *)

let hex = Util.Codec.hex

(* --- SHA-256 ---------------------------------------------------------------- *)

let sha_vector (input, expected) () =
  Alcotest.(check string) "digest" expected (Crypto.Sha256.hex_digest_string input)

let test_sha_empty =
  sha_vector ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855")

let test_sha_abc =
  sha_vector ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad")

let test_sha_448bits =
  sha_vector
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" )

let test_sha_896bits =
  sha_vector
    ( "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1" )

let test_sha_million_a () =
  let input = String.make 1_000_000 'a' in
  Alcotest.(check string) "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Crypto.Sha256.hex_digest_string input)

let test_sha_incremental_equals_oneshot () =
  let data = Bytes.of_string (String.init 1000 (fun i -> Char.chr (i mod 256))) in
  let ctx = Crypto.Sha256.init () in
  (* feed in awkward chunk sizes crossing block boundaries *)
  let pos = ref 0 in
  List.iter
    (fun chunk ->
      let take = min chunk (Bytes.length data - !pos) in
      Crypto.Sha256.update ctx (Bytes.sub data !pos take);
      pos := !pos + take)
    [ 1; 3; 60; 64; 65; 127; 128; 300; 1000 ];
  Alcotest.(check string) "incremental" (hex (Crypto.Sha256.digest data))
    (hex (Crypto.Sha256.finalize ctx))

let test_sha_digest_concat () =
  let a = Bytes.of_string "foo" and b = Bytes.of_string "bar" in
  Alcotest.(check string) "concat"
    (hex (Crypto.Sha256.digest_string "foobar"))
    (hex (Crypto.Sha256.digest_concat [ a; b ]))

let test_sha_ctx_reuse_rejected () =
  let ctx = Crypto.Sha256.init () in
  ignore (Crypto.Sha256.finalize ctx);
  Alcotest.check_raises "reuse" (Invalid_argument "Sha256.finalize: context already finalized")
    (fun () -> ignore (Crypto.Sha256.finalize ctx))

let qcheck_sha_incremental =
  QCheck.Test.make ~name:"sha256 split point irrelevant" ~count:100
    QCheck.(pair string small_nat)
    (fun (s, cut) ->
      let b = Bytes.of_string s in
      let cut = if Bytes.length b = 0 then 0 else cut mod (Bytes.length b + 1) in
      let ctx = Crypto.Sha256.init () in
      Crypto.Sha256.update ctx (Bytes.sub b 0 cut);
      Crypto.Sha256.update ctx (Bytes.sub b cut (Bytes.length b - cut));
      Bytes.equal (Crypto.Sha256.finalize ctx) (Crypto.Sha256.digest b))

(* --- HMAC (RFC 4231) -------------------------------------------------------- *)

let test_hmac_rfc4231_case1 () =
  let key = Bytes.make 20 '\x0b' in
  let tag = Crypto.Hmac.mac_string ~key "Hi There" in
  Alcotest.(check string) "case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7" (hex tag)

let test_hmac_rfc4231_case2 () =
  let tag = Crypto.Hmac.mac_string ~key:(Bytes.of_string "Jefe") "what do ya want for nothing?" in
  Alcotest.(check string) "case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843" (hex tag)

let test_hmac_rfc4231_case3 () =
  let key = Bytes.make 20 '\xaa' in
  let tag = Crypto.Hmac.mac ~key (Bytes.make 50 '\xdd') in
  Alcotest.(check string) "case 3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe" (hex tag)

let test_hmac_long_key () =
  (* RFC 4231 case 6: 131-byte key must be hashed first *)
  let key = Bytes.make 131 '\xaa' in
  let tag = Crypto.Hmac.mac_string ~key "Test Using Larger Than Block-Size Key - Hash Key First" in
  Alcotest.(check string) "case 6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54" (hex tag)

let test_hmac_verify () =
  let key = Bytes.of_string "secret" in
  let data = Bytes.of_string "payload" in
  let tag = Crypto.Hmac.mac ~key data in
  Alcotest.(check bool) "accepts" true (Crypto.Hmac.verify ~key data ~tag);
  let bad = Bytes.copy tag in
  Bytes.set bad 0 (Char.chr (Char.code (Bytes.get bad 0) lxor 1));
  Alcotest.(check bool) "rejects tampered" false (Crypto.Hmac.verify ~key data ~tag:bad);
  Alcotest.(check bool) "rejects short" false
    (Crypto.Hmac.verify ~key data ~tag:(Bytes.sub tag 0 16))

(* --- RSA --------------------------------------------------------------------- *)

let rsa_keys = lazy (Crypto.Rsa.generate (Util.Rng.create ~seed:101L) ~bits:512)

let test_rsa_sign_verify () =
  let kp = Lazy.force rsa_keys in
  let msg = Bytes.of_string "the quick brown fox" in
  let signature = Crypto.Rsa.sign kp.sec msg in
  Alcotest.(check int) "signature length" (Crypto.Rsa.signature_size kp.pub)
    (Bytes.length signature);
  Alcotest.(check bool) "verifies" true (Crypto.Rsa.verify kp.pub msg ~signature)

let test_rsa_rejects_wrong_message () =
  let kp = Lazy.force rsa_keys in
  let signature = Crypto.Rsa.sign kp.sec (Bytes.of_string "msg-a") in
  Alcotest.(check bool) "rejects" false
    (Crypto.Rsa.verify kp.pub (Bytes.of_string "msg-b") ~signature)

let test_rsa_rejects_tampered_signature () =
  let kp = Lazy.force rsa_keys in
  let msg = Bytes.of_string "msg" in
  let signature = Crypto.Rsa.sign kp.sec msg in
  Bytes.set signature 10
    (Char.chr (Char.code (Bytes.get signature 10) lxor 0x40));
  Alcotest.(check bool) "rejects" false (Crypto.Rsa.verify kp.pub msg ~signature)

let test_rsa_rejects_wrong_key () =
  let kp = Lazy.force rsa_keys in
  let other = Crypto.Rsa.generate (Util.Rng.create ~seed:102L) ~bits:512 in
  let msg = Bytes.of_string "msg" in
  let signature = Crypto.Rsa.sign kp.sec msg in
  Alcotest.(check bool) "rejects" false (Crypto.Rsa.verify other.pub msg ~signature)

let test_rsa_rejects_garbage () =
  let kp = Lazy.force rsa_keys in
  let msg = Bytes.of_string "msg" in
  Alcotest.(check bool) "wrong length" false
    (Crypto.Rsa.verify kp.pub msg ~signature:(Bytes.make 10 'x'));
  Alcotest.(check bool) "all ff (>= n)" false
    (Crypto.Rsa.verify kp.pub msg
       ~signature:(Bytes.make (Crypto.Rsa.signature_size kp.pub) '\xff'))

let test_rsa_public_serialization () =
  let kp = Lazy.force rsa_keys in
  let back = Crypto.Rsa.public_of_bytes (Crypto.Rsa.public_to_bytes kp.pub) in
  let msg = Bytes.of_string "serialized key" in
  let signature = Crypto.Rsa.sign kp.sec msg in
  Alcotest.(check bool) "verify with deserialized key" true
    (Crypto.Rsa.verify back msg ~signature)

let test_rsa_min_bits () =
  Alcotest.check_raises "too small"
    (Invalid_argument "Rsa.generate: modulus too small to sign a SHA-256 digest")
    (fun () -> ignore (Crypto.Rsa.generate (Util.Rng.create ~seed:1L) ~bits:256))

(* --- one-time signatures ------------------------------------------------------ *)

let ots = lazy (Crypto.Onetime_sig.generate (Util.Rng.create ~seed:55L) ~owner:2 ~phases:9)

let test_ots_check () =
  let sk, vk = Lazy.force ots in
  List.iter
    (fun slot ->
      let proof = Crypto.Onetime_sig.reveal sk ~phase:4 slot in
      Alcotest.(check bool) "accepts" true
        (Crypto.Onetime_sig.check vk ~phase:4 slot ~proof))
    Crypto.Onetime_sig.[ S_zero; S_one; S_bot; S_rand_zero; S_rand_one ]

let test_ots_rejects_cross_slot () =
  let sk, vk = Lazy.force ots in
  let proof = Crypto.Onetime_sig.reveal sk ~phase:4 Crypto.Onetime_sig.S_zero in
  Alcotest.(check bool) "wrong slot" false
    (Crypto.Onetime_sig.check vk ~phase:4 Crypto.Onetime_sig.S_one ~proof);
  Alcotest.(check bool) "wrong phase" false
    (Crypto.Onetime_sig.check vk ~phase:5 Crypto.Onetime_sig.S_zero ~proof)

let test_ots_rejects_garbage () =
  let _, vk = Lazy.force ots in
  Alcotest.(check bool) "wrong size" false
    (Crypto.Onetime_sig.check vk ~phase:4 Crypto.Onetime_sig.S_zero ~proof:(Bytes.make 5 'a'));
  Alcotest.(check bool) "random proof" false
    (Crypto.Onetime_sig.check vk ~phase:4 Crypto.Onetime_sig.S_zero
       ~proof:(Bytes.make 32 'a'));
  Alcotest.(check bool) "phase out of range" false
    (Crypto.Onetime_sig.check vk ~phase:10 Crypto.Onetime_sig.S_zero
       ~proof:(Bytes.make 32 'a'))

let test_ots_phase_bounds () =
  let sk, _ = Lazy.force ots in
  Alcotest.check_raises "phase 0" (Invalid_argument "Onetime_sig.reveal: phase 0 out of range")
    (fun () -> ignore (Crypto.Onetime_sig.reveal sk ~phase:0 Crypto.Onetime_sig.S_zero));
  Alcotest.check_raises "past horizon"
    (Invalid_argument "Onetime_sig.reveal: phase 10 out of range") (fun () ->
      ignore (Crypto.Onetime_sig.reveal sk ~phase:10 Crypto.Onetime_sig.S_zero))

let test_ots_serialization () =
  let sk, vk = Lazy.force ots in
  let bytes = Crypto.Onetime_sig.verifier_to_bytes vk in
  let back = Crypto.Onetime_sig.verifier_of_bytes bytes in
  Alcotest.(check int) "owner" (Crypto.Onetime_sig.owner vk) (Crypto.Onetime_sig.owner back);
  Alcotest.(check int) "phases" (Crypto.Onetime_sig.phases vk) (Crypto.Onetime_sig.phases back);
  let proof = Crypto.Onetime_sig.reveal sk ~phase:9 Crypto.Onetime_sig.S_bot in
  Alcotest.(check bool) "checks" true
    (Crypto.Onetime_sig.check back ~phase:9 Crypto.Onetime_sig.S_bot ~proof);
  Alcotest.(check bool) "digest stable" true
    (Bytes.equal (Crypto.Onetime_sig.verifier_digest vk) (Crypto.Onetime_sig.verifier_digest back))

let test_ots_slot_indexing () =
  for i = 0 to Crypto.Onetime_sig.slot_count - 1 do
    Alcotest.(check int) "roundtrip" i
      (Crypto.Onetime_sig.slot_index (Crypto.Onetime_sig.slot_of_index i))
  done;
  Alcotest.check_raises "bad index" (Util.Codec.Malformed "invalid slot index 5") (fun () ->
      ignore (Crypto.Onetime_sig.slot_of_index 5))

(* --- Shamir -------------------------------------------------------------------- *)

let small_q = Znum.of_string "2147483647" (* 2^31 - 1, prime *)

let test_shamir_reconstruct () =
  let rng = Util.Rng.create ~seed:60L in
  let secret = Znum.of_int 1234567 in
  let shares = Crypto.Shamir.deal rng ~q:small_q ~secret ~threshold:3 ~n:7 in
  Alcotest.(check int) "n shares" 7 (List.length shares);
  (* any 3 shares reconstruct *)
  let subset = List.filteri (fun i _ -> i = 0 || i = 3 || i = 6) shares in
  Alcotest.(check string) "reconstructed" "1234567"
    (Znum.to_string (Crypto.Shamir.reconstruct ~q:small_q subset));
  let other = List.filteri (fun i _ -> i >= 4) shares in
  Alcotest.(check string) "other subset" "1234567"
    (Znum.to_string (Crypto.Shamir.reconstruct ~q:small_q other))

let test_shamir_insufficient_shares_wrong () =
  let rng = Util.Rng.create ~seed:61L in
  let secret = Znum.of_int 42 in
  let shares = Crypto.Shamir.deal rng ~q:small_q ~secret ~threshold:4 ~n:6 in
  let subset = List.filteri (fun i _ -> i < 3) shares in
  (* with overwhelming probability 3 of 4-threshold shares miss *)
  Alcotest.(check bool) "not the secret" false
    (Znum.equal (Crypto.Shamir.reconstruct ~q:small_q subset) secret)

let test_shamir_threshold_one () =
  let rng = Util.Rng.create ~seed:62L in
  let secret = Znum.of_int 99 in
  let shares = Crypto.Shamir.deal rng ~q:small_q ~secret ~threshold:1 ~n:3 in
  List.iter
    (fun s ->
      Alcotest.(check bool) "each share is the secret" true
        (Znum.equal (Crypto.Shamir.reconstruct ~q:small_q [ s ]) secret))
    shares

let test_shamir_lagrange_sums_to_one () =
  (* sum of lambda_i(0) equals interpolation of the constant 1 *)
  let lambdas = Crypto.Shamir.lagrange_at_zero ~q:small_q [ 1; 2; 5 ] in
  let sum =
    List.fold_left (fun acc (_, l) -> Znum.emod (Znum.add acc l) small_q) Znum.zero lambdas
  in
  Alcotest.(check string) "sum is 1" "1" (Znum.to_string sum)

let test_shamir_rejects () =
  let rng = Util.Rng.create ~seed:63L in
  Alcotest.check_raises "threshold > n"
    (Invalid_argument "Shamir.deal: need 1 <= threshold <= n") (fun () ->
      ignore (Crypto.Shamir.deal rng ~q:small_q ~secret:Znum.one ~threshold:5 ~n:3));
  Alcotest.check_raises "duplicate indices"
    (Invalid_argument "Shamir.lagrange_at_zero: duplicate indices") (fun () ->
      ignore (Crypto.Shamir.lagrange_at_zero ~q:small_q [ 1; 1 ]))

(* --- threshold coin -------------------------------------------------------------- *)

let coin_setup =
  lazy (Crypto.Coin.setup (Util.Rng.create ~seed:70L) ~n:7 ~threshold:3 ~pbits:256 ~qbits:96 ())

let test_coin_share_verify () =
  let params, keys = Lazy.force coin_setup in
  Array.iter
    (fun ks ->
      let share = Crypto.Coin.create_share params ks ~name:"r1" in
      Alcotest.(check bool) "valid" true (Crypto.Coin.verify_share params ~name:"r1" share))
    keys

let test_coin_share_rejects_wrong_name () =
  let params, keys = Lazy.force coin_setup in
  let share = Crypto.Coin.create_share params keys.(0) ~name:"r1" in
  Alcotest.(check bool) "wrong name" false
    (Crypto.Coin.verify_share params ~name:"r2" share)

let test_coin_share_rejects_tampered () =
  let params, keys = Lazy.force coin_setup in
  let share = Crypto.Coin.create_share params keys.(0) ~name:"r1" in
  let raw = Crypto.Coin.share_to_bytes share in
  Bytes.set raw (Bytes.length raw - 1)
    (Char.chr (Char.code (Bytes.get raw (Bytes.length raw - 1)) lxor 1));
  let tampered = Crypto.Coin.share_of_bytes raw in
  Alcotest.(check bool) "tampered" false (Crypto.Coin.verify_share params ~name:"r1" tampered)

let test_coin_combine_consistent () =
  let params, keys = Lazy.force coin_setup in
  let shares =
    Array.to_list (Array.map (fun ks -> Crypto.Coin.create_share params ks ~name:"round-5") keys)
  in
  let subset1 = List.filteri (fun i _ -> i < 3) shares in
  let subset2 = List.filteri (fun i _ -> i >= 4) shares in
  match
    ( Crypto.Coin.combine params ~name:"round-5" subset1,
      Crypto.Coin.combine params ~name:"round-5" subset2 )
  with
  | Some b1, Some b2 ->
      Alcotest.(check int) "same coin from disjoint subsets" b1 b2;
      Alcotest.(check bool) "binary" true (b1 = 0 || b1 = 1)
  | _ -> Alcotest.fail "combine failed"

let test_coin_combine_insufficient () =
  let params, keys = Lazy.force coin_setup in
  let share = Crypto.Coin.create_share params keys.(0) ~name:"r9" in
  Alcotest.(check bool) "below threshold" true
    (Crypto.Coin.combine params ~name:"r9" [ share ] = None)

let test_coin_combine_ignores_invalid () =
  let params, keys = Lazy.force coin_setup in
  let good =
    List.map (fun i -> Crypto.Coin.create_share params keys.(i) ~name:"r10") [ 0; 1 ]
  in
  let wrong_name = Crypto.Coin.create_share params keys.(2) ~name:"other" in
  Alcotest.(check bool) "2 good + 1 bad < threshold" true
    (Crypto.Coin.combine params ~name:"r10" (wrong_name :: good) = None)

let test_coin_share_serialization () =
  let params, keys = Lazy.force coin_setup in
  let share = Crypto.Coin.create_share params keys.(3) ~name:"ser" in
  let back = Crypto.Coin.share_of_bytes (Crypto.Coin.share_to_bytes share) in
  Alcotest.(check int) "owner" (Crypto.Coin.share_owner share) (Crypto.Coin.share_owner back);
  Alcotest.(check bool) "still valid" true (Crypto.Coin.verify_share params ~name:"ser" back)

let test_coin_different_names_vary () =
  (* across many names, both coin values must appear *)
  let params, keys = Lazy.force coin_setup in
  let seen = Hashtbl.create 2 in
  for i = 0 to 15 do
    let name = Printf.sprintf "round-%d" i in
    let shares =
      List.map (fun j -> Crypto.Coin.create_share params keys.(j) ~name) [ 0; 1; 2 ]
    in
    match Crypto.Coin.combine params ~name shares with
    | Some b -> Hashtbl.replace seen b ()
    | None -> Alcotest.fail "combine failed"
  done;
  Alcotest.(check int) "both values appear" 2 (Hashtbl.length seen)

(* --- multisig ---------------------------------------------------------------------- *)

let ms_keys =
  lazy
    (let rng = Util.Rng.create ~seed:80L in
     Array.init 4 (fun _ -> Crypto.Rsa.generate rng ~bits:512))

let ms_pubs () = Array.map (fun (k : Crypto.Rsa.keypair) -> k.pub) (Lazy.force ms_keys)

let test_multisig_verify () =
  let keys = Lazy.force ms_keys in
  let msg = Bytes.of_string "agree on this" in
  let ms = Crypto.Multisig.create (List.init 3 (fun i -> (i, Crypto.Rsa.sign keys.(i).sec msg))) in
  Alcotest.(check int) "count" 3 (Crypto.Multisig.count ms);
  Alcotest.(check (list int)) "signers" [ 0; 1; 2 ] (Crypto.Multisig.signers ms);
  Alcotest.(check bool) "k=3" true (Crypto.Multisig.verify ~keys:(ms_pubs ()) ~msg ~k:3 ms);
  Alcotest.(check bool) "k=4 fails" false (Crypto.Multisig.verify ~keys:(ms_pubs ()) ~msg ~k:4 ms)

let test_multisig_bad_signature_not_counted () =
  let keys = Lazy.force ms_keys in
  let msg = Bytes.of_string "m" in
  let ms =
    Crypto.Multisig.create
      [
        (0, Crypto.Rsa.sign keys.(0).sec msg);
        (1, Bytes.make (Crypto.Rsa.signature_size keys.(1).pub) 'z');
      ]
  in
  Alcotest.(check bool) "k=2 fails" false (Crypto.Multisig.verify ~keys:(ms_pubs ()) ~msg ~k:2 ms);
  Alcotest.(check bool) "k=1 ok" true (Crypto.Multisig.verify ~keys:(ms_pubs ()) ~msg ~k:1 ms)

let test_multisig_out_of_range_signer () =
  let keys = Lazy.force ms_keys in
  let msg = Bytes.of_string "m" in
  let ms = Crypto.Multisig.create [ (9, Crypto.Rsa.sign keys.(0).sec msg) ] in
  Alcotest.(check bool) "unknown signer" false
    (Crypto.Multisig.verify ~keys:(ms_pubs ()) ~msg ~k:1 ms)

let test_multisig_replace () =
  let ms = Crypto.Multisig.create [ (1, Bytes.of_string "a"); (1, Bytes.of_string "b") ] in
  Alcotest.(check int) "one signer" 1 (Crypto.Multisig.count ms)

let test_multisig_serialization () =
  let keys = Lazy.force ms_keys in
  let msg = Bytes.of_string "wire" in
  let ms = Crypto.Multisig.create (List.init 2 (fun i -> (i, Crypto.Rsa.sign keys.(i).sec msg))) in
  let back = Crypto.Multisig.of_bytes (Crypto.Multisig.to_bytes ms) in
  Alcotest.(check bool) "verifies" true (Crypto.Multisig.verify ~keys:(ms_pubs ()) ~msg ~k:2 back);
  Alcotest.(check int) "size" (Bytes.length (Crypto.Multisig.to_bytes ms)) (Crypto.Multisig.size ms)

let suite =
  ( "crypto",
    [
      Alcotest.test_case "sha256 empty" `Quick test_sha_empty;
      Alcotest.test_case "sha256 abc" `Quick test_sha_abc;
      Alcotest.test_case "sha256 448 bits" `Quick test_sha_448bits;
      Alcotest.test_case "sha256 896 bits" `Quick test_sha_896bits;
      Alcotest.test_case "sha256 million a" `Slow test_sha_million_a;
      Alcotest.test_case "sha256 incremental" `Quick test_sha_incremental_equals_oneshot;
      Alcotest.test_case "sha256 digest_concat" `Quick test_sha_digest_concat;
      Alcotest.test_case "sha256 ctx reuse" `Quick test_sha_ctx_reuse_rejected;
      QCheck_alcotest.to_alcotest qcheck_sha_incremental;
      Alcotest.test_case "hmac rfc4231 case1" `Quick test_hmac_rfc4231_case1;
      Alcotest.test_case "hmac rfc4231 case2" `Quick test_hmac_rfc4231_case2;
      Alcotest.test_case "hmac rfc4231 case3" `Quick test_hmac_rfc4231_case3;
      Alcotest.test_case "hmac long key" `Quick test_hmac_long_key;
      Alcotest.test_case "hmac verify" `Quick test_hmac_verify;
      Alcotest.test_case "rsa sign/verify" `Quick test_rsa_sign_verify;
      Alcotest.test_case "rsa wrong message" `Quick test_rsa_rejects_wrong_message;
      Alcotest.test_case "rsa tampered signature" `Quick test_rsa_rejects_tampered_signature;
      Alcotest.test_case "rsa wrong key" `Quick test_rsa_rejects_wrong_key;
      Alcotest.test_case "rsa garbage" `Quick test_rsa_rejects_garbage;
      Alcotest.test_case "rsa public serialization" `Quick test_rsa_public_serialization;
      Alcotest.test_case "rsa min bits" `Quick test_rsa_min_bits;
      Alcotest.test_case "ots check all slots" `Quick test_ots_check;
      Alcotest.test_case "ots cross slot" `Quick test_ots_rejects_cross_slot;
      Alcotest.test_case "ots garbage" `Quick test_ots_rejects_garbage;
      Alcotest.test_case "ots phase bounds" `Quick test_ots_phase_bounds;
      Alcotest.test_case "ots serialization" `Quick test_ots_serialization;
      Alcotest.test_case "ots slot indexing" `Quick test_ots_slot_indexing;
      Alcotest.test_case "shamir reconstruct" `Quick test_shamir_reconstruct;
      Alcotest.test_case "shamir insufficient" `Quick test_shamir_insufficient_shares_wrong;
      Alcotest.test_case "shamir threshold 1" `Quick test_shamir_threshold_one;
      Alcotest.test_case "shamir lagrange sum" `Quick test_shamir_lagrange_sums_to_one;
      Alcotest.test_case "shamir rejects" `Quick test_shamir_rejects;
      Alcotest.test_case "coin share verify" `Quick test_coin_share_verify;
      Alcotest.test_case "coin wrong name" `Quick test_coin_share_rejects_wrong_name;
      Alcotest.test_case "coin tampered share" `Quick test_coin_share_rejects_tampered;
      Alcotest.test_case "coin combine consistent" `Quick test_coin_combine_consistent;
      Alcotest.test_case "coin insufficient" `Quick test_coin_combine_insufficient;
      Alcotest.test_case "coin ignores invalid" `Quick test_coin_combine_ignores_invalid;
      Alcotest.test_case "coin share serialization" `Quick test_coin_share_serialization;
      Alcotest.test_case "coin values vary" `Quick test_coin_different_names_vary;
      Alcotest.test_case "multisig verify" `Quick test_multisig_verify;
      Alcotest.test_case "multisig bad signature" `Quick test_multisig_bad_signature_not_counted;
      Alcotest.test_case "multisig unknown signer" `Quick test_multisig_out_of_range_signer;
      Alcotest.test_case "multisig replace" `Quick test_multisig_replace;
      Alcotest.test_case "multisig serialization" `Quick test_multisig_serialization;
    ] )
