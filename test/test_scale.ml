(* Tests for the scalable subsystem: calendar-queue engine backend,
   the slot arena, deterministic samplers, the abstract medium, and
   the sample-based broadcast/consensus protocols. *)

(* --- calendar queue vs heap --------------------------------------------- *)

(* Interprets one op list against both backends and compares the full
   observable trajectory: fire order, clock, live and raw queue sizes.
   Ops cover equal-deadline ties, cancels (including double cancels),
   partial run horizons and bucket-year-crossing far deadlines. *)
let apply_ops ops backend =
  let engine = Net.Engine.create ~backend () in
  let log = ref [] in
  let handles = ref [||] in
  let fired = ref 0 in
  let note i () =
    incr fired;
    log := i :: !log
  in
  List.iteri
    (fun i (op, a, b) ->
      match op mod 5 with
      | 0 | 1 | 2 ->
          (* quantized delays force exact ties; op 2 with small b jumps
             far ahead, forcing bucket-year wrap-arounds *)
          let delay =
            if op mod 5 = 2 && b mod 7 = 0 then float_of_int (a mod 1000) *. 50.0
            else float_of_int (a mod 32) *. 0.125
          in
          let h = Net.Engine.schedule engine ~delay (note i) in
          handles := Array.append !handles [| h |]
      | 3 ->
          let m = Array.length !handles in
          if m > 0 then Net.Engine.cancel engine !handles.(a mod m)
      | _ ->
          let until = Net.Engine.now engine +. (float_of_int (a mod 8) *. 0.5) in
          Net.Engine.run ~until engine)
    ops;
  Net.Engine.run engine;
  ( List.rev !log,
    Net.Engine.now engine,
    Net.Engine.pending engine,
    Net.Engine.heap_size engine,
    Net.Engine.live_peak engine,
    Net.Engine.queued_peak engine )

let qcheck_calendar_equiv =
  QCheck.Test.make ~count:80 ~name:"calendar backend pop-for-pop identical to heap"
    QCheck.(list_of_size Gen.(int_range 10 120) (triple small_nat small_nat small_nat))
    (fun ops ->
      let h = apply_ops ops Net.Engine.Heap in
      let c = apply_ops ops Net.Engine.Calendar in
      h = c)

let test_calendar_basic () =
  let engine = Net.Engine.create ~backend:Calendar () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Net.Engine.at engine ~time:1.0e12 (note "far"));
  ignore (Net.Engine.schedule engine ~delay:0.5 (note "a"));
  ignore (Net.Engine.schedule engine ~delay:3.0 (note "b"));
  ignore (Net.Engine.schedule engine ~delay:0.5 (note "a2"));
  Net.Engine.run engine;
  Alcotest.(check (list string)) "order with far deadline" [ "a"; "a2"; "b"; "far" ]
    (List.rev !log);
  Alcotest.(check (float 1e-3)) "clock" 1.0e12 (Net.Engine.now engine)

let test_engine_peaks () =
  let engine = Net.Engine.create () in
  let h = Net.Engine.schedule engine ~delay:1.0 (fun () -> ()) in
  ignore (Net.Engine.schedule engine ~delay:2.0 (fun () -> ()));
  ignore (Net.Engine.schedule engine ~delay:3.0 (fun () -> ()));
  Alcotest.(check int) "live peak" 3 (Net.Engine.live_peak engine);
  Net.Engine.cancel engine h;
  Net.Engine.run ~until:2.5 engine;
  Alcotest.(check int) "live after" 1 (Net.Engine.pending engine);
  Alcotest.(check int) "events_live alias" 1 (Net.Engine.events_live engine);
  ignore (Net.Engine.schedule engine ~delay:1.0 (fun () -> ()));
  Alcotest.(check int) "peak sticks" 3 (Net.Engine.live_peak engine);
  for _ = 1 to 3 do
    ignore (Net.Engine.schedule engine ~delay:1.0 (fun () -> ()))
  done;
  Alcotest.(check int) "peak moves" 5 (Net.Engine.live_peak engine);
  Alcotest.(check bool) "queued peak >= live peak" true
    (Net.Engine.queued_peak engine >= Net.Engine.live_peak engine)

(* --- arena -------------------------------------------------------------- *)

let test_arena () =
  let arena = Scale.Arena.create ~capacity:2 (fun () -> ref 0) in
  let a = Scale.Arena.alloc arena in
  let b = Scale.Arena.alloc arena in
  Alcotest.(check int) "in use" 2 (Scale.Arena.in_use arena);
  (Scale.Arena.get arena a) := 7;
  Scale.Arena.free arena a;
  Alcotest.(check int) "freed" 1 (Scale.Arena.in_use arena);
  Alcotest.(check_raises) "get after free"
    (Invalid_argument "Arena.get: slot is not allocated") (fun () ->
      ignore (Scale.Arena.get arena a));
  Alcotest.(check_raises) "double free"
    (Invalid_argument "Arena.free: slot is not allocated") (fun () ->
      Scale.Arena.free arena a);
  let c = Scale.Arena.alloc arena in
  Alcotest.(check int) "slot recycled" a c;
  (* growth past the initial capacity *)
  let extra = List.init 5 (fun _ -> Scale.Arena.alloc arena) in
  Alcotest.(check bool) "grew" true (Scale.Arena.capacity arena >= 7);
  Alcotest.(check int) "high water" 7 (Scale.Arena.high_water arena);
  List.iter (Scale.Arena.free arena) (b :: c :: extra);
  Alcotest.(check int) "drained" 0 (Scale.Arena.in_use arena)

(* --- sampler ------------------------------------------------------------ *)

let test_sampler_deterministic () =
  let s1 = Scale.Sampler.create ~seed:42L ~n:64 in
  let s2 = Scale.Sampler.create ~seed:42L ~n:64 in
  for owner = 0 to 63 do
    Alcotest.(check (array int))
      (Printf.sprintf "owner %d" owner)
      (Scale.Sampler.sample s1 ~owner ~tag:3 ~k:8)
      (Scale.Sampler.sample s2 ~owner ~tag:3 ~k:8)
  done;
  let s3 = Scale.Sampler.create ~seed:43L ~n:64 in
  let differs = ref false in
  for owner = 0 to 63 do
    if
      Scale.Sampler.sample s1 ~owner ~tag:3 ~k:8
      <> Scale.Sampler.sample s3 ~owner ~tag:3 ~k:8
    then differs := true
  done;
  Alcotest.(check bool) "seed matters" true !differs

let test_sampler_shape () =
  let s = Scale.Sampler.create ~seed:7L ~n:20 in
  for owner = 0 to 19 do
    let sample = Scale.Sampler.sample s ~owner ~tag:0 ~k:6 in
    Alcotest.(check int) "size" 6 (Array.length sample);
    Array.iter
      (fun p ->
        Alcotest.(check bool) "no self" true (p <> owner);
        Alcotest.(check bool) "in range" true (p >= 0 && p < 20))
      sample;
    let sorted = List.sort_uniq compare (Array.to_list sample) in
    Alcotest.(check int) "distinct" 6 (List.length sorted)
  done;
  (* k larger than the peer population clamps *)
  let all = Scale.Sampler.sample s ~owner:0 ~tag:1 ~k:100 in
  Alcotest.(check int) "clamped to n-1" 19 (Array.length all)

let test_sampler_inverse () =
  let s = Scale.Sampler.create ~seed:11L ~n:32 in
  let tag = 5 and k = 7 in
  for node = 0 to 31 do
    let senders = Scale.Sampler.incoming s ~node ~tag ~k in
    Array.iter
      (fun owner ->
        Alcotest.(check bool) "inverse sound" true
          (Scale.Sampler.in_sample s ~owner ~tag ~k node))
      senders;
    for owner = 0 to 31 do
      if Scale.Sampler.in_sample s ~owner ~tag ~k node then
        Alcotest.(check bool) "inverse complete" true
          (Array.exists (fun x -> x = owner) senders)
    done
  done

(* --- medium ------------------------------------------------------------- *)

let test_medium_shared_payload () =
  let engine = Net.Engine.create ~backend:Calendar () in
  let rng = Util.Rng.create ~seed:5L in
  let medium = Scale.Medium.create engine rng ~n:8 () in
  let payload = Bytes.of_string "shared-envelope" in
  let received = ref [] in
  for node = 1 to 7 do
    Scale.Medium.set_handler medium ~node (fun ~src:_ bytes ->
        received := bytes :: !received)
  done;
  Scale.Medium.multicast medium ~src:0 ~dsts:[ 1; 2; 3; 4; 5; 6; 7 ] payload;
  Net.Engine.run engine;
  Alcotest.(check int) "all delivered" 7 (List.length !received);
  List.iter
    (fun bytes ->
      Alcotest.(check bool) "physically shared buffer" true (bytes == payload))
    !received;
  Alcotest.(check int) "in flight drained" 0 (Scale.Medium.in_flight medium);
  Alcotest.(check bool) "arena peak" true (Scale.Medium.arena_high_water medium >= 7);
  let stats = Scale.Medium.stats medium in
  Alcotest.(check int) "delivered stat" 7 stats.delivered;
  Alcotest.(check bool) "airtime accounted" true (stats.airtime > 0.0)

let test_medium_deterministic () =
  let run () =
    let engine = Net.Engine.create ~backend:Calendar () in
    let rng = Util.Rng.create ~seed:9L in
    let medium = Scale.Medium.create engine rng ~n:16 ~loss:0.2 () in
    let log = ref [] in
    for node = 0 to 15 do
      Scale.Medium.set_handler medium ~node (fun ~src bytes ->
          log := (node, src, Bytes.to_string bytes) :: !log)
    done;
    for src = 0 to 15 do
      for dst = 0 to 15 do
        if src <> dst then
          Scale.Medium.send medium ~src ~dst
            (Bytes.of_string (Printf.sprintf "%d->%d" src dst))
      done
    done;
    Net.Engine.run engine;
    (List.rev !log, (Scale.Medium.stats medium).dropped)
  in
  let log1, dropped1 = run () in
  let log2, dropped2 = run () in
  Alcotest.(check bool) "same delivery order" true (log1 = log2);
  Alcotest.(check int) "same losses" dropped1 dropped2;
  Alcotest.(check bool) "loss actually bites" true (dropped1 > 0)

(* --- MAC shared envelope ------------------------------------------------ *)

let test_mac_shared_envelope () =
  (* the radio hands every receiver the same physical frame bytes and
     the MAC registry decodes them once: all receivers must observe a
     payload that is byte-equal to what was sent AND physically the
     same buffer across receivers *)
  let n = 6 in
  let engine = Net.Engine.create () in
  let rng = Util.Rng.create ~seed:77L in
  let radio = Net.Radio.create engine (Util.Rng.split rng) ~n in
  let macs =
    Array.init n (fun id -> Net.Mac.create engine radio ~id ~rng:(Util.Rng.split rng))
  in
  let received = ref [] in
  Array.iteri
    (fun i mac ->
      if i > 0 then
        Net.Mac.on_deliver mac (fun ~src:_ payload -> received := payload :: !received))
    macs;
  let sent = Bytes.of_string "one-envelope-per-transmission" in
  Net.Mac.send_broadcast macs.(0) sent;
  Net.Engine.run engine;
  Alcotest.(check int) "everyone heard it" (n - 1) (List.length !received);
  List.iter
    (fun payload ->
      Alcotest.(check bool) "byte equal" true (Bytes.equal payload sent))
    !received;
  match !received with
  | first :: rest ->
      List.iter
        (fun payload ->
          Alcotest.(check bool) "one decode shared by the fan-out" true
            (payload == first))
        rest
  | [] -> Alcotest.fail "no deliveries"

(* --- sample-based broadcast --------------------------------------------- *)

let pbcast_net ~n ~loss ~seed =
  let engine = Net.Engine.create ~backend:Calendar () in
  let rng = Util.Rng.create ~seed in
  let medium = Scale.Medium.create engine (Util.Rng.split rng) ~n ~loss () in
  let net = Scale.Transport.of_medium medium in
  let sampler = Scale.Sampler.create ~seed:(Util.Rng.derive ~base:seed [ 1 ]) ~n in
  let cfg = Scale.Pbroadcast.default_config ~n in
  let nodes = Array.init n (fun id -> Scale.Pbroadcast.create net sampler cfg ~id ()) in
  (engine, nodes)

let test_pbroadcast_totality () =
  let n = 64 in
  let engine, nodes = pbcast_net ~n ~loss:0.05 ~seed:2026L in
  Array.iter Scale.Pbroadcast.start nodes;
  let payload = Bytes.of_string "probabilistic-total" in
  Scale.Pbroadcast.broadcast nodes.(3) payload;
  Net.Engine.run engine;
  let delivered =
    Array.to_list nodes
    |> List.filter_map (fun node -> Scale.Pbroadcast.delivered node ~origin:3)
  in
  Alcotest.(check int) "everyone delivers under iid loss" n (List.length delivered);
  List.iter
    (fun got -> Alcotest.(check bool) "right payload" true (Bytes.equal got payload))
    delivered

let test_pbroadcast_consistency () =
  let n = 64 in
  let engine, nodes = pbcast_net ~n ~loss:0.02 ~seed:31L in
  Array.iter Scale.Pbroadcast.start nodes;
  Scale.Pbroadcast.broadcast_equivocate nodes.(0) (Bytes.of_string "AAAA")
    (Bytes.of_string "BBBB");
  Net.Engine.run engine;
  let delivered =
    Array.to_list nodes
    |> List.filteri (fun i _ -> i > 0)
    |> List.filter_map (fun node -> Scale.Pbroadcast.delivered node ~origin:0)
    |> List.map Bytes.to_string
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "no two correct nodes deliver different payloads" true
    (List.length delivered <= 1)

(* --- sample-based consensus --------------------------------------------- *)

(* The harness sizes the contended-radio tick from the encoded vote
   frame: kind byte + varint phase + value byte = 3 bytes for any phase
   below 128. Pin it so a codec change that silently grows the frame
   also revisits the channel-capacity math. *)
let test_state_frame_bytes_pinned () =
  Alcotest.(check int) "vote frame bytes" 3 Scale.Sampled.state_frame_bytes

let sampled_net ~n ~loss ~seed ~proposal ~behavior =
  let engine = Net.Engine.create ~backend:Calendar () in
  let rng = Util.Rng.create ~seed in
  let medium = Scale.Medium.create engine (Util.Rng.split rng) ~n ~loss () in
  let net = Scale.Transport.of_medium medium in
  let sampler = Scale.Sampler.create ~seed:(Util.Rng.derive ~base:seed [ 1 ]) ~n in
  let coin_seed = Util.Rng.derive ~base:seed [ 2 ] in
  let cfg = Scale.Sampled.default_config ~n in
  let nodes =
    Array.init n (fun id ->
        Scale.Sampled.create net sampler cfg ~id ~coin_seed ~behavior:(behavior id)
          ~proposal:(proposal id) ())
  in
  (engine, nodes)

let check_sampled_agreement ~n ~engine ~nodes ~faulty =
  Net.Engine.run engine;
  let decisions =
    Array.to_list nodes
    |> List.filteri (fun i _ -> not (faulty i))
    |> List.map (fun node -> Scale.Sampled.decision node)
  in
  let honest = List.length decisions in
  let decided = List.filter_map Fun.id decisions in
  Alcotest.(check int)
    (Printf.sprintf "all %d honest nodes decide (n=%d)" honest n)
    honest (List.length decided);
  match decided with
  | v :: rest ->
      List.iter (fun v' -> Alcotest.(check int) "agreement" v v') rest;
      v
  | [] -> Alcotest.fail "nobody decided"

let test_sampled_validity () =
  (* unanimous proposals must win even with lossy links *)
  let n = 64 in
  let engine, nodes =
    sampled_net ~n ~loss:0.02 ~seed:404L
      ~proposal:(fun _ -> 1)
      ~behavior:(fun _ -> Scale.Sampled.Correct)
  in
  Array.iter Scale.Sampled.start nodes;
  let v = check_sampled_agreement ~n ~engine ~nodes ~faulty:(fun _ -> false) in
  Alcotest.(check int) "validity" 1 v

let test_sampled_agreement_byzantine () =
  let n = 64 in
  let faulty i = i < 6 in
  let engine, nodes =
    sampled_net ~n ~loss:0.02 ~seed:777L
      ~proposal:(fun i -> i land 1)
      ~behavior:(fun i ->
        if i < 2 then Scale.Sampled.Attacker
        else if i < 4 then Scale.Sampled.Equivocator
        else if i < 6 then Scale.Sampled.Silent
        else Scale.Sampled.Correct)
  in
  Array.iter Scale.Sampled.start nodes;
  ignore (check_sampled_agreement ~n ~engine ~nodes ~faulty)

let test_sampled_over_nodes () =
  (* same protocol, carried by the radio/MAC unicast stack *)
  let n = 8 in
  let engine = Net.Engine.create () in
  let rng = Util.Rng.create ~seed:15L in
  let radio = Net.Radio.create engine (Util.Rng.split rng) ~n in
  let stacks =
    Array.init n (fun id -> Net.Node.create engine radio ~id ~rng:(Util.Rng.split rng))
  in
  let net = Scale.Transport.of_nodes stacks ~port:443 in
  let sampler = Scale.Sampler.create ~seed:21L ~n in
  (* contended 802.11b unicast delivers slower than the abstract
     medium: give each phase time to land *)
  let cfg = { (Scale.Sampled.default_config ~n) with tick = 0.5 } in
  let nodes =
    Array.init n (fun id ->
        Scale.Sampled.create net sampler cfg ~id ~coin_seed:99L
          ~proposal:(id land 1) ())
  in
  Array.iter Scale.Sampled.start nodes;
  ignore (check_sampled_agreement ~n ~engine ~nodes ~faulty:(fun _ -> false))

let test_sampled_over_rlinks () =
  (* and by the reliable-link mesh the Bracha/ABBA baselines use *)
  let n = 8 in
  let engine = Net.Engine.create () in
  let rng = Util.Rng.create ~seed:33L in
  let radio = Net.Radio.create engine (Util.Rng.split rng) ~n in
  let stacks =
    Array.init n (fun id -> Net.Node.create engine radio ~id ~rng:(Util.Rng.split rng))
  in
  let net = Scale.Transport.of_rlinks stacks ~port:7700 in
  let sampler = Scale.Sampler.create ~seed:22L ~n in
  (* the ARQ mesh over the contended 802.11b medium delivers slower
     than the abstract medium: give each phase time to land *)
  let cfg = { (Scale.Sampled.default_config ~n) with tick = 0.5 } in
  let nodes =
    Array.init n (fun id ->
        Scale.Sampled.create net sampler cfg ~id ~coin_seed:98L
          ~proposal:(1 - (id land 1)) ())
  in
  Array.iter Scale.Sampled.start nodes;
  ignore (check_sampled_agreement ~n ~engine ~nodes ~faulty:(fun _ -> false))

let suite =
  ( "scale",
    [
      QCheck_alcotest.to_alcotest qcheck_calendar_equiv;
      Alcotest.test_case "calendar basic order" `Quick test_calendar_basic;
      Alcotest.test_case "engine high-water marks" `Quick test_engine_peaks;
      Alcotest.test_case "arena" `Quick test_arena;
      Alcotest.test_case "sampler deterministic" `Quick test_sampler_deterministic;
      Alcotest.test_case "sampler shape" `Quick test_sampler_shape;
      Alcotest.test_case "sampler inverse" `Quick test_sampler_inverse;
      Alcotest.test_case "medium shared payload" `Quick test_medium_shared_payload;
      Alcotest.test_case "medium deterministic" `Quick test_medium_deterministic;
      Alcotest.test_case "mac shared envelope" `Quick test_mac_shared_envelope;
      Alcotest.test_case "pbroadcast totality" `Quick test_pbroadcast_totality;
      Alcotest.test_case "pbroadcast consistency" `Quick test_pbroadcast_consistency;
      Alcotest.test_case "state frame bytes pinned" `Quick test_state_frame_bytes_pinned;
      Alcotest.test_case "sampled validity" `Quick test_sampled_validity;
      Alcotest.test_case "sampled agreement, byzantine mix" `Quick
        test_sampled_agreement_byzantine;
      Alcotest.test_case "sampled over radio/MAC stack" `Quick test_sampled_over_nodes;
      Alcotest.test_case "sampled over rlink mesh" `Quick test_sampled_over_rlinks;
    ] )
