(* Tests of the experiment harness: runner, experiment cells, paper
   reference data, abstract round model and the sigma bound. *)

module R = Harness.Runner

let contains ~affix s =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

let test_proposals () =
  Alcotest.(check (array int)) "unanimous" [| 1; 1; 1; 1 |] (R.proposals R.Unanimous ~n:4);
  Alcotest.(check (array int)) "divergent" [| 0; 1; 0; 1; 0 |] (R.proposals R.Divergent ~n:5)

let test_names () =
  Alcotest.(check string) "turquois" "Turquois" (R.protocol_to_string R.Turquois);
  Alcotest.(check string) "abba" "ABBA" (R.protocol_to_string R.Abba);
  Alcotest.(check string) "bracha" "Bracha" (R.protocol_to_string R.Bracha);
  Alcotest.(check string) "unan" "unanimous" (R.dist_to_string R.Unanimous)

let test_runner_turquois_result () =
  let r =
    R.run ~protocol:R.Turquois ~n:4 ~dist:R.Unanimous ~load:Net.Fault.Failure_free ~seed:5L ()
  in
  Alcotest.(check int) "4 correct" 4 (List.length r.correct);
  Alcotest.(check int) "4 latencies" 4 (List.length r.latencies);
  Alcotest.(check bool) "agreement" true r.agreement;
  Alcotest.(check bool) "validity" true r.validity;
  Alcotest.(check bool) "not timed out" false r.timed_out;
  Alcotest.(check bool) "frames counted" true (r.frames_sent > 0);
  List.iter
    (fun (_, l) -> Alcotest.(check bool) "positive latency" true (l > 0.0))
    r.latencies

let test_runner_failstop_excludes_crashed () =
  let r =
    R.run ~protocol:R.Turquois ~n:7 ~dist:R.Unanimous ~load:Net.Fault.Fail_stop ~seed:6L ()
  in
  Alcotest.(check int) "5 measured" 5 (List.length r.correct);
  Alcotest.(check bool) "crashed not measured" false (List.mem_assoc 6 r.latencies)

let test_runner_byzantine_excludes_attackers () =
  let r =
    R.run ~protocol:R.Turquois ~n:7 ~dist:R.Unanimous ~load:Net.Fault.Byzantine ~seed:7L ()
  in
  Alcotest.(check int) "5 measured" 5 (List.length r.correct);
  Alcotest.(check bool) "validity" true r.validity

let test_runner_deterministic () =
  let run () =
    R.run ~protocol:R.Turquois ~n:4 ~dist:R.Divergent ~load:Net.Fault.Failure_free ~seed:11L ()
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same latencies" true (a.latencies = b.latencies);
  Alcotest.(check bool) "same decisions" true (a.decisions = b.decisions)

let test_runner_seed_variation () =
  let lat seed =
    let r =
      R.run ~protocol:R.Turquois ~n:4 ~dist:R.Divergent ~load:Net.Fault.Failure_free ~seed ()
    in
    r.latencies
  in
  Alcotest.(check bool) "different seeds differ" true (lat 12L <> lat 13L)

let test_experiment_cell () =
  let cell =
    { Harness.Experiment.protocol = R.Turquois; n = 4; dist = R.Unanimous;
      load = Net.Fault.Failure_free }
  in
  let result = Harness.Experiment.run_cell ~reps:4 ~base_seed:50L cell in
  Alcotest.(check int) "16 samples (4 procs x 4 reps)" 16 result.summary.count;
  Alcotest.(check int) "no agreement violations" 0 result.agreement_violations;
  Alcotest.(check int) "no validity violations" 0 result.validity_violations;
  Alcotest.(check int) "no timeouts" 0 result.timeouts;
  Alcotest.(check (float 1e-9)) "all decided" 1.0 result.decided_fraction;
  match result.phase_summary with
  | Some p -> Alcotest.(check (float 1e-9)) "phase 3 everywhere" 3.0 p.mean
  | None -> Alcotest.fail "phase summary expected"

let test_render_table () =
  let cell =
    { Harness.Experiment.protocol = R.Turquois; n = 4; dist = R.Unanimous;
      load = Net.Fault.Failure_free }
  in
  let result = Harness.Experiment.run_cell ~reps:2 ~base_seed:60L cell in
  let table = Harness.Experiment.render_table Net.Fault.Failure_free [ result ] in
  Alcotest.(check bool) "mentions group" true
    (String.length table > 0
    && contains ~affix:"n = 4" table
    && contains ~affix:"Turquois" table)

let test_table_numbers () =
  Alcotest.(check int) "t1" 1 (Harness.Experiment.table_number Net.Fault.Failure_free);
  Alcotest.(check int) "t2" 2 (Harness.Experiment.table_number Net.Fault.Fail_stop);
  Alcotest.(check int) "t3" 3 (Harness.Experiment.table_number Net.Fault.Byzantine)

let test_paper_values () =
  (match Harness.Paper.value ~load:Net.Fault.Failure_free ~protocol:R.Turquois ~n:4
           ~dist:R.Unanimous with
  | Some (mean, ci) ->
      Alcotest.(check (float 1e-9)) "t1 mean" 14.90 mean;
      Alcotest.(check (float 1e-9)) "t1 ci" 4.74 ci
  | None -> Alcotest.fail "expected value");
  (match Harness.Paper.value ~load:Net.Fault.Byzantine ~protocol:R.Bracha ~n:16
           ~dist:R.Divergent with
  | Some (mean, _) -> Alcotest.(check (float 1e-9)) "t3 bracha" 20412.36 mean
  | None -> Alcotest.fail "expected value");
  Alcotest.(check bool) "unknown n" true
    (Harness.Paper.value ~load:Net.Fault.Failure_free ~protocol:R.Turquois ~n:5
       ~dist:R.Unanimous = None);
  Alcotest.(check int) "group sizes" 5 (List.length Harness.Paper.group_sizes)

(* --- abstract rounds / sigma bound ------------------------------------------- *)

module A = Harness.Abstract_rounds

let test_sigma_values () =
  Alcotest.(check int) "n=4 k=3 t=0" 3 (A.sigma ~n:4 ~k:3 ~t:0);
  Alcotest.(check int) "n=8 k=6 t=0" ((4 * 2) + 4) (A.sigma ~n:8 ~k:6 ~t:0)

let test_abstract_lossless_decides () =
  let o = A.run ~n:4 ~k:3 ~omissions:0 ~rounds:10 ~seed:1L () in
  Alcotest.(check int) "all decide" 4 o.deciders;
  Alcotest.(check bool) "k reached early" true
    (match o.rounds_to_k with Some r -> r <= 4 | None -> false);
  Alcotest.(check bool) "agreement" true o.agreement;
  Alcotest.(check bool) "validity" true o.validity

let test_abstract_at_sigma_progresses () =
  let sigma = A.sigma ~n:4 ~k:3 ~t:0 in
  let ok = ref 0 in
  for seed = 0 to 9 do
    let o =
      A.run ~n:4 ~k:3 ~adversary:A.Random_omissions ~omissions:sigma ~rounds:80
        ~seed:(Int64.of_int seed) ()
    in
    Alcotest.(check bool) "safety at sigma" true (o.agreement && o.validity);
    if o.rounds_to_k <> None then incr ok
  done;
  Alcotest.(check int) "k reached in every run" 10 !ok

let test_abstract_beyond_sigma_targeted_stalls () =
  let sigma = A.sigma ~n:4 ~k:3 ~t:0 in
  let o =
    A.run ~n:4 ~k:3 ~adversary:A.Target_victims ~omissions:(sigma + 3) ~rounds:60 ~seed:3L ()
  in
  Alcotest.(check bool) "k not reached" true (o.rounds_to_k = None);
  Alcotest.(check bool) "but safety holds" true (o.agreement && o.validity)

let test_abstract_byzantine_safety () =
  for seed = 0 to 4 do
    let o =
      A.run ~n:7 ~k:5 ~byzantine:[ 5; 6 ] ~dist:R.Divergent ~adversary:A.Random_omissions
        ~omissions:3 ~rounds:60 ~seed:(Int64.of_int seed) ()
    in
    Alcotest.(check bool) "agreement under byz+omissions" true o.agreement
  done

let test_sweep_shape () =
  let rows = Harness.Sweeps.sigma_sweep ~n:4 ~k:3 ~runs_per_point:3 ~rounds:50 ~beyond:2 () in
  (* both adversaries, omissions 0..sigma+2 *)
  Alcotest.(check int) "row count" (2 * (3 + 2 + 1)) (List.length rows);
  List.iter
    (fun (row : Harness.Sweeps.sigma_row) ->
      Alcotest.(check int) "no agreement violations" 0 row.agreement_violations;
      Alcotest.(check int) "no validity violations" 0 row.validity_violations)
    rows;
  let rendered = Harness.Sweeps.render_sigma ~n:4 ~k:3 ~t:0 rows in
  Alcotest.(check bool) "renders sigma" true (contains ~affix:"sigma" rendered)

let test_phase_distribution () =
  let rows =
    Harness.Sweeps.phase_distribution ~n:4 ~reps:3 ~loads:[ Net.Fault.Failure_free ] ()
  in
  Alcotest.(check int) "two dists" 2 (List.length rows);
  let unan = List.find (fun (r : Harness.Sweeps.phase_row) -> r.dist = R.Unanimous) rows in
  Alcotest.(check (float 1e-9)) "unanimous decides at phase 3" 3.0 unan.phase_stats.mean

let suite =
  ( "harness",
    [
      Alcotest.test_case "proposals" `Quick test_proposals;
      Alcotest.test_case "names" `Quick test_names;
      Alcotest.test_case "runner result" `Quick test_runner_turquois_result;
      Alcotest.test_case "fail-stop exclusion" `Quick test_runner_failstop_excludes_crashed;
      Alcotest.test_case "byzantine exclusion" `Quick test_runner_byzantine_excludes_attackers;
      Alcotest.test_case "deterministic" `Quick test_runner_deterministic;
      Alcotest.test_case "seed variation" `Quick test_runner_seed_variation;
      Alcotest.test_case "experiment cell" `Quick test_experiment_cell;
      Alcotest.test_case "render table" `Quick test_render_table;
      Alcotest.test_case "table numbers" `Quick test_table_numbers;
      Alcotest.test_case "paper values" `Quick test_paper_values;
      Alcotest.test_case "sigma values" `Quick test_sigma_values;
      Alcotest.test_case "abstract lossless" `Quick test_abstract_lossless_decides;
      Alcotest.test_case "abstract at sigma" `Slow test_abstract_at_sigma_progresses;
      Alcotest.test_case "abstract beyond sigma" `Quick test_abstract_beyond_sigma_targeted_stalls;
      Alcotest.test_case "abstract byzantine" `Slow test_abstract_byzantine_safety;
      Alcotest.test_case "sweep shape" `Quick test_sweep_shape;
      Alcotest.test_case "phase distribution" `Quick test_phase_distribution;
    ] )

(* --- paper-shape assertions ----------------------------------------------- *)

let mean_latency ~protocol ~n ~dist ~load ~reps ~base_seed =
  let acc = ref [] in
  for rep = 0 to reps - 1 do
    let r =
      R.run ~protocol ~n ~dist ~load ~seed:(Int64.add base_seed (Int64.of_int rep)) ()
    in
    List.iter (fun (_, l) -> acc := l :: !acc) r.latencies
  done;
  Util.Stats.mean !acc

let test_shape_failstop_slower_than_failure_free () =
  (* the Table 2 observation: with exactly n-f processes, Turquois
     becomes sensitive to message loss *)
  let free =
    mean_latency ~protocol:R.Turquois ~n:10 ~dist:R.Unanimous ~load:Net.Fault.Failure_free
      ~reps:6 ~base_seed:800L
  in
  let failstop =
    mean_latency ~protocol:R.Turquois ~n:10 ~dist:R.Unanimous ~load:Net.Fault.Fail_stop
      ~reps:6 ~base_seed:800L
  in
  Alcotest.(check bool) "fail-stop slower" true (failstop > free)

let test_shape_divergent_slower_failure_free () =
  (* the Table 1 observation: divergent proposals cost roughly a cycle *)
  let unanimous =
    mean_latency ~protocol:R.Turquois ~n:7 ~dist:R.Unanimous ~load:Net.Fault.Failure_free
      ~reps:6 ~base_seed:810L
  in
  let divergent =
    mean_latency ~protocol:R.Turquois ~n:7 ~dist:R.Divergent ~load:Net.Fault.Failure_free
      ~reps:6 ~base_seed:810L
  in
  Alcotest.(check bool) "divergent slower" true (divergent > unanimous)

let test_shape_message_complexity_separation () =
  (* frames per consensus: Bracha grows much faster with n than Turquois *)
  let frames protocol n =
    let r =
      R.run ~protocol ~n ~dist:R.Unanimous ~load:Net.Fault.Failure_free ~seed:820L ()
    in
    float_of_int r.frames_sent
  in
  let turquois_growth = frames R.Turquois 10 /. frames R.Turquois 4 in
  let bracha_growth = frames R.Bracha 10 /. frames R.Bracha 4 in
  Alcotest.(check bool) "bracha superlinear vs turquois" true
    (bracha_growth > 3.0 *. turquois_growth)

let shape_suite =
  [
    Alcotest.test_case "shape: fail-stop degradation" `Slow
      test_shape_failstop_slower_than_failure_free;
    Alcotest.test_case "shape: divergent penalty" `Slow test_shape_divergent_slower_failure_free;
    Alcotest.test_case "shape: message complexity" `Slow test_shape_message_complexity_separation;
  ]

let suite = (fst suite, snd suite @ shape_suite)
