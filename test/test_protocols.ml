(* End-to-end protocol tests over the full simulated network stack, for
   Turquois and both baselines, across the paper's fault loads. *)

type outcome = {
  decided : (int * int * float) list; (* id, value, time *)
  correct : int list;
  duration : float;
}

let run_protocol ~protocol ~n ~proposals ~byz ~crash ~loss ?(jam = []) ~seed ~horizon () =
  let engine = Net.Engine.create () in
  let rng = Util.Rng.create ~seed in
  let radio = Net.Radio.create engine (Util.Rng.split rng) ~n in
  Net.Radio.set_loss_prob radio loss;
  List.iter (fun (a, b) -> Net.Radio.jam radio ~from:a ~until:b) jam;
  List.iter (fun i -> Net.Radio.set_down radio i true) crash;
  let nodes =
    Array.init n (fun id -> Net.Node.create engine radio ~id ~rng:(Util.Rng.split rng))
  in
  let decided = ref [] in
  let correct =
    List.filter (fun i -> not (List.mem i byz) && not (List.mem i crash)) (List.init n Fun.id)
  in
  let record i value = decided := (i, value, Net.Engine.now engine) :: !decided in
  let starts = ref [] in
  (match protocol with
  | `Turquois ->
      let cfg = Core.Proto.default_config ~n in
      let keyrings = Core.Keyring.setup (Util.Rng.split rng) ~n ~phases:cfg.max_phases () in
      Array.iteri
        (fun i node ->
          let behavior = if List.mem i byz then Core.Turquois.Attacker else Core.Turquois.Correct in
          let p = Core.Turquois.create node cfg ~keyring:keyrings.(i) ~behavior ~proposal:proposals.(i) () in
          if List.mem i correct then Core.Turquois.on_decide p (fun ~value ~phase:_ -> record i value);
          if not (List.mem i crash) then starts := (fun () -> Core.Turquois.start p) :: !starts)
        nodes
  | `Bracha ->
      let f = Net.Fault.max_f n in
      Array.iteri
        (fun i node ->
          let behavior = if List.mem i byz then Baselines.Bracha.Attacker else Baselines.Bracha.Correct in
          let p = Baselines.Bracha.create node ~n ~f ~behavior ~proposal:proposals.(i) () in
          if List.mem i correct then Baselines.Bracha.on_decide p (fun ~value ~round:_ -> record i value);
          if not (List.mem i crash) then starts := (fun () -> Baselines.Bracha.start p) :: !starts)
        nodes
  | `Abba ->
      let f = Net.Fault.max_f n in
      let keys = Baselines.Abba.setup_keys (Util.Rng.split rng) ~n ~f () in
      Array.iteri
        (fun i node ->
          let behavior = if List.mem i byz then Baselines.Abba.Attacker else Baselines.Abba.Correct in
          let p = Baselines.Abba.create node ~keys ~behavior ~proposal:proposals.(i) () in
          if List.mem i correct then Baselines.Abba.on_decide p (fun ~value ~round:_ -> record i value);
          if not (List.mem i crash) then starts := (fun () -> Baselines.Abba.start p) :: !starts)
        nodes);
  List.iter (fun start -> start ()) !starts;
  Net.Engine.run_while engine (fun () ->
      Net.Engine.now engine < horizon && List.length !decided < List.length correct);
  { decided = List.rev !decided; correct; duration = Net.Engine.now engine }

let check_agreement name outcome =
  match outcome.decided with
  | [] -> ()
  | (_, v0, _) :: rest ->
      List.iter (fun (_, v, _) -> Alcotest.(check int) (name ^ ": agreement") v0 v) rest

let check_all_decided name outcome =
  Alcotest.(check int)
    (name ^ ": all correct decided")
    (List.length outcome.correct) (List.length outcome.decided);
  check_agreement name outcome

let check_validity name expected outcome =
  List.iter (fun (_, v, _) -> Alcotest.(check int) (name ^ ": validity") expected v) outcome.decided

let unanimous n = Array.make n 1
let divergent n = Array.init n (fun i -> i mod 2)

(* --- Turquois ---------------------------------------------------------------- *)

let test_turquois_basic () =
  let o = run_protocol ~protocol:`Turquois ~n:4 ~proposals:(unanimous 4) ~byz:[] ~crash:[]
      ~loss:0.01 ~seed:1L ~horizon:30.0 () in
  check_all_decided "turquois" o;
  check_validity "turquois" 1 o;
  Alcotest.(check bool) "fast" true (o.duration < 0.1)

let test_turquois_divergent () =
  let o = run_protocol ~protocol:`Turquois ~n:7 ~proposals:(divergent 7) ~byz:[] ~crash:[]
      ~loss:0.01 ~seed:2L ~horizon:30.0 () in
  check_all_decided "turquois divergent" o

let test_turquois_failstop () =
  let o = run_protocol ~protocol:`Turquois ~n:7 ~proposals:(unanimous 7) ~byz:[] ~crash:[ 5; 6 ]
      ~loss:0.01 ~seed:3L ~horizon:30.0 () in
  check_all_decided "turquois fail-stop" o;
  check_validity "turquois fail-stop" 1 o

let test_turquois_byzantine_unanimous () =
  let o = run_protocol ~protocol:`Turquois ~n:7 ~proposals:(unanimous 7) ~byz:[ 5; 6 ] ~crash:[]
      ~loss:0.01 ~seed:4L ~horizon:30.0 () in
  check_all_decided "turquois byz" o;
  check_validity "turquois byz" 1 o

let test_turquois_byzantine_divergent () =
  let o = run_protocol ~protocol:`Turquois ~n:10 ~proposals:(divergent 10) ~byz:[ 7; 8; 9 ]
      ~crash:[] ~loss:0.01 ~seed:5L ~horizon:60.0 () in
  check_all_decided "turquois byz divergent" o

let test_turquois_heavy_loss () =
  let o = run_protocol ~protocol:`Turquois ~n:4 ~proposals:(divergent 4) ~byz:[] ~crash:[]
      ~loss:0.25 ~seed:6L ~horizon:60.0 () in
  check_all_decided "turquois heavy loss" o

let test_turquois_jamming_safety () =
  (* a long jam delays but never corrupts the outcome *)
  let o = run_protocol ~protocol:`Turquois ~n:4 ~proposals:(unanimous 4) ~byz:[] ~crash:[]
      ~loss:0.01 ~jam:[ (0.0, 0.2) ] ~seed:7L ~horizon:30.0 () in
  check_all_decided "turquois jam" o;
  check_validity "turquois jam" 1 o;
  List.iter
    (fun (_, _, t) -> Alcotest.(check bool) "decided after jam" true (t > 0.2))
    o.decided

let test_turquois_n16 () =
  let o = run_protocol ~protocol:`Turquois ~n:16 ~proposals:(divergent 16) ~byz:[] ~crash:[]
      ~loss:0.01 ~seed:8L ~horizon:60.0 () in
  check_all_decided "turquois n16" o

let test_turquois_total_loss_no_decision () =
  (* with 100% loss nobody can decide — but nothing crashes either *)
  let o = run_protocol ~protocol:`Turquois ~n:4 ~proposals:(unanimous 4) ~byz:[] ~crash:[]
      ~loss:1.0 ~seed:9L ~horizon:2.0 () in
  Alcotest.(check int) "no decisions" 0 (List.length o.decided)

(* --- Bracha -------------------------------------------------------------------- *)

let test_bracha_basic () =
  let o = run_protocol ~protocol:`Bracha ~n:4 ~proposals:(unanimous 4) ~byz:[] ~crash:[]
      ~loss:0.01 ~seed:10L ~horizon:60.0 () in
  check_all_decided "bracha" o;
  check_validity "bracha" 1 o

let test_bracha_divergent () =
  let o = run_protocol ~protocol:`Bracha ~n:4 ~proposals:(divergent 4) ~byz:[] ~crash:[]
      ~loss:0.01 ~seed:11L ~horizon:60.0 () in
  check_all_decided "bracha divergent" o

let test_bracha_failstop () =
  let o = run_protocol ~protocol:`Bracha ~n:7 ~proposals:(unanimous 7) ~byz:[] ~crash:[ 5; 6 ]
      ~loss:0.01 ~seed:12L ~horizon:60.0 () in
  check_all_decided "bracha fail-stop" o;
  check_validity "bracha fail-stop" 1 o

let test_bracha_byzantine () =
  let o = run_protocol ~protocol:`Bracha ~n:7 ~proposals:(unanimous 7) ~byz:[ 5; 6 ] ~crash:[]
      ~loss:0.01 ~seed:13L ~horizon:120.0 () in
  check_all_decided "bracha byz" o;
  check_validity "bracha byz" 1 o

(* --- ABBA ---------------------------------------------------------------------- *)

let test_abba_basic () =
  let o = run_protocol ~protocol:`Abba ~n:4 ~proposals:(unanimous 4) ~byz:[] ~crash:[]
      ~loss:0.01 ~seed:14L ~horizon:60.0 () in
  check_all_decided "abba" o;
  check_validity "abba" 1 o

let test_abba_divergent () =
  let o = run_protocol ~protocol:`Abba ~n:7 ~proposals:(divergent 7) ~byz:[] ~crash:[]
      ~loss:0.01 ~seed:15L ~horizon:60.0 () in
  check_all_decided "abba divergent" o

let test_abba_failstop () =
  let o = run_protocol ~protocol:`Abba ~n:7 ~proposals:(unanimous 7) ~byz:[] ~crash:[ 5; 6 ]
      ~loss:0.01 ~seed:16L ~horizon:60.0 () in
  check_all_decided "abba fail-stop" o;
  check_validity "abba fail-stop" 1 o

let test_abba_byzantine () =
  let o = run_protocol ~protocol:`Abba ~n:7 ~proposals:(divergent 7) ~byz:[ 5; 6 ] ~crash:[]
      ~loss:0.01 ~seed:17L ~horizon:120.0 () in
  check_all_decided "abba byz" o

(* --- cross-protocol comparisons -------------------------------------------------- *)

let test_relative_latency_ordering () =
  (* the paper's headline: Turquois is fastest, Bracha slowest *)
  let mean_latency protocol seed =
    let o = run_protocol ~protocol ~n:7 ~proposals:(unanimous 7) ~byz:[] ~crash:[]
        ~loss:0.01 ~seed ~horizon:120.0 () in
    Alcotest.(check int) "all decided" 5 (List.length o.decided |> min 5 |> max 5);
    List.fold_left (fun acc (_, _, t) -> acc +. t) 0.0 o.decided
    /. float_of_int (List.length o.decided)
  in
  let turquois = mean_latency `Turquois 20L in
  let abba = mean_latency `Abba 21L in
  let bracha = mean_latency `Bracha 22L in
  Alcotest.(check bool) "turquois < abba" true (turquois < abba);
  Alcotest.(check bool) "abba < bracha" true (abba < bracha);
  Alcotest.(check bool) "order of magnitude" true (bracha > 10.0 *. turquois)

let suite =
  ( "protocols-e2e",
    [
      Alcotest.test_case "turquois basic" `Quick test_turquois_basic;
      Alcotest.test_case "turquois divergent" `Quick test_turquois_divergent;
      Alcotest.test_case "turquois fail-stop" `Quick test_turquois_failstop;
      Alcotest.test_case "turquois byz unanimous" `Quick test_turquois_byzantine_unanimous;
      Alcotest.test_case "turquois byz divergent" `Slow test_turquois_byzantine_divergent;
      Alcotest.test_case "turquois heavy loss" `Quick test_turquois_heavy_loss;
      Alcotest.test_case "turquois jamming" `Quick test_turquois_jamming_safety;
      Alcotest.test_case "turquois n16" `Slow test_turquois_n16;
      Alcotest.test_case "turquois total loss" `Quick test_turquois_total_loss_no_decision;
      Alcotest.test_case "bracha basic" `Quick test_bracha_basic;
      Alcotest.test_case "bracha divergent" `Quick test_bracha_divergent;
      Alcotest.test_case "bracha fail-stop" `Quick test_bracha_failstop;
      Alcotest.test_case "bracha byzantine" `Slow test_bracha_byzantine;
      Alcotest.test_case "abba basic" `Quick test_abba_basic;
      Alcotest.test_case "abba divergent" `Quick test_abba_divergent;
      Alcotest.test_case "abba fail-stop" `Quick test_abba_failstop;
      Alcotest.test_case "abba byzantine" `Slow test_abba_byzantine;
      Alcotest.test_case "latency ordering" `Slow test_relative_latency_ordering;
    ] )
