(* Tests of the deterministic run pool and its determinism contract:
   seed-from-coordinates derivation, slot-indexed collection, and the
   bit-identical-across-jobs guarantee on the real sweep harness. *)

module P = Harness.Pool

(* --- Pool unit behaviour ---------------------------------------------------- *)

let test_map_identity () =
  let r = P.map ~jobs:4 ~tasks:100 (fun i -> i * i) in
  Alcotest.(check int) "length" 100 (Array.length r);
  Array.iteri (fun i v -> Alcotest.(check int) "slot" (i * i) v) r

let test_map_zero_tasks () =
  Alcotest.(check int) "empty" 0 (Array.length (P.map ~jobs:4 ~tasks:0 (fun i -> i)))

let test_map_more_jobs_than_tasks () =
  let r = P.map ~jobs:16 ~tasks:3 (fun i -> i + 1) in
  Alcotest.(check (array int)) "clamped" [| 1; 2; 3 |] r

let test_map_sequential_path () =
  (* jobs = 1 must not spawn and must still fill every slot in order *)
  let log = ref [] in
  let r =
    P.map ~jobs:1 ~tasks:5 (fun i ->
        log := i :: !log;
        i)
  in
  Alcotest.(check (list int)) "in-order execution" [ 0; 1; 2; 3; 4 ] (List.rev !log);
  Alcotest.(check (array int)) "slots" [| 0; 1; 2; 3; 4 |] r

let test_map_bad_args () =
  Alcotest.check_raises "jobs < 1" (Invalid_argument "Pool.map: jobs < 1") (fun () ->
      ignore (P.map ~jobs:0 ~tasks:1 (fun i -> i)));
  Alcotest.check_raises "tasks < 0" (Invalid_argument "Pool.map: tasks < 0") (fun () ->
      ignore (P.map ~jobs:1 ~tasks:(-1) (fun i -> i)))

exception Task_failed of int

let test_map_exception_lowest_index () =
  (* several tasks fail; the caller must deterministically see the
     lowest-indexed failure regardless of which domain hit its task
     first *)
  for _ = 1 to 5 do
    match P.map ~jobs:4 ~tasks:50 (fun i -> if i mod 7 = 3 then raise (Task_failed i)) with
    | exception Task_failed i -> Alcotest.(check int) "lowest failing task" 3 i
    | _ -> Alcotest.fail "expected Task_failed"
  done

let test_map_list () =
  let r = P.map_list ~jobs:4 [ "a"; "bb"; "ccc" ] String.length in
  Alcotest.(check (list int)) "lengths in order" [ 1; 2; 3 ] r

let test_default_jobs_positive () =
  Alcotest.(check bool) "at least one" true (P.default_jobs () >= 1)

let test_map_scoped_isolates_metrics () =
  (* each task's counter lands in its own snapshot; the caller's
     registry is untouched *)
  Obs.Metrics.reset ();
  let r =
    P.map_scoped ~jobs:2 ~tasks:4 (fun i ->
        Obs.Metrics.incr ~by:(i + 1) "pool.test";
        i)
  in
  Array.iteri
    (fun i (v, snap) ->
      Alcotest.(check int) "value" i v;
      Alcotest.(check int) "own count" (i + 1)
        (Obs.Metrics.counter_value snap "pool.test"))
    r;
  Alcotest.(check int) "caller registry clean" 0
    (Obs.Metrics.counter_value (Obs.Metrics.snapshot ()) "pool.test")

(* --- seed derivation regression --------------------------------------------- *)

let test_run_seed_distinct_per_adversary () =
  (* the old additive scheme (base + omissions*1009 + run) fed both
     adversaries the same seed at every grid point, so their sweeps
     were correlated sample-for-sample *)
  let s adversary =
    Harness.Sweeps.run_seed ~base_seed:1000L ~adversary ~omissions:2 ~run:5
  in
  Alcotest.(check bool) "adversaries draw independent seeds" true
    (s Harness.Abstract_rounds.Random_omissions
    <> s Harness.Abstract_rounds.Target_victims)

let test_run_seed_no_grid_collisions () =
  (* the old scheme collided as soon as runs_per_point reached 1009:
     (omissions, run) = (0, 1009) and (1, 0) mapped to one seed *)
  let seen = Hashtbl.create 50000 in
  let collisions = ref 0 in
  List.iter
    (fun adversary ->
      for omissions = 0 to 3 do
        for run = 0 to 1100 do
          let seed = Harness.Sweeps.run_seed ~base_seed:1000L ~adversary ~omissions ~run in
          if Hashtbl.mem seen seed then incr collisions;
          Hashtbl.replace seen seed ()
        done
      done)
    [ Harness.Abstract_rounds.Random_omissions; Harness.Abstract_rounds.Target_victims ];
  Alcotest.(check int) "collision-free past runs_per_point = 1009" 0 !collisions

let test_rng_derive_order_sensitive () =
  let d coords = Util.Rng.derive ~base:42L coords in
  Alcotest.(check bool) "order matters" true (d [ 1; 2 ] <> d [ 2; 1 ]);
  Alcotest.(check bool) "stable" true (d [ 1; 2; 3 ] = d [ 1; 2; 3 ]);
  Alcotest.(check bool) "base matters" true
    (Util.Rng.derive ~base:1L [ 7 ] <> Util.Rng.derive ~base:2L [ 7 ])

(* --- determinism across jobs on the real harness ----------------------------- *)

let test_sigma_sweep_identical_across_jobs () =
  let sweep jobs =
    Harness.Sweeps.sigma_sweep_merged ~n:4 ~k:3 ~runs_per_point:3 ~rounds:40 ~beyond:2
      ~base_seed:77L ~jobs ()
  in
  let rows1, metrics1 = sweep 1 in
  let rows4, metrics4 = sweep 4 in
  Alcotest.(check bool) "rows byte-identical" true (rows1 = rows4);
  Alcotest.(check bool) "merged metrics identical" true
    (Obs.Metrics.render_table metrics1 = Obs.Metrics.render_table metrics4
    && metrics1 = metrics4)

let test_run_cell_identical_across_jobs () =
  let cell =
    { Harness.Experiment.protocol = Harness.Runner.Turquois; n = 4;
      dist = Harness.Runner.Divergent; load = Net.Fault.Failure_free }
  in
  let run jobs = Harness.Experiment.run_cell ~reps:4 ~base_seed:90L ~jobs cell in
  let a = run 1 and b = run 3 in
  Alcotest.(check bool) "summaries identical" true (a.summary = b.summary);
  Alcotest.(check bool) "phase summaries identical" true (a.phase_summary = b.phase_summary);
  Alcotest.(check (float 0.0)) "decided fraction identical" a.decided_fraction
    b.decided_fraction

let test_chaos_identical_across_jobs () =
  let run jobs =
    Harness.Chaos.run_chaos ~n:4 ~protocols:[ Harness.Runner.Turquois ] ~jobs ~runs:4
      ~seed:5L ()
  in
  let a = run 1 and b = run 4 in
  Alcotest.(check int) "same liveness count" a.liveness_checked b.liveness_checked;
  Alcotest.(check bool) "same failures" true (a.failures = b.failures)

let test_metrics_merge () =
  let snap counts =
    snd
      (Obs.Scope.with_run (fun () ->
           List.iter (fun (name, v) -> Obs.Metrics.incr ~by:v name) counts))
  in
  let merged =
    Obs.Metrics.merge [ snap [ ("a", 1); ("b", 10) ]; snap [ ("a", 2) ] ]
  in
  Alcotest.(check int) "a summed" 3 (Obs.Metrics.counter_value merged "a");
  Alcotest.(check int) "b kept" 10 (Obs.Metrics.counter_value merged "b")

let suite =
  ( "pool",
    [
      Alcotest.test_case "map identity" `Quick test_map_identity;
      Alcotest.test_case "map zero tasks" `Quick test_map_zero_tasks;
      Alcotest.test_case "jobs clamped to tasks" `Quick test_map_more_jobs_than_tasks;
      Alcotest.test_case "sequential path" `Quick test_map_sequential_path;
      Alcotest.test_case "bad args" `Quick test_map_bad_args;
      Alcotest.test_case "exception lowest index" `Quick test_map_exception_lowest_index;
      Alcotest.test_case "map_list" `Quick test_map_list;
      Alcotest.test_case "default jobs" `Quick test_default_jobs_positive;
      Alcotest.test_case "scoped metrics isolation" `Quick test_map_scoped_isolates_metrics;
      Alcotest.test_case "run_seed per adversary" `Quick test_run_seed_distinct_per_adversary;
      Alcotest.test_case "run_seed no collisions" `Quick test_run_seed_no_grid_collisions;
      Alcotest.test_case "derive order sensitive" `Quick test_rng_derive_order_sensitive;
      Alcotest.test_case "sweep identical across jobs" `Quick
        test_sigma_sweep_identical_across_jobs;
      Alcotest.test_case "cell identical across jobs" `Quick
        test_run_cell_identical_across_jobs;
      Alcotest.test_case "chaos identical across jobs" `Slow test_chaos_identical_across_jobs;
      Alcotest.test_case "metrics merge" `Quick test_metrics_merge;
    ] )
