(* Tests of the bounded exhaustive model checker and the replayable
   reproducer codec: exhaustive sigma tightness at the small group
   sizes, jobs-independence of the walk, artifact round-trips through
   JSON and through replay, and graceful degradation past the state
   cap. *)

module C = Model.Checker
module Codec = Model.Codec
module Replay = Model.Replay

let silent = [ Core.Strategy.silent ]

let stall_of (artifact : Codec.rounds_artifact) =
  match artifact.r_expect with
  | Codec.Stall { deciders; advanced } -> (deciders, advanced)
  | _ -> Alcotest.fail "expected a stall artifact"

(* (worst artifact, min deciders, min advanced) of a [Safe] outcome *)
let safe_exn = function
  | C.Safe { worst; min_deciders; min_advanced } -> (worst, min_deciders, min_advanced)
  | C.Violation artifact ->
      Alcotest.fail
        ("unexpected violation: "
        ^
        match artifact.r_expect with
        | Codec.Violations vs -> String.concat "; " vs
        | _ -> "?")

(* --- exhaustive sigma tightness --------------------------------------------- *)

(* n=4, k=3, t=1: sigma = 1 and the per-victim blocking cost is also 1,
   so the bound is exactly tight — over ALL omission patterns, budget
   sigma admits a stall and budget sigma-1 provably cannot block k
   processes. This upgrades the sampled Sigma_edge single_round check to
   an exhaustive proof at this point. *)
let test_exhaustive_sigma_n4 () =
  let check ~budget ~exact =
    let cfg =
      C.config ~n:4 ~byzantine:[ 3 ] ~budget ~exact_budget:exact ~alphabet:silent ~rounds:1
        ~jobs:1 ()
    in
    safe_exn (C.check cfg).outcome
  in
  let sigma = Harness.Abstract_rounds.sigma ~n:4 ~k:3 ~t:1 in
  Alcotest.(check int) "sigma(4,3,1)" 1 sigma;
  let _, _, at_sigma = check ~budget:sigma ~exact:true in
  Alcotest.(check bool) "a stall exists at budget sigma" true (at_sigma < 3);
  let _, _, below = check ~budget:(sigma - 1) ~exact:false in
  Alcotest.(check bool) "no pattern below sigma stalls" true (below >= 3)

(* n=5, k=4, t=1: sigma = 2, but under the machine's (n+f)/2 quorum a
   single dropped transmission already leaves its receiver one short —
   the exhaustive walk shows the formula is an upper bound here, not the
   exact threshold (blocking cost 1 < sigma). Both facts are pinned:
   budget sigma stalls, and so does the cheaper single-drop schedule. *)
let test_exhaustive_sigma_n5 () =
  let check ~budget ~exact =
    let cfg =
      C.config ~n:5 ~byzantine:[ 4 ] ~budget ~exact_budget:exact ~alphabet:silent ~rounds:1
        ~jobs:1 ()
    in
    safe_exn (C.check cfg).outcome
  in
  let sigma = Harness.Abstract_rounds.sigma ~n:5 ~k:4 ~t:1 in
  Alcotest.(check int) "sigma(5,4,1)" 2 sigma;
  let _, _, at_sigma = check ~budget:sigma ~exact:true in
  Alcotest.(check bool) "a stall exists at budget sigma" true (at_sigma < 4);
  let _, _, one = check ~budget:1 ~exact:true in
  Alcotest.(check bool) "formula is conservative at n=5: one drop stalls" true (one < 4);
  let _, _, zero = check ~budget:0 ~exact:false in
  Alcotest.(check bool) "zero omissions cannot stall" true (zero >= 4)

(* The extracted worst-case schedule is a first-class reproducer: replay
   re-executes it and lands on the recorded (deciders, advanced) point;
   tampering with the expectation is detected. *)
let test_worst_schedule_replays () =
  let cfg =
    C.config ~n:4 ~byzantine:[ 3 ] ~budget:1 ~exact_budget:true ~alphabet:silent ~rounds:1
      ~jobs:1 ()
  in
  let worst, _, _ = safe_exn (C.check cfg).outcome in
  let d, a = stall_of worst in
  Alcotest.(check int) "worst schedule stalls one victim" 2 a;
  let v = Replay.run (Codec.Rounds worst) in
  Alcotest.(check bool) ("replay reproduces: " ^ v.detail) true v.ok;
  let tampered = { worst with r_expect = Codec.Stall { deciders = d; advanced = a + 1 } } in
  Alcotest.(check bool) "tampered expectation is detected" false
    (Replay.run (Codec.Rounds tampered)).ok

(* --- jobs-independence -------------------------------------------------------- *)

let test_walk_jobs_independent () =
  let run jobs =
    C.check (C.config ~n:4 ~rounds:2 ~jobs ())
  in
  let r1 = run 1 and r2 = run 2 in
  Alcotest.(check bool) "identical outcome at -j 1 and -j 2" true (r1.outcome = r2.outcome);
  Alcotest.(check bool) "identical stats at -j 1 and -j 2" true (r1.stats = r2.stats)

(* --- the state cap ------------------------------------------------------------ *)

let test_state_cap_degrades_gracefully () =
  Obs.Metrics.reset ();
  let base = C.check (C.config ~n:4 ~rounds:2 ~jobs:1 ()) in
  let capped = C.check (C.config ~n:4 ~rounds:2 ~jobs:1 ~max_states:10 ()) in
  Alcotest.(check bool) "lossy dedup left the outcome exact" true
    (base.outcome = capped.outcome);
  Alcotest.(check bool) "pruning was exercised" true (capped.stats.pruned > 0);
  Alcotest.(check bool) "model.pruned metric recorded" true
    (Obs.Metrics.counter_value (Obs.Metrics.snapshot ()) "model.pruned" > 0)

(* --- codec round-trips -------------------------------------------------------- *)

let roundtrip artifact =
  match Codec.of_json (Codec.to_json artifact) with
  | Ok a -> a
  | Error msg -> Alcotest.fail ("codec round-trip: " ^ msg)

let test_codec_rounds_roundtrip () =
  let artifact =
    Codec.Rounds
      {
        r_n = 4;
        r_k = 3;
        r_byzantine = [ 3 ];
        r_dist = Harness.Runner.Divergent;
        r_seed = 0x7FFF_FFFF_FFFF_FF13L;
        r_budget = 1;
        r_rounds =
          [
            { Codec.drops = [ (0, 1); (2, 0) ]; byz = [ (3, "silent") ] };
            { Codec.drops = []; byz = [ (3, "value-flip") ] };
          ];
        r_expect = Codec.Stall { deciders = 0; advanced = 2 };
        r_note = "round-trip fixture";
      }
  in
  Alcotest.(check bool) "rounds artifact survives JSON" true (roundtrip artifact = artifact);
  match artifact with
  | Codec.Rounds a ->
      Alcotest.(check (list int)) "delivered counts" [ 4; 6 ] (Codec.delivered_per_round a)
  | _ -> assert false

let test_codec_radio_roundtrip () =
  let module S = Net.Schedule in
  let artifact =
    Codec.Radio
      {
        c_protocol = Harness.Runner.Bracha;
        c_n = 4;
        c_dist = Harness.Runner.Unanimous;
        c_strategy = Some "equivocate";
        c_seed = 424242L;
        c_bug = true;
        c_schedule =
          [
            { S.at = 0.01; action = S.Crash 2 };
            { S.at = 0.05; action = S.Recover 2 };
            { S.at = 0.1; action = S.Set_loss 0.25 };
            { S.at = 0.12; action = S.Set_rx_loss { rx = 1; p = 0.5 } };
            { S.at = 0.15; action = S.Set_link_loss { tx = 0; rx = 3; p = 1.0 } };
            { S.at = 0.2; action = S.Jam { until = 0.3 } };
            { S.at = 0.32; action = S.Jam_rx { rx = 0; until = 0.4 } };
            { S.at = 0.45; action = S.Delay_rx { rx = 2; delay = 0.02; until = 0.6 } };
          ];
        c_expect = [ "agreement: p0 decided 1, p1 decided 0" ];
        c_note = "round-trip fixture";
      }
  in
  Alcotest.(check bool) "radio artifact survives JSON" true (roundtrip artifact = artifact);
  Alcotest.(check bool) "unknown strategy rejected" true
    (match
       Codec.of_json
         (Codec.to_json
            (match artifact with
            | Codec.Radio a -> Codec.Radio { a with c_strategy = Some "no_such" }
            | r -> r))
     with
    | Error _ -> true
    | Ok _ -> false)

(* --- chaos reproducer round-trip ---------------------------------------------- *)

(* The harness's own negative test doubles as the reproducer fixture: a
   planted broken machine fails, the minimal schedule is serialized in
   the model-checker codec, and a saved reproducer must still fail
   identically after a load/replay cycle. *)
let test_chaos_repro_roundtrip () =
  let bug = Harness.Chaos.Flip_reported_decision in
  let report = Harness.Chaos.run_chaos ~n:4 ~bug ~runs:3 ~jobs:1 ~seed:7L () in
  match report.failures with
  | [] -> Alcotest.fail "planted bug produced no failure"
  | f :: _ ->
      let strategy = Option.map (fun s -> Option.get (Core.Strategy.of_string s)) f.strategy in
      let violations =
        Harness.Chaos.check_schedule ~protocol:f.protocol ~n:4 ~bug ~dist:f.dist ?strategy
          ~schedule:f.shrunk ~seed:f.seed ()
      in
      Alcotest.(check bool) "minimal schedule still fails" true (violations <> []);
      let artifact =
        Codec.Radio
          {
            c_protocol = f.protocol;
            c_n = 4;
            c_dist = f.dist;
            c_strategy = f.strategy;
            c_seed = f.seed;
            c_bug = true;
            c_schedule = f.shrunk;
            c_expect = violations;
            c_note = "chaos negative-test reproducer";
          }
      in
      let path = Filename.temp_file "turquois_repro" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Codec.save path artifact;
          match Codec.load path with
          | Error msg -> Alcotest.fail ("load: " ^ msg)
          | Ok loaded ->
              Alcotest.(check bool) "artifact survives the file" true (loaded = artifact);
              let v = Replay.run loaded in
              Alcotest.(check bool) ("reproducer still fails identically: " ^ v.detail) true
                v.ok)

(* --- driven sim vs the sampled adversary --------------------------------------- *)

(* The Driven stepper and single_round agree on the zero-omission case:
   everything delivered, everyone advances. Ties the new execution hook
   back to the code path the sampled tests exercise. *)
let test_driven_matches_single_round () =
  let module D = Harness.Abstract_rounds.Driven in
  let sampled =
    Harness.Abstract_rounds.single_round ~n:4 ~k:3 ~byzantine:[ 3 ] ~omissions:0 ~seed:5L ()
  in
  let sim = D.create ~n:4 ~k:3 ~byzantine:[ 3 ] ~horizon:1 ~seed:5L () in
  D.step sim ~drops:[] ~byz:[];
  Alcotest.(check int) "advanced agrees with single_round" sampled (D.advanced sim);
  Alcotest.(check (list string)) "no violations" [] (D.violations sim)

let suite =
  ( "model",
    [
      Alcotest.test_case "exhaustive sigma n=4" `Quick test_exhaustive_sigma_n4;
      Alcotest.test_case "exhaustive sigma n=5" `Quick test_exhaustive_sigma_n5;
      Alcotest.test_case "worst schedule replays" `Quick test_worst_schedule_replays;
      Alcotest.test_case "walk jobs-independent" `Slow test_walk_jobs_independent;
      Alcotest.test_case "state cap degrades gracefully" `Slow test_state_cap_degrades_gracefully;
      Alcotest.test_case "codec rounds round-trip" `Quick test_codec_rounds_roundtrip;
      Alcotest.test_case "codec radio round-trip" `Quick test_codec_radio_roundtrip;
      Alcotest.test_case "chaos reproducer round-trip" `Slow test_chaos_repro_roundtrip;
      Alcotest.test_case "driven matches single_round" `Quick test_driven_matches_single_round;
    ] )
