(* Tests of the fault-injection subsystem: schedules, the Byzantine
   strategy library, the sigma-edge adversary's tightness at the bound,
   and the chaos harness (including its own negative test). *)

module S = Net.Schedule
module AR = Harness.Abstract_rounds

(* --- schedules ------------------------------------------------------------- *)

let test_schedule_random_deterministic () =
  let make seed = S.random ~rng:(Util.Rng.create ~seed) ~n:5 ~duration:0.5 () in
  Alcotest.(check string) "same seed, same schedule" (S.to_string (make 9L))
    (S.to_string (make 9L));
  Alcotest.(check bool) "different seed, different schedule" true
    (S.to_string (make 9L) <> S.to_string (make 10L))

let test_schedule_quiet_after () =
  let quiet =
    [
      { S.at = 0.1; action = S.Set_loss 0.4 };
      { S.at = 0.2; action = S.Jam_rx { rx = 1; until = 0.35 } };
      { S.at = 0.3; action = S.Set_loss 0.0 };
    ]
  in
  (match S.quiet_after quiet with
  | Some h -> Alcotest.(check (float 1e-9)) "horizon covers the jam window" 0.35 h
  | None -> Alcotest.fail "expected a quiet horizon");
  let residual = [ { S.at = 0.1; action = S.Set_rx_loss { rx = 2; p = 0.5 } } ] in
  Alcotest.(check bool) "residual overlay is never quiet" true
    (S.quiet_after residual = None);
  let crash_only = [ { S.at = 0.1; action = S.Crash 0 } ] in
  Alcotest.(check bool) "unrecovered crash is never quiet" true
    (S.quiet_after crash_only = None);
  let crash_recover =
    [ { S.at = 0.1; action = S.Crash 0 }; { S.at = 0.2; action = S.Recover 0 } ]
  in
  Alcotest.(check bool) "recovered crash is quiet" true
    (S.quiet_after crash_recover <> None)

let test_schedule_random_is_quiet () =
  (* the generator's contract: every random schedule is provably quiet *)
  for seed = 1 to 20 do
    let sched =
      S.random ~rng:(Util.Rng.create ~seed:(Int64.of_int seed)) ~n:6 ~duration:0.4 ()
    in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d quiet" seed)
      true
      (S.quiet_after sched <> None)
  done

let test_schedule_shrink () =
  let sched =
    [
      { S.at = 0.1; action = S.Set_loss 0.2 };
      { S.at = 0.2; action = S.Crash 1 };
      { S.at = 0.3; action = S.Recover 1 };
    ]
  in
  let candidates = S.shrink_candidates sched in
  Alcotest.(check bool) "has candidates" true (candidates <> []);
  List.iter
    (fun c ->
      Alcotest.(check bool) "strictly smaller" true (List.length c < List.length sched))
    candidates;
  Alcotest.(check (list int)) "singleton shrinks to empty only" [ 0 ]
    (List.map List.length (S.shrink_candidates [ List.hd sched ]))

(* --- strategy library ------------------------------------------------------- *)

let test_strategy_lookup () =
  List.iter
    (fun s ->
      match Core.Strategy.of_string (Core.Strategy.name s) with
      | Some found ->
          Alcotest.(check string) "roundtrip" (Core.Strategy.name s)
            (Core.Strategy.name found)
      | None -> Alcotest.fail ("of_string failed for " ^ Core.Strategy.name s))
    Core.Strategy.all;
  Alcotest.(check bool) "unknown" true (Core.Strategy.of_string "no-such" = None)

(* A machine driven by a strategy produces the shape the strategy
   declares: silent => Quiet, equivocate => per-receiver frames. *)
let strategy_machine strategy =
  let cfg = Core.Proto.default_config ~n:4 in
  let rng = Util.Rng.create ~seed:77L in
  let keyrings = Core.Keyring.setup (Util.Rng.split rng) ~n:4 ~phases:cfg.max_phases () in
  Core.Machine.create cfg ~keyring:keyrings.(3) ~rng
    ~behavior:(Core.Machine.Byzantine strategy) ~proposal:1 ()

let test_strategy_shapes () =
  (match Core.Machine.emit (strategy_machine Core.Strategy.silent) ~justify:false with
  | Core.Machine.Quiet -> ()
  | _ -> Alcotest.fail "silent should be Quiet");
  (match Core.Machine.emit (strategy_machine Core.Strategy.equivocate) ~justify:false with
  | Core.Machine.Per_receiver frames ->
      Alcotest.(check int) "one frame per other process" 3 (List.length frames);
      List.iter
        (fun (rx, (env : Core.Message.envelope)) ->
          let expected = if rx mod 2 = 0 then Core.Proto.V0 else Core.Proto.V1 in
          Alcotest.(check bool)
            (Printf.sprintf "value for rx %d" rx)
            true
            (Core.Proto.value_equal expected env.msg.value))
        frames
  | _ -> Alcotest.fail "equivocate should be Per_receiver");
  (match Core.Machine.emit (strategy_machine Core.Strategy.stale_replay) ~justify:false with
  | Core.Machine.Broadcast env ->
      Alcotest.(check int) "replays phase 1" 1 env.msg.phase
  | _ -> Alcotest.fail "stale_replay should be Broadcast")

let test_forged_signature_rejected () =
  (* every forged frame must die at authenticity validation *)
  match Core.Machine.emit (strategy_machine Core.Strategy.forge_sig) ~justify:false with
  | Core.Machine.Broadcast env ->
      let cfg = Core.Proto.default_config ~n:4 in
      let rng = Util.Rng.create ~seed:77L in
      let keyrings =
        Core.Keyring.setup (Util.Rng.split rng) ~n:4 ~phases:cfg.max_phases ()
      in
      Alcotest.(check bool) "rejected" false
        (Core.Keyring.check_message keyrings.(0) env.msg)
  | _ -> Alcotest.fail "forge_sig should broadcast"

(* --- sigma tightness (single synchronous round) ----------------------------- *)

(* At (n,k,t) points where the per-victim blocking cost equals k-2, the
   sigma-edge adversary with budget exactly sigma leaves fewer than k
   processes able to advance, while sigma-1 cannot block the last
   victim. Deterministic: the adversary's pattern is seed-independent. *)
let check_sigma_edge ~n ~k ~t ~byzantine =
  let sigma = AR.sigma ~n ~k ~t in
  let probe omissions seed =
    AR.single_round ~n ~k ~byzantine ~adversary:AR.Sigma_edge ~omissions
      ~seed:(Int64.of_int seed) ()
  in
  for seed = 1 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "n=%d: sigma omissions stall (seed %d)" n seed)
      true
      (probe sigma seed < k);
    Alcotest.(check bool)
      (Printf.sprintf "n=%d: sigma-1 omissions cannot stall (seed %d)" n seed)
      true
      (probe (sigma - 1) seed >= k)
  done

let test_sigma_edge_n4 () = check_sigma_edge ~n:4 ~k:3 ~t:1 ~byzantine:[ 3 ]
let test_sigma_edge_n7 () = check_sigma_edge ~n:7 ~k:5 ~t:0 ~byzantine:[]

(* --- chaos harness ---------------------------------------------------------- *)

let test_chaos_clean_sweep () =
  let report = Harness.Chaos.run_chaos ~n:4 ~runs:12 ~seed:4242L () in
  Alcotest.(check int) "all runs executed" 12 report.runs;
  Alcotest.(check (list string)) "no violations" []
    (List.concat_map (fun (f : Harness.Chaos.failure) -> f.violations) report.failures);
  Alcotest.(check bool) "some schedules allowed the liveness check" true
    (report.liveness_checked > 0)

let test_chaos_detects_broken_machine () =
  (* the harness's own negative test: a machine that reports a flipped
     decision must be flagged on a fault-free unanimous run *)
  let report =
    Harness.Chaos.run_chaos ~n:4 ~bug:Harness.Chaos.Flip_reported_decision
      ~protocols:[ Harness.Runner.Turquois ] ~runs:4 ~seed:4242L ()
  in
  Alcotest.(check bool) "violations detected" true (report.failures <> []);
  List.iter
    (fun (f : Harness.Chaos.failure) ->
      Alcotest.(check bool) "agreement or validity named" true
        (List.exists
           (fun v ->
             String.length v >= 9
             && (String.sub v 0 9 = "agreement" || String.sub v 0 8 = "validity"))
           f.violations))
    report.failures

let test_chaos_deterministic () =
  let describe (r : Harness.Chaos.report) =
    Printf.sprintf "%d/%d/%d" r.runs r.liveness_checked (List.length r.failures)
  in
  let a = Harness.Chaos.run_chaos ~n:4 ~runs:6 ~seed:99L () in
  let b = Harness.Chaos.run_chaos ~n:4 ~runs:6 ~seed:99L () in
  Alcotest.(check string) "same seed, same report" (describe a) (describe b)

let test_chaos_shrinks_to_empty () =
  (* a schedule-independent bug must shrink to the empty schedule *)
  let report =
    Harness.Chaos.run_chaos ~n:4 ~bug:Harness.Chaos.Flip_reported_decision
      ~protocols:[ Harness.Runner.Turquois ] ~runs:2 ~seed:4242L ()
  in
  match report.failures with
  | [] -> Alcotest.fail "expected at least one failure"
  | f :: _ -> Alcotest.(check int) "minimal reproducer is empty" 0 (List.length f.shrunk)

(* --- runner integration ------------------------------------------------------ *)

let test_runner_strategy_safe () =
  (* every built-in strategy against the radio shell: safety must hold
     and the correct majority must still decide *)
  List.iter
    (fun strategy ->
      let r =
        Harness.Runner.run ~protocol:Harness.Runner.Turquois ~n:4
          ~dist:Harness.Runner.Divergent ~load:Net.Fault.Byzantine
          ~conditions:{ Net.Fault.loss_prob = 0.0; jam_windows = [] }
          ~strategy ~timeout:30.0 ~seed:31L ()
      in
      let name = Core.Strategy.name strategy in
      Alcotest.(check bool) (name ^ ": agreement") true r.agreement;
      Alcotest.(check bool) (name ^ ": all correct decide") false r.timed_out)
    Core.Strategy.all

let test_runner_schedule_applies () =
  (* a mid-run crash-and-recover schedule: faults are injected (visible
     in metrics) and the run still completes safely *)
  (* the run ends when every process has decided, so all entries must
     fire before that: the crash window itself holds the run open *)
  let schedule =
    [
      { S.at = 0.001; action = S.Crash 0 };
      { S.at = 0.002; action = S.Set_loss 0.2 };
      { S.at = 0.004; action = S.Set_loss 0.0 };
      { S.at = 0.03; action = S.Recover 0 };
    ]
  in
  let r =
    Harness.Runner.run ~protocol:Harness.Runner.Turquois ~n:4
      ~dist:Harness.Runner.Unanimous ~load:Net.Fault.Failure_free
      ~conditions:{ Net.Fault.loss_prob = 0.0; jam_windows = [] }
      ~schedule ~timeout:60.0 ~seed:17L ()
  in
  Alcotest.(check bool) "agreement" true r.agreement;
  Alcotest.(check bool) "completes" false r.timed_out;
  Alcotest.(check int) "all four injections counted" 4
    (Obs.Metrics.sum_counters r.metrics "fault.injected")

(* --- analyzer attributes stalls to injected faults ------------------------- *)

let test_analyze_attributes_faults () =
  let module T = Obs.Trace2 in
  let ev ~time ~node ~layer ~label fields = { T.time; node; layer; label; fields } in
  let phase ~time ~node p =
    ev ~time ~node ~layer:"turquois" ~label:"phase" [ ("phase", T.I p) ]
  in
  (* four quick phase windows then one long one: the last window stalls
     (>3x median) and overlaps both injected faults *)
  let events =
    [
      ev ~time:0.005 ~node:(-1) ~layer:"fault" ~label:"set_loss" [ ("p", T.F 0.5) ];
      phase ~time:0.00 ~node:0 1;
      phase ~time:0.01 ~node:0 2;
      phase ~time:0.02 ~node:0 3;
      phase ~time:0.03 ~node:0 4;
      ev ~time:0.035 ~node:(-1) ~layer:"fault" ~label:"crash" [ ("node", T.I 0) ];
      phase ~time:0.20 ~node:0 5;
    ]
  in
  let report = Obs.Analyze.analyze ~n:4 ~k:3 ~t:0 events in
  let contains sub =
    let ls = String.length sub and lr = String.length report in
    let rec go i = i + ls <= lr && (String.sub report i ls = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "stall detected" true (contains "STALL");
  Alcotest.(check bool)
    "loss overlay in force at window start" true (contains "loss=50%");
  Alcotest.(check bool)
    "crash injected during the window" true (contains "crash p0")

let suite =
  ( "chaos",
    [
      Alcotest.test_case "schedule deterministic" `Quick test_schedule_random_deterministic;
      Alcotest.test_case "schedule quiet-after" `Quick test_schedule_quiet_after;
      Alcotest.test_case "random schedules quiet" `Quick test_schedule_random_is_quiet;
      Alcotest.test_case "schedule shrink" `Quick test_schedule_shrink;
      Alcotest.test_case "strategy lookup" `Quick test_strategy_lookup;
      Alcotest.test_case "strategy shapes" `Quick test_strategy_shapes;
      Alcotest.test_case "forged signature rejected" `Quick test_forged_signature_rejected;
      Alcotest.test_case "sigma edge tight n=4" `Quick test_sigma_edge_n4;
      Alcotest.test_case "sigma edge tight n=7" `Quick test_sigma_edge_n7;
      Alcotest.test_case "chaos clean sweep" `Slow test_chaos_clean_sweep;
      Alcotest.test_case "chaos detects broken machine" `Quick test_chaos_detects_broken_machine;
      Alcotest.test_case "chaos deterministic" `Slow test_chaos_deterministic;
      Alcotest.test_case "chaos shrinks to empty" `Quick test_chaos_shrinks_to_empty;
      Alcotest.test_case "runner strategies safe" `Slow test_runner_strategy_safe;
      Alcotest.test_case "runner schedule applies" `Quick test_runner_schedule_applies;
      Alcotest.test_case "analyze attributes faults" `Quick test_analyze_attributes_faults;
    ] )
