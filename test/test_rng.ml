(* Unit and property tests for Util.Rng. *)

let test_determinism () =
  let a = Util.Rng.create ~seed:42L in
  let b = Util.Rng.create ~seed:42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Util.Rng.bits64 a) (Util.Rng.bits64 b)
  done

let test_distinct_seeds () =
  let a = Util.Rng.create ~seed:1L in
  let b = Util.Rng.create ~seed:2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Util.Rng.bits64 a = Util.Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_split_independence () =
  let parent = Util.Rng.create ~seed:7L in
  let child = Util.Rng.split parent in
  let c1 = Util.Rng.bits64 child in
  (* drawing from the parent must not affect the child's stream *)
  let parent2 = Util.Rng.create ~seed:7L in
  let child2 = Util.Rng.split parent2 in
  ignore (Util.Rng.bits64 parent2);
  Alcotest.(check int64) "child independent of parent draws" c1 (Util.Rng.bits64 child2)

let test_copy () =
  let a = Util.Rng.create ~seed:3L in
  ignore (Util.Rng.bits64 a);
  let b = Util.Rng.copy a in
  Alcotest.(check int64) "copy continues the stream" (Util.Rng.bits64 a) (Util.Rng.bits64 b)

let test_int_bounds () =
  let rng = Util.Rng.create ~seed:11L in
  for _ = 1 to 1000 do
    let v = Util.Rng.int rng 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done

let test_int_rejects_bad_bound () =
  let rng = Util.Rng.create ~seed:11L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Util.Rng.int rng 0))

let test_int_covers_all_values () =
  let rng = Util.Rng.create ~seed:13L in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Util.Rng.int rng 5) <- true
  done;
  Array.iteri (fun i s -> Alcotest.(check bool) (Printf.sprintf "value %d drawn" i) true s) seen

let test_float_bounds () =
  let rng = Util.Rng.create ~seed:17L in
  for _ = 1 to 1000 do
    let v = Util.Rng.float rng 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

let test_coin_unbiased () =
  let rng = Util.Rng.create ~seed:19L in
  let ones = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    ones := !ones + Util.Rng.coin rng
  done;
  let ratio = float_of_int !ones /. float_of_int n in
  Alcotest.(check bool) "roughly fair" true (ratio > 0.47 && ratio < 0.53)

let test_bernoulli_rate () =
  let rng = Util.Rng.create ~seed:23L in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Util.Rng.bernoulli rng 0.1 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "close to p" true (rate > 0.085 && rate < 0.115)

let test_bernoulli_extremes () =
  let rng = Util.Rng.create ~seed:29L in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Util.Rng.bernoulli rng 0.0)
  done;
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 always" true (Util.Rng.bernoulli rng 1.0)
  done

let test_bytes_length () =
  let rng = Util.Rng.create ~seed:31L in
  List.iter
    (fun len ->
      Alcotest.(check int) "length" len (Bytes.length (Util.Rng.bytes rng len)))
    [ 0; 1; 7; 8; 9; 32; 1000 ]

let test_bytes_entropy () =
  let rng = Util.Rng.create ~seed:37L in
  let b = Util.Rng.bytes rng 1024 in
  let distinct = Hashtbl.create 256 in
  Bytes.iter (fun c -> Hashtbl.replace distinct c ()) b;
  Alcotest.(check bool) "many distinct bytes" true (Hashtbl.length distinct > 200)

let test_exponential_mean () =
  let rng = Util.Rng.create ~seed:41L in
  let acc = ref 0.0 in
  let n = 20_000 in
  for _ = 1 to n do
    acc := !acc +. Util.Rng.exponential rng ~mean:5.0
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 5" true (mean > 4.7 && mean < 5.3)

let test_shuffle_permutation () =
  let rng = Util.Rng.create ~seed:43L in
  let a = Array.init 50 (fun i -> i) in
  Util.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 (fun i -> i)) sorted

let qcheck_int_uniformish =
  QCheck.Test.make ~name:"rng int never out of bounds" ~count:500
    QCheck.(pair int64 (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Util.Rng.create ~seed in
      let v = Util.Rng.int rng bound in
      v >= 0 && v < bound)

let suite =
  ( "rng",
    [
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "distinct seeds" `Quick test_distinct_seeds;
      Alcotest.test_case "split independence" `Quick test_split_independence;
      Alcotest.test_case "copy" `Quick test_copy;
      Alcotest.test_case "int bounds" `Quick test_int_bounds;
      Alcotest.test_case "int bad bound" `Quick test_int_rejects_bad_bound;
      Alcotest.test_case "int covers values" `Quick test_int_covers_all_values;
      Alcotest.test_case "float bounds" `Quick test_float_bounds;
      Alcotest.test_case "coin unbiased" `Quick test_coin_unbiased;
      Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
      Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
      Alcotest.test_case "bytes length" `Quick test_bytes_length;
      Alcotest.test_case "bytes entropy" `Quick test_bytes_entropy;
      Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
      Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
      QCheck_alcotest.to_alcotest qcheck_int_uniformish;
    ] )
