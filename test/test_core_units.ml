(* Unit tests for the core protocol building blocks: Proto, Message,
   Keyring, Vset. *)

module P = Core.Proto

(* --- Proto -------------------------------------------------------------- *)

let test_value_encoding () =
  List.iter
    (fun v -> Alcotest.(check bool) "roundtrip" true
        (P.value_equal v (P.value_of_int (P.value_to_int v))))
    [ P.V0; P.V1; P.Vbot ];
  Alcotest.check_raises "bad int" (Util.Codec.Malformed "invalid value 3") (fun () ->
      ignore (P.value_of_int 3))

let test_value_of_bit () =
  Alcotest.(check bool) "0" true (P.value_equal P.V0 (P.value_of_bit 0));
  Alcotest.(check bool) "1" true (P.value_equal P.V1 (P.value_of_bit 1));
  Alcotest.(check (option int)) "bit of bot" None (P.bit_of_value P.Vbot);
  Alcotest.check_raises "bad bit" (Invalid_argument "Proto.value_of_bit: 2") (fun () ->
      ignore (P.value_of_bit 2))

let test_phase_kinds () =
  let kind_name = function P.Converge -> "c" | P.Lock -> "l" | P.Decide -> "d" in
  Alcotest.(check (list string)) "cycle" [ "c"; "l"; "d"; "c"; "l"; "d" ]
    (List.map (fun p -> kind_name (P.kind_of_phase p)) [ 1; 2; 3; 4; 5; 6 ]);
  Alcotest.check_raises "phase 0" (Invalid_argument "Proto.kind_of_phase: phases start at 1")
    (fun () -> ignore (P.kind_of_phase 0))

let test_default_config () =
  let c = P.default_config ~n:16 in
  Alcotest.(check int) "f" 5 c.f;
  Alcotest.(check int) "k" 11 c.k;
  P.validate_config c

let test_validate_config_rejects () =
  let base = P.default_config ~n:4 in
  Alcotest.check_raises "n <= 3f" (Invalid_argument "Proto.validate_config: need n > 3f")
    (fun () -> P.validate_config { base with f = 2 });
  Alcotest.check_raises "bad k"
    (Invalid_argument "Proto.validate_config: need (n+f)/2 < k <= n-f") (fun () ->
      P.validate_config { base with k = 4 })

let test_quorum_thresholds () =
  (* n=4 f=1: quorum needs > 2.5 i.e. >= 3; half needs > 1.25 i.e. >= 2 *)
  let c = P.default_config ~n:4 in
  Alcotest.(check bool) "2 no" false (P.quorum_exceeded c 2);
  Alcotest.(check bool) "3 yes" true (P.quorum_exceeded c 3);
  Alcotest.(check bool) "half 1 no" false (P.half_quorum_exceeded c 1);
  Alcotest.(check bool) "half 2 yes" true (P.half_quorum_exceeded c 2);
  (* n=16 f=5: quorum > 10.5 i.e. >= 11; half > 5.25 i.e. >= 6 *)
  let c = P.default_config ~n:16 in
  Alcotest.(check bool) "10 no" false (P.quorum_exceeded c 10);
  Alcotest.(check bool) "11 yes" true (P.quorum_exceeded c 11);
  Alcotest.(check bool) "half 5 no" false (P.half_quorum_exceeded c 5);
  Alcotest.(check bool) "half 6 yes" true (P.half_quorum_exceeded c 6)

let test_sigma_formula () =
  (* sigma = ceil((n-t)/2) * (n-k-t) + k - 2 *)
  let sigma ~n ~k ~t = P.sigma { (P.default_config ~n) with k } ~t in
  Alcotest.(check int) "n=4 k=3 t=0" ((2 * 1) + 1) (sigma ~n:4 ~k:3 ~t:0);
  Alcotest.(check int) "n=10 k=7 t=0" ((5 * 3) + 5) (sigma ~n:10 ~k:7 ~t:0);
  Alcotest.(check int) "n=10 k=7 t=3" ((4 * 0) + 5) (sigma ~n:10 ~k:7 ~t:3);
  Alcotest.check_raises "t > f" (Invalid_argument "Proto.sigma: need 0 <= t <= f") (fun () ->
      ignore (sigma ~n:4 ~k:3 ~t:2))

(* --- Message ----------------------------------------------------------- *)

let mk_msg ?(sender = 1) ?(phase = 4) ?(value = P.V1) ?(origin = P.Deterministic)
    ?(status = P.Undecided) ?(proof = Bytes.make 32 '\x11') () =
  { Core.Message.sender; phase; value; origin; status; proof }

let msg_testable =
  Alcotest.testable
    (fun fmt m -> Format.pp_print_string fmt (Core.Message.describe m))
    (fun a b -> Core.Message.header_equal a b && Bytes.equal a.proof b.proof)

let test_message_roundtrip () =
  let msg = mk_msg () in
  let envelope = { Core.Message.msg; justification = [ mk_msg ~sender:2 ~phase:3 (); mk_msg ~sender:3 ~phase:3 ~value:P.Vbot () ] } in
  let back = Core.Message.decode (Core.Message.encode envelope) in
  Alcotest.(check msg_testable) "main" msg back.msg;
  Alcotest.(check (list msg_testable)) "justification" envelope.justification back.justification

let test_message_empty_justification () =
  let envelope = { Core.Message.msg = mk_msg (); justification = [] } in
  let back = Core.Message.decode (Core.Message.encode envelope) in
  Alcotest.(check int) "no justification" 0 (List.length back.justification)

let test_message_size_grows_with_justification () =
  let small = { Core.Message.msg = mk_msg (); justification = [] } in
  let big =
    { Core.Message.msg = mk_msg (); justification = List.init 10 (fun i -> mk_msg ~sender:i ()) }
  in
  Alcotest.(check bool) "bigger" true
    (Core.Message.encoded_size big > Core.Message.encoded_size small + 300)

let test_message_rejects_garbage () =
  Alcotest.check_raises "empty buffer" Util.Codec.Truncated (fun () ->
      ignore (Core.Message.decode Bytes.empty));
  (* phase 0 *)
  let w = Util.Codec.W.create () in
  Util.Codec.W.u16 w 1;
  Util.Codec.W.varint w 0;
  Util.Codec.W.u8 w 0;
  Util.Codec.W.u8 w 0;
  Util.Codec.W.u8 w 0;
  Util.Codec.W.bytes_lp w (Bytes.make 32 'x');
  Util.Codec.W.u16 w 0;
  Alcotest.check_raises "phase 0" (Util.Codec.Malformed "message phase < 1") (fun () ->
      ignore (Core.Message.decode (Util.Codec.W.contents w)))

let test_message_slots () =
  let slot = Core.Message.slot_of in
  Alcotest.(check bool) "bot" true (slot ~value:P.Vbot ~origin:P.Deterministic = Crypto.Onetime_sig.S_bot);
  Alcotest.(check bool) "bot rand" true (slot ~value:P.Vbot ~origin:P.Random = Crypto.Onetime_sig.S_bot);
  Alcotest.(check bool) "v0 det" true (slot ~value:P.V0 ~origin:P.Deterministic = Crypto.Onetime_sig.S_zero);
  Alcotest.(check bool) "v1 rand" true (slot ~value:P.V1 ~origin:P.Random = Crypto.Onetime_sig.S_rand_one)

let qcheck_message_roundtrip =
  let gen =
    QCheck.Gen.(
      let* sender = int_range 0 65535 in
      let* phase = int_range 1 10000 in
      let* value = oneofl [ P.V0; P.V1; P.Vbot ] in
      let* origin = oneofl [ P.Deterministic; P.Random ] in
      let* status = oneofl [ P.Undecided; P.Decided ] in
      let* proof_len = int_range 0 64 in
      let* proof_seed = int_range 0 255 in
      return (mk_msg ~sender ~phase ~value ~origin ~status
                ~proof:(Bytes.make proof_len (Char.chr proof_seed)) ()))
  in
  QCheck.Test.make ~name:"message wire roundtrip" ~count:300
    (QCheck.make ~print:Core.Message.describe gen) (fun msg ->
      let back = Core.Message.msg_of_bytes (Core.Message.msg_to_bytes msg) in
      Core.Message.header_equal msg back && Bytes.equal msg.proof back.proof)

(* --- wire formats (plain vs compact) ------------------------------------- *)

let test_wire_plain_is_encode () =
  (* an all-Full wire frame is the plain envelope codec, byte for byte *)
  let msg = mk_msg () in
  let just = [ mk_msg ~sender:2 ~phase:3 (); mk_msg ~sender:3 ~phase:3 ~value:P.Vbot () ] in
  let wire =
    { Core.Message.wmsg = msg; wjust = List.map (fun m -> Core.Message.Full m) just }
  in
  let b = Core.Message.encode_wire wire in
  Alcotest.(check int) "format byte 0" 0 (Char.code (Bytes.get b 0));
  Alcotest.(check bytes) "same bytes as encode"
    (Core.Message.encode { Core.Message.msg; justification = just }) b;
  let back = Core.Message.decode_wire b in
  Alcotest.(check (list msg_testable)) "entries survive" just
    (List.map
       (function Core.Message.Full m -> m | Core.Message.Ref _ -> Alcotest.fail "ref")
       back.wjust)

let test_wire_compact_roundtrip () =
  let full = mk_msg ~sender:2 ~phase:3 () in
  let d = Core.Message.msg_digest (mk_msg ~sender:3 ~phase:3 ()) in
  let wire =
    { Core.Message.wmsg = mk_msg (); wjust = [ Core.Message.Full full; Core.Message.Ref d ] }
  in
  let b = Core.Message.encode_wire wire in
  Alcotest.(check int) "format byte 1" 1 (Char.code (Bytes.get b 0));
  (match (Core.Message.decode_wire b).wjust with
  | [ Core.Message.Full m; Core.Message.Ref d' ] ->
      Alcotest.(check msg_testable) "full entry" full m;
      Alcotest.(check bytes) "ref digest" d d'
  | _ -> Alcotest.fail "expected [Full; Ref]");
  (* the plain decoder must refuse a frame it cannot resolve *)
  Alcotest.check_raises "decode refuses refs"
    (Util.Codec.Malformed "unresolved compact reference") (fun () ->
      ignore (Core.Message.decode b))

let test_wire_rejects_bad_tags () =
  let msg = mk_msg () in
  let wire =
    { Core.Message.wmsg = msg;
      wjust = [ Core.Message.Ref (Core.Message.msg_digest (mk_msg ~sender:2 ())) ] }
  in
  let b = Core.Message.encode_wire wire in
  let bad_format = Bytes.copy b in
  Bytes.set bad_format 0 '\x07';
  Alcotest.check_raises "unknown format" (Util.Codec.Malformed "unknown frame format 7")
    (fun () -> ignore (Core.Message.decode_wire bad_format));
  (* the entry tag sits after the format byte, the message and the count *)
  let tag_pos = 1 + Bytes.length (Core.Message.msg_to_bytes msg) + 2 in
  let bad_tag = Bytes.copy b in
  Bytes.set bad_tag tag_pos '\x05';
  Alcotest.check_raises "unknown entry tag" (Util.Codec.Malformed "unknown entry tag 5")
    (fun () -> ignore (Core.Message.decode_wire bad_tag));
  Alcotest.check_raises "truncated ref" Util.Codec.Truncated (fun () ->
      ignore (Core.Message.decode_wire (Bytes.sub b 0 (Bytes.length b - 1))))

let test_msg_digest_covers_proof () =
  let a = mk_msg () in
  let b = mk_msg ~proof:(Bytes.make 32 '\x22') () in
  Alcotest.(check int) "width" Core.Message.digest_bytes
    (Bytes.length (Core.Message.msg_digest a));
  Alcotest.(check bool) "deterministic" true
    (Bytes.equal (Core.Message.msg_digest a) (Core.Message.msg_digest (mk_msg ())));
  Alcotest.(check bool) "proof is covered" false
    (Bytes.equal (Core.Message.msg_digest a) (Core.Message.msg_digest b))

(* --- Keyring ------------------------------------------------------------- *)

let keyrings = lazy (Core.Keyring.setup (Util.Rng.create ~seed:200L) ~n:4 ~phases:12 ())

let test_keyring_setup () =
  let krs = Lazy.force keyrings in
  Alcotest.(check int) "count" 4 (Array.length krs);
  Array.iteri (fun i kr -> Alcotest.(check int) "owner" i (Core.Keyring.owner kr)) krs;
  Alcotest.(check int) "phases" 12 (Core.Keyring.phases krs.(0))

let test_keyring_cross_check () =
  let krs = Lazy.force keyrings in
  let proof = Core.Keyring.sign krs.(1) ~phase:5 ~value:P.V1 ~origin:P.Random in
  (* every other process accepts it for exactly that tuple *)
  Array.iter
    (fun kr ->
      Alcotest.(check bool) "accepts" true
        (Core.Keyring.check kr ~signer:1 ~phase:5 ~value:P.V1 ~origin:P.Random ~proof);
      Alcotest.(check bool) "wrong value" false
        (Core.Keyring.check kr ~signer:1 ~phase:5 ~value:P.V0 ~origin:P.Random ~proof);
      Alcotest.(check bool) "wrong origin" false
        (Core.Keyring.check kr ~signer:1 ~phase:5 ~value:P.V1 ~origin:P.Deterministic ~proof);
      Alcotest.(check bool) "wrong signer" false
        (Core.Keyring.check kr ~signer:2 ~phase:5 ~value:P.V1 ~origin:P.Random ~proof);
      Alcotest.(check bool) "wrong phase" false
        (Core.Keyring.check kr ~signer:1 ~phase:6 ~value:P.V1 ~origin:P.Random ~proof))
    krs

let test_keyring_check_message () =
  let krs = Lazy.force keyrings in
  let proof = Core.Keyring.sign krs.(2) ~phase:3 ~value:P.Vbot ~origin:P.Deterministic in
  let msg = mk_msg ~sender:2 ~phase:3 ~value:P.Vbot ~proof () in
  Alcotest.(check bool) "valid" true (Core.Keyring.check_message krs.(0) msg);
  let forged = { msg with sender = 3 } in
  Alcotest.(check bool) "forged" false (Core.Keyring.check_message krs.(0) forged)

let test_keyring_out_of_range () =
  let krs = Lazy.force keyrings in
  Alcotest.(check bool) "unknown signer" false
    (Core.Keyring.check krs.(0) ~signer:9 ~phase:1 ~value:P.V0 ~origin:P.Deterministic
       ~proof:(Bytes.make 32 'a'))

(* --- Vset ------------------------------------------------------------------ *)

let test_vset_add_dedup () =
  let v = Core.Vset.create ~n:4 in
  Alcotest.(check bool) "first" true (Core.Vset.add v (mk_msg ~sender:0 ~phase:1 ()));
  Alcotest.(check bool) "same value dup" false
    (Core.Vset.add v (mk_msg ~sender:0 ~phase:1 ~value:P.V1 ()));
  (* a differently-valued copy from the same (sender, phase) is an
     equivocation: retained as an extra, counted for its value too *)
  Alcotest.(check bool) "equivocated copy" true
    (Core.Vset.add v (mk_msg ~sender:0 ~phase:1 ~value:P.V0 ()));
  Alcotest.(check bool) "equivocated dup" false
    (Core.Vset.add v (mk_msg ~sender:0 ~phase:1 ~value:P.V0 ()));
  Alcotest.(check int) "still one distinct sender" 1 (Core.Vset.count_phase v ~phase:1);
  Alcotest.(check int) "supports V0" 1 (Core.Vset.count_value v ~phase:1 ~value:P.V0);
  Alcotest.(check int) "supports V1" 1 (Core.Vset.count_value v ~phase:1 ~value:P.V1);
  Alcotest.(check bool) "other phase" true (Core.Vset.add v (mk_msg ~sender:0 ~phase:2 ()));
  Alcotest.(check bool) "out of range" false (Core.Vset.add v (mk_msg ~sender:7 ~phase:1 ()));
  Alcotest.(check int) "size" 3 (Core.Vset.size v)

let test_vset_counts () =
  let v = Core.Vset.create ~n:5 in
  ignore (Core.Vset.add v (mk_msg ~sender:0 ~phase:2 ~value:P.V0 ()));
  ignore (Core.Vset.add v (mk_msg ~sender:1 ~phase:2 ~value:P.V1 ()));
  ignore (Core.Vset.add v (mk_msg ~sender:2 ~phase:2 ~value:P.V1 ()));
  ignore (Core.Vset.add v (mk_msg ~sender:3 ~phase:3 ~value:P.Vbot ()));
  Alcotest.(check int) "phase 2" 3 (Core.Vset.count_phase v ~phase:2);
  Alcotest.(check int) "phase 3" 1 (Core.Vset.count_phase v ~phase:3);
  Alcotest.(check int) "phase 9" 0 (Core.Vset.count_phase v ~phase:9);
  Alcotest.(check int) "v1 at 2" 2 (Core.Vset.count_value v ~phase:2 ~value:P.V1);
  Alcotest.(check int) "bot at 3" 1 (Core.Vset.count_value v ~phase:3 ~value:P.Vbot)

let test_vset_majority () =
  let v = Core.Vset.create ~n:5 in
  ignore (Core.Vset.add v (mk_msg ~sender:0 ~phase:1 ~value:P.V0 ()));
  ignore (Core.Vset.add v (mk_msg ~sender:1 ~phase:1 ~value:P.V0 ()));
  ignore (Core.Vset.add v (mk_msg ~sender:2 ~phase:1 ~value:P.V1 ()));
  Alcotest.(check bool) "majority 0" true
    (P.value_equal P.V0 (Core.Vset.majority_value v ~phase:1));
  ignore (Core.Vset.add v (mk_msg ~sender:3 ~phase:1 ~value:P.V1 ()));
  (* tie favors V1 *)
  Alcotest.(check bool) "tie -> 1" true
    (P.value_equal P.V1 (Core.Vset.majority_value v ~phase:1));
  Alcotest.check_raises "no binary values"
    (Invalid_argument "Vset.majority_value: no binary values at phase") (fun () ->
      ignore (Core.Vset.majority_value v ~phase:9))

let test_vset_highest () =
  let v = Core.Vset.create ~n:4 in
  Alcotest.(check int) "empty" 0 (Core.Vset.max_phase v);
  ignore (Core.Vset.add v (mk_msg ~sender:0 ~phase:3 ()));
  ignore (Core.Vset.add v (mk_msg ~sender:1 ~phase:7 ()));
  ignore (Core.Vset.add v (mk_msg ~sender:2 ~phase:5 ()));
  Alcotest.(check int) "max" 7 (Core.Vset.max_phase v);
  match Core.Vset.highest_message v with
  | Some m -> Alcotest.(check int) "highest sender" 1 m.sender
  | None -> Alcotest.fail "expected highest"

let test_vset_some_binary () =
  let v = Core.Vset.create ~n:4 in
  ignore (Core.Vset.add v (mk_msg ~sender:0 ~phase:3 ~value:P.Vbot ()));
  Alcotest.(check bool) "only bot" true (Core.Vset.some_binary_value v ~phase:3 = None);
  ignore (Core.Vset.add v (mk_msg ~sender:1 ~phase:3 ~value:P.V0 ()));
  Alcotest.(check bool) "finds v0" true
    (match Core.Vset.some_binary_value v ~phase:3 with
    | Some b -> P.value_equal b P.V0
    | None -> false)

let test_vset_messages_at_sorted () =
  let v = Core.Vset.create ~n:4 in
  ignore (Core.Vset.add v (mk_msg ~sender:2 ~phase:1 ()));
  ignore (Core.Vset.add v (mk_msg ~sender:0 ~phase:1 ()));
  ignore (Core.Vset.add v (mk_msg ~sender:3 ~phase:1 ()));
  Alcotest.(check (list int)) "ascending senders" [ 0; 2; 3 ]
    (List.map (fun (m : Core.Message.t) -> m.sender) (Core.Vset.messages_at v ~phase:1))

(* A list-based executable model of the documented Vset semantics: the
   flat arena-backed implementation must be observation-equivalent to
   it on any message stream. The model keeps plain insertion order and
   recomputes every query by scanning — obviously correct, hopelessly
   slow, which is exactly what a reference should be. *)
module Ref_vset = struct
  type t = { n : int; mutable msgs : Core.Message.t list (* insertion order *) }

  let create ~n = { n; msgs = [] }

  let add t (m : Core.Message.t) =
    if
      m.sender < 0 || m.sender >= t.n
      || List.exists
           (fun (s : Core.Message.t) ->
             s.sender = m.sender && s.phase = m.phase && P.value_equal s.value m.value)
           t.msgs
    then false
    else begin
      t.msgs <- t.msgs @ [ m ];
      true
    end

  (* the primary is the first stored copy; equivocated extras surface
     newest-first after it (they are consed onto the slot) *)
  let copies t ~sender ~phase =
    match
      List.filter (fun (s : Core.Message.t) -> s.sender = sender && s.phase = phase) t.msgs
    with
    | [] -> []
    | primary :: extras -> primary :: List.rev extras

  let find t ~sender ~phase =
    match copies t ~sender ~phase with [] -> None | m :: _ -> Some m

  let distinct_senders t pred =
    List.sort_uniq Int.compare
      (List.filter_map
         (fun (s : Core.Message.t) -> if pred s then Some s.sender else None)
         t.msgs)

  let count_phase t ~phase =
    List.length (distinct_senders t (fun s -> s.phase = phase))

  let count_value t ~phase ~value =
    List.length
      (distinct_senders t (fun s -> s.phase = phase && P.value_equal s.value value))

  let messages_at t ~phase =
    List.concat_map
      (fun sender -> copies t ~sender ~phase)
      (List.init t.n (fun s -> s))

  let max_phase t =
    List.fold_left (fun acc (s : Core.Message.t) -> max acc s.phase) 0 t.msgs

  let size t = List.length t.msgs
end

let test_vset_matches_reference_model () =
  let rng = Util.Rng.create ~seed:0xC0FFEEL in
  List.iter
    (fun n ->
      let v = Core.Vset.create ~n in
      let r = Ref_vset.create ~n in
      let version0 = Core.Vset.version v in
      let accepted = ref 0 in
      for step = 1 to 400 do
        let sender = Util.Rng.int rng (n + 2) - 1 (* includes out-of-range *) in
        let phase = 1 + Util.Rng.int rng 6 in
        let value =
          match Util.Rng.int rng 3 with 0 -> P.V0 | 1 -> P.V1 | _ -> P.Vbot
        in
        let origin = if Util.Rng.bool rng then P.Deterministic else P.Random in
        let status = if Util.Rng.bool rng then P.Undecided else P.Decided in
        let m = mk_msg ~sender ~phase ~value ~origin ~status ~proof:(Util.Rng.bytes rng 32) () in
        let stored = Core.Vset.add v m in
        if stored then incr accepted;
        if stored <> Ref_vset.add r m then
          Alcotest.failf "step %d: add disagrees with the model on %s" step
            (Core.Message.describe m)
      done;
      Alcotest.(check int) "size" (Ref_vset.size r) (Core.Vset.size v);
      Alcotest.(check int) "version counts accepted adds" (version0 + !accepted)
        (Core.Vset.version v);
      Alcotest.(check int) "max phase" (Ref_vset.max_phase r) (Core.Vset.max_phase v);
      (match Core.Vset.highest_message v with
      | Some m -> Alcotest.(check int) "highest at max phase" (Ref_vset.max_phase r) m.phase
      | None -> Alcotest.(check int) "empty iff model empty" 0 (Ref_vset.size r));
      for phase = 1 to 7 do
        Alcotest.(check int)
          (Printf.sprintf "count_phase %d" phase)
          (Ref_vset.count_phase r ~phase)
          (Core.Vset.count_phase v ~phase);
        List.iter
          (fun value ->
            Alcotest.(check int)
              (Printf.sprintf "count_value %d/%d" phase (P.value_to_int value))
              (Ref_vset.count_value r ~phase ~value)
              (Core.Vset.count_value v ~phase ~value))
          [ P.V0; P.V1; P.Vbot ];
        Alcotest.(check (list msg_testable))
          (Printf.sprintf "messages_at %d" phase)
          (Ref_vset.messages_at r ~phase)
          (Core.Vset.messages_at v ~phase);
        (* some_binary_value: free choice of witness, but only a valid one *)
        (match Core.Vset.some_binary_value v ~phase with
        | Some b ->
            Alcotest.(check bool) "witness present" true
              (Ref_vset.count_value r ~phase ~value:b > 0)
        | None ->
            Alcotest.(check int) "no binary in model" 0
              (Ref_vset.count_value r ~phase ~value:P.V0
              + Ref_vset.count_value r ~phase ~value:P.V1));
        (* majority among {0,1} by distinct supporters, ties to V1 *)
        let c0 = Ref_vset.count_value r ~phase ~value:P.V0 in
        let c1 = Ref_vset.count_value r ~phase ~value:P.V1 in
        if c0 + c1 > 0 then
          Alcotest.(check bool)
            (Printf.sprintf "majority %d" phase)
            true
            (P.value_equal
               (Core.Vset.majority_value v ~phase)
               (if c0 > c1 then P.V0 else P.V1));
        for sender = -1 to n do
          Alcotest.(check bool) "mem" (Ref_vset.find r ~sender ~phase <> None)
            (Core.Vset.mem v ~sender ~phase);
          Alcotest.(check (option msg_testable)) "find (primary = first stored)"
            (Ref_vset.find r ~sender ~phase)
            (Core.Vset.find v ~sender ~phase);
          Alcotest.(check (list msg_testable)) "copies in stored order"
            (Ref_vset.copies r ~sender ~phase)
            (Core.Vset.copies v ~sender ~phase)
        done
      done;
      (* mem_copy is exact-header membership, proof excluded *)
      List.iter
        (fun (m : Core.Message.t) ->
          Alcotest.(check bool) "mem_copy stored" true
            (Core.Vset.mem_copy v { m with proof = Bytes.make 32 '\xEE' }))
        r.Ref_vset.msgs;
      (* clone independence and canonical stability *)
      let c = Core.Vset.clone v in
      let render s =
        let b = Buffer.create 256 in
        Core.Vset.canonical s b;
        Buffer.contents b
      in
      Alcotest.(check string) "clone canonical" (render v) (render c);
      Alcotest.(check int) "clone version" (Core.Vset.version v) (Core.Vset.version c);
      ignore (Core.Vset.add c (mk_msg ~sender:0 ~phase:9 ()));
      Alcotest.(check int) "original size untouched" (Ref_vset.size r) (Core.Vset.size v);
      Alcotest.(check bool) "canonicals diverge after clone add" false
        (String.equal (render v) (render c)))
    [ 4; 7; 10 ]

let suite =
  ( "core-units",
    [
      Alcotest.test_case "value encoding" `Quick test_value_encoding;
      Alcotest.test_case "value of bit" `Quick test_value_of_bit;
      Alcotest.test_case "phase kinds" `Quick test_phase_kinds;
      Alcotest.test_case "default config" `Quick test_default_config;
      Alcotest.test_case "config rejects" `Quick test_validate_config_rejects;
      Alcotest.test_case "quorum thresholds" `Quick test_quorum_thresholds;
      Alcotest.test_case "sigma formula" `Quick test_sigma_formula;
      Alcotest.test_case "message roundtrip" `Quick test_message_roundtrip;
      Alcotest.test_case "message empty justification" `Quick test_message_empty_justification;
      Alcotest.test_case "message size" `Quick test_message_size_grows_with_justification;
      Alcotest.test_case "message garbage" `Quick test_message_rejects_garbage;
      Alcotest.test_case "message slots" `Quick test_message_slots;
      QCheck_alcotest.to_alcotest qcheck_message_roundtrip;
      Alcotest.test_case "wire plain is encode" `Quick test_wire_plain_is_encode;
      Alcotest.test_case "wire compact roundtrip" `Quick test_wire_compact_roundtrip;
      Alcotest.test_case "wire rejects bad tags" `Quick test_wire_rejects_bad_tags;
      Alcotest.test_case "msg digest covers proof" `Quick test_msg_digest_covers_proof;
      Alcotest.test_case "keyring setup" `Quick test_keyring_setup;
      Alcotest.test_case "keyring cross check" `Quick test_keyring_cross_check;
      Alcotest.test_case "keyring check message" `Quick test_keyring_check_message;
      Alcotest.test_case "keyring out of range" `Quick test_keyring_out_of_range;
      Alcotest.test_case "vset add/dedup" `Quick test_vset_add_dedup;
      Alcotest.test_case "vset counts" `Quick test_vset_counts;
      Alcotest.test_case "vset majority" `Quick test_vset_majority;
      Alcotest.test_case "vset highest" `Quick test_vset_highest;
      Alcotest.test_case "vset some binary" `Quick test_vset_some_binary;
      Alcotest.test_case "vset sorted" `Quick test_vset_messages_at_sorted;
      Alcotest.test_case "vset vs reference model" `Quick test_vset_matches_reference_model;
    ] )
