(* Aggregates every suite; `dune runtest` runs this executable. *)

let () =
  Alcotest.run "turquois-repro"
    [
      Test_rng.suite;
      Test_stats.suite;
      Test_codec.suite;
      Test_znum.suite;
      Test_crypto.suite;
      Test_engine.suite;
      Test_obs.suite;
      Test_net.suite;
      Test_core_units.suite;
      Test_validation.suite;
      Test_machine.suite;
      Test_protocols.suite;
      Test_service.suite;
      Test_extensions.suite;
      Test_misc_units.suite;
      Test_ordered_log.suite;
      Test_harness.suite;
      Test_pool.suite;
      Test_chaos.suite;
      Test_hotpath.suite;
      Test_model.suite;
      Test_workload.suite;
      Test_scale.suite;
    ]
