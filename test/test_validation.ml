(* Rule-by-rule tests of the semantic validation of Section 6.2, using
   hand-built V sets. Configuration n=4 f=1: quorum needs >=3 distinct
   senders, half-quorum >=2. *)

module P = Core.Proto
module V = Core.Validation

let cfg = P.default_config ~n:4

let mk ?(sender = 0) ~phase ?(value = P.V1) ?(origin = P.Deterministic)
    ?(status = P.Undecided) () =
  { Core.Message.sender; phase; value; origin; status; proof = Bytes.empty }

let vset_of msgs =
  let v = Core.Vset.create ~n:4 in
  List.iter (fun m -> ignore (Core.Vset.add v m)) msgs;
  v

let is_valid v m = V.is_valid cfg v m
let check name expected v m = Alcotest.(check bool) name expected (is_valid v m)

(* quorum of phase-p messages with the given values, from senders 0.. *)
let quorum_at ?(start_sender = 0) ~phase values =
  List.mapi (fun i value -> mk ~sender:(start_sender + i) ~phase ~value ()) values

let test_phase1_always_valid () =
  let v = vset_of [] in
  check "v1" true v (mk ~phase:1 ~value:P.V1 ());
  check "v0" true v (mk ~phase:1 ~value:P.V0 ())

let test_phase1_rejects_bot_and_coin () =
  let v = vset_of [] in
  check "bot at 1" false v (mk ~phase:1 ~value:P.Vbot ());
  check "coin at 1" false v (mk ~phase:1 ~origin:P.Random ())

let test_phase_needs_previous_quorum () =
  let empty = vset_of [] in
  check "no support" false empty (mk ~phase:2 ());
  let two = vset_of (quorum_at ~phase:1 [ P.V1; P.V1 ]) in
  check "2 < quorum" false two (mk ~phase:2 ());
  let three = vset_of (quorum_at ~phase:1 [ P.V1; P.V1; P.V1 ]) in
  check "3 suffices" true three (mk ~phase:2 ~value:P.V1 ())

let test_phase_beyond_horizon () =
  let v = vset_of [] in
  Alcotest.(check bool) "beyond key horizon" false
    (is_valid v (mk ~phase:(cfg.max_phases + 1) ()))

let test_lock_value_support () =
  (* LOCK message (phase 2): value needs >= 2 supporters at phase 1 *)
  let v = vset_of (quorum_at ~phase:1 [ P.V1; P.V1; P.V0 ]) in
  check "v1 has 2" true v (mk ~phase:2 ~value:P.V1 ());
  check "v0 has 1" false v (mk ~phase:2 ~value:P.V0 ());
  check "bot never in lock" false v (mk ~phase:2 ~value:P.Vbot ())

let test_decide_value_support () =
  (* DECIDE message (phase 3): binary value needs >= 3 at phase 2 *)
  let base = quorum_at ~phase:1 [ P.V1; P.V1; P.V1; P.V0 ] in
  let v = vset_of (base @ quorum_at ~phase:2 [ P.V1; P.V1; P.V1 ]) in
  check "quorum for v1" true v (mk ~phase:3 ~value:P.V1 ());
  check "v0 unsupported" false v (mk ~phase:3 ~value:P.V0 ());
  let v2 = vset_of (base @ quorum_at ~phase:2 [ P.V1; P.V1; P.V0 ]) in
  check "2 of 3 not enough" false v2 (mk ~phase:3 ~value:P.V1 ())

let test_decide_bot_needs_phase1_split () =
  (* bot at phase 3 needs >= 2 zeros AND >= 2 ones at phase 1 *)
  let split = quorum_at ~phase:1 [ P.V0; P.V0; P.V1; P.V1 ] in
  let lock = quorum_at ~phase:2 [ P.V1; P.V1; P.V0 ] in
  let v = vset_of (split @ lock) in
  check "split justifies bot" true v (mk ~phase:3 ~value:P.Vbot ());
  let unsplit = quorum_at ~phase:1 [ P.V1; P.V1; P.V1; P.V0 ] in
  let v2 = vset_of (unsplit @ lock) in
  check "no split, no bot" false v2 (mk ~phase:3 ~value:P.Vbot ())

let check_value name expected v m =
  Alcotest.(check bool) name expected (V.check_value cfg v m = V.Valid)

let check_status name expected v m =
  Alcotest.(check bool) name expected (V.check_status cfg v m = V.Valid)

let test_converge_deterministic_support () =
  (* CONVERGE message (phase 4, deterministic): needs quorum for v at
     phase 2 (value rule in isolation) *)
  let history =
    quorum_at ~phase:1 [ P.V1; P.V1; P.V1 ]
    @ quorum_at ~phase:2 [ P.V1; P.V1; P.V1 ]
    @ quorum_at ~phase:3 [ P.V1; P.V1; P.V1 ]
  in
  let v = vset_of history in
  check_value "deterministic v1" true v (mk ~phase:4 ~value:P.V1 ());
  check_value "deterministic v0" false v (mk ~phase:4 ~value:P.V0 ());
  (* and the full check passes for the state an honest decided process
     would actually broadcast *)
  check "decided v1 fully valid" true v (mk ~phase:4 ~value:P.V1 ~status:P.Decided ())

let test_converge_random_needs_bot_quorum () =
  (* coin value at phase 4: needs quorum of bot at phase 3 *)
  let history =
    quorum_at ~phase:1 [ P.V0; P.V0; P.V1; P.V1 ]
    @ quorum_at ~phase:2 [ P.V0; P.V0; P.V1 ]
    @ quorum_at ~phase:3 [ P.Vbot; P.Vbot; P.Vbot ]
  in
  let v = vset_of history in
  check "coin justified" true v (mk ~phase:4 ~value:P.V0 ~origin:P.Random ());
  check "coin either value" true v (mk ~phase:4 ~value:P.V1 ~origin:P.Random ());
  let partial =
    quorum_at ~phase:1 [ P.V0; P.V0; P.V1; P.V1 ]
    @ quorum_at ~phase:2 [ P.V0; P.V0; P.V1 ]
    @ quorum_at ~phase:3 [ P.Vbot; P.Vbot; P.V0 ]
  in
  let v2 = vset_of partial in
  check "2 bots not enough" false v2 (mk ~phase:4 ~value:P.V0 ~origin:P.Random ())

let test_status_undecided_early_free () =
  let v = vset_of (quorum_at ~phase:1 [ P.V1; P.V1; P.V1 ]) in
  check "undecided phase 2" true v (mk ~phase:2 ~value:P.V1 ~status:P.Undecided ())

let test_status_decided_needs_quorum () =
  let unanimous =
    quorum_at ~phase:1 [ P.V1; P.V1; P.V1 ]
    @ quorum_at ~phase:2 [ P.V1; P.V1; P.V1 ]
    @ quorum_at ~phase:3 [ P.V1; P.V1; P.V1 ]
  in
  let v = vset_of unanimous in
  check "decided v1 at 4" true v (mk ~phase:4 ~value:P.V1 ~status:P.Decided ());
  check "decided v0 at 4" false v (mk ~phase:4 ~value:P.V0 ~status:P.Decided ());
  check "decided bot" false v (mk ~phase:4 ~value:P.Vbot ~status:P.Decided ())

let test_status_decided_never_before_phase_4 () =
  let v =
    vset_of
      (quorum_at ~phase:1 [ P.V1; P.V1; P.V1 ] @ quorum_at ~phase:2 [ P.V1; P.V1; P.V1 ])
  in
  check "phase 3 decided impossible" false v (mk ~phase:3 ~value:P.V1 ~status:P.Decided ())

let test_status_undecided_after_unanimity_rejected () =
  (* after a unanimous history no honest process is undecided at phase 4;
     a Byzantine claim must be rejected *)
  let unanimous =
    quorum_at ~phase:1 [ P.V1; P.V1; P.V1 ]
    @ quorum_at ~phase:2 [ P.V1; P.V1; P.V1 ]
    @ quorum_at ~phase:3 [ P.V1; P.V1; P.V1 ]
  in
  let v = vset_of unanimous in
  check "undecided rejected" false v (mk ~phase:4 ~value:P.V1 ~status:P.Undecided ())

let test_status_undecided_with_split_witness () =
  (* the paper's rule: 0/1 split at the highest LOCK phase below phi *)
  let split_history =
    quorum_at ~phase:1 [ P.V0; P.V0; P.V1; P.V1 ]
    @ quorum_at ~phase:2 [ P.V0; P.V0; P.V1; P.V1 ]
    @ quorum_at ~phase:3 [ P.V1; P.V1; P.V1 ]
  in
  let v = vset_of split_history in
  check_status "split witness accepted" true v (mk ~phase:4 ~value:P.V1 ~status:P.Undecided ())

let test_status_undecided_with_bot_witness () =
  (* the transitive witness: a valid bot at the highest DECIDE phase *)
  let history =
    quorum_at ~phase:1 [ P.V0; P.V0; P.V1; P.V1 ]
    @ quorum_at ~phase:2 [ P.V1; P.V1; P.V0 ]
    @ quorum_at ~phase:3 [ P.V1; P.V1; P.Vbot ]
  in
  let v = vset_of history in
  (* only one V0 at the lock phase: the paper's split rule fails, the
     bot witness saves the honest message *)
  check_status "bot witness accepted" true v (mk ~phase:4 ~value:P.V1 ~status:P.Undecided ())

let test_verdict_reasons () =
  let v = vset_of [] in
  (match V.semantic_check cfg v (mk ~phase:5 ()) with
  | V.Invalid reason ->
      Alcotest.(check bool) "mentions phase" true
        (String.length reason > 0)
  | V.Valid -> Alcotest.fail "expected invalid");
  match V.semantic_check cfg v (mk ~phase:1 ()) with
  | V.Valid -> ()
  | V.Invalid r -> Alcotest.fail ("expected valid: " ^ r)

(* the closed forms against the defining descent: largest p < phi of the
   right kind, 0 when none exists — exhaustively for phi = 1..200 *)
let test_helper_phases_closed_form () =
  let highest_below ~kind phi =
    let rec descend p =
      if p < 1 then 0 else if P.kind_of_phase p = kind then p else descend (p - 1)
    in
    descend (phi - 1)
  in
  for phi = 1 to 200 do
    Alcotest.(check int)
      (Printf.sprintf "lock below %d" phi)
      (highest_below ~kind:P.Lock phi)
      (V.highest_lock_phase_below phi);
    Alcotest.(check int)
      (Printf.sprintf "decide below %d" phi)
      (highest_below ~kind:P.Decide phi)
      (V.highest_decide_phase_below phi)
  done

let test_helper_phases () =
  Alcotest.(check int) "lock below 4" 2 (V.highest_lock_phase_below 4);
  Alcotest.(check int) "lock below 6" 5 (V.highest_lock_phase_below 6);
  Alcotest.(check int) "lock below 2" 0 (V.highest_lock_phase_below 2);
  Alcotest.(check int) "decide below 4" 3 (V.highest_decide_phase_below 4);
  Alcotest.(check int) "decide below 7" 6 (V.highest_decide_phase_below 7);
  Alcotest.(check int) "decide below 3" 0 (V.highest_decide_phase_below 3)

(* property: validation is monotone — adding messages never invalidates *)
let qcheck_monotone =
  let gen_msgs =
    QCheck.Gen.(
      list_size (int_range 0 20)
        (let* sender = int_range 0 3 in
         let* phase = int_range 1 6 in
         let* value = oneofl [ P.V0; P.V1; P.Vbot ] in
         return (mk ~sender ~phase ~value ())))
  in
  QCheck.Test.make ~name:"validation monotone in V" ~count:200
    (QCheck.make
       (QCheck.Gen.pair gen_msgs
          QCheck.Gen.(
            let* phase = int_range 1 6 in
            let* value = oneofl [ P.V0; P.V1; P.Vbot ] in
            let* origin = oneofl [ P.Deterministic; P.Random ] in
            let* status = oneofl [ P.Undecided; P.Decided ] in
            return (mk ~phase ~value ~origin ~status ()))))
    (fun (msgs, candidate) ->
      (* keep one message per (sender, phase) so the small V is a subset
         of the big one (Vset keeps first-added per slot) *)
      let seen = Hashtbl.create 16 in
      let msgs =
        List.filter
          (fun (m : Core.Message.t) ->
            if Hashtbl.mem seen (m.sender, m.phase) then false
            else begin
              Hashtbl.add seen (m.sender, m.phase) ();
              true
            end)
          msgs
      in
      let half = List.filteri (fun i _ -> i mod 2 = 0) msgs in
      let v_small = vset_of half in
      let v_big = vset_of msgs in
      (* valid under fewer messages implies valid under more *)
      (not (is_valid v_small candidate)) || is_valid v_big candidate)

let suite =
  ( "validation",
    [
      Alcotest.test_case "phase 1 valid" `Quick test_phase1_always_valid;
      Alcotest.test_case "phase 1 restrictions" `Quick test_phase1_rejects_bot_and_coin;
      Alcotest.test_case "phase quorum" `Quick test_phase_needs_previous_quorum;
      Alcotest.test_case "phase horizon" `Quick test_phase_beyond_horizon;
      Alcotest.test_case "lock value" `Quick test_lock_value_support;
      Alcotest.test_case "decide value" `Quick test_decide_value_support;
      Alcotest.test_case "decide bot split" `Quick test_decide_bot_needs_phase1_split;
      Alcotest.test_case "converge deterministic" `Quick test_converge_deterministic_support;
      Alcotest.test_case "converge random" `Quick test_converge_random_needs_bot_quorum;
      Alcotest.test_case "undecided early" `Quick test_status_undecided_early_free;
      Alcotest.test_case "decided quorum" `Quick test_status_decided_needs_quorum;
      Alcotest.test_case "decided phase bound" `Quick test_status_decided_never_before_phase_4;
      Alcotest.test_case "undecided after unanimity" `Quick
        test_status_undecided_after_unanimity_rejected;
      Alcotest.test_case "undecided split witness" `Quick test_status_undecided_with_split_witness;
      Alcotest.test_case "undecided bot witness" `Quick test_status_undecided_with_bot_witness;
      Alcotest.test_case "verdict reasons" `Quick test_verdict_reasons;
      Alcotest.test_case "helper phases" `Quick test_helper_phases;
      Alcotest.test_case "helper phases closed form" `Quick test_helper_phases_closed_form;
      QCheck_alcotest.to_alcotest qcheck_monotone;
    ] )
