(* Unit and property tests for the bignum stack (Znum, Prime). *)

let z = Znum.of_string
let zcheck name expected actual = Alcotest.(check string) name expected (Znum.to_string actual)

(* generator for big integers as decimal strings of bounded length *)
let gen_big =
  QCheck.Gen.(
    let* negative = bool in
    let* ndigits = int_range 1 60 in
    let* first = int_range 1 9 in
    let* rest = list_repeat (ndigits - 1) (int_range 0 9) in
    let digits = String.concat "" (List.map string_of_int (first :: rest)) in
    return (Znum.of_string (if negative then "-" ^ digits else digits)))

let arb_big = QCheck.make ~print:Znum.to_string gen_big

let test_of_to_string () =
  zcheck "zero" "0" Znum.zero;
  zcheck "simple" "12345" (z "12345");
  zcheck "negative" "-987654321" (z "-987654321");
  zcheck "big" "123456789012345678901234567890123456789"
    (z "123456789012345678901234567890123456789");
  zcheck "plus sign" "17" (z "+17")

let test_of_string_rejects () =
  Alcotest.check_raises "empty" (Invalid_argument "Znum.of_string: empty string") (fun () ->
      ignore (z ""));
  Alcotest.check_raises "junk" (Invalid_argument "Znum.of_string: invalid digit") (fun () ->
      ignore (z "12a4"))

let test_int_roundtrip () =
  List.iter
    (fun v ->
      match Znum.to_int_opt (Znum.of_int v) with
      | Some back -> Alcotest.(check int) (string_of_int v) v back
      | None -> Alcotest.fail "should fit")
    [ 0; 1; -1; 42; -42; max_int; min_int + 1; 1 lsl 40 ]

let test_to_int_overflow () =
  let big = Znum.mul (Znum.of_int max_int) (Znum.of_int 17) in
  Alcotest.(check bool) "too big" true (Znum.to_int_opt big = None)

let test_known_product () =
  zcheck "product" "121932631137021795226185032733744855963362292333223746380111126352690"
    (Znum.mul
       (z "123456789012345678901234567890")
       (z "987654321098765432109876543210987654321"))

let test_truncated_division_signs () =
  zcheck "(-7) / 3" "-2" (Znum.div (z "-7") (z "3"));
  zcheck "(-7) mod 3" "-1" (Znum.rem (z "-7") (z "3"));
  zcheck "7 / -3" "-2" (Znum.div (z "7") (z "-3"));
  zcheck "7 mod -3" "1" (Znum.rem (z "7") (z "-3"));
  zcheck "emod -7 3" "2" (Znum.emod (z "-7") (z "3"))

let test_division_by_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Znum.divmod Znum.one Znum.zero))

let test_shifts () =
  zcheck "shift_left" "1024" (Znum.shift_left Znum.one 10);
  zcheck "shift_right" "1" (Znum.shift_right (z "1024") 10);
  zcheck "shift_right to zero" "0" (Znum.shift_right (z "5") 10);
  let v = z "123456789123456789123456789" in
  Alcotest.(check bool) "shift roundtrip" true
    (Znum.equal v (Znum.shift_right (Znum.shift_left v 100) 100))

let test_bit_length () =
  Alcotest.(check int) "zero" 0 (Znum.bit_length Znum.zero);
  Alcotest.(check int) "one" 1 (Znum.bit_length Znum.one);
  Alcotest.(check int) "255" 8 (Znum.bit_length (z "255"));
  Alcotest.(check int) "256" 9 (Znum.bit_length (z "256"));
  Alcotest.(check int) "2^100" 101 (Znum.bit_length (Znum.shift_left Znum.one 100))

let test_parity () =
  Alcotest.(check bool) "zero even" true (Znum.is_even Znum.zero);
  Alcotest.(check bool) "one odd" true (Znum.is_odd Znum.one);
  Alcotest.(check bool) "big even" true (Znum.is_even (z "123456789012345678901234567890"))

let test_gcd () =
  zcheck "gcd" "6" (Znum.gcd (z "48") (z "18"));
  zcheck "gcd negative" "6" (Znum.gcd (z "-48") (z "18"));
  zcheck "gcd with zero" "7" (Znum.gcd (z "7") Znum.zero);
  zcheck "gcd coprime" "1" (Znum.gcd (z "35") (z "64"))

let test_egcd_identity () =
  let a = z "123456789" and b = z "987654321" in
  let g, x, y = Znum.egcd a b in
  Alcotest.(check bool) "a*x + b*y = g" true
    (Znum.equal (Znum.add (Znum.mul a x) (Znum.mul b y)) g);
  Alcotest.(check bool) "g = gcd" true (Znum.equal g (Znum.gcd a b))

let test_mod_inv () =
  let p = z "1000003" in
  (match Znum.mod_inv (z "3") ~m:p with
  | Some inv -> zcheck "3 * inv mod p" "1" (Znum.emod (Znum.mul inv (z "3")) p)
  | None -> Alcotest.fail "inverse must exist");
  Alcotest.(check bool) "non-invertible" true (Znum.mod_inv (z "6") ~m:(z "9") = None)

let test_mod_pow () =
  zcheck "2^10 mod 1000" "24" (Znum.mod_pow ~base:Znum.two ~exp:(z "10") ~m:(z "1000"));
  zcheck "x^0" "1" (Znum.mod_pow ~base:(z "999") ~exp:Znum.zero ~m:(z "1000"));
  (* Fermat's little theorem *)
  let p = z "1000003" in
  zcheck "fermat" "1" (Znum.mod_pow ~base:(z "31337") ~exp:(Znum.sub p Znum.one) ~m:p)

let test_bytes_be_roundtrip () =
  let v = z "123456789012345678901234567890" in
  Alcotest.(check bool) "roundtrip" true (Znum.equal v (Znum.of_bytes_be (Znum.to_bytes_be v)));
  let padded = Znum.to_bytes_be ~len:32 v in
  Alcotest.(check int) "padded length" 32 (Bytes.length padded);
  Alcotest.(check bool) "padded value" true (Znum.equal v (Znum.of_bytes_be padded));
  Alcotest.(check bool) "empty is zero" true (Znum.equal Znum.zero (Znum.of_bytes_be Bytes.empty))

let test_bytes_be_len_too_small () =
  Alcotest.check_raises "too small"
    (Invalid_argument "Znum.to_bytes_be: value too large for len") (fun () ->
      ignore (Znum.to_bytes_be ~len:2 (z "16777216")))

let qcheck_add_commutes =
  QCheck.Test.make ~name:"add commutes" ~count:300 (QCheck.pair arb_big arb_big)
    (fun (a, b) -> Znum.equal (Znum.add a b) (Znum.add b a))

let qcheck_mul_commutes =
  QCheck.Test.make ~name:"mul commutes" ~count:300 (QCheck.pair arb_big arb_big)
    (fun (a, b) -> Znum.equal (Znum.mul a b) (Znum.mul b a))

let qcheck_add_sub_inverse =
  QCheck.Test.make ~name:"(a+b)-b = a" ~count:300 (QCheck.pair arb_big arb_big)
    (fun (a, b) -> Znum.equal (Znum.sub (Znum.add a b) b) a)

let qcheck_divmod_invariant =
  QCheck.Test.make ~name:"a = q*b + r with |r| < |b|" ~count:300
    (QCheck.pair arb_big arb_big) (fun (a, b) ->
      QCheck.assume (Znum.sign b <> 0);
      let q, r = Znum.divmod a b in
      Znum.equal a (Znum.add (Znum.mul q b) r)
      && Znum.compare (Znum.abs r) (Znum.abs b) < 0
      && (Znum.sign r = 0 || Znum.sign r = Znum.sign a))

let qcheck_string_roundtrip =
  QCheck.Test.make ~name:"decimal roundtrip" ~count:300 arb_big (fun a ->
      Znum.equal a (Znum.of_string (Znum.to_string a)))

let qcheck_distributivity =
  QCheck.Test.make ~name:"a*(b+c) = a*b + a*c" ~count:200
    (QCheck.triple arb_big arb_big arb_big) (fun (a, b, c) ->
      Znum.equal (Znum.mul a (Znum.add b c)) (Znum.add (Znum.mul a b) (Znum.mul a c)))

let qcheck_modpow_mul =
  QCheck.Test.make ~name:"modpow multiplies exponents of same base" ~count:50
    (QCheck.triple QCheck.(int_range 2 1000) QCheck.(int_range 0 50) QCheck.(int_range 0 50))
    (fun (base, e1, e2) ->
      let m = Znum.of_int 1000003 in
      let b = Znum.of_int base in
      let lhs = Znum.mod_pow ~base:b ~exp:(Znum.of_int (e1 + e2)) ~m in
      let rhs =
        Znum.emod
          (Znum.mul
             (Znum.mod_pow ~base:b ~exp:(Znum.of_int e1) ~m)
             (Znum.mod_pow ~base:b ~exp:(Znum.of_int e2) ~m))
          m
      in
      Znum.equal lhs rhs)

(* --- primes ---------------------------------------------------------------- *)

let test_small_primes_table () =
  Alcotest.(check int) "first prime" 2 Prime.small_primes.(0);
  Alcotest.(check bool) "997 in table" true (Array.exists (( = ) 997) Prime.small_primes);
  Alcotest.(check bool) "999 not in table" false (Array.exists (( = ) 999) Prime.small_primes)

let test_primality_known () =
  let rng = Util.Rng.create ~seed:1L in
  List.iter
    (fun (v, expected) ->
      Alcotest.(check bool) v expected (Prime.is_probably_prime rng (z v)))
    [
      ("2", true); ("3", true); ("4", false); ("17", true); ("561", false);
      (* 561 is a Carmichael number *)
      ("1000003", true); ("1000005", false);
      ("2147483647", true); (* Mersenne prime 2^31-1 *)
      ("4294967297", false); (* Fermat number F5 = 641 * 6700417 *)
      ("170141183460469231731687303715884105727", true); (* 2^127 - 1 *)
      ("0", false); ("1", false);
    ]

let test_random_prime_properties () =
  let rng = Util.Rng.create ~seed:5L in
  let p = Prime.random_prime rng ~bits:64 in
  Alcotest.(check int) "exact bits" 64 (Znum.bit_length p);
  Alcotest.(check bool) "odd" true (Znum.is_odd p);
  Alcotest.(check bool) "probably prime" true (Prime.is_probably_prime rng p)

let test_random_below () =
  let rng = Util.Rng.create ~seed:6L in
  let bound = z "1000" in
  for _ = 1 to 200 do
    let v = Prime.random_below rng bound in
    Alcotest.(check bool) "in range" true (Znum.sign v >= 0 && Znum.compare v bound < 0)
  done

let test_schnorr_group () =
  let rng = Util.Rng.create ~seed:7L in
  let g = Prime.schnorr_group rng ~pbits:256 ~qbits:80 in
  Alcotest.(check int) "p bits" 256 (Znum.bit_length g.p);
  Alcotest.(check int) "q bits" 80 (Znum.bit_length g.q);
  (* q divides p-1 *)
  Alcotest.(check bool) "q | p-1" true
    (Znum.sign (Znum.rem (Znum.sub g.p Znum.one) g.q) = 0);
  (* g has order q *)
  Alcotest.(check bool) "g^q = 1" true
    (Znum.equal (Znum.mod_pow ~base:g.g ~exp:g.q ~m:g.p) Znum.one);
  Alcotest.(check bool) "g <> 1" false (Znum.equal g.g Znum.one)

let suite =
  ( "znum",
    [
      Alcotest.test_case "of/to string" `Quick test_of_to_string;
      Alcotest.test_case "of_string rejects" `Quick test_of_string_rejects;
      Alcotest.test_case "int roundtrip" `Quick test_int_roundtrip;
      Alcotest.test_case "to_int overflow" `Quick test_to_int_overflow;
      Alcotest.test_case "known product" `Quick test_known_product;
      Alcotest.test_case "truncated division" `Quick test_truncated_division_signs;
      Alcotest.test_case "division by zero" `Quick test_division_by_zero;
      Alcotest.test_case "shifts" `Quick test_shifts;
      Alcotest.test_case "bit length" `Quick test_bit_length;
      Alcotest.test_case "parity" `Quick test_parity;
      Alcotest.test_case "gcd" `Quick test_gcd;
      Alcotest.test_case "egcd identity" `Quick test_egcd_identity;
      Alcotest.test_case "mod_inv" `Quick test_mod_inv;
      Alcotest.test_case "mod_pow" `Quick test_mod_pow;
      Alcotest.test_case "bytes_be roundtrip" `Quick test_bytes_be_roundtrip;
      Alcotest.test_case "bytes_be len check" `Quick test_bytes_be_len_too_small;
      QCheck_alcotest.to_alcotest qcheck_add_commutes;
      QCheck_alcotest.to_alcotest qcheck_mul_commutes;
      QCheck_alcotest.to_alcotest qcheck_add_sub_inverse;
      QCheck_alcotest.to_alcotest qcheck_divmod_invariant;
      QCheck_alcotest.to_alcotest qcheck_string_roundtrip;
      QCheck_alcotest.to_alcotest qcheck_distributivity;
      QCheck_alcotest.to_alcotest qcheck_modpow_mul;
      Alcotest.test_case "small primes table" `Quick test_small_primes_table;
      Alcotest.test_case "primality known values" `Quick test_primality_known;
      Alcotest.test_case "random prime" `Quick test_random_prime_properties;
      Alcotest.test_case "random below" `Quick test_random_below;
      Alcotest.test_case "schnorr group" `Quick test_schnorr_group;
    ] )

(* --- additional edge cases ---------------------------------------------------- *)

let test_more_edges () =
  let z = Znum.of_string in
  (* zero handling *)
  Alcotest.(check int) "sign zero" 0 (Znum.sign Znum.zero);
  Alcotest.(check bool) "neg zero is zero" true (Znum.equal (Znum.neg Znum.zero) Znum.zero);
  Alcotest.(check string) "zero times big" "0"
    (Znum.to_string (Znum.mul Znum.zero (z "999999999999999999999")));
  (* subtraction crossing zero *)
  Alcotest.(check string) "small minus big" "-999999999999999999998"
    (Znum.to_string (Znum.sub Znum.one (z "999999999999999999999")));
  (* modpow with base >= modulus *)
  Alcotest.(check string) "big base" "4"
    (Znum.to_string (Znum.mod_pow ~base:(z "102") ~exp:(z "2") ~m:(z "100")));
  (* modpow with negative base (reduced first) *)
  Alcotest.(check string) "negative base" "4"
    (Znum.to_string (Znum.mod_pow ~base:(z "-3") ~exp:(z "2") ~m:(z "5")));
  (* shift by zero *)
  Alcotest.(check bool) "shift 0" true (Znum.equal (Znum.shift_left (z "42") 0) (z "42"));
  (* testbit *)
  Alcotest.(check bool) "bit 0 of 5" true (Znum.testbit (z "5") 0);
  Alcotest.(check bool) "bit 1 of 5" false (Znum.testbit (z "5") 1);
  Alcotest.(check bool) "bit 2 of 5" true (Znum.testbit (z "5") 2);
  Alcotest.(check bool) "bit 1000 of 5" false (Znum.testbit (z "5") 1000)

let test_compare_total_order () =
  let z = Znum.of_string in
  let values = [ z "-100"; z "-1"; Znum.zero; Znum.one; z "99"; z "12345678901234567890" ] in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          let expected = compare i j in
          let got = Znum.compare a b in
          Alcotest.(check bool)
            (Printf.sprintf "compare %d %d" i j)
            true
            ((expected < 0 && got < 0) || (expected = 0 && got = 0) || (expected > 0 && got > 0)))
        values)
    values

let qcheck_emod_range =
  QCheck.Test.make ~name:"emod lands in [0, m)" ~count:200 (QCheck.pair arb_big arb_big)
    (fun (a, m) ->
      QCheck.assume (Znum.sign m > 0);
      let r = Znum.emod a m in
      Znum.sign r >= 0 && Znum.compare r m < 0
      && Znum.sign (Znum.rem (Znum.sub a r) m) = 0)

let suite =
  ( fst suite,
    snd suite
    @ [
        Alcotest.test_case "more edges" `Quick test_more_edges;
        Alcotest.test_case "compare total order" `Quick test_compare_total_order;
        QCheck_alcotest.to_alcotest qcheck_emod_range;
      ] )
