(* Unit tests for Util.Stats. *)

let feq ?(eps = 1e-9) name expected actual =
  Alcotest.(check (float eps)) name expected actual

let test_mean () = feq "mean" 3.0 (Util.Stats.mean [ 1.0; 2.0; 3.0; 4.0; 5.0 ])

let test_mean_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty sample") (fun () ->
      ignore (Util.Stats.mean []))

let test_stddev_known () =
  (* sample stddev of [2;4;4;4;5;5;7;9] with n-1 denominator *)
  feq ~eps:1e-6 "stddev" 2.13808993529939517
    (Util.Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ])

let test_stddev_singleton () = feq "singleton" 0.0 (Util.Stats.stddev [ 5.0 ])
let test_stddev_constant () = feq "constant" 0.0 (Util.Stats.stddev [ 3.0; 3.0; 3.0 ])

let test_percentiles () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0; 8.0; 9.0; 10.0 ] in
  feq "median" 5.5 (Util.Stats.percentile xs 0.5);
  feq "p0" 1.0 (Util.Stats.percentile xs 0.0);
  feq "p100" 10.0 (Util.Stats.percentile xs 1.0);
  feq ~eps:1e-9 "p90" 9.1 (Util.Stats.percentile xs 0.9)

let test_percentile_unsorted_input () =
  feq "unsorted" 2.0 (Util.Stats.percentile [ 3.0; 1.0; 2.0 ] 0.5)

let test_nan_rejected () =
  (* the old polymorphic-compare sort left NaN wherever it landed,
     silently poisoning the order statistics *)
  Alcotest.check_raises "percentile" (Invalid_argument "Stats: NaN in sample") (fun () ->
      ignore (Util.Stats.percentile [ 1.0; Float.nan; 2.0 ] 0.5));
  Alcotest.check_raises "summarize" (Invalid_argument "Stats: NaN in sample") (fun () ->
      ignore (Util.Stats.summarize [ Float.nan ]))

let test_order_stats_consistent () =
  (* summarize shares one Float.compare-sorted array; its order
     statistics must agree with standalone percentile calls even on
     adversarial inputs (negative zero, infinities, denormals) *)
  let xs = [ 7.5; -0.0; 0.0; 4.2; 1e-320; -3.0; 9.0; 2.5 ] in
  let s = Util.Stats.summarize xs in
  feq "median matches" (Util.Stats.percentile xs 0.5) s.median;
  feq "p90 matches" (Util.Stats.percentile xs 0.9) s.p90;
  feq "p99 matches" (Util.Stats.percentile xs 0.99) s.p99;
  feq "min" (-3.0) s.min;
  feq "max" 9.0 s.max;
  (* infinities sort to the extremes under Float.compare *)
  let inf = Util.Stats.summarize [ 1.0; infinity; neg_infinity ] in
  Alcotest.(check bool) "-inf min" true (inf.min = neg_infinity);
  Alcotest.(check bool) "+inf max" true (inf.max = infinity);
  feq "finite median" 1.0 inf.median

let test_t_critical () =
  feq ~eps:1e-6 "df=1" 12.706 (Util.Stats.t_critical_95 1);
  feq ~eps:1e-6 "df=10" 2.228 (Util.Stats.t_critical_95 10);
  feq ~eps:1e-6 "df=30" 2.042 (Util.Stats.t_critical_95 30);
  feq ~eps:1e-6 "df large" 1.96 (Util.Stats.t_critical_95 10000);
  Alcotest.(check bool) "monotone decreasing" true
    (Util.Stats.t_critical_95 5 > Util.Stats.t_critical_95 25)

let test_ci95 () =
  (* n=4, stddev=1 -> ci = t(3) * 1/2 = 3.182/2 *)
  let xs = [ 1.0; 2.0; 2.0; 3.0 ] in
  let sd = Util.Stats.stddev xs in
  feq ~eps:1e-9 "ci formula"
    (Util.Stats.t_critical_95 3 *. sd /. 2.0)
    (Util.Stats.ci95_halfwidth xs);
  feq "single sample" 0.0 (Util.Stats.ci95_halfwidth [ 42.0 ])

let test_summarize () =
  let s = Util.Stats.summarize [ 10.0; 20.0; 30.0 ] in
  Alcotest.(check int) "count" 3 s.count;
  feq "mean" 20.0 s.mean;
  feq "min" 10.0 s.min;
  feq "max" 30.0 s.max;
  feq "median" 20.0 s.median

let test_online_matches_batch () =
  let xs = [ 3.0; 1.0; 4.0; 1.0; 5.0; 9.0; 2.0; 6.0 ] in
  let online = Util.Stats.Online.create () in
  List.iter (Util.Stats.Online.add online) xs;
  Alcotest.(check int) "count" 8 (Util.Stats.Online.count online);
  feq ~eps:1e-9 "mean" (Util.Stats.mean xs) (Util.Stats.Online.mean online);
  feq ~eps:1e-9 "stddev" (Util.Stats.stddev xs) (Util.Stats.Online.stddev online)

let test_histogram () =
  let h = Util.Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  List.iter (Util.Stats.Histogram.add h) [ 0.5; 1.5; 2.5; 5.0; 9.9; -3.0; 42.0 ];
  Alcotest.(check int) "total" 7 (Util.Stats.Histogram.total h);
  let counts = Util.Stats.Histogram.counts h in
  Alcotest.(check int) "first bin catches low outlier" 3 counts.(0);
  Alcotest.(check int) "last bin catches high outlier" 2 counts.(4);
  Alcotest.(check bool) "renders" true (String.length (Util.Stats.Histogram.render h ~width:20) > 0)

let qcheck_ci_nonnegative =
  QCheck.Test.make ~name:"ci95 is non-negative" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 2 40) (float_range (-1000.0) 1000.0))
    (fun xs -> Util.Stats.ci95_halfwidth xs >= 0.0)

let qcheck_mean_bounded =
  QCheck.Test.make ~name:"mean within min/max" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_range (-1e6) 1e6))
    (fun xs ->
      let s = Util.Stats.summarize xs in
      s.mean >= s.min -. 1e-6 && s.mean <= s.max +. 1e-6)

let suite =
  ( "stats",
    [
      Alcotest.test_case "mean" `Quick test_mean;
      Alcotest.test_case "mean empty" `Quick test_mean_empty;
      Alcotest.test_case "stddev known" `Quick test_stddev_known;
      Alcotest.test_case "stddev singleton" `Quick test_stddev_singleton;
      Alcotest.test_case "stddev constant" `Quick test_stddev_constant;
      Alcotest.test_case "percentiles" `Quick test_percentiles;
      Alcotest.test_case "percentile unsorted" `Quick test_percentile_unsorted_input;
      Alcotest.test_case "nan rejected" `Quick test_nan_rejected;
      Alcotest.test_case "order stats consistent" `Quick test_order_stats_consistent;
      Alcotest.test_case "t critical values" `Quick test_t_critical;
      Alcotest.test_case "ci95" `Quick test_ci95;
      Alcotest.test_case "summarize" `Quick test_summarize;
      Alcotest.test_case "online accumulator" `Quick test_online_matches_batch;
      Alcotest.test_case "histogram" `Quick test_histogram;
      QCheck_alcotest.to_alcotest qcheck_ci_nonnegative;
      QCheck_alcotest.to_alcotest qcheck_mean_bounded;
    ] )
