(* Tests for the totally-ordered message log. *)

let setup ?(n = 4) ?(capacity = 8) ?(loss = 0.01) ?(seed = 910L) () =
  let engine = Net.Engine.create () in
  let rng = Util.Rng.create ~seed in
  let radio = Net.Radio.create engine (Util.Rng.split rng) ~n in
  Net.Radio.set_loss_prob radio loss;
  let cfg = { (Core.Proto.default_config ~n) with max_phases = 45 } in
  let keyrings =
    Core.Keyring.setup (Util.Rng.split rng) ~n ~phases:(capacity * cfg.max_phases) ()
  in
  let logs =
    Array.init n (fun i ->
        let node = Net.Node.create engine radio ~id:i ~rng:(Util.Rng.split rng) in
        Core.Ordered_log.create node cfg ~keyring:keyrings.(i) ~capacity ())
  in
  (engine, logs)

let run_until engine logs ~slots ~horizon =
  Net.Engine.run_while engine (fun () ->
      Net.Engine.now engine < horizon
      && Array.exists
           (fun log -> List.length (Core.Ordered_log.delivered log) < slots)
           logs)

let payloads_of log =
  List.map
    (fun (slot, payload) -> (slot, Option.map Bytes.to_string payload))
    (Core.Ordered_log.delivered log)

let test_everyone_gets_same_log () =
  let engine, logs = setup () in
  (* processes 0..3 each submit one message; slots rotate 0,1,2,3,... *)
  Array.iteri
    (fun i log -> Core.Ordered_log.submit log (Bytes.of_string (Printf.sprintf "from-%d" i)))
    logs;
  Array.iter Core.Ordered_log.start logs;
  run_until engine logs ~slots:4 ~horizon:30.0;
  let reference = payloads_of logs.(0) in
  Alcotest.(check bool) "4 slots" true (List.length reference >= 4);
  Array.iter
    (fun log ->
      let mine = payloads_of log in
      let shared = min (List.length mine) (List.length reference) in
      List.iteri
        (fun i (slot, payload) ->
          if i < shared then begin
            let rslot, rpayload = List.nth reference i in
            Alcotest.(check int) "same slot" rslot slot;
            Alcotest.(check (option string)) "same payload" rpayload payload
          end)
        mine)
    logs;
  (* the four submissions all appear, in proposer order *)
  List.iteri
    (fun slot (s, payload) ->
      Alcotest.(check int) "slot number" slot s;
      if slot < 4 then
        Alcotest.(check (option string)) "content" (Some (Printf.sprintf "from-%d" slot)) payload)
    (List.filteri (fun i _ -> i < 4) reference)

let test_silent_proposers_are_skipped () =
  let engine, logs = setup ~seed:911L () in
  (* only process 2 submits; slots 0, 1 (and 3) must be skipped *)
  Core.Ordered_log.submit logs.(2) (Bytes.of_string "lonely");
  Array.iter Core.Ordered_log.start logs;
  run_until engine logs ~slots:3 ~horizon:30.0;
  let log = payloads_of logs.(0) in
  Alcotest.(check bool) "slot 0 skipped" true (List.assoc 0 log = None);
  Alcotest.(check bool) "slot 1 skipped" true (List.assoc 1 log = None);
  Alcotest.(check (option string)) "slot 2 committed" (Some "lonely") (List.assoc 2 log)

let test_multiple_rounds_per_proposer () =
  let engine, logs = setup ~capacity:8 ~seed:912L () in
  (* process 1 submits two messages: they go to slots 1 and 5 *)
  Core.Ordered_log.submit logs.(1) (Bytes.of_string "first");
  Core.Ordered_log.submit logs.(1) (Bytes.of_string "second");
  Array.iter Core.Ordered_log.start logs;
  run_until engine logs ~slots:6 ~horizon:40.0;
  let log = payloads_of logs.(3) in
  Alcotest.(check (option string)) "slot 1" (Some "first") (List.assoc 1 log);
  Alcotest.(check (option string)) "slot 5" (Some "second") (List.assoc 5 log)

let test_order_under_loss () =
  let engine, logs = setup ~loss:0.15 ~seed:913L () in
  Array.iteri
    (fun i log ->
      Core.Ordered_log.submit log (Bytes.of_string (Printf.sprintf "m%d" i)))
    logs;
  Array.iter Core.Ordered_log.start logs;
  run_until engine logs ~slots:4 ~horizon:60.0;
  (* agreement on the common prefix across all processes *)
  let reference = payloads_of logs.(0) in
  Array.iter
    (fun log ->
      let mine = payloads_of log in
      let shared = min (List.length mine) (List.length reference) in
      for i = 0 to shared - 1 do
        Alcotest.(check bool) "prefix agreement" true
          (List.nth mine i = List.nth reference i)
      done)
    logs;
  Alcotest.(check bool) "made progress" true (List.length reference >= 4)

let test_rejects_bad_capacity () =
  let engine = Net.Engine.create () in
  ignore engine;
  let rng = Util.Rng.create ~seed:914L in
  let radio = Net.Radio.create (Net.Engine.create ()) (Util.Rng.split rng) ~n:4 in
  let cfg = { (Core.Proto.default_config ~n:4) with max_phases = 45 } in
  let keyrings = Core.Keyring.setup (Util.Rng.split rng) ~n:4 ~phases:45 () in
  let node = Net.Node.create (Net.Engine.create ()) radio ~id:0 ~rng:(Util.Rng.split rng) in
  Alcotest.check_raises "capacity 0" (Invalid_argument "Ordered_log.create: capacity must be positive")
    (fun () -> ignore (Core.Ordered_log.create node cfg ~keyring:keyrings.(0) ~capacity:0 ()))

let suite =
  ( "ordered-log",
    [
      Alcotest.test_case "same log everywhere" `Quick test_everyone_gets_same_log;
      Alcotest.test_case "silent proposers skipped" `Quick test_silent_proposers_are_skipped;
      Alcotest.test_case "multiple rounds" `Quick test_multiple_rounds_per_proposer;
      Alcotest.test_case "order under loss" `Slow test_order_under_loss;
      Alcotest.test_case "bad capacity" `Quick test_rejects_bad_capacity;
    ] )
