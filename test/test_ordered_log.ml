(* Tests for the pipelined totally-ordered command log: agreement,
   batching, payload authentication (forged frames, equivocating
   proposers), timer quiescence, and bounded memory. *)

let setup ?(n = 4) ?(capacity = 8) ?(loss = 0.01) ?(seed = 910L) ?(window = 1)
    ?(max_batch = 64) ?payload_grace () =
  let engine = Net.Engine.create () in
  let rng = Util.Rng.create ~seed in
  let radio = Net.Radio.create engine (Util.Rng.split rng) ~n in
  Net.Radio.set_loss_prob radio loss;
  let cfg = { (Core.Proto.default_config ~n) with max_phases = 45 } in
  let keyrings =
    Core.Keyring.setup (Util.Rng.split rng) ~n ~phases:(capacity * cfg.max_phases) ()
  in
  let nodes =
    Array.init n (fun i -> Net.Node.create engine radio ~id:i ~rng:(Util.Rng.split rng))
  in
  let logs =
    Array.init n (fun i ->
        Core.Ordered_log.create nodes.(i) cfg ~keyring:keyrings.(i) ~capacity ~window
          ~max_batch ?payload_grace ())
  in
  (engine, nodes, logs)

let run_until engine logs ~slots ~horizon =
  Net.Engine.run_while engine (fun () ->
      Net.Engine.now engine < horizon
      && Array.exists (fun log -> Core.Ordered_log.delivered_count log < slots) logs)

(* a committed slot's batch rendered as its commands joined with "," *)
let payloads_of log =
  List.map
    (fun (slot, payload) ->
      ( slot,
        Option.map
          (fun batch ->
            String.concat ","
              (List.map Bytes.to_string (Core.Ordered_log.decode_batch batch)))
          payload ))
    (Core.Ordered_log.delivered log)

let test_everyone_gets_same_log () =
  let engine, _, logs = setup () in
  (* processes 0..3 each submit one message; slots rotate 0,1,2,3,... *)
  Array.iteri
    (fun i log -> Core.Ordered_log.submit log (Bytes.of_string (Printf.sprintf "from-%d" i)))
    logs;
  Array.iter Core.Ordered_log.start logs;
  run_until engine logs ~slots:4 ~horizon:30.0;
  let reference = payloads_of logs.(0) in
  Alcotest.(check bool) "4 slots" true (List.length reference >= 4);
  Array.iter
    (fun log ->
      let mine = payloads_of log in
      let shared = min (List.length mine) (List.length reference) in
      List.iteri
        (fun i (slot, payload) ->
          if i < shared then begin
            let rslot, rpayload = List.nth reference i in
            Alcotest.(check int) "same slot" rslot slot;
            Alcotest.(check (option string)) "same payload" rpayload payload
          end)
        mine)
    logs;
  (* the four submissions all appear, in proposer order *)
  List.iteri
    (fun slot (s, payload) ->
      Alcotest.(check int) "slot number" slot s;
      if slot < 4 then
        Alcotest.(check (option string)) "content" (Some (Printf.sprintf "from-%d" slot)) payload)
    (List.filteri (fun i _ -> i < 4) reference)

let test_silent_proposers_are_skipped () =
  let engine, _, logs = setup ~seed:911L () in
  (* only process 2 submits; slots 0, 1 (and 3) must be skipped *)
  Core.Ordered_log.submit logs.(2) (Bytes.of_string "lonely");
  Array.iter Core.Ordered_log.start logs;
  run_until engine logs ~slots:3 ~horizon:30.0;
  let log = payloads_of logs.(0) in
  Alcotest.(check bool) "slot 0 skipped" true (List.assoc 0 log = None);
  Alcotest.(check bool) "slot 1 skipped" true (List.assoc 1 log = None);
  Alcotest.(check (option string)) "slot 2 committed" (Some "lonely") (List.assoc 2 log)

let test_multiple_rounds_per_proposer () =
  let engine, _, logs = setup ~capacity:8 ~seed:912L ~max_batch:1 () in
  (* batching off: process 1's two messages go to its slots 1 and 5 *)
  Core.Ordered_log.submit logs.(1) (Bytes.of_string "first");
  Core.Ordered_log.submit logs.(1) (Bytes.of_string "second");
  Array.iter Core.Ordered_log.start logs;
  run_until engine logs ~slots:6 ~horizon:40.0;
  let log = payloads_of logs.(3) in
  Alcotest.(check (option string)) "slot 1" (Some "first") (List.assoc 1 log);
  Alcotest.(check (option string)) "slot 5" (Some "second") (List.assoc 5 log)

let test_batching_packs_one_slot () =
  let engine, _, logs = setup ~capacity:4 ~seed:915L () in
  (* batching on: five commands from process 1 share slot 1 *)
  for i = 0 to 4 do
    Core.Ordered_log.submit logs.(1) (Bytes.of_string (Printf.sprintf "c%d" i))
  done;
  Array.iter Core.Ordered_log.start logs;
  run_until engine logs ~slots:4 ~horizon:30.0;
  let log = payloads_of logs.(2) in
  Alcotest.(check (option string)) "slot 1 batch" (Some "c0,c1,c2,c3,c4") (List.assoc 1 log)

let test_order_under_loss () =
  let engine, _, logs = setup ~loss:0.15 ~seed:913L () in
  Array.iteri
    (fun i log ->
      Core.Ordered_log.submit log (Bytes.of_string (Printf.sprintf "m%d" i)))
    logs;
  Array.iter Core.Ordered_log.start logs;
  run_until engine logs ~slots:4 ~horizon:60.0;
  (* agreement on the common prefix across all processes *)
  let reference = payloads_of logs.(0) in
  Array.iter
    (fun log ->
      let mine = payloads_of log in
      let shared = min (List.length mine) (List.length reference) in
      for i = 0 to shared - 1 do
        Alcotest.(check bool) "prefix agreement" true
          (List.nth mine i = List.nth reference i)
      done)
    logs;
  Alcotest.(check bool) "made progress" true (List.length reference >= 4)

let test_pipelined_window_delivers_in_order () =
  let engine, _, logs =
    setup ~capacity:8 ~window:4 ~loss:0.15 ~seed:916L ~max_batch:1 ()
  in
  (* W=4 under loss: slots decide out of order, delivery must not *)
  Array.iteri
    (fun i log ->
      Core.Ordered_log.submit log (Bytes.of_string (Printf.sprintf "a%d" i));
      Core.Ordered_log.submit log (Bytes.of_string (Printf.sprintf "b%d" i)))
    logs;
  Array.iter Core.Ordered_log.start logs;
  run_until engine logs ~slots:8 ~horizon:90.0;
  Array.iter
    (fun log ->
      let mine = Core.Ordered_log.delivered log in
      Alcotest.(check (list int)) "slots in order"
        (List.init (List.length mine) Fun.id)
        (List.map fst mine))
    logs;
  let reference = payloads_of logs.(0) in
  Alcotest.(check int) "all slots delivered" 8 (List.length reference);
  Array.iter
    (fun log -> Alcotest.(check bool) "same log" true (payloads_of log = reference))
    logs

(* Regression for the payload-injection bug: a non-proposer broadcasts
   a payload frame for someone else's slot. Before the src check the
   forged bytes were stored and committed; now the slot must skip
   (its real proposer stays silent) and no process may deliver the
   forged content. *)
let test_forged_payload_rejected () =
  let engine, nodes, logs = setup ~capacity:4 ~loss:0.0 ~seed:917L () in
  (* process 1 submits nothing for slot 0 (owned by 0) but forges its payload *)
  Core.Ordered_log.submit logs.(2) (Bytes.of_string "honest");
  Array.iter Core.Ordered_log.start logs;
  let forged =
    Core.Ordered_log.encode_payload_frame ~slot:0
      (Core.Ordered_log.encode_batch [ Bytes.of_string "evil" ])
  in
  ignore
    (Net.Engine.schedule engine ~delay:0.001 (fun () ->
         Net.Node.broadcast nodes.(1)
           ~port:(Core.Ordered_log.payload_port logs.(1))
           forged));
  run_until engine logs ~slots:4 ~horizon:30.0;
  Array.iter
    (fun log ->
      let mine = payloads_of log in
      Alcotest.(check (option string)) "slot 0 skipped" None (List.assoc 0 mine);
      Alcotest.(check (option string)) "slot 2 honest" (Some "honest") (List.assoc 2 mine))
    logs

(* An equivocating proposer unicasts batch A to two processes and batch
   B to the third, then echoes A. The ready certificate can only form
   for one digest, and its attached-batch recovery converges the victim:
   every honest process delivers identical bytes. *)
let test_equivocating_proposer_cannot_split_the_log () =
  let engine, nodes, logs = setup ~capacity:4 ~loss:0.0 ~seed:918L () in
  (* node 0 is Byzantine: drive its frames by hand, never start its log *)
  let honest = [ 1; 2; 3 ] in
  Core.Ordered_log.submit logs.(1) (Bytes.of_string "h1");
  List.iter (fun i -> Core.Ordered_log.start logs.(i)) honest;
  let port = Core.Ordered_log.payload_port logs.(1) in
  let batch_a = Core.Ordered_log.encode_batch [ Bytes.of_string "A" ] in
  let batch_b = Core.Ordered_log.encode_batch [ Bytes.of_string "B" ] in
  ignore
    (Net.Engine.schedule engine ~delay:0.001 (fun () ->
         Net.Node.unicast nodes.(0) ~dst:1 ~port
           (Core.Ordered_log.encode_payload_frame ~slot:0 batch_a);
         Net.Node.unicast nodes.(0) ~dst:2 ~port
           (Core.Ordered_log.encode_payload_frame ~slot:0 batch_a);
         Net.Node.unicast nodes.(0) ~dst:3 ~port
           (Core.Ordered_log.encode_payload_frame ~slot:0 batch_b)));
  ignore
    (Net.Engine.schedule engine ~delay:0.004 (fun () ->
         Net.Node.broadcast nodes.(0) ~port
           (Core.Ordered_log.encode_echo_frame ~slot:0
              ~digest:(Core.Ordered_log.batch_digest batch_a))));
  Net.Engine.run_while engine (fun () ->
      Net.Engine.now engine < 30.0
      && List.exists (fun i -> Core.Ordered_log.delivered_count logs.(i) < 4) honest);
  let reference = payloads_of logs.(1) in
  Alcotest.(check (option string)) "slot 0 carries A" (Some "A") (List.assoc 0 reference);
  List.iter
    (fun i ->
      Alcotest.(check bool) "identical delivered bytes" true
        (payloads_of logs.(i) = reference))
    honest

(* Regression for the timer leak: after every slot has an outcome and
   the payload grace expires, the log must stop re-arming its tick so
   the engine drains to zero pending events. *)
let test_timers_quiesce_when_log_finishes () =
  let engine, _, logs = setup ~capacity:4 ~seed:919L ~payload_grace:0.5 () in
  Array.iteri
    (fun i log -> Core.Ordered_log.submit log (Bytes.of_string (Printf.sprintf "q%d" i)))
    logs;
  Array.iter Core.Ordered_log.start logs;
  run_until engine logs ~slots:4 ~horizon:30.0;
  Array.iter
    (fun log -> Alcotest.(check int) "all delivered" 4 (Core.Ordered_log.delivered_count log))
    logs;
  (* graces and consensus linger tails are well under this horizon *)
  Net.Engine.run engine ~until:(Net.Engine.now engine +. 10.0);
  Alcotest.(check int) "engine drained" 0 (Net.Engine.pending engine)

let test_memory_stays_bounded_by_window () =
  let window = 2 in
  let engine, _, logs =
    setup ~capacity:12 ~window ~seed:920L ~max_batch:1 ~payload_grace:0.3 ()
  in
  Array.iter
    (fun log ->
      for i = 0 to 2 do
        Core.Ordered_log.submit log (Bytes.of_string (Printf.sprintf "x%d" i))
      done)
    logs;
  Array.iter Core.Ordered_log.start logs;
  run_until engine logs ~slots:12 ~horizon:90.0;
  (* let rebroadcast graces expire so proposer payloads get pruned too *)
  Net.Engine.run engine ~until:(Net.Engine.now engine +. 5.0);
  Array.iter
    (fun log ->
      Alcotest.(check int) "all delivered" 12 (Core.Ordered_log.delivered_count log);
      let m = Core.Ordered_log.mem_stats log in
      Alcotest.(check bool) "payload entries bounded" true
        (m.Core.Ordered_log.payload_entries <= window);
      Alcotest.(check bool) "vote entries bounded" true
        (m.Core.Ordered_log.vote_entries <= 2 * window * 4);
      Alcotest.(check bool) "outcome entries bounded" true
        (m.Core.Ordered_log.outcome_entries <= window);
      Alcotest.(check bool) "proposed entries bounded" true
        (m.Core.Ordered_log.proposed_entries <= window);
      Alcotest.(check int) "no live timers" 0 m.Core.Ordered_log.timer_entries)
    logs

let test_rejects_bad_capacity () =
  let engine = Net.Engine.create () in
  ignore engine;
  let rng = Util.Rng.create ~seed:914L in
  let radio = Net.Radio.create (Net.Engine.create ()) (Util.Rng.split rng) ~n:4 in
  let cfg = { (Core.Proto.default_config ~n:4) with max_phases = 45 } in
  let keyrings = Core.Keyring.setup (Util.Rng.split rng) ~n:4 ~phases:45 () in
  let node = Net.Node.create (Net.Engine.create ()) radio ~id:0 ~rng:(Util.Rng.split rng) in
  Alcotest.check_raises "capacity 0" (Invalid_argument "Ordered_log.create: capacity must be positive")
    (fun () -> ignore (Core.Ordered_log.create node cfg ~keyring:keyrings.(0) ~capacity:0 ()));
  Alcotest.check_raises "window 0" (Invalid_argument "Ordered_log.create: window must be positive")
    (fun () ->
      ignore (Core.Ordered_log.create node cfg ~keyring:keyrings.(0) ~capacity:1 ~window:0 ()))

let suite =
  ( "ordered-log",
    [
      Alcotest.test_case "same log everywhere" `Quick test_everyone_gets_same_log;
      Alcotest.test_case "silent proposers skipped" `Quick test_silent_proposers_are_skipped;
      Alcotest.test_case "multiple rounds" `Quick test_multiple_rounds_per_proposer;
      Alcotest.test_case "batching packs one slot" `Quick test_batching_packs_one_slot;
      Alcotest.test_case "order under loss" `Slow test_order_under_loss;
      Alcotest.test_case "pipelined window in order" `Slow test_pipelined_window_delivers_in_order;
      Alcotest.test_case "forged payload rejected" `Quick test_forged_payload_rejected;
      Alcotest.test_case "equivocation cannot split log" `Quick
        test_equivocating_proposer_cannot_split_the_log;
      Alcotest.test_case "timers quiesce" `Quick test_timers_quiesce_when_log_finishes;
      Alcotest.test_case "memory bounded by window" `Slow test_memory_stays_bounded_by_window;
      Alcotest.test_case "bad capacity" `Quick test_rejects_bad_capacity;
    ] )
