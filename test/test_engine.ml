(* Tests for the discrete-event engine and the CPU model. *)

let test_time_order () =
  let engine = Net.Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Net.Engine.schedule engine ~delay:3.0 (note "c"));
  ignore (Net.Engine.schedule engine ~delay:1.0 (note "a"));
  ignore (Net.Engine.schedule engine ~delay:2.0 (note "b"));
  Net.Engine.run engine;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check (float 1e-12)) "clock at last event" 3.0 (Net.Engine.now engine)

let test_tie_break_fifo () =
  let engine = Net.Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    ignore (Net.Engine.schedule engine ~delay:1.0 (fun () -> log := i :: !log))
  done;
  Net.Engine.run engine;
  Alcotest.(check (list int)) "fifo ties" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (List.rev !log)

let test_nested_scheduling () =
  let engine = Net.Engine.create () in
  let log = ref [] in
  ignore
    (Net.Engine.schedule engine ~delay:1.0 (fun () ->
         log := "outer" :: !log;
         ignore (Net.Engine.schedule engine ~delay:0.5 (fun () -> log := "inner" :: !log))));
  Net.Engine.run engine;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  Alcotest.(check (float 1e-12)) "time" 1.5 (Net.Engine.now engine)

let test_cancel () =
  let engine = Net.Engine.create () in
  let fired = ref false in
  let handle = Net.Engine.schedule engine ~delay:1.0 (fun () -> fired := true) in
  Net.Engine.cancel engine handle;
  Net.Engine.run engine;
  Alcotest.(check bool) "not fired" false !fired;
  (* double cancel is a no-op *)
  Net.Engine.cancel engine handle

let test_cancel_updates_pending () =
  (* the old pending counted cancelled events still sitting in the
     heap, so run_while loops driven by pending spun on dead work *)
  let engine = Net.Engine.create () in
  let h1 = Net.Engine.schedule engine ~delay:1.0 (fun () -> ()) in
  ignore (Net.Engine.schedule engine ~delay:2.0 (fun () -> ()));
  ignore (Net.Engine.schedule engine ~delay:3.0 (fun () -> ()));
  Alcotest.(check int) "three live" 3 (Net.Engine.pending engine);
  Net.Engine.cancel engine h1;
  Alcotest.(check int) "cancel drops pending" 2 (Net.Engine.pending engine);
  Alcotest.(check int) "corpse still heaped" 3 (Net.Engine.heap_size engine);
  (* double cancel must not decrement twice *)
  Net.Engine.cancel engine h1;
  Alcotest.(check int) "idempotent" 2 (Net.Engine.pending engine)

let test_cancelled_head_run_until () =
  (* a cancelled event at the head is discarded by the horizon sweep
     without firing and without perturbing the live count *)
  let engine = Net.Engine.create () in
  let fired = ref [] in
  let h1 = Net.Engine.schedule engine ~delay:1.0 (fun () -> fired := 1 :: !fired) in
  ignore (Net.Engine.schedule engine ~delay:2.0 (fun () -> fired := 2 :: !fired));
  ignore (Net.Engine.schedule engine ~delay:3.0 (fun () -> fired := 3 :: !fired));
  Net.Engine.cancel engine h1;
  Net.Engine.run engine ~until:1.5;
  Alcotest.(check (list int)) "cancelled head never fires" [] !fired;
  Alcotest.(check int) "two live after sweep" 2 (Net.Engine.pending engine);
  Alcotest.(check int) "corpse popped" 2 (Net.Engine.heap_size engine);
  Net.Engine.run engine;
  Alcotest.(check (list int)) "survivors fire" [ 2; 3 ] (List.rev !fired);
  Alcotest.(check int) "drained" 0 (Net.Engine.pending engine)

let test_pending_after_fire () =
  let engine = Net.Engine.create () in
  for i = 1 to 4 do
    ignore (Net.Engine.schedule engine ~delay:(float_of_int i) (fun () -> ()))
  done;
  Net.Engine.run engine ~until:2.5;
  Alcotest.(check int) "fired events leave pending" 2 (Net.Engine.pending engine);
  Alcotest.(check int) "and the heap" 2 (Net.Engine.heap_size engine)

let test_run_until () =
  let engine = Net.Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Net.Engine.schedule engine ~delay:(float_of_int i) (fun () -> incr count))
  done;
  Net.Engine.run engine ~until:5.5;
  Alcotest.(check int) "five fired" 5 !count;
  Alcotest.(check int) "five pending" 5 (Net.Engine.pending engine);
  Net.Engine.run engine;
  Alcotest.(check int) "all fired" 10 !count

let test_run_while () =
  let engine = Net.Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Net.Engine.schedule engine ~delay:(float_of_int i) (fun () -> incr count))
  done;
  Net.Engine.run_while engine (fun () -> !count < 3);
  Alcotest.(check int) "stopped by predicate" 3 !count

let test_max_events () =
  let engine = Net.Engine.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    ignore (Net.Engine.schedule engine ~delay:1.0 (fun () -> incr count))
  done;
  Net.Engine.run engine ~max_events:4;
  Alcotest.(check int) "bounded" 4 !count

let test_at_in_past_clamped () =
  let engine = Net.Engine.create () in
  let when_fired = ref (-1.0) in
  ignore
    (Net.Engine.schedule engine ~delay:2.0 (fun () ->
         ignore
           (Net.Engine.at engine ~time:1.0 (fun () -> when_fired := Net.Engine.now engine))));
  Net.Engine.run engine;
  Alcotest.(check (float 1e-12)) "clamped to now" 2.0 !when_fired

let test_bad_delay_rejected () =
  let engine = Net.Engine.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Engine.schedule: bad delay") (fun () ->
      ignore (Net.Engine.schedule engine ~delay:(-1.0) (fun () -> ())))

let test_step () =
  let engine = Net.Engine.create () in
  Alcotest.(check bool) "empty" false (Net.Engine.step engine);
  ignore (Net.Engine.schedule engine ~delay:1.0 (fun () -> ()));
  Alcotest.(check bool) "one" true (Net.Engine.step engine);
  Alcotest.(check bool) "drained" false (Net.Engine.step engine)

let test_heap_stress () =
  (* many events in random order must still fire in time order *)
  let engine = Net.Engine.create () in
  let rng = Util.Rng.create ~seed:123L in
  let last = ref (-1.0) in
  let violations = ref 0 in
  for _ = 1 to 5000 do
    let delay = Util.Rng.float rng 100.0 in
    ignore
      (Net.Engine.schedule engine ~delay (fun () ->
           if Net.Engine.now engine < !last then incr violations;
           last := Net.Engine.now engine))
  done;
  Net.Engine.run engine;
  Alcotest.(check int) "monotone" 0 !violations

(* --- CPU ------------------------------------------------------------------ *)

let test_cpu_serializes_jobs () =
  let engine = Net.Engine.create () in
  let cpu = Net.Cpu.create engine in
  let log = ref [] in
  Net.Cpu.enqueue cpu (fun () ->
      Net.Cpu.charge cpu 0.010;
      log := ("job1", Net.Engine.now engine) :: !log);
  Net.Cpu.enqueue cpu (fun () -> log := ("job2", Net.Engine.now engine) :: !log);
  Net.Engine.run engine;
  match List.rev !log with
  | [ ("job1", t1); ("job2", t2) ] ->
      Alcotest.(check (float 1e-9)) "job1 at zero" 0.0 t1;
      Alcotest.(check (float 1e-9)) "job2 delayed by the charge" 0.010 t2
  | _ -> Alcotest.fail "wrong job order"

let test_cpu_charge_accumulates () =
  let engine = Net.Engine.create () in
  let cpu = Net.Cpu.create engine in
  let times = ref [] in
  for _ = 1 to 3 do
    Net.Cpu.enqueue cpu (fun () ->
        Net.Cpu.charge cpu 0.005;
        times := Net.Engine.now engine :: !times)
  done;
  Net.Engine.run engine;
  Alcotest.(check (list (float 1e-9))) "spaced by cost" [ 0.0; 0.005; 0.010 ] (List.rev !times)

let test_cpu_idle_runs_now () =
  let engine = Net.Engine.create () in
  let cpu = Net.Cpu.create engine in
  ignore
    (Net.Engine.schedule engine ~delay:1.0 (fun () ->
         Net.Cpu.enqueue cpu (fun () ->
             Alcotest.(check (float 1e-9)) "immediate" 1.0 (Net.Engine.now engine))));
  Net.Engine.run engine

let test_cpu_negative_charge_rejected () =
  let engine = Net.Engine.create () in
  let cpu = Net.Cpu.create engine in
  Alcotest.check_raises "negative" (Invalid_argument "Cpu.charge: negative cost") (fun () ->
      Net.Cpu.charge cpu (-1.0))

let suite =
  ( "engine",
    [
      Alcotest.test_case "time order" `Quick test_time_order;
      Alcotest.test_case "tie break fifo" `Quick test_tie_break_fifo;
      Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
      Alcotest.test_case "cancel" `Quick test_cancel;
      Alcotest.test_case "cancel updates pending" `Quick test_cancel_updates_pending;
      Alcotest.test_case "cancelled head swept" `Quick test_cancelled_head_run_until;
      Alcotest.test_case "pending after fire" `Quick test_pending_after_fire;
      Alcotest.test_case "run until" `Quick test_run_until;
      Alcotest.test_case "run while" `Quick test_run_while;
      Alcotest.test_case "max events" `Quick test_max_events;
      Alcotest.test_case "at in past" `Quick test_at_in_past_clamped;
      Alcotest.test_case "bad delay" `Quick test_bad_delay_rejected;
      Alcotest.test_case "step" `Quick test_step;
      Alcotest.test_case "heap stress" `Quick test_heap_stress;
      Alcotest.test_case "cpu serializes" `Quick test_cpu_serializes_jobs;
      Alcotest.test_case "cpu charge accumulates" `Quick test_cpu_charge_accumulates;
      Alcotest.test_case "cpu idle immediate" `Quick test_cpu_idle_runs_now;
      Alcotest.test_case "cpu negative charge" `Quick test_cpu_negative_charge_rejected;
    ] )
