type event = { time : float; node : int; layer : string; label : string; detail : string }

type state = {
  mutable active : bool;
  mutable limit : int;
  mutable count : int;
  mutable dropped : int;
  mutable entries : event list; (* newest first *)
}

let state = { active = false; limit = 0; count = 0; dropped = 0; entries = [] }

let clear () =
  state.count <- 0;
  state.dropped <- 0;
  state.entries <- []

let start ?(limit = 100_000) () =
  clear ();
  state.limit <- limit;
  state.active <- true

let stop () = state.active <- false
let enabled () = state.active

let emit ~time ~node ~layer ~label detail =
  if state.active then begin
    if state.count < state.limit then begin
      state.entries <- { time; node; layer; label; detail } :: state.entries;
      state.count <- state.count + 1
    end
    else state.dropped <- state.dropped + 1
  end

let events () = List.rev state.entries
let dropped () = state.dropped

let render ?(filter = fun _ -> true) ?(max_events = max_int) () =
  let buf = Buffer.create 4096 in
  let shown = ref 0 in
  List.iter
    (fun e ->
      if !shown < max_events && filter e then begin
        incr shown;
        Buffer.add_string buf
          (Printf.sprintf "%10.6f  %-4s %-8s %-12s %s\n" e.time
             (if e.node >= 0 then Printf.sprintf "p%d" e.node else "-")
             e.layer e.label e.detail)
      end)
    (events ());
  if state.dropped > 0 then
    Buffer.add_string buf (Printf.sprintf "... %d further events dropped\n" state.dropped);
  Buffer.contents buf
