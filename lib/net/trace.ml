(* Compatibility wrapper: the v1 string-detail API, backed by the
   structured Obs.Trace2 sink. Emitters across the stack now write
   typed fields via Trace2 directly; this module keeps the old
   interface (and the `run --trace` renderer) working on top of it. *)

type event = { time : float; node : int; layer : string; label : string; detail : string }

let start ?limit () = Obs.Trace2.start ?limit ()
let stop () = Obs.Trace2.stop ()
let enabled () = Obs.Trace2.enabled ()
let clear () = Obs.Trace2.clear ()
let dropped () = Obs.Trace2.dropped ()

let emit ~time ~node ~layer ~label detail =
  Obs.Trace2.emit ~time ~node ~layer ~label
    (if detail = "" then [] else [ ("detail", Obs.Trace2.S detail) ])

let of_v2 (e : Obs.Trace2.event) =
  {
    time = e.time;
    node = e.node;
    layer = e.layer;
    label = e.label;
    detail = Obs.Trace2.fields_to_string e.fields;
  }

let events () = List.map of_v2 (Obs.Trace2.events ())

let render ?(filter = fun _ -> true) ?(max_events = max_int) () =
  let matched = List.filter filter (events ()) in
  let total = List.length matched in
  let buf = Buffer.create 4096 in
  let shown = ref 0 in
  List.iter
    (fun e ->
      if !shown < max_events then begin
        incr shown;
        Buffer.add_string buf
          (Printf.sprintf "%10.6f  %-4s %-8s %-12s %s\n" e.time
             (if e.node >= 0 then Printf.sprintf "p%d" e.node else "-")
             e.layer e.label e.detail)
      end)
    matched;
  let more = total - !shown in
  let sink_dropped = dropped () in
  if more > 0 || sink_dropped > 0 then
    Buffer.add_string buf (Printf.sprintf "(+%d more, %d dropped)\n" more sink_dropped);
  Buffer.contents buf
