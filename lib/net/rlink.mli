(** Reliable, ordered, message-oriented point-to-point transport — the
    TCP stand-in for the Bracha and ABBA baselines.

    Sliding-window ARQ with cumulative acknowledgments, Jacobson/Karn
    RTT estimation, exponential RTO backoff, and fast retransmit on
    three duplicate ACKs. Optionally authenticates every segment with
    HMAC-SHA-256, modeling the IPSec AH channels the paper configures
    for Bracha's protocol; the HMAC work is charged to the node's CPU.

    Connections are implicit (the paper establishes security
    associations before the runs), one per ordered peer pair. *)

type t

val create :
  Engine.t -> Datagram.t -> Cpu.t -> ?auth:bool -> ?window:int -> port:int -> unit -> t
(** [create engine dg cpu ~port ()] binds the transport to [port] on the
    node owning [dg]. [auth] defaults to [false]; [window] to 8
    outstanding segments per destination. *)

val send : t -> dst:int -> bytes -> unit
(** Queues a message for reliable in-order delivery at [dst]. *)

val on_receive : t -> (src:int -> bytes -> unit) -> unit
(** Application delivery callback; runs on the node's CPU queue. *)

val stats_retransmissions : t -> int
(** Total segment (re)transmissions beyond the first attempt. *)
