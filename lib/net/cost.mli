(** Calibrated CPU cost model.

    The paper's testbed nodes are 600 MHz Pentium III machines; the cost
    of each cryptographic operation at that clock is what separates the
    protocols computationally (Turquois hashes, ABBA exponentiates). All
    durations are in seconds of simulated CPU time and are charged
    through {!Cpu}. Calibration sources: published OpenSSL-era speed
    figures for PIII-class hardware; see DESIGN.md §2. *)

val sha256 : bytes_len:int -> float
(** Digest of a buffer: ~1 µs fixed + ~33 ns/byte. *)

val hmac : bytes_len:int -> float
(** Two SHA-256 passes plus key schedule. *)

val rsa_sign : float
(** 1024-bit private-key operation ≈ 12 ms. *)

val rsa_verify : float
(** 1024-bit public-key operation (e = 65537) ≈ 0.6 ms. *)

val modexp : float
(** One 512-bit-modulus, 160-bit-exponent exponentiation ≈ 1.3 ms —
    the unit of threshold-coin work. *)

val coin_share_create : float
(** Share value + DLEQ proof: 3 modexps. *)

val coin_share_verify : float
(** DLEQ check: 4 modexps plus inversions. *)

val coin_combine : shares:int -> float
(** Lagrange combination in the exponent: one modexp per share. *)

val onetime_check : float
(** One SHA-256 of a 32-byte key. *)

val per_message_overhead : float
(** Kernel/UDP-stack handling charged per received datagram ≈ 30 µs. *)
