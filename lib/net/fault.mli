(** Fault-load definitions matching the paper's evaluation (§7.2), plus
    the adaptive omission adversary.

    The fault load picks which processes misbehave and how; the network
    conditions add the dynamic omission faults of the communication
    failure model. Richer, time-varying fault timelines are expressed
    with {!Schedule} and applied on top of these static knobs. *)

type load =
  | Failure_free
      (** All processes behave correctly (Table 1). *)
  | Fail_stop
      (** f = ⌊(n−1)/3⌋ processes crash before the run starts
          (Table 2). *)
  | Byzantine
      (** f = ⌊(n−1)/3⌋ processes follow the attack strategies of
          §7.2 (Table 3). *)

val load_to_string : load -> string

val max_f : int -> int
(** [max_f n] = ⌊(n−1)/3⌋, the resilience bound used in the paper's
    experiments. *)

val faulty_set : n:int -> load -> int list
(** The process identifiers chosen to be faulty under this load: the
    highest [max_f n] ids (deterministic, so runs are reproducible).
    Empty for [Failure_free]. *)

val is_faulty : n:int -> load -> int -> bool
(** Constant-time membership test for {!faulty_set} (the faulty ids are
    exactly the top [max_f n]). *)

type conditions = {
  loss_prob : float;            (** iid per-receiver omission probability *)
  jam_windows : (float * float) list;  (** absolute-time jamming bursts *)
}

val benign_conditions : conditions
(** 5% residual per-receiver loss — an 802.11b channel with the ambient
    interference the paper's fail-stop sensitivity implies. *)

val apply_conditions : Radio.t -> conditions -> unit

val crash : Radio.t -> int -> unit
(** Marks a node down now, with the [fault]/[crash] trace event and
    metric. *)

val recover : Radio.t -> int -> unit
(** Brings a crashed node back up, with the [fault]/[recover] trace
    event and metric. *)

val apply_crashes : ?at:(int -> float) -> Radio.t -> n:int -> load -> unit
(** Crashes the faulty set for [Fail_stop]; no-op otherwise. [at i]
    gives the crash time of process [i] (default 0, i.e. before the run
    starts); strictly positive times are scheduled on the radio's
    engine, so processes can fail mid-run. *)

(** {2 Adaptive sigma-edge adversary}

    An omission adversary that, instead of dropping frames at an iid
    rate, spends a per-round budget of exactly
    σ = ⌈(n−t)/2⌉(n−k−t)+k−2 (+ [margin]) drops on a fixed victim set —
    the worst-case schedule of the Section 5 liveness analysis, applied
    online to the simulated radio via {!Radio.set_filter}. *)

val sigma : n:int -> k:int -> t:int -> int
(** The liveness bound (arithmetic mirror of [Core.Proto.sigma]; the
    net library sits below core). *)

type sigma_edge

val sigma_edge :
  Radio.t -> n:int -> k:int -> t:int -> ?round:float -> ?margin:int ->
  ?victims:int list -> unit -> sigma_edge
(** Installs the adversary's drop filter on the radio. [round] is the
    budget-replenish interval (default the 10 ms protocol tick);
    [margin] is added to σ (default 0 — sit exactly at the bound);
    [victims] defaults to the n−k−t+1 lowest ids, i.e. the paper's
    "silence whole victims, then starve one more" pattern among the
    conventionally correct processes. *)

val sigma_edge_drops : sigma_edge -> int
(** Frames suppressed so far. *)
