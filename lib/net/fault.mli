(** Fault-load definitions matching the paper's evaluation (§7.2).

    The fault load picks which processes misbehave and how; the network
    conditions add the dynamic omission faults of the communication
    failure model. *)

type load =
  | Failure_free
      (** All processes behave correctly (Table 1). *)
  | Fail_stop
      (** f = ⌊(n−1)/3⌋ processes crash before the run starts
          (Table 2). *)
  | Byzantine
      (** f = ⌊(n−1)/3⌋ processes follow the attack strategies of
          §7.2 (Table 3). *)

val load_to_string : load -> string

val max_f : int -> int
(** [max_f n] = ⌊(n−1)/3⌋, the resilience bound used in the paper's
    experiments. *)

val faulty_set : n:int -> load -> int list
(** The process identifiers chosen to be faulty under this load: the
    highest [max_f n] ids (deterministic, so runs are reproducible).
    Empty for [Failure_free]. *)

val is_faulty : n:int -> load -> int -> bool

type conditions = {
  loss_prob : float;            (** iid per-receiver omission probability *)
  jam_windows : (float * float) list;  (** absolute-time jamming bursts *)
}

val benign_conditions : conditions
(** 5% residual per-receiver loss — an 802.11b channel with the ambient
    interference the paper's fail-stop sensitivity implies. *)

val apply_conditions : Radio.t -> conditions -> unit

val apply_crashes : Radio.t -> n:int -> load -> unit
(** Marks the faulty set down for [Fail_stop]; no-op otherwise. *)
