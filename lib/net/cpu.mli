(** Per-node CPU serialization.

    Each simulated node processes events on a single core: message
    handlers and timer callbacks run one at a time, and cryptographic
    work ({!Cost}) pushes the node's availability into the future. This
    is what makes computational cost visible in end-to-end latency. *)

type t

val create : Engine.t -> t

val busy_until : t -> float
(** Time at which the node's core becomes free. *)

val enqueue : t -> (unit -> unit) -> unit
(** [enqueue t job] runs [job] as soon as the core is free (now, if
    idle). Jobs run in FIFO order of their ready times. *)

val charge : t -> float -> unit
(** [charge t cost] accounts [cost] seconds of computation to the job
    currently running (extends [busy_until]). Call from inside a job. *)

val completion_time : t -> float
(** Alias of {!busy_until}; the moment the currently-queued work ends —
    the earliest time an output produced by the running job can leave
    the node. *)
