(** Declarative fault schedules.

    A schedule is a timeline of fault injections — crashes and
    recoveries at arbitrary times, time-varying global / per-receiver /
    per-link omission rates, targeted jamming, and delivery-delay bursts
    (which reorder frames across receivers). {!apply} arms the whole
    timeline on the radio's engine before a run starts; every injection
    bumps the [fault.injected] metric and emits a ["fault"]-layer
    {!Obs.Trace2} event, so the offline analyzer can attribute stalls to
    the faults that caused them.

    Schedules are plain data: the chaos harness generates them from a
    seed ({!random}), prints them ({!to_string}), and shrinks failing
    ones to minimal reproducers ({!shrink_candidates}). *)

type action =
  | Crash of int                 (** node goes silent (radio down) *)
  | Recover of int               (** node comes back *)
  | Set_loss of float            (** global iid omission probability *)
  | Set_rx_loss of { rx : int; p : float }
      (** per-receiver omission overlay *)
  | Set_link_loss of { tx : int; rx : int; p : float }
      (** directed-link omission overlay *)
  | Jam of { until : float }     (** broadband jamming window from [at] *)
  | Jam_rx of { rx : int; until : float }
      (** targeted jamming: everything arriving at [rx] is destroyed *)
  | Delay_rx of { rx : int; delay : float; until : float }
      (** delivery-delay burst at one receiver (reorders frames) *)

type entry = { at : float; action : action }
type t = entry list

val action_to_string : action -> string
val entry_to_string : entry -> string

val to_string : t -> string
(** One-line rendering, suitable for a printed reproducer. *)

val sort : t -> t
(** Entries in time order (stable). *)

val apply : Radio.t -> t -> unit
(** Arms every entry on the radio's engine (entries at or before the
    current time fire immediately). Call once, before the run. *)

val random :
  rng:Util.Rng.t -> n:int -> duration:float -> ?events:int ->
  ?allow_crashes:bool -> unit -> t
(** A randomized schedule of [events] injections (default 6) over
    [duration] seconds. Every generated [Crash] is paired with a later
    [Recover], and the global loss overlay is cleared at the horizon, so
    the channel is provably quiet afterwards — the chaos harness's
    liveness check relies on this. Deterministic in [rng]. *)

val quiet_after : t -> float option
(** [Some h] when the schedule provably injects nothing after time [h]:
    every overlay is cleared, every jam/delay window has expired, and
    every crashed node has recovered. [None] if any fault persists —
    liveness cannot be asserted for such a run. *)

val shrink_candidates : t -> t list
(** Simplifications of a failing schedule (halves first, then each
    single-entry removal), for delta-debugging a minimal reproducer. *)
