type load = Failure_free | Fail_stop | Byzantine

let load_to_string = function
  | Failure_free -> "failure-free"
  | Fail_stop -> "fail-stop"
  | Byzantine -> "Byzantine"

let max_f n = (n - 1) / 3

let faulty_set ~n load =
  match load with
  | Failure_free -> []
  | Fail_stop | Byzantine ->
      let f = max_f n in
      List.init f (fun i -> n - 1 - i)

(* the faulty ids are exactly the top f, so membership is arithmetic *)
let is_faulty ~n load i =
  match load with
  | Failure_free -> false
  | Fail_stop | Byzantine -> i >= n - max_f n

type conditions = { loss_prob : float; jam_windows : (float * float) list }

let benign_conditions = { loss_prob = 0.05; jam_windows = [] }

let apply_conditions radio conditions =
  Radio.set_loss_prob radio conditions.loss_prob;
  Obs.Metrics.set "fault.loss_prob" conditions.loss_prob;
  List.iter
    (fun (from, until) ->
      Obs.Metrics.incr "fault.jam_windows";
      Obs.Trace2.emit ~time:from ~node:(-1) ~layer:"fault" ~label:"jam_window"
        [ ("from", Obs.Trace2.F from); ("until", Obs.Trace2.F until) ];
      Radio.jam radio ~from ~until)
    conditions.jam_windows

let crash radio i =
  Obs.Metrics.incr "fault.crashed";
  Obs.Trace2.emit ~time:(Engine.now (Radio.engine radio)) ~node:i ~layer:"fault"
    ~label:"crash" [];
  Radio.set_down radio i true

let recover radio i =
  Obs.Metrics.incr "fault.recovered";
  Obs.Trace2.emit ~time:(Engine.now (Radio.engine radio)) ~node:i ~layer:"fault"
    ~label:"recover" [];
  Radio.set_down radio i false

let apply_crashes ?(at = fun _ -> 0.0) radio ~n load =
  match load with
  | Fail_stop ->
      List.iter
        (fun i ->
          let time = at i in
          if time <= 0.0 then crash radio i
          else ignore (Engine.at (Radio.engine radio) ~time (fun () -> crash radio i)))
        (faulty_set ~n load)
  | Failure_free | Byzantine -> ()

(* --- adaptive sigma-edge omission adversary ------------------------------- *)

(* Mirror of [Core.Proto.sigma] — the net library sits below core, so
   the arithmetic is restated here:
   sigma = ceil((n-t)/2) * (n-k-t) + k - 2. *)
let sigma ~n ~k ~t = (((n - t + 1) / 2) * (n - k - t)) + k - 2

type sigma_edge = {
  se_victims : int array;
  se_budget_per_round : int;
  se_round : float;
  mutable se_current_round : int;
  mutable se_left : int;
  mutable se_drops : int;
}

let sigma_edge_drops a = a.se_drops

let sigma_edge radio ~n ~k ~t ?(round = 10.0e-3) ?(margin = 0) ?victims () =
  if round <= 0.0 then invalid_arg "Fault.sigma_edge: bad round";
  let bound = max 0 (sigma ~n ~k ~t + margin) in
  let victims =
    match victims with
    | Some v -> Array.of_list v
    | None ->
        (* starve the low ids: the high ids are the conventional faulty
           set, so these victims are correct processes whose silence the
           k-of-n termination rule can least afford *)
        Array.init (min n (n - k - t + 1)) (fun i -> i)
  in
  let a =
    {
      se_victims = victims;
      se_budget_per_round = bound;
      se_round = round;
      se_current_round = -1;
      se_left = 0;
      se_drops = 0;
    }
  in
  Radio.set_filter radio
    (Some
       (fun ~now ~tx:_ ~rx ->
         let round_no = int_of_float (now /. a.se_round) in
         if round_no <> a.se_current_round then begin
           a.se_current_round <- round_no;
           a.se_left <- a.se_budget_per_round
         end;
         if a.se_left > 0 && Array.exists (( = ) rx) a.se_victims then begin
           a.se_left <- a.se_left - 1;
           a.se_drops <- a.se_drops + 1;
           Obs.Metrics.incr "fault.sigma_edge_drops";
           true
         end
         else false));
  Obs.Trace2.emit ~time:(Engine.now (Radio.engine radio)) ~node:(-1) ~layer:"fault"
    ~label:"sigma_edge"
    [
      ("budget", Obs.Trace2.I bound);
      ("round_s", Obs.Trace2.F round);
      ( "victims",
        Obs.Trace2.S
          (String.concat "," (Array.to_list (Array.map string_of_int victims))) );
    ];
  a
