type load = Failure_free | Fail_stop | Byzantine

let load_to_string = function
  | Failure_free -> "failure-free"
  | Fail_stop -> "fail-stop"
  | Byzantine -> "Byzantine"

let max_f n = (n - 1) / 3

let faulty_set ~n load =
  match load with
  | Failure_free -> []
  | Fail_stop | Byzantine ->
      let f = max_f n in
      List.init f (fun i -> n - 1 - i)

let is_faulty ~n load i = List.mem i (faulty_set ~n load)

type conditions = { loss_prob : float; jam_windows : (float * float) list }

let benign_conditions = { loss_prob = 0.05; jam_windows = [] }

let apply_conditions radio conditions =
  Radio.set_loss_prob radio conditions.loss_prob;
  Obs.Metrics.set "fault.loss_prob" conditions.loss_prob;
  List.iter
    (fun (from, until) ->
      Obs.Metrics.incr "fault.jam_windows";
      Obs.Trace2.emit ~time:from ~node:(-1) ~layer:"fault" ~label:"jam_window"
        [ ("from", Obs.Trace2.F from); ("until", Obs.Trace2.F until) ];
      Radio.jam radio ~from ~until)
    conditions.jam_windows

let apply_crashes radio ~n load =
  match load with
  | Fail_stop ->
      List.iter
        (fun i ->
          Obs.Metrics.incr "fault.crashed";
          Obs.Trace2.emit ~time:0.0 ~node:i ~layer:"fault" ~label:"crash" [];
          Radio.set_down radio i true)
        (faulty_set ~n load)
  | Failure_free | Byzantine -> ()
