type t = {
  node_id : int;
  engine : Engine.t;
  node_rng : Util.Rng.t;
  node_cpu : Cpu.t;
  node_mac : Mac.t;
  node_dg : Datagram.t;
}

let create engine radio ~id ~rng =
  let node_cpu = Cpu.create engine in
  let node_mac = Mac.create engine radio ~id ~rng:(Util.Rng.split rng) in
  let node_dg = Datagram.create engine node_mac in
  { node_id = id; engine; node_rng = rng; node_cpu; node_mac; node_dg }

let id t = t.node_id
let engine t = t.engine
let rng t = t.node_rng
let cpu t = t.node_cpu
let datagram t = t.node_dg
let mac t = t.node_mac
let charge t cost = Cpu.charge t.node_cpu cost
let broadcast t ~port payload = Datagram.send t.node_dg ~dst:`Broadcast ~port payload
let broadcast_latest t ?tag ~port payload = Datagram.send_latest t.node_dg ?tag ~port payload
let unicast t ~dst ~port payload = Datagram.send t.node_dg ~dst:(`Node dst) ~port payload

let listen t ~port handler =
  Datagram.listen t.node_dg ~port (fun ~src payload ->
      Cpu.enqueue t.node_cpu (fun () ->
          Cpu.charge t.node_cpu Cost.per_message_overhead;
          handler ~src payload))

let unlisten t ~port = Datagram.unlisten t.node_dg ~port

let set_timer t ~delay callback =
  Engine.schedule t.engine ~delay (fun () -> Cpu.enqueue t.node_cpu callback)

let cancel_timer t handle = Engine.cancel t.engine handle

let every t ~period callback =
  let rec loop () =
    ignore
      (Engine.schedule t.engine ~delay:period (fun () ->
           Cpu.enqueue t.node_cpu callback;
           loop ()))
  in
  loop ()
