module Const = struct
  let slot = 20.0e-6
  let sifs = 10.0e-6
  let difs = 50.0e-6
  let plcp_overhead = 192.0e-6
  let plcp_short = 96.0e-6
  let basic_rate = 2.0e6
  let data_rate = 11.0e6
  let cw_min = 31
  let cw_max = 1023
  let retry_limit = 7
  let ack_bytes = 14
  let header_bytes = 36
end

let broadcast_dst = 0xFFFF

(* Broadcast frames use the long preamble (802.11b's conservative
   multicast PHY header) but the 11 Mb/s payload rate — the testbed
   configuration the paper's n=16 latencies imply: at the 2 Mb/s basic
   rate sixteen 10 ms-tick broadcasters already saturate the channel.
   MAC ACKs stay at the basic rate; unicast data uses the short
   preamble. *)
let airtime ~plcp ~rate ~bytes = plcp +. (float_of_int (8 * bytes) /. rate)

let airtime_broadcast ~payload_bytes =
  airtime ~plcp:Const.plcp_overhead ~rate:Const.data_rate
    ~bytes:(payload_bytes + Const.header_bytes)

let airtime_unicast ~payload_bytes =
  airtime ~plcp:Const.plcp_short ~rate:Const.data_rate
    ~bytes:(payload_bytes + Const.header_bytes)

let ack_airtime = airtime ~plcp:Const.plcp_short ~rate:Const.basic_rate ~bytes:Const.ack_bytes

type frame_kind = Data | Ack

type frame = { kind : frame_kind; src : int; dst : int; seq : int; payload : bytes }

let encode_frame f =
  let w = Util.Codec.W.create ~capacity:(16 + Bytes.length f.payload) () in
  Util.Codec.W.u8 w (match f.kind with Data -> 0 | Ack -> 1);
  Util.Codec.W.u16 w f.src;
  Util.Codec.W.u16 w f.dst;
  Util.Codec.W.u32 w f.seq;
  Util.Codec.W.bytes_lp w f.payload;
  Util.Codec.W.contents w

let decode_frame b =
  let r = Util.Codec.R.of_bytes b in
  let kind = match Util.Codec.R.u8 r with 0 -> Data | 1 -> Ack | _ -> raise (Util.Codec.Malformed "frame kind") in
  let src = Util.Codec.R.u16 r in
  let dst = Util.Codec.R.u16 r in
  let seq = Util.Codec.R.u32 r in
  let payload = Util.Codec.R.bytes_lp r in
  Util.Codec.R.expect_end r;
  { kind; src; dst; seq; payload }

type pending = {
  p_dst : int option; (* None = broadcast *)
  mutable p_payload : bytes;
  p_seq : int;
  p_tag : int;        (* replacement class for queued broadcasts; -1 = never *)
  mutable retries : int;
  mutable cw : int;
}

type t = {
  engine : Engine.t;
  radio : Radio.t;
  node_id : int;
  rng : Util.Rng.t;
  queue : pending Queue.t;
  mutable current : pending option;
  mutable remaining_slots : int;  (* frozen backoff survives across busy periods *)
  mutable awaiting_ack : Engine.handle option;
  mutable generation : int;       (* invalidates stale scheduled continuations *)
  mutable next_seq : int;
  mutable deliver : (src:int -> bytes -> unit) option;
  mutable dropped : (dst:int -> bytes -> unit) option;
  seen : (int * int, unit) Hashtbl.t; (* (src, seq) dedup for retransmitted unicast *)
}

let id t = t.node_id
let radio t = t.radio
let on_deliver t f = t.deliver <- Some f
let on_drop t f = t.dropped <- Some f
let queue_length t = Queue.length t.queue + match t.current with Some _ -> 1 | None -> 0

(* --- transmission pipeline -------------------------------------------- *)

let rec start_contention t =
  match t.current with
  | None -> begin
      match Queue.take_opt t.queue with
      | None -> ()
      | Some p ->
          t.current <- Some p;
          t.remaining_slots <- Util.Rng.int t.rng (p.cw + 1);
          Obs.Metrics.incr "mac.backoff_slots" ~by:t.remaining_slots;
          wait_for_idle t
    end
  | Some _ -> wait_for_idle t

and wait_for_idle t =
  let gen = t.generation in
  if Radio.busy t.radio then
    Radio.subscribe_idle t.radio (fun () -> if t.generation = gen then wait_for_idle t)
  else begin
    (* sense for DIFS; abort if anything starts meanwhile *)
    Obs.Metrics.incr "mac.difs_waits";
    let difs_start = Engine.now t.engine in
    ignore
      (Engine.schedule t.engine ~delay:Const.difs (fun () ->
           if t.generation = gen then
             if Radio.idle_since t.radio difs_start then countdown t else wait_for_idle t))
  end

and countdown t =
  let gen = t.generation in
  if t.remaining_slots <= 0 then transmit_current t
  else begin
    let slot_start = Engine.now t.engine in
    ignore
      (Engine.schedule t.engine ~delay:Const.slot (fun () ->
           if t.generation = gen then
             if Radio.idle_since t.radio slot_start then begin
               t.remaining_slots <- t.remaining_slots - 1;
               countdown t
             end
             else wait_for_idle t))
  end

and transmit_current t =
  match t.current with
  | None -> ()
  | Some p ->
      let sp = Obs.Prof.start () in
      let gen = t.generation in
      let kind = Data in
      let dst = match p.p_dst with None -> broadcast_dst | Some d -> d in
      let frame = { kind; src = t.node_id; dst; seq = p.p_seq; payload = p.p_payload } in
      let encoded = encode_frame frame in
      if Obs.Trace2.enabled () then Obs.Causal.alias ~from:p.p_payload encoded;
      let duration, frame_class =
        match p.p_dst with
        | None -> (airtime_broadcast ~payload_bytes:(Bytes.length p.p_payload), "bcast")
        | Some _ -> (airtime_unicast ~payload_bytes:(Bytes.length p.p_payload), "ucast")
      in
      Obs.Metrics.incr "mac.tx" ~labels:[ ("class", frame_class) ];
      Radio.transmit t.radio ~kind:frame_class ~sender:t.node_id ~duration encoded;
      (match p.p_dst with
      | None ->
          (* fire and forget: done at end of airtime *)
          ignore
            (Engine.schedule t.engine ~delay:duration (fun () ->
                 if t.generation = gen then begin
                   t.current <- None;
                   t.generation <- t.generation + 1;
                   start_contention t
                 end))
      | Some _ ->
          let timeout = duration +. Const.sifs +. ack_airtime +. (2.0 *. Const.slot) in
          let handle =
            Engine.schedule t.engine ~delay:timeout (fun () ->
                if t.generation = gen then handle_ack_timeout t)
          in
          t.awaiting_ack <- Some handle);
      Obs.Prof.stop Obs.Prof.mac_contention sp

and handle_ack_timeout t =
  match t.current with
  | None -> ()
  | Some p ->
      t.awaiting_ack <- None;
      p.retries <- p.retries + 1;
      if p.retries > Const.retry_limit then begin
        Obs.Metrics.incr "mac.drops";
        Obs.Trace2.emit ~time:(Engine.now t.engine) ~node:t.node_id ~layer:"mac"
          ~label:"drop"
          ([
             ("dst", Obs.Trace2.I (match p.p_dst with Some d -> d | None -> -1));
             ("retries", Obs.Trace2.I Const.retry_limit);
           ]
          @
          if Obs.Trace2.enabled () then Obs.Causal.mid_field p.p_payload else []);
        t.current <- None;
        t.generation <- t.generation + 1;
        (match (t.dropped, p.p_dst) with
        | Some f, Some dst -> f ~dst p.p_payload
        | _, _ -> ());
        start_contention t
      end
      else begin
        Obs.Metrics.incr "mac.retries";
        Obs.Trace2.emit ~time:(Engine.now t.engine) ~node:t.node_id ~layer:"mac"
          ~label:"retry"
          [ ("attempt", Obs.Trace2.I (p.retries + 1)); ("cw", Obs.Trace2.I p.cw) ];
        p.cw <- min ((2 * (p.cw + 1)) - 1) Const.cw_max;
        t.generation <- t.generation + 1;
        t.remaining_slots <- Util.Rng.int t.rng (p.cw + 1);
        Obs.Metrics.incr "mac.backoff_slots" ~by:t.remaining_slots;
        wait_for_idle t
      end

let handle_ack t seq =
  match t.current with
  | Some p when p.p_dst <> None && p.p_seq = seq ->
      (match t.awaiting_ack with
      | Some h ->
          Engine.cancel t.engine h;
          t.awaiting_ack <- None
      | None -> ());
      t.current <- None;
      t.generation <- t.generation + 1;
      start_contention t
  | Some _ | None -> ()

let send_ack t ~dst ~seq =
  let frame = { kind = Ack; src = t.node_id; dst; seq; payload = Bytes.empty } in
  let encoded = encode_frame frame in
  ignore
    (Engine.schedule t.engine ~delay:Const.sifs (fun () ->
         Obs.Metrics.incr "mac.tx" ~labels:[ ("class", "ack") ];
         Radio.transmit t.radio ~kind:"ack" ~sender:t.node_id ~duration:ack_airtime encoded))

let handle_mac_frame t frame =
  match frame.kind with
  | Ack -> if frame.dst = t.node_id then handle_ack t frame.seq
  | Data ->
      if frame.dst = broadcast_dst then begin
        match t.deliver with
        | Some f -> f ~src:frame.src frame.payload
        | None -> ()
      end
      else if frame.dst = t.node_id then begin
        send_ack t ~dst:frame.src ~seq:frame.seq;
        if not (Hashtbl.mem t.seen (frame.src, frame.seq)) then begin
          Hashtbl.add t.seen (frame.src, frame.seq) ();
          match t.deliver with
          | Some f -> f ~src:frame.src frame.payload
          | None -> ()
        end
      end

(* Shared dispatch: the radio has a single receive callback, so the first
   MAC created installs a dispatcher over a registry of MAC entities.
   The registry is domain-local — a radio and its MACs always live in
   one domain, and parallel pool workers must not share the list. *)
let registries_key : (Radio.t * t array ref) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let create engine radio ~id ~rng =
  let registries = Domain.DLS.get registries_key in
  let t =
    {
      engine;
      radio;
      node_id = id;
      rng;
      queue = Queue.create ();
      current = None;
      remaining_slots = 0;
      awaiting_ack = None;
      generation = 0;
      next_seq = 0;
      deliver = None;
      dropped = None;
      seen = Hashtbl.create 64;
    }
  in
  (match List.assq_opt radio !registries with
  | Some cell -> cell := Array.append !cell [| t |]
  | None ->
      let cell = ref [| t |] in
      registries := (radio, cell) :: !registries;
      (* The radio hands every receiver of one transmission the same
         physical frame bytes, so a one-entry cache keyed on physical
         equality decodes once per transmission and shares the decoded
         frame — payload buffer included, treated as immutable — across
         the whole fan-out, instead of materializing n-1 private
         copies. Interleaved deliveries (per-receiver rx delays) only
         cost a re-decode; the result is byte-identical either way. *)
      let cache_raw = ref Bytes.empty in
      let cache_frame : frame option ref = ref None in
      let decode_shared raw =
        if raw == !cache_raw then !cache_frame
        else begin
          let decoded =
            match decode_frame raw with
            | exception (Util.Codec.Malformed _ | Util.Codec.Truncated) -> None
            | frame -> Some frame
          in
          cache_raw := raw;
          cache_frame := decoded;
          decoded
        end
      in
      Radio.on_receive radio (fun receiver ~sender:_ raw ->
          match decode_shared raw with
          | None -> ()
          | Some frame ->
              Array.iter
                (fun mac -> if mac.node_id = receiver then handle_mac_frame mac frame)
                !cell));
  t

let enqueue t p =
  Queue.add p t.queue;
  if t.current = None then begin
    t.generation <- t.generation + 1;
    start_contention t
  end

let send_broadcast t payload =
  let seq = t.next_seq in
  t.next_seq <- t.next_seq + 1;
  enqueue t
    { p_dst = None; p_payload = payload; p_seq = seq; p_tag = -1; retries = 0; cw = Const.cw_min }

let send_unicast t ~dst payload =
  let seq = t.next_seq in
  t.next_seq <- t.next_seq + 1;
  enqueue t
    {
      p_dst = Some dst;
      p_payload = payload;
      p_seq = seq;
      p_tag = -1;
      retries = 0;
      cw = Const.cw_min;
    }

let send_broadcast_replacing t ~tag payload =
  (* A queued (not yet in service) broadcast of the same class is
     superseded in place instead of queueing behind it: under contention
     the queue would otherwise grow a backlog of stale frames, each
     costing full airtime to deliver information the replacement already
     carries. The in-service frame is never touched — its backoff and
     airtime are already committed. *)
  let replaced = ref false in
  Queue.iter
    (fun p ->
      if (not !replaced) && p.p_dst = None && p.p_tag = tag then begin
        p.p_payload <- payload;
        replaced := true
      end)
    t.queue;
  if !replaced then Obs.Metrics.incr "mac.replaced"
  else begin
    let seq = t.next_seq in
    t.next_seq <- t.next_seq + 1;
    enqueue t
      {
        p_dst = None;
        p_payload = payload;
        p_seq = seq;
        p_tag = tag;
        retries = 0;
        cw = Const.cw_min;
      }
  end
