let header_bytes = 28

type t = {
  engine : Engine.t;
  mac_layer : Mac.t;
  handlers : (int, src:int -> bytes -> unit) Hashtbl.t;
}

let encode ~port payload =
  let w = Util.Codec.W.create ~capacity:(8 + Bytes.length payload + header_bytes) () in
  Util.Codec.W.u16 w port;
  (* pad to the real IP+UDP header size so frame airtime is faithful *)
  Util.Codec.W.bytes w (Bytes.make (header_bytes - 2) '\000');
  Util.Codec.W.bytes_lp w payload;
  Util.Codec.W.contents w

let decode raw =
  let r = Util.Codec.R.of_bytes raw in
  let port = Util.Codec.R.u16 r in
  let (_ : bytes) = Util.Codec.R.bytes r (header_bytes - 2) in
  let payload = Util.Codec.R.bytes_lp r in
  Util.Codec.R.expect_end r;
  (port, payload)

let dispatch t ~src ~port payload =
  match Hashtbl.find_opt t.handlers port with
  | Some handler -> handler ~src payload
  | None -> ()

let create engine mac_layer =
  let t = { engine; mac_layer; handlers = Hashtbl.create 8 } in
  Mac.on_deliver mac_layer (fun ~src raw ->
      match decode raw with
      | exception (Util.Codec.Malformed _ | Util.Codec.Truncated) -> ()
      | port, payload -> dispatch t ~src ~port payload);
  t

let send t ~dst ~port payload =
  let raw = encode ~port payload in
  if Obs.Trace2.enabled () then Obs.Causal.alias ~from:payload raw;
  match dst with
  | `Node node -> Mac.send_unicast t.mac_layer ~dst:node raw
  | `Broadcast ->
      Mac.send_broadcast t.mac_layer raw;
      (* loopback copy, delayed by the frame's airtime *)
      let delay = Mac.airtime_broadcast ~payload_bytes:(Bytes.length raw) in
      let self = Mac.id t.mac_layer in
      ignore
        (Engine.schedule t.engine ~delay (fun () -> dispatch t ~src:self ~port payload))

let send_latest t ?tag ~port payload =
  let raw = encode ~port payload in
  if Obs.Trace2.enabled () then Obs.Causal.alias ~from:payload raw;
  (* default tag is the port: one waiting frame per port, refreshed in
     place while it queues for the medium. Callers with several
     mutually non-superseding frame flavors on one port pass their own
     tags. *)
  let tag = match tag with Some x -> x | None -> port in
  Mac.send_broadcast_replacing t.mac_layer ~tag raw;
  let delay = Mac.airtime_broadcast ~payload_bytes:(Bytes.length raw) in
  let self = Mac.id t.mac_layer in
  ignore (Engine.schedule t.engine ~delay (fun () -> dispatch t ~src:self ~port payload))

let listen t ~port handler = Hashtbl.replace t.handlers port handler
let unlisten t ~port = Hashtbl.remove t.handlers port
let mac t = t.mac_layer
