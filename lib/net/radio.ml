type transmission = {
  tx_sender : int;
  tx_start : float;
  tx_finish : float;
  mutable corrupted : bool;
}

type stats = {
  mutable frames_sent : int;
  mutable frames_delivered : int;
  mutable collisions : int;
  mutable losses : int;
  mutable jammed : int;
  mutable bytes_sent : int;
  mutable airtime : float;
}

type t = {
  engine : Engine.t;
  rng : Util.Rng.t;
  n : int;
  down : bool array;
  mutable loss_prob : float;
  rx_loss : float array;                  (* per-receiver omission overlay *)
  link_loss : (int * int, float) Hashtbl.t;  (* (tx, rx) omission overlay *)
  rx_delay : float array;                 (* extra delivery latency per receiver *)
  mutable filter : (now:float -> tx:int -> rx:int -> bool) option;
  mutable jam_windows : (float * float) list;
  mutable ongoing : transmission list;
  mutable busy_end : float;  (* end of latest transmission ever started *)
  mutable idle_waiters : (unit -> unit) list;
  mutable receive : (int -> sender:int -> bytes -> unit) option;
  stats : stats;
}

let create engine rng ~n =
  {
    engine;
    rng;
    n;
    down = Array.make n false;
    loss_prob = 0.0;
    rx_loss = Array.make n 0.0;
    link_loss = Hashtbl.create 16;
    rx_delay = Array.make n 0.0;
    filter = None;
    jam_windows = [];
    ongoing = [];
    busy_end = 0.0;
    idle_waiters = [];
    receive = None;
    stats =
      {
        frames_sent = 0;
        frames_delivered = 0;
        collisions = 0;
        losses = 0;
        jammed = 0;
        bytes_sent = 0;
        airtime = 0.0;
      };
  }

let check_prob name p = if p < 0.0 || p > 1.0 then invalid_arg name

let set_loss_prob t p =
  check_prob "Radio.set_loss_prob" p;
  t.loss_prob <- p

let set_rx_loss t ~rx p =
  check_prob "Radio.set_rx_loss" p;
  t.rx_loss.(rx) <- p

let set_link_loss t ~tx ~rx p =
  check_prob "Radio.set_link_loss" p;
  if p = 0.0 then Hashtbl.remove t.link_loss (tx, rx)
  else Hashtbl.replace t.link_loss (tx, rx) p

let set_rx_delay t ~rx d =
  if d < 0.0 then invalid_arg "Radio.set_rx_delay";
  t.rx_delay.(rx) <- d

let set_filter t f = t.filter <- f

let set_down t i v =
  if t.down.(i) <> v then begin
    t.down.(i) <- v;
    Obs.Trace2.emit ~time:(Engine.now t.engine) ~node:i ~layer:"radio"
      ~label:(if v then "down" else "up") []
  end

let is_down t i = t.down.(i)
let engine t = t.engine
let size t = t.n
let jam t ~from ~until = t.jam_windows <- (from, until) :: t.jam_windows
let on_receive t f = t.receive <- Some f
let busy_until t = t.busy_end
let busy t = t.busy_end > Engine.now t.engine
let idle_since t s = t.busy_end <= s
let stats t = t.stats

let subscribe_idle t f =
  if not (busy t) then ignore (Engine.schedule t.engine ~delay:0.0 f)
  else t.idle_waiters <- f :: t.idle_waiters

let notify_idle_if_clear t =
  if not (busy t) && t.idle_waiters <> [] then begin
    let waiters = List.rev t.idle_waiters in
    t.idle_waiters <- [];
    List.iter (fun f -> ignore (Engine.schedule t.engine ~delay:0.0 f)) waiters
  end

let overlaps_jam t start finish =
  List.exists (fun (a, b) -> start < b && finish > a) t.jam_windows

let transmit t ?(kind = "data") ~sender ~duration frame =
  if sender < 0 || sender >= t.n then invalid_arg "Radio.transmit: bad sender";
  if duration <= 0.0 then invalid_arg "Radio.transmit: bad duration";
  if t.down.(sender) then ()
  else begin
    let now = Engine.now t.engine in
    let finish = now +. duration in
    let tx = { tx_sender = sender; tx_start = now; tx_finish = finish; corrupted = false } in
    (* prune finished transmissions; overlapping ones corrupt both ways *)
    t.ongoing <- List.filter (fun o -> o.tx_finish > now) t.ongoing;
    List.iter
      (fun o ->
        if not o.corrupted then begin
          t.stats.collisions <- t.stats.collisions + 1;
          Obs.Metrics.incr "radio.collisions"
        end;
        o.corrupted <- true;
        if not tx.corrupted then begin
          tx.corrupted <- true;
          t.stats.collisions <- t.stats.collisions + 1;
          Obs.Metrics.incr "radio.collisions"
        end)
      t.ongoing;
    t.ongoing <- tx :: t.ongoing;
    t.busy_end <- Float.max t.busy_end finish;
    t.stats.frames_sent <- t.stats.frames_sent + 1;
    t.stats.bytes_sent <- t.stats.bytes_sent + Bytes.length frame;
    t.stats.airtime <- t.stats.airtime +. duration;
    let class_labels = [ ("class", kind) ] in
    Obs.Metrics.incr "radio.tx" ~labels:class_labels;
    Obs.Metrics.incr "radio.bytes" ~by:(Bytes.length frame) ~labels:class_labels;
    Obs.Metrics.add "radio.airtime_s" ~labels:class_labels duration;
    Obs.Metrics.observe "radio.frame_us" ~lo:0.0 ~hi:4000.0 ~bins:20 (duration *. 1e6);
    let mid = if Obs.Trace2.enabled () then Obs.Causal.mid_field frame else [] in
    Obs.Trace2.emit ~time:now ~node:sender ~layer:"radio" ~label:"tx"
      ([
         ("class", Obs.Trace2.S kind);
         ("bytes", Obs.Trace2.I (Bytes.length frame));
         ("us", Obs.Trace2.F (duration *. 1e6));
         ("collision", Obs.Trace2.B tx.corrupted);
       ]
      @ mid);
    ignore
      (Engine.at t.engine ~time:finish (fun () ->
           t.ongoing <- List.filter (fun o -> o.tx_finish > Engine.now t.engine) t.ongoing;
           let jammed = overlaps_jam t tx.tx_start tx.tx_finish in
           if jammed then begin
             t.stats.jammed <- t.stats.jammed + 1;
             Obs.Metrics.incr "radio.jammed";
             Obs.Trace2.emit ~time:(Engine.now t.engine) ~node:sender ~layer:"radio"
               ~label:"jammed" mid
           end;
           if (not tx.corrupted) && not jammed then begin
             match t.receive with
             | None -> ()
             | Some deliver ->
                 for receiver = 0 to t.n - 1 do
                   if receiver <> sender && not t.down.(receiver) then begin
                     let now = Engine.now t.engine in
                     let omit_stochastic () =
                       (* independent overlays: global, per-receiver, per-link *)
                       Util.Rng.bernoulli t.rng t.loss_prob
                       || (t.rx_loss.(receiver) > 0.0
                          && Util.Rng.bernoulli t.rng t.rx_loss.(receiver))
                       ||
                       match Hashtbl.find_opt t.link_loss (sender, receiver) with
                       | Some p -> Util.Rng.bernoulli t.rng p
                       | None -> false
                     in
                     let omit_filter () =
                       match t.filter with
                       | Some f -> f ~now ~tx:sender ~rx:receiver
                       | None -> false
                     in
                     if omit_stochastic () || omit_filter () then begin
                       t.stats.losses <- t.stats.losses + 1;
                       Obs.Metrics.incr "radio.omissions";
                       Obs.Metrics.incr "radio.omission_by_rx"
                         ~labels:[ ("rx", "p" ^ string_of_int receiver) ];
                       Obs.Trace2.emit ~time:now ~node:sender
                         ~layer:"radio" ~label:"omission"
                         (("rx", Obs.Trace2.I receiver) :: mid)
                     end
                     else begin
                       t.stats.frames_delivered <- t.stats.frames_delivered + 1;
                       Obs.Metrics.incr "radio.delivered";
                       (* deliver edges only matter to the causal DAG, and
                          only data frames carry mids — skip the bare ones *)
                       if mid <> [] then
                         Obs.Trace2.emit ~time:now ~node:sender ~layer:"radio"
                           ~label:"deliver"
                           (("rx", Obs.Trace2.I receiver) :: mid);
                       let extra = t.rx_delay.(receiver) in
                       if extra > 0.0 then
                         ignore
                           (Engine.schedule t.engine ~delay:extra (fun () ->
                                if not t.down.(receiver) then
                                  deliver receiver ~sender frame))
                       else deliver receiver ~sender frame
                     end
                   end
                 done
           end;
           notify_idle_if_clear t))
  end
