(** Shared 802.11b broadcast medium for a single-hop ad hoc network.

    All n nodes are within range of each other (as in the paper's
    testbed, "at most a few meters distant"). The medium carries opaque
    frames; any two transmissions that overlap in time collide and
    corrupt each other (no capture effect). On top of collisions the
    model injects the paper's dynamic omission faults: an iid
    per-receiver loss probability, and jamming windows during which
    every frame is corrupted (the jammer is modeled below the
    carrier-sense threshold, so it destroys frames without making the
    medium appear busy — the harshest interpretation of Section 1's
    jamming discussion). *)

type t

type stats = {
  mutable frames_sent : int;
  mutable frames_delivered : int;
  mutable collisions : int;      (** frames corrupted by overlap *)
  mutable losses : int;          (** per-receiver Bernoulli drops *)
  mutable jammed : int;          (** frames destroyed by jamming *)
  mutable bytes_sent : int;
  mutable airtime : float;       (** cumulative seconds of occupancy *)
}

val create : Engine.t -> Util.Rng.t -> n:int -> t

val set_loss_prob : t -> float -> unit
(** Probability that a given receiver independently misses a given
    (otherwise successful) frame. Default 0. *)

val set_rx_loss : t -> rx:int -> float -> unit
(** Additional, independent per-receiver omission probability layered on
    top of the global one (targeted interference near one station).
    Default 0. *)

val set_link_loss : t -> tx:int -> rx:int -> float -> unit
(** Additional, independent omission probability for one directed
    (sender, receiver) link. 0 removes the overlay. *)

val set_rx_delay : t -> rx:int -> float -> unit
(** Extra delivery latency (seconds) for frames arriving at [rx] —
    models a station whose reception path is momentarily slow; varying
    it across receivers reorders deliveries. Default 0. *)

val set_filter : t -> (now:float -> tx:int -> rx:int -> bool) option -> unit
(** Installs (or clears) an adversarial drop predicate consulted for
    every otherwise-successful delivery; returning [true] suppresses the
    frame for that receiver. This is the hook adaptive omission
    adversaries (e.g. {!Fault.sigma_edge}) use to pick their victims
    online. The stochastic overlays are sampled first; the filter is
    consulted only for frames they let through. *)

val set_down : t -> int -> bool -> unit
(** Crashed nodes neither transmit nor receive. Emits a ["radio"]/
    ["down"] (resp. ["up"]) {!Obs.Trace2} event on every state change,
    so crash and recovery are both visible in exported traces. *)

val is_down : t -> int -> bool

val engine : t -> Engine.t
(** The engine this radio schedules on (for fault injectors). *)

val size : t -> int
(** Number of stations [n]. *)

val jam : t -> from:float -> until:float -> unit
(** Adds a jamming window in absolute simulation time. *)

val on_receive : t -> (int -> sender:int -> bytes -> unit) -> unit
(** Registers the single delivery callback: [f receiver ~sender frame]
    runs at the end of a successful reception. Set once by the MAC. *)

val transmit : t -> ?kind:string -> sender:int -> duration:float -> bytes -> unit
(** Starts a transmission occupying the medium for [duration] seconds;
    delivery (or corruption) resolves at its end. The sender does not
    receive its own frame. [kind] labels the frame class ("bcast",
    "ucast", "ack"; default "data") in the [radio.*] metrics and the
    structured trace. *)

val busy : t -> bool
(** Carrier sense at the current instant. *)

val busy_until : t -> float
(** End of the latest ongoing transmission ([now] or earlier if idle). *)

val idle_since : t -> float -> bool
(** [idle_since t s] is true when the medium has been continuously idle
    from time [s] to now. *)

val subscribe_idle : t -> (unit -> unit) -> unit
(** One-shot callback at the next instant the medium becomes idle
    (immediately-next event if it is idle already). *)

val stats : t -> stats
