(** 802.11b DCF medium access control, one instance per node.

    Models the distributed coordination function: DIFS sensing, slotted
    backoff with freezing while the medium is busy, and the two frame
    classes the paper's evaluation contrasts —

    - {b broadcast}: transmitted at the 2 Mb/s basic rate, no MAC-level
      acknowledgment, no retransmission, a single contention window. One
      collision can deprive all n−1 receivers of the frame (paper §7.3).
    - {b unicast}: transmitted at 11 Mb/s, acknowledged after SIFS, and
      retransmitted with exponential backoff up to the retry limit —
      this is the reliability TCP-style transports build on.

    Frame layout on the medium is produced by this module; the physical
    preamble and header overheads are added to the airtime. *)

(** Protocol timing and size constants (802.11b, long preamble):
    slot 20 µs, SIFS 10 µs, DIFS 50 µs, PLCP preamble + header 192 µs
    long / 96 µs short (broadcasts use long, unicast and ACKs short),
    basic rate 2 Mb/s (broadcasts and ACKs), data rate 11 Mb/s (unicast),
    CW in [31, 1023], retry limit 7, ACK frame 14 bytes, MAC header +
    FCS + LLC/SNAP 36 bytes. *)
module Const : sig
  val slot : float
  val sifs : float
  val difs : float
  val plcp_overhead : float
  val plcp_short : float
  val basic_rate : float
  val data_rate : float
  val cw_min : int
  val cw_max : int
  val retry_limit : int
  val ack_bytes : int
  val header_bytes : int
end

type t

val create : Engine.t -> Radio.t -> id:int -> rng:Util.Rng.t -> t
(** One MAC entity for node [id]. All MACs of a network share the radio
    and must be created before any traffic flows. *)

val id : t -> int

val send_broadcast : t -> bytes -> unit
(** Queues a broadcast payload (the MAC adds its header). *)

val send_broadcast_replacing : t -> tag:int -> bytes -> unit
(** Like {!send_broadcast}, but if a queued (not yet in-service)
    broadcast with the same [tag] is still waiting for the medium, its
    payload is overwritten in place instead — the queue holds at most
    one waiting frame per tag, so a sender that produces state updates
    faster than the contended medium drains them never builds a backlog
    of stale frames. Counted under the [mac.replaced] metric. *)

val send_unicast : t -> dst:int -> bytes -> unit
(** Queues a unicast payload for [dst], with ACK and retransmission. *)

val radio : t -> Radio.t
(** The shared medium this MAC contends on — exposed so upper layers can
    read cumulative airtime statistics (e.g. load-adaptive timers). *)

val on_deliver : t -> (src:int -> bytes -> unit) -> unit
(** Upper-layer delivery callback: fires once per distinct received
    payload (duplicates from lost ACKs are suppressed). *)

val on_drop : t -> (dst:int -> bytes -> unit) -> unit
(** Fires when a unicast frame exhausts the retry limit. *)

val queue_length : t -> int
(** Frames waiting for the medium (including the one in service). *)

val airtime_broadcast : payload_bytes:int -> float
(** Time on air of a broadcast payload including headers and preamble;
    exposed for capacity analysis and tests. *)

val airtime_unicast : payload_bytes:int -> float

val ack_airtime : float
(** Time on air of a MAC-level acknowledgment (short preamble, basic
    rate) — part of the full per-unicast channel cost together with
    SIFS, DIFS and the average backoff. *)
