type t = { engine : Engine.t; mutable free_at : float }

let create engine = { engine; free_at = 0.0 }

let busy_until t = Float.max t.free_at (Engine.now t.engine)

(* Jobs are scheduled at the core's free time as known at enqueue; if an
   earlier job charges more CPU in the meantime, the job re-queues itself
   at the new free time. FIFO order is preserved by the engine's
   scheduling-order tie-break. *)
let rec enqueue t job =
  let start = busy_until t in
  ignore
    (Engine.at t.engine ~time:start (fun () ->
         if t.free_at > Engine.now t.engine then enqueue t job else job ()))

let charge t cost =
  if cost < 0.0 then invalid_arg "Cpu.charge: negative cost";
  t.free_at <- Float.max t.free_at (Engine.now t.engine) +. cost

let completion_time = busy_until
