(* Shared secret for the HMAC channels. Transport-level forgery is not
   part of the threat model being measured (Byzantine behaviour lives in
   the protocols); the key exists so that the authentication *work* is
   performed and charged like IPSec AH would. *)
let channel_key = Bytes.of_string "turquois-sim-ipsec-ah-shared-key"

let min_rto = 0.2
let max_rto = 10.0
let tag_len = 32

type segment_kind = Seg_data | Seg_ack

type unacked = { u_payload : bytes; u_sent_at : float; u_transmissions : int }

type sender_state = {
  s_dst : int;
  mutable next_seq : int;
  mutable base : int;
  mutable dupacks : int;
  pending : bytes Queue.t;          (* not yet admitted to the window *)
  unacked : (int, unacked) Hashtbl.t;
  mutable srtt : float option;
  mutable rttvar : float;
  mutable rto : float;
  mutable timer : Engine.handle option;
}

type receiver_state = {
  mutable expected : int;
  out_of_order : (int, bytes) Hashtbl.t;
  (* delayed-ACK state: in-order segments not yet acknowledged, and the
     pending delayed-ACK timer *)
  mutable unacked_segments : int;
  mutable ack_timer : Engine.handle option;
}

type t = {
  engine : Engine.t;
  dg : Datagram.t;
  cpu : Cpu.t;
  auth : bool;
  window : int;
  port : int;
  senders : (int, sender_state) Hashtbl.t;
  receivers : (int, receiver_state) Hashtbl.t;
  mutable deliver : (src:int -> bytes -> unit) option;
  mutable retransmissions : int;
}

let encode_segment t ~kind ~seq payload =
  let w = Util.Codec.W.create ~capacity:(48 + Bytes.length payload) () in
  Util.Codec.W.u8 w (match kind with Seg_data -> 0 | Seg_ack -> 1);
  Util.Codec.W.u32 w seq;
  Util.Codec.W.bytes_lp w payload;
  let body = Util.Codec.W.contents w in
  if not t.auth then body
  else begin
    let tag = Crypto.Hmac.mac ~key:channel_key body in
    Bytes.cat body tag
  end

let decode_segment t raw =
  let body, ok =
    if not t.auth then (raw, true)
    else begin
      let len = Bytes.length raw in
      if len < tag_len then (raw, false)
      else begin
        let body = Bytes.sub raw 0 (len - tag_len) in
        let tag = Bytes.sub raw (len - tag_len) tag_len in
        (body, Crypto.Hmac.verify ~key:channel_key body ~tag)
      end
    end
  in
  if not ok then None
  else
    match
      let r = Util.Codec.R.of_bytes body in
      let kind =
        match Util.Codec.R.u8 r with
        | 0 -> Seg_data
        | 1 -> Seg_ack
        | _ -> raise (Util.Codec.Malformed "segment kind")
      in
      let seq = Util.Codec.R.u32 r in
      let payload = Util.Codec.R.bytes_lp r in
      Util.Codec.R.expect_end r;
      (kind, seq, payload)
    with
    | result -> Some result
    | exception (Util.Codec.Malformed _ | Util.Codec.Truncated) -> None

let sender_state t dst =
  match Hashtbl.find_opt t.senders dst with
  | Some s -> s
  | None ->
      let s =
        {
          s_dst = dst;
          next_seq = 0;
          base = 0;
          dupacks = 0;
          pending = Queue.create ();
          unacked = Hashtbl.create 16;
          srtt = None;
          rttvar = 0.0;
          rto = min_rto;
          timer = None;
        }
      in
      Hashtbl.add t.senders dst s;
      s

let receiver_state t src =
  match Hashtbl.find_opt t.receivers src with
  | Some r -> r
  | None ->
      let r =
        { expected = 0; out_of_order = Hashtbl.create 16; unacked_segments = 0; ack_timer = None }
      in
      Hashtbl.add t.receivers src r;
      r

let charge_segment_cost t bytes_len =
  Cpu.charge t.cpu Cost.per_message_overhead;
  if t.auth then Cpu.charge t.cpu (Cost.hmac ~bytes_len)

let transmit_segment t s ~seq payload ~fresh =
  let raw = encode_segment t ~kind:Seg_data ~seq payload in
  if Obs.Trace2.enabled () then Obs.Causal.alias ~from:payload raw;
  charge_segment_cost t (Bytes.length raw);
  Obs.Metrics.incr "rlink.tx_segments";
  if not fresh then begin
    t.retransmissions <- t.retransmissions + 1;
    Obs.Metrics.incr "rlink.retransmits";
    Obs.Trace2.emit ~time:(Engine.now t.engine) ~node:(Mac.id (Datagram.mac t.dg))
      ~layer:"rlink" ~label:"retransmit"
      ([ ("dst", Obs.Trace2.I s.s_dst); ("seq", Obs.Trace2.I seq) ]
      @ if Obs.Trace2.enabled () then Obs.Causal.mid_field payload else [])
  end;
  Datagram.send t.dg ~dst:(`Node s.s_dst) ~port:t.port raw

let rec arm_timer t s =
  (match s.timer with
  | Some h ->
      Engine.cancel t.engine h;
      s.timer <- None
  | None -> ());
  if Hashtbl.length s.unacked > 0 then begin
    let handle = Engine.schedule t.engine ~delay:s.rto (fun () -> on_rto t s) in
    s.timer <- Some handle
  end

and on_rto t s =
  s.timer <- None;
  match Hashtbl.find_opt s.unacked s.base with
  | None -> arm_timer t s
  | Some u ->
      Obs.Metrics.incr "rlink.rto";
      Hashtbl.replace s.unacked s.base
        { u with u_transmissions = u.u_transmissions + 1; u_sent_at = Engine.now t.engine };
      transmit_segment t s ~seq:s.base u.u_payload ~fresh:false;
      s.rto <- Float.min (2.0 *. s.rto) max_rto;
      arm_timer t s

(* Nagle-style coalescing: drain as many queued messages as fit below
   the segment-size cap into one segment, so bursts of small protocol
   messages to the same peer share frames the way real TCP streams do. *)
let segment_cap = 1200

let pack_messages s =
  let w = Util.Codec.W.create ~capacity:256 () in
  let count = ref 0 in
  let first = ref None in
  let continue = ref true in
  while !continue do
    match Queue.peek_opt s.pending with
    | Some payload
      when !count = 0 || Util.Codec.W.length w + Bytes.length payload + 4 <= segment_cap ->
        ignore (Queue.pop s.pending);
        if !first = None then first := Some payload;
        Util.Codec.W.bytes_lp w payload;
        incr count
    | Some _ | None -> continue := false
  done;
  if !count = 0 then None
  else begin
    let seg = Util.Codec.W.contents w in
    (* a segment can coalesce several protocol messages; carry the first
       one's causal id — enough to tie retransmits/drops to the stream *)
    (match !first with
    | Some p when Obs.Trace2.enabled () -> Obs.Causal.alias ~from:p seg
    | _ -> ());
    Some seg
  end

let unpack_messages payload =
  let r = Util.Codec.R.of_bytes payload in
  let rec go acc = if Util.Codec.R.at_end r then List.rev acc else go (Util.Codec.R.bytes_lp r :: acc) in
  go []

let fill_window t s =
  let continue = ref true in
  while !continue do
    if s.next_seq < s.base + t.window && not (Queue.is_empty s.pending) then begin
      match pack_messages s with
      | None -> continue := false
      | Some payload ->
          let seq = s.next_seq in
          s.next_seq <- seq + 1;
          Hashtbl.replace s.unacked seq
            { u_payload = payload; u_sent_at = Engine.now t.engine; u_transmissions = 1 };
          transmit_segment t s ~seq payload ~fresh:true
    end
    else continue := false
  done;
  arm_timer t s

let update_rtt s sample =
  match s.srtt with
  | None ->
      s.srtt <- Some sample;
      s.rttvar <- sample /. 2.0;
      s.rto <- Float.max min_rto (sample +. (4.0 *. s.rttvar))
  | Some srtt ->
      let err = sample -. srtt in
      s.rttvar <- (0.75 *. s.rttvar) +. (0.25 *. Float.abs err);
      s.srtt <- Some (srtt +. (0.125 *. err));
      s.rto <-
        Float.max min_rto
          (Float.min max_rto ((srtt +. (0.125 *. err)) +. (4.0 *. s.rttvar)))

let handle_ack t s ackno =
  if ackno > s.base then begin
    (* Karn: only sample RTT from segments transmitted exactly once *)
    let now = Engine.now t.engine in
    for seq = s.base to ackno - 1 do
      (match Hashtbl.find_opt s.unacked seq with
      | Some u when u.u_transmissions = 1 -> update_rtt s (now -. u.u_sent_at)
      | Some _ | None -> ());
      Hashtbl.remove s.unacked seq
    done;
    s.base <- ackno;
    s.dupacks <- 0;
    fill_window t s
  end
  else if ackno = s.base && Hashtbl.length s.unacked > 0 then begin
    s.dupacks <- s.dupacks + 1;
    if s.dupacks = 3 then begin
      s.dupacks <- 0;
      match Hashtbl.find_opt s.unacked s.base with
      | Some u ->
          Hashtbl.replace s.unacked s.base
            { u with u_transmissions = u.u_transmissions + 1; u_sent_at = Engine.now t.engine };
          transmit_segment t s ~seq:s.base u.u_payload ~fresh:false;
          arm_timer t s
      | None -> ()
    end
  end

let delayed_ack_interval = 2.0e-3

let send_ack_now t r ~dst =
  r.unacked_segments <- 0;
  (match r.ack_timer with
  | Some h ->
      Engine.cancel t.engine h;
      r.ack_timer <- None
  | None -> ());
  let raw = encode_segment t ~kind:Seg_ack ~seq:r.expected Bytes.empty in
  charge_segment_cost t (Bytes.length raw);
  Datagram.send t.dg ~dst:(`Node dst) ~port:t.port raw

(* TCP-style delayed ACK: acknowledge every second in-order segment
   immediately, otherwise after a short delay; out-of-order arrivals are
   acknowledged at once so the sender's fast retransmit still works. *)
let schedule_ack t r ~dst ~in_order =
  if not in_order then send_ack_now t r ~dst
  else begin
    r.unacked_segments <- r.unacked_segments + 1;
    if r.unacked_segments >= 2 then send_ack_now t r ~dst
    else if r.ack_timer = None then
      r.ack_timer <-
        Some
          (Engine.schedule t.engine ~delay:delayed_ack_interval (fun () ->
               r.ack_timer <- None;
               send_ack_now t r ~dst))
  end

let handle_data t ~src seq payload =
  Obs.Metrics.incr "rlink.rx_segments";
  let r = receiver_state t src in
  let deliver_segment payload =
    match t.deliver with
    | Some f ->
        List.iter (fun m -> Cpu.enqueue t.cpu (fun () -> f ~src m)) (unpack_messages payload)
    | None -> ()
  in
  if seq = r.expected then begin
    r.expected <- r.expected + 1;
    deliver_segment payload;
    (* drain any buffered successors *)
    let continue = ref true in
    while !continue do
      match Hashtbl.find_opt r.out_of_order r.expected with
      | Some p ->
          Hashtbl.remove r.out_of_order r.expected;
          r.expected <- r.expected + 1;
          deliver_segment p
      | None -> continue := false
    done;
    schedule_ack t r ~dst:src ~in_order:true
  end
  else begin
    if seq > r.expected then Hashtbl.replace r.out_of_order seq payload;
    schedule_ack t r ~dst:src ~in_order:false
  end

let create engine dg cpu ?(auth = false) ?(window = 8) ~port () =
  let t =
    {
      engine;
      dg;
      cpu;
      auth;
      window;
      port;
      senders = Hashtbl.create 8;
      receivers = Hashtbl.create 8;
      deliver = None;
      retransmissions = 0;
    }
  in
  Datagram.listen dg ~port (fun ~src raw ->
      charge_segment_cost t (Bytes.length raw);
      match decode_segment t raw with
      | None -> ()
      | Some (Seg_ack, ackno, _) -> handle_ack t (sender_state t src) ackno
      | Some (Seg_data, seq, payload) -> handle_data t ~src seq payload);
  t

let send t ~dst payload =
  let s = sender_state t dst in
  Queue.add payload s.pending;
  fill_window t s

let on_receive t f = t.deliver <- Some f
let stats_retransmissions t = t.retransmissions
