type action =
  | Crash of int
  | Recover of int
  | Set_loss of float
  | Set_rx_loss of { rx : int; p : float }
  | Set_link_loss of { tx : int; rx : int; p : float }
  | Jam of { until : float }
  | Jam_rx of { rx : int; until : float }
  | Delay_rx of { rx : int; delay : float; until : float }

type entry = { at : float; action : action }
type t = entry list

let action_to_string = function
  | Crash i -> Printf.sprintf "crash p%d" i
  | Recover i -> Printf.sprintf "recover p%d" i
  | Set_loss p -> Printf.sprintf "loss %.3f" p
  | Set_rx_loss { rx; p } -> Printf.sprintf "rx-loss p%d %.3f" rx p
  | Set_link_loss { tx; rx; p } -> Printf.sprintf "link-loss p%d->p%d %.3f" tx rx p
  | Jam { until } -> Printf.sprintf "jam until %.3fs" until
  | Jam_rx { rx; until } -> Printf.sprintf "jam p%d until %.3fs" rx until
  | Delay_rx { rx; delay; until } ->
      Printf.sprintf "delay p%d +%.1fms until %.3fs" rx (delay *. 1000.0) until

let entry_to_string e = Printf.sprintf "%.3fs %s" e.at (action_to_string e.action)

let to_string sched =
  match sched with
  | [] -> "(empty schedule)"
  | entries -> String.concat "; " (List.map entry_to_string entries)

let sort sched = List.stable_sort (fun a b -> compare a.at b.at) sched

(* Trace every injected fault so the analyzer can attribute stalls. *)
let emit_injection ~time action =
  Obs.Metrics.incr "fault.injected";
  let label, fields =
    match action with
    | Crash i -> ("crash", [ ("node", Obs.Trace2.I i) ])
    | Recover i -> ("recover", [ ("node", Obs.Trace2.I i) ])
    | Set_loss p -> ("set_loss", [ ("p", Obs.Trace2.F p) ])
    | Set_rx_loss { rx; p } ->
        ("set_rx_loss", [ ("rx", Obs.Trace2.I rx); ("p", Obs.Trace2.F p) ])
    | Set_link_loss { tx; rx; p } ->
        ( "set_link_loss",
          [ ("tx", Obs.Trace2.I tx); ("rx", Obs.Trace2.I rx); ("p", Obs.Trace2.F p) ] )
    | Jam { until } -> ("jam", [ ("until", Obs.Trace2.F until) ])
    | Jam_rx { rx; until } ->
        ("jam_rx", [ ("rx", Obs.Trace2.I rx); ("until", Obs.Trace2.F until) ])
    | Delay_rx { rx; delay; until } ->
        ( "delay_rx",
          [
            ("rx", Obs.Trace2.I rx);
            ("delay_s", Obs.Trace2.F delay);
            ("until", Obs.Trace2.F until);
          ] )
  in
  Obs.Trace2.emit ~time ~node:(-1) ~layer:"fault" ~label fields

let perform radio now action =
  emit_injection ~time:now action;
  match action with
  | Crash i -> Fault.crash radio i
  | Recover i -> Fault.recover radio i
  | Set_loss p -> Radio.set_loss_prob radio p
  | Set_rx_loss { rx; p } -> Radio.set_rx_loss radio ~rx p
  | Set_link_loss { tx; rx; p } -> Radio.set_link_loss radio ~tx ~rx p
  | Jam { until } -> Radio.jam radio ~from:now ~until
  | Jam_rx { rx; until } ->
      (* targeted jamming: destroy everything arriving at rx for the
         window, then restore its previous overlay (assumed 0) *)
      Radio.set_rx_loss radio ~rx 1.0;
      ignore
        (Engine.at (Radio.engine radio) ~time:until (fun () ->
             Radio.set_rx_loss radio ~rx 0.0))
  | Delay_rx { rx; delay; until } ->
      Radio.set_rx_delay radio ~rx delay;
      ignore
        (Engine.at (Radio.engine radio) ~time:until (fun () ->
             Radio.set_rx_delay radio ~rx 0.0))

let apply radio sched =
  let engine = Radio.engine radio in
  List.iter
    (fun { at; action } ->
      if at <= Engine.now engine then perform radio (Engine.now engine) action
      else ignore (Engine.at engine ~time:at (fun () -> perform radio at action)))
    (sort sched)

(* --- random generation ------------------------------------------------------ *)

let random ~rng ~n ~duration ?(events = 6) ?(allow_crashes = true) () =
  let pick_node () = Util.Rng.int rng n in
  let pick_time () = Util.Rng.float rng duration in
  let entry () =
    let at = pick_time () in
    let kind = Util.Rng.int rng (if allow_crashes then 6 else 5) in
    let action =
      match kind with
      | 0 -> Set_loss (Util.Rng.float rng 0.3)
      | 1 -> Set_rx_loss { rx = pick_node (); p = Util.Rng.float rng 0.6 }
      | 2 ->
          let tx = pick_node () in
          let rx = (tx + 1 + Util.Rng.int rng (max 1 (n - 1))) mod n in
          Set_link_loss { tx; rx; p = Util.Rng.float rng 0.8 }
      | 3 ->
          let w = 0.002 +. Util.Rng.float rng 0.03 in
          Jam_rx { rx = pick_node (); until = at +. w }
      | 4 ->
          let w = 0.005 +. Util.Rng.float rng 0.05 in
          Delay_rx
            { rx = pick_node (); delay = Util.Rng.float rng 0.004; until = at +. w }
      | _ ->
          let victim = pick_node () in
          Crash victim
    in
    { at; action }
  in
  (* [entry] draws from the rng: application order must be pinned *)
  let raw = Util.Init.list events (fun _ -> entry ()) in
  (* every crash recovers before the horizon so liveness stays checkable *)
  let recoveries =
    List.filter_map
      (fun e ->
        match e.action with
        | Crash i ->
            Some { at = e.at +. 0.01 +. Util.Rng.float rng (duration /. 2.0); action = Recover i }
        | _ -> None)
      raw
  in
  (* end on a quiet channel: clear every overlay at the horizon (jam /
     delay windows already carry their own expiry) *)
  let resets =
    List.filter_map
      (fun e ->
        match e.action with
        | Set_rx_loss { rx; _ } -> Some { at = duration; action = Set_rx_loss { rx; p = 0.0 } }
        | Set_link_loss { tx; rx; _ } ->
            Some { at = duration; action = Set_link_loss { tx; rx; p = 0.0 } }
        | _ -> None)
      raw
  in
  sort (raw @ recoveries @ resets @ [ { at = duration; action = Set_loss 0.0 } ])

(* --- quiescence ------------------------------------------------------------- *)

(* When is the channel provably back to zero injected faults? Fold the
   timeline tracking residual state; [None] if any overlay, crash or
   window persists past the last entry. *)
let quiet_after sched =
  let horizon = ref 0.0 in
  let bump x = if x > !horizon then horizon := x in
  let loss = ref 0.0 in
  let rx_loss : (int, float) Hashtbl.t = Hashtbl.create 8 in
  let link_loss : (int * int, float) Hashtbl.t = Hashtbl.create 8 in
  let down : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun { at; action } ->
      bump at;
      match action with
      | Crash i -> Hashtbl.replace down i ()
      | Recover i -> Hashtbl.remove down i
      | Set_loss p -> loss := p
      | Set_rx_loss { rx; p } ->
          if p = 0.0 then Hashtbl.remove rx_loss rx else Hashtbl.replace rx_loss rx p
      | Set_link_loss { tx; rx; p } ->
          if p = 0.0 then Hashtbl.remove link_loss (tx, rx)
          else Hashtbl.replace link_loss (tx, rx) p
      | Jam { until } | Jam_rx { until; _ } | Delay_rx { until; _ } -> bump until)
    (sort sched);
  if !loss = 0.0 && Hashtbl.length rx_loss = 0 && Hashtbl.length link_loss = 0
     && Hashtbl.length down = 0
  then Some !horizon
  else None

(* --- shrinking -------------------------------------------------------------- *)

(* Candidate simplifications of a failing schedule, most aggressive
   first: the chaos harness re-runs each candidate and keeps the first
   that still fails, iterating to a local minimum. *)
let shrink_candidates sched =
  let n = List.length sched in
  if n = 0 then []
  else begin
    let drop_half first =
      List.filteri (fun i _ -> if first then i >= n / 2 else i < n - (n / 2)) sched
    in
    let halves = if n >= 2 then [ drop_half true; drop_half false ] else [] in
    let drop_one = List.init n (fun i -> List.filteri (fun j _ -> j <> i) sched) in
    halves @ drop_one
  end
