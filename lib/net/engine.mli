(** Discrete-event simulation engine.

    Time is a float in seconds. Events fire in nondecreasing time order;
    ties break by scheduling order, so a run is a deterministic function
    of the inputs. All higher layers (radio, MAC, transports, protocol
    timers) are driven from one engine instance. *)

type t

type handle
(** Names a scheduled event so it can be cancelled. *)

type backend =
  | Heap  (** binary min-heap: O(log n) push/pop, the default *)
  | Calendar
      (** calendar queue (bucketed timing wheel): O(1) amortized when
          deadlines are spread over a few wheel revolutions, the regime
          of large simulations. Pop-for-pop bit-identical to [Heap] —
          both order by the full (time, seq) key. *)

val create : ?backend:backend -> unit -> t

val backend : t -> backend

val now : t -> float
(** Current simulation time in seconds. *)

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t +. delay].
    @raise Invalid_argument if [delay] is negative or NaN. *)

val at : t -> time:float -> (unit -> unit) -> handle
(** Absolute-time variant; [time] in the past fires immediately-next. *)

val cancel : t -> handle -> unit
(** Cancelling an already-fired or cancelled event is a no-op. *)

val pending : t -> int
(** Number of live (not cancelled, not yet fired) events. Safe as a
    quiescence signal: cancelled events never count, even before they
    are lazily collected from the heap. *)

val events_live : t -> int
(** Alias for {!pending}; the name the metrics exporters use. *)

val heap_size : t -> int
(** Raw queue occupancy (either backend), including cancelled events
    awaiting lazy collection. [heap_size t >= pending t]; exposed for
    tests and queue-depth diagnostics. *)

val live_peak : t -> int
(** High-water mark of {!pending} over the engine's lifetime. *)

val queued_peak : t -> int
(** High-water mark of {!heap_size} over the engine's lifetime. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Drains the queue. Stops when the queue is empty, when the next event
    is later than [until], or after [max_events] events. *)

val step : t -> bool
(** Executes the single next event; [false] when the queue is empty. *)

val run_while : t -> (unit -> bool) -> unit
(** Executes events while the predicate holds (checked before each
    event) and the queue is non-empty. *)
