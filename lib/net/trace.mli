(** Lightweight event tracing for simulation debugging (v1 view).

    Since the observability PR this is a thin compatibility wrapper
    over the structured {!Obs.Trace2} sink: {!emit} stores its detail
    string as a single field, and {!events} renders Trace2's typed
    fields back into detail strings. Layers that carry structured data
    (radio, protocols) emit via [Obs.Trace2] directly; both views read
    the same buffer, so [start]/[stop]/[clear] here control the whole
    sink. Used by `turquois-lab run --trace`. *)

type event = {
  time : float;
  node : int;       (** -1 when not attributable to one node *)
  layer : string;   (** "radio", "mac", "rlink", "turquois", ... *)
  label : string;   (** short event class, e.g. "tx", "drop", "decide" *)
  detail : string;
}

val start : ?limit:int -> unit -> unit
(** Enables collection; at most [limit] events are kept (default
    100_000; afterwards new events are counted but dropped). *)

val stop : unit -> unit
val enabled : unit -> bool

val emit :
  time:float -> node:int -> layer:string -> label:string -> string -> unit

val events : unit -> event list
(** Collected events in emission (= time) order. *)

val dropped : unit -> int
val clear : unit -> unit

val render : ?filter:(event -> bool) -> ?max_events:int -> unit -> string
(** One line per event: [time node layer label detail]. Ends with a
    ["(+N more, M dropped)"] trailer when [max_events] truncated the
    listing (N) or the sink itself dropped events at its limit (M). *)
