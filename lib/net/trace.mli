(** Lightweight event tracing for simulation debugging.

    A process-global, off-by-default sink: layers call {!emit}, which is
    a no-op unless tracing was started. The simulator is single-threaded
    and deterministic, so a trace of a failing run (same seed) is a
    complete, replayable explanation. Used by `turquois-lab run
    --trace`. *)

type event = {
  time : float;
  node : int;       (** -1 when not attributable to one node *)
  layer : string;   (** "radio", "mac", "rlink", "turquois", ... *)
  label : string;   (** short event class, e.g. "tx", "drop", "decide" *)
  detail : string;
}

val start : ?limit:int -> unit -> unit
(** Enables collection; at most [limit] events are kept (default
    100_000; afterwards new events are counted but dropped). *)

val stop : unit -> unit
val enabled : unit -> bool

val emit :
  time:float -> node:int -> layer:string -> label:string -> string -> unit

val events : unit -> event list
(** Collected events in emission (= time) order. *)

val dropped : unit -> int
val clear : unit -> unit

val render : ?filter:(event -> bool) -> ?max_events:int -> unit -> string
(** One line per event: [time node layer label detail]. *)
