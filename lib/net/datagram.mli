(** Connectionless datagram service (UDP/IP equivalent) over the MAC.

    Adds the IP+UDP header overhead (28 bytes) to every packet so that
    simulated airtimes match real ones, dispatches received payloads by
    destination port, and loops broadcast datagrams back to the sending
    node (the paper's protocol broadcasts include the sender itself;
    the loopback path does not touch the radio). *)

type t

val header_bytes : int
(** 28 = IP (20) + UDP (8). *)

val create : Engine.t -> Mac.t -> t

val send :
  t -> dst:[ `Broadcast | `Node of int ] -> port:int -> bytes -> unit
(** Queues a datagram. Broadcast datagrams are also delivered locally
    (loopback) at the end of the MAC airtime they would need, so local
    and remote deliveries of the same broadcast happen at comparable
    times. *)

val send_latest : t -> ?tag:int -> port:int -> bytes -> unit
(** Broadcast a datagram that {e supersedes} any broadcast with the same
    replacement [tag] (default: the port) still queued at the MAC: the
    queued frame's payload is replaced in place
    ({!Mac.send_broadcast_replacing}), so a fast producer on a contended
    medium transmits only its latest state. Loopback delivery behaves as
    in {!send}. *)

val listen : t -> port:int -> (src:int -> bytes -> unit) -> unit
(** At most one listener per port; a second [listen] replaces the
    first. *)

val unlisten : t -> port:int -> unit
(** Removes the port's listener; later datagrams to it are dropped.
    No-op when the port has no listener. *)

val mac : t -> Mac.t
