(** Per-node runtime bundle: MAC + datagram + CPU + timers.

    Protocol implementations talk to a [Node.t] only; everything below
    (medium access, airtime, loss) is hidden behind it. All application
    callbacks — datagram deliveries and timers — are serialized through
    the node's CPU queue, so a handler that charges cryptographic cost
    delays every later handler on the same node, as on real hardware. *)

type t

val create : Engine.t -> Radio.t -> id:int -> rng:Util.Rng.t -> t

val id : t -> int
val engine : t -> Engine.t
val rng : t -> Util.Rng.t
val cpu : t -> Cpu.t
val datagram : t -> Datagram.t
val mac : t -> Mac.t

val charge : t -> float -> unit
(** Account CPU cost to the currently-running handler. *)

val broadcast : t -> port:int -> bytes -> unit
(** UDP-style broadcast, loopback included. *)

val broadcast_latest : t -> ?tag:int -> port:int -> bytes -> unit
(** {!broadcast}, but a broadcast with the same replacement [tag]
    (default: the port) still queued at the MAC is superseded in place
    rather than queued behind — the transport for periodic state
    announcements whose newest frame obsoletes the older ones. *)

val unicast : t -> dst:int -> port:int -> bytes -> unit

val listen : t -> port:int -> (src:int -> bytes -> unit) -> unit
(** Datagram listener; runs on the CPU queue with the per-message
    kernel overhead already charged. *)

val unlisten : t -> port:int -> unit
(** Removes the port's datagram listener (e.g. when a finished
    protocol instance is retired); later datagrams to the port are
    dropped before they reach the CPU queue. *)

val set_timer : t -> delay:float -> (unit -> unit) -> Engine.handle
(** One-shot timer; the callback runs on the CPU queue. *)

val cancel_timer : t -> Engine.handle -> unit

val every : t -> period:float -> (unit -> unit) -> unit
(** Fixed-period recurring timer (first firing after one period). The
    callback runs on the CPU queue; periods are measured on the engine
    clock, so a busy CPU delays the callback but not the schedule. *)
