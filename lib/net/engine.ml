type event = {
  time : float;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
  mutable queued : bool;
}

type handle = event

type backend = Heap | Calendar

(* Two interchangeable queue backends behind one bookkeeping shell.

   [Heap] is a binary min-heap ordered by (time, seq). [Calendar] is a
   bucketed timing wheel (calendar queue): deadlines hash into
   [buckets] by virtual bucket number floor(time / width); a cursor
   walks the wheel one width-sized window per step, so pops cost O(1)
   amortized when deadlines are spread over a few wheel revolutions —
   the regime big simulations live in, where the heap's O(log n) per
   event starts to show.

   Both backends order events by the full (time, seq) key, so they are
   pop-for-pop bit-identical (a property test holds them to that).

   [live] counts queued events that are not cancelled: cancellation
   only flags the event in O(1) (it is lazily collected when it
   reaches the front), so raw occupancy over-reports queue depth. *)
type t = {
  backend : backend;
  (* heap backend *)
  mutable heap : event array;
  mutable size : int;
  (* calendar backend: per-bucket lists sorted by (time, seq) *)
  mutable buckets : event list array;
  mutable width : float;
  mutable cal_count : int;
  mutable cal_vb : int; (* cursor: virtual bucket number, monotone between resets *)
  (* shared *)
  mutable clock : float;
  mutable next_seq : int;
  mutable live : int;
  mutable live_peak : int;
  mutable queued_peak : int;
}

let dummy =
  { time = 0.0; seq = -1; action = (fun () -> ()); cancelled = true; queued = false }

let cal_initial_buckets = 64
let cal_initial_width = 1.0e-3

let create ?(backend = Heap) () =
  {
    backend;
    heap = (match backend with Heap -> Array.make 256 dummy | Calendar -> [||]);
    size = 0;
    buckets =
      (match backend with Heap -> [||] | Calendar -> Array.make cal_initial_buckets []);
    width = cal_initial_width;
    cal_count = 0;
    cal_vb = 0;
    clock = 0.0;
    next_seq = 0;
    live = 0;
    live_peak = 0;
    queued_peak = 0;
  }

let now t = t.clock
let backend t = t.backend

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

(* --- heap backend ------------------------------------------------------- *)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let heap_push t ev =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- ev;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let heap_pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    t.heap.(t.size) <- dummy;
    if t.size > 0 then sift_down t 0;
    Some top
  end

(* --- calendar backend --------------------------------------------------- *)

(* Virtual bucket number. The clamp keeps int_of_float defined for
   far-future deadlines (e.g. an infinite delay): everything past the
   clamp collapses into one bucket, still ordered by (time, seq). *)
let cal_vb_of t time =
  let q = time /. t.width in
  if q >= 1.0e15 then 1_000_000_000_000_000 else int_of_float q

let cal_bucket_of t time = cal_vb_of t time mod Array.length t.buckets

let rec insert_sorted ev = function
  | [] -> [ ev ]
  | x :: _ as l when before ev x -> ev :: l
  | x :: rest -> x :: insert_sorted ev rest

let cal_all_sorted t =
  let all = Array.fold_left (fun acc l -> List.rev_append l acc) [] t.buckets in
  List.sort (fun a b -> if before a b then -1 else 1) all

(* Re-seat the cursor so the invariant "every queued deadline has
   vb >= cal_vb" holds again. *)
let cal_reset_cursor t time = t.cal_vb <- cal_vb_of t time

(* Resize the wheel and re-estimate the bucket width from the spread of
   the nearest queued deadlines (Brown's sampling rule, deterministic). *)
let cal_rebuild t nbuckets =
  let evs = cal_all_sorted t in
  (match evs with
  | [] | [ _ ] -> ()
  | first :: _ ->
      let arr = Array.of_list evs in
      let k = min (Array.length arr) 64 in
      let span = arr.(k - 1).time -. first.time in
      if span > 0.0 then t.width <- Float.max 1.0e-9 (3.0 *. span /. float_of_int k));
  t.buckets <- Array.make nbuckets [];
  List.iter
    (fun ev ->
      let b = cal_bucket_of t ev.time in
      t.buckets.(b) <- ev :: t.buckets.(b))
    evs;
  Array.iteri (fun i l -> t.buckets.(i) <- List.rev l) t.buckets;
  match evs with
  | [] -> cal_reset_cursor t t.clock
  | first :: _ -> cal_reset_cursor t first.time

let cal_insert t ev =
  let n = Array.length t.buckets in
  if t.cal_count > 2 * n then cal_rebuild t (2 * n);
  let b = cal_bucket_of t ev.time in
  t.buckets.(b) <- insert_sorted ev t.buckets.(b);
  t.cal_count <- t.cal_count + 1;
  (* an arrival behind the cursor would be missed by the forward scan *)
  if cal_vb_of t ev.time < t.cal_vb then cal_reset_cursor t ev.time

(* Find the global (time, seq)-minimum without removing it, advancing
   the cursor as a side effect. Scanning one revolution suffices: all
   queued deadlines have vb >= cal_vb, and the head of a bucket
   qualifies exactly when its vb equals the cursor position for that
   step, so the first hit is the global minimum. When a whole
   revolution is empty (deadlines lie beyond one wheel turn) a direct
   min scan re-seats the cursor. *)
let cal_find_min t =
  if t.cal_count = 0 then None
  else begin
    let n = Array.length t.buckets in
    let found = ref None in
    let step = ref 0 in
    while !found = None && !step < n do
      (match t.buckets.((t.cal_vb + !step) mod n) with
      | ev :: _ when cal_vb_of t ev.time <= t.cal_vb + !step ->
          t.cal_vb <- t.cal_vb + !step;
          found := Some ev
      | _ -> ());
      incr step
    done;
    match !found with
    | Some _ as r -> r
    | None ->
        let best = ref None in
        Array.iter
          (fun l ->
            match (l, !best) with
            | [], _ -> ()
            | ev :: _, Some b -> if before ev b then best := Some ev
            | ev :: _, None -> best := Some ev)
          t.buckets;
        (match !best with Some ev -> cal_reset_cursor t ev.time | None -> ());
        !best
  end

let cal_pop t =
  match cal_find_min t with
  | None -> None
  | Some ev ->
      let idx = t.cal_vb mod Array.length t.buckets in
      (match t.buckets.(idx) with
      | hd :: rest when hd == ev -> t.buckets.(idx) <- rest
      | _ -> assert false);
      t.cal_count <- t.cal_count - 1;
      let n = Array.length t.buckets in
      if n > cal_initial_buckets && t.cal_count < n / 4 then cal_rebuild t (n / 2);
      Some ev

(* --- shared shell ------------------------------------------------------- *)

let queued t = match t.backend with Heap -> t.size | Calendar -> t.cal_count

let pop t =
  let popped = match t.backend with Heap -> heap_pop t | Calendar -> cal_pop t in
  (match popped with
  | Some ev ->
      ev.queued <- false;
      if not ev.cancelled then t.live <- t.live - 1
  | None -> ());
  popped

let peek_time t =
  match t.backend with
  | Heap -> if t.size = 0 then None else Some t.heap.(0).time
  | Calendar -> (
      match cal_find_min t with Some ev -> Some ev.time | None -> None)

let at t ~time action =
  let time = Float.max time t.clock in
  let ev = { time; seq = t.next_seq; action; cancelled = false; queued = true } in
  t.next_seq <- t.next_seq + 1;
  (match t.backend with Heap -> heap_push t ev | Calendar -> cal_insert t ev);
  t.live <- t.live + 1;
  if t.live > t.live_peak then t.live_peak <- t.live;
  let q = queued t in
  if q > t.queued_peak then t.queued_peak <- q;
  ev

let schedule t ~delay action =
  if Float.is_nan delay || delay < 0.0 then invalid_arg "Engine.schedule: bad delay";
  at t ~time:(t.clock +. delay) action

let cancel t handle =
  if not handle.cancelled then begin
    handle.cancelled <- true;
    if handle.queued then t.live <- t.live - 1
  end

let pending t = t.live
let events_live = pending
let heap_size = queued
let live_peak t = t.live_peak
let queued_peak t = t.queued_peak

let step t =
  let sp = Obs.Prof.start () in
  let popped = pop t in
  Obs.Prof.stop Obs.Prof.engine_pop sp;
  match popped with
  | None -> false
  | Some ev ->
      if not ev.cancelled then begin
        t.clock <- ev.time;
        ev.action ()
      end;
      true

let run ?(until = Float.infinity) ?(max_events = max_int) t =
  let executed = ref 0 in
  let continue = ref true in
  while !continue && !executed < max_events do
    match peek_time t with
    | None -> continue := false
    | Some next when next > until -> continue := false
    | Some _ ->
        ignore (step t);
        incr executed
  done

let run_while t predicate =
  let continue = ref true in
  while !continue do
    if queued t = 0 || not (predicate ()) then continue := false else ignore (step t)
  done
