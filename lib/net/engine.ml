type event = {
  time : float;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
  mutable queued : bool;
}

type handle = event

(* Binary min-heap ordered by (time, seq). [live] counts queued events
   that are not cancelled: cancellation only flags the event (it is
   lazily collected when it reaches the heap top), so the heap size
   over-reports queue depth. *)
type t = {
  mutable heap : event array;
  mutable size : int;
  mutable clock : float;
  mutable next_seq : int;
  mutable live : int;
}

let dummy =
  { time = 0.0; seq = -1; action = (fun () -> ()); cancelled = true; queued = false }

let create () =
  { heap = Array.make 256 dummy; size = 0; clock = 0.0; next_seq = 0; live = 0 }

let now t = t.clock

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ev =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- ev;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    t.heap.(t.size) <- dummy;
    if t.size > 0 then sift_down t 0;
    top.queued <- false;
    if not top.cancelled then t.live <- t.live - 1;
    Some top
  end

let at t ~time action =
  let time = Float.max time t.clock in
  let ev = { time; seq = t.next_seq; action; cancelled = false; queued = true } in
  t.next_seq <- t.next_seq + 1;
  push t ev;
  t.live <- t.live + 1;
  ev

let schedule t ~delay action =
  if Float.is_nan delay || delay < 0.0 then invalid_arg "Engine.schedule: bad delay";
  at t ~time:(t.clock +. delay) action

let cancel t handle =
  if not handle.cancelled then begin
    handle.cancelled <- true;
    if handle.queued then t.live <- t.live - 1
  end

let pending t = t.live
let heap_size t = t.size

let step t =
  let sp = Obs.Prof.start () in
  let popped = pop t in
  Obs.Prof.stop Obs.Prof.engine_pop sp;
  match popped with
  | None -> false
  | Some ev ->
      if not ev.cancelled then begin
        t.clock <- ev.time;
        ev.action ()
      end;
      true

let run ?(until = Float.infinity) ?(max_events = max_int) t =
  let executed = ref 0 in
  let continue = ref true in
  while !continue && !executed < max_events do
    if t.size = 0 then continue := false
    else if t.heap.(0).time > until then continue := false
    else begin
      ignore (step t);
      incr executed
    end
  done

let run_while t predicate =
  let continue = ref true in
  while !continue do
    if t.size = 0 || not (predicate ()) then continue := false else ignore (step t)
  done
