(** Probabilistic primality testing and prime generation.

    Used by the crypto layer to generate RSA moduli and Schnorr groups
    for the threshold common coin. All randomness is drawn from an
    explicit {!Util.Rng.t}, so key material is reproducible per seed. *)

val small_primes : int array
(** The primes below 1000, used for trial division. *)

val is_probably_prime : ?rounds:int -> Util.Rng.t -> Znum.t -> bool
(** Miller–Rabin with [rounds] random bases (default 24) after trial
    division by {!small_primes}. Error probability at most
    [4^-rounds] for composites. Deterministically correct for inputs
    below 10^6. *)

val random_bits : Util.Rng.t -> bits:int -> Znum.t
(** Uniform integer in [\[0, 2^bits)]. *)

val random_below : Util.Rng.t -> Znum.t -> Znum.t
(** Uniform integer in [\[0, bound)] by rejection sampling.
    @raise Invalid_argument if bound <= 0. *)

val random_prime : Util.Rng.t -> bits:int -> Znum.t
(** A random prime of exactly [bits] bits (top bit set).
    @raise Invalid_argument if [bits < 2]. *)

type schnorr_group = {
  p : Znum.t;  (** prime modulus *)
  q : Znum.t;  (** prime order of the subgroup, q | p-1 *)
  g : Znum.t;  (** generator of the order-q subgroup *)
}

val schnorr_group : Util.Rng.t -> pbits:int -> qbits:int -> schnorr_group
(** DSA-style parameter generation: a [qbits] prime q, a [pbits] prime
    p = q*r + 1, and g = h^((p-1)/q) <> 1. The threshold coin operates
    in this subgroup. *)
