(** Arbitrary-precision signed integers.

    Self-contained implementation (no external dependency): magnitudes
    are little-endian arrays of 26-bit limbs, so limb products and
    Knuth-D quotient estimates fit comfortably in OCaml's native 63-bit
    integers. Sized for the cryptographic workloads in this repository
    (512–1024 bit RSA and Schnorr-group arithmetic). *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
val to_int_opt : t -> int option
(** [to_int_opt t] is [Some n] when the value fits in a native [int]. *)

val of_string : string -> t
(** Decimal, with optional leading ['-'].
    @raise Invalid_argument on empty or non-numeric input. *)

val to_string : t -> string
(** Decimal rendering. *)

val of_bytes_be : bytes -> t
(** Big-endian unsigned magnitude; the empty buffer is 0. *)

val to_bytes_be : ?len:int -> t -> bytes
(** Big-endian unsigned magnitude of [abs t], left-padded with zeros to
    [len] when given. @raise Invalid_argument if the value needs more
    than [len] bytes or [t] is negative. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val neg : t -> t
val abs : t -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** Truncated division (like [Stdlib.( / )] and [mod]): quotient rounds
    toward zero, remainder has the sign of the dividend.
    @raise Division_by_zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val emod : t -> t -> t
(** [emod a m] is the unique representative of [a] in [\[0, m)] for
    positive [m]. @raise Invalid_argument if [m <= 0]. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val bit_length : t -> int
(** Bits in the magnitude; [bit_length zero = 0]. *)

val testbit : t -> int -> bool
val is_even : t -> bool
val is_odd : t -> bool

val gcd : t -> t -> t
val egcd : t -> t -> t * t * t
(** [egcd a b] is [(g, x, y)] with [g = gcd a b >= 0] and
    [a*x + b*y = g]. *)

val mod_inv : t -> m:t -> t option
(** Multiplicative inverse of [t] modulo [m], in [\[0, m)], when
    [gcd t m = 1]. *)

val mod_pow : base:t -> exp:t -> m:t -> t
(** [mod_pow ~base ~exp ~m] for [exp >= 0], [m > 0]; result in
    [\[0, m)]. Square-and-multiply with window size 1. *)

val pp : Format.formatter -> t -> unit
