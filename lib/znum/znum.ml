(* Magnitudes are little-endian arrays of limbs in base 2^26. The limb
   width is chosen so that every intermediate product or Knuth-D quotient
   estimate (at most 2^52 + 2^26) fits in a native 63-bit int. *)

let limb_bits = 26
let base = 1 lsl limb_bits
let limb_mask = base - 1

module Nat = struct
  type t = int array
  (* invariant: no leading (high-index) zero limb; [||] is zero *)

  let zero : t = [||]
  let is_zero (a : t) = Array.length a = 0

  let norm (a : int array) : t =
    let n = ref (Array.length a) in
    while !n > 0 && a.(!n - 1) = 0 do decr n done;
    if !n = Array.length a then a else Array.sub a 0 !n

  let of_int v =
    (* v >= 0 *)
    if v = 0 then zero
    else begin
      let rec count acc v = if v = 0 then acc else count (acc + 1) (v lsr limb_bits) in
      let n = count 0 v in
      Array.init n (fun i -> (v lsr (limb_bits * i)) land limb_mask)
    end

  let to_int_opt (a : t) =
    let n = Array.length a in
    if n * limb_bits <= 62 then begin
      let v = ref 0 in
      for i = n - 1 downto 0 do
        v := (!v lsl limb_bits) lor a.(i)
      done;
      Some !v
    end
    else begin
      (* may still fit if high limbs contribute < 63 bits total *)
      let v = ref 0 in
      let ok = ref true in
      for i = n - 1 downto 0 do
        if !v > (max_int - a.(i)) lsr limb_bits then ok := false
        else v := (!v lsl limb_bits) lor a.(i)
      done;
      if !ok then Some !v else None
    end

  let compare (a : t) (b : t) =
    let la = Array.length a and lb = Array.length b in
    if la <> lb then Stdlib.compare la lb
    else begin
      let rec go i =
        if i < 0 then 0
        else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
        else go (i - 1)
      in
      go (la - 1)
    end

  let add (a : t) (b : t) : t =
    let la = Array.length a and lb = Array.length b in
    let n = max la lb in
    let out = Array.make (n + 1) 0 in
    let carry = ref 0 in
    for i = 0 to n - 1 do
      let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
      out.(i) <- s land limb_mask;
      carry := s lsr limb_bits
    done;
    out.(n) <- !carry;
    norm out

  (* precondition: a >= b *)
  let sub (a : t) (b : t) : t =
    let la = Array.length a and lb = Array.length b in
    let out = Array.make la 0 in
    let borrow = ref 0 in
    for i = 0 to la - 1 do
      let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
      if d < 0 then begin
        out.(i) <- d + base;
        borrow := 1
      end
      else begin
        out.(i) <- d;
        borrow := 0
      end
    done;
    assert (!borrow = 0);
    norm out

  let mul (a : t) (b : t) : t =
    let la = Array.length a and lb = Array.length b in
    if la = 0 || lb = 0 then zero
    else begin
      let out = Array.make (la + lb) 0 in
      for i = 0 to la - 1 do
        let carry = ref 0 in
        let ai = a.(i) in
        for j = 0 to lb - 1 do
          let t = (ai * b.(j)) + out.(i + j) + !carry in
          out.(i + j) <- t land limb_mask;
          carry := t lsr limb_bits
        done;
        out.(i + lb) <- out.(i + lb) + !carry
      done;
      norm out
    end

  let shift_left (a : t) bits : t =
    if is_zero a || bits = 0 then (if bits = 0 then a else a)
    else begin
      let limbs = bits / limb_bits and rem = bits mod limb_bits in
      let la = Array.length a in
      let out = Array.make (la + limbs + 1) 0 in
      for i = 0 to la - 1 do
        let v = a.(i) lsl rem in
        out.(i + limbs) <- out.(i + limbs) lor (v land limb_mask);
        out.(i + limbs + 1) <- out.(i + limbs + 1) lor (v lsr limb_bits)
      done;
      norm out
    end

  let shift_right (a : t) bits : t =
    if is_zero a || bits = 0 then a
    else begin
      let limbs = bits / limb_bits and rem = bits mod limb_bits in
      let la = Array.length a in
      if limbs >= la then zero
      else begin
        let n = la - limbs in
        let out = Array.make n 0 in
        for i = 0 to n - 1 do
          let lo = a.(i + limbs) lsr rem in
          let hi = if i + limbs + 1 < la && rem > 0 then (a.(i + limbs + 1) lsl (limb_bits - rem)) land limb_mask else 0 in
          out.(i) <- lo lor hi
        done;
        norm out
      end
    end

  let bit_length (a : t) =
    let la = Array.length a in
    if la = 0 then 0
    else begin
      let top = a.(la - 1) in
      let rec msb acc v = if v = 0 then acc else msb (acc + 1) (v lsr 1) in
      ((la - 1) * limb_bits) + msb 0 top
    end

  let testbit (a : t) i =
    let limb = i / limb_bits and off = i mod limb_bits in
    limb < Array.length a && (a.(limb) lsr off) land 1 = 1

  (* Short division by a single limb 0 < d < base. *)
  let divmod_limb (a : t) d : t * int =
    let la = Array.length a in
    let q = Array.make la 0 in
    let r = ref 0 in
    for i = la - 1 downto 0 do
      let cur = (!r lsl limb_bits) lor a.(i) in
      q.(i) <- cur / d;
      r := cur mod d
    done;
    (norm q, !r)

  (* Knuth algorithm D. Returns (quotient, remainder). b <> 0. *)
  let divmod (a : t) (b : t) : t * t =
    if is_zero b then raise Division_by_zero;
    if compare a b < 0 then (zero, a)
    else if Array.length b = 1 then begin
      let q, r = divmod_limb a b.(0) in
      (q, if r = 0 then zero else [| r |])
    end
    else begin
      let n = Array.length b in
      (* normalize: top limb of divisor >= base/2 *)
      let s =
        let rec go s v = if v >= base / 2 then s else go (s + 1) (v lsl 1) in
        go 0 b.(n - 1)
      in
      let u0 = shift_left a s and v = shift_left b s in
      assert (Array.length v = n);
      let m = Array.length u0 - n in
      (* u gets one extra high limb *)
      let u = Array.make (Array.length u0 + 1) 0 in
      Array.blit u0 0 u 0 (Array.length u0);
      let q = Array.make (m + 1) 0 in
      let vtop = v.(n - 1) and vsecond = v.(n - 2) in
      for j = m downto 0 do
        let num = (u.(j + n) lsl limb_bits) lor u.(j + n - 1) in
        let qhat = ref (num / vtop) and rhat = ref (num mod vtop) in
        let continue_adjust = ref true in
        while !continue_adjust do
          if !qhat >= base || !qhat * vsecond > (!rhat lsl limb_bits) lor u.(j + n - 2) then begin
            decr qhat;
            rhat := !rhat + vtop;
            if !rhat >= base then continue_adjust := false
          end
          else continue_adjust := false
        done;
        (* multiply and subtract: u[j..j+n] -= qhat * v *)
        let borrow = ref 0 and carry = ref 0 in
        for i = 0 to n - 1 do
          let p = (!qhat * v.(i)) + !carry in
          carry := p lsr limb_bits;
          let d = u.(i + j) - (p land limb_mask) - !borrow in
          if d < 0 then begin
            u.(i + j) <- d + base;
            borrow := 1
          end
          else begin
            u.(i + j) <- d;
            borrow := 0
          end
        done;
        let d = u.(j + n) - !carry - !borrow in
        if d < 0 then begin
          (* qhat was one too large: add back *)
          u.(j + n) <- d + base;
          decr qhat;
          let carry2 = ref 0 in
          for i = 0 to n - 1 do
            let s2 = u.(i + j) + v.(i) + !carry2 in
            u.(i + j) <- s2 land limb_mask;
            carry2 := s2 lsr limb_bits
          done;
          u.(j + n) <- (u.(j + n) + !carry2) land limb_mask
        end
        else u.(j + n) <- d;
        q.(j) <- !qhat
      done;
      let r = norm (Array.sub u 0 n) in
      (norm q, shift_right r s)
    end
end

type t = { sg : int; mag : Nat.t }
(* invariant: sg ∈ {-1, 0, 1}; sg = 0 iff mag is zero *)

let mk sg mag = if Nat.is_zero mag then { sg = 0; mag = Nat.zero } else { sg; mag }
let zero = { sg = 0; mag = Nat.zero }
let one = { sg = 1; mag = Nat.of_int 1 }
let two = { sg = 1; mag = Nat.of_int 2 }

let of_int v = if v = 0 then zero else if v > 0 then mk 1 (Nat.of_int v) else mk (-1) (Nat.of_int (-v))

let to_int_opt t =
  match Nat.to_int_opt t.mag with
  | None -> None
  | Some m -> Some (if t.sg < 0 then -m else m)

let sign t = t.sg
let neg t = mk (-t.sg) t.mag
let abs t = mk (Stdlib.abs t.sg) t.mag

let compare a b =
  if a.sg <> b.sg then Stdlib.compare a.sg b.sg
  else if a.sg >= 0 then Nat.compare a.mag b.mag
  else Nat.compare b.mag a.mag

let equal a b = compare a b = 0

let add a b =
  if a.sg = 0 then b
  else if b.sg = 0 then a
  else if a.sg = b.sg then mk a.sg (Nat.add a.mag b.mag)
  else begin
    let c = Nat.compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then mk a.sg (Nat.sub a.mag b.mag)
    else mk b.sg (Nat.sub b.mag a.mag)
  end

let sub a b = add a (neg b)
let mul a b = if a.sg = 0 || b.sg = 0 then zero else mk (a.sg * b.sg) (Nat.mul a.mag b.mag)

let divmod a b =
  if b.sg = 0 then raise Division_by_zero;
  let q, r = Nat.divmod a.mag b.mag in
  (* truncated: quotient sign = product of signs, remainder sign = dividend's *)
  (mk (a.sg * b.sg) q, mk a.sg r)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let emod a m =
  if m.sg <= 0 then invalid_arg "Znum.emod: modulus must be positive";
  let r = rem a m in
  if r.sg < 0 then add r m else r

let shift_left t bits = if bits < 0 then invalid_arg "Znum.shift_left" else mk t.sg (Nat.shift_left t.mag bits)
let shift_right t bits = if bits < 0 then invalid_arg "Znum.shift_right" else mk t.sg (Nat.shift_right t.mag bits)
let bit_length t = Nat.bit_length t.mag
let testbit t i = Nat.testbit t.mag i
let is_even t = not (testbit t 0)
let is_odd t = testbit t 0

let rec gcd a b = if b.sg = 0 then abs a else gcd b (rem a b)

let egcd a b =
  (* iterative extended Euclid on the values as given *)
  let rec go old_r r old_s s old_t t =
    if r.sg = 0 then (old_r, old_s, old_t)
    else begin
      let q = div old_r r in
      go r (sub old_r (mul q r)) s (sub old_s (mul q s)) t (sub old_t (mul q t))
    end
  in
  let g, x, y = go a b one zero zero one in
  if g.sg < 0 then (neg g, neg x, neg y) else (g, x, y)

let mod_inv t ~m =
  if m.sg <= 0 then invalid_arg "Znum.mod_inv: modulus must be positive";
  let g, x, _ = egcd (emod t m) m in
  if not (equal g one) then None else Some (emod x m)

let mod_pow ~base:b ~exp ~m =
  if m.sg <= 0 then invalid_arg "Znum.mod_pow: modulus must be positive";
  if exp.sg < 0 then invalid_arg "Znum.mod_pow: negative exponent";
  let b = ref (emod b m) in
  let result = ref (emod one m) in
  let nbits = bit_length exp in
  for i = 0 to nbits - 1 do
    if testbit exp i then result := emod (mul !result !b) m;
    if i < nbits - 1 then b := emod (mul !b !b) m
  done;
  !result

(* Decimal I/O through chunks of 10^7 (< 2^26, so a single limb). *)
let chunk = 10_000_000
let chunk_digits = 7

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Znum.of_string: empty string";
  let negative = s.[0] = '-' in
  let start = if negative || s.[0] = '+' then 1 else 0 in
  if start >= n then invalid_arg "Znum.of_string: no digits";
  let acc = ref Nat.zero in
  let chunk_nat = Nat.of_int chunk in
  let i = ref start in
  (* leading partial chunk so subsequent chunks are exactly 7 digits *)
  let first_len =
    let d = (n - start) mod chunk_digits in
    if d = 0 then chunk_digits else d
  in
  let parse_chunk pos len =
    let v = ref 0 in
    for j = pos to pos + len - 1 do
      match s.[j] with
      | '0' .. '9' -> v := (!v * 10) + (Char.code s.[j] - Char.code '0')
      | _ -> invalid_arg "Znum.of_string: invalid digit"
    done;
    !v
  in
  acc := Nat.of_int (parse_chunk start first_len);
  i := start + first_len;
  while !i < n do
    acc := Nat.add (Nat.mul !acc chunk_nat) (Nat.of_int (parse_chunk !i chunk_digits));
    i := !i + chunk_digits
  done;
  mk (if negative then -1 else 1) !acc

let to_string t =
  if t.sg = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec go mag acc =
      if Nat.is_zero mag then acc
      else begin
        let q, r = Nat.divmod_limb mag chunk in
        go q (r :: acc)
      end
    in
    let chunks = go t.mag [] in
    if t.sg < 0 then Buffer.add_char buf '-';
    (match chunks with
    | [] -> assert false
    | first :: rest ->
        Buffer.add_string buf (string_of_int first);
        List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%07d" c)) rest);
    Buffer.contents buf
  end

let of_bytes_be b =
  let n = Bytes.length b in
  let acc = ref Nat.zero in
  let b256 = Nat.of_int 256 in
  for i = 0 to n - 1 do
    acc := Nat.add (Nat.mul !acc b256) (Nat.of_int (Char.code (Bytes.get b i)))
  done;
  mk 1 !acc

let to_bytes_be ?len t =
  if t.sg < 0 then invalid_arg "Znum.to_bytes_be: negative value";
  let nbytes = (bit_length t + 7) / 8 in
  let out_len = match len with None -> max nbytes 1 | Some l -> l in
  if nbytes > out_len then invalid_arg "Znum.to_bytes_be: value too large for len";
  let out = Bytes.make out_len '\000' in
  let rec go mag pos =
    if not (Nat.is_zero mag) then begin
      let q, r = Nat.divmod_limb mag 256 in
      Bytes.set out pos (Char.chr r);
      go q (pos - 1)
    end
  in
  go t.mag (out_len - 1);
  out

let pp fmt t = Format.pp_print_string fmt (to_string t)
