let small_primes =
  (* primes below 1000 via a tiny sieve at module load *)
  let limit = 1000 in
  let sieve = Array.make (limit + 1) true in
  sieve.(0) <- false;
  sieve.(1) <- false;
  for i = 2 to limit do
    if sieve.(i) then begin
      let j = ref (i * i) in
      while !j <= limit do
        sieve.(!j) <- false;
        j := !j + i
      done
    end
  done;
  let out = ref [] in
  for i = limit downto 2 do
    if sieve.(i) then out := i :: !out
  done;
  Array.of_list !out

let random_bits rng ~bits =
  if bits <= 0 then Znum.zero
  else begin
    let nbytes = (bits + 7) / 8 in
    let b = Util.Rng.bytes rng nbytes in
    (* mask excess high bits *)
    let excess = (nbytes * 8) - bits in
    if excess > 0 then
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) land (0xFF lsr excess)));
    Znum.of_bytes_be b
  end

let random_below rng bound =
  if Znum.sign bound <= 0 then invalid_arg "Prime.random_below: bound must be positive";
  let bits = Znum.bit_length bound in
  let rec draw () =
    let v = random_bits rng ~bits in
    if Znum.compare v bound < 0 then v else draw ()
  in
  draw ()

let trial_division_passes n =
  (* returns false when a small prime divides n (and n is not that prime) *)
  let ok = ref true in
  let i = ref 0 in
  let np = Array.length small_primes in
  while !ok && !i < np do
    let p = Znum.of_int small_primes.(!i) in
    if Znum.sign (Znum.rem n p) = 0 && not (Znum.equal n p) then ok := false;
    incr i
  done;
  !ok

let miller_rabin_round rng n n_minus_1 d s =
  (* one round with a random base; returns true when n passes *)
  let a = Znum.add Znum.two (random_below rng (Znum.sub n (Znum.of_int 4))) in
  let x = ref (Znum.mod_pow ~base:a ~exp:d ~m:n) in
  if Znum.equal !x Znum.one || Znum.equal !x n_minus_1 then true
  else begin
    let witness = ref true in
    let r = ref 1 in
    while !witness && !r < s do
      x := Znum.emod (Znum.mul !x !x) n;
      if Znum.equal !x n_minus_1 then witness := false;
      incr r
    done;
    not !witness
  end

let is_probably_prime ?(rounds = 24) rng n =
  if Znum.compare n Znum.two < 0 then false
  else if Znum.compare n (Znum.of_int 1000) <= 0 then begin
    match Znum.to_int_opt n with
    | Some v -> Array.exists (fun p -> p = v) small_primes
    | None -> assert false
  end
  else if Znum.is_even n then false
  else if not (trial_division_passes n) then false
  else begin
    let n_minus_1 = Znum.sub n Znum.one in
    (* n-1 = d * 2^s with d odd *)
    let rec split d s = if Znum.is_odd d then (d, s) else split (Znum.shift_right d 1) (s + 1) in
    let d, s = split n_minus_1 0 in
    let rec go i = i >= rounds || (miller_rabin_round rng n n_minus_1 d s && go (i + 1)) in
    go 0
  end

let random_prime rng ~bits =
  if bits < 2 then invalid_arg "Prime.random_prime: need at least 2 bits";
  let top = Znum.shift_left Znum.one (bits - 1) in
  let rec search () =
    let candidate = Znum.add top (random_bits rng ~bits:(bits - 1)) in
    let candidate = if Znum.is_even candidate then Znum.add candidate Znum.one else candidate in
    if Znum.bit_length candidate = bits && is_probably_prime rng candidate then candidate
    else search ()
  in
  search ()

type schnorr_group = { p : Znum.t; q : Znum.t; g : Znum.t }

let schnorr_group rng ~pbits ~qbits =
  if qbits >= pbits then invalid_arg "Prime.schnorr_group: need qbits < pbits";
  let q = random_prime rng ~bits:qbits in
  let rec find_p () =
    (* p = q*r + 1 of exactly pbits bits, r even so p is odd *)
    let r = random_bits rng ~bits:(pbits - qbits) in
    let r = if Znum.is_odd r then Znum.add r Znum.one else r in
    let p = Znum.add (Znum.mul q r) Znum.one in
    if Znum.bit_length p = pbits && is_probably_prime rng p then p else find_p ()
  in
  let p = find_p () in
  let exponent = Znum.div (Znum.sub p Znum.one) q in
  let rec find_g () =
    let h = Znum.add Znum.two (random_below rng (Znum.sub p (Znum.of_int 4))) in
    let g = Znum.mod_pow ~base:h ~exp:exponent ~m:p in
    if Znum.equal g Znum.one then find_g () else g
  in
  let g = find_g () in
  { p; q; g }
