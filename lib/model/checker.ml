module Driven = Harness.Abstract_rounds.Driven

type config = {
  n : int;
  k : int;
  byzantine : int list;
  dist : Harness.Runner.dist;
  budget : int;
  exact_budget : bool;
  alphabet : Core.Strategy.t list;
  rounds : int;
  seed : int64;
  jobs : int;
  max_states : int;
}

let config ~n ?k ?byzantine ?dist ?budget ?exact_budget ?alphabet ?rounds ?seed ?jobs
    ?max_states () =
  let f = (n - 1) / 3 in
  let k = Option.value k ~default:(n - f) in
  let byzantine = Option.value byzantine ~default:(List.init f (fun i -> n - f + i)) in
  let t = List.length byzantine in
  let budget =
    Option.value budget ~default:(Harness.Abstract_rounds.sigma ~n ~k ~t)
  in
  let alphabet = Option.value alphabet ~default:Core.Strategy.enumerable in
  List.iter
    (fun s ->
      if not (Core.Strategy.is_deterministic s) then
        invalid_arg
          (Printf.sprintf
             "Checker.config: strategy %s draws randomness; a memoized exhaustive walk over it \
              would be unsound"
             (Core.Strategy.name s)))
    alphabet;
  List.iter
    (fun i -> if i < 0 || i >= n then invalid_arg "Checker.config: byzantine id out of range")
    byzantine;
  if budget < 0 then invalid_arg "Checker.config: negative budget";
  {
    n;
    k;
    byzantine;
    dist = Option.value dist ~default:Harness.Runner.Unanimous;
    budget;
    exact_budget = Option.value exact_budget ~default:false;
    alphabet;
    rounds = Option.value rounds ~default:2;
    seed = Option.value seed ~default:0x51D6AL;
    jobs = Option.value jobs ~default:(Harness.Pool.default_jobs ());
    max_states = Option.value max_states ~default:2_000_000;
  }

type stats = {
  states : int;
  transitions : int;
  dedup_hits : int;
  frontier_peak : int;
  pruned : int;
  choices_per_round : int;
}

type outcome =
  | Safe of { worst : Codec.rounds_artifact; min_deciders : int; min_advanced : int }
  | Violation of Codec.rounds_artifact

type result = { outcome : outcome; stats : stats }

(* --- adversary choice enumeration ------------------------------------------- *)

type choice = { drops : (int * int) list; byz : (int * Core.Strategy.t) list }

let correct_pairs cfg =
  let correct = List.filter (fun i -> not (List.mem i cfg.byzantine)) (List.init cfg.n Fun.id) in
  Array.of_list
    (List.concat_map
       (fun s -> List.filter_map (fun r -> if r = s then None else Some (s, r)) correct)
       correct)

(* All size-[m] subsets of [arr], each ascending, emitted in lexicographic
   order of index sets. *)
let combinations arr m =
  let len = Array.length arr in
  if m > len then []
  else begin
    let out = ref [] in
    let rec go start m acc =
      if m = 0 then out := List.rev acc :: !out
      else
        for i = start to len - m do
          go (i + 1) (m - 1) (arr.(i) :: acc)
        done
    in
    go 0 m [];
    List.rev !out
  end

let rec cartesian = function
  | [] -> [ [] ]
  | xs :: rest ->
      let tails = cartesian rest in
      List.concat_map (fun x -> List.map (fun tl -> x :: tl) tails) xs

let choices cfg =
  let pairs = correct_pairs cfg in
  let cap = min cfg.budget (Array.length pairs) in
  let sizes = if cfg.exact_budget then [ cap ] else List.init (cap + 1) Fun.id in
  let patterns = List.concat_map (combinations pairs) sizes in
  let byz_ids = List.sort_uniq compare cfg.byzantine in
  let assignments =
    if byz_ids = [] then [ [] ]
    else cartesian (List.map (fun i -> List.map (fun s -> (i, s)) cfg.alphabet) byz_ids)
  in
  Array.of_list
    (List.concat_map (fun p -> List.map (fun a -> { drops = p; byz = a }) assignments) patterns)

(* --- artifacts --------------------------------------------------------------- *)

let codec_round choice =
  { Codec.drops = choice.drops; byz = List.map (fun (i, s) -> (i, Core.Strategy.name s)) choice.byz }

let artifact cfg trail_rev expect note =
  {
    Codec.r_n = cfg.n;
    r_k = cfg.k;
    r_byzantine = cfg.byzantine;
    r_dist = cfg.dist;
    r_seed = cfg.seed;
    r_budget = cfg.budget;
    r_rounds = List.rev_map codec_round trail_rev;
    r_expect = expect;
    r_note = note;
  }

(* --- the walk ---------------------------------------------------------------- *)

type node = { sim : Driven.sim; trail : choice list (* reversed *) }

let digest sim = Bytes.to_string (Crypto.Sha256.digest_string (Driven.fingerprint sim))

let provenance cfg =
  Printf.sprintf "n=%d k=%d t=%d dist=%s budget=%d%s horizon=%d" cfg.n cfg.k
    (List.length cfg.byzantine)
    (Harness.Runner.dist_to_string cfg.dist)
    cfg.budget
    (if cfg.exact_budget then " (exact)" else "")
    cfg.rounds

let check ?(log = ignore) cfg =
  let choices = choices cfg in
  let num_choices = Array.length choices in
  if num_choices = 0 then invalid_arg "Checker.check: empty adversary choice set";
  let states = ref 1 and transitions = ref 0 and dedup_hits = ref 0 in
  let frontier_peak = ref 1 and pruned = ref 0 in
  let warned = ref false in
  let violation = ref None in
  let root =
    {
      sim =
        Driven.create ~n:cfg.n ~k:cfg.k ~byzantine:cfg.byzantine ~dist:cfg.dist
          ~horizon:cfg.rounds ~seed:cfg.seed ();
      trail = [];
    }
  in
  log
    (Printf.sprintf "modelcheck %s: %d adversary choices per round" (provenance cfg) num_choices);
  let frontier = ref [| root |] in
  let level = ref 0 in
  (* Nodes per parallel chunk: keep each Pool batch near 16k expansions so
     peak memory is bounded by the chunk, not the whole level. *)
  let chunk_nodes = max 1 (16384 / num_choices) in
  while !violation = None && !level < cfg.rounds && Array.length !frontier > 0 do
    incr level;
    let cur = !frontier in
    let next = ref [] in
    let next_len = ref 0 in
    (* Dedup is per level: a state reached at two different depths is kept at
       both — its horizon continuation differs with the remaining rounds, and
       stalled self-loop states are exactly the worst-case liveness witnesses
       the final frontier must retain. *)
    let seen = Hashtbl.create 1024 in
    let nchunks = (Array.length cur + chunk_nodes - 1) / chunk_nodes in
    let ci = ref 0 in
    while !violation = None && !ci < nchunks do
      let lo = !ci * chunk_nodes in
      let len = min chunk_nodes (Array.length cur - lo) in
      let results =
        Harness.Pool.map ~jobs:cfg.jobs ~tasks:(len * num_choices) (fun idx ->
            let node = cur.(lo + (idx / num_choices)) in
            let choice = choices.(idx mod num_choices) in
            let sim = Driven.clone node.sim in
            Driven.step sim ~drops:choice.drops ~byz:choice.byz;
            (sim, digest sim, Driven.violations sim))
      in
      Array.iteri
        (fun idx (sim, dg, vs) ->
          if !violation = None then begin
            incr transitions;
            let node = cur.(lo + (idx / num_choices)) in
            let choice = choices.(idx mod num_choices) in
            if vs <> [] then
              violation :=
                Some
                  (artifact cfg (choice :: node.trail) (Codec.Violations vs)
                     ("violating schedule: " ^ provenance cfg))
            else if Hashtbl.mem seen dg then incr dedup_hits
            else begin
              if Hashtbl.length seen < cfg.max_states then Hashtbl.replace seen dg ()
              else begin
                if not !warned then begin
                  warned := true;
                  log
                    (Printf.sprintf
                       "state cap %d reached at level %d: dedup is now lossy (duplicates may \
                        re-expand; results stay exact)"
                       cfg.max_states !level)
                end;
                incr pruned
              end;
              incr states;
              next := { sim; trail = choice :: node.trail } :: !next;
              incr next_len
            end
          end)
        results;
      incr ci
    done;
    let next_arr = Array.make !next_len root in
    List.iteri (fun i n -> next_arr.(!next_len - 1 - i) <- n) !next;
    if !next_len > !frontier_peak then frontier_peak := !next_len;
    if !violation = None then
      log
        (Printf.sprintf "level %d: %d distinct states (%d duplicates pruned)" !level !next_len
           !dedup_hits);
    frontier := next_arr
  done;
  let stats =
    {
      states = !states;
      transitions = !transitions;
      dedup_hits = !dedup_hits;
      frontier_peak = !frontier_peak;
      pruned = !pruned;
      choices_per_round = num_choices;
    }
  in
  Obs.Metrics.incr "model.states" ~by:stats.states;
  Obs.Metrics.incr "model.transitions" ~by:stats.transitions;
  Obs.Metrics.incr "model.dedup_hits" ~by:stats.dedup_hits;
  Obs.Metrics.incr "model.pruned" ~by:stats.pruned;
  Obs.Metrics.set "model.frontier_peak" (float_of_int stats.frontier_peak);
  match !violation with
  | Some art -> { outcome = Violation art; stats }
  | None ->
      let worst = ref None in
      let min_deciders = ref max_int and min_advanced = ref max_int in
      Array.iter
        (fun node ->
          let d = Driven.deciders node.sim and a = Driven.advanced node.sim in
          if d < !min_deciders then min_deciders := d;
          if a < !min_advanced then min_advanced := a;
          match !worst with
          | Some (bd, ba, _) when not ((d, a) < (bd, ba)) -> ()
          | _ -> worst := Some (d, a, node.trail))
        !frontier;
      let d, a, trail =
        match !worst with
        | Some w -> w
        | None -> (Driven.deciders root.sim, Driven.advanced root.sim, [])
      in
      let worst =
        artifact cfg trail
          (Codec.Stall { deciders = d; advanced = a })
          ("worst-case liveness schedule: " ^ provenance cfg)
      in
      { outcome = Safe { worst; min_deciders = !min_deciders; min_advanced = !min_advanced }; stats }
