(** Replay engine for serialized reproducers.

    Re-executes a {!Codec.artifact} through the engine it was extracted
    from — {!Harness.Abstract_rounds.Driven} for round schedules,
    {!Harness.Chaos.check_schedule} for radio fault timelines — and
    compares the outcome against the artifact's recorded expectation.
    Replays are fully deterministic: a reproducer that fails to verify
    means the codebase's behavior changed since it was extracted, which
    is exactly what makes saved artifacts regression tests. *)

type verdict = {
  ok : bool;  (** the replay reproduced the recorded expectation *)
  violations : string list;  (** invariant breaches observed in the replay *)
  detail : string;  (** one-line human-readable comparison *)
}

val run : Codec.artifact -> verdict
