module Driven = Harness.Abstract_rounds.Driven

type verdict = { ok : bool; violations : string list; detail : string }

let strategy_exn name =
  match Core.Strategy.of_string name with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Replay.run: unknown strategy %S" name)

let run_rounds (a : Codec.rounds_artifact) =
  let sim =
    Driven.create ~n:a.r_n ~k:a.r_k ~byzantine:a.r_byzantine ~dist:a.r_dist
      ~horizon:(List.length a.r_rounds) ~seed:a.r_seed ()
  in
  List.iter
    (fun (r : Codec.round_choice) ->
      let byz = List.map (fun (i, s) -> (i, strategy_exn s)) r.byz in
      Driven.step sim ~drops:r.drops ~byz)
    a.r_rounds;
  let deciders = Driven.deciders sim in
  let advanced = Driven.advanced sim in
  let violations = Driven.violations sim in
  match a.r_expect with
  | Codec.Stall { deciders = want_d; advanced = want_a } ->
      let ok = deciders = want_d && advanced = want_a && violations = [] in
      {
        ok;
        violations;
        detail =
          Printf.sprintf "stall replay: deciders %d (want %d), advanced %d (want %d), %d violations"
            deciders want_d advanced want_a (List.length violations);
      }
  | Codec.Decide { min_deciders } ->
      let ok = deciders >= min_deciders && violations = [] in
      {
        ok;
        violations;
        detail =
          Printf.sprintf "decide replay: deciders %d (want >= %d), %d violations" deciders
            min_deciders (List.length violations);
      }
  | Codec.Violations want ->
      let ok = violations = want in
      {
        ok;
        violations;
        detail =
          Printf.sprintf "violation replay: %d violations (want %d, %s)" (List.length violations)
            (List.length want)
            (if ok then "identical" else "DIFFERENT");
      }

let run_radio (a : Codec.radio_artifact) =
  let strategy = Option.map strategy_exn a.c_strategy in
  let bug = if a.c_bug then Harness.Chaos.Flip_reported_decision else Harness.Chaos.No_bug in
  let violations =
    Harness.Chaos.check_schedule ~protocol:a.c_protocol ~n:a.c_n ~bug ~dist:a.c_dist ?strategy
      ~schedule:a.c_schedule ~seed:a.c_seed ()
  in
  let ok = violations = a.c_expect in
  {
    ok;
    violations;
    detail =
      Printf.sprintf "radio replay: %d violations (want %d, %s)" (List.length violations)
        (List.length a.c_expect)
        (if ok then "identical" else "DIFFERENT");
  }

let run = function Codec.Rounds a -> run_rounds a | Codec.Radio a -> run_radio a
