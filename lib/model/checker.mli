(** Bounded exhaustive model checker for the abstract round model.

    Explores {e every} adversary schedule of a small group up to a round
    horizon: per round, all per-receiver omission patterns within the
    budget crossed with all per-Byzantine strategy choices from a
    deterministic alphabet (per-round [silent] choices subsume every
    crash point). The walk is a breadth-first frontier expansion with
    canonical-state deduplication:

    - states are fingerprinted ({!Harness.Abstract_rounds.Driven.fingerprint},
      digested with SHA-256) and duplicates within a level are pruned.
      Dedup is deliberately {e per level}, not global: a state reached
      at two depths has a different number of remaining rounds at each,
      and stalled self-loop states — the worst-case liveness witnesses —
      must re-appear at the horizon to be counted. Per-level dedup keeps
      the safety sweep complete and the horizon frontier exact;
    - expansion parallelizes over {!Harness.Pool} in fixed-size chunks;
      violation selection, deduplication and worst-state tracking run
      sequentially in slot order, so the result is bit-identical for
      every [jobs];
    - past [max_states] entries the level's dedup table stops growing:
      later duplicates in that level may re-expand (lossy — work and
      frontier may repeat, memory does not, results stay exact), counted
      in [pruned] and the [model.pruned] metric, with a one-time
      warning.

    The checker either proves the configured invariants over every
    reachable state at the horizon, or stops at the first violating
    state (in deterministic BFS order) with its full schedule. Either
    way it emits a replayable {!Codec.rounds_artifact}: the violation,
    or the worst-case liveness schedule — the lexicographically minimal
    (deciders, advanced) horizon state. *)

type config = {
  n : int;
  k : int;
  byzantine : int list;
  dist : Harness.Runner.dist;
  budget : int;  (** per-round omission budget among correct pairs *)
  exact_budget : bool;
      (** enumerate only patterns of exactly [budget] drops — sound for
          stall-witness search (a smaller stalling pattern would
          contradict the budget−1 guarantee) and much cheaper *)
  alphabet : Core.Strategy.t list;
      (** per-round Byzantine choices; must be deterministic
          ({!Core.Strategy.is_deterministic}) for the memoization to be
          sound *)
  rounds : int;  (** horizon *)
  seed : int64;
  jobs : int;
  max_states : int;  (** per-level dedup-table cap; lossy pruning beyond *)
}

val config :
  n:int ->
  ?k:int ->
  ?byzantine:int list ->
  ?dist:Harness.Runner.dist ->
  ?budget:int ->
  ?exact_budget:bool ->
  ?alphabet:Core.Strategy.t list ->
  ?rounds:int ->
  ?seed:int64 ->
  ?jobs:int ->
  ?max_states:int ->
  unit ->
  config
(** Defaults mirror the protocol's: [k = n − ⌊(n−1)/3⌋], [byzantine] the
    top ⌊(n−1)/3⌋ ids, [budget = σ(n, k, t)], [exact_budget = false],
    [alphabet = Core.Strategy.enumerable], [rounds = 2], [jobs]
    {!Harness.Pool.default_jobs}, [max_states] 2,000,000.
    @raise Invalid_argument on a non-deterministic alphabet strategy or
    a Byzantine id out of range. *)

type stats = {
  states : int;  (** states kept across all levels (including the root) *)
  transitions : int;  (** child expansions computed *)
  dedup_hits : int;  (** children pruned as within-level duplicates *)
  frontier_peak : int;
  pruned : int;  (** states kept without a dedup entry (past the cap) *)
  choices_per_round : int;  (** branching factor before dedup *)
}

type outcome =
  | Safe of {
      worst : Codec.rounds_artifact;
          (** lexicographically minimal (deciders, advanced) horizon
              state, ties broken by BFS order; its [r_expect] is the
              {!Codec.Stall} it must replay to *)
      min_deciders : int;  (** over all horizon states *)
      min_advanced : int;
          (** over all horizon states; [>= k] here at budget σ−1 is the
              exhaustive side of the liveness bound *)
    }
  | Violation of Codec.rounds_artifact
      (** first violating state in BFS order; [r_expect] holds its
          violations *)

type result = { outcome : outcome; stats : stats }

val check : ?log:(string -> unit) -> config -> result
(** Runs the walk. [log] receives per-level progress lines. The result
    is a pure function of [config] — identical for every [jobs]. *)
