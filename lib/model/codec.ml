module J = Obs.Json

let schema = "turquois-repro/1"

type round_choice = {
  drops : (int * int) list;
  byz : (int * string) list;
}

type expect =
  | Stall of { deciders : int; advanced : int }
  | Decide of { min_deciders : int }
  | Violations of string list

type rounds_artifact = {
  r_n : int;
  r_k : int;
  r_byzantine : int list;
  r_dist : Harness.Runner.dist;
  r_seed : int64;
  r_budget : int;
  r_rounds : round_choice list;
  r_expect : expect;
  r_note : string;
}

type radio_artifact = {
  c_protocol : Harness.Runner.protocol;
  c_n : int;
  c_dist : Harness.Runner.dist;
  c_strategy : string option;
  c_seed : int64;
  c_bug : bool;
  c_schedule : Net.Schedule.t;
  c_expect : string list;
  c_note : string;
}

type artifact = Rounds of rounds_artifact | Radio of radio_artifact

(* --- encoding --------------------------------------------------------------- *)

let dist_to_json = function
  | Harness.Runner.Unanimous -> J.String "unanimous"
  | Harness.Runner.Divergent -> J.String "divergent"

let protocol_to_json p = J.String (String.lowercase_ascii (Harness.Runner.protocol_to_string p))

let expect_to_json = function
  | Stall { deciders; advanced } ->
      J.Obj [ ("kind", J.String "stall"); ("deciders", J.Int deciders); ("advanced", J.Int advanced) ]
  | Decide { min_deciders } ->
      J.Obj [ ("kind", J.String "decide"); ("min_deciders", J.Int min_deciders) ]
  | Violations vs ->
      J.Obj
        [ ("kind", J.String "violations"); ("violations", J.List (List.map (fun v -> J.String v) vs)) ]

let round_to_json r =
  J.Obj
    [
      ("drops", J.List (List.map (fun (s, rx) -> J.List [ J.Int s; J.Int rx ]) r.drops));
      ("byz", J.List (List.map (fun (i, s) -> J.List [ J.Int i; J.String s ]) r.byz));
    ]

let action_to_json =
  let module S = Net.Schedule in
  function
  | S.Crash node -> J.Obj [ ("action", J.String "crash"); ("node", J.Int node) ]
  | S.Recover node -> J.Obj [ ("action", J.String "recover"); ("node", J.Int node) ]
  | S.Set_loss p -> J.Obj [ ("action", J.String "set_loss"); ("p", J.Float p) ]
  | S.Set_rx_loss { rx; p } ->
      J.Obj [ ("action", J.String "set_rx_loss"); ("rx", J.Int rx); ("p", J.Float p) ]
  | S.Set_link_loss { tx; rx; p } ->
      J.Obj
        [ ("action", J.String "set_link_loss"); ("tx", J.Int tx); ("rx", J.Int rx); ("p", J.Float p) ]
  | S.Jam { until } -> J.Obj [ ("action", J.String "jam"); ("until", J.Float until) ]
  | S.Jam_rx { rx; until } ->
      J.Obj [ ("action", J.String "jam_rx"); ("rx", J.Int rx); ("until", J.Float until) ]
  | S.Delay_rx { rx; delay; until } ->
      J.Obj
        [
          ("action", J.String "delay_rx");
          ("rx", J.Int rx);
          ("delay", J.Float delay);
          ("until", J.Float until);
        ]

let entry_to_json (e : Net.Schedule.entry) =
  match action_to_json e.action with
  | J.Obj fields -> J.Obj (("at", J.Float e.at) :: fields)
  | _ -> assert false

let to_json = function
  | Rounds a ->
      J.Obj
        [
          ("schema", J.String schema);
          ("kind", J.String "rounds");
          ("note", J.String a.r_note);
          ("n", J.Int a.r_n);
          ("k", J.Int a.r_k);
          ("byzantine", J.List (List.map (fun i -> J.Int i) a.r_byzantine));
          ("dist", dist_to_json a.r_dist);
          ("seed", J.String (Int64.to_string a.r_seed));
          ("budget", J.Int a.r_budget);
          ("rounds", J.List (List.map round_to_json a.r_rounds));
          ("expect", expect_to_json a.r_expect);
        ]
  | Radio a ->
      J.Obj
        [
          ("schema", J.String schema);
          ("kind", J.String "radio");
          ("note", J.String a.c_note);
          ("protocol", protocol_to_json a.c_protocol);
          ("n", J.Int a.c_n);
          ("dist", dist_to_json a.c_dist);
          ( "strategy",
            match a.c_strategy with None -> J.Null | Some s -> J.String s );
          ("seed", J.String (Int64.to_string a.c_seed));
          ("bug", J.Bool a.c_bug);
          ("schedule", J.List (List.map entry_to_json a.c_schedule));
          ( "expect",
            expect_to_json (Violations a.c_expect) );
        ]

(* --- decoding --------------------------------------------------------------- *)

let ( let* ) r f = Result.bind r f

let field name json =
  match J.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let as_int name json =
  let* v = field name json in
  match J.to_int v with Some i -> Ok i | None -> Error (Printf.sprintf "field %S: expected int" name)

let as_float name json =
  let* v = field name json in
  match J.to_float v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "field %S: expected number" name)

let as_string name json =
  let* v = field name json in
  match J.to_str v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S: expected string" name)

let as_list name json =
  let* v = field name json in
  match J.to_list v with
  | Some l -> Ok l
  | None -> Error (Printf.sprintf "field %S: expected list" name)

let map_result f l =
  List.fold_right
    (fun x acc ->
      let* acc = acc in
      let* y = f x in
      Ok (y :: acc))
    l (Ok [])

let dist_of_string = function
  | "unanimous" -> Ok Harness.Runner.Unanimous
  | "divergent" -> Ok Harness.Runner.Divergent
  | other -> Error (Printf.sprintf "unknown dist %S" other)

let protocol_of_string = function
  | "turquois" -> Ok Harness.Runner.Turquois
  | "bracha" -> Ok Harness.Runner.Bracha
  | "abba" -> Ok Harness.Runner.Abba
  | other -> Error (Printf.sprintf "unknown protocol %S" other)

let seed_of json =
  let* s = as_string "seed" json in
  match Int64.of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "field \"seed\": bad int64 %S" s)

let int_pair name json =
  match J.to_list json with
  | Some [ a; b ] -> begin
      match (J.to_int a, J.to_int b) with
      | Some a, Some b -> Ok (a, b)
      | _ -> Error (Printf.sprintf "field %S: expected [int, int]" name)
    end
  | _ -> Error (Printf.sprintf "field %S: expected [int, int]" name)

let expect_of json =
  let* e = field "expect" json in
  let* kind = as_string "kind" e in
  match kind with
  | "stall" ->
      let* deciders = as_int "deciders" e in
      let* advanced = as_int "advanced" e in
      Ok (Stall { deciders; advanced })
  | "decide" ->
      let* min_deciders = as_int "min_deciders" e in
      Ok (Decide { min_deciders })
  | "violations" ->
      let* vs = as_list "violations" e in
      let* vs =
        map_result
          (fun v ->
            match J.to_str v with Some s -> Ok s | None -> Error "violations: expected strings")
          vs
      in
      Ok (Violations vs)
  | other -> Error (Printf.sprintf "unknown expect kind %S" other)

let round_of json =
  let* drops = as_list "drops" json in
  let* drops = map_result (int_pair "drops") drops in
  let* byz = as_list "byz" json in
  let* byz =
    map_result
      (fun entry ->
        match J.to_list entry with
        | Some [ i; s ] -> begin
            match (J.to_int i, J.to_str s) with
            | Some i, Some s -> begin
                match Core.Strategy.of_string s with
                | Some _ -> Ok (i, s)
                | None -> Error (Printf.sprintf "unknown strategy %S" s)
              end
            | _ -> Error "byz: expected [int, string]"
          end
        | _ -> Error "byz: expected [int, string]")
      byz
  in
  Ok { drops; byz }

let entry_of json =
  let module S = Net.Schedule in
  let* at = as_float "at" json in
  let* action = as_string "action" json in
  let* action =
    match action with
    | "crash" ->
        let* node = as_int "node" json in
        Ok (S.Crash node)
    | "recover" ->
        let* node = as_int "node" json in
        Ok (S.Recover node)
    | "set_loss" ->
        let* p = as_float "p" json in
        Ok (S.Set_loss p)
    | "set_rx_loss" ->
        let* rx = as_int "rx" json in
        let* p = as_float "p" json in
        Ok (S.Set_rx_loss { rx; p })
    | "set_link_loss" ->
        let* tx = as_int "tx" json in
        let* rx = as_int "rx" json in
        let* p = as_float "p" json in
        Ok (S.Set_link_loss { tx; rx; p })
    | "jam" ->
        let* until = as_float "until" json in
        Ok (S.Jam { until })
    | "jam_rx" ->
        let* rx = as_int "rx" json in
        let* until = as_float "until" json in
        Ok (S.Jam_rx { rx; until })
    | "delay_rx" ->
        let* rx = as_int "rx" json in
        let* delay = as_float "delay" json in
        let* until = as_float "until" json in
        Ok (S.Delay_rx { rx; delay; until })
    | other -> Error (Printf.sprintf "unknown schedule action %S" other)
  in
  Ok { S.at; action }

let of_json json =
  let* s = as_string "schema" json in
  if s <> schema then Error (Printf.sprintf "schema mismatch: %S, want %S" s schema)
  else
    let* kind = as_string "kind" json in
    let* note = as_string "note" json in
    match kind with
    | "rounds" ->
        let* r_n = as_int "n" json in
        let* r_k = as_int "k" json in
        let* byzantine = as_list "byzantine" json in
        let* r_byzantine =
          map_result
            (fun v ->
              match J.to_int v with Some i -> Ok i | None -> Error "byzantine: expected ints")
            byzantine
        in
        let* dist = as_string "dist" json in
        let* r_dist = dist_of_string dist in
        let* r_seed = seed_of json in
        let* r_budget = as_int "budget" json in
        let* rounds = as_list "rounds" json in
        let* r_rounds = map_result round_of rounds in
        let* r_expect = expect_of json in
        Ok (Rounds { r_n; r_k; r_byzantine; r_dist; r_seed; r_budget; r_rounds; r_expect; r_note = note })
    | "radio" ->
        let* protocol = as_string "protocol" json in
        let* c_protocol = protocol_of_string protocol in
        let* c_n = as_int "n" json in
        let* dist = as_string "dist" json in
        let* c_dist = dist_of_string dist in
        let* c_strategy =
          let* v = field "strategy" json in
          match v with
          | J.Null -> Ok None
          | _ -> begin
              match J.to_str v with
              | Some s -> begin
                  match Core.Strategy.of_string s with
                  | Some _ -> Ok (Some s)
                  | None -> Error (Printf.sprintf "unknown strategy %S" s)
                end
              | None -> Error "field \"strategy\": expected string or null"
            end
        in
        let* c_seed = seed_of json in
        let* c_bug =
          let* v = field "bug" json in
          match J.to_bool v with Some b -> Ok b | None -> Error "field \"bug\": expected bool"
        in
        let* schedule = as_list "schedule" json in
        let* c_schedule = map_result entry_of schedule in
        let* expect = expect_of json in
        let* c_expect =
          match expect with
          | Violations vs -> Ok vs
          | Stall _ | Decide _ -> Error "radio artifacts expect violations"
        in
        Ok (Radio { c_protocol; c_n; c_dist; c_strategy; c_seed; c_bug; c_schedule; c_expect; c_note = note })
    | other -> Error (Printf.sprintf "unknown artifact kind %S" other)

(* --- files ------------------------------------------------------------------ *)

let save path artifact =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string (to_json artifact));
      output_char oc '\n')

let load path =
  match
    let ic = open_in path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> input_line ic)
  with
  | exception Sys_error msg -> Error msg
  | exception End_of_file -> Error (Printf.sprintf "%s: empty file" path)
  | line -> begin
      match J.parse line with
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
      | Ok json -> begin
          match of_json json with
          | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
          | Ok a -> Ok a
        end
    end

(* --- reporting -------------------------------------------------------------- *)

let delivered_per_round a =
  let correct =
    List.filter (fun i -> not (List.mem i a.r_byzantine)) (List.init a.r_n (fun i -> i))
  in
  let is_correct i = List.mem i correct in
  let c = List.length correct in
  let pairs = c * (c - 1) in
  List.map
    (fun r ->
      let suppressed =
        List.length (List.filter (fun (s, rx) -> is_correct s && is_correct rx) r.drops)
      in
      pairs - suppressed)
    a.r_rounds

let describe = function
  | Rounds a ->
      Printf.sprintf "rounds artifact: n=%d k=%d t=%d %s budget=%d horizon=%d (%s)" a.r_n a.r_k
        (List.length a.r_byzantine)
        (Harness.Runner.dist_to_string a.r_dist)
        a.r_budget (List.length a.r_rounds) a.r_note
  | Radio a ->
      Printf.sprintf "radio artifact: %s n=%d %s%s seed=%Ld, %d schedule entries (%s)"
        (Harness.Runner.protocol_to_string a.c_protocol)
        a.c_n
        (Harness.Runner.dist_to_string a.c_dist)
        (match a.c_strategy with Some s -> ", strategy " ^ s | None -> "")
        a.c_seed (List.length a.c_schedule) a.c_note
