(** Replayable adversary-schedule artifacts.

    One JSON file format ("turquois-repro/1") for every deterministic
    reproducer the toolchain extracts, so model-checker output and chaos
    reproducers flow through the same replay path ([run --replay]):

    - {b rounds} artifacts replay an explicit per-round adversary
      schedule (per-receiver omissions, per-round Byzantine strategy
      choices) through {!Harness.Abstract_rounds.Driven} — the model
      checker's worst-case liveness schedules and any safety violation
      it finds;
    - {b radio} artifacts replay a {!Net.Schedule} fault timeline
      through {!Harness.Chaos.check_schedule} — the chaos harness's
      shrunken minimal reproducers.

    Every artifact records the outcome it must reproduce; replay
    re-executes and compares, turning extracted schedules into
    regression tests. *)

type round_choice = {
  drops : (int * int) list;
      (** suppressed (sender, receiver) transmissions this round *)
  byz : (int * string) list;
      (** (byzantine id, {!Core.Strategy} name) for this round; an
          absent id stays silent (a crash) *)
}

type expect =
  | Stall of { deciders : int; advanced : int }
      (** exact horizon outcome of a worst-case stall schedule *)
  | Decide of { min_deciders : int }
      (** at least this many correct deciders at the horizon *)
  | Violations of string list
      (** the exact invariant breaches the run must reproduce *)

type rounds_artifact = {
  r_n : int;
  r_k : int;
  r_byzantine : int list;
  r_dist : Harness.Runner.dist;
  r_seed : int64;
  r_budget : int;  (** the omission budget the schedule was drawn from *)
  r_rounds : round_choice list;
  r_expect : expect;
  r_note : string;  (** human-readable provenance *)
}

type radio_artifact = {
  c_protocol : Harness.Runner.protocol;
  c_n : int;
  c_dist : Harness.Runner.dist;
  c_strategy : string option;
  c_seed : int64;
  c_bug : bool;
      (** the chaos harness's planted broken-machine defect — re-planted
          at replay so self-test reproducers replay faithfully *)
  c_schedule : Net.Schedule.t;
  c_expect : string list;  (** violations the replay must reproduce *)
  c_note : string;
}

type artifact = Rounds of rounds_artifact | Radio of radio_artifact

val to_json : artifact -> Obs.Json.t
val of_json : Obs.Json.t -> (artifact, string) result

val save : string -> artifact -> unit
(** Writes the artifact as a single JSON line to the given path. *)

val load : string -> (artifact, string) result
(** Reads an artifact back; [Error] on IO problems, malformed JSON, a
    schema mismatch, or an unknown strategy/action name. *)

val delivered_per_round : rounds_artifact -> int list
(** For each round, how many of the correct-to-correct transmissions
    were delivered (the paper counts liveness in delivered messages:
    total correct pairs minus that round's suppressed ones). *)

val describe : artifact -> string
(** One-line summary for logs. *)
