(** Bracha's asynchronous ⌊(n−1)/3⌋-resilient randomized consensus
    (PODC 1984) — the first comparison protocol of the paper's
    evaluation.

    Every protocol message travels inside Bracha's reliable broadcast
    primitive (INITIAL / ECHO / READY with the 2f+1 and f+1 amplification
    thresholds), giving the O(n³) message complexity the paper measures.
    As in the paper's testbed, all point-to-point traffic uses the
    reliable transport ({!Net.Rlink}) with authenticated channels (the
    IPSec AH stand-in), because the protocol assumes reliable
    authenticated links.

    Each round has three steps: converge on a majority value, detect a
    super-majority (a "d-flagged" value), and decide when 2f+1 d-flags
    agree — otherwise adopt (f+1 d-flags) or flip a local coin. *)

type behavior =
  | Correct
  | Attacker
      (** §7.2 strategy: opposite value in steps 0 and 1, d-flag
          withheld in step 2. *)

type stats = {
  mutable rb_casts : int;      (** reliable-broadcast instances started *)
  mutable messages_sent : int; (** point-to-point protocol messages *)
  mutable delivered : int;     (** RB deliveries *)
  mutable rounds : int;        (** rounds completed *)
}

type t

val create :
  Net.Node.t ->
  n:int ->
  f:int ->
  ?behavior:behavior ->
  ?port:int ->
  proposal:int ->
  unit ->
  t
(** The transport is created internally on [port] (default 700).
    @raise Invalid_argument unless [n > 3f] and the proposal is 0/1. *)

val start : t -> unit
val on_decide : t -> (value:int -> round:int -> unit) -> unit
val id : t -> int
val decision : t -> int option
val round : t -> int
val stats : t -> stats
