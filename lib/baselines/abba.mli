(** ABBA — Asynchronous Binary Byzantine Agreement in the style of
    Cachin, Kursawe and Shoup (Journal of Cryptology 2005), the paper's
    second comparison protocol.

    Rounds of two message exchanges over reliable authenticated links:

    + {b pre-vote}: every party signs and broadcasts its pre-vote for
      the round; pre-votes after round 1 must carry a justification
      from the previous round;
    + {b main-vote}: after n−f valid pre-votes, a party main-votes the
      unanimous value b (justified by the n−f collected pre-vote
      signatures) or ⊥/abstain (justified by two conflicting
      pre-votes); main-votes also release the party's threshold-coin
      share for the round.

    After n−f valid main-votes: unanimously b → decide b; some b →
    pre-vote b next round; all abstain → pre-vote the common coin.

    Where CKS uses dual-threshold signatures, this implementation
    carries k-of-n multisignatures with identical collection patterns
    and verification counts (see DESIGN.md §2); the common coin is the
    CKS Diffie–Hellman threshold coin ({!Crypto.Coin}). The protocol is
    deliberately heavy on public-key operations — that cost, charged to
    the simulated CPUs, is what the paper's Table 1–3 measure. *)

type behavior =
  | Correct
  | Attacker
      (** §7.2 strategy: flood syntactically well-formed messages with
          invalid signatures and justifications, forcing verification
          work at correct processes. *)

type stats = {
  mutable messages_sent : int;
  mutable signatures_created : int;
  mutable signatures_verified : int;
  mutable shares_verified : int;
  mutable coins_flipped : int;
  mutable rounds : int;
}

(** Key material shared by one protocol group (pre-distributed, as in
    the paper's methodology). *)
type group_keys

val setup_keys : Util.Rng.t -> n:int -> f:int -> ?rsa_bits:int -> unit -> group_keys
(** Generates RSA keypairs for every party and deals the threshold-coin
    shares (threshold f+1). Default [rsa_bits] 512. *)

type t

val create :
  Net.Node.t ->
  keys:group_keys ->
  ?behavior:behavior ->
  ?port:int ->
  proposal:int ->
  unit ->
  t
(** Transport created internally on [port] (default 800). *)

val start : t -> unit
val on_decide : t -> (value:int -> round:int -> unit) -> unit
val id : t -> int
val decision : t -> int option
val round : t -> int
val stats : t -> stats
