type behavior = Correct | Attacker

type stats = {
  mutable rb_casts : int;
  mutable messages_sent : int;
  mutable delivered : int;
  mutable rounds : int;
}

(* A protocol payload: (round, step, value, dflag). The d-flag is
   Bracha's "decision proposal" marker, legal only in step-2 messages. *)
type payload = { round : int; step : int; value : int; dflag : bool }

type rb_kind = Init | Echo | Ready

type rb_message = { kind : rb_kind; origin : int; body : payload }

(* Per reliable-broadcast instance bookkeeping. An instance is keyed by
   (origin, round, step): a correct origin broadcasts once per step. *)
type rb_state = {
  mutable echoed : bool;
  mutable readied : bool;
  mutable rb_delivered : bool;
  echoes : (int, payload) Hashtbl.t;  (* echoing process -> body *)
  readies : (int, payload) Hashtbl.t;
}

type t = {
  node : Net.Node.t;
  link : Net.Rlink.t;
  n : int;
  f : int;
  behavior : behavior;
  mutable proposal : int;
  mutable round_i : int;
  mutable step_i : int;
  mutable v_i : int;
  mutable dflag_i : bool;
  mutable decision : int option;
  mutable decided_round : int;
  (* validated step messages: (round, step) -> origin -> payload *)
  collected : (int * int, (int, payload) Hashtbl.t) Hashtbl.t;
  (* RB-delivered but not yet justified by the validated set *)
  pending : (int * int * int, payload) Hashtbl.t;
  rb_instances : (int * int * int, rb_state) Hashtbl.t;
  mutable decide_cb : (value:int -> round:int -> unit) option;
  stats : stats;
  mutable started : bool;
}

let id t = Net.Node.id t.node
let decision t = t.decision
let round t = t.round_i
let stats t = t.stats
let on_decide t f = t.decide_cb <- Some f

let encode_rb m =
  let w = Util.Codec.W.create ~capacity:16 () in
  Util.Codec.W.u8 w (match m.kind with Init -> 0 | Echo -> 1 | Ready -> 2);
  Util.Codec.W.u16 w m.origin;
  Util.Codec.W.varint w m.body.round;
  Util.Codec.W.u8 w m.body.step;
  Util.Codec.W.u8 w m.body.value;
  Util.Codec.W.u8 w (if m.body.dflag then 1 else 0);
  Util.Codec.W.contents w

let decode_rb b =
  let r = Util.Codec.R.of_bytes b in
  let kind =
    match Util.Codec.R.u8 r with
    | 0 -> Init
    | 1 -> Echo
    | 2 -> Ready
    | _ -> raise (Util.Codec.Malformed "rb kind")
  in
  let origin = Util.Codec.R.u16 r in
  let round = Util.Codec.R.varint r in
  let step = Util.Codec.R.u8 r in
  let value = Util.Codec.R.u8 r in
  let dflag = Util.Codec.R.u8 r = 1 in
  Util.Codec.R.expect_end r;
  { kind; origin; body = { round; step; value; dflag } }

(* a step message is structurally plausible iff the value is binary and
   the d-flag appears only in step 2 *)
let plausible body =
  body.round >= 1
  && body.step >= 0 && body.step <= 2
  && (body.value = 0 || body.value = 1)
  && ((not body.dflag) || body.step = 2)

let send_to_all t raw =
  (* self-delivery is local; the transport carries the other n-1 copies *)
  for dst = 0 to t.n - 1 do
    if dst <> id t then begin
      t.stats.messages_sent <- t.stats.messages_sent + 1;
      Obs.Metrics.incr "proto.msgs_sent" ~labels:[ ("proto", "bracha") ];
      Net.Rlink.send t.link ~dst raw
    end
  done

let rb_state t key =
  match Hashtbl.find_opt t.rb_instances key with
  | Some s -> s
  | None ->
      let s =
        {
          echoed = false;
          readied = false;
          rb_delivered = false;
          echoes = Hashtbl.create 8;
          readies = Hashtbl.create 8;
        }
      in
      Hashtbl.add t.rb_instances key s;
      s

let collected_row t ~round ~step =
  let key = (round, step) in
  match Hashtbl.find_opt t.collected key with
  | Some row -> row
  | None ->
      let row = Hashtbl.create 8 in
      Hashtbl.add t.collected key row;
      row

let majority_value row =
  let zeros = ref 0 and ones = ref 0 in
  Hashtbl.iter (fun _ (p : payload) -> if p.value = 0 then incr zeros else incr ones) row;
  if !ones >= !zeros then 1 else 0

let count_with row predicate =
  Hashtbl.fold (fun _ p acc -> if predicate p then acc + 1 else acc) row 0

(* --- message validation -------------------------------------------------

   Bracha's validity mechanism: a step message is accepted only when the
   already-validated messages of the previous step justify it — i.e.,
   some (n-f)-subset of them could have driven a correct process to send
   it. Deliveries that cannot be justified yet wait in a pending pool
   and are re-examined as the validated set grows (reliable broadcast
   guarantees everyone eventually validates the same supports). *)

let majority_min t = ((t.n - t.f) / 2) + 1

let count_value t ~round ~step value =
  let row = collected_row t ~round ~step in
  count_with row (fun p -> p.value = value)

let count_dflag t ~round value =
  let row = collected_row t ~round ~step:2 in
  count_with row (fun p -> p.dflag && p.value = value)

(* could some (n-f)-subset of validated step-2 messages of [round] have
   had at most f d-flags for every value (forcing a coin flip)? *)
let coin_possible t ~round =
  let row = collected_row t ~round ~step:2 in
  let nod = count_with row (fun p -> not p.dflag) in
  let d0 = count_with row (fun p -> p.dflag && p.value = 0) in
  let d1 = count_with row (fun p -> p.dflag && p.value = 1) in
  nod + min t.f d0 + min t.f d1 >= t.n - t.f

let justified t body =
  match t.behavior with
  | Attacker -> true  (* the adversary tracks the real state regardless *)
  | Correct -> begin
      match body.step with
      | 0 ->
          body.round = 1
          || count_dflag t ~round:(body.round - 1) body.value >= t.f + 1
          || coin_possible t ~round:(body.round - 1)
      | 1 -> count_value t ~round:body.round ~step:0 body.value >= majority_min t
      | _ ->
          let support = count_value t ~round:body.round ~step:1 body.value in
          if body.dflag then 2 * support > t.n else support >= majority_min t
    end

(* --- consensus state machine ------------------------------------------- *)

let rec rb_cast t body =
  t.stats.rb_casts <- t.stats.rb_casts + 1;
  Obs.Metrics.incr "proto.rb_casts" ~labels:[ ("proto", "bracha") ];
  let self = id t in
  send_to_all t (encode_rb { kind = Init; origin = self; body });
  (* local shortcut: our own INITIAL reaches us instantly *)
  handle_rb t ~src:self { kind = Init; origin = self; body }

and deliver t origin body =
  let row = collected_row t ~round:body.round ~step:body.step in
  if not (Hashtbl.mem row origin) && not (Hashtbl.mem t.pending (origin, body.round, body.step))
  then begin
    Hashtbl.replace t.pending (origin, body.round, body.step) body;
    t.stats.delivered <- t.stats.delivered + 1;
    drain_pending t
  end

and drain_pending t =
  let progress = ref true in
  let admitted = ref false in
  while !progress do
    progress := false;
    let entries = Hashtbl.fold (fun key body acc -> (key, body) :: acc) t.pending [] in
    let entries =
      List.sort
        (fun ((_, r1, s1), _) ((_, r2, s2), _) -> compare (r1, s1) (r2, s2))
        entries
    in
    List.iter
      (fun ((origin, _, _) as key, body) ->
        if justified t body then begin
          Hashtbl.remove t.pending key;
          let row = collected_row t ~round:body.round ~step:body.step in
          if not (Hashtbl.mem row origin) then begin
            Hashtbl.replace row origin body;
            admitted := true;
            progress := true
          end
        end)
      entries
  done;
  if !admitted then try_advance t

and try_advance t =
  let row = collected_row t ~round:t.round_i ~step:t.step_i in
  if Hashtbl.length row >= t.n - t.f then begin
    (match t.step_i with
    | 0 ->
        t.v_i <- majority_value row;
        t.dflag_i <- false;
        t.step_i <- 1
    | 1 ->
        let winner =
          let candidate = majority_value row in
          if 2 * count_with row (fun p -> p.value = candidate) > t.n then Some candidate
          else None
        in
        (match winner with
        | Some w ->
            t.v_i <- w;
            t.dflag_i <- true
        | None ->
            t.v_i <- majority_value row;
            t.dflag_i <- false);
        t.step_i <- 2
    | _ ->
        let d_count w = count_with row (fun p -> p.dflag && p.value = w) in
        let best_w = if d_count 1 >= d_count 0 then 1 else 0 in
        let d_best = d_count best_w in
        if d_best >= (2 * t.f) + 1 then begin
          t.v_i <- best_w;
          if t.decision = None then begin
            t.decision <- Some best_w;
            t.decided_round <- t.round_i;
            Obs.Metrics.incr "proto.decisions" ~labels:[ ("proto", "bracha") ];
            Obs.Trace2.emit
              ~time:(Net.Engine.now (Net.Node.engine t.node))
              ~node:(id t) ~layer:"bracha" ~label:"decide"
              [ ("value", Obs.Trace2.I best_w); ("round", Obs.Trace2.I t.round_i) ];
            match t.decide_cb with
            | Some cb -> cb ~value:best_w ~round:t.round_i
            | None -> ()
          end
        end
        else if d_best >= t.f + 1 then t.v_i <- best_w
        else begin
          Obs.Metrics.incr "proto.coin_flips" ~labels:[ ("proto", "bracha") ];
          t.v_i <- Util.Rng.coin (Net.Node.rng t.node)
        end;
        t.dflag_i <- false;
        t.round_i <- t.round_i + 1;
        t.stats.rounds <- t.stats.rounds + 1;
        Obs.Metrics.incr "proto.round_changes" ~labels:[ ("proto", "bracha") ];
        Obs.Trace2.emit
          ~time:(Net.Engine.now (Net.Node.engine t.node))
          ~node:(id t) ~layer:"bracha" ~label:"round"
          [ ("round", Obs.Trace2.I t.round_i) ];
        t.step_i <- 0);
    broadcast_current t;
    try_advance t
  end

and broadcast_current t =
  let value, dflag =
    match t.behavior with
    | Correct -> (t.v_i, t.dflag_i)
    | Attacker -> (1 - t.v_i, false)  (* flip everywhere, never d-flag *)
  in
  let body = { round = t.round_i; step = t.step_i; value; dflag } in
  (* a correct process trusts its own transition *)
  let row = collected_row t ~round:body.round ~step:body.step in
  if not (Hashtbl.mem row (id t)) then Hashtbl.replace row (id t) body;
  rb_cast t body

(* --- reliable broadcast ------------------------------------------------- *)

and handle_rb t ~src message =
  let body = message.body in
  if plausible body && message.origin >= 0 && message.origin < t.n then begin
    let key = (message.origin, body.round, body.step) in
    let st = rb_state t key in
    let self = id t in
    (match message.kind with
    | Init ->
        (* only the origin may initiate *)
        if src = message.origin && not st.echoed then begin
          st.echoed <- true;
          send_to_all t (encode_rb { kind = Echo; origin = message.origin; body });
          handle_rb t ~src:self { kind = Echo; origin = message.origin; body }
        end
    | Echo ->
        if not (Hashtbl.mem st.echoes src) then begin
          Hashtbl.replace st.echoes src body;
          let matching = count_with st.echoes (fun p -> p = body) in
          if 2 * matching > t.n + t.f && not st.readied then begin
            st.readied <- true;
            send_to_all t (encode_rb { kind = Ready; origin = message.origin; body });
            handle_rb t ~src:self { kind = Ready; origin = message.origin; body }
          end
        end
    | Ready ->
        if not (Hashtbl.mem st.readies src) then begin
          Hashtbl.replace st.readies src body;
          let matching = count_with st.readies (fun p -> p = body) in
          if matching >= t.f + 1 && not st.readied then begin
            st.readied <- true;
            send_to_all t (encode_rb { kind = Ready; origin = message.origin; body });
            handle_rb t ~src:self { kind = Ready; origin = message.origin; body }
          end;
          let matching = count_with st.readies (fun p -> p = body) in
          if matching >= (2 * t.f) + 1 && not st.rb_delivered then begin
            st.rb_delivered <- true;
            deliver t message.origin body
          end
        end)
  end

let create node ~n ~f ?(behavior = Correct) ?(port = 700) ~proposal () =
  if n <= 3 * f then invalid_arg "Bracha.create: need n > 3f";
  if proposal <> 0 && proposal <> 1 then invalid_arg "Bracha.create: binary proposals only";
  let link =
    Net.Rlink.create (Net.Node.engine node) (Net.Node.datagram node) (Net.Node.cpu node)
      ~auth:true ~port ()
  in
  let t =
    {
      node;
      link;
      n;
      f;
      behavior;
      proposal;
      round_i = 1;
      step_i = 0;
      v_i = proposal;
      dflag_i = false;
      decision = None;
      decided_round = 0;
      collected = Hashtbl.create 32;
      pending = Hashtbl.create 32;
      rb_instances = Hashtbl.create 64;
      decide_cb = None;
      stats = { rb_casts = 0; messages_sent = 0; delivered = 0; rounds = 0 };
      started = false;
    }
  in
  t

let start t =
  if not t.started then begin
    t.started <- true;
    Net.Rlink.on_receive t.link (fun ~src raw ->
        match decode_rb raw with
        | exception (Util.Codec.Malformed _ | Util.Codec.Truncated) -> ()
        | message -> handle_rb t ~src message);
    broadcast_current t
  end
