type behavior = Correct | Attacker

type stats = {
  mutable messages_sent : int;
  mutable signatures_created : int;
  mutable signatures_verified : int;
  mutable shares_verified : int;
  mutable coins_flipped : int;
  mutable rounds : int;
}

type group_keys = {
  gk_n : int;
  gk_f : int;
  rsa : Crypto.Rsa.keypair array;
  pubs : Crypto.Rsa.public array;
  coin_params : Crypto.Coin.params;
  coin_keys : Crypto.Coin.key_share array;
}

let setup_keys rng ~n ~f ?(rsa_bits = 512) () =
  if n <= 3 * f then invalid_arg "Abba.setup_keys: need n > 3f";
  (* the generator draws from [rng]: application order must be pinned *)
  let rsa = Util.Init.array n (fun _ -> Crypto.Rsa.generate rng ~bits:rsa_bits) in
  let pubs = Array.map (fun (kp : Crypto.Rsa.keypair) -> kp.pub) rsa in
  let coin_params, coin_keys = Crypto.Coin.setup rng ~n ~threshold:(f + 1) () in
  { gk_n = n; gk_f = f; rsa; pubs; coin_params; coin_keys }

(* signing strings *)
let pre_string ~round ~value = Bytes.of_string (Printf.sprintf "pre|%d|%d" round value)
let main_string ~round ~mv = Bytes.of_string (Printf.sprintf "main|%d|%d" round mv)
let coin_name ~round = Printf.sprintf "coin|%d" round

let abstain = 2

type prevote_just =
  | J_initial                               (* round 1 *)
  | J_hard of Crypto.Multisig.t             (* n-f sigs over pre|r-1|b *)
  | J_coin of Crypto.Multisig.t * Crypto.Coin.share list
      (* n-f sigs over main|r-1|abstain plus enough coin shares *)

type message =
  | Prevote of { round : int; value : int; sig_ : bytes; just : prevote_just }
  | Mainvote of {
      round : int;
      mv : int;  (* 0, 1, or abstain *)
      sig_ : bytes;
      hard_just : Crypto.Multisig.t option;      (* when mv is 0/1 *)
      conflict : ((int * bytes) * (int * bytes)) option;  (* when abstain *)
      share : Crypto.Coin.share;
    }

(* --- wire format --------------------------------------------------------- *)

let encode_shares w shares =
  Util.Codec.W.u16 w (List.length shares);
  List.iter (fun s -> Util.Codec.W.bytes_lp w (Crypto.Coin.share_to_bytes s)) shares

let decode_shares r =
  let count = Util.Codec.R.u16 r in
  (* the closure advances the reader: application order must be pinned *)
  Util.Init.list count (fun _ -> Crypto.Coin.share_of_bytes (Util.Codec.R.bytes_lp r))

let encode message =
  let w = Util.Codec.W.create ~capacity:256 () in
  (match message with
  | Prevote { round; value; sig_; just } ->
      Util.Codec.W.u8 w 0;
      Util.Codec.W.varint w round;
      Util.Codec.W.u8 w value;
      Util.Codec.W.bytes_lp w sig_;
      (match just with
      | J_initial -> Util.Codec.W.u8 w 0
      | J_hard ms ->
          Util.Codec.W.u8 w 1;
          Util.Codec.W.bytes_lp w (Crypto.Multisig.to_bytes ms)
      | J_coin (ms, shares) ->
          Util.Codec.W.u8 w 2;
          Util.Codec.W.bytes_lp w (Crypto.Multisig.to_bytes ms);
          encode_shares w shares)
  | Mainvote { round; mv; sig_; hard_just; conflict; share } ->
      Util.Codec.W.u8 w 1;
      Util.Codec.W.varint w round;
      Util.Codec.W.u8 w mv;
      Util.Codec.W.bytes_lp w sig_;
      (match (hard_just, conflict) with
      | Some ms, None ->
          Util.Codec.W.u8 w 1;
          Util.Codec.W.bytes_lp w (Crypto.Multisig.to_bytes ms)
      | None, Some ((s0, sig0), (s1, sig1)) ->
          Util.Codec.W.u8 w 2;
          Util.Codec.W.u16 w s0;
          Util.Codec.W.bytes_lp w sig0;
          Util.Codec.W.u16 w s1;
          Util.Codec.W.bytes_lp w sig1
      | _, _ -> raise (Util.Codec.Malformed "mainvote justification shape"));
      Util.Codec.W.bytes_lp w (Crypto.Coin.share_to_bytes share));
  Util.Codec.W.contents w

let decode raw =
  let r = Util.Codec.R.of_bytes raw in
  let tag = Util.Codec.R.u8 r in
  let round = Util.Codec.R.varint r in
  if round < 1 then raise (Util.Codec.Malformed "round < 1");
  match tag with
  | 0 ->
      let value = Util.Codec.R.u8 r in
      let sig_ = Util.Codec.R.bytes_lp r in
      let just =
        match Util.Codec.R.u8 r with
        | 0 -> J_initial
        | 1 -> J_hard (Crypto.Multisig.of_bytes (Util.Codec.R.bytes_lp r))
        | 2 ->
            let ms = Crypto.Multisig.of_bytes (Util.Codec.R.bytes_lp r) in
            let shares = decode_shares r in
            J_coin (ms, shares)
        | _ -> raise (Util.Codec.Malformed "prevote justification tag")
      in
      Util.Codec.R.expect_end r;
      Prevote { round; value; sig_; just }
  | 1 ->
      let mv = Util.Codec.R.u8 r in
      let sig_ = Util.Codec.R.bytes_lp r in
      let hard_just, conflict =
        match Util.Codec.R.u8 r with
        | 1 -> (Some (Crypto.Multisig.of_bytes (Util.Codec.R.bytes_lp r)), None)
        | 2 ->
            let s0 = Util.Codec.R.u16 r in
            let sig0 = Util.Codec.R.bytes_lp r in
            let s1 = Util.Codec.R.u16 r in
            let sig1 = Util.Codec.R.bytes_lp r in
            (None, Some ((s0, sig0), (s1, sig1)))
        | _ -> raise (Util.Codec.Malformed "mainvote justification tag")
      in
      let share = Crypto.Coin.share_of_bytes (Util.Codec.R.bytes_lp r) in
      Util.Codec.R.expect_end r;
      Mainvote { round; mv; sig_; hard_just; conflict; share }
  | _ -> raise (Util.Codec.Malformed "abba message tag")

(* --- protocol ------------------------------------------------------------ *)

type round_state = {
  prevotes : (int, int * bytes) Hashtbl.t;   (* sender -> (value, sig) *)
  mainvotes : (int, int * bytes) Hashtbl.t;  (* sender -> (mv, sig) *)
  mutable hard_ms : (int * Crypto.Multisig.t) option;
      (* a reusable (value, n-f multisig over pre|r|value) justification *)
  shares : (int, Crypto.Coin.share) Hashtbl.t;  (* verified coin shares *)
}

type stage = Wait_prevotes | Wait_mainvotes

type t = {
  node : Net.Node.t;
  link : Net.Rlink.t;
  keys : group_keys;
  behavior : behavior;
  mutable round_i : int;
  mutable stage : stage;
  mutable decision : int option;
  rounds : (int, round_state) Hashtbl.t;
  mutable decide_cb : (value:int -> round:int -> unit) option;
  stats : stats;
  mutable started : bool;
  mutable initial : int;
}

let id t = Net.Node.id t.node
let decision t = t.decision
let round t = t.round_i
let stats t = t.stats
let on_decide t f = t.decide_cb <- Some f
let n t = t.keys.gk_n
let f t = t.keys.gk_f
let quorum t = n t - f t

let round_state t round =
  match Hashtbl.find_opt t.rounds round with
  | Some rs -> rs
  | None ->
      let rs =
        {
          prevotes = Hashtbl.create 8;
          mainvotes = Hashtbl.create 8;
          hard_ms = None;
          shares = Hashtbl.create 8;
        }
      in
      Hashtbl.add t.rounds round rs;
      rs

(* Real-computation memoization: the same signature, multisignature or
   coin share is verified by up to n receivers; the mathematical result
   is identical, so the cryptography runs once per distinct input. The
   *simulated* CPU cost is still charged for every verification — only
   the host's wall-clock time is saved. *)
(* The caches are domain-local: verification results are pure functions
   of their inputs, so parallel pool workers recompute identical values
   instead of racing on shared tables. *)
let verify_cache_key : (string, bool) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4096)

let share_cache_key : (string, bool) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4096)

(* Any threshold-many valid shares combine to the same group element, so
   the coin's value is a function of its name alone once computed. *)
let coin_cache_key : (string, int) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let verify_cache () = Domain.DLS.get verify_cache_key
let share_cache () = Domain.DLS.get share_cache_key
let coin_cache () = Domain.DLS.get coin_cache_key

let cache_guard table = if Hashtbl.length table > 200_000 then Hashtbl.reset table

let cached table key compute =
  match Hashtbl.find_opt table key with
  | Some v -> v
  | None ->
      cache_guard table;
      let v = compute () in
      Hashtbl.add table key v;
      v

let my_sign t msg =
  t.stats.signatures_created <- t.stats.signatures_created + 1;
  Net.Node.charge t.node Net.Cost.rsa_sign;
  Crypto.Rsa.sign t.keys.rsa.(id t).sec msg

let verify_sig t ~signer msg ~signature =
  t.stats.signatures_verified <- t.stats.signatures_verified + 1;
  Net.Node.charge t.node Net.Cost.rsa_verify;
  signer >= 0 && signer < n t
  &&
  let key =
    Printf.sprintf "s|%d|%s|%s" signer (Bytes.to_string msg) (Bytes.to_string signature)
  in
  cached (verify_cache ()) key (fun () -> Crypto.Rsa.verify t.keys.pubs.(signer) msg ~signature)

let verify_ms t ~msg ~k ms =
  let count = Crypto.Multisig.count ms in
  t.stats.signatures_verified <- t.stats.signatures_verified + count;
  Net.Node.charge t.node (float_of_int count *. Net.Cost.rsa_verify);
  let key =
    Printf.sprintf "m|%d|%s|%s" k (Bytes.to_string msg)
      (Bytes.to_string (Crypto.Multisig.to_bytes ms))
  in
  cached (verify_cache ()) key (fun () -> Crypto.Multisig.verify ~keys:t.keys.pubs ~msg ~k ms)

let verify_share t ~round share =
  t.stats.shares_verified <- t.stats.shares_verified + 1;
  Net.Node.charge t.node Net.Cost.coin_share_verify;
  let key =
    Printf.sprintf "c|%d|%s" round (Bytes.to_string (Crypto.Coin.share_to_bytes share))
  in
  cached (share_cache ()) key (fun () ->
      Crypto.Coin.verify_share t.keys.coin_params ~name:(coin_name ~round) share)

(* The attacker of §7.2 floods well-formed messages whose signatures and
   justifications do not verify. *)
let corrupt sig_ =
  let b = Bytes.copy sig_ in
  if Bytes.length b > 0 then
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x5a));
  b

let send_to_all t message =
  let raw = encode message in
  for dst = 0 to n t - 1 do
    if dst <> id t then begin
      t.stats.messages_sent <- t.stats.messages_sent + 1;
      Obs.Metrics.incr "proto.msgs_sent" ~labels:[ ("proto", "abba") ];
      Net.Rlink.send t.link ~dst raw
    end
  done

(* --- sending ------------------------------------------------------------- *)

let make_share t ~round =
  Net.Node.charge t.node Net.Cost.coin_share_create;
  Crypto.Coin.create_share t.keys.coin_params t.keys.coin_keys.(id t)
    ~name:(coin_name ~round)

let rec send_prevote t ~round ~value ~just =
  let sig_ = my_sign t (pre_string ~round ~value) in
  let sig_ = if t.behavior = Attacker then corrupt sig_ else sig_ in
  let message = Prevote { round; value; sig_; just } in
  send_to_all t message;
  (* local copy *)
  if t.behavior = Correct then accept_prevote t ~sender:(id t) ~round ~value ~sig_;
  try_advance t

and send_mainvote t ~round ~mv ~hard_just ~conflict =
  let sig_ = my_sign t (main_string ~round ~mv) in
  let sig_ = if t.behavior = Attacker then corrupt sig_ else sig_ in
  let share = make_share t ~round in
  let message = Mainvote { round; mv; sig_; hard_just; conflict; share } in
  send_to_all t message;
  if t.behavior = Correct then begin
    accept_mainvote t ~sender:(id t) ~round ~mv ~sig_ ~hard_just ~share
  end;
  try_advance t

(* --- receiving ----------------------------------------------------------- *)

and accept_prevote t ~sender ~round ~value ~sig_ =
  let rs = round_state t round in
  if not (Hashtbl.mem rs.prevotes sender) then
    Hashtbl.replace rs.prevotes sender (value, sig_)

and accept_mainvote t ~sender ~round ~mv ~sig_ ~hard_just ~share =
  let rs = round_state t round in
  if not (Hashtbl.mem rs.mainvotes sender) then begin
    Hashtbl.replace rs.mainvotes sender (mv, sig_);
    Hashtbl.replace rs.shares sender share;
    match (mv, hard_just, rs.hard_ms) with
    | (0 | 1), Some ms, None -> rs.hard_ms <- Some (mv, ms)
    | _, _, _ -> ()
  end

and handle_message t ~src message =
  match message with
  | Prevote { round; value; sig_; just } ->
      if (value = 0 || value = 1)
         && verify_sig t ~signer:src (pre_string ~round ~value) ~signature:sig_
         && prevote_justified t ~round ~value ~just
      then begin
        accept_prevote t ~sender:src ~round ~value ~sig_;
        try_advance t
      end
  | Mainvote { round; mv; sig_; hard_just; conflict; share } ->
      let sig_ok =
        (mv = 0 || mv = 1 || mv = abstain)
        && verify_sig t ~signer:src (main_string ~round ~mv) ~signature:sig_
      in
      let just_ok =
        sig_ok
        &&
        match (mv, hard_just, conflict) with
        | (0 | 1), Some ms, None ->
            verify_ms t ~msg:(pre_string ~round ~value:mv) ~k:(quorum t) ms
        | _, None, Some ((s0, sig0), (s1, sig1)) ->
            mv = abstain && s0 <> s1
            && verify_sig t ~signer:s0 (pre_string ~round ~value:0) ~signature:sig0
            && verify_sig t ~signer:s1 (pre_string ~round ~value:1) ~signature:sig1
        | _, _, _ -> false
      in
      if just_ok && verify_share t ~round share then begin
        accept_mainvote t ~sender:src ~round ~mv ~sig_ ~hard_just ~share;
        try_advance t
      end

and prevote_justified t ~round ~value ~just =
  match just with
  | J_initial -> round = 1
  | J_hard ms ->
      round > 1 && verify_ms t ~msg:(pre_string ~round:(round - 1) ~value) ~k:(quorum t) ms
  | J_coin (ms, shares) ->
      round > 1
      && verify_ms t ~msg:(main_string ~round:(round - 1) ~mv:abstain) ~k:(quorum t) ms
      &&
      let name = coin_name ~round:(round - 1) in
      let valid_shares =
        List.filter (fun s -> verify_share t ~round:(round - 1) s) shares
      in
      Net.Node.charge t.node
        (Net.Cost.coin_combine ~shares:(Crypto.Coin.threshold t.keys.coin_params));
      (match Hashtbl.find_opt (coin_cache ()) name with
      | Some bit -> bit = value
      | None -> (
          match Crypto.Coin.combine t.keys.coin_params ~name valid_shares with
          | Some bit ->
              Hashtbl.replace (coin_cache ()) name bit;
              bit = value
          | None -> false))

(* --- state machine -------------------------------------------------------- *)

and try_advance t =
  let rs = round_state t t.round_i in
  match t.stage with
  | Wait_prevotes ->
      if Hashtbl.length rs.prevotes >= quorum t then begin
        let values = Hashtbl.fold (fun _ (v, _) acc -> v :: acc) rs.prevotes [] in
        let all_equal b = List.for_all (fun v -> v = b) values in
        t.stage <- Wait_mainvotes;
        if all_equal 0 || all_equal 1 then begin
          let b = List.hd values in
          let contributions =
            Hashtbl.fold
              (fun sender (v, sig_) acc -> if v = b then (sender, sig_) :: acc else acc)
              rs.prevotes []
          in
          let ms = Crypto.Multisig.create contributions in
          send_mainvote t ~round:t.round_i ~mv:b ~hard_just:(Some ms) ~conflict:None
        end
        else begin
          let find_sig b =
            Hashtbl.fold
              (fun sender (v, sig_) acc ->
                match acc with Some _ -> acc | None -> if v = b then Some (sender, sig_) else None)
              rs.prevotes None
          in
          match (find_sig 0, find_sig 1) with
          | Some c0, Some c1 ->
              send_mainvote t ~round:t.round_i ~mv:abstain ~hard_just:None
                ~conflict:(Some (c0, c1))
          | _, _ -> assert false (* mixed values imply both present *)
        end
      end
  | Wait_mainvotes ->
      if Hashtbl.length rs.mainvotes >= quorum t then begin
        let mvs = Hashtbl.fold (fun _ (mv, _) acc -> mv :: acc) rs.mainvotes [] in
        let all_equal b = List.for_all (fun mv -> mv = b) mvs in
        let next_round = t.round_i + 1 in
        let next_value, next_just =
          if all_equal 0 || all_equal 1 then begin
            let b = List.hd mvs in
            if t.decision = None then begin
              t.decision <- Some b;
              Obs.Metrics.incr "proto.decisions" ~labels:[ ("proto", "abba") ];
              Obs.Trace2.emit
                ~time:(Net.Engine.now (Net.Node.engine t.node))
                ~node:(id t) ~layer:"abba" ~label:"decide"
                [ ("value", Obs.Trace2.I b); ("round", Obs.Trace2.I t.round_i) ];
              match t.decide_cb with
              | Some cb -> cb ~value:b ~round:t.round_i
              | None -> ()
            end;
            let just =
              match rs.hard_ms with
              | Some (v, ms) when v = b -> J_hard ms
              | Some _ | None -> prevote_ms_of t rs b
            in
            (b, just)
          end
          else begin
            match List.find_opt (fun mv -> mv = 0 || mv = 1) mvs with
            | Some b ->
                let just =
                  match rs.hard_ms with
                  | Some (v, ms) when v = b -> J_hard ms
                  | Some _ | None -> prevote_ms_of t rs b
                in
                (b, just)
            | None ->
                (* all abstained: flip the threshold coin *)
                t.stats.coins_flipped <- t.stats.coins_flipped + 1;
                Obs.Metrics.incr "proto.coin_flips" ~labels:[ ("proto", "abba") ];
                let shares = Hashtbl.fold (fun _ s acc -> s :: acc) rs.shares [] in
                Net.Node.charge t.node
                  (Net.Cost.coin_combine
                     ~shares:(Crypto.Coin.threshold t.keys.coin_params));
                let name = coin_name ~round:t.round_i in
                let bit =
                  match Hashtbl.find_opt (coin_cache ()) name with
                  | Some bit -> bit
                  | None -> (
                      match Crypto.Coin.combine t.keys.coin_params ~name shares with
                      | Some bit ->
                          Hashtbl.replace (coin_cache ()) name bit;
                          bit
                      | None -> Util.Rng.coin (Net.Node.rng t.node))
                in
                (bit, J_coin (abstain_ms_of rs, shares))
          end
        in
        t.round_i <- next_round;
        t.stats.rounds <- t.stats.rounds + 1;
        Obs.Metrics.incr "proto.round_changes" ~labels:[ ("proto", "abba") ];
        Obs.Trace2.emit
          ~time:(Net.Engine.now (Net.Node.engine t.node))
          ~node:(id t) ~layer:"abba" ~label:"round"
          [ ("round", Obs.Trace2.I next_round) ];
        t.stage <- Wait_prevotes;
        send_prevote t ~round:next_round ~value:next_value ~just:next_just
      end

and prevote_ms_of _t rs b =
  (* multisig over pre|r|b from our collected pre-votes *)
  let contributions =
    Hashtbl.fold
      (fun sender (v, sig_) acc -> if v = b then (sender, sig_) :: acc else acc)
      rs.prevotes []
  in
  J_hard (Crypto.Multisig.create contributions)

and abstain_ms_of rs =
  (* multisig over main|r|abstain from the collected main-votes *)
  Crypto.Multisig.create
    (Hashtbl.fold
       (fun sender (mv, sig_) acc -> if mv = abstain then (sender, sig_) :: acc else acc)
       rs.mainvotes [])

let create node ~keys ?(behavior = Correct) ?(port = 800) ~proposal () =
  if proposal <> 0 && proposal <> 1 then invalid_arg "Abba.create: binary proposals only";
  let link =
    Net.Rlink.create (Net.Node.engine node) (Net.Node.datagram node) (Net.Node.cpu node)
      ~auth:false ~port ()
  in
  {
    node;
    link;
    keys;
    behavior;
    round_i = 1;
    stage = Wait_prevotes;
    decision = None;
    rounds = Hashtbl.create 8;
    decide_cb = None;
    stats =
      {
        messages_sent = 0;
        signatures_created = 0;
        signatures_verified = 0;
        shares_verified = 0;
        coins_flipped = 0;
        rounds = 0;
      };
    started = false;
    initial = proposal;
  }

let start t =
  if not t.started then begin
    t.started <- true;
    Net.Rlink.on_receive t.link (fun ~src raw ->
        match decode raw with
        | exception (Util.Codec.Malformed _ | Util.Codec.Truncated) -> ()
        | message -> handle_message t ~src message);
    send_prevote t ~round:1 ~value:t.initial ~just:J_initial
  end
