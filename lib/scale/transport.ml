(* Transport abstraction the sample-based protocols run over.

   Three carriers share one first-class record: the scalable abstract
   {!Medium} (big n), the full radio/MAC node stack (faithful 802.11b
   costs via unicast frames), and {!Net.Rlink} reliable links (the
   TCP-like mesh the Bracha/ABBA baselines use). The protocols only
   see point-to-point sends, per-node timers and a listen hook, so a
   run's carrier is a constructor argument, not a code path. *)

type t = {
  n : int;
  now : unit -> float;
  send : src:int -> dst:int -> bytes -> unit;
  timer : node:int -> delay:float -> (unit -> unit) -> unit;
  register : node:int -> (src:int -> bytes -> unit) -> unit;
}

let size t = t.n
let now t = t.now ()
let send t ~src ~dst payload = t.send ~src ~dst payload
let timer t ~node ~delay f = t.timer ~node ~delay f
let register t ~node f = t.register ~node f

let of_medium m =
  {
    n = Medium.size m;
    now = (fun () -> Net.Engine.now (Medium.engine m));
    send = (fun ~src ~dst payload -> Medium.send m ~src ~dst payload);
    timer =
      (fun ~node:_ ~delay f -> ignore (Net.Engine.schedule (Medium.engine m) ~delay f));
    register = (fun ~node f -> Medium.set_handler m ~node f);
  }

let of_nodes nodes ~port =
  if Array.length nodes = 0 then invalid_arg "Transport.of_nodes: empty";
  {
    n = Array.length nodes;
    now = (fun () -> Net.Engine.now (Net.Node.engine nodes.(0)));
    send = (fun ~src ~dst payload -> Net.Node.unicast nodes.(src) ~dst ~port payload);
    timer = (fun ~node ~delay f -> ignore (Net.Node.set_timer nodes.(node) ~delay f));
    register =
      (fun ~node f ->
        Net.Node.listen nodes.(node) ~port (fun ~src payload -> f ~src payload));
  }

let of_rlinks nodes ~port =
  if Array.length nodes = 0 then invalid_arg "Transport.of_rlinks: empty";
  let links =
    Array.map
      (fun node ->
        Net.Rlink.create (Net.Node.engine node) (Net.Node.datagram node)
          (Net.Node.cpu node) ~port ())
      nodes
  in
  {
    n = Array.length nodes;
    now = (fun () -> Net.Engine.now (Net.Node.engine nodes.(0)));
    send = (fun ~src ~dst payload -> Net.Rlink.send links.(src) ~dst payload);
    timer = (fun ~node ~delay f -> ignore (Net.Node.set_timer nodes.(node) ~delay f));
    register =
      (fun ~node f -> Net.Rlink.on_receive links.(node) (fun ~src raw -> f ~src raw));
  }
