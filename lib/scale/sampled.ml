(* Sample-based probabilistic binary consensus.

   A phase-structured Ben-Or descendant that replaces every quorum
   with a deterministic public sample: in each phase a node pushes its
   state to an O(log n) sample and tallies the states pushed to it by
   the (precomputed) inverse set. Odd phases adopt the sampled
   majority; even phases decide on an overwhelming majority, adopt a
   clear one, and otherwise fall back to a shared per-phase coin
   derived from the run seed. Decided nodes linger, pushing DECIDED
   claims to a dedicated sample; an undecided node adopts once enough
   distinct claimants in its inverse claim set agree.

   Safety and liveness are probabilistic — the trade the scalable
   broadcast literature makes for O(log n) per-node cost — and every
   random choice (samples, coin, loss) derives from the run seed, so
   runs stay bit-identical at any -j. *)

type behavior = Correct | Attacker | Equivocator | Silent

type config = {
  sample_size : int;
  quorum_frac : float; (* of the inverse set heard before advancing *)
  adopt_frac : float; (* majority share that displaces the coin *)
  claim_frac : float; (* distinct claimants that import a decision *)
  confidence : int; (* consecutive supermajority even phases to decide *)
  tick : float;
  patience : int; (* ticks without quorum before advancing anyway *)
  max_phases : int;
  linger_ticks : int;
  epochs : int; (* sample tags cycle with this period: flat memory *)
}

let default_config ~n =
  (* below the crossover where an O(log n) sample actually thins the
     fan-out, fall back to full membership: at n <= ~32 the sample
     costs almost as many messages yet two samples can be near
     disjoint, which is where the probabilistic agreement risk lives *)
  let sample_size =
    let s = max 8 (int_of_float (ceil (3.0 *. log (float_of_int (max 2 n))))) in
    if 2 * s >= n then n - 1 else s
  in
  {
    sample_size;
    quorum_frac = 0.65;
    (* low enough that k - f unanimous honest votes always displace
       the coin (validity), high enough that near-even splits fall
       through to the shared coin instead of oscillating *)
    adopt_frac = 0.66;
    claim_frac = 0.3;
    confidence = 2;
    tick = 0.02;
    patience = 3;
    max_phases = 40;
    linger_ticks = 10;
    epochs = 16;
  }

let claim_tag = 999_983 (* outside the phase-tag cycle *)

type t = {
  node_id : int;
  net : Transport.t;
  sampler : Sampler.t;
  cfg : config;
  coin_base : int64;
  behavior : behavior;
  rng : Util.Rng.t; (* attacker randomness only *)
  mutable phase : int;
  mutable value : int;
  mutable decided : int option;
  mutable decision_phase : int;
  mutable started : bool;
  mutable stopped : bool;
  mutable phase_ticks : int;
  mutable ticks_after_decide : int;
  (* Snow-style confidence: how many consecutive even phases produced
     a decide-grade supermajority for [streak_value] *)
  mutable streak_value : int;
  mutable streak : int;
  (* flat per-phase tallies: a bitset over senders plus two counters,
     reset in place on every phase change — no per-phase allocation *)
  seen : Bytes.t;
  mutable c0 : int;
  mutable c1 : int;
  mutable incoming : int array;
  claim_seen : Bytes.t;
  mutable claim0 : int;
  mutable claim1 : int;
  claim_incoming : int array;
  (* newest STATE heard per sender: phases drift across nodes, so a
     vote for a phase this node has not reached yet is buffered and
     replayed when it gets there (one slot per sender, newest wins) *)
  pending_votes : (int, int * int) Hashtbl.t;
  mutable decide_cb : (value:int -> phase:int -> unit) option;
}

let labels = [ ("proto", "sampled") ]

let create net sampler cfg ~id ~coin_seed ?(behavior = Correct) ~proposal () =
  if proposal <> 0 && proposal <> 1 then invalid_arg "Sampled.create: binary values only";
  let n = Sampler.size sampler in
  {
    node_id = id;
    net;
    sampler;
    cfg;
    coin_base = coin_seed;
    behavior;
    rng = Util.Rng.create ~seed:(Util.Rng.derive ~base:coin_seed [ 0x5ca1ed; id ]);
    phase = 1;
    value = proposal;
    decided = None;
    decision_phase = -1;
    started = false;
    stopped = false;
    phase_ticks = 0;
    ticks_after_decide = 0;
    streak_value = -1;
    streak = 0;
    seen = Bytes.make ((n + 7) / 8) '\000';
    c0 = 0;
    c1 = 0;
    incoming = [||];
    claim_seen = Bytes.make ((n + 7) / 8) '\000';
    claim0 = 0;
    claim1 = 0;
    claim_incoming =
      Sampler.incoming sampler ~node:id ~tag:claim_tag ~k:cfg.sample_size;
    pending_votes = Hashtbl.create 32;
    decide_cb = None;
  }

let id t = t.node_id
let phase t = t.phase
let decision t = t.decided
let decision_phase t = t.decision_phase
let current_value t = t.value
let on_decide t f = t.decide_cb <- Some f

let tag t phase = phase mod t.cfg.epochs

(* shared coin: every node derives the same bit for a phase *)
let coin t ~phase = Int64.to_int (Util.Rng.derive ~base:t.coin_base [ 0xc0; phase ]) land 1

(* --- bitsets ------------------------------------------------------------ *)

let bit_test b i = Char.code (Bytes.get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set b i =
  Bytes.set b (i lsr 3) (Char.chr (Char.code (Bytes.get b (i lsr 3)) lor (1 lsl (i land 7))))

(* --- wire format -------------------------------------------------------- *)

let encode ~kind ~phase ~value =
  let w = Util.Codec.W.create ~capacity:8 () in
  Util.Codec.W.u8 w kind;
  Util.Codec.W.varint w phase;
  Util.Codec.W.u8 w value;
  Util.Codec.W.contents w

let decode raw =
  let r = Util.Codec.R.of_bytes raw in
  let kind = Util.Codec.R.u8 r in
  let phase = Util.Codec.R.varint r in
  let value = Util.Codec.R.u8 r in
  Util.Codec.R.expect_end r;
  (kind, phase, value)

(* the size harness-level capacity math must assume per vote frame
   (phases above 127 grow the varint by a byte — negligible) *)
let state_frame_bytes = Bytes.length (encode ~kind:0 ~phase:1 ~value:1)

(* --- sending ------------------------------------------------------------ *)

let send t ~dst msg =
  Obs.Metrics.incr "proto.msgs_sent" ~labels;
  Transport.send t.net ~src:t.node_id ~dst msg

let push_state t =
  let targets =
    Sampler.sample t.sampler ~owner:t.node_id ~tag:(tag t t.phase) ~k:t.cfg.sample_size
  in
  match t.behavior with
  | Silent -> ()
  | Correct ->
      let msg = encode ~kind:0 ~phase:t.phase ~value:t.value in
      Array.iter (fun dst -> send t ~dst msg) targets
  | Attacker ->
      Array.iter
        (fun dst -> send t ~dst (encode ~kind:0 ~phase:t.phase ~value:(Util.Rng.coin t.rng)))
        targets
  | Equivocator ->
      let m0 = encode ~kind:0 ~phase:t.phase ~value:0 in
      let m1 = encode ~kind:0 ~phase:t.phase ~value:1 in
      Array.iteri (fun i dst -> send t ~dst (if i land 1 = 0 then m0 else m1)) targets

let push_claims t =
  let targets =
    Sampler.sample t.sampler ~owner:t.node_id ~tag:claim_tag ~k:t.cfg.sample_size
  in
  let value =
    match (t.behavior, t.decided) with
    | Correct, Some v -> Some v
    | Attacker, _ -> Some (Util.Rng.coin t.rng)
    | Equivocator, _ -> Some (t.ticks_after_decide land 1)
    | Silent, _ -> None
    | Correct, None -> None
  in
  match value with
  | None -> ()
  | Some v ->
      let msg = encode ~kind:1 ~phase:t.phase ~value:v in
      Array.iter (fun dst -> send t ~dst msg) targets

(* --- phase machinery ---------------------------------------------------- *)

(* the tally universe: the inverse sample plus the node's own vote *)
let tally_size t = Array.length t.incoming + 1

let quorum t = max 1 (int_of_float (ceil (t.cfg.quorum_frac *. float_of_int (tally_size t))))

(* deciding takes the canonical BFT quorum of the WHOLE tally
   universe, never a share of the votes heard so far (a sparse tally's
   heard-fraction hits 1.0 with two votes).  With k members and
   f = (k-1)/3, T = k - f is simultaneously the largest
   liveness-safe threshold (the k - f honest votes alone reach it, a
   withholding adversary cannot block) and agreement-safe: two
   conflicting decisions in one phase need 2T <= k + f votes, and
   2(k - f) > k + f whenever f < k/3.  Full membership at small n
   makes that exact; a random sample satisfies it w.h.p. *)
let decide_quorum t =
  let k = tally_size t in
  k - ((k - 1) / 3)

let claim_quorum t =
  max 2
    (int_of_float (ceil (t.cfg.claim_frac *. float_of_int (Array.length t.claim_incoming))))

let decide t v =
  if t.decided = None then begin
    t.decided <- Some v;
    t.value <- v;
    t.decision_phase <- t.phase;
    Obs.Metrics.incr "proto.decisions" ~labels;
    (match t.decide_cb with Some f -> f ~value:v ~phase:t.phase | None -> ());
    push_claims t
  end

let member sample id = Array.exists (fun x -> x = id) sample

let count_vote t ~src ~value =
  if member t.incoming src && not (bit_test t.seen src) then begin
    bit_set t.seen src;
    if value = 0 then t.c0 <- t.c0 + 1 else t.c1 <- t.c1 + 1;
    true
  end
  else false

let rec enter_phase t phase =
  t.phase <- phase;
  t.phase_ticks <- 0;
  Bytes.fill t.seen 0 (Bytes.length t.seen) '\000';
  (* own vote first: the self-excluded variant lets two equal camps
     each see the other as a strict majority and swap values forever *)
  if t.value = 0 then begin t.c0 <- 1; t.c1 <- 0 end
  else begin t.c0 <- 0; t.c1 <- 1 end;
  t.incoming <-
    Sampler.incoming t.sampler ~node:t.node_id ~tag:(tag t phase) ~k:t.cfg.sample_size;
  Obs.Metrics.incr "proto.phase_changes" ~labels;
  (* replay buffered votes from senders already in this phase *)
  Array.iter
    (fun src ->
      match Hashtbl.find_opt t.pending_votes src with
      | Some (p, value) when p = phase -> ignore (count_vote t ~src ~value)
      | Some _ | None -> ())
    t.incoming;
  push_state t;
  maybe_advance t ~forced:false

and maybe_advance t ~forced =
  if t.decided = None && not t.stopped then begin
    let tot = t.c0 + t.c1 in
    (* evaluate on a complete tally, or when patience ran out with at
       least a quorum heard; a forced sub-quorum tally only re-enters
       (keeping the value) so a trickle of adversarial votes cannot
       steer adoption *)
    if tot > 0 && (tot >= tally_size t || (forced && tot >= quorum t)) then begin
      let b, cb = if t.c1 >= t.c0 then (1, t.c1) else (0, t.c0) in
      let frac = float_of_int cb /. float_of_int tot in
      if t.phase land 1 = 1 then t.value <- b
      else if cb >= decide_quorum t then begin
        (* a decide-grade supermajority must repeat [confidence] even
           phases in a row: while the population is genuinely split,
           one skewed sample certifies either value a few percent of
           the time, and n nodes draw n samples per phase *)
        if t.streak_value = b then t.streak <- t.streak + 1
        else begin
          t.streak_value <- b;
          t.streak <- 1
        end;
        if t.streak >= t.cfg.confidence then decide t b else t.value <- b
      end
      else if cb >= decide_quorum t - ((tally_size t - 1) / 3) then begin
        (* f-aware coin gate: cb votes for b could be the remnant of a
           decision certificate seen elsewhere (T - f of it survives
           any f Byzantine members), so adopt rather than risk coining
           away from a value some node has already decided *)
        t.streak <- 0;
        t.value <- b
      end
      else begin
        t.streak <- 0;
        if frac >= t.cfg.adopt_frac then t.value <- b
        else t.value <- coin t ~phase:t.phase
      end;
      if t.decided = None then
        if t.phase >= t.cfg.max_phases then t.stopped <- true
        else enter_phase t (t.phase + 1)
    end
    else if forced then begin
      (* heard too little. Advancing blind would outrun our own queued
         traffic (the n=64 failure mode over a saturated MAC), so only
         move when the buffered votes prove the herd is ahead — jump to
         the smallest phase a majority of buffered senders has passed —
         and otherwise stay put and keep re-pushing *)
      let ahead, target =
        Hashtbl.fold
          (fun _ (p, _) (count, lo) ->
            if p > t.phase then (count + 1, min lo p) else (count, lo))
          t.pending_votes (0, max_int)
      in
      if 2 * ahead >= Array.length t.incoming && target < max_int then begin
        if target > t.cfg.max_phases then t.stopped <- true
        else enter_phase t target
      end
    end
  end

(* --- receiving ---------------------------------------------------------- *)

let on_state t ~src ~phase ~value =
  if t.decided = None && phase >= t.phase && (value = 0 || value = 1) then begin
    (match Hashtbl.find_opt t.pending_votes src with
    | Some (p, _) when p > phase -> ()
    | Some _ | None -> Hashtbl.replace t.pending_votes src (phase, value));
    if phase = t.phase && count_vote t ~src ~value then maybe_advance t ~forced:false
  end

let on_claim t ~src ~value =
  if t.decided = None && (value = 0 || value = 1)
     && member t.claim_incoming src
     && not (bit_test t.claim_seen src)
  then begin
    bit_set t.claim_seen src;
    if value = 0 then t.claim0 <- t.claim0 + 1 else t.claim1 <- t.claim1 + 1;
    let q = claim_quorum t in
    if t.claim0 >= q then decide t 0 else if t.claim1 >= q then decide t 1
  end

let on_message t ~src raw =
  match decode raw with
  | exception (Util.Codec.Malformed _ | Util.Codec.Truncated) -> ()
  | 0, phase, value -> on_state t ~src ~phase ~value
  | 1, _, value -> on_claim t ~src ~value
  | _ -> ()

(* --- ticks -------------------------------------------------------------- *)

let rec arm t = Transport.timer t.net ~node:t.node_id ~delay:t.cfg.tick (fun () -> on_tick t)

and on_tick t =
  if not t.stopped then begin
    Obs.Metrics.incr "proto.ticks" ~labels;
    (match t.decided with
    | Some _ ->
        t.ticks_after_decide <- t.ticks_after_decide + 1;
        if t.ticks_after_decide <= t.cfg.linger_ticks then begin
          (* beacon: besides claims, keep voting the decided value
             through successive phases so laggards tally it as STATE
             instead of coining away once the deciders fall silent *)
          push_claims t;
          t.phase <- t.phase + 1;
          push_state t
        end
        else t.stopped <- true (* linger over: go quiet, let the engine drain *)
    | None ->
        t.phase_ticks <- t.phase_ticks + 1;
        if t.phase_ticks >= t.cfg.patience then maybe_advance t ~forced:true
        else push_state t (* re-push against loss *));
    if not t.stopped then arm t
  end

let start t =
  if not t.started then begin
    t.started <- true;
    Transport.register t.net ~node:t.node_id (fun ~src raw -> on_message t ~src raw);
    enter_phase t 1;
    arm t
  end

let stop t = t.stopped <- true
