(* Flat preallocated slot arena with an intrusive free list.

   In-flight message records at n >> 16 would otherwise be allocated
   (and collected) per event; the arena recycles a flat array of
   mutable records instead, so steady-state delivery costs no
   allocation and the high-water mark reports the true in-flight
   backlog. *)

type 'a t = {
  mutable slots : 'a array;
  mutable next : int array; (* next free slot, -1 = end, -2 = allocated *)
  mutable free_head : int;
  mutable in_use : int;
  mutable high_water : int;
  default : unit -> 'a;
}

let create ?(capacity = 256) default =
  if capacity < 1 then invalid_arg "Arena.create: bad capacity";
  {
    slots = Array.init capacity (fun _ -> default ());
    next = Array.init capacity (fun i -> if i = capacity - 1 then -1 else i + 1);
    free_head = 0;
    in_use = 0;
    high_water = 0;
    default;
  }

let grow t =
  let old = Array.length t.slots in
  let cap = 2 * old in
  t.slots <- Array.init cap (fun i -> if i < old then t.slots.(i) else t.default ());
  t.next <-
    Array.init cap (fun i ->
        if i < old then t.next.(i) else if i = cap - 1 then -1 else i + 1);
  t.free_head <- old

let alloc t =
  if t.free_head = -1 then grow t;
  let idx = t.free_head in
  t.free_head <- t.next.(idx);
  t.next.(idx) <- -2;
  t.in_use <- t.in_use + 1;
  if t.in_use > t.high_water then t.high_water <- t.in_use;
  idx

let free t idx =
  if idx < 0 || idx >= Array.length t.next || t.next.(idx) <> -2 then
    invalid_arg "Arena.free: slot is not allocated";
  t.next.(idx) <- t.free_head;
  t.free_head <- idx;
  t.in_use <- t.in_use - 1

let get t idx =
  if idx < 0 || idx >= Array.length t.next || t.next.(idx) <> -2 then
    invalid_arg "Arena.get: slot is not allocated";
  t.slots.(idx)

let in_use t = t.in_use
let capacity t = Array.length t.slots
let high_water t = t.high_water
