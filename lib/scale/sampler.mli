(** Deterministic public sample sets for sample-based protocols.

    Samples are pure functions of (base seed, owner, tag) — shared
    public randomness, recomputable by any domain without coordination,
    so parallel sweeps stay bit-identical and receivers can invert
    membership offline instead of exchanging subscriptions. *)

type t

val create : seed:int64 -> n:int -> t
(** [create ~seed ~n] prepares a sampler over ids [0..n-1].
    @raise Invalid_argument if [n < 2]. *)

val size : t -> int

val sample : t -> owner:int -> tag:int -> k:int -> int array
(** [k] distinct peers of [owner] (owner excluded, clamped to n-1)
    for role [tag]. Cached; callers must not mutate the array. *)

val in_sample : t -> owner:int -> tag:int -> k:int -> int -> bool

val inverse : t -> tag:int -> k:int -> int list array
(** [inverse t ~tag ~k].(p) lists the owners whose (tag, k) sample
    contains [p], ascending — the senders p accepts pushes from. *)

val incoming : t -> node:int -> tag:int -> k:int -> int array
(** Array form of [inverse _ .(node)]. *)
