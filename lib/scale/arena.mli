(** Flat preallocated slot arena with a free list.

    Replaces per-event allocation of in-flight records in the scalable
    delivery engine: [alloc] hands out a recycled slot index in O(1)
    (doubling the backing array only when exhausted), [free] returns
    it. The high-water mark reports the peak in-flight backlog. *)

type 'a t

val create : ?capacity:int -> (unit -> 'a) -> 'a t
(** [create ~capacity default] preallocates [capacity] (default 256)
    slots built by [default]. *)

val alloc : 'a t -> int
(** Claims a slot and returns its index; grows the arena if full. *)

val free : 'a t -> int -> unit
(** Returns a slot to the free list.
    @raise Invalid_argument if the slot is not currently allocated. *)

val get : 'a t -> int -> 'a
(** The record in an allocated slot (mutate it in place).
    @raise Invalid_argument if the slot is not currently allocated. *)

val in_use : 'a t -> int
val capacity : 'a t -> int

val high_water : 'a t -> int
(** Peak simultaneous [in_use] over the arena's lifetime. *)
