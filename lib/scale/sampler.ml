(* Deterministic public sample sets.

   Every sample is a pure function of (base seed, owner, tag): any
   domain can recompute any node's sample without shared state or
   subscription traffic, which keeps -j 1 and -j N runs bit-identical
   and lets receivers invert "whose sample am I in" offline. This
   models the common-randomness setup of scalable-broadcast protocols
   (samples drawn from a shared random beacon rather than private
   coins); the adversary is assumed non-adaptive, as in the source
   analysis. *)

type t = {
  base : int64;
  n : int;
  samples : (int * int * int, int array) Hashtbl.t; (* (owner, tag, k) *)
  inverses : (int * int, int list array) Hashtbl.t; (* (tag, k) *)
}

let create ~seed ~n =
  if n < 2 then invalid_arg "Sampler.create: need n >= 2";
  { base = seed; n; samples = Hashtbl.create 64; inverses = Hashtbl.create 8 }

let size t = t.n

(* k distinct peers of [owner] (owner excluded), by partial
   Fisher-Yates over the other n-1 ids; O(k) space via the sparse
   swap map. *)
let sample t ~owner ~tag ~k =
  if owner < 0 || owner >= t.n then invalid_arg "Sampler.sample: bad owner";
  if k < 1 then invalid_arg "Sampler.sample: bad sample size";
  let k = min k (t.n - 1) in
  match Hashtbl.find_opt t.samples (owner, tag, k) with
  | Some s -> s
  | None ->
      let rng = Util.Rng.create ~seed:(Util.Rng.derive ~base:t.base [ owner; tag ]) in
      let moved = Hashtbl.create (2 * k) in
      let get i = Option.value ~default:i (Hashtbl.find_opt moved i) in
      let m = t.n - 1 in
      let out =
        Array.init k (fun i ->
            let j = i + Util.Rng.int rng (m - i) in
            let vi = get i and vj = get j in
            Hashtbl.replace moved j vi;
            if vj >= owner then vj + 1 else vj)
      in
      Hashtbl.add t.samples (owner, tag, k) out;
      out

let in_sample t ~owner ~tag ~k id = Array.exists (fun x -> x = id) (sample t ~owner ~tag ~k)

(* incoming sets: [inverse t ~tag ~k].(p) = sorted list of owners q
   with p in q's sample — who p should expect (and accept) pushes
   from. O(n*k) once per (tag, k), then shared. *)
let inverse t ~tag ~k =
  let k = min (max k 1) (t.n - 1) in
  match Hashtbl.find_opt t.inverses (tag, k) with
  | Some inv -> inv
  | None ->
      let inv = Array.make t.n [] in
      for owner = t.n - 1 downto 0 do
        Array.iter (fun dst -> inv.(dst) <- owner :: inv.(dst)) (sample t ~owner ~tag ~k)
      done;
      Hashtbl.add t.inverses (tag, k) inv;
      inv

let incoming t ~node ~tag ~k = Array.of_list (inverse t ~tag ~k).(node)
