(** Scalable abstract message medium for n >> 16.

    A generic lossy datagram network: per-message iid loss, base
    latency plus uniform jitter, airtime accounted with the 802.11b
    unicast formula. Deliveries are quantized onto a [quantum]-second
    grid so one engine event serves every message landing on a tick,
    and in-flight records recycle through a flat {!Arena} — the
    delivery bookkeeping stays sub-quadratic in n. *)

type t

type stats = {
  mutable msgs_sent : int;
  mutable bytes_sent : int;
  mutable airtime : float;  (** summed serialized transmission time, s *)
  mutable delivered : int;
  mutable dropped : int;
}

val create :
  Net.Engine.t ->
  Util.Rng.t ->
  n:int ->
  ?latency:float ->
  ?jitter:float ->
  ?loss:float ->
  ?quantum:float ->
  unit ->
  t
(** Defaults: latency 2 ms, jitter 1 ms, loss 0, quantum 0.5 ms. *)

val engine : t -> Net.Engine.t
val size : t -> int
val stats : t -> stats
val set_loss : t -> float -> unit
val set_down : t -> int -> bool -> unit
val is_down : t -> int -> bool

val set_handler : t -> node:int -> (src:int -> bytes -> unit) -> unit
(** Delivery callback for [node]; replaces any previous handler. *)

val send : t -> src:int -> dst:int -> bytes -> unit
(** Queues one message. The payload is delivered by reference — treat
    it as immutable after sending. *)

val multicast : t -> src:int -> dsts:int list -> bytes -> unit
(** [send] to each destination, sharing one immutable payload buffer
    across the whole fan-out (loss and jitter draw per destination). *)

val in_flight : t -> int
val arena_high_water : t -> int
(** Peak simultaneous in-flight messages. *)
