(* Sample-based probabilistic reliable broadcast.

   The Murmur / Sieve / Contagion stack of Guerraoui et al. (Scalable
   Byzantine Reliable Broadcast): gossip spreads the payload to
   O(log n) peers, an echo sample replaces the quorum of consistent
   broadcast, and a ready/delivery sample replaces the quorum of
   totality — per-node cost is O(samples), not O(n), at the price of
   probabilistic (not certain) consistency and totality.

   All samples come from {!Sampler}'s shared public randomness, so a
   node sends its echoes and readies to the *inverse* sets — "everyone
   whose sample I am in" — with no subscription round-trips. Messages
   are re-pushed for a bounded number of ticks to ride out iid loss;
   every push shares one encoded buffer across its whole fan-out. *)

type config = {
  gossip_size : int;
  echo_size : int;
  ready_size : int;
  delivery_size : int;
  echo_threshold : float; (* fraction of the echo sample *)
  ready_threshold : float; (* feedback fraction of the ready sample *)
  delivery_threshold : float; (* fraction of the delivery sample *)
  resend_ticks : int;
  tick : float;
}

let default_config ~n =
  let s = max 6 (int_of_float (ceil (3.0 *. log (float_of_int (max 2 n))))) in
  {
    gossip_size = s;
    echo_size = s;
    ready_size = s;
    delivery_size = s;
    echo_threshold = 0.6;
    ready_threshold = 0.35;
    delivery_threshold = 0.6;
    resend_ticks = 8;
    tick = 0.05;
  }

(* role tags into the shared sampler *)
let gossip_tag = 7001
let echo_tag = 7002
let ready_tag = 7003
let delivery_tag = 7004

(* --- wire format -------------------------------------------------------- *)

let encode ~kind ~origin payload =
  let w = Util.Codec.W.create ~capacity:(8 + Bytes.length payload) () in
  Util.Codec.W.u8 w kind;
  Util.Codec.W.u16 w origin;
  Util.Codec.W.bytes_lp w payload;
  Util.Codec.W.contents w

let decode raw =
  let r = Util.Codec.R.of_bytes raw in
  let kind = Util.Codec.R.u8 r in
  let origin = Util.Codec.R.u16 r in
  let payload = Util.Codec.R.bytes_lp r in
  Util.Codec.R.expect_end r;
  (kind, origin, payload)

(* --- per-content vote tallies ------------------------------------------- *)

type tally = {
  mutable voters : int list; (* senders already counted, any content *)
  mutable counts : (string * int ref) list;
}

let new_tally () = { voters = []; counts = [] }

(* first vote per sender counts; returns the content's new total *)
let vote tally ~sender ~content =
  if List.mem sender tally.voters then None
  else begin
    tally.voters <- sender :: tally.voters;
    let cnt =
      match List.assoc_opt content tally.counts with
      | Some r -> r
      | None ->
          let r = ref 0 in
          tally.counts <- (content, r) :: tally.counts;
          r
    in
    incr cnt;
    Some !cnt
  end

(* --- broadcast instances ------------------------------------------------ *)

type inst = {
  mutable gossip_msg : bytes option; (* what I relay for this origin *)
  mutable echo_msg : bytes option;
  mutable ready_msg : bytes option;
  mutable delivered : bytes option;
  echo_tally : tally;
  feedback_tally : tally;
  delivery_tally : tally;
}

type t = {
  node_id : int;
  net : Transport.t;
  cfg : config;
  insts : (int, inst) Hashtbl.t; (* origin -> state *)
  mutable origins : int list; (* insertion order, for deterministic resends *)
  mutable deliver_cb : (origin:int -> bytes -> unit) option;
  mutable ticks_left : int;
  mutable started : bool;
  (* who I count votes from *)
  echo_listen : int array;
  ready_listen : int array;
  delivery_listen : int array;
  (* who I push to *)
  gossip_out : int array;
  echo_out : int array;
  ready_out : int array;
}

let labels = [ ("proto", "pbcast") ]

let create net sampler cfg ~id () =
  let sample tag k = Sampler.sample sampler ~owner:id ~tag ~k in
  let incoming tag k = Sampler.incoming sampler ~node:id ~tag ~k in
  let ready_out =
    (* readies feed both the feedback and the delivery samples *)
    Array.of_list
      (List.sort_uniq compare
         (Array.to_list (incoming ready_tag cfg.ready_size)
         @ Array.to_list (incoming delivery_tag cfg.delivery_size)))
  in
  {
    node_id = id;
    net;
    cfg;
    insts = Hashtbl.create 8;
    origins = [];
    deliver_cb = None;
    ticks_left = cfg.resend_ticks;
    started = false;
    echo_listen = sample echo_tag cfg.echo_size;
    ready_listen = sample ready_tag cfg.ready_size;
    delivery_listen = sample delivery_tag cfg.delivery_size;
    gossip_out = sample gossip_tag cfg.gossip_size;
    echo_out = incoming echo_tag cfg.echo_size;
    ready_out;
  }

let id t = t.node_id
let on_deliver t f = t.deliver_cb <- Some f
let delivered t ~origin =
  match Hashtbl.find_opt t.insts origin with
  | Some inst -> inst.delivered
  | None -> None

let inst_for t origin =
  match Hashtbl.find_opt t.insts origin with
  | Some i -> i
  | None ->
      let i =
        {
          gossip_msg = None;
          echo_msg = None;
          ready_msg = None;
          delivered = None;
          echo_tally = new_tally ();
          feedback_tally = new_tally ();
          delivery_tally = new_tally ();
        }
      in
      Hashtbl.add t.insts origin i;
      t.origins <- origin :: t.origins;
      i

let push t dsts msg =
  Array.iter
    (fun dst ->
      Obs.Metrics.incr "proto.msgs_sent" ~labels;
      Transport.send t.net ~src:t.node_id ~dst msg)
    dsts

let threshold frac sample = max 1 (int_of_float (ceil (frac *. float_of_int (Array.length sample))))

let member sample id = Array.exists (fun x -> x = id) sample

let deliver t origin (inst : inst) payload =
  if inst.delivered = None then begin
    inst.delivered <- Some payload;
    Obs.Metrics.incr "proto.decisions" ~labels;
    match t.deliver_cb with Some f -> f ~origin payload | None -> ()
  end

let send_ready t origin inst payload =
  if inst.ready_msg = None then begin
    let msg = encode ~kind:2 ~origin payload in
    inst.ready_msg <- Some msg;
    push t t.ready_out msg
  end

let send_echo t origin inst payload =
  if inst.echo_msg = None then begin
    let msg = encode ~kind:1 ~origin payload in
    inst.echo_msg <- Some msg;
    push t t.echo_out msg
  end

let handle_gossip t origin payload =
  let inst = inst_for t origin in
  if inst.gossip_msg = None then begin
    let msg = encode ~kind:0 ~origin payload in
    inst.gossip_msg <- Some msg;
    push t t.gossip_out msg;
    send_echo t origin inst payload
  end

let handle_echo t ~src origin payload =
  if member t.echo_listen src then begin
    let inst = inst_for t origin in
    match vote inst.echo_tally ~sender:src ~content:(Bytes.to_string payload) with
    | Some count when count >= threshold t.cfg.echo_threshold t.echo_listen ->
        send_ready t origin inst payload
    | Some _ | None -> ()
  end

let handle_ready t ~src origin payload =
  let inst = inst_for t origin in
  let content = Bytes.to_string payload in
  if member t.ready_listen src then begin
    match vote inst.feedback_tally ~sender:src ~content with
    | Some count when count >= threshold t.cfg.ready_threshold t.ready_listen ->
        (* contagion: enough sampled readies are themselves evidence *)
        send_ready t origin inst payload
    | Some _ | None -> ()
  end;
  if member t.delivery_listen src then begin
    match vote inst.delivery_tally ~sender:src ~content with
    | Some count when count >= threshold t.cfg.delivery_threshold t.delivery_listen ->
        deliver t origin inst payload
    | Some _ | None -> ()
  end

let on_message t ~src raw =
  match decode raw with
  | exception (Util.Codec.Malformed _ | Util.Codec.Truncated) -> ()
  | 0, origin, payload -> handle_gossip t origin payload
  | 1, origin, payload -> handle_echo t ~src origin payload
  | 2, origin, payload -> handle_ready t ~src origin payload
  | _ -> ()

(* bounded re-push of everything this node has committed to saying;
   rides out iid loss without acknowledgment state *)
let resend t =
  List.iter
    (fun origin ->
      let inst = Hashtbl.find t.insts origin in
      (match inst.gossip_msg with Some m -> push t t.gossip_out m | None -> ());
      (match inst.echo_msg with Some m -> push t t.echo_out m | None -> ());
      match inst.ready_msg with Some m -> push t t.ready_out m | None -> ())
    (List.rev t.origins)

let rec arm t =
  if t.ticks_left > 0 then
    Transport.timer t.net ~node:t.node_id ~delay:t.cfg.tick (fun () ->
        t.ticks_left <- t.ticks_left - 1;
        Obs.Metrics.incr "proto.ticks" ~labels;
        resend t;
        arm t)

let start t =
  if not t.started then begin
    t.started <- true;
    Transport.register t.net ~node:t.node_id (fun ~src raw -> on_message t ~src raw);
    arm t
  end

let broadcast t payload =
  handle_gossip t t.node_id payload;
  Obs.Metrics.incr "proto.broadcasts" ~labels

(* a faulty origin: contradictory gossip, half the sample each way,
   and no honest echo of its own *)
let broadcast_equivocate t pay_a pay_b =
  let inst = inst_for t t.node_id in
  let msg_a = encode ~kind:0 ~origin:t.node_id pay_a in
  let msg_b = encode ~kind:0 ~origin:t.node_id pay_b in
  inst.gossip_msg <- Some msg_a;
  Array.iteri
    (fun i dst ->
      Obs.Metrics.incr "proto.msgs_sent" ~labels;
      Transport.send t.net ~src:t.node_id ~dst (if i land 1 = 0 then msg_a else msg_b))
    t.gossip_out;
  Obs.Metrics.incr "proto.equivocations" ~labels
