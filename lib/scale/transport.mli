(** Carrier abstraction for the sample-based protocols: point-to-point
    sends, per-node timers and a listen hook. Constructors exist for
    the scalable abstract {!Medium}, the radio/MAC node stack and the
    {!Net.Rlink} reliable-link mesh. *)

type t

val size : t -> int
val now : t -> float
val send : t -> src:int -> dst:int -> bytes -> unit
val timer : t -> node:int -> delay:float -> (unit -> unit) -> unit

val register : t -> node:int -> (src:int -> bytes -> unit) -> unit
(** Installs [node]'s delivery callback (one per node). *)

val of_medium : Medium.t -> t

val of_nodes : Net.Node.t array -> port:int -> t
(** Over the radio/MAC stack; sends become acknowledged 802.11b
    unicast frames on the shared medium. *)

val of_rlinks : Net.Node.t array -> port:int -> t
(** Over a mesh of reliable ordered links (one {!Net.Rlink} per node,
    implicit pairwise connections). *)
