(** Sample-based probabilistic binary consensus.

    A phase-structured Ben-Or descendant where every quorum is a
    deterministic public sample of O(log n) peers: per-node message
    cost is O(log n) per phase, so n = 1024 runs are feasible where
    the all-to-all baselines collapse. Agreement and termination are
    probabilistic (1 - epsilon); all randomness — samples, the shared
    phase coin, attacker noise — derives from the run seed, so runs
    are bit-identical at any parallelism. *)

type behavior = Correct | Attacker | Equivocator | Silent

type config = {
  sample_size : int;
  quorum_frac : float;  (** of the inverse set heard before advancing *)
  adopt_frac : float;  (** majority share that displaces the coin *)
  claim_frac : float;  (** distinct claimants that import a decision *)
  confidence : int;
      (** consecutive even-phase supermajorities for the same value
          before deciding it — one skewed sample during a genuinely
          split phase must not certify a decision *)
  tick : float;
  patience : int;  (** ticks without quorum before advancing anyway *)
  max_phases : int;
  linger_ticks : int;  (** decided nodes re-push claims this long *)
  epochs : int;  (** sample tags cycle with this period: flat memory *)
}

val default_config : n:int -> config
(** Sample size ~ 3 ln n (min 8) — full membership below the crossover
    where sampling would actually thin the fan-out. Deciding takes the
    BFT quorum k - (k-1)/3 of the tally universe (inverse sample plus
    own vote), sustained for [confidence] consecutive even phases. *)

val state_frame_bytes : int
(** Encoded size of one vote frame — what per-frame channel-capacity
    math (e.g. the harness's contended-radio tick sizing) must assume,
    instead of guessing. Phases above 127 add one varint byte. *)

type t

val create :
  Transport.t ->
  Sampler.t ->
  config ->
  id:int ->
  coin_seed:int64 ->
  ?behavior:behavior ->
  proposal:int ->
  unit ->
  t
(** [coin_seed] must be identical at every node (public randomness);
    [proposal] must be 0 or 1. *)

val id : t -> int
val phase : t -> int
val decision : t -> int option
val decision_phase : t -> int
val current_value : t -> int
val on_decide : t -> (value:int -> phase:int -> unit) -> unit

val start : t -> unit
(** Registers the listen hook, pushes phase 1 and arms the tick. *)

val stop : t -> unit
