(* Scalable abstract message medium.

   The DCF radio pays O(n) simulation work per receiver per frame —
   faithful at n = 16, hopeless at n = 1024. This medium models a
   generic lossy datagram network instead: per-message iid loss, a
   base propagation latency plus uniform jitter, and airtime accounted
   with the 802.11b unicast formula so byte costs stay comparable with
   the radio runs.

   Two structures keep delivery bookkeeping sub-quadratic:
   - deliveries are quantized onto a grid of [quantum] seconds, and all
     messages landing on one grid tick share a single engine event;
   - in-flight records live in a flat preallocated {!Arena} (no
     per-event allocation), and a multicast shares one immutable
     payload buffer across every receiver instead of per-receiver
     copies. *)

type slot = { mutable s_src : int; mutable s_dst : int; mutable s_payload : bytes }

type stats = {
  mutable msgs_sent : int;
  mutable bytes_sent : int;
  mutable airtime : float;
  mutable delivered : int;
  mutable dropped : int;
}

type t = {
  engine : Net.Engine.t;
  rng : Util.Rng.t;
  n : int;
  latency : float;
  jitter : float;
  quantum : float;
  mutable loss : float;
  arena : slot Arena.t;
  pending : (int, int list ref) Hashtbl.t; (* grid tick -> slot indices, newest first *)
  handlers : (src:int -> bytes -> unit) option array;
  down : bool array;
  stats : stats;
}

let create engine rng ~n ?(latency = 2.0e-3) ?(jitter = 1.0e-3) ?(loss = 0.0)
    ?(quantum = 5.0e-4) () =
  if n < 2 then invalid_arg "Medium.create: need n >= 2";
  if latency <= 0.0 || jitter < 0.0 || quantum <= 0.0 then
    invalid_arg "Medium.create: bad timing";
  if loss < 0.0 || loss >= 1.0 then invalid_arg "Medium.create: loss must be in [0,1)";
  {
    engine;
    rng;
    n;
    latency;
    jitter;
    quantum;
    loss;
    arena = Arena.create (fun () -> { s_src = 0; s_dst = 0; s_payload = Bytes.empty });
    pending = Hashtbl.create 64;
    handlers = Array.make n None;
    down = Array.make n false;
    stats = { msgs_sent = 0; bytes_sent = 0; airtime = 0.0; delivered = 0; dropped = 0 };
  }

let engine t = t.engine
let size t = t.n
let stats t = t.stats
let set_loss t p =
  if p < 0.0 || p >= 1.0 then invalid_arg "Medium.set_loss";
  t.loss <- p
let set_down t i v = t.down.(i) <- v
let is_down t i = t.down.(i)
let set_handler t ~node f = t.handlers.(node) <- Some f
let arena_high_water t = Arena.high_water t.arena
let in_flight t = Arena.in_use t.arena

let flush t tick =
  match Hashtbl.find_opt t.pending tick with
  | None -> ()
  | Some cell ->
      Hashtbl.remove t.pending tick;
      (* newest-first list: reverse to deliver in send order *)
      List.iter
        (fun idx ->
          let s = Arena.get t.arena idx in
          let src = s.s_src and dst = s.s_dst and payload = s.s_payload in
          s.s_payload <- Bytes.empty;
          Arena.free t.arena idx;
          if not t.down.(dst) then begin
            t.stats.delivered <- t.stats.delivered + 1;
            match t.handlers.(dst) with Some f -> f ~src payload | None -> ()
          end)
        (List.rev !cell)

let send t ~src ~dst payload =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Medium.send: bad endpoint";
  if not t.down.(src) then begin
    let len = Bytes.length payload in
    t.stats.msgs_sent <- t.stats.msgs_sent + 1;
    t.stats.bytes_sent <- t.stats.bytes_sent + len;
    t.stats.airtime <- t.stats.airtime +. Net.Mac.airtime_unicast ~payload_bytes:len;
    if Util.Rng.bernoulli t.rng t.loss then t.stats.dropped <- t.stats.dropped + 1
    else begin
      let delay =
        t.latency +. if t.jitter > 0.0 then Util.Rng.float t.rng t.jitter else 0.0
      in
      let tick =
        int_of_float ((Net.Engine.now t.engine +. delay) /. t.quantum) + 1
      in
      let idx = Arena.alloc t.arena in
      let s = Arena.get t.arena idx in
      s.s_src <- src;
      s.s_dst <- dst;
      s.s_payload <- payload;
      match Hashtbl.find_opt t.pending tick with
      | Some cell -> cell := idx :: !cell
      | None ->
          Hashtbl.add t.pending tick (ref [ idx ]);
          ignore
            (Net.Engine.at t.engine ~time:(float_of_int tick *. t.quantum) (fun () ->
                 flush t tick))
    end
  end

(* one immutable envelope shared by every receiver; loss and jitter
   still draw independently per destination *)
let multicast t ~src ~dsts payload =
  List.iter (fun dst -> send t ~src ~dst payload) dsts
