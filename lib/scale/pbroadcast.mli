(** Sample-based probabilistic reliable broadcast (Murmur gossip,
    Sieve echo sampling, Contagion ready/delivery sampling).

    Per-node cost is O(sample sizes), not O(n); consistency and
    totality hold with probability 1 - epsilon rather than certainly.
    Sample sets come from {!Sampler}'s shared public randomness, so
    results are bit-identical at any parallelism. *)

type config = {
  gossip_size : int;
  echo_size : int;
  ready_size : int;
  delivery_size : int;
  echo_threshold : float;
  ready_threshold : float;
  delivery_threshold : float;
  resend_ticks : int;  (** bounded re-push rounds against iid loss *)
  tick : float;
}

val default_config : n:int -> config
(** Sample sizes ~ 3 ln n (min 6); thresholds 0.6 / 0.35 / 0.6. *)

type t

val create : Transport.t -> Sampler.t -> config -> id:int -> unit -> t
val id : t -> int
val on_deliver : t -> (origin:int -> bytes -> unit) -> unit

val start : t -> unit
(** Registers the listen hook and arms the bounded resend ticks. *)

val broadcast : t -> bytes -> unit
(** Broadcast as origin [id t]. *)

val broadcast_equivocate : t -> bytes -> bytes -> unit
(** Faulty origin: contradictory gossip, half the sample each way. *)

val delivered : t -> origin:int -> bytes option
