type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ----------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest decimal that round-trips, always with a '.' or exponent so a
   re-parse yields a Float again (JSON has one number type; we keep the
   int/float distinction by syntax). *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else begin
    let s = Printf.sprintf "%.12g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ ".0"
  end

let rec print_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_to buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          print_to buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf key;
          Buffer.add_char buf ':';
          print_to buf value)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  print_to buf v;
  Buffer.contents buf

(* --- parsing ------------------------------------------------------------ *)

exception Fail of string

type cursor = { s : string; mutable pos : int }

let failf fmt = Printf.ksprintf (fun m -> raise (Fail m)) fmt
let at_end c = c.pos >= String.length c.s
let peek c = c.s.[c.pos]
let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while (not (at_end c)) && (match peek c with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
    advance c
  done

let expect c ch =
  if at_end c || peek c <> ch then failf "expected %C at offset %d" ch c.pos;
  advance c

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else failf "bad literal at offset %d" c.pos

(* Encode a Unicode scalar as UTF-8 bytes. *)
let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
  end

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if at_end c then failf "unterminated string";
    match peek c with
    | '"' -> advance c
    | '\\' ->
        advance c;
        if at_end c then failf "unterminated escape";
        let ch = peek c in
        advance c;
        (match ch with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
            if c.pos + 4 > String.length c.s then failf "truncated \\u escape";
            let hex = String.sub c.s c.pos 4 in
            c.pos <- c.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex) with _ -> failf "bad \\u escape %S" hex
            in
            add_utf8 buf code
        | ch -> failf "bad escape \\%c" ch);
        go ()
    | ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (not (at_end c)) && is_num_char (peek c) do
    advance c
  done;
  let text = String.sub c.s start (c.pos - start) in
  if String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') text then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> failf "bad number %S" text
  else begin
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> failf "bad number %S" text)
  end

let rec parse_value c =
  skip_ws c;
  if at_end c then failf "unexpected end of input";
  match peek c with
  | '{' ->
      advance c;
      skip_ws c;
      if (not (at_end c)) && peek c = '}' then begin
        advance c;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws c;
          let key = parse_string c in
          skip_ws c;
          expect c ':';
          let value = parse_value c in
          skip_ws c;
          if at_end c then failf "unterminated object";
          match peek c with
          | ',' ->
              advance c;
              members ((key, value) :: acc)
          | '}' ->
              advance c;
              List.rev ((key, value) :: acc)
          | ch -> failf "unexpected %C in object" ch
        in
        Obj (members [])
      end
  | '[' ->
      advance c;
      skip_ws c;
      if (not (at_end c)) && peek c = ']' then begin
        advance c;
        List []
      end
      else begin
        let rec items acc =
          let value = parse_value c in
          skip_ws c;
          if at_end c then failf "unterminated array";
          match peek c with
          | ',' ->
              advance c;
              items (value :: acc)
          | ']' ->
              advance c;
              List.rev (value :: acc)
          | ch -> failf "unexpected %C in array" ch
        in
        List (items [])
      end
  | '"' -> String (parse_string c)
  | 't' -> literal c "true" (Bool true)
  | 'f' -> literal c "false" (Bool false)
  | 'n' -> literal c "null" Null
  | _ -> parse_number c

let parse s =
  let c = { s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if at_end c then Ok v else Error (Printf.sprintf "trailing input at offset %d" c.pos)
  | exception Fail msg -> Error msg

(* --- accessors ----------------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_int = function Int i -> Some i | Float f when Float.is_integer f -> Some (int_of_float f) | _ -> None
let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None
