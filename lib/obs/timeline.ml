(* Per-node protocol timelines: one ASCII Gantt row per node over the
   run's time span.

   Each column is one time bucket; a node's cell shows its state in that
   bucket — the last digit of its current phase, 'D' once decided, 'X'
   while crashed, '.' before its first phase transition. State changes
   come straight off the trace: protocol "phase"/"round" and "decide"
   events, fault-layer "crash"/"recover". *)

type change = Phase of int | Decide | Crash | Recover

let fint fields key =
  match List.assoc_opt key fields with
  | Some (Trace2.I i) -> Some i
  | Some (Trace2.F f) -> Some (int_of_float f)
  | _ -> None

(* node -> chronological (time, change) list *)
let changes events =
  let per_node : (int, (float * change) list) Hashtbl.t = Hashtbl.create 16 in
  let push node time c =
    if node >= 0 then
      Hashtbl.replace per_node node
        ((time, c) :: Option.value ~default:[] (Hashtbl.find_opt per_node node))
  in
  List.iter
    (fun (e : Trace2.event) ->
      match e.label with
      | "phase" | "round" -> (
          let num =
            match fint e.fields "phase" with
            | Some p -> Some p
            | None -> fint e.fields "round"
          in
          match num with Some p -> push e.node e.time (Phase p) | None -> ())
      | "decide" -> push e.node e.time Decide
      | "crash" when e.layer = "fault" ->
          push (match fint e.fields "node" with Some i -> i | None -> e.node) e.time Crash
      | "recover" when e.layer = "fault" ->
          push (match fint e.fields "node" with Some i -> i | None -> e.node) e.time Recover
      | _ -> ())
    events;
  Hashtbl.iter
    (fun node l -> Hashtbl.replace per_node node (List.rev l))
    (Hashtbl.copy per_node);
  per_node

let cell_char ~crashed ~decided ~phase =
  if crashed then 'X'
  else if decided then 'D'
  else match phase with None -> '.' | Some p -> Char.chr (Char.code '0' + (p mod 10))

let width = 64

let render ?(n = 0) events =
  let per_node = changes events in
  let n =
    max n (1 + Hashtbl.fold (fun node _ acc -> max node acc) per_node (-1))
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Per-node timeline (phase digit; D decided, X crashed, . idle)\n";
  let times = List.map (fun (e : Trace2.event) -> e.time) events in
  match times with
  | [] ->
      Buffer.add_string buf "  no events in trace\n";
      Buffer.contents buf
  | t0 :: _ ->
      let tmin = List.fold_left Float.min t0 times in
      let tmax = List.fold_left Float.max t0 times in
      let span = Float.max (tmax -. tmin) 1.0e-9 in
      let bucket = span /. float_of_int width in
      Buffer.add_string buf
        (Printf.sprintf "  %.1f ms %s %.1f ms  (%.2f ms/col)\n" (tmin *. 1000.0)
           (String.make (width - 18) '-')
           (tmax *. 1000.0) (bucket *. 1000.0));
      for node = 0 to n - 1 do
        let cs = Option.value ~default:[] (Hashtbl.find_opt per_node node) in
        let row = Bytes.make width '.' in
        let crashed = ref false and decided = ref false and phase = ref None in
        let rest = ref cs in
        for col = 0 to width - 1 do
          (* state at the end of this column's bucket *)
          let upto = tmin +. (bucket *. float_of_int (col + 1)) in
          let continue = ref true in
          while !continue do
            match !rest with
            | (t, c) :: tl when t <= upto ->
                (match c with
                | Phase p -> phase := Some p
                | Decide -> decided := true
                | Crash -> crashed := true
                | Recover -> crashed := false);
                rest := tl
            | _ -> continue := false
          done;
          Bytes.set row col (cell_char ~crashed:!crashed ~decided:!decided ~phase:!phase)
        done;
        Buffer.add_string buf (Printf.sprintf "  p%-3d %s\n" node (Bytes.to_string row))
      done;
      Buffer.contents buf
