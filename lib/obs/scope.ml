let with_run f =
  Metrics.reset ();
  Trace2.clear ();
  let result = f () in
  (result, Metrics.snapshot ())
