(* Reset hooks let lower layers attach per-run state to the run
   boundary without obs depending on them: Core.Intern registers its
   domain-local cache reset here at module initialization.
   Registration happens on the main domain before any worker spawns;
   the CAS loop only guards against a racing registration. *)
let hooks : (unit -> unit) list Atomic.t = Atomic.make []

let at_run_start f =
  let rec add () =
    let current = Atomic.get hooks in
    if not (Atomic.compare_and_set hooks current (f :: current)) then add ()
  in
  add ()

let with_run f =
  Metrics.reset ();
  Trace2.clear ();
  List.iter (fun hook -> hook ()) (Atomic.get hooks);
  let result = f () in
  (result, Metrics.snapshot ())
