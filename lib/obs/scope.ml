(* Reset hooks let lower layers attach per-run state to the run
   boundary without obs depending on them: Core.Intern registers its
   domain-local cache reset here at module initialization.
   Registration happens on the main domain before any worker spawns;
   the CAS loop only guards against a racing registration. *)
let hooks : (unit -> unit) list Atomic.t = Atomic.make []

let at_run_start f =
  let rec add () =
    let current = Atomic.get hooks in
    if not (Atomic.compare_and_set hooks current (f :: current)) then add ()
  in
  add ()

(* The registry is reset on exit as well as entry: the run's counters
   live on in the returned snapshot, and leaving them in the executing
   domain's registry leaked the final pool task's metrics into the
   caller whenever the calling domain happened to execute it — a
   scheduling-dependent flake. The trace buffer is deliberately NOT
   cleared on exit: [run --trace-json] exports it after the run
   returns. *)
let with_run f =
  Metrics.reset ();
  Trace2.clear ();
  List.iter (fun hook -> hook ()) (Atomic.get hooks);
  match f () with
  | result ->
      let snap = Metrics.snapshot () in
      Metrics.reset ();
      (result, snap)
  | exception e ->
      Metrics.reset ();
      raise e
