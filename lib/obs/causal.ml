(* Causal message tracing.

   Online half: every protocol broadcast gets a message id
   "m<sender>.<phase>.<seq>" at the moment it is encoded, and the id is
   re-attached ("aliased") to each lower-layer re-encoding of the same
   bytes (protocol payload -> datagram raw -> MAC frame), so radio-layer
   events can name the protocol message they carry without any layer
   threading an extra parameter through its signature. The registry is
   keyed on byte *content*: a retransmission of identical bytes maps to
   the same id, which is exactly the causal identity we want.

   Offline half: [build] folds a trace back into a happens-before DAG —
   send, deliver and drop records per message id — from which
   [decision_chain] walks a decision back through everything the
   deciding node (transitively) heard, and [attribute] explains a stall
   window as a minimal set of dropped/jammed messages covering the
   receivers that failed to advance.

   Contract: the online half never touches simulated time, the RNG or
   the metrics registry, and is only invoked when tracing is already
   on, so causal tagging on/off yields bit-identical protocol results. *)

(* --- online: id assignment and byte aliasing ------------------------------ *)

type reg = {
  seqs : (int, int) Hashtbl.t; (* sender -> next seq *)
  mids : (string, string) Hashtbl.t; (* byte content -> mid *)
}

(* Domain-local like the trace buffer itself: pool workers tag their own
   runs without contention. *)
let reg_key : reg Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { seqs = Hashtbl.create 16; mids = Hashtbl.create 256 })

let reg () = Domain.DLS.get reg_key

let reset () =
  let r = reg () in
  Hashtbl.reset r.seqs;
  Hashtbl.reset r.mids

let next_send ~sender ~phase =
  let r = reg () in
  let seq = Option.value ~default:0 (Hashtbl.find_opt r.seqs sender) in
  Hashtbl.replace r.seqs sender (seq + 1);
  Printf.sprintf "m%d.%d.%d" sender phase seq

let register bytes mid = Hashtbl.replace (reg ()).mids (Bytes.to_string bytes) mid
let lookup bytes = Hashtbl.find_opt (reg ()).mids (Bytes.to_string bytes)

let alias ~from bytes =
  match lookup from with None -> () | Some mid -> register bytes mid

let mid_field bytes =
  match lookup bytes with
  | None -> []
  | Some mid -> [ ("mid", Trace2.S mid) ]

(* ids are per-run; clear alongside metrics and the memo caches *)
let () = Scope.at_run_start reset

(* --- offline: happens-before reconstruction ------------------------------- *)

type send = { s_mid : string; s_sender : int; s_phase : int; s_time : float }
type deliver = { d_mid : string; d_rx : int; d_time : float }

type drop = {
  dr_mid : string;
  dr_kind : string; (* "omission" | "jammed" | "mac-drop" *)
  dr_rx : int option; (* None: broadcast-wide loss (jamming) *)
  dr_time : float;
}

type dag = {
  sends : (string, send) Hashtbl.t;
  delivers : deliver list; (* chronological *)
  delivers_by_rx : (int, deliver list) Hashtbl.t; (* chronological *)
  drops : drop list; (* chronological *)
  decides : (int, float) Hashtbl.t; (* node -> first decide time *)
}

let fint fields key =
  match List.assoc_opt key fields with
  | Some (Trace2.I i) -> Some i
  | _ -> None

let fstr fields key =
  match List.assoc_opt key fields with
  | Some (Trace2.S s) -> Some s
  | _ -> None

let build events =
  let sends = Hashtbl.create 128 in
  let delivers = ref [] in
  let drops = ref [] in
  let decides = Hashtbl.create 16 in
  List.iter
    (fun (e : Trace2.event) ->
      let mid () = fstr e.fields "mid" in
      match (e.layer, e.label) with
      | _, ("broadcast" | "equivocate") -> (
          match mid () with
          | None -> ()
          | Some m ->
              if not (Hashtbl.mem sends m) then
                Hashtbl.replace sends m
                  {
                    s_mid = m;
                    s_sender = e.node;
                    s_phase = Option.value ~default:(-1) (fint e.fields "phase");
                    s_time = e.time;
                  })
      | "radio", "deliver" -> (
          match (mid (), fint e.fields "rx") with
          | Some m, Some rx ->
              delivers := { d_mid = m; d_rx = rx; d_time = e.time } :: !delivers
          | _ -> ())
      | "radio", "omission" -> (
          match mid () with
          | None -> ()
          | Some m ->
              drops :=
                { dr_mid = m; dr_kind = "omission"; dr_rx = fint e.fields "rx"; dr_time = e.time }
                :: !drops)
      | "radio", "jammed" -> (
          match mid () with
          | None -> ()
          | Some m ->
              drops := { dr_mid = m; dr_kind = "jammed"; dr_rx = None; dr_time = e.time } :: !drops)
      | "mac", "drop" -> (
          match mid () with
          | None -> ()
          | Some m ->
              drops :=
                { dr_mid = m; dr_kind = "mac-drop"; dr_rx = fint e.fields "dst"; dr_time = e.time }
                :: !drops)
      | _, "decide" ->
          if not (Hashtbl.mem decides e.node) then Hashtbl.replace decides e.node e.time
      | _ -> ())
    events;
  let delivers = List.rev !delivers in
  let by_rx = Hashtbl.create 16 in
  List.iter
    (fun d ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_rx d.d_rx) in
      Hashtbl.replace by_rx d.d_rx (d :: prev))
    (List.rev delivers);
  { sends; delivers; delivers_by_rx = by_rx; drops = List.rev !drops; decides }

(* Transitive closure of "heard before acting": everything delivered to
   [node] by [time], plus, recursively, everything each of those
   messages' senders had heard when they sent. Deduped by mid, so the
   walk is bounded by the number of distinct messages in the trace. *)
let decision_chain dag ~node ~time =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let chain = ref [] in
  let rec visit nd tm =
    let heard = Option.value ~default:[] (Hashtbl.find_opt dag.delivers_by_rx nd) in
    List.iter
      (fun d ->
        if d.d_time <= tm && not (Hashtbl.mem seen d.d_mid) then begin
          Hashtbl.replace seen d.d_mid ();
          chain := d.d_mid :: !chain;
          match Hashtbl.find_opt dag.sends d.d_mid with
          | None -> ()
          | Some s -> visit s.s_sender s.s_time
        end)
      heard
  in
  visit node time;
  let by_send m =
    match Hashtbl.find_opt dag.sends m with
    | Some s -> (s.s_time, s.s_phase, m)
    | None -> (infinity, max_int, m)
  in
  List.sort (fun a b -> compare (by_send a) (by_send b)) !chain

let drops_in dag ~from ~until =
  List.filter (fun d -> d.dr_time >= from && d.dr_time < until) dag.drops

(* Stall attribution: greedy minimal cover of the lagging receivers by
   messages dropped inside the window. A drop with a concrete receiver
   covers that receiver; a jammed transmission covers every lagging
   receiver at once. Returns (mid, kind, covered receivers), best cover
   first; empty when no in-window drop touches a lagging node. *)
let attribute dag ~lagging ~from ~until =
  let lagging = List.sort_uniq compare lagging in
  let candidates = drops_in dag ~from ~until in
  (* coverage per (mid, kind): the set of lagging receivers it explains *)
  let cover : (string * string, int list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun d ->
      let touched =
        match d.dr_rx with
        | Some rx -> if List.mem rx lagging then [ rx ] else []
        | None -> lagging
      in
      if touched <> [] then begin
        let key = (d.dr_mid, d.dr_kind) in
        let cell =
          match Hashtbl.find_opt cover key with
          | Some c -> c
          | None ->
              let c = ref [] in
              Hashtbl.add cover key c;
              c
        in
        cell := List.sort_uniq compare (touched @ !cell)
      end)
    candidates;
  let pool = Hashtbl.fold (fun (m, k) c l -> (m, k, !c) :: l) cover [] in
  (* deterministic greedy: widest coverage first, mid as tie-break *)
  let remaining = ref lagging in
  let chosen = ref [] in
  let pool = ref (List.sort compare pool) in
  let covers c = List.filter (fun rx -> List.mem rx !remaining) c in
  let continue = ref true in
  while !continue do
    let best =
      List.fold_left
        (fun acc (m, k, c) ->
          let gain = List.length (covers c) in
          match acc with
          | Some (_, _, _, g) when g >= gain -> acc
          | _ when gain = 0 -> acc
          | _ -> Some (m, k, c, gain))
        None !pool
    in
    match best with
    | None -> continue := false
    | Some (m, k, c, _) ->
        chosen := (m, k, List.sort_uniq compare (covers c)) :: !chosen;
        remaining := List.filter (fun rx -> not (List.mem rx c)) !remaining;
        pool := List.filter (fun (m', k', _) -> (m', k') <> (m, k)) !pool
  done;
  (List.rev !chosen, !remaining)

let describe_send dag mid =
  match Hashtbl.find_opt dag.sends mid with
  | Some s -> Printf.sprintf "%s (p%d, phase %d, @%.1fms)" mid s.s_sender s.s_phase (s.s_time *. 1000.0)
  | None -> mid
