(** Per-run scoping of the global observability sinks.

    [with_run f] resets the metrics registry and clears the trace
    buffer (the enabled/limit state is untouched), runs [f], and
    returns its result together with the metrics snapshot of exactly
    that run. This is the discipline that keeps repetitions
    independent: without it, a 50-rep [--trace] session would mix
    events and counters from every earlier repetition. *)

val with_run : (unit -> 'a) -> 'a * Metrics.snapshot
