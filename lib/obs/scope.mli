(** Per-run scoping of the global observability sinks.

    [with_run f] resets the metrics registry and clears the trace
    buffer (the enabled/limit state is untouched), runs [f], and
    returns its result together with the metrics snapshot of exactly
    that run. The registry is reset again on exit — success or raise —
    so no run leaves counters behind on the executing domain (the trace
    buffer survives until the next run: callers export it after the run
    returns). This is the discipline that keeps repetitions
    independent: without it, a 50-rep [--trace] session would mix
    events and counters from every earlier repetition. *)

val with_run : (unit -> 'a) -> 'a * Metrics.snapshot

val at_run_start : (unit -> unit) -> unit
(** Registers a hook that [with_run] invokes (on the calling domain,
    after resetting metrics and trace) at the start of every run. This
    is how per-run caches in layers obs cannot depend on — e.g. the
    hot-path memo tables in [Core.Intern] — are cleared at the same
    boundary that scopes the metrics: a cache surviving a run would
    leak work (and hit/miss counters) between repetitions and break the
    [-j 1] vs [-j N] determinism contract. Hooks are global and
    permanent; register once at module initialization. *)
