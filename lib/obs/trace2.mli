(** Structured event tracing (Trace v2) with JSONL export.

    The successor of the string-based [Net.Trace] sink (which is now a
    thin compatibility wrapper over this module): every event carries
    typed key/value fields instead of a pre-rendered detail string, so
    traces can be exported as JSONL and re-analysed offline
    ([turquois-lab analyze]). Same sink discipline as v1: one
    process-global buffer, off by default, bounded by [limit], cleared
    per run by the harness. *)

type field = S of string | I of int | F of float | B of bool

type event = {
  time : float;
  node : int;  (** -1 when not attributable to one node *)
  layer : string;  (** "radio", "mac", "rlink", "turquois", "run", ... *)
  label : string;  (** short event class, e.g. "tx", "omission", "phase" *)
  fields : (string * field) list;
}

val start : ?limit:int -> unit -> unit
(** Enables collection; at most [limit] events are kept (default
    100_000; afterwards new events are counted but dropped). *)

val stop : unit -> unit
val enabled : unit -> bool
val clear : unit -> unit

val emit :
  time:float -> node:int -> layer:string -> label:string -> (string * field) list -> unit

val events : unit -> event list
(** Collected events in emission (= time) order. *)

val dropped : unit -> int

val field_to_string : field -> string
val fields_to_string : (string * field) list -> string
(** ["k=v k2=v2"]; a field named ["detail"] prints its bare value (v1
    compatibility). *)

(** {2 JSONL}

    One event per line:
    [{"t":0.012,"node":3,"layer":"radio","label":"tx","f":{"class":"bcast","bytes":93,...}}] *)

val event_to_json : event -> Json.t
val event_of_json : Json.t -> (event, string) result
val to_jsonl_line : event -> string
val parse_line : string -> (event, string) result

val schema_version : int
(** Version of the exported event vocabulary. Exports start with a
    pseudo-event line [{"layer":"trace","label":"schema",...}] carrying
    it; [load_file] rejects files whose header names a different
    version. *)

val export_channel : out_channel -> int
(** Writes a schema header line, then the collected events as JSONL;
    returns the event count (header excluded). *)

val export_file : string -> int

val load_file : string -> (event list * int, string) result
(** Events plus the count of unparseable lines (tolerated and
    skipped). The schema header, when present, is checked against
    {!schema_version} — a mismatch is an [Error] — and filtered from
    the returned events; headerless legacy traces are accepted. *)
