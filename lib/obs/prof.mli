(** Opt-in hot-path span profiler (host wall clock, domain-local).

    Instrumented sites bracket a region with
    [let t0 = Prof.start () in ... ; Prof.stop span t0]; when profiling
    is disabled [start] returns a negative sentinel and [stop] is a
    no-op. The profiler is strictly an observer: it never touches the
    simulation clock, the RNG, or the per-run metrics registry, so
    profiling on/off — at any [-j] — yields bit-identical protocol
    results (enforced by [test_hotpath]).

    Latencies land in log2(ns) buckets: bucket [b] counts durations in
    [[2^b, 2^(b+1)) ns]. Accumulators are domain-local and reset at
    every run boundary while profiling is on, so a snapshot taken after
    a run covers exactly that run. *)

type span = private int

val decode : span  (** [Core.Intern.decode] — frame decode (memo or plain) *)

val verify : span  (** [Core.Intern.check_message] — one-time-signature check *)

val mac_contention : span
(** [Net.Mac] — contention resolution and frame transmit *)

val engine_pop : span  (** [Net.Engine.step] — event heap pop *)

val vset_tally : span  (** [Core.Vset.add] — insert plus incremental tallies *)

val register : string -> span
(** Registers an additional span name; call at module initialization. *)

val span_name : span -> string

val on : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val with_profiling : bool -> (unit -> 'a) -> 'a
(** Runs [f] with profiling forced to the given state, restoring the
    previous state afterwards (also on raise). *)

val start : unit -> float
(** Timestamp when profiling is on, a negative sentinel otherwise. *)

val stop : span -> float -> unit
(** [stop span t0] records [now - t0] against [span]; no-op when [t0]
    is the sentinel. *)

val reset : unit -> unit
(** Zeroes this domain's accumulators. *)

type stat = {
  name : string;
  count : int;
  total_ns : float;
  max_ns : float;
  buckets : int array;
}

val snapshot : unit -> stat list
(** All registered spans (count 0 when never hit), this domain only. *)

val bucket_quantile : stat -> float -> float
(** Upper bucket edge (ns) for the given quantile, 0 when empty. *)

val render_table : stat list -> string
val to_json : stat list -> Json.t
