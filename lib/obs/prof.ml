(* Hot-path span profiler: opt-in, domain-local, host-wall-clock only.

   A span is a named region of the receive/simulation hot path (frame
   decode, signature verify, MAC contention, engine pop, Vset tally).
   Instrumented call sites bracket the region with [start]/[stop]; when
   profiling is off [start] returns a sentinel and [stop] is a no-op,
   so the cost of a disabled site is one Atomic.get and one float
   compare — cheap enough to leave in the hottest loops.

   Everything the profiler touches is host-side: it never reads the
   simulation clock, never draws from an RNG, and never writes a metric
   into the per-run registry. That is the profiling contract the tests
   enforce — profiler on/off and -j 1/-j N produce bit-identical
   protocol results; only this module's own snapshot differs.

   Latencies land in log2 buckets over nanoseconds (bucket b holds
   durations in [2^b, 2^(b+1)) ns), so one fixed 40-slot array per span
   covers sub-microsecond decodes and multi-millisecond stalls alike. *)

let bucket_count = 40

type acc = {
  mutable count : int;
  mutable total_ns : float;
  mutable max_ns : float;
  buckets : int array; (* log2(ns) histogram *)
}

(* Span ids are dense ints handed out at registration; the built-in
   hot-path spans are registered here so instrumented layers can refer
   to them without string lookups. Registration happens at module
   initialization on the main domain. *)
let names : string list Atomic.t = Atomic.make []

let register name =
  let rec add () =
    let current = Atomic.get names in
    if Atomic.compare_and_set names current (current @ [ name ]) then
      List.length current
    else add ()
  in
  add ()

type span = int

let decode : span = register "hotpath.decode"
let verify : span = register "hotpath.verify"
let mac_contention : span = register "hotpath.mac_contention"
let engine_pop : span = register "hotpath.engine_pop"
let vset_tally : span = register "hotpath.vset_tally"

let span_name s = List.nth (Atomic.get names) s

(* global on/off toggle, like Core.Intern's memo switch *)
let on_flag = Atomic.make false
let on () = Atomic.get on_flag
let enable () = Atomic.set on_flag true
let disable () = Atomic.set on_flag false

let with_profiling flag f =
  let previous = on () in
  Atomic.set on_flag flag;
  Fun.protect ~finally:(fun () -> Atomic.set on_flag previous) f

(* accumulators are domain-local: a run is single-threaded within its
   domain, and pool workers must not contend on shared counters *)
let accs_key : acc array ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [||])

let fresh_acc () =
  { count = 0; total_ns = 0.0; max_ns = 0.0; buckets = Array.make bucket_count 0 }

let accs () =
  let cell = Domain.DLS.get accs_key in
  let want = List.length (Atomic.get names) in
  if Array.length !cell < want then begin
    let bigger = Array.init want (fun i ->
        if i < Array.length !cell then !cell.(i) else fresh_acc ())
    in
    cell := bigger
  end;
  !cell

let reset () =
  Array.iter
    (fun a ->
      a.count <- 0;
      a.total_ns <- 0.0;
      a.max_ns <- 0.0;
      Array.fill a.buckets 0 bucket_count 0)
    (accs ())

let off_sentinel = -1.0

let start () = if on () then Unix.gettimeofday () else off_sentinel

let bucket_of_ns ns =
  if ns < 1.0 then 0
  else min (bucket_count - 1) (int_of_float (Float.log2 ns))

let stop span t0 =
  if t0 >= 0.0 then begin
    let ns = (Unix.gettimeofday () -. t0) *. 1.0e9 in
    let ns = Float.max 0.0 ns in
    let a = (accs ()).(span) in
    a.count <- a.count + 1;
    a.total_ns <- a.total_ns +. ns;
    if ns > a.max_ns then a.max_ns <- ns;
    a.buckets.(bucket_of_ns ns) <- a.buckets.(bucket_of_ns ns) + 1
  end

(* --- snapshots ----------------------------------------------------------- *)

type stat = {
  name : string;
  count : int;
  total_ns : float;
  max_ns : float;
  buckets : int array;
}

let snapshot () =
  let accs = accs () in
  Atomic.get names
  |> List.mapi (fun i name ->
         let a = if i < Array.length accs then accs.(i) else fresh_acc () in
         {
           name;
           count = a.count;
           total_ns = a.total_ns;
           max_ns = a.max_ns;
           buckets = Array.copy a.buckets;
         })

(* order statistic out of the log buckets: the value reported for a
   quantile is the upper edge of the bucket it falls in *)
let bucket_quantile st q =
  if st.count = 0 then 0.0
  else begin
    let target = int_of_float (Float.of_int st.count *. q) in
    let seen = ref 0 and result = ref 0.0 in
    (try
       Array.iteri
         (fun b c ->
           seen := !seen + c;
           if c > 0 then result := Float.pow 2.0 (float_of_int (b + 1));
           if !seen > target then raise Exit)
         st.buckets
     with Exit -> ());
    !result
  end

let format_ns ns =
  if ns >= 1.0e9 then Printf.sprintf "%.2f s" (ns /. 1.0e9)
  else if ns >= 1.0e6 then Printf.sprintf "%.2f ms" (ns /. 1.0e6)
  else if ns >= 1.0e3 then Printf.sprintf "%.1f us" (ns /. 1.0e3)
  else Printf.sprintf "%.0f ns" ns

let render_table stats =
  let rows =
    List.filter_map
      (fun st ->
        if st.count = 0 then None
        else
          Some
            [
              st.name;
              string_of_int st.count;
              format_ns st.total_ns;
              format_ns (st.total_ns /. float_of_int st.count);
              format_ns (bucket_quantile st 0.5);
              format_ns (bucket_quantile st 0.99);
              format_ns st.max_ns;
            ])
      stats
  in
  if rows = [] then "  no spans recorded (profiling off, or nothing ran)\n"
  else
    Util.Tablefmt.render
      ~header:[ "span"; "count"; "total"; "mean"; "p50<"; "p99<"; "max" ]
      ~rows ()

let to_json stats =
  Json.List
    (List.map
       (fun st ->
         Json.Obj
           [
             ("span", Json.String st.name);
             ("count", Json.Int st.count);
             ("total_ns", Json.Float st.total_ns);
             ("max_ns", Json.Float st.max_ns);
             ( "log2_ns_buckets",
               Json.List (Array.to_list (Array.map (fun c -> Json.Int c) st.buckets)) );
           ])
       stats)

(* per-run scoping: like the memo caches, span accumulators reset at
   every run boundary so a profile read after a run covers exactly that
   run *)
let () = Scope.at_run_start (fun () -> if on () then reset ())
