(** Minimal JSON tree, printer and parser.

    Deliberately dependency-free: the observability layer exports metric
    snapshots and JSONL traces and must read them back in [analyze]
    without pulling a JSON package into the build. Integers and floats
    are kept distinct by syntax — a [Float] always prints with a ['.']
    or an exponent, so values round-trip through {!to_string} and
    {!parse}. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. Non-finite floats print as
    [null]. *)

val parse : string -> (t, string) result

(** {2 Accessors} — all total, returning [None] on shape mismatch. *)

val member : string -> t -> t option
val to_int : t -> int option
val to_float : t -> float option
(** [to_float] also accepts [Int]. *)

val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
