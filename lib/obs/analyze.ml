(* Offline reconstruction of a run from its JSONL trace: medium
   breakdown, per-phase timeline, and the stall report that checks each
   inter-phase window against the paper's sigma progress bound. *)

let sigma ~n ~k ~t = (((n - t + 1) / 2) * (n - k - t)) + k - 2

let field_int fields key =
  match List.assoc_opt key fields with
  | Some (Trace2.I i) -> Some i
  | Some (Trace2.F f) -> Some (int_of_float f)
  | _ -> None

let field_float fields key =
  match List.assoc_opt key fields with
  | Some (Trace2.F f) -> Some f
  | Some (Trace2.I i) -> Some (float_of_int i)
  | _ -> None

let field_str fields key =
  match List.assoc_opt key fields with Some (Trace2.S s) -> Some s | _ -> None

type meta = {
  m_protocol : string;
  m_load : string;
  m_dist : string;
  m_seed : string;
  m_n : int option;
  m_k : int option;
  m_t : int option;
  m_tick : float; (* seconds per communication round *)
  m_crashed : string;
}

let default_meta =
  {
    m_protocol = "?";
    m_load = "?";
    m_dist = "?";
    m_seed = "?";
    m_n = None;
    m_k = None;
    m_t = None;
    m_tick = 10.0e-3;
    m_crashed = "";
  }

let read_meta events =
  match List.find_opt (fun e -> e.Trace2.layer = "run" && e.Trace2.label = "meta") events with
  | None -> default_meta
  | Some e ->
      let f = e.Trace2.fields in
      {
        m_protocol = Option.value ~default:"?" (field_str f "protocol");
        m_load = Option.value ~default:"?" (field_str f "load");
        m_dist = Option.value ~default:"?" (field_str f "dist");
        m_seed = Option.value ~default:"?" (field_str f "seed");
        m_n = field_int f "n";
        m_k = field_int f "k";
        m_t = field_int f "t";
        m_tick = Option.value ~default:10.0e-3 (field_float f "tick_s");
        m_crashed = Option.value ~default:"" (field_str f "crashed");
      }

(* --- medium breakdown ---------------------------------------------------- *)

type class_acc = {
  mutable frames : int;
  mutable airtime : float;
  mutable bytes : int;
  mutable collided : int;
}

let medium_breakdown events =
  let classes : (string, class_acc) Hashtbl.t = Hashtbl.create 4 in
  let acc cls =
    match Hashtbl.find_opt classes cls with
    | Some a -> a
    | None ->
        let a = { frames = 0; airtime = 0.0; bytes = 0; collided = 0 } in
        Hashtbl.add classes cls a;
        a
  in
  let jammed = ref 0 in
  let omissions : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let omission_total = ref 0 in
  List.iter
    (fun e ->
      if e.Trace2.layer = "radio" then
        match e.Trace2.label with
        | "tx" ->
            let cls = Option.value ~default:"?" (field_str e.fields "class") in
            let a = acc cls in
            a.frames <- a.frames + 1;
            a.airtime <- a.airtime +. (Option.value ~default:0.0 (field_float e.fields "us") /. 1.0e6);
            a.bytes <- a.bytes + Option.value ~default:0 (field_int e.fields "bytes");
            (match List.assoc_opt "collision" e.fields with
            | Some (Trace2.B true) -> a.collided <- a.collided + 1
            | _ -> ())
        | "jammed" -> incr jammed
        | "omission" ->
            incr omission_total;
            let rx = Option.value ~default:(-1) (field_int e.fields "rx") in
            Hashtbl.replace omissions rx (1 + Option.value ~default:0 (Hashtbl.find_opt omissions rx))
        | _ -> ())
    events;
  let rows =
    Hashtbl.fold (fun cls a l -> (cls, a) :: l) classes []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let total_air = List.fold_left (fun s (_, a) -> s +. a.airtime) 0.0 rows in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Medium breakdown (from radio-layer trace events)\n";
  if rows = [] then Buffer.add_string buf "  no radio tx events in trace\n"
  else begin
    let table_rows =
      List.map
        (fun (cls, a) ->
          [
            cls;
            string_of_int a.frames;
            Printf.sprintf "%.2f" (a.airtime *. 1000.0);
            Printf.sprintf "%.0f%%" (if total_air > 0.0 then 100.0 *. a.airtime /. total_air else 0.0);
            Printf.sprintf "%.1f" (float_of_int a.bytes /. 1024.0);
            string_of_int a.collided;
          ])
        rows
    in
    Buffer.add_string buf
      (Util.Tablefmt.render
         ~header:[ "frame class"; "frames"; "airtime ms"; "share"; "kB"; "collided" ]
         ~rows:table_rows ())
  end;
  Buffer.add_string buf
    (Printf.sprintf "  jammed frames: %d;  per-receiver omission drops: %d total\n" !jammed
       !omission_total);
  let by_rx =
    Hashtbl.fold (fun rx c l -> (rx, c) :: l) omissions [] |> List.sort compare
  in
  if by_rx <> [] then
    Buffer.add_string buf
      ("  omissions by receiver: "
      ^ String.concat " "
          (List.map (fun (rx, c) -> Printf.sprintf "p%d:%d" rx c) by_rx)
      ^ "\n");
  (Buffer.contents buf, !omission_total)

(* --- ordered-log summary ---------------------------------------------------- *)

(* Traces from a consensus-service run additionally carry "log"-layer
   events (commit/skip/deliver/noop/forged, one per slot per node);
   summarise slot outcomes and per-node delivery progress so a straggler
   or an injection attempt is visible at a glance. *)
let log_section events =
  let logs = List.filter (fun e -> e.Trace2.layer = "log") events in
  if logs = [] then ""
  else begin
    let count label =
      List.length (List.filter (fun e -> e.Trace2.label = label) logs)
    in
    let per_node label =
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun e ->
          if e.Trace2.label = label then
            Hashtbl.replace tbl e.Trace2.node
              (1 + Option.value ~default:0 (Hashtbl.find_opt tbl e.Trace2.node)))
        logs;
      Hashtbl.fold (fun node c l -> (node, c) :: l) tbl [] |> List.sort compare
    in
    let buf = Buffer.create 512 in
    Buffer.add_string buf "Ordered log (from log-layer trace events)\n";
    Buffer.add_string buf
      (Printf.sprintf
         "  slot outcomes across nodes: %d committed, %d skipped, %d proposer no-ops\n"
         (count "commit") (count "skip") (count "noop"));
    let delivered = per_node "deliver" in
    if delivered <> [] then
      Buffer.add_string buf
        ("  deliveries by node: "
        ^ String.concat " "
            (List.map (fun (node, c) -> Printf.sprintf "p%d:%d" node c) delivered)
        ^ "\n");
    let forged = count "forged" in
    if forged > 0 then
      Buffer.add_string buf
        (Printf.sprintf
           "  REJECTED PAYLOAD INJECTIONS: %d unvouched non-proposer payload(s) ignored\n"
           forged);
    Buffer.contents buf
  end

(* --- per-phase timeline --------------------------------------------------- *)

(* (phase/round number, node) -> first entry time, from the protocol
   layers' "phase" / "round" transition events. *)
let phase_entries events =
  let entries : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
  let decides : (int, float * int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match e.Trace2.label with
      | "phase" | "round" -> (
          let num =
            match field_int e.fields "phase" with
            | Some p -> Some p
            | None -> field_int e.fields "round"
          in
          match num with
          | Some p ->
              let key = (p, e.node) in
              if not (Hashtbl.mem entries key) then Hashtbl.replace entries key e.time
          | None -> ())
      | "decide" ->
          if not (Hashtbl.mem decides e.node) then
            Hashtbl.replace decides e.node
              (e.time, Option.value ~default:0 (field_int e.fields "value"))
      | _ -> ())
    events;
  (entries, decides)

let timeline ~n entries decides =
  let phases =
    Hashtbl.fold (fun (p, _) _ acc -> if List.mem p acc then acc else p :: acc) entries []
    |> List.sort compare
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Per-phase timeline (ms at which each node first entered the phase)\n";
  if phases = [] then Buffer.add_string buf "  no phase/round transition events in trace\n"
  else begin
    let nodes = List.init n (fun i -> i) in
    let header = "phase" :: List.map (fun i -> Printf.sprintf "p%d" i) nodes in
    let rows =
      List.map
        (fun p ->
          string_of_int p
          :: List.map
               (fun i ->
                 match Hashtbl.find_opt entries (p, i) with
                 | Some t -> Printf.sprintf "%.1f" (t *. 1000.0)
                 | None -> "-")
               nodes)
        phases
    in
    let decide_row =
      "decide"
      :: List.map
           (fun i ->
             match Hashtbl.find_opt decides i with
             | Some (t, v) -> Printf.sprintf "%.1f=%d" (t *. 1000.0) v
             | None -> "-")
           nodes
    in
    Buffer.add_string buf (Util.Tablefmt.render ~header ~rows:(rows @ [ decide_row ]) ())
  end;
  Buffer.contents buf

(* --- injected-fault attribution ------------------------------------------- *)

(* Everything the fault-injection layer emits — Fault.crash/recover,
   Schedule.apply actions, jam windows, the sigma-edge adversary — lands
   on the "fault" trace layer, so stall windows can be attributed to the
   faults that overlap them. *)

let describe_fault (e : Trace2.event) =
  let f = e.fields in
  let node = match field_int f "node" with Some i -> i | None -> e.node in
  let pct key = 100.0 *. Option.value ~default:0.0 (field_float f key) in
  let tag =
    match e.label with
    | "crash" -> Printf.sprintf "crash p%d" node
    | "recover" -> Printf.sprintf "recover p%d" node
    | "set_loss" -> Printf.sprintf "loss=%.0f%%" (pct "p")
    | "set_rx_loss" ->
        Printf.sprintf "rx-loss p%d=%.0f%%"
          (Option.value ~default:(-1) (field_int f "rx"))
          (pct "p")
    | "set_link_loss" ->
        Printf.sprintf "link-loss p%d->p%d=%.0f%%"
          (Option.value ~default:(-1) (field_int f "tx"))
          (Option.value ~default:(-1) (field_int f "rx"))
          (pct "p")
    | "jam" | "jam_window" -> "jamming"
    | "jam_rx" ->
        Printf.sprintf "jam p%d" (Option.value ~default:(-1) (field_int f "rx"))
    | "rx_delay" ->
        Printf.sprintf "rx-delay p%d"
          (Option.value ~default:(-1) (field_int f "rx"))
    | "sigma_edge" ->
        Printf.sprintf "sigma-edge adversary (%d drops/round on p{%s})"
          (Option.value ~default:0 (field_int f "budget"))
          (Option.value ~default:"?" (field_str f "victims"))
    | l -> l
  in
  Printf.sprintf "%s @%.1fms" tag (e.time *. 1000.0)

let fault_events events = List.filter (fun e -> e.Trace2.layer = "fault") events

let faults_in faults ~from ~until =
  List.filter (fun e -> e.Trace2.time >= from && e.Trace2.time < until) faults
  |> List.map describe_fault

(* Injected faults from before [time] that are still in force at [time]:
   the latest non-zero loss overlays, unrecovered crashes, jamming or
   delay windows reaching past [time], and any installed sigma-edge
   filter (filters are never uninstalled). *)
let active_faults_at faults ~time =
  let before = List.filter (fun e -> e.Trace2.time < time) faults in
  let latest label key =
    (* last event with this label, keyed by an int field (or -1) *)
    List.fold_left
      (fun acc e ->
        if e.Trace2.label = label then
          let k = Option.value ~default:(-1) (field_int e.fields key) in
          (k, e) :: List.remove_assoc k acc
        else acc)
      [] before
  in
  let nonzero (_, e) = Option.value ~default:0.0 (field_float e.Trace2.fields "p") > 0.0 in
  let losses = List.filter nonzero (latest "set_loss" "none") in
  let rx_losses = List.filter nonzero (latest "set_rx_loss" "rx") in
  let link_losses =
    (* keyed per (tx, rx); fold manually since `latest` keys on one field *)
    List.fold_left
      (fun acc e ->
        if e.Trace2.label = "set_link_loss" then
          let k =
            ( Option.value ~default:(-1) (field_int e.fields "tx"),
              Option.value ~default:(-1) (field_int e.fields "rx") )
          in
          (k, e) :: List.remove_assoc k acc
        else acc)
      [] before
    |> List.filter (fun (_, e) ->
           Option.value ~default:0.0 (field_float e.Trace2.fields "p") > 0.0)
  in
  let crashes =
    List.fold_left
      (fun acc e ->
        let node =
          match field_int e.Trace2.fields "node" with Some i -> i | None -> e.Trace2.node
        in
        match e.Trace2.label with
        | "crash" -> (node, e) :: List.remove_assoc node acc
        | "recover" -> List.remove_assoc node acc
        | _ -> acc)
      [] before
  in
  let windows =
    List.filter
      (fun e ->
        (e.Trace2.label = "jam" || e.Trace2.label = "jam_window"
        || e.Trace2.label = "jam_rx" || e.Trace2.label = "rx_delay")
        && Option.value ~default:0.0 (field_float e.Trace2.fields "until") > time)
      before
  in
  let adversaries = List.filter (fun e -> e.Trace2.label = "sigma_edge") before in
  let snd_events l = List.map (fun (_, e) -> e) l in
  List.map describe_fault
    (snd_events losses @ snd_events rx_losses @ snd_events link_losses
   @ snd_events crashes @ windows @ adversaries)

(* --- stall report --------------------------------------------------------- *)

let omissions_in events ~from ~until =
  List.fold_left
    (fun acc e ->
      if
        e.Trace2.layer = "radio" && e.Trace2.label = "omission" && e.Trace2.time >= from
        && e.Trace2.time < until
      then acc + 1
      else acc)
    0 events

(* Per-window statistics, shared by the stall report and the causal
   attribution: each consecutive pair of global phase-entry times is a
   window, flagged when its per-round omission load exceeds sigma or
   its duration is an outlier. *)
type window_stat = {
  w_phase : int;
  w_next : int; (* phase whose first entry closes the window *)
  w_from : float;
  w_until : float;
  w_dur : float;
  w_rounds : int;
  w_om : int;
  w_per_round : float;
  w_exceeds : bool;
  w_stalled : bool;
}

let window_stats ~bound ~tick events entries =
  (* global entry time of each phase: the first node to reach it *)
  let phase_start : (int, float) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (p, _) time ->
      match Hashtbl.find_opt phase_start p with
      | Some t0 when t0 <= time -> ()
      | _ -> Hashtbl.replace phase_start p time)
    entries;
  let phases =
    Hashtbl.fold (fun p t0 acc -> (p, t0) :: acc) phase_start [] |> List.sort compare
  in
  let rec windows = function
    | (p, t0) :: ((p', t1) :: _ as rest) -> (p, p', t0, t1) :: windows rest
    | [ _ ] | [] -> []
  in
  let ws = windows phases in
  let durations = List.map (fun (_, _, t0, t1) -> t1 -. t0) ws in
  (* traces with < 2 phase entries (e.g. fault-only runs) have no windows *)
  let median = if durations = [] then 0.0 else Util.Stats.percentile durations 0.5 in
  let stats =
    List.map
      (fun (p, p', t0, t1) ->
        let dur = t1 -. t0 in
        let rounds = max 1 (int_of_float (Float.round (dur /. tick))) in
        let om = omissions_in events ~from:t0 ~until:t1 in
        let per_round = float_of_int om /. float_of_int rounds in
        {
          w_phase = p;
          w_next = p';
          w_from = t0;
          w_until = t1;
          w_dur = dur;
          w_rounds = rounds;
          w_om = om;
          w_per_round = per_round;
          w_exceeds = per_round > float_of_int bound;
          w_stalled = dur > 3.0 *. median && dur > 2.0 *. tick;
        })
      ws
  in
  (stats, median)

let stall_report ~n ~k ~t ~tick events entries =
  let bound = sigma ~n ~k ~t in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "Stall report: sigma = ceil((n-t)/2)*(n-k-t) + k - 2 = %d omissions/round (n=%d k=%d \
        t=%d); one round = one %.0f ms tick\n"
       bound n k t (tick *. 1000.0));
  let ws, median = window_stats ~bound ~tick events entries in
  if ws = [] then begin
    Buffer.add_string buf
      "  fewer than two phase transitions in trace: no inter-phase windows to check\n";
    Buffer.contents buf
  end
  else begin
    let rows =
      List.map
        (fun w ->
          [
            string_of_int w.w_phase;
            Printf.sprintf "%.1f" (w.w_from *. 1000.0);
            Printf.sprintf "%.1f" (w.w_dur *. 1000.0);
            string_of_int w.w_rounds;
            string_of_int w.w_om;
            Printf.sprintf "%.1f" w.w_per_round;
            (if w.w_exceeds then "EXCEEDS sigma" else if w.w_stalled then "STALL" else "ok");
          ])
        ws
    in
    Buffer.add_string buf
      (Util.Tablefmt.render
         ~header:[ "phase"; "start ms"; "window ms"; "rounds"; "omissions"; "om/round"; "verdict" ]
         ~rows ());
    (match List.filter (fun w -> w.w_exceeds || w.w_stalled) ws with
    | [] ->
        Buffer.add_string buf
          (Printf.sprintf
             "  no stalled rounds: the per-round omission load stayed under sigma = %d in \
              every window\n"
             bound)
    | stalls ->
        let faults = fault_events events in
        List.iter
          (fun w ->
            Buffer.add_string buf
              (if w.w_exceeds then
                 Printf.sprintf
                   "  phase %d stalled for %.1f ms: %d omissions (%.1f/round) exceed sigma = \
                    %d — the Section 5 bound says progress can halt under this load\n"
                   w.w_phase (w.w_dur *. 1000.0) w.w_om w.w_per_round bound
               else
                 Printf.sprintf
                   "  phase %d stalled for %.1f ms (>3x the %.1f ms median window) with %d \
                    omissions (%.1f/round, sigma = %d): slow but within the liveness bound\n"
                   w.w_phase (w.w_dur *. 1000.0) (median *. 1000.0) w.w_om w.w_per_round bound);
            let active = active_faults_at faults ~time:w.w_from in
            let injected = faults_in faults ~from:w.w_from ~until:w.w_until in
            if active = [] && injected = [] then
              Buffer.add_string buf
                "    no injected faults overlap this window (ambient loss / collisions)\n"
            else begin
              if active <> [] then
                Buffer.add_string buf
                  ("    injected faults in force at window start: "
                  ^ String.concat "; " active ^ "\n");
              if injected <> [] then
                Buffer.add_string buf
                  ("    injected during the window: " ^ String.concat "; " injected
                 ^ "\n")
            end)
          stalls);
    Buffer.contents buf
  end

(* --- entry points --------------------------------------------------------- *)

let resolve_params ?n ?k ?t meta events =
  let observed_n =
    1 + List.fold_left (fun acc e -> max acc e.Trace2.node) (-1) events
  in
  let n = match (n, meta.m_n) with Some v, _ -> v | None, Some v -> v | None, None -> max 1 observed_n in
  let f_default = (n - 1) / 3 in
  let k = match (k, meta.m_k) with Some v, _ -> v | None, Some v -> v | None, None -> n - f_default in
  let t = match (t, meta.m_t) with Some v, _ -> v | None, Some v -> v | None, None -> 0 in
  (n, k, t)

let analyze ?n ?k ?t events =
  let meta = read_meta events in
  let n, k, t = resolve_params ?n ?k ?t meta events in
  let buf = Buffer.create 4096 in
  let times = List.map (fun e -> e.Trace2.time) events in
  let span =
    match times with
    | [] -> 0.0
    | t0 :: _ -> List.fold_left Float.max t0 times -. List.fold_left Float.min t0 times
  in
  Buffer.add_string buf
    (Printf.sprintf "Trace analysis: %s n=%d %s %s (seed %s)\n" meta.m_protocol n meta.m_dist
       meta.m_load meta.m_seed);
  Buffer.add_string buf
    (Printf.sprintf "  %d events spanning %.1f ms; k=%d t=%d%s\n\n" (List.length events)
       (span *. 1000.0) k t
       (if meta.m_crashed = "" then "" else "; crashed: " ^ meta.m_crashed));
  let medium, _omissions = medium_breakdown events in
  Buffer.add_string buf medium;
  Buffer.add_char buf '\n';
  (match log_section events with
  | "" -> ()
  | s ->
      Buffer.add_string buf s;
      Buffer.add_char buf '\n');
  let entries, decides = phase_entries events in
  Buffer.add_string buf (timeline ~n entries decides);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (stall_report ~n ~k ~t ~tick:meta.m_tick events entries);
  Buffer.contents buf

(* --- causal report -------------------------------------------------------- *)

(* Decision justification chains and stall-window drop attribution over
   the happens-before DAG ([Causal.build]). Where the stall report says
   "this window exceeded sigma while jamming was active" (correlation),
   this names the dropped messages whose delivery the lagging receivers
   were missing (causation). *)
let causal ?n ?k ?t events =
  let meta = read_meta events in
  let n, k, t = resolve_params ?n ?k ?t meta events in
  let dag = Causal.build events in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "Causal analysis: %d tagged sends, %d deliveries, %d drops in trace\n"
       (Hashtbl.length dag.Causal.sends)
       (List.length dag.Causal.delivers)
       (List.length dag.Causal.drops));
  if Hashtbl.length dag.Causal.sends = 0 then begin
    Buffer.add_string buf
      "  no message ids in trace: re-record with tracing on (ids are tagged at \
       Turquois.broadcast_state), or the protocol predates causal tagging\n";
    Buffer.contents buf
  end
  else begin
    (* decision chains *)
    let decided =
      Hashtbl.fold (fun node time acc -> (node, time) :: acc) dag.Causal.decides []
      |> List.sort compare
    in
    Buffer.add_string buf "Decision justification chains\n";
    if decided = [] then Buffer.add_string buf "  no decisions in trace\n"
    else
      List.iter
        (fun (node, time) ->
          let chain = Causal.decision_chain dag ~node ~time in
          let phases =
            List.filter_map
              (fun m ->
                Option.map
                  (fun s -> s.Causal.s_phase)
                  (Hashtbl.find_opt dag.Causal.sends m))
              chain
          in
          let lo = List.fold_left min max_int phases
          and hi = List.fold_left max min_int phases in
          let tail =
            let rec last_k k l =
              let len = List.length l in
              if len <= k then l else last_k k (List.tl l)
            in
            last_k 3 chain
          in
          Buffer.add_string buf
            (Printf.sprintf "  p%d decided @%.1fms <- %d messages%s%s\n" node
               (time *. 1000.0) (List.length chain)
               (if phases = [] then ""
                else Printf.sprintf " across phases %d..%d" lo hi)
               (if tail = [] then ""
                else
                  "; latest: "
                  ^ String.concat ", " (List.map (Causal.describe_send dag) tail))))
        decided;
    (* stall attribution *)
    let entries, _ = phase_entries events in
    let bound = sigma ~n ~k ~t in
    let ws, _median = window_stats ~bound ~tick:meta.m_tick events entries in
    let stalls = List.filter (fun w -> w.w_exceeds || w.w_stalled) ws in
    Buffer.add_string buf "Stall-window drop attribution\n";
    if stalls = [] then
      Buffer.add_string buf "  no stall windows to attribute (see stall report)\n"
    else
      List.iter
        (fun w ->
          let nodes = List.init n (fun i -> i) in
          let lagging =
            List.filter
              (fun node ->
                match Hashtbl.find_opt entries (w.w_next, node) with
                | Some tm -> tm > w.w_until
                | None -> true)
              nodes
          in
          Buffer.add_string buf
            (Printf.sprintf
               "  phase %d window %.1f-%.1f ms (%s): receivers still behind at window \
                end: %s\n"
               w.w_phase (w.w_from *. 1000.0) (w.w_until *. 1000.0)
               (if w.w_exceeds then "exceeds sigma" else "stall")
               (if lagging = [] then "none"
                else String.concat "," (List.map (Printf.sprintf "p%d") lagging)));
          let chosen, uncovered =
            Causal.attribute dag ~lagging ~from:w.w_from ~until:w.w_until
          in
          if chosen = [] then begin
            (* no drop hit a lagging receiver; fall back to listing what
               was lost in the window at all *)
            match Causal.drops_in dag ~from:w.w_from ~until:w.w_until with
            | [] ->
                Buffer.add_string buf
                  "    no mid-tagged drops inside this window (contention or CPU \
                   backlog, not message loss)\n"
            | drops ->
                let rec take k = function
                  | x :: rest when k > 0 -> x :: take (k - 1) rest
                  | _ -> []
                in
                List.iter
                  (fun (d : Causal.drop) ->
                    Buffer.add_string buf
                      (Printf.sprintf "    lost in window: %s — %s%s\n"
                         (Causal.describe_send dag d.Causal.dr_mid)
                         d.Causal.dr_kind
                         (match d.Causal.dr_rx with
                         | Some rx -> Printf.sprintf " to p%d" rx
                         | None -> "")))
                  (take 5 drops)
          end
          else begin
            List.iter
              (fun (mid, kind, covered) ->
                Buffer.add_string buf
                  (Printf.sprintf "    %s — %s lost it to %s\n"
                     (Causal.describe_send dag mid) kind
                     (String.concat "," (List.map (Printf.sprintf "p%d") covered))))
              chosen;
            if uncovered <> [] then
              Buffer.add_string buf
                (Printf.sprintf
                   "    lagging for other reasons (no in-window drop): %s\n"
                   (String.concat "," (List.map (Printf.sprintf "p%d") uncovered)))
          end)
        stalls;
    Buffer.contents buf
  end
