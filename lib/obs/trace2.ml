type field = S of string | I of int | F of float | B of bool

type event = {
  time : float;
  node : int;
  layer : string;
  label : string;
  fields : (string * field) list;
}

type state = {
  mutable active : bool;
  mutable limit : int;
  mutable count : int;
  mutable dropped : int;
  mutable entries : event list; (* newest first *)
}

(* One buffer per domain: tracing stays race-free when the parallel run
   pool executes runs on worker domains. Workers start with tracing off
   (the [start] flag is domain-local too), which is why ordering-
   sensitive trace exports force sequential execution at the CLI. *)
let state_key : state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { active = false; limit = 0; count = 0; dropped = 0; entries = [] })

let state () = Domain.DLS.get state_key

let clear () =
  let state = state () in
  state.count <- 0;
  state.dropped <- 0;
  state.entries <- []

let start ?(limit = 100_000) () =
  clear ();
  let state = state () in
  state.limit <- limit;
  state.active <- true

let stop () = (state ()).active <- false
let enabled () = (state ()).active

let emit ~time ~node ~layer ~label fields =
  let state = state () in
  if state.active then begin
    if state.count < state.limit then begin
      state.entries <- { time; node; layer; label; fields } :: state.entries;
      state.count <- state.count + 1
    end
    else state.dropped <- state.dropped + 1
  end

let events () = List.rev (state ()).entries
let dropped () = (state ()).dropped

(* --- rendering ----------------------------------------------------------- *)

let field_to_string = function
  | S s -> s
  | I i -> string_of_int i
  | F f -> Printf.sprintf "%g" f
  | B b -> if b then "true" else "false"

let fields_to_string fields =
  String.concat " "
    (List.map
       (fun (k, v) -> if k = "detail" then field_to_string v else k ^ "=" ^ field_to_string v)
       fields)

(* --- JSONL --------------------------------------------------------------- *)

let field_to_json = function
  | S s -> Json.String s
  | I i -> Json.Int i
  | F f -> Json.Float f
  | B b -> Json.Bool b

let event_to_json e =
  Json.Obj
    [
      ("t", Json.Float e.time);
      ("node", Json.Int e.node);
      ("layer", Json.String e.layer);
      ("label", Json.String e.label);
      ("f", Json.Obj (List.map (fun (k, v) -> (k, field_to_json v)) e.fields));
    ]

let to_jsonl_line e = Json.to_string (event_to_json e)

let field_of_json = function
  | Json.String s -> Some (S s)
  | Json.Int i -> Some (I i)
  | Json.Float f -> Some (F f)
  | Json.Bool b -> Some (B b)
  | Json.Null | Json.List _ | Json.Obj _ -> None

let event_of_json json =
  let ( let* ) o f = match o with Some v -> f v | None -> Error "malformed trace event" in
  let* time = Option.bind (Json.member "t" json) Json.to_float in
  let* node = Option.bind (Json.member "node" json) Json.to_int in
  let* layer = Option.bind (Json.member "layer" json) Json.to_str in
  let* label = Option.bind (Json.member "label" json) Json.to_str in
  match Json.member "f" json with
  | Some (Json.Obj members) ->
      let fields =
        List.filter_map
          (fun (k, v) -> Option.map (fun f -> (k, f)) (field_of_json v))
          members
      in
      Ok { time; node; layer; label; fields }
  | Some _ -> Error "malformed trace event"
  | None -> Ok { time; node; layer; label; fields = [] }

let parse_line line =
  match Json.parse line with
  | Error msg -> Error msg
  | Ok json -> event_of_json json

(* Bumped whenever the event vocabulary changes incompatibly; exports
   carry it as a leading pseudo-event so [load_file] can refuse traces
   written by a different generation instead of mis-parsing them. *)
let schema_version = 2

let schema_header =
  {
    time = 0.0;
    node = -1;
    layer = "trace";
    label = "schema";
    fields = [ ("version", I schema_version) ];
  }

let is_schema_header e = e.layer = "trace" && e.label = "schema"

let export_channel oc =
  output_string oc (to_jsonl_line schema_header);
  output_char oc '\n';
  let n = ref 0 in
  List.iter
    (fun e ->
      output_string oc (to_jsonl_line e);
      output_char oc '\n';
      incr n)
    (events ());
  !n

let export_file path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> export_channel oc)

let load_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let events = ref [] in
          let skipped = ref 0 in
          let bad_version = ref None in
          (try
             while !bad_version = None do
               let line = input_line ic in
               if String.trim line <> "" then begin
                 match parse_line line with
                 | Ok e when is_schema_header e -> (
                     (* version check; headerless legacy traces load as-is *)
                     match List.assoc_opt "version" e.fields with
                     | Some (I v) when v = schema_version -> ()
                     | Some (I v) -> bad_version := Some v
                     | _ -> bad_version := Some (-1))
                 | Ok e -> events := e :: !events
                 | Error _ -> incr skipped
               end
             done
           with End_of_file -> ());
          match !bad_version with
          | Some v ->
              Error
                (Printf.sprintf
                   "%s: trace schema version %s; this build reads version %d — re-export \
                    the trace with a matching build"
                   path
                   (if v < 0 then "missing/malformed" else string_of_int v)
                   schema_version)
          | None -> Ok (List.rev !events, !skipped))
