type labels = (string * string) list

type hist_state = {
  hist : Util.Stats.Histogram.t;
  h_lo : float;
  h_hi : float;
  mutable h_sum : float;
}

type cell =
  | Cell_counter of int ref
  | Cell_gauge of float ref
  | Cell_hist of hist_state

(* One registry per domain, like the trace sink: a simulation run is
   single-threaded within its domain and scoped with {!reset} /
   [Scope.with_run]; the parallel run pool gives every worker domain
   its own registry and merges the per-run snapshots after join, so
   concurrent runs never contend for (or corrupt) a shared table.
   Keys carry labels in sorted order so call-site order is irrelevant. *)
let registry_key : (string * labels, cell) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 128)

let registry () = Domain.DLS.get registry_key

(* The receive pipeline's counters are almost all unlabeled; a separate
   string-keyed table spares those call sites the (name, labels) tuple
   allocation on every bump. *)
let unlabeled_key : (string, cell) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 128)

let unlabeled () = Domain.DLS.get unlabeled_key

let norm_labels labels = List.sort compare labels

let kind_name = function
  | Cell_counter _ -> "counter"
  | Cell_gauge _ -> "gauge"
  | Cell_hist _ -> "histogram"

let lookup name labels make =
  match labels with
  | [] -> (
      let unlabeled = unlabeled () in
      match Hashtbl.find_opt unlabeled name with
      | Some cell -> cell
      | None ->
          let cell = make () in
          Hashtbl.add unlabeled name cell;
          cell)
  | _ -> (
      let registry = registry () in
      let key = (name, norm_labels labels) in
      match Hashtbl.find_opt registry key with
      | Some cell -> cell
      | None ->
          let cell = make () in
          Hashtbl.add registry key cell;
          cell)

let type_clash name cell want =
  invalid_arg
    (Printf.sprintf "Metrics: %s is a %s, not a %s" name (kind_name cell) want)

let incr ?(by = 1) ?(labels = []) name =
  match lookup name labels (fun () -> Cell_counter (ref 0)) with
  | Cell_counter r -> r := !r + by
  | cell -> type_clash name cell "counter"

let set ?(labels = []) name v =
  match lookup name labels (fun () -> Cell_gauge (ref 0.0)) with
  | Cell_gauge r -> r := v
  | cell -> type_clash name cell "gauge"

let add ?(labels = []) name v =
  match lookup name labels (fun () -> Cell_gauge (ref 0.0)) with
  | Cell_gauge r -> r := !r +. v
  | cell -> type_clash name cell "gauge"

let observe ?(labels = []) ~lo ~hi ~bins name v =
  match
    lookup name labels (fun () ->
        Cell_hist { hist = Util.Stats.Histogram.create ~lo ~hi ~bins; h_lo = lo; h_hi = hi; h_sum = 0.0 })
  with
  | Cell_hist h ->
      Util.Stats.Histogram.add h.hist v;
      h.h_sum <- h.h_sum +. v
  | cell -> type_clash name cell "histogram"

let reset () =
  Hashtbl.reset (registry ());
  Hashtbl.reset (unlabeled ())

(* --- snapshots ----------------------------------------------------------- *)

type hist_snapshot = { lo : float; hi : float; counts : int array; total : int; sum : float }
type value = Counter of int | Gauge of float | Histogram of hist_snapshot
type sample = { name : string; labels : labels; value : value }
type snapshot = sample list

let cell_value = function
  | Cell_counter r -> Counter !r
  | Cell_gauge r -> Gauge !r
  | Cell_hist h ->
      Histogram
        {
          lo = h.h_lo;
          hi = h.h_hi;
          counts = Util.Stats.Histogram.counts h.hist;
          total = Util.Stats.Histogram.total h.hist;
          sum = h.h_sum;
        }

let snapshot () =
  let labeled =
    Hashtbl.fold
      (fun (name, labels) cell acc -> { name; labels; value = cell_value cell } :: acc)
      (registry ()) []
  in
  Hashtbl.fold
    (fun name cell acc -> { name; labels = []; value = cell_value cell } :: acc)
    (unlabeled ()) labeled
  |> List.sort (fun a b -> compare (a.name, a.labels) (b.name, b.labels))

let find snap ?(labels = []) name =
  let labels = norm_labels labels in
  List.find_opt (fun s -> s.name = name && s.labels = labels) snap

let counter_value snap ?labels name =
  match find snap ?labels name with Some { value = Counter c; _ } -> c | Some _ | None -> 0

let merge_values name a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x + y)
  | Gauge x, Gauge y -> Gauge (x +. y)
  | Histogram x, Histogram y
    when x.lo = y.lo && x.hi = y.hi && Array.length x.counts = Array.length y.counts ->
      Histogram
        {
          lo = x.lo;
          hi = x.hi;
          counts = Array.init (Array.length x.counts) (fun i -> x.counts.(i) + y.counts.(i));
          total = x.total + y.total;
          sum = x.sum +. y.sum;
        }
  | _ -> invalid_arg (Printf.sprintf "Metrics.merge: series %s has mismatched shapes" name)

let merge snaps =
  let tbl : (string * labels, value) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun snap ->
      List.iter
        (fun s ->
          let key = (s.name, s.labels) in
          match Hashtbl.find_opt tbl key with
          | None -> Hashtbl.add tbl key s.value
          | Some v -> Hashtbl.replace tbl key (merge_values s.name v s.value))
        snap)
    snaps;
  Hashtbl.fold (fun (name, labels) value acc -> { name; labels; value } :: acc) tbl []
  |> List.sort (fun a b -> compare (a.name, a.labels) (b.name, b.labels))

let sum_counters snap name =
  List.fold_left
    (fun acc s ->
      match s.value with Counter c when s.name = name -> acc + c | _ -> acc)
    0 snap

(* --- rendering ----------------------------------------------------------- *)

let labels_to_string labels =
  String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

let value_to_string = function
  | Counter c -> string_of_int c
  | Gauge g -> Printf.sprintf "%.6g" g
  | Histogram h ->
      Printf.sprintf "n=%d mean=%.4g [%g, %g)" h.total
        (if h.total = 0 then 0.0 else h.sum /. float_of_int h.total)
        h.lo h.hi

let render_table snap =
  let header = [ "metric"; "labels"; "value" ] in
  let rows =
    List.map (fun s -> [ s.name; labels_to_string s.labels; value_to_string s.value ]) snap
  in
  Util.Tablefmt.render ~header ~rows ()

let to_json snap =
  Json.List
    (List.map
       (fun s ->
         let base =
           [
             ("name", Json.String s.name);
             ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) s.labels));
           ]
         in
         let rest =
           match s.value with
           | Counter c -> [ ("type", Json.String "counter"); ("value", Json.Int c) ]
           | Gauge g -> [ ("type", Json.String "gauge"); ("value", Json.Float g) ]
           | Histogram h ->
               [
                 ("type", Json.String "histogram");
                 ("lo", Json.Float h.lo);
                 ("hi", Json.Float h.hi);
                 ("counts", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) h.counts)));
                 ("total", Json.Int h.total);
                 ("sum", Json.Float h.sum);
               ]
         in
         Json.Obj (base @ rest))
       snap)
