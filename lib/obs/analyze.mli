(** Offline analysis of a JSONL run trace ([turquois-lab analyze]).

    Reconstructs three views from the structured events of one run:

    - a medium breakdown: frames, airtime, bytes and collisions per
      frame class, plus jamming and per-receiver omission drops;
    - a per-phase timeline: when each node first entered each
      phase/round, and when it decided;
    - a stall report: each inter-phase window is checked against the
      paper's Section 5 progress bound
      [sigma = ceil((n-t)/2)*(n-k-t) + k - 2] (omissions per
      communication round, one round = one tick), flagging windows
      whose per-round omission load exceeds sigma and windows that
      stalled well past the median.

    Run parameters are read from the trace's [run/meta] event when
    present; [?n]/[?k]/[?t] override them. *)

val sigma : n:int -> k:int -> t:int -> int

val analyze : ?n:int -> ?k:int -> ?t:int -> Trace2.event list -> string

val causal : ?n:int -> ?k:int -> ?t:int -> Trace2.event list -> string
(** Causal upgrade of the stall report ([analyze --causal]): rebuilds
    the happens-before DAG from mid-tagged events ({!Causal.build}),
    prints each decision's justification chain, and attributes every
    stall window to the dropped/jammed messages whose delivery the
    lagging receivers were missing. Degrades to a well-formed notice on
    traces without message ids. *)
