(** Labeled metrics registry for the simulation stack.

    A process-global registry of counters, gauges and fixed-bin
    histograms, identified by a metric name plus an optional label set
    (e.g. [incr "radio.tx" ~labels:[("class", "bcast")]]). Label order
    is irrelevant — labels are canonicalised by sorting — so two call
    sites with permuted labels update the same series.

    Metrics are always on (an update is one hashtable probe), and the
    registry is scoped per run: {!reset} drops everything, {!snapshot}
    captures an immutable, deterministically ordered view. [Runner.run]
    resets at the start of every repetition so runs never bleed into
    each other; use [Scope.with_run] for the same discipline in custom
    harnesses. *)

type labels = (string * string) list

(** {2 Updates} *)

val incr : ?by:int -> ?labels:labels -> string -> unit
(** Bumps a counter, creating it at 0 on first use. Raises
    [Invalid_argument] if the series already exists with another
    type. *)

val set : ?labels:labels -> string -> float -> unit
(** Sets a gauge. *)

val add : ?labels:labels -> string -> float -> unit
(** Accumulates into a gauge (e.g. seconds of airtime). *)

val observe : ?labels:labels -> lo:float -> hi:float -> bins:int -> string -> float -> unit
(** Records a value into a fixed-bin histogram; [lo]/[hi]/[bins] take
    effect when the series is first created. *)

val reset : unit -> unit
(** Drops every series. Called at the start of each simulated run. *)

(** {2 Snapshots} *)

type hist_snapshot = {
  lo : float;
  hi : float;
  counts : int array;
  total : int;
  sum : float;
}

type value = Counter of int | Gauge of float | Histogram of hist_snapshot
type sample = { name : string; labels : labels; value : value }

type snapshot = sample list
(** Sorted by (name, labels): identical seeds produce structurally
    equal snapshots. *)

val snapshot : unit -> snapshot

val find : snapshot -> ?labels:labels -> string -> sample option
val counter_value : snapshot -> ?labels:labels -> string -> int
(** 0 when absent or not a counter. *)

val sum_counters : snapshot -> string -> int
(** Sum of a counter across all of its label sets. *)

val merge : snapshot list -> snapshot
(** [merge snaps] combines per-run snapshots into one aggregate view:
    counters and gauges add, histograms add bin-wise. Used by the
    parallel run pool to fold the domain-local per-run snapshots back
    into a single deterministic series after join — merging is
    commutative and associative over runs, so the result is independent
    of execution order (the pool still merges in slot order).
    @raise Invalid_argument if the same series appears with
    incompatible types or histogram shapes. *)

val labels_to_string : labels -> string
val render_table : snapshot -> string
(** Human-readable table (metric | labels | value). *)

val to_json : snapshot -> Json.t
