(** Causal message tracing: online id tagging, offline happens-before
    reconstruction.

    Online, each protocol broadcast is assigned a message id
    ["m<sender>.<phase>.<seq>"] when it is encoded; lower layers
    re-attach the id to their own encodings of the same bytes with
    [alias], so radio/MAC events can be labeled with the protocol
    message they carry without widening any signatures. The registry is
    domain-local, keyed on byte content, and cleared at every run
    boundary. Callers only invoke it when [Trace2.enabled ()], so the
    off-path cost is zero and results stay bit-identical either way.

    Offline, [build] reconstructs a DAG of send / deliver / drop records
    from a trace, [decision_chain] returns every message a decision
    transitively depends on, and [attribute] covers a stall window's
    lagging receivers with the messages dropped inside it. *)

(** {1 Online tagging} *)

val next_send : sender:int -> phase:int -> string
(** Fresh message id for a broadcast by [sender] in [phase]. *)

val register : bytes -> string -> unit
(** Associates the byte content with a message id. *)

val alias : from:bytes -> bytes -> unit
(** [alias ~from bytes] carries [from]'s id (if any) over to [bytes] —
    the re-encoding of one layer's payload by the layer below. *)

val lookup : bytes -> string option

val mid_field : bytes -> (string * Trace2.field) list
(** [[("mid", S id)]] when the bytes are registered, [[]] otherwise —
    ready to splice into a [Trace2.emit] field list. *)

val reset : unit -> unit
(** Clears this domain's registry (also installed as a run-start hook). *)

(** {1 Offline reconstruction} *)

type send = { s_mid : string; s_sender : int; s_phase : int; s_time : float }
type deliver = { d_mid : string; d_rx : int; d_time : float }

type drop = {
  dr_mid : string;
  dr_kind : string;  (** ["omission"], ["jammed"] or ["mac-drop"] *)
  dr_rx : int option;  (** [None]: broadcast-wide loss (jamming) *)
  dr_time : float;
}

type dag = {
  sends : (string, send) Hashtbl.t;
  delivers : deliver list;  (** chronological *)
  delivers_by_rx : (int, deliver list) Hashtbl.t;  (** chronological *)
  drops : drop list;  (** chronological *)
  decides : (int, float) Hashtbl.t;  (** node -> first decide time *)
}

val build : Trace2.event list -> dag

val decision_chain : dag -> node:int -> time:float -> string list
(** Message ids the action at ([node], [time]) causally depends on:
    everything delivered to [node] by [time] plus, transitively,
    everything each sender had heard when it sent. Sorted by send
    time. *)

val drops_in : dag -> from:float -> until:float -> drop list

val attribute :
  dag ->
  lagging:int list ->
  from:float ->
  until:float ->
  (string * string * int list) list * int list
(** Greedy minimal cover of [lagging] receivers by messages dropped in
    the window: returns [(mid, kind, covered receivers)] best-first,
    plus the receivers no in-window drop explains. *)

val describe_send : dag -> string -> string
(** ["m0.3.2 (p0, phase 3, @41.0ms)"], or the bare id if unknown. *)
