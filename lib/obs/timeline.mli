(** Per-node protocol timelines rendered as an ASCII Gantt
    ([turquois-lab analyze --timeline]).

    One row per node over the run's time span; each cell shows the
    node's state during that time bucket — current phase's last digit,
    ['D'] once decided, ['X'] while crashed, ['.'] before its first
    phase transition. State changes are read from protocol
    "phase"/"round" and "decide" events and fault-layer
    "crash"/"recover" events. *)

val render : ?n:int -> Trace2.event list -> string
(** [?n] forces the node count (default: inferred from the trace).
    Total over an empty trace renders a well-formed "no events"
    report. *)
