(** Single-run experiment driver.

    Reproduces the paper's methodology (§7.2): n processes on one
    simulated 802.11b broadcast domain; a signaling broadcast starts
    every process (modeled as a small randomized start offset); each
    process records the interval between proposing and deciding. The
    run ends when every correct process decides, or at the timeout.

    Key material is expensive to generate, so it is cached per group
    size and shared across repetitions — exactly as the paper
    pre-distributes keys before its runs. *)

type protocol = Turquois | Bracha | Abba | Sampled
(** [Sampled] is the sample-based probabilistic consensus from
    {!Scale.Sampled}, run over the same radio/MAC unicast stack;
    Byzantine processes map the ["equivocate"] strategy to its
    equivocator and every other strategy to its random attacker. *)

val protocol_to_string : protocol -> string

type dist = Unanimous | Divergent

val dist_to_string : dist -> string

val proposals : dist -> n:int -> int array
(** Unanimous: all 1. Divergent: odd ids propose 1, even ids 0 (§7.2). *)

type result = {
  latencies : (int * float) list;
      (** (process id, seconds from its proposal to its decision),
          correct processes that decided *)
  decisions : (int * int) list;    (** (process id, decided value) *)
  decision_phases : (int * int) list;
      (** (process id, phase/round at decision) *)
  correct : int list;              (** ids measured (not crashed/Byzantine) *)
  agreement : bool;                (** no two decided values differ *)
  validity : bool;
      (** unanimous runs: every decision equals the proposed value *)
  duration : float;                (** simulated seconds until run end *)
  timed_out : bool;
  frames_sent : int;               (** radio frames over the run *)
  bytes_sent : int;
  airtime : float;                 (** cumulative medium occupancy, s *)
  events_live_peak : int;          (** engine live-event high-water mark *)
  events_queued_peak : int;        (** raw queue high-water mark *)
  metrics : Obs.Metrics.snapshot;
      (** per-run metrics across every instrumented layer; the global
          registry is reset at the start of each run ({!Obs.Scope.with_run}),
          so repetitions never leak counters into each other *)
}

val run :
  protocol:protocol ->
  n:int ->
  dist:dist ->
  load:Net.Fault.load ->
  ?conditions:Net.Fault.conditions ->
  ?strategy:Core.Strategy.t ->
  ?schedule:Net.Schedule.t ->
  ?attach:(Net.Radio.t -> unit) ->
  ?timeout:float ->
  seed:int64 ->
  unit ->
  result
(** One consensus execution. [conditions] defaults to
    {!Net.Fault.benign_conditions}; [timeout] to 120 simulated seconds.
    With [strategy], Turquois's Byzantine processes run that strategy
    instead of the legacy §7.2 [Attacker] (baseline protocols keep their
    own attacker). [schedule] arms a declarative fault timeline on the
    radio before the run; [attach] is a last-resort hook for installing
    custom radio-level adversaries (e.g. {!Net.Fault.sigma_edge}). *)

val clear_key_cache : unit -> unit
(** Drops the cached key material (for tests that need fresh keys). *)

val keyrings_for : seed:int64 -> n:int -> phases:int -> Core.Keyring.t array
(** Domain-local cached {!Core.Keyring.setup} from a dedicated seed.
    Key generation is by far the most expensive step of a simulated run
    (RSA keypairs for the VK exchange), and the paper pre-distributes
    all key material before its experiments — so harnesses that would
    otherwise regenerate keys per repetition share one deterministic
    array per (seed, n, phases) instead. Callers must pick seeds
    disjoint from run seeds and must not mutate the result. *)
