type arrival = Poisson | Bursty of int

type config = {
  n : int;
  capacity : int;
  window : int;
  max_batch : int;
  load : float;
  arrival : arrival;
  commands : int;
  cmd_bytes : int;
  loss : float;
  payload_wait : float;
  noop_wait : float;
  timeout : float;
  seed : int64;
}

let default ~n =
  {
    n;
    capacity = 24;
    window = 1;
    max_batch = 8;
    load = 50.0;
    arrival = Poisson;
    commands = 60;
    cmd_bytes = 16;
    loss = 0.01;
    payload_wait = 0.3;
    noop_wait = 0.12;
    timeout = 120.0;
    seed = 7100L;
  }

type result = {
  offered_load : float;
  commands : int;
  delivered_commands : int;
  committed_slots : int;
  skipped_slots : int;
  duration : float;
  throughput : float;
  decisions_per_sec : float;
  latency_p50 : float;
  latency_p99 : float;
}

let validate (c : config) =
  if c.n < 4 then invalid_arg "Workload: need n >= 4";
  if c.capacity < 1 then invalid_arg "Workload: capacity must be positive";
  if c.window < 1 then invalid_arg "Workload: window must be positive";
  if c.max_batch < 1 then invalid_arg "Workload: max_batch must be positive";
  if c.load <= 0.0 then invalid_arg "Workload: load must be positive";
  if c.commands < 1 then invalid_arg "Workload: commands must be positive";
  if c.cmd_bytes < 1 then invalid_arg "Workload: cmd_bytes must be positive";
  (match c.arrival with
  | Poisson -> ()
  | Bursty b -> if b < 1 then invalid_arg "Workload: burst must be positive");
  if c.loss < 0.0 || c.loss >= 1.0 then invalid_arg "Workload: loss must be in [0,1)";
  if c.payload_wait <= 0.0 then invalid_arg "Workload: payload_wait must be positive";
  if c.noop_wait <= 0.0 then invalid_arg "Workload: noop_wait must be positive";
  if c.timeout <= 0.0 then invalid_arg "Workload: timeout must be positive"

(* a command is its global id plus filler up to [cmd_bytes] *)
let encode_command ~id ~size =
  let w = Util.Codec.W.create ~capacity:(8 + size) () in
  Util.Codec.W.varint w id;
  for _ = 1 to size do
    Util.Codec.W.u8 w 0xAB
  done;
  Util.Codec.W.contents w

let command_id raw = Util.Codec.R.varint (Util.Codec.R.of_bytes raw)

(* Open-loop arrival times at [load] commands/sec: Poisson draws one
   exponential gap per command; Bursty [b] drops commands in groups of
   b separated by exponential gaps with mean b/load, so the long-run
   rate matches the Poisson case at equal [load]. *)
let arrival_times (c : config) rng =
  let gap_rng = Util.Rng.split rng in
  let times = Array.make c.commands 0.0 in
  let t = ref 0.0 in
  for k = 0 to c.commands - 1 do
    (match c.arrival with
    | Poisson -> t := !t +. Util.Rng.exponential gap_rng ~mean:(1.0 /. c.load)
    | Bursty burst ->
        if k mod burst = 0 then
          t := !t +. Util.Rng.exponential gap_rng ~mean:(float_of_int burst /. c.load));
    times.(k) <- !t
  done;
  times

let run_inner (c : config) =
  validate c;
  let engine = Net.Engine.create () in
  let rng = Util.Rng.create ~seed:c.seed in
  let radio = Net.Radio.create engine (Util.Rng.split rng) ~n:c.n in
  Net.Radio.set_loss_prob radio c.loss;
  let cfg = { (Core.Proto.default_config ~n:c.n) with max_phases = 45 } in
  (* keys depend on geometry only, so the cache is shared across loads
     and reps of a sweep *)
  let keyrings =
    Runner.keyrings_for
      ~seed:(Util.Rng.derive ~base:7002L [ c.n; c.capacity ])
      ~n:c.n
      ~phases:(c.capacity * cfg.Core.Proto.max_phases)
  in
  let logs =
    Util.Init.array c.n (fun i ->
        let node = Net.Node.create engine radio ~id:i ~rng:(Util.Rng.split rng) in
        Core.Ordered_log.create node cfg ~keyring:keyrings.(i) ~capacity:c.capacity
          ~window:c.window ~max_batch:c.max_batch ~payload_wait:c.payload_wait
          ~noop_wait:c.noop_wait ~help_retention:c.capacity ~retain_deliveries:false ())
  in
  let submit_time = arrival_times c rng in
  let latencies = ref [] in
  let delivered_commands = ref 0 in
  let committed = ref 0 in
  let skipped = ref 0 in
  let last_delivery = ref 0.0 in
  Array.iteri
    (fun i log ->
      Core.Ordered_log.on_deliver log (fun ~slot:_ ~payload ->
          match payload with
          | None -> if i = 0 then incr skipped
          | Some batch ->
              if i = 0 then incr committed;
              if i = 0 then last_delivery := Net.Engine.now engine;
              List.iter
                (fun cmd ->
                    let id = command_id cmd in
                    if id mod c.n = i then begin
                      let latency = Net.Engine.now engine -. submit_time.(id) in
                      latencies := latency :: !latencies;
                      Obs.Metrics.observe ~lo:0.0 ~hi:10.0 ~bins:64
                        "workload.cmd.latency_s" latency
                    end;
                    if i = 0 then incr delivered_commands)
                (Core.Ordered_log.decode_batch batch)))
    logs;
  Array.iter Core.Ordered_log.start logs;
  for id = 0 to c.commands - 1 do
    ignore
      (Net.Engine.at engine ~time:submit_time.(id) (fun () ->
           Core.Ordered_log.submit logs.(id mod c.n)
             (encode_command ~id ~size:c.cmd_bytes)))
  done;
  Net.Engine.run_while engine (fun () ->
      Net.Engine.now engine < c.timeout
      && Array.exists
           (fun log -> Core.Ordered_log.delivered_count log < c.capacity)
           logs);
  let duration = Net.Engine.now engine in
  let safe_div a b = if b > 0.0 then a /. b else 0.0 in
  let lats = List.sort compare !latencies in
  let pct p = if lats = [] then 0.0 else Util.Stats.percentile lats p in
  Obs.Metrics.incr ~by:!delivered_commands "workload.cmd.delivered";
  {
    offered_load = c.load;
    commands = c.commands;
    delivered_commands = !delivered_commands;
    committed_slots = !committed;
    skipped_slots = !skipped;
    duration;
    (* measured to the last command delivery, so trailing empty slots
       being skipped do not dilute the sustained rate *)
    throughput = safe_div (float_of_int !delivered_commands) !last_delivery;
    decisions_per_sec =
      safe_div (float_of_int (Core.Ordered_log.delivered_count logs.(0))) duration;
    latency_p50 = pct 0.5;
    latency_p99 = pct 0.99;
  }

let run c = fst (Obs.Scope.with_run (fun () -> run_inner c))

(* --- offered-load sweep ----------------------------------------------------- *)

type point = {
  load_point : float;
  mean_throughput : float;
  mean_decisions_per_sec : float;
  mean_p50 : float;
  mean_p99 : float;
  mean_delivered : float;
  reps : int;
}

let sweep ?jobs ~base ~loads ~reps () =
  if reps < 1 then invalid_arg "Workload.sweep: reps must be positive";
  if loads = [] then invalid_arg "Workload.sweep: need at least one load";
  let loads_a = Array.of_list loads in
  let nloads = Array.length loads_a in
  let results =
    Pool.map ?jobs ~tasks:(nloads * reps) (fun idx ->
        let li = idx / reps and rep = idx mod reps in
        run
          {
            base with
            load = loads_a.(li);
            seed = Util.Rng.derive ~base:base.seed [ li; rep ];
          })
  in
  List.init nloads (fun li ->
      let of_rep rep = results.((li * reps) + rep) in
      let mean f =
        let sum = ref 0.0 in
        for rep = 0 to reps - 1 do
          sum := !sum +. f (of_rep rep)
        done;
        !sum /. float_of_int reps
      in
      {
        load_point = loads_a.(li);
        mean_throughput = mean (fun r -> r.throughput);
        mean_decisions_per_sec = mean (fun r -> r.decisions_per_sec);
        mean_p50 = mean (fun r -> r.latency_p50);
        mean_p99 = mean (fun r -> r.latency_p99);
        mean_delivered = mean (fun r -> float_of_int r.delivered_commands);
        reps;
      })

let knee ?(efficiency = 0.9) points =
  List.fold_left
    (fun acc p ->
      if p.mean_throughput >= efficiency *. p.load_point then
        match acc with
        | Some best when best >= p.load_point -> acc
        | Some _ | None -> Some p.load_point
      else acc)
    None points

let render_points points =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "offered(cmd/s)  throughput  decisions/s   p50(ms)   p99(ms)  delivered\n";
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%14.1f  %10.1f  %11.1f  %8.1f  %8.1f  %9.1f\n" p.load_point
           p.mean_throughput p.mean_decisions_per_sec (1e3 *. p.mean_p50)
           (1e3 *. p.mean_p99) p.mean_delivered))
    points;
  (match knee points with
  | Some k -> Buffer.add_string buf (Printf.sprintf "saturation knee: %.1f cmd/s\n" k)
  | None -> Buffer.add_string buf "saturation knee: below the lowest offered load\n");
  Buffer.contents buf
