(* Work distribution is an atomic fetch-and-add over the task counter:
   domains race for indices, but because every result lands in its own
   slot and every task is seeded by its coordinates alone, the race
   affects only scheduling, never results. No work stealing, no
   queues — simulation runs are coarse enough (milliseconds to
   seconds) that a shared counter is contention-free in practice. *)

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

type 'a slot = Empty | Value of 'a | Raised of exn

let map ?jobs ~tasks f =
  if tasks < 0 then invalid_arg "Pool.map: tasks < 0";
  let jobs = match jobs with None -> default_jobs () | Some j -> j in
  if jobs < 1 then invalid_arg "Pool.map: jobs < 1";
  let jobs = min jobs tasks in
  (* ascending order pinned: task bodies touch domain-local state
     (metrics scopes, memo caches), and the sequential path must visit
     them in slot order like the parallel path's per-slot isolation *)
  if jobs <= 1 then Util.Init.array tasks f
  else begin
    let results = Array.make tasks Empty in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= tasks then continue := false
        else
          results.(i) <- (match f i with v -> Value v | exception e -> Raised e)
      done
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    (* re-raise deterministically: the lowest-indexed failure wins,
       whatever order the domains hit theirs in *)
    Array.iter (function Raised e -> raise e | Empty | Value _ -> ()) results;
    Array.map (function Value v -> v | Empty | Raised _ -> assert false) results
  end

let map_list ?jobs items f =
  let arr = Array.of_list items in
  Array.to_list (map ?jobs ~tasks:(Array.length arr) (fun i -> f arr.(i)))

let map_scoped ?jobs ~tasks f =
  map ?jobs ~tasks (fun i -> Obs.Scope.with_run (fun () -> f i))
