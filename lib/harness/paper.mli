(** The published numbers of Tables 1–3 (DSN 2010), for side-by-side
    comparison in EXPERIMENTS.md and in the benchmark output. Values are
    average latency and 95% confidence half-width, in milliseconds. *)

val value :
  load:Net.Fault.load ->
  protocol:Runner.protocol ->
  n:int ->
  dist:Runner.dist ->
  (float * float) option
(** [None] for group sizes the paper did not measure. *)

val group_sizes : int list
(** 4, 7, 10, 13, 16. *)
