(** Randomized fault-injection harness.

    Each run draws a plan from the master seed — value distribution,
    Byzantine strategy (rotating through {!Core.Strategy.all}), and a
    random {!Net.Schedule} of crashes, omission overlays, jamming and
    delay bursts — executes it against Turquois and the Bracha/ABBA
    baselines, and checks the consensus invariants:

    - {b agreement}: no two correct processes decide differently;
    - {b validity}: unanimous runs decide the proposed value;
    - {b integrity}: each correct process decides at most once, on a
      binary value;
    - {b liveness}: only when the schedule is provably quiet after some
      horizon ({!Net.Schedule.quiet_after}) and contains no crash
      windows — then every correct process must decide.

    On a violation the schedule is delta-debugged to a locally minimal
    reproducer ({!Net.Schedule.shrink_candidates}) and reported with its
    seed, so [chaos --seed S] replays it exactly. *)

type bug =
  | No_bug
  | Flip_reported_decision
      (** A deliberately broken machine (the lowest-id correct process
          reports the flipped decision) — the harness's own negative
          test: it must detect a violation against this. *)

type failure = {
  index : int;                  (** which run *)
  seed : int64;                 (** the derived per-run seed *)
  protocol : Runner.protocol;
  strategy : string option;     (** Byzantine strategy on the air, if any *)
  dist : Runner.dist;
  schedule : Net.Schedule.t;    (** the full failing schedule *)
  violations : string list;     (** human-readable invariant breaches *)
  shrunk : Net.Schedule.t;      (** locally minimal still-failing schedule *)
}

type report = {
  runs : int;
  liveness_checked : int;  (** runs whose schedule allowed the liveness check *)
  failures : failure list;
}

val check_schedule :
  protocol:Runner.protocol ->
  n:int ->
  ?bug:bug ->
  dist:Runner.dist ->
  ?strategy:Core.Strategy.t ->
  schedule:Net.Schedule.t ->
  seed:int64 ->
  unit ->
  string list
(** Re-execute one schedule through the harness's own invariant check
    and return the violations (empty = passes). This is the replay path
    for serialized chaos reproducers: a saved failing schedule must
    report the same violations here that it did when found. The fault
    load is implied by [strategy]; [bug] re-plants the deliberate
    harness self-test defect so its reproducers replay faithfully. *)

val default_protocols : Runner.protocol list
(** The hard-guarantee rotation: Turquois, Bracha, ABBA. The
    probabilistic {!Scale.Sampled} protocol is deliberately not in it —
    callers opt it in via [?protocols]. *)

val run_chaos :
  ?n:int ->
  ?bug:bug ->
  ?strategy:Core.Strategy.t ->
  ?protocols:Runner.protocol list ->
  ?log:(string -> unit) ->
  ?jobs:int ->
  runs:int ->
  seed:int64 ->
  unit ->
  report
(** [n] defaults to 4 (the smallest group with a Byzantine slot);
    [strategy] pins every Byzantine run to one strategy instead of
    rotating; [log] receives progress lines and failure reports (after
    the parallel phase, in run order). Runs execute on the {!Pool} with
    [jobs] workers; every plan derives from [(seed, index)] alone, so
    the report is identical for every [jobs]. Delta-debug shrinking of
    failing schedules stays sequential on the calling domain. *)
