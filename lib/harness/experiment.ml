type cell = {
  protocol : Runner.protocol;
  n : int;
  dist : Runner.dist;
  load : Net.Fault.load;
}

type cell_result = {
  cell : cell;
  summary : Util.Stats.summary;
  decided_fraction : float;
  phase_summary : Util.Stats.summary option;
  agreement_violations : int;
  validity_violations : int;
  timeouts : int;
}

let run_cell ?(reps = 50) ?(base_seed = 1000L) ?(timeout = 120.0) ?conditions ?jobs
    cell =
  (* repetitions are independent and seeded by their index, so they run
     on the pool; the fold below walks results in slot (= rep) order,
     keeping every aggregate bit-identical to sequential execution *)
  let results =
    Pool.map ?jobs ~tasks:reps (fun rep ->
        let seed = Int64.add base_seed (Int64.of_int rep) in
        Runner.run ~protocol:cell.protocol ~n:cell.n ~dist:cell.dist ~load:cell.load
          ?conditions ~timeout ~seed ())
  in
  let latencies = ref [] in
  let phases = ref [] in
  let deciders = ref 0 in
  let correct_total = ref 0 in
  let agreement_violations = ref 0 in
  let validity_violations = ref 0 in
  let timeouts = ref 0 in
  Array.iter
    (fun (result : Runner.result) ->
      List.iter (fun (_, l) -> latencies := (l *. 1000.0) :: !latencies) result.latencies;
      List.iter (fun (_, p) -> phases := float_of_int p :: !phases) result.decision_phases;
      deciders := !deciders + List.length result.latencies;
      correct_total := !correct_total + List.length result.correct;
      if not result.agreement then incr agreement_violations;
      if not result.validity then incr validity_violations;
      if result.timed_out then incr timeouts)
    results;
  if !latencies = [] then
    invalid_arg "Experiment.run_cell: no repetition produced a decision";
  {
    cell;
    summary = Util.Stats.summarize !latencies;
    decided_fraction = float_of_int !deciders /. float_of_int (max 1 !correct_total);
    phase_summary = (match !phases with [] -> None | ps -> Some (Util.Stats.summarize ps));
    agreement_violations = !agreement_violations;
    validity_violations = !validity_violations;
    timeouts = !timeouts;
  }

type table_options = {
  reps : int;
  group_sizes : int list;
  protocols : Runner.protocol list;
  base_seed : int64;
  timeout : float;
  progress : (string -> unit) option;
  jobs : int option;
}

let default_options =
  {
    reps = 50;
    group_sizes = Paper.group_sizes;
    protocols = [ Runner.Turquois; Runner.Abba; Runner.Bracha ];
    base_seed = 1000L;
    timeout = 120.0;
    progress = None;
    jobs = None;
  }

let table_number = function
  | Net.Fault.Failure_free -> 1
  | Net.Fault.Fail_stop -> 2
  | Net.Fault.Byzantine -> 3

let run_table ?(options = default_options) load =
  let cells = ref [] in
  List.iter
    (fun n ->
      List.iter
        (fun protocol ->
          List.iter
            (fun dist ->
              let cell = { protocol; n; dist; load } in
              (match options.progress with
              | Some report ->
                  report
                    (Printf.sprintf "table %d: %s n=%d %s (%d reps)" (table_number load)
                       (Runner.protocol_to_string protocol) n (Runner.dist_to_string dist)
                       options.reps)
              | None -> ());
              let result =
                run_cell ~reps:options.reps ~base_seed:options.base_seed
                  ~timeout:options.timeout ?jobs:options.jobs cell
              in
              cells := result :: !cells)
            [ Runner.Unanimous; Runner.Divergent ])
        options.protocols)
    options.group_sizes;
  List.rev !cells

let find results ~protocol ~n ~dist =
  List.find_opt
    (fun r -> r.cell.protocol = protocol && r.cell.n = n && r.cell.dist = dist)
    results

let header_for results =
  let protocols =
    List.sort_uniq compare (List.map (fun r -> r.cell.protocol) results)
  in
  (* keep the paper's column order *)
  let ordered =
    List.filter (fun p -> List.mem p protocols) [ Runner.Turquois; Runner.Abba; Runner.Bracha ]
  in
  ( ordered,
    "Group"
    :: List.concat_map
         (fun p ->
           let name = Runner.protocol_to_string p in
           [ name ^ " unan."; name ^ " diver." ])
         ordered )

let render_table load results =
  let protocols, header = header_for results in
  let sizes = List.sort_uniq compare (List.map (fun r -> r.cell.n) results) in
  let rows =
    List.map
      (fun n ->
        Printf.sprintf "n = %d" n
        :: List.concat_map
             (fun p ->
               List.map
                 (fun dist ->
                   match find results ~protocol:p ~n ~dist with
                   | Some r ->
                       Util.Tablefmt.latency_cell ~mean:r.summary.mean ~ci:r.summary.ci95
                   | None -> "-")
                 [ Runner.Unanimous; Runner.Divergent ])
             protocols)
      sizes
  in
  Printf.sprintf "Table %d (%s fault load): average latency ± 95%% CI (ms)\n%s"
    (table_number load)
    (Net.Fault.load_to_string load)
    (Util.Tablefmt.render ~header ~rows ())

let render_comparison load results =
  let protocols, _ = header_for results in
  let sizes = List.sort_uniq compare (List.map (fun r -> r.cell.n) results) in
  let header =
    [ "Cell"; "measured (ms)"; "paper (ms)"; "ratio" ]
  in
  let rows =
    List.concat_map
      (fun n ->
        List.concat_map
          (fun p ->
            List.filter_map
              (fun dist ->
                match find results ~protocol:p ~n ~dist with
                | None -> None
                | Some r ->
                    let measured = r.summary.mean in
                    let name =
                      Printf.sprintf "%s n=%d %s" (Runner.protocol_to_string p) n
                        (Runner.dist_to_string dist)
                    in
                    let paper_cell, ratio =
                      match Paper.value ~load ~protocol:p ~n ~dist with
                      | Some (mean, ci) ->
                          ( Util.Tablefmt.latency_cell ~mean ~ci,
                            Printf.sprintf "%.2fx" (measured /. mean) )
                      | None -> ("-", "-")
                    in
                    Some
                      [
                        name;
                        Util.Tablefmt.latency_cell ~mean:measured ~ci:r.summary.ci95;
                        paper_cell;
                        ratio;
                      ])
              [ Runner.Unanimous; Runner.Divergent ])
          protocols)
      sizes
  in
  Printf.sprintf "Table %d vs paper\n%s" (table_number load)
    (Util.Tablefmt.render ~header ~rows ())
