type adversary = Random_omissions | Target_victims | Sigma_edge

type outcome = {
  deciders : int;
  rounds_to_k : int option;
  agreement : bool;
  validity : bool;
}

let sigma ~n ~k ~t =
  let cfg = { (Core.Proto.default_config ~n) with k } in
  Core.Proto.sigma cfg ~t

(* The suppressed (sender, receiver) pairs for one round, given the
   adversary's pattern and omission budget. [correct] is the id list of
   correct processes. *)
let choose_dropped ~rng ~adversary ~correct ~omissions =
  let c = List.length correct in
  let is_correct i = List.mem i correct in
  let correct_pairs =
    List.concat_map
      (fun s -> List.filter_map (fun r -> if r <> s then Some (s, r) else None) correct)
      correct
  in
  match adversary with
    | Random_omissions ->
        let pairs = Array.of_list correct_pairs in
        Util.Rng.shuffle rng pairs;
        let count = min omissions (Array.length pairs) in
        Array.to_list (Array.sub pairs 0 count)
    | Target_victims ->
        (* silence whole victims while the budget lasts, then starve the
           next process with the remainder *)
        let budget = ref omissions in
        let dropped = ref [] in
        let per_victim = c - 1 in
        List.iter
          (fun v ->
            if !budget >= per_victim && per_victim > 0 then begin
              List.iter
                (fun s -> if s <> v && is_correct s then dropped := (s, v) :: !dropped)
                correct;
              budget := !budget - per_victim
            end
            else if !budget > 0 then begin
              (* partial starvation of this process *)
              let incoming = List.filter (fun s -> s <> v && is_correct s) correct in
              List.iteri
                (fun idx s ->
                  if idx < !budget then dropped := (s, v) :: !dropped)
                incoming;
              budget := max 0 (!budget - List.length incoming)
            end)
          (List.rev correct);
        !dropped
    | Sigma_edge ->
        (* the formula-structured adversary: spend the budget in units of
           ⌈(n−t)/2⌉ drops against successive victims (the per-victim
           term of σ), remainder against the next one. At budget σ this
           blocks the quorums of exactly enough processes to sit on the
           liveness bound; at σ−1 the last victim still advances. *)
        let unit = (c + 1) / 2 in
        let budget = ref omissions in
        let dropped = ref [] in
        List.iter
          (fun v ->
            if !budget > 0 then begin
              let incoming = List.filter (fun s -> s <> v) correct in
              let take = min (min unit !budget) (List.length incoming) in
              List.iteri
                (fun idx s -> if idx < take then dropped := (s, v) :: !dropped)
                incoming;
              budget := !budget - take
            end)
          correct;
        !dropped

(* Key material for one abstract-rounds run. Profiling puts
   Keyring.setup (dominated by RSA keypair generation for the VK
   exchange) at ~95% of a run's host time, so under the hot-path memo
   switch the keys come from the deterministic per-(n, phases) cache —
   faithful to the paper's pre-distributed keys, like Runner's caches.
   Outcomes are key-independent (they depend only on verify verdicts,
   and every proof here is produced and checked against the same
   keyring array), so memo-on and memo-off runs stay bit-identical:
   the rng split is consumed either way, keeping every downstream
   stream (machine rngs, drop patterns) unchanged. *)
let keyrings_for ~rng ~n ~phases =
  if Core.Intern.enabled () then begin
    let (_ : Util.Rng.t) = Util.Rng.split rng in
    Runner.keyrings_for ~seed:(Util.Rng.derive ~base:0x7153A1L [ n; phases ]) ~n ~phases
  end
  else Core.Keyring.setup (Util.Rng.split rng) ~n ~phases ()

let run ~n ~k ?(byzantine = []) ?(dist = Runner.Unanimous) ?(adversary = Random_omissions)
    ~omissions ~rounds ~seed () =
  let rng = Util.Rng.create ~seed in
  let cfg = { (Core.Proto.default_config ~n) with k; max_phases = 3 * rounds + 9 } in
  let keyrings = keyrings_for ~rng ~n ~phases:cfg.max_phases in
  let proposals = Runner.proposals dist ~n in
  (* the closure splits [rng]: application order must be pinned *)
  let machines =
    Util.Init.array n (fun i ->
        let behavior =
          if List.mem i byzantine then Core.Machine.Attacker else Core.Machine.Correct
        in
        Core.Machine.create cfg ~keyring:keyrings.(i) ~rng:(Util.Rng.split rng) ~behavior
          ~proposal:proposals.(i) ())
  in
  let correct = List.filter (fun i -> not (List.mem i byzantine)) (List.init n (fun i -> i)) in
  let is_correct i = not (List.mem i byzantine) in
  let choose_dropped () = choose_dropped ~rng ~adversary ~correct ~omissions in
  let decided_round = Array.make n None in
  let rounds_to_k = ref None in
  let round = ref 0 in
  let finished () = List.for_all (fun i -> decided_round.(i) <> None) correct in
  while !round < rounds && not (finished ()) do
    incr round;
    let dropped = choose_dropped () in
    let is_dropped s r = List.mem (s, r) dropped in
    (* broadcast phase: everyone prepares (self-insertion happens in
       prepare), then deliveries happen "simultaneously" *)
    let envelopes =
      Array.map (fun m -> Core.Machine.prepare m ~justify:true) machines
    in
    Array.iteri
      (fun s envelope ->
        match envelope with
        | None -> ()
        | Some env ->
            List.iter
              (fun r ->
                if r <> s then begin
                  let suppressed = is_correct s && is_correct r && is_dropped s r in
                  if not suppressed then begin
                    let events, _ = Core.Machine.handle machines.(r) env in
                    List.iter
                      (fun event ->
                        match event with
                        | Core.Machine.Decided _ when is_correct r ->
                            if decided_round.(r) = None then
                              decided_round.(r) <- Some !round
                        | Core.Machine.Decided _ | Core.Machine.Phase_changed _ -> ())
                      events
                  end
                end)
              (List.init n (fun i -> i)))
      envelopes;
    let deciders_now =
      List.length (List.filter (fun i -> decided_round.(i) <> None) correct)
    in
    if deciders_now >= k && !rounds_to_k = None then rounds_to_k := Some !round
  done;
  let deciders = List.length (List.filter (fun i -> decided_round.(i) <> None) correct) in
  let decisions =
    List.filter_map (fun i -> Core.Machine.decision machines.(i)) correct
  in
  let agreement =
    match decisions with [] -> true | v0 :: rest -> List.for_all (fun v -> v = v0) rest
  in
  let validity =
    match dist with
    | Runner.Unanimous -> List.for_all (fun v -> v = 1) decisions
    | Runner.Divergent -> true
  in
  { deciders; rounds_to_k = !rounds_to_k; agreement; validity }

(* --- externally-driven rounds (model-checker hook) ----------------------- *)

module Driven = struct
  type sim = {
    machines : Core.Machine.t array;
    correct : int list;
    byzantine : int list;
    dist : Runner.dist;
    mutable round : int;
  }

  (* Key material comes from the deterministic per-(n, phases) cache
     unconditionally: the checker enumerates thousands of sims and its
     results are key-independent, so there is no memo-off contract to
     honor here (unlike [run], whose rng stream predates the cache). *)
  let create ~n ~k ?(byzantine = []) ?(dist = Runner.Unanimous) ~horizon ~seed () =
    let rng = Util.Rng.create ~seed in
    let cfg = { (Core.Proto.default_config ~n) with k; max_phases = (3 * horizon) + 9 } in
    let keyrings =
      Runner.keyrings_for
        ~seed:(Util.Rng.derive ~base:0x7153A1L [ n; cfg.max_phases ])
        ~n ~phases:cfg.max_phases
    in
    let proposals = Runner.proposals dist ~n in
    (* the closure splits [rng]: application order must be pinned *)
    let machines =
      Util.Init.array n (fun i ->
          let behavior =
            if List.mem i byzantine then Core.Machine.Byzantine Core.Strategy.silent
            else Core.Machine.Correct
          in
          Core.Machine.create cfg ~keyring:keyrings.(i) ~rng:(Util.Rng.split rng) ~behavior
            ~proposal:proposals.(i) ())
    in
    let correct = List.filter (fun i -> not (List.mem i byzantine)) (List.init n (fun i -> i)) in
    { machines; correct; byzantine; dist; round = 0 }

  let clone sim =
    {
      machines = Array.map Core.Machine.clone sim.machines;
      correct = sim.correct;
      byzantine = sim.byzantine;
      dist = sim.dist;
      round = sim.round;
    }

  let step sim ~drops ~byz =
    sim.round <- sim.round + 1;
    let n = Array.length sim.machines in
    let is_dropped s r = List.mem (s, r) drops in
    (* everyone prepares first (self-insertion happens inside emit), then
       deliveries happen "simultaneously"; Byzantine machines follow the
       round's scripted strategy, defaulting to silence (a crash) *)
    let transmissions =
      Util.Init.array n (fun i ->
          if List.mem i sim.byzantine then
            match List.assoc_opt i byz with
            | Some strategy -> Core.Machine.emit_as sim.machines.(i) ~strategy ~justify:true
            | None -> Core.Machine.Quiet
          else Core.Machine.emit sim.machines.(i) ~justify:true)
    in
    let deliver s r env =
      if r <> s && not (is_dropped s r) then
        ignore (Core.Machine.handle sim.machines.(r) env)
    in
    Array.iteri
      (fun s tx ->
        match tx with
        | Core.Machine.Quiet -> ()
        | Core.Machine.Broadcast env ->
            List.iter (fun r -> deliver s r env) (List.init n (fun i -> i))
        | Core.Machine.Per_receiver outs ->
            List.iter (fun (r, env) -> deliver s r env) outs)
      transmissions

  let round sim = sim.round
  let correct sim = sim.correct

  let decisions sim =
    List.filter_map
      (fun i ->
        match Core.Machine.decision sim.machines.(i) with
        | Some v -> Some (i, v)
        | None -> None)
      sim.correct

  let deciders sim = List.length (decisions sim)

  let advanced sim =
    List.length
      (List.filter (fun i -> Core.Machine.phase sim.machines.(i) > 1) sim.correct)

  (* Safety invariants over the current state; same clauses as the chaos
     harness, phrased over the abstract sim. *)
  let violations sim =
    let out = ref [] in
    let add fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
    let ds = decisions sim in
    (match ds with
    | [] -> ()
    | (_, v0) :: rest ->
        List.iter
          (fun (i, v) ->
            if v <> v0 then add "agreement: p%d decided %d, others %d" i v v0)
          rest);
    (match sim.dist with
    | Runner.Unanimous ->
        List.iter
          (fun (i, v) ->
            if v <> 1 then add "validity: p%d decided %d against unanimous 1" i v)
          ds
    | Runner.Divergent -> ());
    List.iter
      (fun (i, v) -> if v <> 0 && v <> 1 then add "integrity: p%d decided non-binary %d" i v)
      ds;
    List.rev !out

  (* Concatenated machine fingerprints: machines are positional, so the
     concatenation canonically identifies the whole group state. The
     round counter is deliberately excluded — a state revisited later in
     the walk has a future subtree contained in the first visit's. *)
  let fingerprint sim =
    let buf = Buffer.create 1024 in
    Array.iter
      (fun m ->
        Buffer.add_string buf (Core.Machine.fingerprint m);
        Buffer.add_char buf '\n')
      sim.machines;
    Buffer.contents buf
end

(* One synchronous round in isolation: who can still advance past phase
   1? No phase-2 traffic exists inside a single round, so the adoption
   rule cannot rescue a blocked victim — the probe measures exactly the
   quorum arithmetic the σ bound is about. Faulty processes are silent
   (the liveness bound's worst case). *)
let single_round ~n ~k ?(byzantine = []) ?(adversary = Sigma_edge) ~omissions ~seed () =
  let rng = Util.Rng.create ~seed in
  let cfg = { (Core.Proto.default_config ~n) with k; max_phases = 30 } in
  let keyrings = keyrings_for ~rng ~n ~phases:cfg.max_phases in
  (* the closure splits [rng]: application order must be pinned *)
  let machines =
    Util.Init.array n (fun i ->
        let behavior =
          if List.mem i byzantine then Core.Machine.Byzantine Core.Strategy.silent
          else Core.Machine.Correct
        in
        Core.Machine.create cfg ~keyring:keyrings.(i) ~rng:(Util.Rng.split rng) ~behavior
          ~proposal:1 ())
  in
  let correct = List.filter (fun i -> not (List.mem i byzantine)) (List.init n (fun i -> i)) in
  let dropped = choose_dropped ~rng ~adversary ~correct ~omissions in
  let is_dropped s r = List.mem (s, r) dropped in
  let envelopes = Array.map (fun m -> Core.Machine.prepare m ~justify:true) machines in
  Array.iteri
    (fun s envelope ->
      match envelope with
      | None -> ()
      | Some env ->
          List.iter
            (fun r ->
              if r <> s && List.mem r correct && not (is_dropped s r) then
                ignore (Core.Machine.handle machines.(r) env))
            (List.init n (fun i -> i)))
    envelopes;
  List.length (List.filter (fun i -> Core.Machine.phase machines.(i) > 1) correct)
