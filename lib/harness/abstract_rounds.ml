type adversary = Random_omissions | Target_victims

type outcome = {
  deciders : int;
  rounds_to_k : int option;
  agreement : bool;
  validity : bool;
}

let sigma ~n ~k ~t =
  let cfg = { (Core.Proto.default_config ~n) with k } in
  Core.Proto.sigma cfg ~t

let run ~n ~k ?(byzantine = []) ?(dist = Runner.Unanimous) ?(adversary = Random_omissions)
    ~omissions ~rounds ~seed () =
  let rng = Util.Rng.create ~seed in
  let cfg = { (Core.Proto.default_config ~n) with k; max_phases = 3 * rounds + 9 } in
  let keyrings = Core.Keyring.setup (Util.Rng.split rng) ~n ~phases:cfg.max_phases () in
  let proposals = Runner.proposals dist ~n in
  let machines =
    Array.init n (fun i ->
        let behavior =
          if List.mem i byzantine then Core.Machine.Attacker else Core.Machine.Correct
        in
        Core.Machine.create cfg ~keyring:keyrings.(i) ~rng:(Util.Rng.split rng) ~behavior
          ~proposal:proposals.(i) ())
  in
  let correct = List.filter (fun i -> not (List.mem i byzantine)) (List.init n (fun i -> i)) in
  let c = List.length correct in
  let is_correct i = not (List.mem i byzantine) in
  (* all (sender, receiver) pairs between distinct correct processes *)
  let correct_pairs =
    List.concat_map
      (fun s -> List.filter_map (fun r -> if r <> s then Some (s, r) else None) correct)
      correct
  in
  let choose_dropped () =
    match adversary with
    | Random_omissions ->
        let pairs = Array.of_list correct_pairs in
        Util.Rng.shuffle rng pairs;
        let count = min omissions (Array.length pairs) in
        Array.to_list (Array.sub pairs 0 count)
    | Target_victims ->
        (* silence whole victims while the budget lasts, then starve the
           next process with the remainder *)
        let budget = ref omissions in
        let dropped = ref [] in
        let per_victim = c - 1 in
        List.iter
          (fun v ->
            if !budget >= per_victim && per_victim > 0 then begin
              List.iter
                (fun s -> if s <> v && is_correct s then dropped := (s, v) :: !dropped)
                correct;
              budget := !budget - per_victim
            end
            else if !budget > 0 then begin
              (* partial starvation of this process *)
              let incoming = List.filter (fun s -> s <> v && is_correct s) correct in
              List.iteri
                (fun idx s ->
                  if idx < !budget then dropped := (s, v) :: !dropped)
                incoming;
              budget := max 0 (!budget - List.length incoming)
            end)
          (List.rev correct);
        !dropped
  in
  let decided_round = Array.make n None in
  let rounds_to_k = ref None in
  let round = ref 0 in
  let finished () = List.for_all (fun i -> decided_round.(i) <> None) correct in
  while !round < rounds && not (finished ()) do
    incr round;
    let dropped = choose_dropped () in
    let is_dropped s r = List.mem (s, r) dropped in
    (* broadcast phase: everyone prepares (self-insertion happens in
       prepare), then deliveries happen "simultaneously" *)
    let envelopes =
      Array.map (fun m -> Core.Machine.prepare m ~justify:true) machines
    in
    Array.iteri
      (fun s envelope ->
        match envelope with
        | None -> ()
        | Some env ->
            List.iter
              (fun r ->
                if r <> s then begin
                  let suppressed = is_correct s && is_correct r && is_dropped s r in
                  if not suppressed then begin
                    let events, _ = Core.Machine.handle machines.(r) env in
                    List.iter
                      (fun event ->
                        match event with
                        | Core.Machine.Decided _ when is_correct r ->
                            if decided_round.(r) = None then
                              decided_round.(r) <- Some !round
                        | Core.Machine.Decided _ | Core.Machine.Phase_changed _ -> ())
                      events
                  end
                end)
              (List.init n (fun i -> i)))
      envelopes;
    let deciders_now =
      List.length (List.filter (fun i -> decided_round.(i) <> None) correct)
    in
    if deciders_now >= k && !rounds_to_k = None then rounds_to_k := Some !round
  done;
  let deciders = List.length (List.filter (fun i -> decided_round.(i) <> None) correct) in
  let decisions =
    List.filter_map (fun i -> Core.Machine.decision machines.(i)) correct
  in
  let agreement =
    match decisions with [] -> true | v0 :: rest -> List.for_all (fun v -> v = v0) rest
  in
  let validity =
    match dist with
    | Runner.Unanimous -> List.for_all (fun v -> v = 1) decisions
    | Runner.Divergent -> true
  in
  { deciders; rounds_to_k = !rounds_to_k; agreement; validity }
