(** Open-loop workload generator for the pipelined consensus service.

    Drives a {!Core.Ordered_log} cluster with client commands arriving
    at a configurable offered load — Poisson (memoryless gaps) or
    bursty (groups of [b] back-to-back commands at the same long-run
    rate) — and measures what a deployment would: sustained
    decisions/sec, delivered-command throughput versus offered load,
    and per-command submit→deliver latency at the submitting node.

    Everything is simulation-time and seed-deterministic: arrival
    times are precomputed from the run seed before the simulation
    starts, sweep tasks derive their seeds from grid coordinates, and
    results carry no wall-clock — so a sweep is bit-identical across
    [-j N] and memoization settings, and is used as such by
    [make workload-smoke] and the bench gate. *)

type arrival =
  | Poisson
  | Bursty of int  (** burst size; same long-run rate as [Poisson] *)

type config = {
  n : int;
  capacity : int;  (** total log slots per run *)
  window : int;  (** pipeline depth *)
  max_batch : int;  (** commands per slot *)
  load : float;  (** offered load, commands/sec across the system *)
  arrival : arrival;
  commands : int;  (** commands injected per run *)
  cmd_bytes : int;  (** filler bytes per command *)
  loss : float;
  payload_wait : float;  (** non-proposer crash deadline per slot *)
  noop_wait : float;
      (** how long an idle proposer holds its slot open for traffic
          before announcing a no-op — the demand-pacing knob *)
  timeout : float;  (** sim-seconds safety horizon *)
  seed : int64;
}

val default : n:int -> config
(** 24 slots, window 1, batch 8, 50 cmd/s Poisson, 60 commands, 1%
    loss. On the contention-modeled shared medium, narrow windows win:
    wider pipelines multiply concurrent consensus instances competing
    for airtime and congest the channel faster than they add slots. *)

type result = {
  offered_load : float;
  commands : int;
  delivered_commands : int;  (** commands that reached delivery *)
  committed_slots : int;
  skipped_slots : int;
  duration : float;  (** sim-seconds until every process drained the log *)
  throughput : float;  (** delivered commands / duration *)
  decisions_per_sec : float;  (** delivered slots / duration *)
  latency_p50 : float;  (** submit→deliver seconds, submitting node *)
  latency_p99 : float;
}

val run : config -> result
(** One run under its own {!Obs.Scope.with_run}.
    @raise Invalid_argument on a nonsensical config (n < 4,
    non-positive sizes/load, loss outside [0,1)). *)

(** One offered-load point of a sweep, averaged over its reps. *)
type point = {
  load_point : float;
  mean_throughput : float;
  mean_decisions_per_sec : float;
  mean_p50 : float;
  mean_p99 : float;
  mean_delivered : float;
  reps : int;
}

val sweep :
  ?jobs:int -> base:config -> loads:float list -> reps:int -> unit -> point list
(** Runs [reps] runs per offered load on the worker pool; point order
    follows [loads]. Bit-identical for any [jobs]. *)

val knee : ?efficiency:float -> point list -> float option
(** Highest offered load still served at [efficiency] (default 0.9) of
    the offered rate — the saturation knee. [None] when even the
    lowest load saturates. *)

val render_points : point list -> string
