(** Secondary experiments beyond the three latency tables: the σ
    liveness bound of Section 5 and the decision-phase distributions
    discussed in §7.3. *)

type sigma_row = {
  omissions : int;
  adversary : Abstract_rounds.adversary;
  runs : int;
  k_reached : int;          (** runs where ≥ k correct processes decided *)
  mean_rounds : float option;  (** mean rounds to k over successful runs *)
  agreement_violations : int;
  validity_violations : int;
}

val run_seed :
  base_seed:int64 -> adversary:Abstract_rounds.adversary -> omissions:int ->
  run:int -> int64
(** The per-run seed of a sweep grid point: {!Util.Rng.derive} over
    (adversary index, omission budget, repetition). Collision-free
    across the grid and distinct per adversary, so adversary
    comparisons run on independent randomness — exposed for the
    regression test of the old additive scheme, which reused one seed
    for every adversary at a grid point. *)

val sigma_sweep :
  n:int -> k:int -> ?byzantine:int list -> ?dist:Runner.dist ->
  ?rounds:int -> ?runs_per_point:int -> ?beyond:int -> ?base_seed:int64 ->
  ?jobs:int -> unit -> sigma_row list
(** Sweeps the per-round omission budget from 0 to σ + [beyond]
    (default 4) for both adversaries, [runs_per_point] (default 10)
    seeds each, [rounds] (default 120) round horizon. Grid points run
    on the {!Pool} with [jobs] workers (default {!Pool.default_jobs});
    the row list is bit-identical for every [jobs]. *)

val sigma_sweep_merged :
  n:int -> k:int -> ?byzantine:int list -> ?dist:Runner.dist ->
  ?rounds:int -> ?runs_per_point:int -> ?beyond:int -> ?base_seed:int64 ->
  ?jobs:int -> unit -> sigma_row list * Obs.Metrics.snapshot
(** Like {!sigma_sweep}, also returning the merged per-run metrics
    (slot-ordered {!Obs.Metrics.merge} of every grid point's
    domain-local snapshot) — the aggregate the parallel-determinism
    test compares across [jobs] values. *)

val render_sigma : n:int -> k:int -> t:int -> sigma_row list -> string

type phase_row = {
  dist : Runner.dist;
  load : Net.Fault.load;
  samples : int;
  phase_stats : Util.Stats.summary;
  histogram : (int * int) list;  (** (decision phase, count) *)
}

val phase_distribution :
  n:int -> ?reps:int -> ?base_seed:int64 -> ?jobs:int ->
  loads:Net.Fault.load list -> unit -> phase_row list
(** Turquois decision-phase distribution per proposal distribution and
    fault load — the "decide by phase 3 unanimous, phase 6 divergent"
    observation of §7.3. *)

val render_phases : n:int -> phase_row list -> string

type ablation_row = {
  label : string;
  group : string;      (** which design choice the row belongs to *)
  ab_samples : int;
  latency : Util.Stats.summary;  (** milliseconds *)
}

val ablations :
  n:int -> ?reps:int -> ?base_seed:int64 -> ?jobs:int -> unit -> ablation_row list
(** Ablation study of DESIGN.md's called-out choices, Turquois only:

    - {b authentication}: one-time hash signatures (the paper's
      mechanism) vs charging conventional RSA sign/verify costs —
      failure-free load;
    - {b retransmission pacing}: fixed 10 ms ticks vs multiplicative
      adaptive backoff-down — fail-stop load, where the paper says
      pacing matters. *)

val render_ablations : n:int -> ablation_row list -> string
