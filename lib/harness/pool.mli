(** Deterministic parallel run pool over OCaml 5 domains.

    Independent simulation runs (table cells, sweep points, chaos
    plans, benchmark repetitions) execute concurrently on worker
    domains while the aggregate result stays bit-identical to
    sequential execution. Three rules make that hold:

    - {b seed from coordinates}: a task's randomness must derive only
      from its grid coordinates (via {!Util.Rng.derive}), never from
      submission or completion order — the pool hands each task its
      index and nothing else;
    - {b slot-indexed collection}: task [i]'s result is stored in slot
      [i] of the result array, so the output order is the input order
      regardless of which domain finished first;
    - {b domain-local observability}: the {!Obs.Metrics} registry and
      {!Obs.Trace2} buffer are domain-local, each task runs under
      [Obs.Scope.with_run] on its worker, and the per-run snapshots
      are returned in slot order (merge with {!Obs.Metrics.merge}) —
      no cross-domain contention, no cross-run bleed.

    With [jobs = 1] (or a single task) everything runs in the calling
    domain and no domain is spawned, so [jobs] can be threaded through
    unconditionally. A task that raises aborts the pool: the exception
    of the lowest-indexed failing task is re-raised after join. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1], at least 1 — one worker
    per available core, keeping the spawning domain free to
    participate (it also executes tasks). *)

val map : ?jobs:int -> tasks:int -> (int -> 'a) -> 'a array
(** [map ~jobs ~tasks f] computes [[| f 0; ...; f (tasks-1) |]],
    running up to [jobs] (default {!default_jobs}) tasks concurrently.
    [f] must be self-contained: seeded by its index, no shared mutable
    state. Result slot [i] always holds [f i].
    @raise Invalid_argument if [tasks < 0] or [jobs < 1]. *)

val map_list : ?jobs:int -> 'a list -> ('a -> 'b) -> 'b list
(** [map_list ~jobs items f] is {!map} over a work list; result order
    is the input order. *)

val map_scoped : ?jobs:int -> tasks:int -> (int -> 'a) -> ('a * Obs.Metrics.snapshot) array
(** Like {!map}, but wraps every task in [Obs.Scope.with_run], so each
    slot carries the metrics snapshot of exactly that run (taken on
    the worker domain that executed it). Sequential and parallel
    executions produce identical snapshot arrays. *)
