type sigma_row = {
  omissions : int;
  adversary : Abstract_rounds.adversary;
  runs : int;
  k_reached : int;
  mean_rounds : float option;
  agreement_violations : int;
  validity_violations : int;
}

let adversary_index = function
  | Abstract_rounds.Random_omissions -> 0
  | Abstract_rounds.Target_victims -> 1
  | Abstract_rounds.Sigma_edge -> 2

(* Seeds derive from the grid coordinates alone. The old scheme,
   [base + omissions*1009 + run], collided across grid points as soon
   as [runs_per_point >= 1009] and — worse — ignored the adversary, so
   the two adversaries at one grid point replayed the *same* random
   streams and their comparison rows were correlated, not independent. *)
let run_seed ~base_seed ~adversary ~omissions ~run =
  Util.Rng.derive ~base:base_seed [ adversary_index adversary; omissions; run ]

let sigma_sweep_merged ~n ~k ?(byzantine = []) ?(dist = Runner.Divergent)
    ?(rounds = 120) ?(runs_per_point = 10) ?(beyond = 4) ?(base_seed = 4242L) ?jobs ()
    =
  let t = List.length byzantine in
  let bound = Abstract_rounds.sigma ~n ~k ~t in
  let npoints = bound + beyond + 1 in
  let adversaries =
    [| Abstract_rounds.Random_omissions; Abstract_rounds.Target_victims |]
  in
  (* one pool task per (adversary, omission budget) grid point, indexed
     adversary-major so the row order matches the sequential output *)
  let row task =
    let adversary = adversaries.(task / npoints) in
    let omissions = task mod npoints in
    let successes = ref 0 in
    let rounds_acc = ref [] in
    let agreement_violations = ref 0 in
    let validity_violations = ref 0 in
    for run = 0 to runs_per_point - 1 do
      let seed = run_seed ~base_seed ~adversary ~omissions ~run in
      let outcome =
        Abstract_rounds.run ~n ~k ~byzantine ~dist ~adversary ~omissions ~rounds
          ~seed ()
      in
      (match outcome.rounds_to_k with
      | Some r ->
          incr successes;
          rounds_acc := float_of_int r :: !rounds_acc
      | None -> ());
      if not outcome.agreement then incr agreement_violations;
      if not outcome.validity then incr validity_violations
    done;
    {
      omissions;
      adversary;
      runs = runs_per_point;
      k_reached = !successes;
      mean_rounds =
        (match !rounds_acc with [] -> None | l -> Some (Util.Stats.mean l));
      agreement_violations = !agreement_violations;
      validity_violations = !validity_violations;
    }
  in
  let rows, snaps =
    Array.split (Pool.map_scoped ?jobs ~tasks:(Array.length adversaries * npoints) row)
  in
  (Array.to_list rows, Obs.Metrics.merge (Array.to_list snaps))

let sigma_sweep ~n ~k ?byzantine ?dist ?rounds ?runs_per_point ?beyond ?base_seed ?jobs
    () =
  fst
    (sigma_sweep_merged ~n ~k ?byzantine ?dist ?rounds ?runs_per_point ?beyond
       ?base_seed ?jobs ())

let adversary_to_string = function
  | Abstract_rounds.Random_omissions -> "random"
  | Abstract_rounds.Target_victims -> "targeted"
  | Abstract_rounds.Sigma_edge -> "sigma-edge"

let render_sigma ~n ~k ~t rows =
  let bound = Abstract_rounds.sigma ~n ~k ~t in
  let header = [ "omissions"; "adversary"; "k reached"; "mean rounds"; "safety" ] in
  let table_rows =
    List.map
      (fun row ->
        [
          Printf.sprintf "%d%s" row.omissions
            (if row.omissions = bound then "  (= sigma)" else "");
          adversary_to_string row.adversary;
          Printf.sprintf "%d/%d" row.k_reached row.runs;
          (match row.mean_rounds with Some m -> Printf.sprintf "%.1f" m | None -> "-");
          (if row.agreement_violations = 0 && row.validity_violations = 0 then "ok"
           else "VIOLATED");
        ])
      rows
  in
  Printf.sprintf
    "Liveness bound sweep: n=%d k=%d t=%d, sigma = ceil((n-t)/2)*(n-k-t)+k-2 = %d\n%s" n k
    t bound
    (Util.Tablefmt.render ~header ~rows:table_rows ())

type phase_row = {
  dist : Runner.dist;
  load : Net.Fault.load;
  samples : int;
  phase_stats : Util.Stats.summary;
  histogram : (int * int) list;
}

let phase_distribution ~n ?(reps = 30) ?(base_seed = 7000L) ?jobs ~loads () =
  List.concat_map
    (fun load ->
      List.map
        (fun dist ->
          let results =
            Pool.map ?jobs ~tasks:reps (fun rep ->
                let seed = Int64.add base_seed (Int64.of_int rep) in
                Runner.run ~protocol:Runner.Turquois ~n ~dist ~load ~seed ())
          in
          let phases = ref [] in
          Array.iter
            (fun (result : Runner.result) ->
              List.iter (fun (_, p) -> phases := p :: !phases) result.decision_phases)
            results;
          let counts = Hashtbl.create 16 in
          List.iter
            (fun p ->
              Hashtbl.replace counts p (1 + Option.value ~default:0 (Hashtbl.find_opt counts p)))
            !phases;
          let histogram =
            List.sort compare (Hashtbl.fold (fun p c acc -> (p, c) :: acc) counts [])
          in
          {
            dist;
            load;
            samples = List.length !phases;
            phase_stats = Util.Stats.summarize (List.map float_of_int !phases);
            histogram;
          })
        [ Runner.Unanimous; Runner.Divergent ])
    loads

let render_phases ~n rows =
  let header = [ "load"; "distribution"; "samples"; "mean phase"; "median"; "histogram" ] in
  let table_rows =
    List.map
      (fun row ->
        [
          Net.Fault.load_to_string row.load;
          Runner.dist_to_string row.dist;
          string_of_int row.samples;
          Printf.sprintf "%.2f" row.phase_stats.mean;
          Printf.sprintf "%.0f" row.phase_stats.median;
          String.concat " "
            (List.map (fun (p, c) -> Printf.sprintf "phi%d:%d" p c) row.histogram);
        ])
      rows
  in
  Printf.sprintf "Turquois decision phases (n=%d): unanimous runs decide in cycle 1 (phase 3),\ndivergent runs typically one cycle later (paper 7.3)\n%s"
    n
    (Util.Tablefmt.render ~header ~rows:table_rows ())

type ablation_row = {
  label : string;
  group : string;
  ab_samples : int;
  latency : Util.Stats.summary;
}

(* Turquois-only runner exposing the shell's ablation knobs. *)
let run_turquois_custom ~n ~dist ~load ~tick_policy ~auth_cost ~seed =
  let engine = Net.Engine.create () in
  let rng = Util.Rng.create ~seed in
  let radio = Net.Radio.create engine (Util.Rng.split rng) ~n in
  Net.Fault.apply_conditions radio Net.Fault.benign_conditions;
  Net.Fault.apply_crashes radio ~n load;
  let faulty = Net.Fault.faulty_set ~n load in
  let correct = List.filter (fun i -> not (List.mem i faulty)) (List.init n (fun i -> i)) in
  let crashed = match load with Net.Fault.Fail_stop -> faulty | _ -> [] in
  let byzantine = match load with Net.Fault.Byzantine -> faulty | _ -> [] in
  let cfg = Core.Proto.default_config ~n in
  (* fixed dedicated seed, so caching changes nothing but wall clock:
     every repetition regenerated these exact keys before *)
  let keyrings =
    if Core.Intern.enabled () then
      Runner.keyrings_for ~seed:(Int64.of_int (0xab1 + n)) ~n ~phases:cfg.max_phases
    else
      Core.Keyring.setup (Util.Rng.create ~seed:(Int64.of_int (0xab1 + n))) ~n
        ~phases:cfg.max_phases ()
  in
  let proposals = Runner.proposals dist ~n in
  let decided : (int, float) Hashtbl.t = Hashtbl.create n in
  Array.iter
    (fun i ->
      if not (List.mem i crashed) then begin
        let node = Net.Node.create engine radio ~id:i ~rng:(Util.Rng.split rng) in
        let behavior =
          if List.mem i byzantine then Core.Turquois.Attacker else Core.Turquois.Correct
        in
        let p =
          Core.Turquois.create node cfg ~keyring:keyrings.(i) ~behavior ~tick_policy
            ~auth_cost ~proposal:proposals.(i) ()
        in
        if List.mem i correct then
          Core.Turquois.on_decide p (fun ~value:_ ~phase:_ ->
              Hashtbl.replace decided i (Net.Engine.now engine));
        Core.Turquois.start p
      end)
    (Array.init n (fun i -> i));
  Net.Engine.run_while engine (fun () ->
      Net.Engine.now engine < 60.0 && Hashtbl.length decided < List.length correct);
  Hashtbl.fold (fun _ t acc -> (t *. 1000.0) :: acc) decided []

let ablations ~n ?(reps = 15) ?(base_seed = 9900L) ?jobs () =
  let collect ~group ~label ~dist ~load ~tick_policy ~auth_cost =
    let per_rep =
      Pool.map ?jobs ~tasks:reps (fun rep ->
          let seed = Int64.add base_seed (Int64.of_int rep) in
          run_turquois_custom ~n ~dist ~load ~tick_policy ~auth_cost ~seed)
    in
    let samples = Array.fold_left (fun acc l -> l @ acc) [] per_rep in
    { label; group; ab_samples = List.length samples; latency = Util.Stats.summarize samples }
  in
  [
    collect ~group:"authentication" ~label:"one-time hash signatures (paper)"
      ~dist:Runner.Unanimous ~load:Net.Fault.Failure_free
      ~tick_policy:Core.Turquois.Fixed_tick ~auth_cost:Core.Turquois.Onetime_cost;
    collect ~group:"authentication" ~label:"RSA sign/verify costs"
      ~dist:Runner.Unanimous ~load:Net.Fault.Failure_free
      ~tick_policy:Core.Turquois.Fixed_tick ~auth_cost:Core.Turquois.Rsa_cost;
    collect ~group:"pacing" ~label:"fixed 10 ms ticks (paper)" ~dist:Runner.Unanimous
      ~load:Net.Fault.Fail_stop ~tick_policy:Core.Turquois.Fixed_tick
      ~auth_cost:Core.Turquois.Onetime_cost;
    collect ~group:"pacing" ~label:"adaptive backoff-down ticks" ~dist:Runner.Unanimous
      ~load:Net.Fault.Fail_stop ~tick_policy:Core.Turquois.default_adaptive
      ~auth_cost:Core.Turquois.Onetime_cost;
  ]

let render_ablations ~n rows =
  let header = [ "design choice"; "variant"; "samples"; "latency (ms)" ] in
  let table_rows =
    List.map
      (fun row ->
        [
          row.group;
          row.label;
          string_of_int row.ab_samples;
          Util.Tablefmt.latency_cell ~mean:row.latency.mean ~ci:row.latency.ci95;
        ])
      rows
  in
  Printf.sprintf "Ablations (Turquois, n=%d)\n%s" n
    (Util.Tablefmt.render ~header ~rows:table_rows ())
