type protocol = Turquois | Bracha | Abba | Sampled

let protocol_to_string = function
  | Turquois -> "Turquois"
  | Bracha -> "Bracha"
  | Abba -> "ABBA"
  | Sampled -> "Sampled"

type dist = Unanimous | Divergent

let dist_to_string = function Unanimous -> "unanimous" | Divergent -> "divergent"

let proposals dist ~n =
  match dist with
  | Unanimous -> Array.make n 1
  | Divergent -> Array.init n (fun i -> i mod 2)

type result = {
  latencies : (int * float) list;
  decisions : (int * int) list;
  decision_phases : (int * int) list;
  correct : int list;
  agreement : bool;
  validity : bool;
  duration : float;
  timed_out : bool;
  frames_sent : int;
  bytes_sent : int;
  airtime : float;
  events_live_peak : int;
  events_queued_peak : int;
  metrics : Obs.Metrics.snapshot;
}

(* Key material caches — the paper generates and distributes all keys
   before the experiments start, so reusing them across repetitions is
   faithful (and keeps the simulation fast). Generation is seeded
   deterministically (per dedicated seed, group size and horizon), so
   the caches are domain-local: each pool worker derives bit-identical
   keys instead of racing on a shared table. The caches carry no
   metrics and deliberately survive run scopes — an order-dependent
   hit pattern inside run metrics would break the -j 1 vs -j N
   merged-metrics equality. *)
let turquois_keys : (int64 * int * int, Core.Keyring.t array) Hashtbl.t Domain.DLS.key
    =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let abba_keys : (int, Baselines.Abba.group_keys) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let key_phases = 300

let keyrings_for ~seed ~n ~phases =
  let cache = Domain.DLS.get turquois_keys in
  let key = (seed, n, phases) in
  match Hashtbl.find_opt cache key with
  | Some k -> k
  | None ->
      let k = Core.Keyring.setup (Util.Rng.create ~seed) ~n ~phases () in
      Hashtbl.add cache key k;
      k

let turquois_keyrings ~n =
  keyrings_for ~seed:(Int64.of_int (0x7153 + n)) ~n ~phases:key_phases

let abba_group_keys ~n =
  let cache = Domain.DLS.get abba_keys in
  match Hashtbl.find_opt cache n with
  | Some k -> k
  | None ->
      let rng = Util.Rng.create ~seed:(Int64.of_int (0xabba + n)) in
      let k = Baselines.Abba.setup_keys rng ~n ~f:(Net.Fault.max_f n) () in
      Hashtbl.add cache n k;
      k

let clear_key_cache () =
  Hashtbl.reset (Domain.DLS.get turquois_keys);
  Hashtbl.reset (Domain.DLS.get abba_keys)

(* Start offsets model the signaling machine's 1-byte UDP broadcast:
   one frame airtime plus small per-node reception jitter. *)
let start_time rng =
  Net.Mac.airtime_broadcast ~payload_bytes:29 +. Util.Rng.float rng 200.0e-6

let run_body ~protocol ~n ~dist ~load ~conditions ~strategy ~schedule ~attach ~timeout
    ~seed () =
  let engine = Net.Engine.create () in
  let rng = Util.Rng.create ~seed in
  let radio = Net.Radio.create engine (Util.Rng.split rng) ~n in
  Net.Fault.apply_conditions radio conditions;
  Net.Fault.apply_crashes radio ~n load;
  (match schedule with None -> () | Some s -> Net.Schedule.apply radio s);
  (match attach with None -> () | Some f -> f radio);
  let faulty = Net.Fault.faulty_set ~n load in
  let crashed = match load with Net.Fault.Fail_stop -> faulty | _ -> [] in
  let byzantine = match load with Net.Fault.Byzantine -> faulty | _ -> [] in
  let f = Net.Fault.max_f n in
  Obs.Trace2.emit ~time:0.0 ~node:(-1) ~layer:"run" ~label:"meta"
    [
      ("protocol", Obs.Trace2.S (protocol_to_string protocol));
      ("n", Obs.Trace2.I n);
      ("f", Obs.Trace2.I f);
      ("k", Obs.Trace2.I (n - f));
      ("t", Obs.Trace2.I (List.length byzantine));
      ("dist", Obs.Trace2.S (dist_to_string dist));
      ("load", Obs.Trace2.S (Net.Fault.load_to_string load));
      ("seed", Obs.Trace2.S (Int64.to_string seed));
      ("tick_s", Obs.Trace2.F (Core.Proto.default_config ~n).Core.Proto.tick_interval);
      ("loss_prob", Obs.Trace2.F conditions.Net.Fault.loss_prob);
      ("crashed", Obs.Trace2.S (String.concat "," (List.map string_of_int crashed)));
    ];
  let correct =
    List.filter (fun i -> not (List.mem i faulty)) (List.init n (fun i -> i))
  in
  let proposals = proposals dist ~n in
  (* both closures draw from [rng]: application order must be pinned *)
  let nodes =
    Util.Init.array n (fun id -> Net.Node.create engine radio ~id ~rng:(Util.Rng.split rng))
  in
  let starts = Util.Init.array n (fun _ -> start_time rng) in
  let decide_time : (int, float) Hashtbl.t = Hashtbl.create n in
  let decide_value : (int, int) Hashtbl.t = Hashtbl.create n in
  let decide_phase : (int, int) Hashtbl.t = Hashtbl.create n in
  let record i value phase =
    if not (Hashtbl.mem decide_time i) then begin
      Hashtbl.replace decide_time i (Net.Engine.now engine -. starts.(i));
      Hashtbl.replace decide_value i value;
      Hashtbl.replace decide_phase i phase
    end
  in
  let launch i (start : unit -> unit) =
    if not (List.mem i crashed) then
      ignore (Net.Engine.at engine ~time:starts.(i) start)
  in
  (match protocol with
  | Turquois ->
      let cfg = { (Core.Proto.default_config ~n) with max_phases = key_phases } in
      let keyrings = turquois_keyrings ~n in
      (* the fixed 10 ms tick is faithful to the paper's n <= 16
         prototype but floods the medium at larger n; the MAC-aware
         policy paces each node's rebroadcasts from the airtime its
         phases are observed to consume *)
      let tick_policy = Core.Turquois.default_mac_aware in
      Array.iteri
        (fun i node ->
          let behavior =
            if List.mem i byzantine then
              match strategy with
              | Some s -> Core.Turquois.Byzantine s
              | None -> Core.Turquois.Attacker
            else Core.Turquois.Correct
          in
          let p =
            Core.Turquois.create node cfg ~keyring:keyrings.(i) ~behavior ~tick_policy
              ~proposal:proposals.(i) ()
          in
          if not (List.mem i byzantine) then
            Core.Turquois.on_decide p (fun ~value ~phase -> record i value phase);
          launch i (fun () -> Core.Turquois.start p))
        nodes
  | Bracha ->
      let f = Net.Fault.max_f n in
      Array.iteri
        (fun i node ->
          let behavior =
            if List.mem i byzantine then Baselines.Bracha.Attacker
            else Baselines.Bracha.Correct
          in
          let p =
            Baselines.Bracha.create node ~n ~f ~behavior ~proposal:proposals.(i) ()
          in
          if not (List.mem i byzantine) then
            Baselines.Bracha.on_decide p (fun ~value ~round -> record i value round);
          launch i (fun () -> Baselines.Bracha.start p))
        nodes
  | Abba ->
      let keys = abba_group_keys ~n in
      Array.iteri
        (fun i node ->
          let behavior =
            if List.mem i byzantine then Baselines.Abba.Attacker else Baselines.Abba.Correct
          in
          let p = Baselines.Abba.create node ~keys ~behavior ~proposal:proposals.(i) () in
          if not (List.mem i byzantine) then
            Baselines.Abba.on_decide p (fun ~value ~round -> record i value round);
          launch i (fun () -> Baselines.Abba.start p))
        nodes
  | Sampled ->
      (* sample-based probabilistic consensus over the same radio/MAC
         stack; the sampler and shared coin are public randomness
         derived from the run seed, identical at every node *)
      let net = Scale.Transport.of_nodes nodes ~port:443 in
      let sampler = Scale.Sampler.create ~seed:(Util.Rng.derive ~base:seed [ 0x5a ]) ~n in
      let coin_seed = Util.Rng.derive ~base:seed [ 0xc017 ] in
      (* the default tick is sized for the abstract medium; contended
         802.11b unicast needs whole phases — n * sample_size frames
         sharing one channel — to fit between re-pushes. Each frame's
         channel cost is its data airtime (actual vote-frame size plus
         the UDP/IP header and its length prefix) plus the fixed DCF
         overhead: SIFS, the ACK, DIFS and the average initial
         backoff. *)
      let cfg0 = Scale.Sampled.default_config ~n in
      let tick =
        let datagram_bytes =
          (* u16 port + padded header + length-prefixed payload *)
          Net.Datagram.header_bytes + 1 + Scale.Sampled.state_frame_bytes
        in
        let per_frame =
          Net.Mac.airtime_unicast ~payload_bytes:datagram_bytes
          +. Net.Mac.Const.sifs +. Net.Mac.ack_airtime +. Net.Mac.Const.difs
          +. (float_of_int Net.Mac.Const.cw_min /. 2.0 *. Net.Mac.Const.slot)
        in
        let frames = float_of_int (n * cfg0.Scale.Sampled.sample_size) in
        Float.max 0.25 (1.5 *. frames *. per_frame)
      in
      let cfg = { cfg0 with tick } in
      Array.iteri
        (fun i _node ->
          let behavior =
            if List.mem i byzantine then
              match strategy with
              | Some s when Core.Strategy.name s = "equivocate" ->
                  Scale.Sampled.Equivocator
              | _ -> Scale.Sampled.Attacker
            else Scale.Sampled.Correct
          in
          let p =
            Scale.Sampled.create net sampler cfg ~id:i ~coin_seed ~behavior
              ~proposal:proposals.(i) ()
          in
          if not (List.mem i byzantine) then
            Scale.Sampled.on_decide p (fun ~value ~phase -> record i value phase);
          launch i (fun () -> Scale.Sampled.start p))
        nodes);
  let all_correct_decided () =
    List.for_all (fun i -> Hashtbl.mem decide_time i) correct
  in
  Net.Engine.run_while engine (fun () ->
      Net.Engine.now engine < timeout && not (all_correct_decided ()));
  let timed_out = not (all_correct_decided ()) in
  let latencies = List.filter_map (fun i -> Option.map (fun l -> (i, l)) (Hashtbl.find_opt decide_time i)) correct in
  let decisions = List.filter_map (fun i -> Option.map (fun v -> (i, v)) (Hashtbl.find_opt decide_value i)) correct in
  let decision_phases = List.filter_map (fun i -> Option.map (fun p -> (i, p)) (Hashtbl.find_opt decide_phase i)) correct in
  let agreement =
    match decisions with
    | [] -> true
    | (_, v0) :: rest -> List.for_all (fun (_, v) -> v = v0) rest
  in
  let validity =
    match dist with
    | Unanimous -> List.for_all (fun (_, v) -> v = 1) decisions
    | Divergent -> true
  in
  let radio_stats = Net.Radio.stats radio in
  Obs.Metrics.set "engine.events_live" (float_of_int (Net.Engine.events_live engine));
  Obs.Metrics.set "engine.live_peak" (float_of_int (Net.Engine.live_peak engine));
  Obs.Metrics.set "engine.queued_peak" (float_of_int (Net.Engine.queued_peak engine));
  {
    latencies;
    decisions;
    decision_phases;
    correct;
    agreement;
    validity;
    duration = Net.Engine.now engine;
    timed_out;
    frames_sent = radio_stats.frames_sent;
    bytes_sent = radio_stats.bytes_sent;
    airtime = radio_stats.airtime;
    events_live_peak = Net.Engine.live_peak engine;
    events_queued_peak = Net.Engine.queued_peak engine;
    metrics = [];
  }

let run ~protocol ~n ~dist ~load ?(conditions = Net.Fault.benign_conditions) ?strategy
    ?schedule ?attach ?(timeout = 120.0) ~seed () =
  (* each repetition starts from zeroed sinks: a leaked counter or
     stale trace from the previous run would poison its successor *)
  let result, metrics =
    Obs.Scope.with_run
      (run_body ~protocol ~n ~dist ~load ~conditions ~strategy ~schedule ~attach
         ~timeout ~seed)
  in
  { result with metrics }
