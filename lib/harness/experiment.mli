(** Paper-table regeneration: repetition loops, per-cell statistics, and
    rendering in the layout of Tables 1–3. *)

type cell = {
  protocol : Runner.protocol;
  n : int;
  dist : Runner.dist;
  load : Net.Fault.load;
}

type cell_result = {
  cell : cell;
  summary : Util.Stats.summary;  (** per-process latencies, milliseconds *)
  decided_fraction : float;      (** deciders / correct, over all reps *)
  phase_summary : Util.Stats.summary option;
      (** decision phases (Turquois) or rounds (baselines) *)
  agreement_violations : int;
  validity_violations : int;
  timeouts : int;
}

val run_cell :
  ?reps:int -> ?base_seed:int64 -> ?timeout:float ->
  ?conditions:Net.Fault.conditions -> ?jobs:int -> cell -> cell_result
(** [reps] defaults to the paper's 50 repetitions; each repetition uses
    seed [base_seed + rep]. Repetitions run on the {!Pool} with [jobs]
    workers; all statistics are bit-identical for every [jobs].
    @raise Invalid_argument if no repetition produced a decision. *)

type table_options = {
  reps : int;
  group_sizes : int list;
  protocols : Runner.protocol list;
  base_seed : int64;
  timeout : float;
  progress : (string -> unit) option;  (** per-cell progress callback *)
  jobs : int option;  (** pool workers per cell; [None] = {!Pool.default_jobs} *)
}

val default_options : table_options

val run_table : ?options:table_options -> Net.Fault.load -> cell_result list
(** Every (protocol × group size × distribution) cell of one fault
    load — one paper table. *)

val render_table : Net.Fault.load -> cell_result list -> string
(** ASCII rendering in the paper's layout (group-size rows; protocol ×
    distribution columns), cells as "mean ± ci" in ms. *)

val render_comparison : Net.Fault.load -> cell_result list -> string
(** Three-way cell rendering: measured vs paper, with the ratio. *)

val table_number : Net.Fault.load -> int
(** Failure-free → 1, fail-stop → 2, Byzantine → 3. *)
