(** Abstract synchronous-round simulator over the pure protocol machine.

    Strips away the radio, MAC and timers and exposes exactly the model
    of Sections 3–5: in each round every process broadcasts its state,
    and an adversary suppresses up to σ of the n·(n−c) transmissions
    between correct processes. This isolates the paper's liveness claim
    — progress is guaranteed in rounds with at most
    σ = ⌈(n−t)/2⌉(n−k−t)+k−2 omissions — from all networking effects.

    Broadcasts always carry their explicit justification (the abstract
    model's processes are memoryless across rounds about retransmission,
    so the pessimistic encoding keeps validation self-contained). *)

type adversary =
  | Random_omissions
      (** each round, a uniformly random set of σ (sender, receiver)
          pairs among correct processes is suppressed *)
  | Target_victims
      (** the adversary's strongest pattern: completely silence
          n−k−t victims (isolating them costs (n−t−1) omissions each
          ... bounded by σ) and then starve one more process just below
          its quorum with the remaining budget *)
  | Sigma_edge
      (** the formula-structured adversary: ⌈(n−t)/2⌉ drops against each
          successive victim (the per-victim term of σ), remainder to the
          next — the pattern that makes the bound tight where the
          blocking cost equals k−2 *)

type outcome = {
  deciders : int;        (** correct processes decided at the horizon *)
  rounds_to_k : int option;
      (** first round where at least k correct processes had decided *)
  agreement : bool;
  validity : bool;
}

val sigma : n:int -> k:int -> t:int -> int
(** The paper's bound (re-exported from {!Core.Proto} for the sweep). *)

val run :
  n:int ->
  k:int ->
  ?byzantine:int list ->
  ?dist:Runner.dist ->
  ?adversary:adversary ->
  omissions:int ->
  rounds:int ->
  seed:int64 ->
  unit ->
  outcome
(** Runs [rounds] synchronous rounds with exactly [omissions] suppressed
    transmissions per round (fewer when not that many exist). *)

(** Externally-driven synchronous rounds: the adversary's choices —
    per-receiver omissions and per-round Byzantine strategies — are
    supplied explicitly instead of drawn from a built-in pattern. This
    is the model checker's execution hook and the replay engine for
    serialized round schedules. *)
module Driven : sig
  type sim

  val create :
    n:int ->
    k:int ->
    ?byzantine:int list ->
    ?dist:Runner.dist ->
    horizon:int ->
    seed:int64 ->
    unit ->
    sim
  (** A fresh group at phase 1. [horizon] bounds how many rounds the sim
      will be stepped (it sizes the one-time-key horizon). Key material
      comes from the deterministic per-(n, phases) cache regardless of
      the memoization switch — checker results are key-independent. *)

  val clone : sim -> sim
  (** Independent deep copy; stepping one never affects the other. *)

  val step : sim -> drops:(int * int) list -> byz:(int * Core.Strategy.t) list -> unit
  (** One synchronous round: every process broadcasts (Byzantine ones
      follow their entry in [byz], defaulting to silence — a crash),
      then every (sender, receiver) delivery not in [drops] happens. *)

  val round : sim -> int
  val correct : sim -> int list

  val decisions : sim -> (int * int) list
  (** (id, decided value) for the correct deciders. *)

  val deciders : sim -> int

  val advanced : sim -> int
  (** Correct processes past phase 1. *)

  val violations : sim -> string list
  (** Agreement/validity/integrity breaches in the current state (the
      chaos harness's safety clauses over the abstract sim). *)

  val fingerprint : sim -> string
  (** Canonical serialization of the whole group state (concatenated
      {!Core.Machine.fingerprint}s). Equal fingerprints between sims of
      identical configuration imply identical future behavior under
      identical adversary choices. *)
end

val single_round :
  n:int ->
  k:int ->
  ?byzantine:int list ->
  ?adversary:adversary ->
  omissions:int ->
  seed:int64 ->
  unit ->
  int
(** One synchronous round in isolation, returning how many correct
    processes advanced past phase 1. [byzantine] processes are silent
    (the liveness bound's worst case); the default adversary is
    {!Sigma_edge}. No cross-round adoption can rescue a blocked victim
    here, so at (n,k,t) points where the blocking cost equals k−2 this
    returns [< k] with [omissions = σ] and [>= k] with [σ − 1] — the σ
    tightness check of the test suite. *)
