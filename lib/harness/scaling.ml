(* Scaling sweep past the paper's n=16: Turquois (all-to-all over the
   full radio/MAC stack, up to [turquois_cap]) against the sample-based
   consensus — over the same contended radio up to [radio_cap]
   ("Sampled-radio"), and over the scalable abstract medium on the
   calendar-queue backend at every n ("Sampled"). *)

type point = {
  protocol : string;
  n : int;
  honest : int;
  decided : int;
  mean_latency : float;
  max_latency : float;
  duration : float;
  msgs : int;
  bytes : int;
  airtime : float;
  live_peak : int;
  queued_peak : int;
  arena_hw : int;
  timed_out : bool;
  mem_words : int;
  minor_words : int;
  major_words : int;
}

let default_ns = [ 16; 64; 128; 256; 1024 ]

(* Words allocated by the current domain so far, split by generation
   (major is net of promotions, so the two add up to total allocation).
   The minor counter comes from [Gc.minor_words], which reads the
   calling domain's own allocation pointer — [Gc.quick_stat] aggregates
   minor words across every live domain on this runtime, so under -j N
   it silently bills a slow point for its neighbours' allocations
   (measured 3.6x inflation at -j 4). The major-net-of-promotions
   component still comes from the aggregated stat — only allocations
   that skip the minor heap land there (large buffers), a few percent
   of the total, so cross-domain bleed on it stays within the one-sided
   compare margin. Unlike [top_heap_words] (a process-global monotonic
   high-water mark) the delta across a point's body does not depend on
   which points ran earlier. *)
let gc_words () =
  let s = Gc.quick_stat () in
  (Gc.minor_words (), s.Gc.major_words -. s.Gc.promoted_words)

(* One sampled-consensus execution: n correct nodes, divergent
   proposals, 1% iid loss, all randomness derived from [seed]. *)
let run_sampled ~n ~seed ~timeout =
  let body () =
    let minor0, major0 = gc_words () in
    let engine = Net.Engine.create ~backend:Calendar () in
    let rng = Util.Rng.create ~seed in
    let medium =
      Scale.Medium.create engine (Util.Rng.split rng) ~n ~loss:0.01 ()
    in
    let net = Scale.Transport.of_medium medium in
    let sampler = Scale.Sampler.create ~seed:(Util.Rng.derive ~base:seed [ 1 ]) ~n in
    let coin_seed = Util.Rng.derive ~base:seed [ 2 ] in
    let cfg = Scale.Sampled.default_config ~n in
    let decide_time : (int, float) Hashtbl.t = Hashtbl.create n in
    let nodes =
      Util.Init.array n (fun id ->
          let p =
            Scale.Sampled.create net sampler cfg ~id ~coin_seed
              ~proposal:(id land 1) ()
          in
          Scale.Sampled.on_decide p (fun ~value:_ ~phase:_ ->
              Hashtbl.replace decide_time id (Net.Engine.now engine));
          p)
    in
    Array.iter Scale.Sampled.start nodes;
    Net.Engine.run_while engine (fun () ->
        Net.Engine.now engine < timeout && Hashtbl.length decide_time < n);
    let timed_out = Hashtbl.length decide_time < n in
    (* drain the linger/claim tail so traffic totals are complete *)
    Net.Engine.run ~until:timeout engine;
    let lats = Hashtbl.fold (fun _ l acc -> l :: acc) decide_time [] in
    let stats = Scale.Medium.stats medium in
    let minor1, major1 = gc_words () in
    {
      protocol = "Sampled";
      n;
      honest = n;
      decided = Hashtbl.length decide_time;
      mean_latency =
        (if lats = [] then 0.0
         else List.fold_left ( +. ) 0.0 lats /. float_of_int (List.length lats));
      max_latency = List.fold_left Float.max 0.0 lats;
      duration = Net.Engine.now engine;
      msgs = stats.msgs_sent;
      bytes = stats.bytes_sent;
      airtime = stats.airtime;
      live_peak = Net.Engine.live_peak engine;
      queued_peak = Net.Engine.queued_peak engine;
      arena_hw = Scale.Medium.arena_high_water medium;
      timed_out;
      mem_words = int_of_float (minor1 +. major1 -. (minor0 +. major0));
      minor_words = int_of_float (minor1 -. minor0);
      major_words = int_of_float (major1 -. major0);
    }
  in
  fst (Obs.Scope.with_run body)

(* One Runner execution over the full radio/MAC stack, reduced to a
   sweep point. Shared by the Turquois and Sampled-radio task kinds. *)
let run_radio ~protocol_name ~runner_protocol ~n ~seed ~timeout =
  let minor0, major0 = gc_words () in
  let r =
    Runner.run ~protocol:runner_protocol ~n ~dist:Runner.Divergent
      ~load:Net.Fault.Failure_free ~timeout ~seed ()
  in
  let minor1, major1 = gc_words () in
  let lats = List.map snd r.Runner.latencies in
  {
    protocol = protocol_name;
    n;
    honest = List.length r.Runner.correct;
    decided = List.length lats;
    mean_latency =
      (if lats = [] then 0.0
       else List.fold_left ( +. ) 0.0 lats /. float_of_int (List.length lats));
    max_latency = List.fold_left Float.max 0.0 lats;
    duration = r.Runner.duration;
    msgs = r.Runner.frames_sent;
    bytes = r.Runner.bytes_sent;
    airtime = r.Runner.airtime;
    live_peak = r.Runner.events_live_peak;
    queued_peak = r.Runner.events_queued_peak;
    (* for Turquois the arena is the per-run interned message store:
       its size is the count of distinct messages the whole group
       materialized (the flat V sets and justification bundles hold
       indices into it) *)
    arena_hw =
      (match runner_protocol with
      | Runner.Turquois -> Core.Msgstore.size (Core.Msgstore.current ())
      | _ -> 0);
    timed_out = r.Runner.timed_out;
    mem_words = int_of_float (minor1 +. major1 -. (minor0 +. major0));
    minor_words = int_of_float (minor1 -. minor0);
    major_words = int_of_float (major1 -. major0);
  }

let run_turquois ~n ~seed ~timeout =
  run_radio ~protocol_name:"Turquois" ~runner_protocol:Runner.Turquois ~n ~seed ~timeout

let run_sampled_radio ~n ~seed ~timeout =
  run_radio ~protocol_name:"Sampled-radio" ~runner_protocol:Runner.Sampled ~n ~seed
    ~timeout

let sweep ?jobs ?(ns = default_ns) ?(turquois_cap = 128) ?(radio_cap = 256)
    ?(timeout = 30.0) ~seed () =
  if ns = [] then invalid_arg "Scaling.sweep: need at least one n";
  let tasks =
    Array.of_list
      (List.concat_map
         (fun n ->
           (if n <= turquois_cap then [ ("Turquois", n) ] else [])
           @ (if n <= radio_cap then [ ("Sampled-radio", n) ] else [])
           @ [ ("Sampled", n) ])
         ns)
  in
  Pool.map ?jobs ~tasks:(Array.length tasks) (fun i ->
      let protocol, n = tasks.(i) in
      let seed = Util.Rng.derive ~base:seed [ i; n ] in
      match protocol with
      | "Turquois" -> run_turquois ~n ~seed ~timeout
      | "Sampled-radio" -> run_sampled_radio ~n ~seed ~timeout
      | _ -> run_sampled ~n ~seed ~timeout)
  |> Array.to_list

(* deterministic fields only: the table is diffed across -j values *)
let render points =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-13s %5s %9s %10s %10s %9s %9s %11s %9s %9s %10s %8s %6s\n"
       "protocol" "n" "decided" "mean_ms" "max_ms" "dur_s" "msgs" "bytes"
       "airtime_s" "live_pk" "queued_pk" "arena" "t/o");
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf
           "%-13s %5d %4d/%-4d %10.2f %10.2f %9.3f %9d %11d %9.3f %9d %10d %8d %6s\n"
           p.protocol p.n p.decided p.honest (p.mean_latency *. 1e3)
           (p.max_latency *. 1e3) p.duration p.msgs p.bytes p.airtime p.live_peak
           p.queued_peak p.arena_hw
           (if p.timed_out then "yes" else "no")))
    points;
  Buffer.contents buf

type doc = {
  ns : int list;
  turquois_cap : int;
  radio_cap : int;
  timeout : float;
  seed : int64;
  points : point list;
}

let to_json ~schema_version ~ns ~turquois_cap ~radio_cap ~timeout ~seed points =
  Obs.Json.Obj
    [
      ("bench", Obs.Json.String "scaling");
      ("bench_schema_version", Obs.Json.Int schema_version);
      ("sizes", Obs.Json.List (List.map (fun n -> Obs.Json.Int n) ns));
      ("turquois_cap", Obs.Json.Int turquois_cap);
      ("radio_cap", Obs.Json.Int radio_cap);
      ("timeout_s", Obs.Json.Float timeout);
      ("seed", Obs.Json.String (Int64.to_string seed));
      ( "points",
        Obs.Json.List
          (List.map
             (fun p ->
               Obs.Json.Obj
                 [
                   ("protocol", Obs.Json.String p.protocol);
                   ("n", Obs.Json.Int p.n);
                   ("honest", Obs.Json.Int p.honest);
                   ("decided", Obs.Json.Int p.decided);
                   ("mean_latency_s", Obs.Json.Float p.mean_latency);
                   ("max_latency_s", Obs.Json.Float p.max_latency);
                   ("duration_s", Obs.Json.Float p.duration);
                   ("msgs", Obs.Json.Int p.msgs);
                   ("bytes", Obs.Json.Int p.bytes);
                   ("airtime_s", Obs.Json.Float p.airtime);
                   ("live_peak", Obs.Json.Int p.live_peak);
                   ("queued_peak", Obs.Json.Int p.queued_peak);
                   ("arena_hw", Obs.Json.Int p.arena_hw);
                   ("timed_out", Obs.Json.Bool p.timed_out);
                   ("mem_words", Obs.Json.Int p.mem_words);
                   ("minor_words", Obs.Json.Int p.minor_words);
                   ("major_words", Obs.Json.Int p.major_words);
                 ])
             points) );
    ]

let of_json json =
  let open Obs.Json in
  let ( let* ) o f = match o with Some v -> f v | None -> Error "malformed scaling doc" in
  let* bench = Option.bind (member "bench" json) to_str in
  if bench <> "scaling" then Error "not a scaling document"
  else
    let* ns =
      match Option.bind (member "sizes" json) to_list with
      | None -> None
      | Some l ->
          List.fold_left
            (fun acc j ->
              match (acc, to_int j) with
              | Some ns, Some n -> Some (n :: ns)
              | _, _ -> None)
            (Some []) l
          |> Option.map List.rev
    in
    let* turquois_cap = Option.bind (member "turquois_cap" json) to_int in
    (* absent in schema <= 3 documents: those predate the Sampled-radio
       task kind, so no radio points were run *)
    let radio_cap =
      Option.value ~default:0 (Option.bind (member "radio_cap" json) to_int)
    in
    let* timeout = Option.bind (member "timeout_s" json) to_float in
    let* seed =
      Option.bind (member "seed" json) (fun j ->
          Option.bind (to_str j) Int64.of_string_opt)
    in
    let* points = Option.bind (member "points" json) to_list in
    let parse_point p =
      let int k = Option.bind (member k p) to_int in
      let flt k = Option.bind (member k p) to_float in
      let* protocol = Option.bind (member "protocol" p) to_str in
      let* n = int "n" in
      let* honest = int "honest" in
      let* decided = int "decided" in
      let* mean_latency = flt "mean_latency_s" in
      let* max_latency = flt "max_latency_s" in
      let* duration = flt "duration_s" in
      let* msgs = int "msgs" in
      let* bytes = int "bytes" in
      let* airtime = flt "airtime_s" in
      let* live_peak = int "live_peak" in
      let* queued_peak = int "queued_peak" in
      let* arena_hw = int "arena_hw" in
      let* timed_out = Option.bind (member "timed_out" p) to_bool in
      let* mem_words = int "mem_words" in
      (* absent in schema <= 3 documents; 0 = not measured *)
      let minor_words = Option.value ~default:0 (int "minor_words") in
      let major_words = Option.value ~default:0 (int "major_words") in
      Ok
        {
          protocol;
          n;
          honest;
          decided;
          mean_latency;
          max_latency;
          duration;
          msgs;
          bytes;
          airtime;
          live_peak;
          queued_peak;
          arena_hw;
          timed_out;
          mem_words;
          minor_words;
          major_words;
        }
    in
    List.fold_left
      (fun acc p ->
        match (acc, parse_point p) with
        | Error e, _ -> Error e
        | _, Error e -> Error e
        | Ok ps, Ok p -> Ok (p :: ps))
      (Ok []) points
    |> Result.map (fun points ->
           { ns; turquois_cap; radio_cap; timeout; seed; points = List.rev points })
