type bug = No_bug | Flip_reported_decision

type failure = {
  index : int;
  seed : int64;
  protocol : Runner.protocol;
  strategy : string option;
  dist : Runner.dist;
  schedule : Net.Schedule.t;
  violations : string list;
  shrunk : Net.Schedule.t;
}

type report = {
  runs : int;
  liveness_checked : int;
  failures : failure list;
}

(* One randomized experiment: which protocol sees which faults. The
   plan is pure data so a failing run can be re-executed verbatim
   against shrunken schedules. *)
type plan = {
  p_index : int;
  p_seed : int64;
  p_dist : Runner.dist;
  p_load : Net.Fault.load;
  p_strategy : Core.Strategy.t option;
  p_schedule : Net.Schedule.t;
}

(* Chaos runs carry no ambient loss: every omission comes from the
   schedule, so the analyzer's fault attribution is exact and the
   liveness check is sound. *)
let clean_conditions = { Net.Fault.loss_prob = 0.0; jam_windows = [] }

let make_plan ~n ~strategy_pool ~seed index =
  let p_seed = Int64.add seed (Int64.of_int (1 + (index * 7919))) in
  let rng = Util.Rng.create ~seed:p_seed in
  let p_dist = if Util.Rng.bool rng then Runner.Unanimous else Runner.Divergent in
  (* two thirds of the runs put the strategy library on the air *)
  let byz = Util.Rng.int rng 3 > 0 && strategy_pool <> [] in
  let p_strategy =
    if byz then Some (List.nth strategy_pool (index mod List.length strategy_pool))
    else None
  in
  let p_load = if byz then Net.Fault.Byzantine else Net.Fault.Failure_free in
  let duration = 0.3 +. Util.Rng.float rng 0.3 in
  let events = 3 + Util.Rng.int rng 5 in
  let p_schedule =
    Net.Schedule.random ~rng:(Util.Rng.split rng) ~n ~duration ~events ()
  in
  { p_index = index; p_seed; p_dist; p_load; p_strategy; p_schedule }

(* The liveness check is only sound when the schedule is provably quiet
   after some horizon AND contains no crash windows: a node that is down
   while the rest decide and linger can stay undecided forever without
   contradicting the σ bound (the model assumes processes keep
   participating). *)
let liveness_horizon schedule =
  let has_crash =
    List.exists
      (fun e -> match e.Net.Schedule.action with Net.Schedule.Crash _ -> true | _ -> false)
      schedule
  in
  if has_crash then None else Net.Schedule.quiet_after schedule

let apply_bug bug (r : Runner.result) =
  match bug with
  | No_bug -> r
  | Flip_reported_decision -> begin
      (* a deliberately broken machine: the lowest-id correct process
         reports the opposite decision — the harness must catch it *)
      match r.decisions with
      | (i, v) :: rest -> { r with decisions = (i, 1 - v) :: rest }
      | [] -> r
    end

(* Safety invariants, checked on every run; the liveness clause only
   when [deadline] is sound. *)
let violations_of ~dist ~deadline (r : Runner.result) =
  let out = ref [] in
  let add fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  (match r.decisions with
  | [] -> ()
  | (_, v0) :: rest ->
      List.iter
        (fun (i, v) -> if v <> v0 then add "agreement: p%d decided %d, others %d" i v v0)
        rest);
  (match dist with
  | Runner.Unanimous ->
      List.iter
        (fun (i, v) -> if v <> 1 then add "validity: p%d decided %d against unanimous 1" i v)
        r.decisions
  | Runner.Divergent -> ());
  List.iter
    (fun (i, v) ->
      if v <> 0 && v <> 1 then add "integrity: p%d decided non-binary %d" i v;
      if not (List.mem i r.correct) then add "integrity: faulty p%d counted as decider" i)
    r.decisions;
  let ids = List.map fst r.decisions in
  if List.length ids <> List.length (List.sort_uniq compare ids) then
    add "integrity: a process decided more than once";
  (match deadline with
  | Some _ when r.timed_out ->
      add "liveness: correct processes undecided on a provably quiet channel"
  | Some _ | None -> ());
  List.rev !out

(* Re-execute one schedule and report its invariant breaches — the
   chaos harness's own check, exported so serialized reproducers replay
   through the exact code path that found them. The fault load is
   implied by [strategy] (the same rule [make_plan] uses). *)
let check_schedule ~protocol ~n ?(bug = No_bug) ~dist ?strategy ~schedule ~seed () =
  let deadline = liveness_horizon schedule in
  let timeout = match deadline with Some h -> h +. 30.0 | None -> 10.0 in
  let load =
    match strategy with Some _ -> Net.Fault.Byzantine | None -> Net.Fault.Failure_free
  in
  let r =
    Runner.run ~protocol ~n ~dist ~load ~conditions:clean_conditions ?strategy ~schedule
      ~timeout ~seed ()
  in
  violations_of ~dist ~deadline (apply_bug bug r)

let execute ~protocol ~n ~bug plan schedule =
  check_schedule ~protocol ~n ~bug ~dist:plan.p_dist ?strategy:plan.p_strategy ~schedule
    ~seed:plan.p_seed ()

(* Delta-debug the schedule to a local minimum that still violates. *)
let shrink ~protocol ~n ~bug plan =
  let fails candidate = execute ~protocol ~n ~bug plan candidate <> [] in
  let rec go schedule =
    match List.find_opt fails (Net.Schedule.shrink_candidates schedule) with
    | Some smaller -> go smaller
    | None -> schedule
  in
  go plan.p_schedule

let strategy_label plan =
  Option.map Core.Strategy.name plan.p_strategy

let default_protocols = [ Runner.Turquois; Runner.Bracha; Runner.Abba ]

let run_chaos ?(n = 4) ?(bug = No_bug) ?strategy ?(protocols = default_protocols)
    ?(log = fun _ -> ()) ?jobs ~runs ~seed () =
  let strategy_pool = match strategy with Some s -> [ s ] | None -> Core.Strategy.all in
  (* phase 1, parallel: every plan is derived from (seed, index) alone,
     so the (plan, violations) pairs land in slot order and are
     independent of worker scheduling *)
  let executed =
    Pool.map ?jobs ~tasks:runs (fun index ->
        let plan = make_plan ~n ~strategy_pool ~seed index in
        let outcomes =
          List.map
            (fun protocol -> (protocol, execute ~protocol ~n ~bug plan plan.p_schedule))
            protocols
        in
        (plan, outcomes))
  in
  (* phase 2, sequential: delta-debug shrinking re-executes shrinking
     candidate schedules in a data-dependent order, so it stays on the
     calling domain — failures are rare, and reports keep the exact
     sequential ordering *)
  let liveness_checked = ref 0 in
  let failures = ref [] in
  Array.iter
    (fun (plan, outcomes) ->
      if liveness_horizon plan.p_schedule <> None then incr liveness_checked;
      List.iter
        (fun (protocol, violations) ->
          match violations with
          | [] -> ()
          | violations ->
              let shrunk = shrink ~protocol ~n ~bug plan in
              let failure =
                {
                  index = plan.p_index;
                  seed = plan.p_seed;
                  protocol;
                  strategy = strategy_label plan;
                  dist = plan.p_dist;
                  schedule = plan.p_schedule;
                  violations;
                  shrunk;
                }
              in
              log
                (Printf.sprintf
                   "FAIL run %d %s (seed %Ld, %s%s): %s\n  minimal reproducer: %s"
                   plan.p_index
                   (Runner.protocol_to_string protocol)
                   plan.p_seed
                   (Runner.dist_to_string plan.p_dist)
                   (match failure.strategy with Some s -> ", strategy " ^ s | None -> "")
                   (String.concat "; " violations)
                   (Net.Schedule.to_string shrunk));
              failures := failure :: !failures)
        outcomes;
      if (plan.p_index + 1) mod 25 = 0 then
        log
          (Printf.sprintf "%d/%d runs, %d failure(s)" (plan.p_index + 1) runs
             (List.length !failures)))
    executed;
  { runs; liveness_checked = !liveness_checked; failures = List.rev !failures }
