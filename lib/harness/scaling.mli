(** Scaling sweep: Turquois vs the sample-based protocols as n grows
    past the paper's 16-node testbed (16 / 64 / 128 / 256 / 1024).

    Turquois is all-to-all — every phase costs O(n^2) receptions — so
    it is only run up to [turquois_cap]. The sampled protocol runs
    twice: over the same contended 802.11b radio/MAC stack up to
    [radio_cap] ("Sampled-radio"), and at every n over the scalable
    abstract {!Scale.Medium} on the calendar-queue engine backend
    ("Sampled"). Each point reports decision coverage, latency,
    traffic, airtime and the engine/arena high-water marks; every
    rendered field is a deterministic function of the seed, so tables
    are bit-identical across [-j N] (the allocation-word fields are
    within a cache-warmup constant of deterministic and stay out of
    the table). *)

type point = {
  protocol : string;
  n : int;
  honest : int;
  decided : int;  (** honest nodes that decided before the timeout *)
  mean_latency : float;  (** seconds, over deciders *)
  max_latency : float;
  duration : float;  (** simulated seconds until quiescence/timeout *)
  msgs : int;
  bytes : int;
  airtime : float;  (** cumulative medium occupancy, seconds *)
  live_peak : int;  (** engine live-event high-water mark *)
  queued_peak : int;  (** raw event-queue high-water mark *)
  arena_hw : int;
      (** peak in-flight messages (sampled abstract runs) or distinct
          interned messages in the per-run {!Core.Msgstore} (Turquois
          runs); 0 where neither applies *)
  timed_out : bool;
  mem_words : int;
      (** words allocated by the point on its own domain (minor +
          major - promoted delta) — a coarse memory-cost proxy that,
          unlike a process-global heap high-water mark, does not
          depend on which points ran earlier. The dominant minor
          component is read from the domain-local allocation counter
          and is [-j]-independent; the small direct-to-major remainder
          comes from the aggregated GC stat and can pick up a few
          percent of cross-domain bleed under [-j N]. Domain-cache
          warmup can also shift it by a small constant, so it is
          excluded from {!render} and compared one-sidedly. *)
  minor_words : int;  (** minor-generation component of [mem_words] *)
  major_words : int;
      (** net major-generation component (major - promoted) *)
}

val default_ns : int list
(** [16; 64; 128; 256; 1024] *)

val sweep :
  ?jobs:int ->
  ?ns:int list ->
  ?turquois_cap:int ->
  ?radio_cap:int ->
  ?timeout:float ->
  seed:int64 ->
  unit ->
  point list
(** Runs the grid on the worker pool. [turquois_cap] defaults to 128,
    [radio_cap] (largest n for the Sampled-radio task) to 256,
    [timeout] (simulated seconds) to 30. Point order follows [ns];
    at each n: Turquois, then Sampled-radio, then Sampled. *)

val render : point list -> string
(** Fixed-width table of the deterministic fields only. *)

type doc = {
  ns : int list;
  turquois_cap : int;
  radio_cap : int;  (** 0 in documents predating the radio task *)
  timeout : float;
  seed : int64;
  points : point list;
}
(** A parsed scaling document: the sweep parameters it was generated
    with (so [--compare] can re-run the identical grid) plus its
    points. *)

val to_json :
  schema_version:int ->
  ns:int list ->
  turquois_cap:int ->
  radio_cap:int ->
  timeout:float ->
  seed:int64 ->
  point list ->
  Obs.Json.t
(** Self-describing document (["bench" = "scaling"]) for
    [BENCH_scaling.json]; records the sweep parameters and includes
    the allocation-word fields. *)

val of_json : Obs.Json.t -> (doc, string) result
(** Parses a document produced by {!to_json} (for [--compare]). *)
