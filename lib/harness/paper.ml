let group_sizes = [ 4; 7; 10; 13; 16 ]

(* (n, unanimous (mean, ci), divergent (mean, ci)) per protocol. *)

let table1_turquois =
  [
    (4, (14.90, 4.74), (28.67, 9.99));
    (7, (26.85, 6.18), (54.38, 12.20));
    (10, (43.15, 10.05), (71.75, 25.05));
    (13, (60.94, 14.15), (128.07, 42.51));
    (16, (87.57, 22.34), (236.31, 77.27));
  ]

let table1_abba =
  [
    (4, (74.70, 7.93), (135.39, 28.04));
    (7, (125.81, 6.22), (253.66, 37.93));
    (10, (277.90, 12.47), (547.42, 81.94));
    (13, (693.39, 103.45), (1722.44, 295.05));
    (16, (1914.54, 283.18), (4309.51, 750.20));
  ]

let table1_bracha =
  [
    (4, (101.06, 8.15), (127.39, 22.99));
    (7, (552.77, 31.36), (715.15, 112.90));
    (10, (1361.90, 33.17), (2282.23, 315.53));
    (13, (3459.10, 100.34), (6276.91, 734.11));
    (16, (7321.41, 110.69), (10420.00, 2640.11));
  ]

let table2_turquois =
  [
    (4, (42.26, 30.29), (43.84, 31.27));
    (7, (106.28, 37.98), (110.18, 22.00));
    (10, (168.45, 39.46), (188.95, 35.05));
    (13, (375.00, 56.03), (387.22, 60.06));
    (16, (395.96, 55.11), (422.65, 82.41));
  ]

let table2_abba =
  [
    (4, (77.31, 9.17), (77.88, 9.34));
    (7, (183.20, 15.96), (169.90, 6.18));
    (10, (310.97, 15.61), (335.93, 24.09));
    (13, (747.56, 44.77), (771.68, 52.71));
    (16, (1180.03, 109.18), (1284.83, 103.64));
  ]

let table2_bracha =
  [
    (4, (99.29, 3.05), (99.61, 3.17));
    (7, (516.26, 26.70), (519.76, 37.63));
    (10, (2488.75, 52.53), (2619.35, 75.43));
    (13, (5992.63, 143.00), (6267.88, 355.51));
    (16, (6362.68, 136.64), (6469.38, 159.40));
  ]

let table3_turquois =
  [
    (4, (44.74, 30.16), (80.18, 33.93));
    (7, (96.20, 37.88), (186.74, 60.54));
    (10, (145.22, 23.21), (288.94, 64.04));
    (13, (386.39, 38.57), (719.79, 72.57));
    (16, (590.95, 76.14), (904.27, 83.48));
  ]

let table3_abba =
  [
    (4, (87.65, 22.38), (197.78, 25.25));
    (7, (198.69, 17.72), (361.53, 48.41));
    (10, (481.83, 31.10), (1137.94, 37.78));
    (13, (1573.46, 110.70), (3276.53, 211.76));
    (16, (2940.68, 426.93), (6045.06, 533.52));
  ]

let table3_bracha =
  [
    (4, (111.16, 6.99), (248.66, 38.80));
    (7, (619.09, 23.40), (1634.17, 236.21));
    (10, (2216.42, 54.17), (5633.47, 668.64));
    (13, (5445.93, 114.10), (12656.41, 1572.59));
    (16, (7698.29, 180.10), (20412.36, 2271.55));
  ]

let table ~load ~protocol =
  match (load, protocol) with
  | Net.Fault.Failure_free, Runner.Turquois -> table1_turquois
  | Net.Fault.Failure_free, Runner.Abba -> table1_abba
  | Net.Fault.Failure_free, Runner.Bracha -> table1_bracha
  | Net.Fault.Fail_stop, Runner.Turquois -> table2_turquois
  | Net.Fault.Fail_stop, Runner.Abba -> table2_abba
  | Net.Fault.Fail_stop, Runner.Bracha -> table2_bracha
  | Net.Fault.Byzantine, Runner.Turquois -> table3_turquois
  | Net.Fault.Byzantine, Runner.Abba -> table3_abba
  | Net.Fault.Byzantine, Runner.Bracha -> table3_bracha
  | _, Runner.Sampled -> [] (* beyond the paper: no published table *)

let value ~load ~protocol ~n ~dist =
  match List.assoc_opt n (List.map (fun (g, u, d) -> (g, (u, d))) (table ~load ~protocol)) with
  | None -> None
  | Some (unanimous, divergent) -> (
      match dist with
      | Runner.Unanimous -> Some unanimous
      | Runner.Divergent -> Some divergent)
