type public = { n : Znum.t; e : Znum.t }
type secret = { n : Znum.t; d : Znum.t }
type keypair = { pub : public; sec : secret }

let public_exponent = Znum.of_int 65537

let generate rng ~bits =
  if bits < 384 then invalid_arg "Rsa.generate: modulus too small to sign a SHA-256 digest";
  let half = bits / 2 in
  let rec attempt () =
    let p = Prime.random_prime rng ~bits:half in
    let q = Prime.random_prime rng ~bits:(bits - half) in
    if Znum.equal p q then attempt ()
    else begin
      let n = Znum.mul p q in
      let p1 = Znum.sub p Znum.one and q1 = Znum.sub q Znum.one in
      let lambda = Znum.div (Znum.mul p1 q1) (Znum.gcd p1 q1) in
      match Znum.mod_inv public_exponent ~m:lambda with
      | None -> attempt ()
      | Some d -> { pub = { n; e = public_exponent }; sec = { n; d } }
    end
  in
  attempt ()

let modulus_size n = (Znum.bit_length n + 7) / 8
let signature_size (pk : public) = modulus_size pk.n

(* 0x00 0x01 0xFF... 0x00 digest — enough structure to reject random
   forgeries, which is all the simulation requires. *)
let pad_digest ~len digest =
  let dlen = Bytes.length digest in
  if len < dlen + 11 then invalid_arg "Rsa.pad_digest: modulus too small for digest";
  let out = Bytes.make len '\xff' in
  Bytes.set out 0 '\x00';
  Bytes.set out 1 '\x01';
  Bytes.set out (len - dlen - 1) '\x00';
  Bytes.blit digest 0 out (len - dlen) dlen;
  out

let sign (sk : secret) msg =
  let len = modulus_size sk.n in
  let padded = Znum.of_bytes_be (pad_digest ~len (Sha256.digest msg)) in
  let s = Znum.mod_pow ~base:padded ~exp:sk.d ~m:sk.n in
  Znum.to_bytes_be ~len s

let verify (pk : public) msg ~signature =
  let len = modulus_size pk.n in
  if Bytes.length signature <> len then false
  else begin
    let s = Znum.of_bytes_be signature in
    if Znum.compare s pk.n >= 0 then false
    else begin
      let m = Znum.mod_pow ~base:s ~exp:pk.e ~m:pk.n in
      let expected = Znum.of_bytes_be (pad_digest ~len (Sha256.digest msg)) in
      Znum.equal m expected
    end
  end

let public_to_bytes (pk : public) =
  let w = Util.Codec.W.create () in
  Util.Codec.W.bytes_lp w (Znum.to_bytes_be pk.n);
  Util.Codec.W.bytes_lp w (Znum.to_bytes_be pk.e);
  Util.Codec.W.contents w

let public_of_bytes b =
  let r = Util.Codec.R.of_bytes b in
  let n = Znum.of_bytes_be (Util.Codec.R.bytes_lp r) in
  let e = Znum.of_bytes_be (Util.Codec.R.bytes_lp r) in
  Util.Codec.R.expect_end r;
  { n; e }
