(** RIPEMD-160 (Dobbertin–Bosselaers–Preneel).

    The paper's Section 6.1 names RIPEMD-160 alongside SHA-256 as a
    suitable one-way function [H] for the one-time signature scheme; this
    is the drop-in 20-byte alternative for deployments that prefer the
    smaller keys (a VK array shrinks by 37.5%). *)

val digest_size : int
(** 20. *)

val digest : bytes -> bytes
val digest_string : string -> bytes
val hex_digest_string : string -> string
