(** Merkle hash trees over byte-string leaves.

    Supports the paper's Section 6.1 remark that the key-exchange scheme
    "can be further optimized": instead of pre-distributing a process's
    full verification-key array (5 × 32 bytes per phase), only the
    32-byte Merkle root need travel out of band; each broadcast then
    carries the verification key plus its log₂-length authentication
    path. {!path_size} and {!array_size} quantify the trade-off. *)

type tree

val build : bytes list -> tree
(** Builds the tree over the leaves in order. Leaf and node hashes are
    domain-separated (second-preimage hardening), odd nodes are promoted
    unhashed. @raise Invalid_argument on an empty leaf list. *)

val root : tree -> bytes
(** The 32-byte root commitment. *)

val leaf_count : tree -> int

type path
(** Authentication path of one leaf: sibling hashes bottom-up. *)

val prove : tree -> index:int -> path
(** @raise Invalid_argument for an out-of-range index. *)

val verify : root:bytes -> index:int -> leaf:bytes -> path -> bool
(** Recomputes the root from [leaf] and the path. Total. *)

val path_length : path -> int
val path_to_bytes : path -> bytes
val path_of_bytes : bytes -> path
(** @raise Util.Codec.Malformed / Truncated on garbage. *)

val path_size : leaves:int -> int
(** Serialized byte size of a path for a tree of [leaves] leaves. *)

val array_size : leaves:int -> int
(** Byte size of distributing all leaves' hashes directly (the paper's
    baseline VK-array distribution). *)
