(* Domain separation: leaf hashes use prefix 0x00, interior nodes 0x01,
   so a leaf cannot be confused with an encoding of two children. Odd
   last nodes are promoted to the next level unhashed. *)

let leaf_hash data = Sha256.digest_concat [ Bytes.make 1 '\x00'; data ]
let node_hash l r = Sha256.digest_concat [ Bytes.make 1 '\x01'; l; r ]

type tree = { levels : bytes array array (* levels.(0) = leaf hashes *) }

let build leaves =
  if leaves = [] then invalid_arg "Merkle.build: no leaves";
  let level0 = Array.of_list (List.map leaf_hash leaves) in
  let rec grow acc level =
    if Array.length level = 1 then List.rev (level :: acc)
    else begin
      let n = Array.length level in
      let next =
        Array.init
          ((n + 1) / 2)
          (fun i ->
            if (2 * i) + 1 < n then node_hash level.(2 * i) level.((2 * i) + 1)
            else level.(2 * i))
      in
      grow (level :: acc) next
    end
  in
  { levels = Array.of_list (grow [] level0) }

let root t = t.levels.(Array.length t.levels - 1).(0)
let leaf_count t = Array.length t.levels.(0)

type path = bytes option list
(* bottom-up siblings; None where the node had no sibling *)

let prove t ~index =
  if index < 0 || index >= leaf_count t then invalid_arg "Merkle.prove: index out of range";
  let rec go level i acc =
    if level >= Array.length t.levels - 1 then List.rev acc
    else begin
      let nodes = t.levels.(level) in
      let sibling =
        let j = if i mod 2 = 0 then i + 1 else i - 1 in
        if j < Array.length nodes then Some nodes.(j) else None
      in
      go (level + 1) (i / 2) (sibling :: acc)
    end
  in
  go 0 index []

let verify ~root:expected ~index ~leaf path =
  if index < 0 then false
  else begin
    let rec go i acc = function
      | [] -> acc
      | sibling :: rest ->
          let acc =
            match sibling with
            | Some s -> if i mod 2 = 0 then node_hash acc s else node_hash s acc
            | None -> acc
          in
          go (i / 2) acc rest
    in
    Bytes.equal (go index (leaf_hash leaf) path) expected
  end

let path_length p = List.length p

let path_to_bytes p =
  let w = Util.Codec.W.create () in
  Util.Codec.W.u16 w (List.length p);
  List.iter
    (fun entry ->
      match entry with
      | Some h ->
          Util.Codec.W.u8 w 1;
          Util.Codec.W.bytes w h
      | None -> Util.Codec.W.u8 w 0)
    p;
  Util.Codec.W.contents w

let path_of_bytes b =
  let r = Util.Codec.R.of_bytes b in
  let n = Util.Codec.R.u16 r in
  (* the closure advances the reader: application order must be pinned *)
  let p =
    Util.Init.list n (fun _ ->
        match Util.Codec.R.u8 r with
        | 1 -> Some (Util.Codec.R.bytes r Sha256.digest_size)
        | 0 -> None
        | _ -> raise (Util.Codec.Malformed "merkle path entry"))
  in
  Util.Codec.R.expect_end r;
  p

let rec depth_of leaves = if leaves <= 1 then 0 else 1 + depth_of ((leaves + 1) / 2)

let path_size ~leaves =
  if leaves < 1 then invalid_arg "Merkle.path_size";
  2 + (depth_of leaves * (1 + Sha256.digest_size))

let array_size ~leaves =
  if leaves < 1 then invalid_arg "Merkle.array_size";
  leaves * Sha256.digest_size
