(** Threshold common coin (Cachin–Kursawe–Shoup style, Diffie–Hellman
    based) used by the ABBA baseline.

    Setup is by a trusted dealer (the paper pre-distributes all keys
    before the runs): a secret [x] is Shamir-shared over the order-q
    subgroup of a Schnorr group. The coin with name [c] is the least
    significant bit of [H(H2(c)^x)]; party [i] contributes the share
    [H2(c)^{x_i}] plus a Chaum–Pedersen DLEQ proof that ties the share
    to its public verification key [g^{x_i}], and any [threshold] valid
    shares reconstruct the coin in the exponent via Lagrange
    interpolation. *)

type params
(** Group parameters plus per-party public verification keys; common to
    all parties. *)

type key_share
(** One party's secret share [x_i]. *)

type share
(** A coin share with its DLEQ proof, ready to travel in a message. *)

val setup :
  Util.Rng.t -> n:int -> threshold:int -> ?pbits:int -> ?qbits:int -> unit ->
  params * key_share array
(** Trusted-dealer setup for [n] parties (indices 0..n-1). [threshold]
    shares are necessary and sufficient to evaluate a coin. Defaults:
    [pbits = 512], [qbits = 160]. *)

val threshold : params -> int

val create_share : params -> key_share -> name:string -> share
(** [create_share params ks ~name] evaluates party [ks]'s contribution
    to the coin named [name] and attaches the DLEQ proof. *)

val share_owner : share -> int

val verify_share : params -> name:string -> share -> bool
(** Checks the DLEQ proof; rejects shares from out-of-range parties or
    with malformed group elements. *)

val combine : params -> name:string -> share list -> int option
(** [combine params ~name shares] returns [Some bit] when at least
    [threshold] valid shares from distinct parties are supplied;
    [None] otherwise. Shares failing {!verify_share} are ignored. *)

val share_to_bytes : share -> bytes
val share_of_bytes : bytes -> share
(** @raise Util.Codec.Malformed / Truncated on garbage. *)

val share_size : params -> int
(** Wire size of one share in bytes (message-size accounting). *)
