(** HMAC-SHA-256 (RFC 2104).

    Models the IPSec Authentication Header protection that the paper's
    evaluation applies to Bracha's point-to-point channels, and provides
    keyed integrity wherever the simulator needs it. *)

val mac : key:bytes -> bytes -> bytes
(** [mac ~key data] is the 32-byte HMAC-SHA-256 tag. *)

val mac_string : key:bytes -> string -> bytes

val verify : key:bytes -> bytes -> tag:bytes -> bool
(** Constant-time comparison of the recomputed tag with [tag]. *)
