let block_size = 64

let normalize_key key =
  let key = if Bytes.length key > block_size then Sha256.digest key else key in
  let out = Bytes.make block_size '\000' in
  Bytes.blit key 0 out 0 (Bytes.length key);
  out

let xor_pad key byte =
  let out = Bytes.create block_size in
  for i = 0 to block_size - 1 do
    Bytes.set out i (Char.chr (Char.code (Bytes.get key i) lxor byte))
  done;
  out

let mac ~key data =
  let key = normalize_key key in
  let inner = Sha256.digest_concat [ xor_pad key 0x36; data ] in
  Sha256.digest_concat [ xor_pad key 0x5c; inner ]

let mac_string ~key s = mac ~key (Bytes.of_string s)

let verify ~key data ~tag =
  let expected = mac ~key data in
  if Bytes.length tag <> Bytes.length expected then false
  else begin
    let acc = ref 0 in
    for i = 0 to Bytes.length expected - 1 do
      acc := !acc lor (Char.code (Bytes.get expected i) lxor Char.code (Bytes.get tag i))
    done;
    !acc = 0
  end
