type share = { index : int; value : Znum.t }

let deal rng ~q ~secret ~threshold ~n =
  if threshold < 1 || threshold > n then invalid_arg "Shamir.deal: need 1 <= threshold <= n";
  if Znum.sign q <= 0 then invalid_arg "Shamir.deal: q must be positive";
  (* coefficients a_0 = secret, a_1 .. a_{t-1} random *)
  (* the closure draws from [rng]: application order must be pinned *)
  let coeffs =
    Util.Init.array threshold (fun i ->
        if i = 0 then Znum.emod secret q else Prime.random_below rng q)
  in
  let eval x =
    (* Horner, mod q *)
    let acc = ref Znum.zero in
    for i = threshold - 1 downto 0 do
      acc := Znum.emod (Znum.add (Znum.mul !acc x) coeffs.(i)) q
    done;
    !acc
  in
  List.init n (fun i ->
      let index = i + 1 in
      { index; value = eval (Znum.of_int index) })

let lagrange_at_zero ~q indices =
  let distinct = List.sort_uniq compare indices in
  if List.length distinct <> List.length indices then
    invalid_arg "Shamir.lagrange_at_zero: duplicate indices";
  if List.exists (fun i -> i <= 0) indices then
    invalid_arg "Shamir.lagrange_at_zero: indices must be positive";
  let coefficient i =
    (* λ_i(0) = Π_{j≠i} (-j) / (i - j) mod q *)
    let num = ref Znum.one and den = ref Znum.one in
    List.iter
      (fun j ->
        if j <> i then begin
          num := Znum.emod (Znum.mul !num (Znum.of_int (-j))) q;
          den := Znum.emod (Znum.mul !den (Znum.of_int (i - j))) q
        end)
      indices;
    match Znum.mod_inv !den ~m:q with
    | None -> invalid_arg "Shamir.lagrange_at_zero: non-invertible denominator"
    | Some inv -> Znum.emod (Znum.mul !num inv) q
  in
  List.map (fun i -> (i, coefficient i)) indices

let reconstruct ~q shares =
  let lambdas = lagrange_at_zero ~q (List.map (fun s -> s.index) shares) in
  List.fold_left
    (fun acc s ->
      let lambda = List.assoc s.index lambdas in
      Znum.emod (Znum.add acc (Znum.mul lambda s.value)) q)
    Znum.zero shares
