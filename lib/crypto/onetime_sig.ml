type slot = S_zero | S_one | S_bot | S_rand_zero | S_rand_one

let slot_count = 5

let slot_index = function
  | S_zero -> 0
  | S_one -> 1
  | S_bot -> 2
  | S_rand_zero -> 3
  | S_rand_one -> 4

let slot_of_index = function
  | 0 -> S_zero
  | 1 -> S_one
  | 2 -> S_bot
  | 3 -> S_rand_zero
  | 4 -> S_rand_one
  | i -> raise (Util.Codec.Malformed (Printf.sprintf "invalid slot index %d" i))

let key_len = Sha256.digest_size

type secret = { s_owner : int; s_phases : int; sk : bytes array }
type verifier = { v_owner : int; v_phases : int; vk : bytes array }

(* keys for (phase, slot) live at index (phase-1) * slot_count + slot *)
let idx phase slot = ((phase - 1) * slot_count) + slot_index slot

let generate rng ~owner ~phases =
  if phases <= 0 then invalid_arg "Onetime_sig.generate: phases must be positive";
  let total = phases * slot_count in
  (* the closure draws from [rng]: application order must be pinned *)
  let sk = Util.Init.array total (fun _ -> Util.Rng.bytes rng key_len) in
  let vk = Array.map Sha256.digest sk in
  ( { s_owner = owner; s_phases = phases; sk },
    { v_owner = owner; v_phases = phases; vk } )

let owner v = v.v_owner
let phases v = v.v_phases
let secret_phases s = s.s_phases

let reveal secret ~phase slot =
  if phase < 1 || phase > secret.s_phases then
    invalid_arg (Printf.sprintf "Onetime_sig.reveal: phase %d out of range" phase);
  secret.sk.(idx phase slot)

(* [hash] must be extensionally equal to [Sha256.digest]; the hot-path
   memo (Core.Intern) passes a per-run digest cache through here so a
   proof broadcast to n receivers is hashed once, not n times. The
   verdict is a pure function of the proof bytes, so a digest cache
   cannot be poisoned across signers, phases or slots. *)
let check_with ~hash verifier ~phase slot ~proof =
  phase >= 1 && phase <= verifier.v_phases
  && Bytes.length proof = key_len
  && Bytes.equal (hash proof) verifier.vk.(idx phase slot)

let check verifier ~phase slot ~proof =
  check_with ~hash:Sha256.digest verifier ~phase slot ~proof

let verifier_to_bytes v =
  let w = Util.Codec.W.create ~capacity:(16 + (Array.length v.vk * key_len)) () in
  Util.Codec.W.u16 w v.v_owner;
  Util.Codec.W.u32 w v.v_phases;
  Array.iter (Util.Codec.W.bytes w) v.vk;
  Util.Codec.W.contents w

let verifier_of_bytes b =
  let r = Util.Codec.R.of_bytes b in
  let v_owner = Util.Codec.R.u16 r in
  let v_phases = Util.Codec.R.u32 r in
  if v_phases <= 0 || v_phases > 1_000_000 then
    raise (Util.Codec.Malformed "verifier: implausible phase count");
  (* the closure advances the reader: application order must be pinned *)
  let vk = Util.Init.array (v_phases * slot_count) (fun _ -> Util.Codec.R.bytes r key_len) in
  Util.Codec.R.expect_end r;
  { v_owner; v_phases; vk }

let verifier_digest v = Sha256.digest (verifier_to_bytes v)
