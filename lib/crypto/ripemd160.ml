(* RIPEMD-160 per the original specification: two parallel 80-step lines
   over 16-word little-endian blocks. Words are native ints masked to 32
   bits. *)

let digest_size = 20
let mask = 0xFFFFFFFF

(* message word selection, left and right lines *)
let r_left =
  [|
    0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15;
    7; 4; 13; 1; 10; 6; 15; 3; 12; 0; 9; 5; 2; 14; 11; 8;
    3; 10; 14; 4; 9; 15; 8; 1; 2; 7; 0; 6; 13; 11; 5; 12;
    1; 9; 11; 10; 0; 8; 12; 4; 13; 3; 7; 15; 14; 5; 6; 2;
    4; 0; 5; 9; 7; 12; 2; 10; 14; 1; 3; 8; 11; 6; 15; 13;
  |]

let r_right =
  [|
    5; 14; 7; 0; 9; 2; 11; 4; 13; 6; 15; 8; 1; 10; 3; 12;
    6; 11; 3; 7; 0; 13; 5; 10; 14; 15; 8; 12; 4; 9; 1; 2;
    15; 5; 1; 3; 7; 14; 6; 9; 11; 8; 12; 2; 10; 0; 4; 13;
    8; 6; 4; 1; 3; 11; 15; 0; 5; 12; 2; 13; 9; 7; 10; 14;
    12; 15; 10; 4; 1; 5; 8; 7; 6; 2; 13; 14; 0; 3; 9; 11;
  |]

(* per-step left rotations *)
let s_left =
  [|
    11; 14; 15; 12; 5; 8; 7; 9; 11; 13; 14; 15; 6; 7; 9; 8;
    7; 6; 8; 13; 11; 9; 7; 15; 7; 12; 15; 9; 11; 7; 13; 12;
    11; 13; 6; 7; 14; 9; 13; 15; 14; 8; 13; 6; 5; 12; 7; 5;
    11; 12; 14; 15; 14; 15; 9; 8; 9; 14; 5; 6; 8; 6; 5; 12;
    9; 15; 5; 11; 6; 8; 13; 12; 5; 12; 13; 14; 11; 8; 5; 6;
  |]

let s_right =
  [|
    8; 9; 9; 11; 13; 15; 15; 5; 7; 7; 8; 11; 14; 14; 12; 6;
    9; 13; 15; 7; 12; 8; 9; 11; 7; 7; 12; 7; 6; 15; 13; 11;
    9; 7; 15; 11; 8; 6; 6; 14; 12; 13; 5; 14; 13; 13; 7; 5;
    15; 5; 8; 11; 14; 14; 6; 14; 6; 9; 12; 9; 12; 5; 15; 8;
    8; 5; 12; 9; 12; 5; 14; 6; 8; 13; 6; 5; 15; 13; 11; 11;
  |]

let k_left = [| 0x00000000; 0x5A827999; 0x6ED9EBA1; 0x8F1BBCDC; 0xA953FD4E |]
let k_right = [| 0x50A28BE6; 0x5C4DD124; 0x6D703EF3; 0x7A6D76E9; 0x00000000 |]

let rol x n = ((x lsl n) lor (x lsr (32 - n))) land mask

let f round x y z =
  match round with
  | 0 -> x lxor y lxor z
  | 1 -> (x land y) lor (lnot x land z)
  | 2 -> (x lor lnot y) lxor z
  | 3 -> (x land z) lor (y land lnot z)
  | _ -> x lxor (y lor lnot z)

let compress h block off =
  let x = Array.make 16 0 in
  for i = 0 to 15 do
    let j = off + (4 * i) in
    x.(i) <-
      Char.code (Bytes.get block j)
      lor (Char.code (Bytes.get block (j + 1)) lsl 8)
      lor (Char.code (Bytes.get block (j + 2)) lsl 16)
      lor (Char.code (Bytes.get block (j + 3)) lsl 24)
  done;
  let al = ref h.(0) and bl = ref h.(1) and cl = ref h.(2) and dl = ref h.(3) and el = ref h.(4) in
  let ar = ref h.(0) and br = ref h.(1) and cr = ref h.(2) and dr = ref h.(3) and er = ref h.(4) in
  for j = 0 to 79 do
    let round = j / 16 in
    (* left line uses f1..f5, right line f5..f1 *)
    let tl =
      (rol
         ((!al + f round !bl !cl !dl + x.(r_left.(j)) + k_left.(round)) land mask)
         s_left.(j)
      + !el)
      land mask
    in
    al := !el;
    el := !dl;
    dl := rol !cl 10;
    cl := !bl;
    bl := tl;
    let tr =
      (rol
         ((!ar + f (4 - round) !br !cr !dr + x.(r_right.(j)) + k_right.(round)) land mask)
         s_right.(j)
      + !er)
      land mask
    in
    ar := !er;
    er := !dr;
    dr := rol !cr 10;
    cr := !br;
    br := tr
  done;
  let t = (h.(1) + !cl + !dr) land mask in
  h.(1) <- (h.(2) + !dl + !er) land mask;
  h.(2) <- (h.(3) + !el + !ar) land mask;
  h.(3) <- (h.(4) + !al + !br) land mask;
  h.(4) <- (h.(0) + !bl + !cr) land mask;
  h.(0) <- t

let digest data =
  let h = [| 0x67452301; 0xEFCDAB89; 0x98BADCFE; 0x10325476; 0xC3D2E1F0 |] in
  let len = Bytes.length data in
  (* pad: 0x80, zeros, 64-bit little-endian bit length *)
  let rem = (len + 1 + 8) mod 64 in
  let pad = if rem = 0 then 0 else 64 - rem in
  let total = len + 1 + pad + 8 in
  let buf = Bytes.make total '\000' in
  Bytes.blit data 0 buf 0 len;
  Bytes.set buf len '\x80';
  let bitlen = len * 8 in
  for i = 0 to 7 do
    Bytes.set buf (total - 8 + i) (Char.chr ((bitlen lsr (8 * i)) land 0xFF))
  done;
  let blocks = total / 64 in
  for b = 0 to blocks - 1 do
    compress h buf (64 * b)
  done;
  let out = Bytes.create 20 in
  for i = 0 to 4 do
    for j = 0 to 3 do
      Bytes.set out ((4 * i) + j) (Char.chr ((h.(i) lsr (8 * j)) land 0xFF))
    done
  done;
  out

let digest_string s = digest (Bytes.of_string s)
let hex_digest_string s = Util.Codec.hex (digest_string s)
