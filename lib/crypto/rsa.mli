(** RSA signatures (hash-and-pad, PKCS#1 v1.5 style).

    This is the trapdoor one-way function [F] of the paper's key-exchange
    procedure (it signs the arrays of verification keys) and the workhorse
    of the ABBA baseline, which — unlike Turquois — uses public-key
    signatures on its critical path. *)

type public = { n : Znum.t; e : Znum.t }
type secret = { n : Znum.t; d : Znum.t }
type keypair = { pub : public; sec : secret }

val generate : Util.Rng.t -> bits:int -> keypair
(** [generate rng ~bits] creates a modulus of [bits] bits (two primes of
    [bits/2]), public exponent 65537.
    @raise Invalid_argument if [bits < 384] (the padded SHA-256 digest must fit). *)

val sign : secret -> bytes -> bytes
(** [sign sk msg] hashes [msg] with SHA-256, pads, and exponentiates.
    The signature length is the modulus length in bytes. *)

val verify : public -> bytes -> signature:bytes -> bool
(** [verify pk msg ~signature] checks an alleged signature; total —
    malformed input returns [false] rather than raising. *)

val public_to_bytes : public -> bytes
val public_of_bytes : bytes -> public
(** @raise Util.Codec.Malformed / Truncated on garbage. *)

val signature_size : public -> int
(** Modulus size in bytes. *)
