type params = {
  group : Prime.schnorr_group;
  thresh : int;
  vks : Znum.t array; (* vks.(i) = g^{x_i} mod p *)
}

type key_share = { owner : int; x : Znum.t }

type share = {
  sh_owner : int;
  value : Znum.t; (* H2(name)^{x_i} *)
  (* Chaum–Pedersen DLEQ proof: (challenge c, response z) *)
  c : Znum.t;
  z : Znum.t;
}

let threshold p = p.thresh

let setup rng ~n ~threshold ?(pbits = 512) ?(qbits = 160) () =
  if threshold < 1 || threshold > n then invalid_arg "Coin.setup: need 1 <= threshold <= n";
  let group = Prime.schnorr_group rng ~pbits ~qbits in
  let x = Prime.random_below rng group.q in
  let shares = Shamir.deal rng ~q:group.q ~secret:x ~threshold ~n in
  let key_shares =
    Array.of_list (List.map (fun (s : Shamir.share) -> { owner = s.index - 1; x = s.value }) shares)
  in
  let vks = Array.map (fun ks -> Znum.mod_pow ~base:group.g ~exp:ks.x ~m:group.p) key_shares in
  ({ group; thresh = threshold; vks }, key_shares)

(* Hash a name onto the order-q subgroup: interpret H(name||ctr) as an
   integer mod p and raise to (p-1)/q; retry on the identity. *)
let hash_to_group (g : Prime.schnorr_group) name =
  let cofactor = Znum.div (Znum.sub g.p Znum.one) g.q in
  let rec go ctr =
    let digest = Sha256.digest_string (Printf.sprintf "coin-base|%d|%s" ctr name) in
    let h = Znum.emod (Znum.of_bytes_be digest) g.p in
    let candidate = Znum.mod_pow ~base:h ~exp:cofactor ~m:g.p in
    if Znum.equal candidate Znum.one then go (ctr + 1) else candidate
  in
  go 0

let challenge_of ~g ~gbar ~vk ~value ~a ~b ~q =
  let encode z = Util.Codec.hex (Znum.to_bytes_be z) in
  let digest =
    Sha256.digest_string
      (String.concat "|" [ "dleq"; encode g; encode gbar; encode vk; encode value; encode a; encode b ])
  in
  Znum.emod (Znum.of_bytes_be digest) q

let create_share params ks ~name =
  let { group; _ } = params in
  let gbar = hash_to_group group name in
  let value = Znum.mod_pow ~base:gbar ~exp:ks.x ~m:group.p in
  (* DLEQ(g, vk_i; gbar, value): commitments with a nonce derived
     deterministically from the secret and the name (à la RFC 6979, so no
     fresh randomness is needed at share time) *)
  let nonce =
    let digest =
      Sha256.digest_string
        (Printf.sprintf "dleq-nonce|%s|%s" (Util.Codec.hex (Znum.to_bytes_be ks.x)) name)
    in
    Znum.emod (Znum.of_bytes_be digest) group.q
  in
  let a = Znum.mod_pow ~base:group.g ~exp:nonce ~m:group.p in
  let b = Znum.mod_pow ~base:gbar ~exp:nonce ~m:group.p in
  let c =
    challenge_of ~g:group.g ~gbar ~vk:params.vks.(ks.owner) ~value ~a ~b ~q:group.q
  in
  let z = Znum.emod (Znum.add nonce (Znum.mul c ks.x)) group.q in
  { sh_owner = ks.owner; value; c; z }

let share_owner s = s.sh_owner

let verify_share params ~name share =
  let { group; vks; _ } = params in
  if share.sh_owner < 0 || share.sh_owner >= Array.length vks then false
  else if Znum.sign share.value <= 0 || Znum.compare share.value group.p >= 0 then false
  else begin
    let gbar = hash_to_group group name in
    let vk = vks.(share.sh_owner) in
    (* recompute commitments: a = g^z * vk^{-c}, b = gbar^z * value^{-c} *)
    let inv_exp base =
      match Znum.mod_inv base ~m:group.p with
      | None -> None
      | Some inv -> Some (Znum.mod_pow ~base:inv ~exp:share.c ~m:group.p)
    in
    match (inv_exp vk, inv_exp share.value) with
    | Some vk_neg_c, Some val_neg_c ->
        let a = Znum.emod (Znum.mul (Znum.mod_pow ~base:group.g ~exp:share.z ~m:group.p) vk_neg_c) group.p in
        let b = Znum.emod (Znum.mul (Znum.mod_pow ~base:gbar ~exp:share.z ~m:group.p) val_neg_c) group.p in
        Znum.equal (challenge_of ~g:group.g ~gbar ~vk ~value:share.value ~a ~b ~q:group.q) share.c
    | _ -> false
  end

let combine params ~name shares =
  let valid =
    List.filter (verify_share params ~name) shares
    |> List.sort_uniq (fun s1 s2 -> compare s1.sh_owner s2.sh_owner)
  in
  if List.length valid < params.thresh then None
  else begin
    let subset = List.filteri (fun i _ -> i < params.thresh) valid in
    let indices = List.map (fun s -> s.sh_owner + 1) subset in
    let lambdas = Shamir.lagrange_at_zero ~q:params.group.q indices in
    let combined =
      List.fold_left
        (fun acc s ->
          let lambda = List.assoc (s.sh_owner + 1) lambdas in
          Znum.emod (Znum.mul acc (Znum.mod_pow ~base:s.value ~exp:lambda ~m:params.group.p))
            params.group.p)
        Znum.one subset
    in
    let digest = Sha256.digest (Znum.to_bytes_be combined) in
    Some (Char.code (Bytes.get digest (Bytes.length digest - 1)) land 1)
  end

let share_to_bytes s =
  let w = Util.Codec.W.create () in
  Util.Codec.W.u16 w s.sh_owner;
  Util.Codec.W.bytes_lp w (Znum.to_bytes_be s.value);
  Util.Codec.W.bytes_lp w (Znum.to_bytes_be s.c);
  Util.Codec.W.bytes_lp w (Znum.to_bytes_be s.z);
  Util.Codec.W.contents w

let share_of_bytes b =
  let r = Util.Codec.R.of_bytes b in
  let sh_owner = Util.Codec.R.u16 r in
  let value = Znum.of_bytes_be (Util.Codec.R.bytes_lp r) in
  let c = Znum.of_bytes_be (Util.Codec.R.bytes_lp r) in
  let z = Znum.of_bytes_be (Util.Codec.R.bytes_lp r) in
  Util.Codec.R.expect_end r;
  { sh_owner; value; c; z }

let share_size params =
  let pbytes = (Znum.bit_length params.group.p + 7) / 8 in
  let qbytes = (Znum.bit_length params.group.q + 7) / 8 in
  2 + (4 + pbytes) + (4 + qbytes) + (4 + qbytes)
