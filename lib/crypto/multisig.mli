(** k-of-n multisignatures: a set of individual RSA signatures over the
    same message, standing in for the threshold signatures of the ABBA
    protocol.

    A justification that ABBA would carry as one threshold signature is
    carried here as [k] individual signatures. Verification cost (k
    public-key verifications) and the share-collection pattern are the
    same, which is what matters for reproducing the evaluation; see
    DESIGN.md §2. *)

type t
(** An aggregate: signer set plus their signatures over one message. *)

val empty : t
val add : t -> signer:int -> signature:bytes -> t
(** Adds a signer's contribution; replaces any previous one by the same
    signer. *)

val count : t -> int
val signers : t -> int list

val create : (int * bytes) list -> t
(** [create contributions] builds an aggregate from
    [(signer, signature)] pairs. *)

val verify : keys:Rsa.public array -> msg:bytes -> k:int -> t -> bool
(** [verify ~keys ~msg ~k t] is [true] iff [t] holds valid signatures
    over [msg] from at least [k] distinct in-range signers. *)

val to_bytes : t -> bytes
val of_bytes : bytes -> t
(** @raise Util.Codec.Malformed / Truncated on garbage. *)

val size : t -> int
(** Serialized size in bytes. *)
