(** One-time hash-based message signatures (paper Section 6.1).

    For each phase [phi] and each admissible proposal value, the signer
    holds a random secret key [SK(phi)(v)] whose hash [VK(phi)(v) =
    H(SK(phi)(v))] has been pre-distributed. Broadcasting a message for
    [(phi, v)] reveals [SK(phi)(v)]; receivers recompute the hash and
    compare. Authenticity of [(phi, v)] then follows from preimage
    resistance — no public-key operation on the critical path.

    The slot domain is the paper's {0, 1, ⊥} extended with the origin of
    the value in CONVERGE-phase messages (deterministic adoption vs local
    coin flip), because the validation procedure of Algorithm 1 line 12
    must distinguish the two cases. *)

type slot =
  | S_zero       (** v = 0, deterministically derived *)
  | S_one        (** v = 1, deterministically derived *)
  | S_bot        (** v = ⊥ (DECIDE-phase messages only) *)
  | S_rand_zero  (** v = 0 from a local coin flip (phase mod 3 = 1) *)
  | S_rand_one   (** v = 1 from a local coin flip (phase mod 3 = 1) *)

val slot_count : int
val slot_index : slot -> int
val slot_of_index : int -> slot
(** @raise Util.Codec.Malformed on an out-of-range index. *)

type secret
(** The signer's side: the full SK array. *)

type verifier
(** The receivers' side: the full VK array for one signer. *)

val generate : Util.Rng.t -> owner:int -> phases:int -> secret * verifier
(** [generate rng ~owner ~phases] creates key material valid for phases
    [1..phases] — the key exchange [e = 1] of Section 6.1. *)

val owner : verifier -> int
val phases : verifier -> int
val secret_phases : secret -> int

val reveal : secret -> phase:int -> slot -> bytes
(** The 32-byte one-time signature for [(phase, slot)].
    @raise Invalid_argument when [phase] is outside [1..phases]. *)

val check : verifier -> phase:int -> slot -> proof:bytes -> bool
(** [check vk ~phase slot ~proof] is [true] iff [H(proof)] equals the
    pre-distributed verification key. Total: wrong sizes or phases out
    of range return [false]. *)

val check_with :
  hash:(bytes -> bytes) -> verifier -> phase:int -> slot -> proof:bytes -> bool
(** {!check} with the proof hash computed by [hash], which must be
    extensionally equal to [Sha256.digest] — the hook through which the
    hot-path digest memo ([Core.Intern]) deduplicates hashing when one
    broadcast proof is verified at every receiver. [hash] is only
    invoked after the phase and length guards pass. *)

val verifier_to_bytes : verifier -> bytes
val verifier_of_bytes : bytes -> verifier
(** @raise Util.Codec.Malformed / Truncated on garbage. *)

val verifier_digest : verifier -> bytes
(** SHA-256 over the serialized VK array; this is what the trapdoor
    function [F] (RSA) signs during key exchange. *)
