(* FIPS 180-4. Words are native ints masked to 32 bits. *)

let digest_size = 32
let mask = 0xFFFFFFFF

let k =
  [|
    0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
    0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
    0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
    0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
    0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
    0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
    0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
    0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
    0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
    0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
    0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
  |]

let iv =
  [|
    0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f; 0x9b05688c;
    0x1f83d9ab; 0x5be0cd19;
  |]

type ctx = {
  h : int array;           (* 8 state words *)
  block : Bytes.t;         (* 64-byte block buffer *)
  mutable block_len : int; (* bytes buffered *)
  mutable total : int;     (* total message bytes *)
  w : int array;           (* 64-entry message schedule, reused *)
  mutable finalized : bool;
}

let init () =
  {
    h = Array.copy iv;
    block = Bytes.create 64;
    block_len = 0;
    total = 0;
    w = Array.make 64 0;
    finalized = false;
  }

let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask

(* unsafe accessors: every index below is bounded by construction
   (0..15 over a >= off+64 byte block, 0..63 over the 64-entry
   schedule), and this loop dominates the simulator's host CPU time *)
let compress_core h w block off =
  for i = 0 to 15 do
    let j = off + (4 * i) in
    Array.unsafe_set w i
      ((Char.code (Bytes.unsafe_get block j) lsl 24)
      lor (Char.code (Bytes.unsafe_get block (j + 1)) lsl 16)
      lor (Char.code (Bytes.unsafe_get block (j + 2)) lsl 8)
      lor Char.code (Bytes.unsafe_get block (j + 3)))
  done;
  for i = 16 to 63 do
    let w15 = Array.unsafe_get w (i - 15) in
    let w2 = Array.unsafe_get w (i - 2) in
    let s0 = rotr w15 7 lxor rotr w15 18 lxor (w15 lsr 3) in
    let s1 = rotr w2 17 lxor rotr w2 19 lxor (w2 lsr 10) in
    Array.unsafe_set w i
      ((Array.unsafe_get w (i - 16) + s0 + Array.unsafe_get w (i - 7) + s1) land mask)
  done;
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for i = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = (!e land !f) lxor (lnot !e land !g) in
    let temp1 =
      (!hh + s1 + ch + Array.unsafe_get k i + Array.unsafe_get w i) land mask
    in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = (!a land !b) lxor (!a land !c) lxor (!b land !c) in
    let temp2 = (s0 + maj) land mask in
    hh := !g;
    g := !f;
    f := !e;
    e := (!d + temp1) land mask;
    d := !c;
    c := !b;
    b := !a;
    a := (temp1 + temp2) land mask
  done;
  h.(0) <- (h.(0) + !a) land mask;
  h.(1) <- (h.(1) + !b) land mask;
  h.(2) <- (h.(2) + !c) land mask;
  h.(3) <- (h.(3) + !d) land mask;
  h.(4) <- (h.(4) + !e) land mask;
  h.(5) <- (h.(5) + !f) land mask;
  h.(6) <- (h.(6) + !g) land mask;
  h.(7) <- (h.(7) + !hh) land mask

let compress ctx block off = compress_core ctx.h ctx.w block off

let emit h =
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let v = h.(i) in
    Bytes.set out (4 * i) (Char.chr ((v lsr 24) land 0xFF));
    Bytes.set out ((4 * i) + 1) (Char.chr ((v lsr 16) land 0xFF));
    Bytes.set out ((4 * i) + 2) (Char.chr ((v lsr 8) land 0xFF));
    Bytes.set out ((4 * i) + 3) (Char.chr (v land 0xFF))
  done;
  out

let update ctx data =
  if ctx.finalized then invalid_arg "Sha256.update: context already finalized";
  let len = Bytes.length data in
  ctx.total <- ctx.total + len;
  let pos = ref 0 in
  (* fill a partial block first *)
  if ctx.block_len > 0 then begin
    let take = min (64 - ctx.block_len) len in
    Bytes.blit data 0 ctx.block ctx.block_len take;
    ctx.block_len <- ctx.block_len + take;
    pos := take;
    if ctx.block_len = 64 then begin
      compress ctx ctx.block 0;
      ctx.block_len <- 0
    end
  end;
  while len - !pos >= 64 do
    compress ctx data !pos;
    pos := !pos + 64
  done;
  if !pos < len then begin
    Bytes.blit data !pos ctx.block 0 (len - !pos);
    ctx.block_len <- len - !pos
  end

let update_string ctx s = update ctx (Bytes.unsafe_of_string s)

let finalize ctx =
  if ctx.finalized then invalid_arg "Sha256.finalize: context already finalized";
  ctx.finalized <- true;
  let bitlen = ctx.total * 8 in
  (* padding: 0x80, zeros, 64-bit big-endian length *)
  let pad_len =
    let r = (ctx.total + 1 + 8) mod 64 in
    if r = 0 then 1 else 1 + (64 - r)
  in
  let tail = Bytes.make (pad_len + 8) '\000' in
  Bytes.set tail 0 '\x80';
  for i = 0 to 7 do
    Bytes.set tail (pad_len + i) (Char.chr ((bitlen lsr (8 * (7 - i))) land 0xFF))
  done;
  ctx.finalized <- false;
  update ctx tail;
  ctx.finalized <- true;
  assert (ctx.block_len = 0);
  emit ctx.h

(* Single-block fast path. A message of <= 55 bytes pads into exactly
   one 64-byte block (data, 0x80, zeros, 64-bit bit length), so the
   digest is one [compress_core] over domain-local scratch: no ctx, no
   per-call allocation beyond the 32-byte output. This covers the
   dominant call on the simulator's critical path — hashing 32-byte
   one-time-signature proofs ({!Onetime_sig.check}). *)
let scratch : (int array * int array * Bytes.t) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> (Array.make 8 0, Array.make 64 0, Bytes.create 64))

let digest data =
  let len = Bytes.length data in
  if len <= 55 then begin
    let h, w, block = Domain.DLS.get scratch in
    Array.blit iv 0 h 0 8;
    Bytes.blit data 0 block 0 len;
    Bytes.unsafe_set block len '\x80';
    (* zero len+1 .. 63, then write the bit length (< 2^16 here) into
       the last two bytes; bytes 56..61 of the length field stay zero *)
    Bytes.fill block (len + 1) (63 - len) '\000';
    let bits = len * 8 in
    Bytes.unsafe_set block 62 (Char.unsafe_chr ((bits lsr 8) land 0xFF));
    Bytes.unsafe_set block 63 (Char.unsafe_chr (bits land 0xFF));
    compress_core h w block 0;
    emit h
  end
  else begin
    let ctx = init () in
    update ctx data;
    finalize ctx
  end

let digest_string s = digest (Bytes.of_string s)

let digest_concat parts =
  let ctx = init () in
  List.iter (update ctx) parts;
  finalize ctx

let hex_digest_string s = Util.Codec.hex (digest_string s)
