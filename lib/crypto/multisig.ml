module Int_map = Map.Make (Int)

type t = bytes Int_map.t

let empty = Int_map.empty
let add t ~signer ~signature = Int_map.add signer signature t
let count t = Int_map.cardinal t
let signers t = List.map fst (Int_map.bindings t)

let create contributions =
  List.fold_left (fun acc (signer, signature) -> add acc ~signer ~signature) empty contributions

let verify ~keys ~msg ~k t =
  let valid =
    Int_map.fold
      (fun signer signature acc ->
        if signer >= 0 && signer < Array.length keys
           && Rsa.verify keys.(signer) msg ~signature
        then acc + 1
        else acc)
      t 0
  in
  valid >= k

let to_bytes t =
  let w = Util.Codec.W.create () in
  Util.Codec.W.u16 w (count t);
  Int_map.iter
    (fun signer signature ->
      Util.Codec.W.u16 w signer;
      Util.Codec.W.bytes_lp w signature)
    t;
  Util.Codec.W.contents w

let of_bytes b =
  let r = Util.Codec.R.of_bytes b in
  let n = Util.Codec.R.u16 r in
  let acc = ref empty in
  for _ = 1 to n do
    let signer = Util.Codec.R.u16 r in
    let signature = Util.Codec.R.bytes_lp r in
    acc := add !acc ~signer ~signature
  done;
  Util.Codec.R.expect_end r;
  !acc

let size t = Bytes.length (to_bytes t)
