(** SHA-256 (FIPS 180-4).

    Pure OCaml implementation; the 32-bit words are carried in native
    ints masked to 32 bits. This is the hash function [H] of the paper's
    one-time signature scheme (Section 6.1) and the basis of HMAC and of
    hashing onto the coin group. *)

type ctx
(** Incremental hashing context. *)

val init : unit -> ctx
val update : ctx -> bytes -> unit
val update_string : ctx -> string -> unit
val finalize : ctx -> bytes
(** Returns the 32-byte digest. The context must not be reused. *)

val digest : bytes -> bytes
(** One-shot hash of a byte buffer. *)

val digest_string : string -> bytes
val digest_concat : bytes list -> bytes
(** Hash of the concatenation, without materializing it. *)

val hex_digest_string : string -> string
(** Lowercase hex of [digest_string], convenient for tests. *)

val digest_size : int
(** 32. *)
