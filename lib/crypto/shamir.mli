(** Shamir secret sharing over a prime field Z_q.

    Dealer side of the threshold common coin: the coin secret is shared
    so that any [threshold] of the [n] parties can jointly evaluate the
    coin while fewer learn nothing. Share indices are 1-based (index 0
    is the secret itself). *)

type share = { index : int; value : Znum.t }

val deal :
  Util.Rng.t -> q:Znum.t -> secret:Znum.t -> threshold:int -> n:int -> share list
(** [deal rng ~q ~secret ~threshold ~n] samples a degree
    [threshold - 1] polynomial with constant term [secret mod q] and
    returns the [n] evaluations at 1..n.
    @raise Invalid_argument unless [1 <= threshold <= n] and [q] prime
    field size is positive. *)

val lagrange_at_zero : q:Znum.t -> int list -> (int * Znum.t) list
(** [lagrange_at_zero ~q indices] gives each index its Lagrange
    coefficient λ_i(0) mod q for the interpolation set [indices].
    @raise Invalid_argument on duplicate or non-positive indices. *)

val reconstruct : q:Znum.t -> share list -> Znum.t
(** Interpolates the secret at x = 0 from exactly the given shares
    (at least [threshold] of them must be supplied for correctness). *)
