(** Per-run flat message store backing {!Vset}.

    Each structurally distinct {!Message.t} is interned once per run
    (per domain); {!Vset} rows hold the resulting compact 1-based
    indices instead of message pointers, so the many appearances of one
    justification message across frames and receivers collapse onto a
    single stored copy. The store is append-only — index 0 never
    allocated, valid indices never invalidated — and the domain-local
    current store is {e re-bound} to a fresh one at every
    {!Obs.Scope.with_run} boundary, so structures holding a store
    reference (e.g. model-checker clones) stay valid across runs. *)

type t

val create : unit -> t

val intern : t -> Message.t -> int
(** The 1-based index of [m], allocating one if the exact message
    (proof bytes included) was not seen before. *)

val get : t -> int -> Message.t
(** @raise Invalid_argument on an index never returned by [intern]. *)

val size : t -> int
(** Number of distinct messages interned — the flat-arena high-water
    mark reported by the scaling sweep. *)

val current : unit -> t
(** This domain's current per-run store ({!Vset.create} captures it). *)
