(** Key material for the authenticity validation of Section 6.1.

    A keyring holds one process's own one-time secret keys plus the
    verified verification-key arrays of every process. Setup performs
    the paper's key exchange [e = 1]: each process's VK array is signed
    with its RSA private key (the trapdoor function F) and checked by
    every other process before the run starts — exactly the "distributed
    offline along with the public keys" deployment the paper uses in its
    experiments. *)

type t

val setup : Util.Rng.t -> n:int -> phases:int -> ?rsa_bits:int -> unit -> t array
(** Trusted-dealer style setup for all [n] processes at once (the
    simulator plays the out-of-band reliable channel). Generates one-time
    key arrays for phases 1..[phases], RSA keypairs ([rsa_bits],
    default 512), signs every VK array, verifies every signature, and
    returns each process's keyring.
    @raise Failure if any VK signature fails to verify (cannot happen
    with an honest dealer; the check exercises the verification path). *)

val owner : t -> int
val n : t -> int
val phases : t -> int

val sign : t -> phase:int -> value:Proto.value -> origin:Proto.origin -> bytes
(** The one-time signature this process attaches to a broadcast for
    [(phase, value, origin)].
    @raise Invalid_argument when [phase] exceeds the key horizon. *)

val check :
  t -> signer:int -> phase:int -> value:Proto.value -> origin:Proto.origin ->
  proof:bytes -> bool
(** Authenticity validation of a received message: one hash. Total —
    unknown signers and out-of-range phases return [false]. *)

val check_message : t -> Message.t -> bool
(** {!check} applied to a message's own fields. *)

val check_with :
  hash:(bytes -> bytes) -> t -> signer:int -> phase:int -> value:Proto.value ->
  origin:Proto.origin -> proof:bytes -> bool

val check_message_with : hash:(bytes -> bytes) -> t -> Message.t -> bool
(** {!check} / {!check_message} with the proof hash computed by [hash]
    (must be extensionally [Sha256.digest]); see
    {!Crypto.Onetime_sig.check_with}. [Intern.check_message] routes
    through this to share one digest per distinct broadcast proof. *)

val slice : t -> offset:int -> phases:int -> t
(** [slice t ~offset ~phases] is a view of the same key material whose
    phase [p] maps to the underlying phase [offset + p] — the paper's
    optimization of letting "a single key exchange span multiple
    instances of the k-consensus" (Section 6.1): instance i of an
    agreement sequence uses [slice t ~offset:(i * stride) ~phases:stride].
    @raise Invalid_argument when the window exceeds the key horizon. *)
