type tick_policy =
  | Fixed_tick
  | Adaptive_tick of { floor : float; factor : float }
  | Mac_aware of { floor : float; headroom : float; cap : float }

let default_adaptive = Adaptive_tick { floor = 2.5e-3; factor = 0.5 }

(* headroom 0.25: rebroadcast about four times per phase's worth of
   observed channel occupancy — often enough to recover from collision
   loss, rare enough never to outrun the medium *)
let default_mac_aware = Mac_aware { floor = 2.5e-3; headroom = 0.25; cap = 0.5 }

type auth_cost = Onetime_cost | Rsa_cost

type behavior = Machine.behavior =
  | Correct
  | Attacker
  | Byzantine of Strategy.t

type stats = {
  mutable ticks : int;
  mutable broadcasts : int;
  mutable justified_broadcasts : int;
  mutable accepted : int;
  mutable rejected_auth : int;
  mutable duplicates : int;
  mutable pending_peak : int;
}

type t = {
  node : Net.Node.t;
  machine : Machine.t;
  cfg : Proto.config;
  port : int;
  tick_policy : tick_policy;
  auth_cost : auth_cost;
  linger_ticks : int;
  mutable stuck_ticks : int;
  mutable ticks_since_decision : int;
  mutable current_tick : float;
  (* cumulative radio airtime at this node's last phase change — the
     Mac_aware policy derives its tick from the delta *)
  mutable airtime_mark : float;
  mutable tick_handle : Net.Engine.handle option;
  mutable started : bool;
  mutable decide_cb : (value:int -> phase:int -> unit) option;
  mutable phase_cb : (phase:int -> unit) option;
  shell_stats : stats;
}

let id t = Net.Node.id t.node
let phase t = Machine.phase t.machine
let current_value t = Machine.current_value t.machine
let current_status t = Machine.current_status t.machine
let decision t = Machine.decision t.machine
let decision_phase t = Machine.decision_phase t.machine
let vset t = Machine.vset t.machine
let on_decide t f = t.decide_cb <- Some f
let on_phase_change t f = t.phase_cb <- Some f

let stats t =
  let m = Machine.stats t.machine in
  t.shell_stats.accepted <- m.accepted;
  t.shell_stats.rejected_auth <- m.rejected_auth;
  t.shell_stats.duplicates <- m.duplicates;
  t.shell_stats.pending_peak <- m.pending_peak;
  t.shell_stats

let create node cfg ~keyring ?(behavior = Correct) ?(port = 443)
    ?(tick_policy = Fixed_tick) ?(linger_ticks = 50) ?(auth_cost = Onetime_cost)
    ~proposal () =
  if Keyring.owner keyring <> Net.Node.id node then
    invalid_arg "Turquois.create: keyring owner does not match node id";
  (match tick_policy with
  | Fixed_tick -> ()
  | Adaptive_tick { floor; factor } ->
      if floor <= 0.0 || factor <= 0.0 || factor >= 1.0 then
        invalid_arg "Turquois.create: bad adaptive tick parameters"
  | Mac_aware { floor; headroom; cap } ->
      if floor <= 0.0 || headroom <= 0.0 || cap < floor then
        invalid_arg "Turquois.create: bad mac-aware tick parameters");
  let machine =
    Machine.create cfg ~keyring ~rng:(Net.Node.rng node) ~behavior ~proposal ()
  in
  {
    node;
    machine;
    cfg;
    port;
    tick_policy;
    auth_cost;
    linger_ticks;
    stuck_ticks = 0;
    ticks_since_decision = 0;
    current_tick = cfg.tick_interval;
    airtime_mark = 0.0;
    tick_handle = None;
    started = false;
    decide_cb = None;
    phase_cb = None;
    shell_stats =
      {
        ticks = 0;
        broadcasts = 0;
        justified_broadcasts = 0;
        accepted = 0;
        rejected_auth = 0;
        duplicates = 0;
        pending_peak = 0;
      };
  }

let count_broadcast t (envelope : Message.envelope) =
  (match t.auth_cost with
  | Onetime_cost -> ()  (* signing reveals a precomputed key: free *)
  | Rsa_cost -> Net.Node.charge t.node Net.Cost.rsa_sign);
  t.shell_stats.broadcasts <- t.shell_stats.broadcasts + 1;
  Obs.Metrics.incr "proto.broadcasts" ~labels:[ ("proto", "turquois") ];
  Obs.Metrics.incr "proto.msgs_sent" ~labels:[ ("proto", "turquois") ];
  if envelope.justification <> [] then begin
    t.shell_stats.justified_broadcasts <- t.shell_stats.justified_broadcasts + 1;
    Obs.Metrics.incr "proto.justified" ~labels:[ ("proto", "turquois") ]
  end

let broadcast_state t ~justify =
  match Machine.emit t.machine ~justify with
  | Machine.Quiet -> ()  (* key horizon exhausted, or a silent strategy *)
  | Machine.Broadcast envelope ->
      count_broadcast t envelope;
      let bytes = Machine.encode_envelope t.machine envelope in
      let mid =
        (* causal id minted at the broadcast site; lower layers alias it
           onto their re-encodings so radio events can name the message *)
        if Obs.Trace2.enabled () then begin
          let m =
            Obs.Causal.next_send ~sender:(id t) ~phase:envelope.msg.Message.phase
          in
          Obs.Causal.register bytes m;
          [ ("mid", Obs.Trace2.S m) ]
        end
        else []
      in
      Obs.Trace2.emit ~time:(Net.Engine.now (Net.Node.engine t.node)) ~node:(id t)
        ~layer:"turquois" ~label:"broadcast"
        ([
           ("msg", Obs.Trace2.S (Message.describe envelope.msg));
           ("phase", Obs.Trace2.I envelope.msg.Message.phase);
           ("justifying", Obs.Trace2.I (List.length envelope.justification));
         ]
        @ mid);
      (* a queued-but-unsent frame of the same flavor is superseded in
         place: under contention the newest state replaces the stale
         one instead of queueing behind it. Plain and justified frames
         get distinct tags — a plain rebroadcast must never evict a
         queued justification bundle. *)
      let tag =
        (2 * t.port) + if envelope.Message.justification = [] then 0 else 1
      in
      Net.Node.broadcast_latest t.node ~tag ~port:t.port bytes
  | Machine.Per_receiver frames ->
      (* equivocation: ship each receiver its private copy as a unicast
         so nobody overhears the contradicting frame. The copies fall
         into a few content classes (e.g. V0 to evens, V1 to odds), so
         each distinct envelope is encoded once and the bytes shared —
         the datagram layer copies payloads into wire frames, so the
         sharing never aliases *)
      let encoded : (Message.envelope * bytes) list ref = ref [] in
      let encode_once (envelope : Message.envelope) =
        match List.find_opt (fun (e, _) -> e = envelope) !encoded with
        | Some (_, bytes) -> bytes
        | None ->
            let bytes = Message.encode envelope in
            if Obs.Trace2.enabled () then
              Obs.Causal.register bytes
                (Obs.Causal.next_send ~sender:(id t)
                   ~phase:envelope.msg.Message.phase);
            encoded := (envelope, bytes) :: !encoded;
            bytes
      in
      List.iter
        (fun (rx, (envelope : Message.envelope)) ->
          count_broadcast t envelope;
          Obs.Metrics.incr "proto.equivocations" ~labels:[ ("proto", "turquois") ];
          let bytes = encode_once envelope in
          Obs.Trace2.emit ~time:(Net.Engine.now (Net.Node.engine t.node)) ~node:(id t)
            ~layer:"turquois" ~label:"equivocate"
            ([
               ("to", Obs.Trace2.I rx);
               ("msg", Obs.Trace2.S (Message.describe envelope.msg));
             ]
            @ (if Obs.Trace2.enabled () then Obs.Causal.mid_field bytes else []));
          Net.Node.unicast t.node ~dst:rx ~port:t.port bytes)
        frames

let rec arm_tick t =
  (match t.tick_handle with
  | Some h ->
      Net.Node.cancel_timer t.node h;
      t.tick_handle <- None
  | None -> ());
  let handle = Net.Node.set_timer t.node ~delay:t.current_tick (fun () -> on_tick t) in
  t.tick_handle <- Some handle

and on_tick t =
  (* after deciding, linger to help slower processes, then go quiet *)
  if Machine.decision t.machine <> None then
    t.ticks_since_decision <- t.ticks_since_decision + 1;
  if t.ticks_since_decision <= t.linger_ticks then begin
    t.shell_stats.ticks <- t.shell_stats.ticks + 1;
    Obs.Metrics.incr "proto.ticks" ~labels:[ ("proto", "turquois") ];
    (* same state as the previous broadcast? then the optimistic small
       message was not enough — attach the justification (Section 6.2).
       Justified frames are an order of magnitude longer than plain
       ones, so while stuck we alternate justified and plain
       rebroadcasts: sixteen stations all shipping bundles every 10 ms
       would saturate the medium and collapse under collisions. *)
    let stuck = Machine.same_state_as_last_broadcast t.machine in
    if stuck then t.stuck_ticks <- t.stuck_ticks + 1 else t.stuck_ticks <- 0;
    let justify = stuck && t.stuck_ticks mod 2 = 1 in
    (match t.tick_policy with
    | Fixed_tick -> ()
    | Mac_aware _ -> ()  (* paced from observed airtime at phase changes *)
    | Adaptive_tick { floor; factor } ->
        t.current_tick <-
          (if stuck then Float.max floor (t.current_tick *. factor)
           else t.cfg.tick_interval));
    broadcast_state t ~justify;
    arm_tick t
  end

let react t events =
  let phase_changed = ref false in
  List.iter
    (fun event ->
      match event with
      | Machine.Phase_changed p -> begin
          phase_changed := true;
          Obs.Metrics.incr "proto.phase_changes" ~labels:[ ("proto", "turquois") ];
          Obs.Trace2.emit ~time:(Net.Engine.now (Net.Node.engine t.node)) ~node:(id t)
            ~layer:"turquois" ~label:"phase" [ ("phase", Obs.Trace2.I p) ];
          match t.phase_cb with Some f -> f ~phase:p | None -> ()
        end
      | Machine.Decided { value; phase } -> begin
          Obs.Metrics.incr "proto.decisions" ~labels:[ ("proto", "turquois") ];
          Obs.Trace2.emit ~time:(Net.Engine.now (Net.Node.engine t.node)) ~node:(id t)
            ~layer:"turquois" ~label:"decide"
            [ ("value", Obs.Trace2.I value); ("phase", Obs.Trace2.I phase) ];
          match t.decide_cb with Some f -> f ~value ~phase | None -> ()
        end)
    events;
  if !phase_changed then begin
    (* a phase change triggers an immediate clock tick (§7.1) and, for
       the adaptive policies, resets the pacing *)
    (match t.tick_policy with
    | Fixed_tick | Adaptive_tick _ -> t.current_tick <- t.cfg.tick_interval
    | Mac_aware { floor; headroom; cap } ->
        (* the channel occupancy this phase took to clear is the best
           available estimate of how long the next one will take: pace
           the rebroadcast clock as a fraction of it *)
        let air = (Net.Radio.stats (Net.Mac.radio (Net.Node.mac t.node))).Net.Radio.airtime in
        let observed = air -. t.airtime_mark in
        t.airtime_mark <- air;
        (* adapt upward only: the policy exists to stop rebroadcasts
           from outrunning a busy medium at large n, never to tick
           faster than the configured (paper-faithful) interval — so
           small-n timing is identical to [Fixed_tick] *)
        let lo = Float.max floor t.cfg.tick_interval in
        if observed > 0.0 then
          t.current_tick <- Float.min cap (Float.max lo (headroom *. observed)));
    broadcast_state t ~justify:false;
    arm_tick t
  end

let on_datagram t ~src:_ payload =
  (* broadcast deliveries re-materialize the same payload bytes at each
     receiver; Intern memoizes the decode per run *)
  match Intern.decode_wire payload with
  | exception (Util.Codec.Malformed _ | Util.Codec.Truncated) -> ()
  | wire ->
      let events, auth_checks = Machine.handle_wire t.machine wire in
      let per_check =
        match t.auth_cost with
        | Onetime_cost -> Net.Cost.onetime_check
        | Rsa_cost -> Net.Cost.rsa_verify
      in
      Net.Node.charge t.node (float_of_int auth_checks *. per_check);
      react t events

let start t =
  if not t.started then begin
    t.started <- true;
    Net.Node.listen t.node ~port:t.port (fun ~src payload -> on_datagram t ~src payload);
    broadcast_state t ~justify:false;
    arm_tick t
  end

let stop t =
  match t.tick_handle with
  | Some h ->
      Net.Node.cancel_timer t.node h;
      t.tick_handle <- None
  | None -> ()
