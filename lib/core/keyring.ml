type t = {
  kr_owner : int;
  kr_n : int;
  kr_phases : int;
  offset : int;  (* phase p of this view is phase offset+p of the keys *)
  secret : Crypto.Onetime_sig.secret;
  verifiers : Crypto.Onetime_sig.verifier array;
}

let setup rng ~n ~phases ?(rsa_bits = 512) () =
  if n <= 0 then invalid_arg "Keyring.setup: n must be positive";
  (* both generators draw from [rng], so the per-owner application
     order must be pinned (ascending) *)
  let pairs = Util.Init.array n (fun owner -> Crypto.Onetime_sig.generate rng ~owner ~phases) in
  let rsa_keys = Util.Init.array n (fun _ -> Crypto.Rsa.generate rng ~bits:rsa_bits) in
  let verifiers = Array.map snd pairs in
  (* the key exchange: sign each VK array with F, then verify before
     storing it; one digest per party serves both sides *)
  Array.iteri
    (fun i verifier ->
      let digest = Crypto.Onetime_sig.verifier_digest verifier in
      let signature = Crypto.Rsa.sign rsa_keys.(i).sec digest in
      if not (Crypto.Rsa.verify rsa_keys.(i).pub digest ~signature) then
        failwith "Keyring.setup: VK array signature verification failed")
    verifiers;
  (* the verifier array is immutable after setup: all n rings share it *)
  Util.Init.array n (fun owner ->
      let secret, _ = pairs.(owner) in
      { kr_owner = owner; kr_n = n; kr_phases = phases; offset = 0; secret; verifiers })

let owner t = t.kr_owner
let n t = t.kr_n
let phases t = t.kr_phases

let sign t ~phase ~value ~origin =
  Crypto.Onetime_sig.reveal t.secret ~phase:(t.offset + phase) (Message.slot_of ~value ~origin)

let check_with ~hash t ~signer ~phase ~value ~origin ~proof =
  signer >= 0 && signer < t.kr_n
  && phase >= 1 && phase <= t.kr_phases
  && Crypto.Onetime_sig.check_with ~hash t.verifiers.(signer) ~phase:(t.offset + phase)
       (Message.slot_of ~value ~origin) ~proof

let check t ~signer ~phase ~value ~origin ~proof =
  check_with ~hash:Crypto.Sha256.digest t ~signer ~phase ~value ~origin ~proof

let slice t ~offset ~phases =
  if offset < 0 || phases < 1 then invalid_arg "Keyring.slice: bad window";
  if t.offset + offset + phases > Crypto.Onetime_sig.secret_phases t.secret then
    invalid_arg "Keyring.slice: window exceeds the key horizon";
  { t with offset = t.offset + offset; kr_phases = phases }

let check_message_with ~hash t (m : Message.t) =
  check_with ~hash t ~signer:m.sender ~phase:m.phase ~value:m.value ~origin:m.origin
    ~proof:m.proof

let check_message t (m : Message.t) =
  check_message_with ~hash:Crypto.Sha256.digest t m
