type verdict = Valid | Invalid of string

let invalidf fmt = Printf.ksprintf (fun s -> Invalid s) fmt

(* Closed forms of "the largest p < phi with p mod 3 = r" (0 when none
   exists). Lock phases are p ≡ 2 (mod 3) starting at 2; decide phases
   are p ≡ 0 (mod 3) starting at 3. Starting from m = phi - 1, subtract
   m's residue distance to the target class; test_validation checks
   both against the recursive descent exhaustively for phi = 1..200. *)
let highest_lock_phase_below phi =
  let m = phi - 1 in
  if m < 2 then 0 else m - ((m - 2) mod 3)

let highest_decide_phase_below phi =
  let m = phi - 1 in
  if m < 3 then 0 else m - (m mod 3)

let check_phase cfg v (m : Message.t) =
  if m.phase < 1 then invalidf "phase %d below 1" m.phase
  else if m.phase > cfg.Proto.max_phases then invalidf "phase %d beyond key horizon" m.phase
  else if m.phase = 1 then Valid
  else begin
    let support = Vset.count_phase v ~phase:(m.phase - 1) in
    if Proto.quorum_exceeded cfg support then Valid
    else invalidf "phase %d: only %d messages at phase %d" m.phase support (m.phase - 1)
  end

let binary_with_det (m : Message.t) k =
  match (m.value, m.origin) with
  | Proto.Vbot, _ -> invalidf "phase %d cannot carry bot" m.phase
  | (Proto.V0 | Proto.V1), Proto.Random -> invalidf "phase %d cannot carry a coin value" m.phase
  | (Proto.V0 | Proto.V1), Proto.Deterministic -> k m.value

let check_value cfg v (m : Message.t) =
  if m.phase = 1 then binary_with_det m (fun _ -> Valid)
  else begin
    match Proto.kind_of_phase m.phase with
    | Proto.Lock ->
        binary_with_det m (fun value ->
            let support = Vset.count_value v ~phase:(m.phase - 1) ~value in
            if Proto.half_quorum_exceeded cfg support then Valid
            else
              invalidf "lock value %s: %d supporters at phase %d"
                (Proto.value_to_string value) support (m.phase - 1))
    | Proto.Decide -> begin
        match (m.value, m.origin) with
        | _, Proto.Random -> invalidf "decide-phase value cannot be a coin value"
        | Proto.Vbot, Proto.Deterministic ->
            let zeros = Vset.count_value v ~phase:(m.phase - 2) ~value:Proto.V0 in
            let ones = Vset.count_value v ~phase:(m.phase - 2) ~value:Proto.V1 in
            if Proto.half_quorum_exceeded cfg zeros && Proto.half_quorum_exceeded cfg ones then
              Valid
            else
              invalidf "bot value: split at phase %d is %d/%d" (m.phase - 2) zeros ones
        | ((Proto.V0 | Proto.V1) as value), Proto.Deterministic ->
            let support = Vset.count_value v ~phase:(m.phase - 1) ~value in
            if Proto.quorum_exceeded cfg support then Valid
            else
              invalidf "decide value %s: %d supporters at phase %d"
                (Proto.value_to_string value) support (m.phase - 1)
      end
    | Proto.Converge -> begin
        match (m.value, m.origin) with
        | Proto.Vbot, _ -> invalidf "converge-phase message cannot carry bot"
        | ((Proto.V0 | Proto.V1) as value), Proto.Deterministic ->
            let support = Vset.count_value v ~phase:(m.phase - 2) ~value in
            if Proto.quorum_exceeded cfg support then Valid
            else
              invalidf "converge value %s: %d supporters at phase %d"
                (Proto.value_to_string value) support (m.phase - 2)
        | (Proto.V0 | Proto.V1), Proto.Random ->
            let bots = Vset.count_value v ~phase:(m.phase - 1) ~value:Proto.Vbot in
            if Proto.quorum_exceeded cfg bots then Valid
            else invalidf "coin value: only %d bot messages at phase %d" bots (m.phase - 1)
      end
  end

let decided_support cfg v (m : Message.t) =
  (* [Q] support for the decided value at some DECIDE phase <= m.phase *)
  let rec go phi0 =
    if phi0 < 3 then false
    else
      Proto.quorum_exceeded cfg (Vset.count_value v ~phase:phi0 ~value:m.value)
      || go (phi0 - 3)
  in
  go (m.phase - (m.phase mod 3))

let check_status cfg v (m : Message.t) =
  match m.status with
  | Proto.Undecided ->
      if m.phase <= 3 then Valid
      else begin
        (* The paper's rule: a 0/1 split of more than (n+f)/4 each at the
           highest LOCK phase below φ. Taken alone that rule deadlocks in
           reachable executions (a single process converging to the
           minority value yields honest ⊥ and undecided messages with no
           such split), so we also accept the transitive witness: a valid
           ⊥ message at the highest DECIDE phase below φ, which itself
           required a 0/1 split at the correct earlier phase. A Byzantine
           process still cannot fabricate either witness after a
           unanimous phase (f ≤ (n+f)/4 for n > 3f). *)
        let phi' = highest_lock_phase_below m.phase in
        let zeros = Vset.count_value v ~phase:phi' ~value:Proto.V0 in
        let ones = Vset.count_value v ~phase:phi' ~value:Proto.V1 in
        let split_witness =
          Proto.half_quorum_exceeded cfg zeros && Proto.half_quorum_exceeded cfg ones
        in
        let bot_witness =
          let phi0 = highest_decide_phase_below m.phase in
          phi0 >= 3 && Vset.count_value v ~phase:phi0 ~value:Proto.Vbot >= 1
        in
        if split_witness || bot_witness then Valid
        else invalidf "undecided at phase %d: split at %d is %d/%d and no bot witness"
               m.phase phi' zeros ones
      end
  | Proto.Decided -> begin
      match m.value with
      | Proto.Vbot -> invalidf "decided message cannot carry bot"
      | Proto.V0 | Proto.V1 ->
          if m.phase <= 3 then invalidf "no process can decide before phase 3"
          else if decided_support cfg v m then Valid
          else invalidf "decided %s at phase %d lacks a deciding quorum"
                 (Proto.value_to_string m.value) m.phase
    end

let semantic_check cfg v m =
  let reject rule = Obs.Metrics.incr "validation.rejected" ~labels:[ ("rule", rule) ] in
  match check_phase cfg v m with
  | Invalid _ as bad ->
      reject "phase";
      bad
  | Valid -> begin
      match check_value cfg v m with
      | Invalid _ as bad ->
          reject "value";
          bad
      | Valid -> begin
          match check_status cfg v m with
          | Invalid _ as bad ->
              reject "status";
              bad
          | Valid ->
              Obs.Metrics.incr "validation.accepted";
              Valid
        end
    end

let is_valid cfg v m = match semantic_check cfg v m with Valid -> true | Invalid _ -> false
