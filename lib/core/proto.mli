(** Shared protocol vocabulary: proposal values, phase arithmetic,
    quorum thresholds, and the k-consensus configuration. *)

(** A proposal value. [Vbot] is the paper's ⊥ — "no preference" — and
    is only admissible in messages of DECIDE phases. *)
type value = V0 | V1 | Vbot

val value_equal : value -> value -> bool
val value_to_int : value -> int
(** 0, 1, or 2 for ⊥ (wire encoding). *)

val value_of_int : int -> value
(** @raise Util.Codec.Malformed outside 0..2. *)

val value_of_bit : int -> value
(** 0 → [V0], 1 → [V1]. @raise Invalid_argument otherwise. *)

val bit_of_value : value -> int option
(** Inverse of {!value_of_bit}; [None] for ⊥. *)

val value_to_string : value -> string

(** How a CONVERGE-phase proposal was obtained (Algorithm 1 lines
    32–36): adopted deterministically from a received value, or drawn
    from the local coin. Receivers must distinguish the two (line 12),
    so the flag is part of the message and of its one-time signature. *)
type origin = Deterministic | Random

type status = Undecided | Decided

(** Which of the three phases of a cycle a phase number falls in. *)
type phase_kind = Converge | Lock | Decide

val kind_of_phase : int -> phase_kind
(** φ mod 3 = 1 → CONVERGE, 2 → LOCK, 0 → DECIDE.
    @raise Invalid_argument for φ < 1. *)

type config = {
  n : int;  (** total number of processes *)
  f : int;  (** maximum Byzantine processes tolerated *)
  k : int;  (** processes required to decide (harness-level; the state
                machine itself does not consult k) *)
  max_phases : int;    (** one-time-signature key horizon *)
  tick_interval : float;  (** seconds between broadcast ticks (10 ms in
                              the paper's prototype) *)
}

val default_config : n:int -> config
(** f = ⌊(n−1)/3⌋, k = n − f, 10 ms ticks, 300-phase key horizon. *)

val validate_config : config -> unit
(** @raise Invalid_argument when n ≤ 3f, or k outside
    ((n+f)/2, n−f], or non-positive fields. *)

val quorum_exceeded : config -> int -> bool
(** [quorum_exceeded c count] ⟺ count > (n+f)/2 (as a real number). *)

val half_quorum_exceeded : config -> int -> bool
(** [half_quorum_exceeded c count] ⟺ count > ((n+f)/2)/2. *)

val past_faulty : config -> int -> bool
(** [past_faulty c count] ⟺ count > f: among [count] distinct senders
    at least one is correct (an f+1 witness set). *)

val past_double_faulty : config -> int -> bool
(** [past_double_faulty c count] ⟺ count > 2f: a certificate — with
    n > 3f any two such sender sets intersect in a correct process, so
    at most one value can ever collect this many distinct senders. *)

val sigma : config -> t:int -> int
(** The paper's liveness bound: the protocol makes progress in rounds
    whose omission-fault count is at most
    σ = ⌈(n−t)/2⌉·(n−k−t) + k − 2, where t ≤ f is the number of
    actually faulty processes. *)
