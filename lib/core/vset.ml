type t = {
  n : int;
  by_phase : (int, Message.t option array) Hashtbl.t;
  mutable highest : Message.t option;
  mutable total : int;
}

let create ~n = { n; by_phase = Hashtbl.create 32; highest = None; total = 0 }

let row t phase =
  match Hashtbl.find_opt t.by_phase phase with
  | Some slots -> slots
  | None ->
      let slots = Array.make t.n None in
      Hashtbl.add t.by_phase phase slots;
      slots

let add t (m : Message.t) =
  if m.sender < 0 || m.sender >= t.n then false
  else begin
    let slots = row t m.phase in
    match slots.(m.sender) with
    | Some _ -> false
    | None ->
        slots.(m.sender) <- Some m;
        t.total <- t.total + 1;
        (match t.highest with
        | Some h when h.phase >= m.phase -> ()
        | Some _ | None -> t.highest <- Some m);
        true
  end

let find t ~sender ~phase =
  match Hashtbl.find_opt t.by_phase phase with
  | None -> None
  | Some slots -> if sender >= 0 && sender < t.n then slots.(sender) else None

let mem t ~sender ~phase = find t ~sender ~phase <> None

let fold_phase t phase f acc =
  match Hashtbl.find_opt t.by_phase phase with
  | None -> acc
  | Some slots ->
      Array.fold_left
        (fun acc slot -> match slot with Some m -> f acc m | None -> acc)
        acc slots

let count_phase t ~phase = fold_phase t phase (fun acc _ -> acc + 1) 0

let count_value t ~phase ~value =
  fold_phase t phase
    (fun acc (m : Message.t) -> if Proto.value_equal m.value value then acc + 1 else acc)
    0

let messages_at t ~phase = List.rev (fold_phase t phase (fun acc m -> m :: acc) [])

let majority_value t ~phase =
  let zeros = count_value t ~phase ~value:Proto.V0 in
  let ones = count_value t ~phase ~value:Proto.V1 in
  if zeros = 0 && ones = 0 then invalid_arg "Vset.majority_value: no binary values at phase";
  if ones >= zeros then Proto.V1 else Proto.V0

let some_binary_value t ~phase =
  fold_phase t phase
    (fun acc (m : Message.t) ->
      match acc with
      | Some _ -> acc
      | None -> ( match m.value with Proto.V0 | Proto.V1 -> Some m.value | Proto.Vbot -> None))
    None

let max_phase t = match t.highest with Some m -> m.phase | None -> 0
let highest_message t = t.highest
let size t = t.total
