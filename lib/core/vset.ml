(* Flat representation: rows of compact indices into the per-run
   interned message store instead of [Message.t option array] per
   phase. 0 marks an empty slot; any other entry is a 1-based
   [Msgstore] index. Structurally equal messages — the same
   justification entry re-embedded in many frames — resolve to one
   stored copy shared by every V set of the run. *)

type t = {
  n : int;
  store : Msgstore.t;
  by_phase : (int, int array) Hashtbl.t;
  (* additional differently-valued copies per (sender, phase): an
     equivocating sender's other messages. At most one stored copy per
     value, so a slot holds <= 3 messages total. *)
  extras : (int * int, int list) Hashtbl.t;
  (* incremental tallies — Validation probes count_phase/count_value on
     every candidate message, so the counts are maintained on insert
     instead of rescanning the phase row. Messages are never removed,
     so increments suffice. *)
  phase_tally : (int, int) Hashtbl.t;        (* phase -> senders with a primary *)
  value_tally : (int * int, int) Hashtbl.t;  (* (phase, value code) -> supporters *)
  mutable highest : Message.t option;
  mutable total : int;
  (* bumped on every successful insert: the cheap invalidation key for
     downstream memos (the machine's justification/envelope cache) *)
  mutable version : int;
}

let create ~n =
  {
    n;
    store = Msgstore.current ();
    by_phase = Hashtbl.create 32;
    extras = Hashtbl.create 4;
    phase_tally = Hashtbl.create 32;
    value_tally = Hashtbl.create 32;
    highest = None;
    total = 0;
    version = 0;
  }

let version t = t.version

let bump tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let row t phase =
  match Hashtbl.find_opt t.by_phase phase with
  | Some slots -> slots
  | None ->
      let slots = Array.make t.n 0 in
      Hashtbl.add t.by_phase phase slots;
      slots

let copies t ~sender ~phase =
  let primary =
    match Hashtbl.find_opt t.by_phase phase with
    | None -> []
    | Some slots ->
        if sender >= 0 && sender < t.n && slots.(sender) <> 0 then
          [ Msgstore.get t.store slots.(sender) ]
        else []
  in
  primary
  @ List.map (Msgstore.get t.store)
      (Option.value ~default:[] (Hashtbl.find_opt t.extras (sender, phase)))

let add_unprofiled t (m : Message.t) =
  if m.sender < 0 || m.sender >= t.n then false
  else begin
    let slots = row t m.phase in
    if slots.(m.sender) = 0 then begin
      slots.(m.sender) <- Msgstore.intern t.store m;
      t.total <- t.total + 1;
      t.version <- t.version + 1;
      bump t.phase_tally m.phase;
      bump t.value_tally (m.phase, Proto.value_to_int m.value);
      (match t.highest with
      | Some h when h.phase >= m.phase -> ()
      | Some _ | None -> t.highest <- Some m);
      true
    end
    else begin
      (* a second copy is retained only when it carries a value not
         seen from this (sender, phase) yet: distinct messages from an
         equivocating sender are all in V (the paper's V_i is a set of
         messages), but each extra value can support a validation rule
         at most once *)
      let stored = copies t ~sender:m.sender ~phase:m.phase in
      if List.exists (fun (c : Message.t) -> Proto.value_equal c.value m.value) stored
      then false
      else begin
        Hashtbl.replace t.extras (m.sender, m.phase)
          (Msgstore.intern t.store m
          :: Option.value ~default:[] (Hashtbl.find_opt t.extras (m.sender, m.phase)));
        t.total <- t.total + 1;
        t.version <- t.version + 1;
        (* an extra always sits next to a primary from the same
           sender, so the phase tally is unchanged; the sender now
           additionally supports this (previously unseen) value *)
        bump t.value_tally (m.phase, Proto.value_to_int m.value);
        true
      end
    end
  end

let add t (m : Message.t) =
  let sp = Obs.Prof.start () in
  let inserted = add_unprofiled t m in
  Obs.Prof.stop Obs.Prof.vset_tally sp;
  inserted

(* The store is append-only and shared by reference: cloning only
   copies the index rows and tallies. *)
let clone t =
  let by_phase = Hashtbl.create (Hashtbl.length t.by_phase) in
  Hashtbl.iter (fun phase slots -> Hashtbl.add by_phase phase (Array.copy slots)) t.by_phase;
  {
    n = t.n;
    store = t.store;
    by_phase;
    extras = Hashtbl.copy t.extras;
    phase_tally = Hashtbl.copy t.phase_tally;
    value_tally = Hashtbl.copy t.value_tally;
    highest = t.highest;
    total = t.total;
    version = t.version;
  }

(* Canonical serialization for state fingerprinting: phases ascending,
   then per phase each sender's primary followed by its extras in stored
   order. The extras order is preserved (not sorted) because it shapes
   [copies]/[messages_at] and hence justification bundles — two states
   may only share a fingerprint when their future behavior is
   identical. Proof bytes are omitted: given fixed key material they are
   a function of the header. *)
let canonical t buf =
  let header (m : Message.t) =
    Buffer.add_string buf
      (Printf.sprintf "%d.%d.%d.%d.%d;" m.sender m.phase (Proto.value_to_int m.value)
         (match m.origin with Proto.Deterministic -> 0 | Proto.Random -> 1)
         (match m.status with Proto.Undecided -> 0 | Proto.Decided -> 1))
  in
  let phases = Hashtbl.fold (fun phase _ acc -> phase :: acc) t.by_phase [] in
  List.iter
    (fun phase ->
      Buffer.add_string buf (Printf.sprintf "|p%d:" phase);
      let slots = Hashtbl.find t.by_phase phase in
      Array.iteri
        (fun sender idx ->
          if idx <> 0 then begin
            header (Msgstore.get t.store idx);
            List.iter
              (fun i -> header (Msgstore.get t.store i))
              (Option.value ~default:[] (Hashtbl.find_opt t.extras (sender, phase)))
          end)
        slots)
    (List.sort Int.compare phases)

let find t ~sender ~phase =
  match Hashtbl.find_opt t.by_phase phase with
  | None -> None
  | Some slots ->
      if sender >= 0 && sender < t.n && slots.(sender) <> 0 then
        Some (Msgstore.get t.store slots.(sender))
      else None

let mem t ~sender ~phase = find t ~sender ~phase <> None

let mem_copy t (m : Message.t) =
  List.exists (Message.header_equal m) (copies t ~sender:m.sender ~phase:m.phase)

let fold_phase t phase f acc =
  match Hashtbl.find_opt t.by_phase phase with
  | None -> acc
  | Some slots ->
      Array.fold_left
        (fun acc idx -> if idx = 0 then acc else f acc (Msgstore.get t.store idx))
        acc slots

let count_phase t ~phase =
  Option.value ~default:0 (Hashtbl.find_opt t.phase_tally phase)

let count_value t ~phase ~value =
  (* distinct senders with ANY copy carrying [value]: an equivocating
     sender supports every value it signed. Stored copies are
     value-distinct per (sender, phase), so each sender bumps a value's
     tally at most once. *)
  Option.value ~default:0 (Hashtbl.find_opt t.value_tally (phase, Proto.value_to_int value))

let messages_at t ~phase =
  match Hashtbl.find_opt t.by_phase phase with
  | None -> []
  | Some slots ->
      let out = ref [] in
      for sender = t.n - 1 downto 0 do
        if slots.(sender) <> 0 then out := copies t ~sender ~phase @ !out
      done;
      !out

let majority_value t ~phase =
  let zeros = count_value t ~phase ~value:Proto.V0 in
  let ones = count_value t ~phase ~value:Proto.V1 in
  if zeros = 0 && ones = 0 then invalid_arg "Vset.majority_value: no binary values at phase";
  if ones >= zeros then Proto.V1 else Proto.V0

let some_binary_value t ~phase =
  fold_phase t phase
    (fun acc (m : Message.t) ->
      match acc with
      | Some _ -> acc
      | None -> ( match m.value with Proto.V0 | Proto.V1 -> Some m.value | Proto.Vbot -> None))
    None

let max_phase t = match t.highest with Some m -> m.phase | None -> 0
let highest_message t = t.highest
let size t = t.total
