type slot_state = Idle | Running of Turquois.t | Retired of int option

type slot = { mutable state : slot_state }

type t = {
  node : Net.Node.t;
  cfg : Proto.config;
  keyring : Keyring.t;
  count : int;
  base_port : int;
  tick_policy : Turquois.tick_policy;
  linger_ticks : int;
  slots : slot array;
  mutable decide_cb : (instance:int -> value:int -> unit) option;
  mutable decided : int;
}

let create node cfg ~keyring ~instances ?(base_port = 9000)
    ?(tick_policy = Turquois.Fixed_tick) ?(linger_ticks = 50) () =
  Proto.validate_config cfg;
  if instances < 1 then invalid_arg "Service.create: need at least one instance";
  if Keyring.phases keyring < instances * cfg.max_phases then
    invalid_arg "Service.create: keyring does not cover all instances";
  {
    node;
    cfg;
    keyring;
    count = instances;
    base_port;
    tick_policy;
    linger_ticks;
    slots = Array.init instances (fun _ -> { state = Idle });
    decide_cb = None;
    decided = 0;
  }

let instances t = t.count

let check_range t instance =
  if instance < 0 || instance >= t.count then
    invalid_arg (Printf.sprintf "Service: instance %d out of range" instance)

let propose t ~instance proposal =
  check_range t instance;
  let slot = t.slots.(instance) in
  (match slot.state with
  | Idle -> ()
  | Running _ | Retired _ ->
      invalid_arg (Printf.sprintf "Service: instance %d already proposed" instance));
  let keyring =
    Keyring.slice t.keyring ~offset:(instance * t.cfg.max_phases) ~phases:t.cfg.max_phases
  in
  let consensus =
    Turquois.create t.node t.cfg ~keyring ~port:(t.base_port + instance)
      ~tick_policy:t.tick_policy ~linger_ticks:t.linger_ticks ~proposal ()
  in
  Turquois.on_decide consensus (fun ~value ~phase:_ ->
      t.decided <- t.decided + 1;
      match t.decide_cb with Some f -> f ~instance ~value | None -> ());
  slot.state <- Running consensus;
  Turquois.start consensus

let decision t ~instance =
  check_range t instance;
  match t.slots.(instance).state with
  | Running consensus -> Turquois.decision consensus
  | Retired decision -> decision
  | Idle -> None

let retire t ~instance =
  check_range t instance;
  match t.slots.(instance).state with
  | Running consensus ->
      (* the decision survives; the instance's port listener and tick do
         not, so a dead slot stops costing CPU-queue work and airtime.
         An undecided instance would otherwise rebroadcast forever into
         peers that have already moved on — catch-up past this point is
         the owner's job (the ordered log transfers outcomes). *)
      t.slots.(instance).state <- Retired (Turquois.decision consensus);
      Net.Node.unlisten t.node ~port:(t.base_port + instance);
      Turquois.stop consensus
  | Idle | Retired _ -> ()

let decided_count t = t.decided
let on_decide t f = t.decide_cb <- Some f
