type slot = { mutable instance : Turquois.t option }

type t = {
  node : Net.Node.t;
  cfg : Proto.config;
  keyring : Keyring.t;
  count : int;
  base_port : int;
  tick_policy : Turquois.tick_policy;
  linger_ticks : int;
  slots : slot array;
  mutable decide_cb : (instance:int -> value:int -> unit) option;
  mutable decided : int;
}

let create node cfg ~keyring ~instances ?(base_port = 9000)
    ?(tick_policy = Turquois.Fixed_tick) ?(linger_ticks = 50) () =
  Proto.validate_config cfg;
  if instances < 1 then invalid_arg "Service.create: need at least one instance";
  if Keyring.phases keyring < instances * cfg.max_phases then
    invalid_arg "Service.create: keyring does not cover all instances";
  {
    node;
    cfg;
    keyring;
    count = instances;
    base_port;
    tick_policy;
    linger_ticks;
    slots = Array.init instances (fun _ -> { instance = None });
    decide_cb = None;
    decided = 0;
  }

let instances t = t.count

let check_range t instance =
  if instance < 0 || instance >= t.count then
    invalid_arg (Printf.sprintf "Service: instance %d out of range" instance)

let propose t ~instance proposal =
  check_range t instance;
  let slot = t.slots.(instance) in
  if slot.instance <> None then
    invalid_arg (Printf.sprintf "Service: instance %d already proposed" instance);
  let keyring =
    Keyring.slice t.keyring ~offset:(instance * t.cfg.max_phases) ~phases:t.cfg.max_phases
  in
  let consensus =
    Turquois.create t.node t.cfg ~keyring ~port:(t.base_port + instance)
      ~tick_policy:t.tick_policy ~linger_ticks:t.linger_ticks ~proposal ()
  in
  Turquois.on_decide consensus (fun ~value ~phase:_ ->
      t.decided <- t.decided + 1;
      match t.decide_cb with Some f -> f ~instance ~value | None -> ());
  slot.instance <- Some consensus;
  Turquois.start consensus

let decision t ~instance =
  check_range t instance;
  match t.slots.(instance).instance with
  | Some consensus -> Turquois.decision consensus
  | None -> None

let decided_count t = t.decided
let on_decide t f = t.decide_cb <- Some f
