(** Leader election on top of binary consensus — one of the coordination
    tasks the paper's introduction motivates ("nodes may need to ...
    elect a leader").

    Classic reduction: candidates are examined in identifier order; for
    candidate c every process proposes 1 if it believes c is currently
    reachable, and the group runs one Turquois instance. The first
    candidate whose instance decides 1 is the leader. Agreement of the
    underlying consensus makes the elected leader unique; validity makes
    it a candidate that at least one correct process endorsed.

    All processes must use the same geometry (candidate order = process
    ids, base port, per-instance phase budget). *)

type t

val create :
  Net.Node.t ->
  Proto.config ->
  keyring:Keyring.t ->
  alive:(int -> bool) ->
  ?base_port:int ->
  unit ->
  t
(** [alive c] is this process's local judgement of candidate [c] (e.g.
    heard from recently). The keyring must cover [n * cfg.max_phases]
    phases — one slice per candidate.
    @raise Invalid_argument when it does not. *)

val start : t -> unit

val on_elect : t -> (leader:int -> unit) -> unit
(** Fires once, when a leader is first determined. If every candidate's
    instance decides 0, fires with leader = -1 (no election possible —
    all correct processes judged everyone unreachable). *)

val leader : t -> int option
(** [Some (-1)] encodes the exhausted case above. *)

val rounds_used : t -> int
(** Candidates examined so far. *)
