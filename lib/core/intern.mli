(** Frame interning: per-run, domain-local memoization of the receive
    hot path (decode + proof hashing).

    One broadcast reaches n receivers; without interning each of them
    re-decodes the identical payload and re-hashes the identical
    one-time-signature proofs. With it, the first receiver on a domain
    pays and the rest hit the memo — while {!Net.Cost} accounting still
    charges every receiver, so simulated results (decisions, latencies,
    phase counts, metrics other than the four memo counters) are
    bit-identical with the switch on or off. Caches key on exact bytes
    content, making them robust to Byzantine forgeries and equivocation
    by construction. They are cleared at every {!Obs.Scope.with_run}
    boundary via {!Obs.Scope.at_run_start}. *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Global escape hatch ([--no-memo] on the CLI; default on). Flip it
    only between runs, from the coordinating domain. *)

val with_memo : bool -> (unit -> 'a) -> 'a
(** Runs the thunk with the switch forced to the given value, restoring
    the previous setting afterwards (also on exceptions). *)

val compact_enabled : unit -> bool
val set_compact : bool -> unit
(** Sender-side switch for delta-compressed justification bundles
    ([--no-compact] on the CLI; default on). Receivers accept both wire
    formats regardless, so flipping it never strands in-flight frames.
    Flip only between runs, from the coordinating domain. *)

val with_compact : bool -> (unit -> 'a) -> 'a
(** Runs the thunk with the compact switch forced to the given value,
    restoring the previous setting afterwards (also on exceptions). *)

val decode_wire : bytes -> Message.wire
(** {!Message.decode_wire} through the payload memo (verbatim fallback
    when disabled). Raises exactly what [Message.decode_wire] raises;
    malformed payloads are never cached. Emits
    [codec.decode.memo_hit]/[_miss] counters when enabled. *)

val message_digest : Message.t -> bytes
(** {!Message.msg_digest} through a per-run memo (verbatim fallback when
    disabled). Callers must treat the returned buffer as immutable. *)

val check_message : Keyring.t -> Message.t -> bool
(** {!Keyring.check_message} with proof hashing routed through the
    digest memo (verbatim fallback when disabled). Emits
    [crypto.verify.cache_hit]/[_miss] counters when enabled. *)

val clear : unit -> unit
(** Drops this domain's memo tables. Runs automatically at every run
    boundary; exposed for tests. *)

val memo_series : string list
(** The four instrumentation counter names above. *)

val strip_metrics : Obs.Metrics.snapshot -> Obs.Metrics.snapshot
(** Removes {!memo_series} from a snapshot — the projection under which
    memo-on and memo-off runs must produce equal metrics. *)
