(** The Turquois protocol as a pure state machine, independent of any
    transport or clock.

    {!Turquois} wraps this machine with the UDP-broadcast shell used in
    the paper's evaluation; the harness's abstract round simulator
    drives it directly to study the σ liveness bound of Section 5. All
    nondeterminism comes from the supplied RNG (the local coin), so runs
    are reproducible. *)

type event =
  | Phase_changed of int
  | Decided of { value : int; phase : int }
      (** Fired once, when the decision variable is first assigned. *)

type stats = {
  mutable accepted : int;
  mutable rejected_auth : int;
  mutable duplicates : int;
  mutable pending_peak : int;
}

type behavior = Correct | Attacker

type t

val create :
  Proto.config ->
  keyring:Keyring.t ->
  rng:Util.Rng.t ->
  ?behavior:behavior ->
  proposal:int ->
  unit ->
  t
(** @raise Invalid_argument on a bad config or a non-binary proposal. *)

val id : t -> int
val phase : t -> int
val current_value : t -> Proto.value
val current_status : t -> Proto.status
val decision : t -> int option
val decision_phase : t -> int option
val stats : t -> stats
val vset : t -> Vset.t

val prepare : t -> justify:bool -> Message.envelope option
(** The broadcast for the current state (task T1). With [justify], the
    explicit-validation bundle is attached. Also records the process's
    own message in its V set. [None] once the phase exceeds the one-time
    key horizon (the instance can no longer transmit). *)

val handle : t -> Message.envelope -> event list * int
(** Task T2 for one arriving envelope: authenticity checks, the pending
    pool fixpoint, then state transitions. Returns the events produced
    and the number of hash verifications performed (for CPU-cost
    accounting by the shell). *)

val same_state_as_last_broadcast : t -> bool
(** True when the state to broadcast equals the previously broadcast
    one — the trigger for attaching explicit justification (§6.2). *)
