(** The Turquois protocol as a pure state machine, independent of any
    transport or clock.

    {!Turquois} wraps this machine with the UDP-broadcast shell used in
    the paper's evaluation; the harness's abstract round simulator
    drives it directly to study the σ liveness bound of Section 5. All
    nondeterminism comes from the supplied RNG (the local coin), so runs
    are reproducible. *)

type event =
  | Phase_changed of int
  | Decided of { value : int; phase : int }
      (** Fired once, when the decision variable is first assigned. *)

type stats = {
  mutable accepted : int;
  mutable rejected_auth : int;
  mutable duplicates : int;
  mutable pending_peak : int;
}

type behavior =
  | Correct
  | Attacker
      (** The fixed §7.2 value-flipping attacker used for Table 3 — kept
          verbatim for reproducibility. *)
  | Byzantine of Strategy.t
      (** An arbitrary strategy from the {!Strategy} library, consulted
          at every transmission opportunity. *)

type t

val create :
  Proto.config ->
  keyring:Keyring.t ->
  rng:Util.Rng.t ->
  ?behavior:behavior ->
  proposal:int ->
  unit ->
  t
(** @raise Invalid_argument on a bad config or a non-binary proposal. *)

val id : t -> int
val phase : t -> int
val current_value : t -> Proto.value
val current_status : t -> Proto.status
val decision : t -> int option
val decision_phase : t -> int option
val stats : t -> stats
val vset : t -> Vset.t

type transmission =
  | Quiet  (** nothing this opportunity *)
  | Broadcast of Message.envelope  (** one frame for everyone *)
  | Per_receiver of (int * Message.envelope) list
      (** receiver-specific frames (equivocation); shipped as unicasts *)

val clone : t -> t
(** An independent deep copy: same config/keyring (immutable, shared),
    copied rng state and mutable containers. The model checker forks a
    whole group per enumerated adversary choice; stepping a clone never
    affects the original. *)

val fingerprint : t -> string
(** Canonical serialization of everything that shapes future behavior:
    protocol variables, V set, pending pool (admission order preserved),
    decided claims, and the rng position via the local-coin draw count.
    Machines created with the same config, keyring and rng seed that
    reach equal fingerprints behave identically on identical future
    inputs — the soundness condition for memoized state dedup. *)

val emit : t -> justify:bool -> transmission
(** The transmission for the current state (task T1). Correct and
    [Attacker] machines broadcast; [Byzantine] machines follow their
    strategy, which may stay silent or equivocate per receiver. With
    [justify], the explicit-validation bundle is attached. Correct
    machines also record their own message in their V set. [Quiet] once
    the phase exceeds the one-time key horizon. *)

val emit_as : t -> strategy:Strategy.t -> justify:bool -> transmission
(** The transmission the given strategy produces from this machine's
    current state, regardless of the machine's own behavior — the hook
    for externally-driven adversaries that pick a fresh strategy every
    round (the model checker's Byzantine enumeration). Frames are signed
    with the machine's keyring; [Quiet] past the key horizon. *)

val prepare : t -> justify:bool -> Message.envelope option
(** {!emit} restricted to broadcast: [Quiet] and [Per_receiver] map to
    [None]. Kept for broadcast-only drivers. *)

val handle : t -> Message.envelope -> event list * int
(** Task T2 for one arriving envelope: authenticity checks, the pending
    pool fixpoint, then state transitions. Returns the events produced
    and the number of hash verifications performed (for CPU-cost
    accounting by the shell). *)

val encode_envelope : t -> Message.envelope -> bytes
(** The envelope's wire bytes, delta-compressed against this machine's
    per-phase shipped window when {!Intern.compact_enabled}: a
    justification entry already shipped since the last phase change goes
    out as its 8-byte content digest instead of in full, and every 4th
    justified encode of a phase is a keyframe shipping everything in
    full again (bounding the blackout of receivers that missed a full
    copy). Falls back to the plain format — byte-identical but for the
    format byte — when compaction is off or the bundle is empty. Repeat
    encodes of the physically same envelope reuse the previous buffer
    (except under causal tracing, which needs per-send bytes). *)

val handle_wire : t -> Message.wire -> event list * int
(** {!handle} after resolving compact references against this machine's
    content-addressed cache, which remembers every full entry it has
    decoded (digests are computed locally, so the cache is exactly as
    trustworthy as the frames themselves — authentication still happens
    per message in [handle]). An unresolvable reference is dropped and
    counted under the [compact.unresolved] metric; the sender's next
    keyframe retransmits it in full. *)

val same_state_as_last_broadcast : t -> bool
(** True when the state to broadcast equals the previously broadcast
    one — the trigger for attaching explicit justification (§6.2). *)
