(** Turquois wire messages.

    A message is the tuple ⟨i, φ, v, status⟩ of Algorithm 1 extended
    with the value's origin flag, authenticated by the one-time hash
    signature for [(φ, v, origin)], and optionally carrying a
    justification bundle — the previously received messages that prove
    the sender's state transition (explicit semantic validation,
    Section 6.2). Justification entries are plain messages without
    nested justifications. *)

type t = {
  sender : int;
  phase : int;
  value : Proto.value;
  origin : Proto.origin;
  status : Proto.status;
  proof : bytes;  (** 32-byte one-time signature over (phase, value, origin) *)
}

val slot_of : value:Proto.value -> origin:Proto.origin -> Crypto.Onetime_sig.slot
(** Key slot used to sign/verify a message with this value and origin. *)

val header_equal : t -> t -> bool
(** Equality of the protocol-visible fields (ignores the proof). *)

val describe : t -> string
(** One-line rendering for traces and test failures. *)

(** A message as it travels: the message itself plus its justification
    bundle (empty on optimistic first transmission). *)
type envelope = { msg : t; justification : t list }

val encode : envelope -> bytes
(** Plain (format 0) frame: every justification entry in full. *)

val decode : bytes -> envelope
(** @raise Util.Codec.Malformed / Truncated on garbage, including a
    compact frame whose references would need receiver-side resolution
    (use {!decode_wire} + {!Machine.handle_wire} for those). *)

val encoded_size : envelope -> int

val msg_to_bytes : t -> bytes
val msg_of_bytes : bytes -> t

val digest_bytes : int
(** 8 — the truncated content-digest width of compact references. *)

val msg_digest : t -> bytes
(** Truncated SHA-256 of {!msg_to_bytes}: the content address compact
    justification entries refer to. Covers the proof bytes, so two
    differently-signed copies of one header never share an address. *)

(** A justification entry as it travels: either the message itself or
    the content digest of one the sender already shipped this phase. *)
type entry = Full of t | Ref of bytes

(** A frame as it travels: the message plus its (possibly
    delta-compressed) justification bundle. *)
type wire = { wmsg : t; wjust : entry list }

val encode_wire : wire -> bytes
(** Emits the plain format when every entry is [Full] (costing only the
    format byte over the pre-compact layout), the tagged compact format
    otherwise. *)

val decode_wire : bytes -> wire
(** Accepts both formats.
    @raise Util.Codec.Malformed / Truncated on garbage. *)
