(** Turquois wire messages.

    A message is the tuple ⟨i, φ, v, status⟩ of Algorithm 1 extended
    with the value's origin flag, authenticated by the one-time hash
    signature for [(φ, v, origin)], and optionally carrying a
    justification bundle — the previously received messages that prove
    the sender's state transition (explicit semantic validation,
    Section 6.2). Justification entries are plain messages without
    nested justifications. *)

type t = {
  sender : int;
  phase : int;
  value : Proto.value;
  origin : Proto.origin;
  status : Proto.status;
  proof : bytes;  (** 32-byte one-time signature over (phase, value, origin) *)
}

val slot_of : value:Proto.value -> origin:Proto.origin -> Crypto.Onetime_sig.slot
(** Key slot used to sign/verify a message with this value and origin. *)

val header_equal : t -> t -> bool
(** Equality of the protocol-visible fields (ignores the proof). *)

val describe : t -> string
(** One-line rendering for traces and test failures. *)

(** A message as it travels: the message itself plus its justification
    bundle (empty on optimistic first transmission). *)
type envelope = { msg : t; justification : t list }

val encode : envelope -> bytes
val decode : bytes -> envelope
(** @raise Util.Codec.Malformed / Truncated on garbage. *)

val encoded_size : envelope -> int

val msg_to_bytes : t -> bytes
val msg_of_bytes : bytes -> t
