(** Composable Byzantine attack strategies.

    A strategy decides, per transmission opportunity, what a compromised
    process puts on the wire: a single lying broadcast, contradictory
    per-receiver unicasts (equivocation), a replay of an old phase,
    garbage signatures, or nothing at all. {!Machine} consults the
    strategy in {!Machine.emit}; the {!Turquois} shell ships
    [Emit_per_receiver] plans as unicasts so no receiver overhears the
    conflicting copy.

    Strategies never touch the machine's internal state — they only
    shape its output — so a Byzantine machine's own bookkeeping stays
    deterministic and the safety checks of the chaos harness apply
    uniformly. *)

type view = {
  phase : int;           (** the machine's current phase φ_i *)
  value : Proto.value;   (** its current value v_i *)
  status : Proto.status;
  n : int;               (** group size *)
  self : int;            (** the attacker's own process id *)
}
(** What the strategy sees of the compromised machine. *)

type wire = {
  w_phase : int option;  (** [None] = current phase; [Some p] = replay at p *)
  w_value : Proto.value;
  w_origin : Proto.origin;
  w_status : Proto.status;
  w_garble : bool;       (** corrupt the one-time signature bytes *)
}
(** One frame as the attacker wants it signed and sent. *)

val honest : view -> wire
(** The frame a correct process would send — the base strategies
    mutate from here. *)

type plan =
  | Skip                                   (** stay silent this opportunity *)
  | Emit of wire                           (** same frame to everyone *)
  | Emit_per_receiver of (int -> wire option)
      (** receiver-specific frames; [None] withholds from that receiver *)

type t

val name : t -> string
val describe : t -> string

val value_flip : t
(** The paper's §7.2 attacker (the legacy [Attacker] behavior). *)

val equivocate : t
(** V0 to even-id receivers, V1 to odd — classic equivocation via
    unicast. *)

val stale_replay : t
(** Replays phase [max 1 (φ−3)] signed with its long-revealed key. *)

val forge_sig : t
(** Honest-looking fields under corrupted proofs; must be rejected by
    authenticity validation. *)

val selective_silence : t
(** Honest frames withheld from even-id receivers. *)

val silent : t
(** Never transmits. *)

val random_values : t
(** Fresh random signed (value, origin) nonsense every opportunity. *)

val alternate : t -> t -> t
(** Phase-alternating composition: first strategy on odd phases, second
    on even. *)

val all : t list
(** Every built-in strategy (including one composed example), in a
    stable order — the chaos harness and CLI iterate this. *)

val enumerable : t list
(** The model checker's per-round Byzantine alphabet: every built-in
    strategy whose plan is a pure function of the view (no rng draws),
    in a stable order. Picking {!silent} from some round onwards is a
    crash point, so crash schedules are covered by the enumeration.
    {!forge_sig} is omitted — its frames all die at the authenticity
    check, making it behaviorally identical to {!silent} here. *)

val is_deterministic : t -> bool
(** The strategy's plan never consults the rng — a state fingerprint
    fully determines its successors, the property the model checker's
    memoization relies on. *)

val scripted : name:string -> describe:string -> (view -> plan) -> t
(** A deterministic strategy from a pure plan function, for
    externally-driven adversaries (the model checker scripts one frame
    choice per round). *)

val of_string : string -> t option
(** Look up by {!name} (case-insensitive). *)

(**/**)

val plan : t -> rng:Util.Rng.t -> view -> plan
(** Used by {!Machine}; not part of the stable surface. *)
