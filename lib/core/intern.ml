(* Frame interning: the per-run, domain-local memo tables of the
   receive hot path.

   A broadcast frame is delivered to n receivers, each of which decodes
   the same payload bytes and hashes the same one-time-signature proofs
   independently — n-1 of those decodes and hashes are pure recompute.
   Two memo tables eliminate them:

   - [decodes]: exact payload bytes -> decoded envelope. Keys are the
     full frame contents (structural hashing and equality cover every
     byte), so a Byzantine forgery or an equivocating per-receiver
     unicast that differs anywhere from a cached frame can never
     collide with it — at worst it costs its own decode.
   - [digests]: proof bytes -> SHA-256 digest. The verify verdict is
     [Bytes.equal (H proof) vk.(signer, phase, slot)], a pure function
     of the proof bytes and the receiver's pre-distributed key, so
     memoizing H alone deduplicates the per-receiver hashing while
     making the cache unpoisonable by construction: no signer, phase or
     slot ever shares an entry it shouldn't.

   Only host wall-clock changes. Simulated time is untouched because
   [Net.Cost] CPU accounting still charges every receiver for its own
   decode and checks ([Turquois.on_datagram] counts auth checks in
   [Machine.handle], which is memo-oblivious).

   Both tables live in domain-local storage and are cleared at every
   run boundary ([Obs.Scope.at_run_start]): runs stay independent, pool
   workers never share state, and the hit/miss counters land in the
   same per-run metrics scope on every domain — preserving the
   bit-identical [-j 1] vs [-j N] contract. *)

let enabled_flag = Atomic.make true
let enabled () = Atomic.get enabled_flag
let set_enabled v = Atomic.set enabled_flag v

let with_memo flag f =
  let previous = enabled () in
  set_enabled flag;
  Fun.protect ~finally:(fun () -> set_enabled previous) f

(* Delta-compressed justification bundles ([--no-compact] escape
   hatch). A sender-side switch only: receivers always accept both wire
   formats, so flipping it never strands in-flight frames. *)
let compact_flag = Atomic.make true
let compact_enabled () = Atomic.get compact_flag
let set_compact v = Atomic.set compact_flag v

let with_compact flag f =
  let previous = compact_enabled () in
  set_compact flag;
  Fun.protect ~finally:(fun () -> set_compact previous) f

type caches = {
  decodes : (bytes, Message.wire) Hashtbl.t;
  digests : (bytes, bytes) Hashtbl.t;
  msg_digests : (Message.t, bytes) Hashtbl.t;
}

let caches_key : caches Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        decodes = Hashtbl.create 64;
        digests = Hashtbl.create 256;
        msg_digests = Hashtbl.create 256;
      })

let clear () =
  let c = Domain.DLS.get caches_key in
  Hashtbl.reset c.decodes;
  Hashtbl.reset c.digests;
  Hashtbl.reset c.msg_digests

let () = Obs.Scope.at_run_start clear

let decode_unprofiled payload =
  if not (enabled ()) then Message.decode_wire payload
  else begin
    let c = Domain.DLS.get caches_key in
    match Hashtbl.find_opt c.decodes payload with
    | Some wi ->
        Obs.Metrics.incr "codec.decode.memo_hit";
        wi
    | None ->
        (* malformed payloads raise out before reaching the table *)
        let wi = Message.decode_wire payload in
        Obs.Metrics.incr "codec.decode.memo_miss";
        (* key copied defensively: the table must never alias a buffer
           a caller could later mutate *)
        Hashtbl.add c.decodes (Bytes.copy payload) wi;
        wi
  end

(* profiled wrapper; a malformed payload raises out without a sample *)
let decode_wire payload =
  let sp = Obs.Prof.start () in
  let wi = decode_unprofiled payload in
  Obs.Prof.stop Obs.Prof.decode sp;
  wi

(* Content addresses for compact justification entries. The digest is a
   pure function of the message bytes, so the memo is unpoisonable for
   the same reason the proof-digest memo is; callers treat the returned
   buffer as immutable (it is shared between the table, [Ref] entries
   and the shipped/resolution sets). *)
let message_digest m =
  if not (enabled ()) then Message.msg_digest m
  else begin
    let c = Domain.DLS.get caches_key in
    match Hashtbl.find_opt c.msg_digests m with
    | Some d -> d
    | None ->
        let d = Message.msg_digest m in
        Hashtbl.add c.msg_digests m d;
        d
  end

let memo_digest proof =
  let c = Domain.DLS.get caches_key in
  match Hashtbl.find_opt c.digests proof with
  | Some digest ->
      Obs.Metrics.incr "crypto.verify.cache_hit";
      digest
  | None ->
      let digest = Crypto.Sha256.digest proof in
      Obs.Metrics.incr "crypto.verify.cache_miss";
      Hashtbl.add c.digests (Bytes.copy proof) digest;
      digest

let check_message keyring m =
  let sp = Obs.Prof.start () in
  let ok =
    if enabled () then Keyring.check_message_with ~hash:memo_digest keyring m
    else Keyring.check_message keyring m
  in
  Obs.Prof.stop Obs.Prof.verify sp;
  ok

let memo_series =
  [
    "codec.decode.memo_hit";
    "codec.decode.memo_miss";
    "crypto.verify.cache_hit";
    "crypto.verify.cache_miss";
  ]

let strip_metrics snapshot =
  List.filter
    (fun (s : Obs.Metrics.sample) -> not (List.mem s.Obs.Metrics.name memo_series))
    snapshot
