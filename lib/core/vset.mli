(** The set V_i of valid received messages (Algorithm 1, line 9).

    One primary message per (sender, phase) — the first valid one — so
    quorum counts below count distinct senders, as the protocol's
    thresholds require. An equivocating sender's differently-valued
    copies for the same phase are additionally retained (the paper's
    V_i is a set of {e messages}): without them, two correct processes
    holding the two halves of an equivocation could never validate each
    other's next-phase values, and the protocol would stall — the chaos
    harness's equivocation strategy exercises exactly this. At most one
    copy per value is kept, bounding a slot at 3 messages.

    The representation is flat: rows of compact indices into the
    per-run interned {!Msgstore}, so structurally equal messages are
    stored once per run no matter how many V sets and justification
    bundles they appear in. *)

type t

val create : n:int -> t
(** Captures the domain's current per-run {!Msgstore}. *)

val add : t -> Message.t -> bool
(** [add t m] stores [m] unless a copy from the same (sender, phase)
    with the same value is already present; returns whether it was
    stored. *)

val mem : t -> sender:int -> phase:int -> bool
(** A primary message from this (sender, phase) is present. *)

val mem_copy : t -> Message.t -> bool
(** A stored copy with [m]'s exact header (sender, phase, value, origin,
    status) is present — the duplicate test for arriving messages. *)

val find : t -> sender:int -> phase:int -> Message.t option
(** The primary (first-stored) message of a (sender, phase). *)

val copies : t -> sender:int -> phase:int -> Message.t list
(** Every stored copy for a (sender, phase): primary first, then any
    equivocated extras. *)

val count_phase : t -> phase:int -> int
(** Distinct senders with a message at [phase]. *)

val count_value : t -> phase:int -> value:Proto.value -> int
(** Distinct senders with {e any} copy at [phase] carrying [value]; an
    equivocating sender supports every value it signed. *)

val messages_at : t -> phase:int -> Message.t list
(** All stored messages of a phase (including equivocated extras),
    ascending sender order. *)

val majority_value : t -> phase:int -> Proto.value
(** The value appearing most often at [phase] among {0, 1} (ties favor
    [V1]); the CONVERGE-phase rule of line 21.
    @raise Invalid_argument when no 0/1 message is stored at [phase]. *)

val some_binary_value : t -> phase:int -> Proto.value option
(** Some v ∈ {0,1} present at [phase], if any (line 32). *)

val max_phase : t -> int
(** Highest phase with at least one stored message; 0 when empty. *)

val highest_message : t -> Message.t option
(** A stored message of maximal phase (the trigger of transition
    rule 1). *)

val size : t -> int
(** Total stored messages. *)

val version : t -> int
(** Bumped on every successful {!add} — a cheap invalidation key for
    memos derived from the set's contents (the machine's justification
    and envelope caches). Cloning preserves the counter; the clone and
    the original then advance it independently. *)

val clone : t -> t
(** An independent deep copy (messages themselves are immutable and
    shared). The model checker forks a machine's V set per enumerated
    adversary choice. *)

val canonical : t -> Buffer.t -> unit
(** Appends a canonical serialization of the whole set (phases
    ascending; per slot the primary then its equivocated extras in
    stored order; proof bytes omitted) to [buf] — the V-set component of
    {!Machine.fingerprint}. Equal serializations imply identical future
    behavior under identical inputs. *)
