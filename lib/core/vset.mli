(** The set V_i of valid received messages (Algorithm 1, line 9).

    At most one message per (sender, phase) is retained — the first
    valid one — so every quorum count below counts distinct senders, as
    the protocol's thresholds require. *)

type t

val create : n:int -> t

val add : t -> Message.t -> bool
(** [add t m] stores [m] unless a message from the same sender at the
    same phase is already present; returns whether it was stored. *)

val mem : t -> sender:int -> phase:int -> bool
val find : t -> sender:int -> phase:int -> Message.t option

val count_phase : t -> phase:int -> int
(** Distinct senders with a message at [phase]. *)

val count_value : t -> phase:int -> value:Proto.value -> int
(** Distinct senders with a message at [phase] carrying [value]. *)

val messages_at : t -> phase:int -> Message.t list
(** All stored messages of a phase, ascending sender order. *)

val majority_value : t -> phase:int -> Proto.value
(** The value appearing most often at [phase] among {0, 1} (ties favor
    [V1]); the CONVERGE-phase rule of line 21.
    @raise Invalid_argument when no 0/1 message is stored at [phase]. *)

val some_binary_value : t -> phase:int -> Proto.value option
(** Some v ∈ {0,1} present at [phase], if any (line 32). *)

val max_phase : t -> int
(** Highest phase with at least one stored message; 0 when empty. *)

val highest_message : t -> Message.t option
(** A stored message of maximal phase (the trigger of transition
    rule 1). *)

val size : t -> int
(** Total stored messages. *)
