type view = {
  phase : int;
  value : Proto.value;
  status : Proto.status;
  n : int;
  self : int;
}

type wire = {
  w_phase : int option;
  w_value : Proto.value;
  w_origin : Proto.origin;
  w_status : Proto.status;
  w_garble : bool;
}

let honest view =
  {
    w_phase = None;
    w_value = view.value;
    w_origin = Proto.Deterministic;
    w_status = view.status;
    w_garble = false;
  }

type plan = Skip | Emit of wire | Emit_per_receiver of (int -> wire option)

type t = {
  name : string;
  describe : string;
  (* [plan] never draws from the rng when [deterministic] — the model
     checker's enumerable alphabet is restricted to strategies whose
     frames are a pure function of the view, so a state's fingerprint
     fully determines its successors *)
  deterministic : bool;
  plan : rng:Util.Rng.t -> view -> plan;
}

let name s = s.name
let describe s = s.describe
let plan s = s.plan
let is_deterministic s = s.deterministic

let scripted ~name ~describe plan =
  { name; describe; deterministic = true; plan = (fun ~rng:_ view -> plan view) }

let flip = function Proto.V0 -> Proto.V1 | Proto.V1 -> Proto.V0 | Proto.Vbot -> Proto.V1

(* The paper's §7.2 attacker: flipped values in CONVERGE and LOCK,
   ⊥ in DECIDE, always undecided. *)
let value_flip =
  {
    name = "value-flip";
    describe = "flipped value in CONVERGE/LOCK, bottom in DECIDE (the paper's Table 3 attack)";
    deterministic = true;
    plan =
      (fun ~rng:_ view ->
        let w_value =
          match Proto.kind_of_phase view.phase with
          | Proto.Converge | Proto.Lock -> flip view.value
          | Proto.Decide -> Proto.Vbot
        in
        Emit
          {
            w_phase = None;
            w_value;
            w_origin = Proto.Deterministic;
            w_status = Proto.Undecided;
            w_garble = false;
          });
  }

(* Equivocation: contradictory values to different receivers, shipped as
   unicasts so no receiver sees the other copy on the air. *)
let equivocate =
  {
    name = "equivocate";
    describe = "V0 to even-id receivers, V1 to odd-id receivers, via unicast";
    deterministic = true;
    plan =
      (fun ~rng:_ _view ->
        Emit_per_receiver
          (fun rx ->
            Some
              {
                w_phase = None;
                w_value = (if rx mod 2 = 0 then Proto.V0 else Proto.V1);
                w_origin = Proto.Deterministic;
                w_status = Proto.Undecided;
                w_garble = false;
              }));
  }

(* Stale-phase replay: re-signs and rebroadcasts an old phase with a
   long-revealed one-time key — receivers must deduplicate / ignore. *)
let stale_replay =
  {
    name = "stale-replay";
    describe = "replays phase max(1, phi-3) with its already-revealed one-time key";
    deterministic = false;
    plan =
      (fun ~rng view ->
        let old_phase = max 1 (view.phase - 3) in
        Emit
          {
            w_phase = Some old_phase;
            w_value = (if Util.Rng.bool rng then Proto.V0 else Proto.V1);
            w_origin = Proto.Deterministic;
            w_status = Proto.Undecided;
            w_garble = false;
          });
  }

(* Forged signatures: plausible protocol fields under a corrupted
   one-time proof — every copy must die at the authenticity check. *)
let forge_sig =
  {
    name = "forge-sig";
    describe = "honest-looking fields under a corrupted one-time signature";
    deterministic = true;
    plan = (fun ~rng:_ view -> Emit { (honest view) with w_garble = true });
  }

(* Selective silence: honest frames, but withheld from half the group —
   the attacker-controlled counterpart of a targeted omission fault. *)
let selective_silence =
  {
    name = "selective-silence";
    describe = "honest state unicast to odd-id receivers only; even ids hear nothing";
    deterministic = true;
    plan =
      (fun ~rng:_ view ->
        Emit_per_receiver (fun rx -> if rx mod 2 = 0 then None else Some (honest view)));
  }

let silent =
  {
    name = "silent";
    describe = "never transmits (pure crash from the group's point of view)";
    deterministic = true;
    plan = (fun ~rng:_ _ -> Skip);
  }

(* Garbled values chosen fresh per transmission: stress-tests the
   validation fixpoint with inconsistent, signed nonsense. *)
let random_values =
  {
    name = "random-values";
    describe = "a fresh random (value, status) each broadcast, correctly signed";
    deterministic = false;
    plan =
      (fun ~rng _ ->
        let w_value =
          match Util.Rng.int rng 3 with 0 -> Proto.V0 | 1 -> Proto.V1 | _ -> Proto.Vbot
        in
        Emit
          {
            w_phase = None;
            w_value;
            w_origin = (if Util.Rng.bool rng then Proto.Deterministic else Proto.Random);
            w_status = Proto.Undecided;
            w_garble = false;
          });
  }

(* --- combinators ----------------------------------------------------------- *)

let alternate a b =
  {
    name = Printf.sprintf "%s/%s" a.name b.name;
    describe = Printf.sprintf "phase-alternating: %s on odd phases, %s on even" a.name b.name;
    deterministic = a.deterministic && b.deterministic;
    plan =
      (fun ~rng view ->
        if view.phase mod 2 = 1 then a.plan ~rng view else b.plan ~rng view);
  }

let all =
  [
    value_flip;
    equivocate;
    stale_replay;
    forge_sig;
    selective_silence;
    silent;
    random_values;
    alternate equivocate stale_replay;
  ]

(* The model checker's per-round Byzantine alphabet: the deterministic
   strategies, in a stable order. [silent] first — a Byzantine process
   that picks it from some round onwards is exactly a crash point, so
   crash schedules are a subset of the enumeration. [forge_sig] is
   deterministic but excluded: every forged frame dies at the
   authenticity check, so against the enumerator it is behaviorally
   identical to [silent] and would only inflate the branching factor. *)
let enumerable = [ silent; value_flip; equivocate; selective_silence ]

let of_string s =
  List.find_opt (fun strategy -> strategy.name = String.lowercase_ascii s) all
