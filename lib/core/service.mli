(** Multi-instance agreement service.

    Wireless coordination tasks rarely need a single yes/no: nodes agree
    on a {e sequence} of decisions (accept each alarm, admit each member,
    commit each slot). This module runs numbered Turquois instances side
    by side on one node, realizing the paper's Section 6.1 remark that
    "a single key exchange can span multiple instances of the
    k-consensus": every instance signs with a disjoint slice of the same
    pre-distributed one-time key array.

    All processes must create their services with the same geometry
    (instance count, phase stride, base port). Instances are independent
    — they may run concurrently and decide out of order. *)

type t

val create :
  Net.Node.t ->
  Proto.config ->
  keyring:Keyring.t ->
  instances:int ->
  ?base_port:int ->
  ?tick_policy:Turquois.tick_policy ->
  ?linger_ticks:int ->
  unit ->
  t
(** [cfg.max_phases] is the per-instance phase budget (the stride);
    the keyring must cover [instances * cfg.max_phases] phases.
    @raise Invalid_argument otherwise. *)

val instances : t -> int

val propose : t -> instance:int -> int -> unit
(** Starts the given instance with a binary proposal. Each instance can
    be proposed at most once per process.
    @raise Invalid_argument on out-of-range instance, bad proposal, or
    double proposal. *)

val decision : t -> instance:int -> int option
val decided_count : t -> int

val retire : t -> instance:int -> unit
(** Releases a finished instance: its decision (if any) is preserved
    for {!decision}, its per-instance port listener is removed, and the
    consensus state machine becomes collectable once its linger timer
    expires. Intended for instances that have decided — retiring an
    undecided instance freezes it at [None] forever. No-op on idle or
    already-retired instances. *)

val on_decide : t -> (instance:int -> value:int -> unit) -> unit
(** Fired once per instance, on its decision. *)
